// Audit of the Stats invariants every miner must maintain: Duration is
// stamped on the way out, Passes equals the number of PassDetails entries,
// and the algorithm is named. The observability layer leans on these —
// trace events mirror PassDetails one-to-one — so they are pinned here
// across every pass-structured miner.
package pincer

import (
	"testing"

	"pincer/internal/ais"
	"pincer/internal/apriori"
	"pincer/internal/core"
	"pincer/internal/dataset"
	"pincer/internal/mfi"
	"pincer/internal/parallel"
	"pincer/internal/quest"
	"pincer/internal/topdown"
)

func TestStatsAuditAcrossMiners(t *testing.T) {
	d := quest.Generate(quest.Params{
		NumTransactions: 300, AvgTxLen: 8, AvgPatternLen: 4,
		NumPatterns: 20, NumItems: 40, Seed: 11,
	})
	// The pure top-down miner needs a tiny universe to stay tractable.
	small := quest.Generate(quest.Params{
		NumTransactions: 500, AvgTxLen: 10, AvgPatternLen: 6,
		NumPatterns: 5, NumItems: 24, Seed: 3,
	})
	popt := parallel.DefaultOptions()
	popt.Workers = 4

	cases := []struct {
		name string
		run  func() mfi.Stats
	}{
		{"pincer", func() mfi.Stats {
			return must(core.Mine(dataset.NewScanner(d), 0.05, core.DefaultOptions())).Stats
		}},
		{"apriori", func() mfi.Stats {
			return must(apriori.Mine(dataset.NewScanner(d), 0.05, apriori.DefaultOptions())).Stats
		}},
		{"ais", func() mfi.Stats {
			return must(ais.Mine(dataset.NewScanner(d), 0.05, ais.DefaultOptions())).Stats
		}},
		{"topdown", func() mfi.Stats {
			return must(topdown.Mine(dataset.NewScanner(small), 0.10, topdown.DefaultOptions())).Stats
		}},
		{"parallel-pincer", func() mfi.Stats {
			return must(parallel.MinePincer(d, 0.05, popt)).Stats
		}},
		{"parallel-apriori", func() mfi.Stats {
			return must(parallel.MineApriori(d, 0.05, popt)).Stats
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.run()
			if s.Duration <= 0 {
				t.Errorf("Stats.Duration = %v, want > 0", s.Duration)
			}
			if s.Passes != len(s.PassDetails) {
				t.Errorf("Stats.Passes = %d but len(PassDetails) = %d", s.Passes, len(s.PassDetails))
			}
			if s.Algorithm == "" {
				t.Error("Stats.Algorithm is empty")
			}
			for i, p := range s.PassDetails {
				if p.Pass != i+1 {
					t.Errorf("PassDetails[%d].Pass = %d, want %d", i, p.Pass, i+1)
				}
			}
		})
	}
}
