// Command questgen emits synthetic transaction databases with the IBM
// Quest generator of Agrawal & Srikant — the benchmark workloads of the
// paper's evaluation.
//
// Usage:
//
//	questgen -name T20.I6.D100K [-l 2000] [-n 1000] [-seed 1] [-o db.basket]
//	questgen -d 100000 -t 20 -i 6 -l 50 -o concentrated.basket
//
// -name parses the conventional T<x>.I<y>.D<z> database name; explicit
// flags override its fields. Output is the basket text format (or the
// compact binary format with -binary).
package main

import (
	"flag"
	"fmt"
	"os"

	"pincer/internal/dataset"
	"pincer/internal/obsv"
	"pincer/internal/quest"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "questgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("questgen", flag.ContinueOnError)
	name := fs.String("name", "", "database name, e.g. T10.I4.D100K")
	d := fs.Int("d", 0, "|D|: number of transactions")
	t := fs.Float64("t", 0, "|T|: average transaction length")
	i := fs.Float64("i", 0, "|I|: average pattern length")
	l := fs.Int("l", 0, "|L|: number of patterns (2000 scattered, 50 concentrated)")
	n := fs.Int("n", 0, "N: number of items")
	seed := fs.Int64("seed", 1, "PRNG seed")
	out := fs.String("o", "", "output file (default stdout)")
	binary := fs.Bool("binary", false, "write the compact binary format")
	showPatterns := fs.Bool("patterns", false, "print the seeded patterns to stderr")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	prof, err := obsv.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := prof.Stop(); perr != nil {
			fmt.Fprintln(os.Stderr, "questgen:", perr)
		}
	}()

	var p quest.Params
	if *name != "" {
		parsed, err := quest.ParseName(*name)
		if err != nil {
			return err
		}
		p = parsed
	}
	if *d > 0 {
		p.NumTransactions = *d
	}
	if *t > 0 {
		p.AvgTxLen = *t
	}
	if *i > 0 {
		p.AvgPatternLen = *i
	}
	if *l > 0 {
		p.NumPatterns = *l
	}
	if *n > 0 {
		p.NumItems = *n
	}
	p.Seed = *seed
	p = p.Defaults()

	gen := quest.New(p)
	db := gen.Generate()
	if *showPatterns {
		for _, pat := range gen.Patterns() {
			fmt.Fprintln(os.Stderr, pat)
		}
	}
	fmt.Fprintf(os.Stderr, "questgen: %s |L|=%d N=%d seed=%d: %v\n",
		p.Name(), p.NumPatterns, p.NumItems, p.Seed, db.Stats())

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if *binary {
		return dataset.WriteBinary(w, db)
	}
	return dataset.WriteBasket(w, db)
}
