package main

import (
	"os"
	"path/filepath"
	"testing"

	"pincer/internal/dataset"
)

func TestQuestgenWritesBasket(t *testing.T) {
	out := filepath.Join(t.TempDir(), "db.basket")
	err := run([]string{"-name", "T5.I2.D200", "-l", "20", "-n", "50", "-seed", "3", "-o", out})
	if err != nil {
		t.Fatal(err)
	}
	d, err := dataset.LoadBasketFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 200 {
		t.Fatalf("|D| = %d, want 200", d.Len())
	}
}

func TestQuestgenWritesBinary(t *testing.T) {
	out := filepath.Join(t.TempDir(), "db.bin")
	err := run([]string{"-d", "100", "-t", "5", "-i", "2", "-l", "10", "-n", "30", "-binary", "-o", out})
	if err != nil {
		t.Fatal(err)
	}
	d, err := dataset.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 100 || d.NumItems() != 30 {
		t.Fatalf("|D|=%d N=%d", d.Len(), d.NumItems())
	}
}

func TestQuestgenDeterministic(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a")
	b := filepath.Join(dir, "b")
	for _, out := range []string{a, b} {
		if err := run([]string{"-name", "T5.I2.D100", "-n", "40", "-seed", "9", "-o", out}); err != nil {
			t.Fatal(err)
		}
	}
	da, _ := os.ReadFile(a)
	db, _ := os.ReadFile(b)
	if string(da) != string(db) {
		t.Fatal("same seed produced different files")
	}
}

func TestQuestgenBadName(t *testing.T) {
	if err := run([]string{"-name", "bogus"}); err == nil {
		t.Fatal("bad name accepted")
	}
}
