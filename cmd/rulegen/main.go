// Command rulegen generates association rules from a transaction database:
// stage 2 of the mining pipeline (paper §2.1). It mines the maximum
// frequent set with Pincer-Search, counts the needed subset supports with
// one extra database pass, and runs ap-genrules.
//
// Usage:
//
//	rulegen -input db.basket -support 0.05 -confidence 0.8 [-top 20]
//	        [-maxlen 12] [-lift 1.0]
package main

import (
	"flag"
	"fmt"
	"os"

	"pincer/internal/core"
	"pincer/internal/dataset"
	"pincer/internal/obsv"
	"pincer/internal/rules"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rulegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rulegen", flag.ContinueOnError)
	input := fs.String("input", "", "basket or binary database file (required)")
	support := fs.Float64("support", 0.05, "minimum support fraction")
	confidence := fs.Float64("confidence", 0.8, "minimum rule confidence")
	top := fs.Int("top", 0, "print only the strongest N rules (0 = all)")
	maxLen := fs.Int("maxlen", 14, "cap on frequent-itemset length considered for rules (0 = unlimited; beware exponential expansion)")
	minLift := fs.Float64("lift", 0, "minimum lift filter")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *input == "" {
		fs.Usage()
		return fmt.Errorf("-input is required")
	}

	prof, err := obsv.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := prof.Stop(); perr != nil {
			fmt.Fprintln(os.Stderr, "rulegen:", perr)
		}
	}()

	d, err := dataset.Load(*input)
	if err != nil {
		return err
	}
	sc := dataset.NewScanner(d)
	opt := core.DefaultOptions()
	opt.KeepFrequent = false
	res, err := core.Mine(sc, *support, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "rulegen: %d maximal frequent itemsets (longest %d) in %d passes\n",
		len(res.MFS), res.LongestMFS(), res.Stats.Passes)

	rs, err := rules.FromMFS(sc, res.MFS, *maxLen, rules.Params{MinConfidence: *confidence})
	if err != nil {
		return err
	}
	if *minLift > 0 {
		rs = rules.Filter(rs, func(r rules.Rule) bool { return r.Lift >= *minLift })
	}
	if *top > 0 && len(rs) > *top {
		rs = rs[:*top]
	}
	for _, r := range rs {
		fmt.Println(r)
	}
	fmt.Fprintf(os.Stderr, "rulegen: %d rules\n", len(rs))
	return nil
}
