package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRulegenRuns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.basket")
	content := "1 2 3\n1 2 3\n1 2 3\n1 2\n4 5\n4 5\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-input", path, "-support", "0.3", "-confidence", "0.8", "-top", "5"}); err != nil {
		t.Fatal(err)
	}
	// lift filter path
	if err := run([]string{"-input", path, "-support", "0.3", "-confidence", "0.5", "-lift", "1.1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRulegenErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing -input accepted")
	}
	if err := run([]string{"-input", filepath.Join(t.TempDir(), "nope")}); err == nil {
		t.Error("missing file accepted")
	}
}
