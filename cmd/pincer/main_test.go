package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTestDB(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "db.basket")
	content := "1 2 3\n1 2 3\n1 2\n3 4\n3 4\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// capture runs run() with stdout redirected to a pipe-backed temp file.
func capture(t *testing.T, args []string) (string, error) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	runErr := run(args, f)
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestRunPincerText(t *testing.T) {
	db := writeTestDB(t)
	out, err := capture(t, []string{"-input", db, "-support", "0.4"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "{1,2,3} support=2") {
		t.Errorf("missing {1,2,3}: %q", out)
	}
	if !strings.Contains(out, "{3,4} support=2") {
		t.Errorf("missing {3,4}: %q", out)
	}
}

func TestRunAllAlgorithmsAgree(t *testing.T) {
	db := writeTestDB(t)
	var outputs []string
	for _, alg := range []string{"pincer", "apriori", "ais", "eclat", "maxeclat", "topdown"} {
		out, err := capture(t, []string{"-input", db, "-support", "0.4", "-algorithm", alg})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		// strip the header (it differs in algorithm-specific ways)
		lines := strings.SplitN(out, "\n", 2)
		outputs = append(outputs, lines[1])
	}
	if outputs[0] != outputs[1] || outputs[1] != outputs[2] {
		t.Errorf("algorithms disagree:\n%v", outputs)
	}
}

func TestRunJSON(t *testing.T) {
	db := writeTestDB(t)
	out, err := capture(t, []string{"-input", db, "-support", "0.4", "-json"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"algorithm": "pincer"`, `"maximal_frequent_itemsets"`, `"support": 2`} {
		if !strings.Contains(out, want) {
			t.Errorf("json missing %q:\n%s", want, out)
		}
	}
}

func TestRunErrors(t *testing.T) {
	db := writeTestDB(t)
	cases := [][]string{
		{},                                    // missing -input
		{"-input", db, "-support", "0"},       // bad support
		{"-input", db, "-support", "2"},       // bad support
		{"-input", db, "-algorithm", "magic"}, // bad algorithm
		{"-input", db, "-engine", "abacus"},   // bad engine
		{"-input", filepath.Join(t.TempDir(), "missing")}, // missing file
	}
	for _, args := range cases {
		if _, err := capture(t, args); err == nil {
			t.Errorf("args %v succeeded, want error", args)
		}
	}
}

func TestRunWorkersFlag(t *testing.T) {
	db := writeTestDB(t)
	want, err := capture(t, []string{"-input", db, "-support", "0.4"})
	if err != nil {
		t.Fatal(err)
	}
	// parallel runs must print byte-identical output, for any worker count,
	// for both parallel algorithms, including 0 (= GOMAXPROCS)
	for _, args := range [][]string{
		{"-input", db, "-support", "0.4", "-workers", "1"},
		{"-input", db, "-support", "0.4", "-workers", "4"},
		{"-input", db, "-support", "0.4", "-workers", "0"},
		{"-input", db, "-support", "0.4", "-workers", "4", "-algorithm", "apriori"},
	} {
		out, err := capture(t, args)
		if err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		if out != want {
			t.Errorf("%v: output differs from sequential:\ngot  %q\nwant %q", args, out, want)
		}
	}
}

func TestRunWorkersFlagRejectsOtherAlgorithms(t *testing.T) {
	db := writeTestDB(t)
	for _, alg := range []string{"eclat", "maxeclat", "topdown", "ais"} {
		if _, err := capture(t, []string{"-input", db, "-workers", "2", "-algorithm", alg}); err == nil {
			t.Errorf("-workers with -algorithm %s accepted, want error", alg)
		}
	}
}

func TestRunCompactsSparseUniverse(t *testing.T) {
	// Sparse SKU-style ids: the CLI must compact internally and translate
	// the maximal itemsets back to the original ids.
	path := filepath.Join(t.TempDir(), "sparse.basket")
	content := "100001 900002\n100001 900002\n100001\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, []string{"-input", path, "-support", "0.6", "-frequent"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "{100001,900002} support=2") {
		t.Errorf("original ids lost: %q", out)
	}
	if !strings.Contains(out, "{100001} support=3") {
		t.Errorf("frequent set not translated: %q", out)
	}
}

func TestRunFrequentFlag(t *testing.T) {
	db := writeTestDB(t)
	out, err := capture(t, []string{"-input", db, "-support", "0.4", "-frequent"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "frequent itemsets explicitly discovered") {
		t.Errorf("missing frequent section: %q", out)
	}
	if !strings.Contains(out, "{1} support=3") {
		t.Errorf("missing singleton support: %q", out)
	}
}
