package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTestDB(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "db.basket")
	content := "1 2 3\n1 2 3\n1 2\n3 4\n3 4\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// capture runs run() with stdout redirected to a pipe-backed temp file.
func capture(t *testing.T, args []string) (string, error) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	runErr := run(args, f)
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestRunPincerText(t *testing.T) {
	db := writeTestDB(t)
	out, err := capture(t, []string{"-input", db, "-support", "0.4"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "{1,2,3} support=2") {
		t.Errorf("missing {1,2,3}: %q", out)
	}
	if !strings.Contains(out, "{3,4} support=2") {
		t.Errorf("missing {3,4}: %q", out)
	}
}

func TestRunAllAlgorithmsAgree(t *testing.T) {
	db := writeTestDB(t)
	var outputs []string
	for _, alg := range []string{"pincer", "apriori", "ais", "eclat", "maxeclat", "topdown"} {
		out, err := capture(t, []string{"-input", db, "-support", "0.4", "-algorithm", alg})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		// strip the header (it differs in algorithm-specific ways)
		lines := strings.SplitN(out, "\n", 2)
		outputs = append(outputs, lines[1])
	}
	if outputs[0] != outputs[1] || outputs[1] != outputs[2] {
		t.Errorf("algorithms disagree:\n%v", outputs)
	}
}

func TestRunJSON(t *testing.T) {
	db := writeTestDB(t)
	out, err := capture(t, []string{"-input", db, "-support", "0.4", "-json"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"algorithm": "pincer"`, `"maximal_frequent_itemsets"`, `"support": 2`} {
		if !strings.Contains(out, want) {
			t.Errorf("json missing %q:\n%s", want, out)
		}
	}
}

func TestRunErrors(t *testing.T) {
	db := writeTestDB(t)
	cases := [][]string{
		{},                                    // missing -input
		{"-input", db, "-support", "0"},       // bad support
		{"-input", db, "-support", "2"},       // bad support
		{"-input", db, "-algorithm", "magic"}, // bad algorithm
		{"-input", db, "-engine", "abacus"},   // bad engine
		{"-input", filepath.Join(t.TempDir(), "missing")}, // missing file
	}
	for _, args := range cases {
		if _, err := capture(t, args); err == nil {
			t.Errorf("args %v succeeded, want error", args)
		}
	}
}

func TestRunWorkersFlag(t *testing.T) {
	db := writeTestDB(t)
	want, err := capture(t, []string{"-input", db, "-support", "0.4"})
	if err != nil {
		t.Fatal(err)
	}
	// parallel runs must print byte-identical output, for any worker count,
	// for both parallel algorithms, including 0 (= GOMAXPROCS)
	for _, args := range [][]string{
		{"-input", db, "-support", "0.4", "-workers", "1"},
		{"-input", db, "-support", "0.4", "-workers", "4"},
		{"-input", db, "-support", "0.4", "-workers", "0"},
		{"-input", db, "-support", "0.4", "-workers", "4", "-algorithm", "apriori"},
	} {
		out, err := capture(t, args)
		if err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		if out != want {
			t.Errorf("%v: output differs from sequential:\ngot  %q\nwant %q", args, out, want)
		}
	}
}

func TestRunWorkersFlagRejectsOtherAlgorithms(t *testing.T) {
	db := writeTestDB(t)
	for _, alg := range []string{"eclat", "maxeclat", "topdown", "ais"} {
		if _, err := capture(t, []string{"-input", db, "-workers", "2", "-algorithm", alg}); err == nil {
			t.Errorf("-workers with -algorithm %s accepted, want error", alg)
		}
	}
}

func TestRunCompactsSparseUniverse(t *testing.T) {
	// Sparse SKU-style ids: the CLI must compact internally and translate
	// the maximal itemsets back to the original ids.
	path := filepath.Join(t.TempDir(), "sparse.basket")
	content := "100001 900002\n100001 900002\n100001\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, []string{"-input", path, "-support", "0.6", "-frequent"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "{100001,900002} support=2") {
		t.Errorf("original ids lost: %q", out)
	}
	if !strings.Contains(out, "{100001} support=3") {
		t.Errorf("frequent set not translated: %q", out)
	}
}

// writeDenseDB returns a database whose every transaction is {1..6}: all 15
// pairs are frequent, so apriori's pass 3 joins 20 triple candidates — enough
// to trip a tiny -max-candidates budget deterministically.
func writeDenseDB(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "dense.basket")
	content := strings.Repeat("1 2 3 4 5 6\n", 5)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunFlagValidation(t *testing.T) {
	db := writeTestDB(t)
	cases := [][]string{
		{"-input", db, "-resume"},                                                    // -resume without -checkpoint
		{"-input", db, "-checkpoint", "x", "-algorithm", "eclat"},                    // checkpoint needs pincer/apriori
		{"-input", db, "-checkpoint", "x", "-algorithm", "apriori", "-workers", "2"}, // parallel apriori cannot checkpoint
		{"-input", db, "-timeout", "1s", "-algorithm", "eclat"},                      // eclat is not cancellable
		{"-input", db, "-max-candidates", "5", "-algorithm", "topdown"},              // topdown has no candidate budget
		{"-input", db, "-max-candidates", "5", "-algorithm", "apriori", "-workers", "2"},
	}
	for _, args := range cases {
		if _, err := capture(t, args); err == nil {
			t.Errorf("args %v succeeded, want error", args)
		}
	}
}

func TestRunTimeoutPrintsPartial(t *testing.T) {
	db := writeTestDB(t)
	// A 1ns deadline is already expired at the first cancellation point: the
	// run must still succeed and print an (empty) partial anytime result.
	out, err := capture(t, []string{"-input", db, "-support", "0.4", "-timeout", "1ns"})
	if err != nil {
		t.Fatalf("timed-out run should exit cleanly, got %v", err)
	}
	if !strings.Contains(out, "# PARTIAL result (deadline") {
		t.Errorf("missing partial header: %q", out)
	}
}

func TestRunTimeoutJSONPartial(t *testing.T) {
	db := writeTestDB(t)
	out, err := capture(t, []string{"-input", db, "-support", "0.4", "-timeout", "1ns", "-json"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"partial_reason": "deadline"`) {
		t.Errorf("json missing partial reason: %q", out)
	}
}

func TestRunMaxCandidatesPartial(t *testing.T) {
	db := writeDenseDB(t)
	out, err := capture(t, []string{"-input", db, "-support", "0.6", "-algorithm", "apriori", "-max-candidates", "1"})
	if err != nil {
		t.Fatalf("budgeted run should exit cleanly, got %v", err)
	}
	if !strings.Contains(out, "# PARTIAL result (max-candidates") {
		t.Errorf("missing partial header: %q", out)
	}
	// Passes 1–2 completed, so the pairs are already known frequent.
	if !strings.Contains(out, "{1,2} support=5") {
		t.Errorf("partial result missing the frequent pairs: %q", out)
	}
}

func TestRunCheckpointResume(t *testing.T) {
	db := writeDenseDB(t)
	ckpt := filepath.Join(t.TempDir(), "mine.ckpt")
	want, err := capture(t, []string{"-input", db, "-support", "0.6", "-algorithm", "apriori"})
	if err != nil {
		t.Fatal(err)
	}

	// Abort at pass 3 with a checkpoint on disk...
	out, err := capture(t, []string{"-input", db, "-support", "0.6", "-algorithm", "apriori",
		"-checkpoint", ckpt, "-max-candidates", "1"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "PARTIAL") {
		t.Fatalf("first run did not abort: %q", out)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}

	// ...then resume without the budget and match the uninterrupted output.
	out, err = capture(t, []string{"-input", db, "-support", "0.6", "-algorithm", "apriori",
		"-checkpoint", ckpt, "-resume"})
	if err != nil {
		t.Fatal(err)
	}
	if out != want {
		t.Errorf("resumed output differs:\ngot  %q\nwant %q", out, want)
	}
	// A completed run clears its checkpoint.
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Errorf("checkpoint not cleared after completion: %v", err)
	}
}

func TestRunResumeWithEmptyCheckpointRunsFresh(t *testing.T) {
	db := writeTestDB(t)
	want, err := capture(t, []string{"-input", db, "-support", "0.4"})
	if err != nil {
		t.Fatal(err)
	}
	for _, extra := range [][]string{
		{"-checkpoint", filepath.Join(t.TempDir(), "a.ckpt"), "-resume"},
		{"-checkpoint", filepath.Join(t.TempDir(), "b.ckpt"), "-resume", "-workers", "2"},
	} {
		args := append([]string{"-input", db, "-support", "0.4"}, extra...)
		out, err := capture(t, args)
		if err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		if out != want {
			t.Errorf("%v: output differs from plain run:\ngot  %q\nwant %q", args, out, want)
		}
	}
}

func TestRunFrequentFlag(t *testing.T) {
	db := writeTestDB(t)
	out, err := capture(t, []string{"-input", db, "-support", "0.4", "-frequent"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "frequent itemsets explicitly discovered") {
		t.Errorf("missing frequent section: %q", out)
	}
	if !strings.Contains(out, "{1} support=3") {
		t.Errorf("missing singleton support: %q", out)
	}
}
