// Command pincer mines the maximum frequent set from a transaction
// database in the basket text format (one transaction of space-separated
// item ids per line).
//
// Usage:
//
//	pincer -input db.basket -support 0.05 [-algorithm pincer|apriori|topdown]
//	       [-engine hashtree|list|trie] [-workers n] [-pure] [-stats]
//	       [-frequent] [-json]
//
// The default algorithm is the adaptive Pincer-Search of Lin & Kedem
// (EDBT 1998). Output is one maximal frequent itemset per line with its
// support count, or a JSON document with -json. -workers selects the
// count-distribution parallel miners (pincer and apriori only): counting is
// distributed over that many goroutines (0 = GOMAXPROCS) with results
// identical to the sequential run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"pincer/internal/ais"
	"pincer/internal/apriori"
	"pincer/internal/core"
	"pincer/internal/counting"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
	"pincer/internal/obsv"
	"pincer/internal/parallel"
	"pincer/internal/topdown"
	"pincer/internal/vertical"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pincer:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("pincer", flag.ContinueOnError)
	input := fs.String("input", "", "basket or binary database file (required)")
	support := fs.Float64("support", 0.05, "minimum support as a fraction, e.g. 0.05 for 5%")
	algorithm := fs.String("algorithm", "pincer", "mining algorithm: pincer, apriori, ais, eclat, maxeclat, or topdown")
	engineName := fs.String("engine", "hashtree", "counting engine: hashtree, list, or trie")
	workers := fs.Int("workers", -1, "count-distribution parallel mining with this many workers (0 = GOMAXPROCS; pincer and apriori only; omit for sequential)")
	pure := fs.Bool("pure", false, "pincer only: disable the adaptive policy")
	stats := fs.Bool("stats", false, "print per-pass statistics to stderr")
	frequent := fs.Bool("frequent", false, "also print every explicitly discovered frequent itemset")
	asJSON := fs.Bool("json", false, "emit JSON instead of text")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars, and /debug/pprof/ on this address for the run's duration (e.g. localhost:6060)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	traceJSON := fs.String("trace-json", "", "write per-pass trace events as JSON lines to this file (\"-\" for stderr)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *input == "" {
		fs.Usage()
		return fmt.Errorf("-input is required")
	}
	if *support <= 0 || *support > 1 {
		return fmt.Errorf("-support must be in (0, 1], got %v", *support)
	}
	engine, err := counting.ParseEngine(*engineName)
	if err != nil {
		return err
	}

	prof, err := obsv.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := prof.Stop(); perr != nil {
			fmt.Fprintln(os.Stderr, "pincer:", perr)
		}
	}()
	var tracer obsv.Tracer
	if *metricsAddr != "" {
		reg := obsv.NewRegistry()
		tracer = obsv.NewMetricsTracer(reg)
		srv, err := obsv.Serve(*metricsAddr, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "pincer: serving metrics on http://%s/metrics (expvar /debug/vars, pprof /debug/pprof/)\n", srv.Addr)
	}
	if *traceJSON != "" {
		w := io.Writer(os.Stderr)
		if *traceJSON != "-" {
			f, err := os.Create(*traceJSON)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		tracer = obsv.Multi(tracer, obsv.NewJSONTracer(w))
	}

	d, err := dataset.Load(*input)
	if err != nil {
		return err
	}
	// Sparse item ids (SKUs, hashes) would size the pass-1/2 arrays by the
	// largest id; remap to a dense universe and translate results back.
	var comp *dataset.Compaction
	if dataset.WorthCompacting(d) {
		comp = dataset.Compact(d)
		fmt.Fprintf(os.Stderr, "pincer: compacted %d-wide universe to %d distinct items\n",
			d.NumItems(), comp.NumDenseItems())
		d = comp.Dataset
	}
	sc := dataset.NewScanner(d)

	if *workers >= 0 && *algorithm != "pincer" && *algorithm != "apriori" {
		return fmt.Errorf("-workers requires -algorithm pincer or apriori, got %q", *algorithm)
	}
	popt := parallel.DefaultOptions()
	popt.Workers = *workers
	popt.Engine = engine
	popt.KeepFrequent = *frequent
	popt.Tracer = tracer

	var res *mfi.Result
	switch *algorithm {
	case "pincer":
		opt := core.DefaultOptions()
		opt.Engine = engine
		opt.Pure = *pure
		opt.KeepFrequent = *frequent
		opt.Tracer = tracer
		if *workers >= 0 {
			res, err = parallel.MinePincerOpts(d, *support, opt, popt)
		} else {
			res, err = core.Mine(sc, *support, opt)
		}
		if err != nil {
			return err
		}
	case "apriori":
		if *workers >= 0 {
			res, err = parallel.MineApriori(d, *support, popt)
		} else {
			opt := apriori.DefaultOptions()
			opt.Engine = engine
			opt.KeepFrequent = *frequent
			opt.Tracer = tracer
			res, err = apriori.Mine(sc, *support, opt)
		}
		if err != nil {
			return err
		}
	case "ais":
		opt := ais.DefaultOptions()
		opt.KeepFrequent = *frequent
		ares, err := ais.Mine(sc, *support, opt)
		if err != nil {
			return err
		}
		if ares.Aborted {
			return fmt.Errorf("ais: candidate explosion; use -algorithm pincer or apriori")
		}
		res = &ares.Result
	case "eclat":
		opt := vertical.DefaultOptions()
		opt.KeepFrequent = *frequent
		res = vertical.Eclat(d, *support, opt)
	case "maxeclat":
		vres := vertical.MineMaximal(d, *support, vertical.DefaultOptions())
		res = &vres.Result
	case "topdown":
		topt := topdown.DefaultOptions()
		topt.Tracer = tracer
		tres, err := topdown.Mine(sc, *support, topt)
		if err != nil {
			return err
		}
		if tres.Aborted {
			return fmt.Errorf("topdown: frontier exploded; this algorithm only suits very concentrated data")
		}
		res = &tres.Result
	default:
		return fmt.Errorf("unknown algorithm %q", *algorithm)
	}
	if comp != nil {
		res.MFS = comp.OriginalAll(res.MFS)
		if res.Frequent != nil {
			translated := itemset.NewSet(res.Frequent.Len())
			res.Frequent.Each(func(x itemset.Itemset, c int64) {
				translated.AddWithCount(comp.Original(x), c)
			})
			res.Frequent = translated
		}
	}

	if *stats {
		fmt.Fprintln(os.Stderr, res.Stats.String())
		for _, p := range res.Stats.PassDetails {
			fmt.Fprintf(os.Stderr, "  pass %d: candidates=%d mfcs=%d frequent=%d maximal-found=%d\n",
				p.Pass, p.Candidates, p.MFCSCandidates, p.Frequent, p.MFSFound)
		}
	}

	if *asJSON {
		type jsonItemset struct {
			Items   []int32 `json:"items"`
			Support int64   `json:"support"`
		}
		doc := struct {
			Database     string        `json:"database"`
			Transactions int           `json:"transactions"`
			MinSupport   float64       `json:"min_support"`
			MinCount     int64         `json:"min_count"`
			Algorithm    string        `json:"algorithm"`
			Passes       int           `json:"passes"`
			Candidates   int64         `json:"candidates"`
			MFS          []jsonItemset `json:"maximal_frequent_itemsets"`
		}{
			Database: *input, Transactions: d.Len(),
			MinSupport: *support, MinCount: res.MinCount,
			Algorithm: *algorithm, Passes: res.Stats.Passes, Candidates: res.Stats.Candidates,
		}
		for i, m := range res.MFS {
			items := make([]int32, len(m))
			for j, it := range m {
				items[j] = int32(it)
			}
			doc.MFS = append(doc.MFS, jsonItemset{Items: items, Support: res.MFSSupports[i]})
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}

	fmt.Fprintf(out, "# %d transactions, min support %g (count %d), %d maximal frequent itemsets\n",
		d.Len(), *support, res.MinCount, len(res.MFS))
	for i, m := range res.MFS {
		fmt.Fprintf(out, "%v support=%d\n", m, res.MFSSupports[i])
	}
	if *frequent && res.Frequent != nil {
		fmt.Fprintf(out, "# %d frequent itemsets explicitly discovered\n", res.Frequent.Len())
		for _, f := range res.Frequent.Sorted() {
			c, _ := res.Frequent.Count(f)
			fmt.Fprintf(out, "%v support=%d\n", f, c)
		}
	}
	return nil
}
