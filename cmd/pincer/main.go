// Command pincer mines the maximum frequent set from a transaction
// database in the basket text format (one transaction of space-separated
// item ids per line).
//
// Usage:
//
//	pincer -input db.basket -support 0.05 [-algorithm pincer|apriori|topdown|fpmax|auto]
//	       [-engine hashtree|list|trie] [-counter scan|tidlist] [-workers n] [-pure] [-stats]
//	       [-frequent] [-json]
//
// The default algorithm is the adaptive Pincer-Search of Lin & Kedem
// (EDBT 1998); -algorithm auto profiles the database and picks the plan
// (pincer, vertical, or fpmax — see DESIGN.md §12), printing the choice
// and its rationale to stderr. Output is one maximal frequent itemset per
// line with its
// support count, or a JSON document with -json. -workers selects the
// count-distribution parallel miners (pincer and apriori only): counting is
// distributed over that many goroutines (0 = GOMAXPROCS) with results
// identical to the sequential run.
//
// Long runs are interruptible: Ctrl-C (or -timeout / -max-candidates)
// stops the mine at the next cancellation point and the command prints
// the partial anytime result — every maximal set found so far, a lower
// bound on the true MFS — and exits with status 0. With -checkpoint the
// miner also persists its state at every pass boundary, and -resume
// continues an interrupted run from that file instead of starting over.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"

	"pincer/internal/ais"
	"pincer/internal/apriori"
	"pincer/internal/checkpoint"
	"pincer/internal/core"
	"pincer/internal/counting"
	"pincer/internal/dataset"
	"pincer/internal/fpmax"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
	"pincer/internal/obsv"
	"pincer/internal/parallel"
	"pincer/internal/topdown"
	"pincer/internal/vertical"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pincer:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("pincer", flag.ContinueOnError)
	input := fs.String("input", "", "basket or binary database file (required)")
	support := fs.Float64("support", 0.05, "minimum support as a fraction, e.g. 0.05 for 5%")
	algorithm := fs.String("algorithm", "pincer", "mining algorithm: pincer, apriori, ais, eclat, maxeclat, topdown, fpmax, or auto (profile the database and pick the plan)")
	engineName := fs.String("engine", "hashtree", "counting engine: hashtree, list, or trie")
	counterName := fs.String("counter", "scan", "pincer support counting: scan (database passes) or tidlist (vertical tid-list intersection; tidlist:bitset|list|diffset forces the representation)")
	workers := fs.Int("workers", -1, "count-distribution parallel mining with this many workers (0 = GOMAXPROCS; pincer and apriori only; omit for sequential)")
	pure := fs.Bool("pure", false, "pincer only: disable the adaptive policy")
	stats := fs.Bool("stats", false, "print per-pass statistics to stderr")
	frequent := fs.Bool("frequent", false, "also print every explicitly discovered frequent itemset")
	asJSON := fs.Bool("json", false, "emit JSON instead of text")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars, and /debug/pprof/ on this address for the run's duration (e.g. localhost:6060)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	traceJSON := fs.String("trace-json", "", "write per-pass trace events as JSON lines to this file (\"-\" for stderr)")
	timeout := fs.Duration("timeout", 0, "abort the run after this long and print the partial anytime result (0 = no limit; pincer, apriori, and topdown)")
	maxCandidates := fs.Int("max-candidates", 0, "abort when a pass would count more candidates than this and print the partial result (0 = unlimited; pincer and apriori)")
	ckptPath := fs.String("checkpoint", "", "persist a resumable checkpoint to this file at every pass boundary (pincer and sequential apriori)")
	resume := fs.Bool("resume", false, "continue from the -checkpoint file instead of starting fresh")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *input == "" {
		fs.Usage()
		return fmt.Errorf("-input is required")
	}
	if *support <= 0 || *support > 1 {
		return fmt.Errorf("-support must be in (0, 1], got %v", *support)
	}
	cancellable := *algorithm == "pincer" || *algorithm == "apriori" || *algorithm == "topdown"
	if *timeout > 0 && !cancellable {
		return fmt.Errorf("-timeout requires -algorithm pincer, apriori, or topdown, got %q", *algorithm)
	}
	if *maxCandidates > 0 {
		if *algorithm != "pincer" && *algorithm != "apriori" {
			return fmt.Errorf("-max-candidates requires -algorithm pincer or apriori, got %q", *algorithm)
		}
		if *algorithm == "apriori" && *workers >= 0 {
			return fmt.Errorf("-max-candidates is not supported by the parallel apriori miner; drop -workers")
		}
	}
	if *resume && *ckptPath == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	if *ckptPath != "" {
		if *algorithm != "pincer" && *algorithm != "apriori" {
			return fmt.Errorf("-checkpoint requires -algorithm pincer or apriori, got %q", *algorithm)
		}
		if *algorithm == "apriori" && *workers >= 0 {
			return fmt.Errorf("-checkpoint is not supported by the parallel apriori miner; drop -workers")
		}
	}
	engine, err := counting.ParseEngine(*engineName)
	if err != nil {
		return err
	}
	tidlist, counterRep, err := counting.ParseCounterSpec(*counterName)
	if err != nil {
		return err
	}
	if tidlist && *algorithm != "pincer" {
		return fmt.Errorf("-counter tidlist requires -algorithm pincer, got %q", *algorithm)
	}

	// Ctrl-C cancels the mine at the next cancellation point; the partial
	// anytime result found so far is still printed below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var ckpt checkpoint.Checkpointer
	if *ckptPath != "" {
		ckpt = checkpoint.NewFileCheckpointer(*ckptPath)
	}

	prof, err := obsv.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := prof.Stop(); perr != nil {
			fmt.Fprintln(os.Stderr, "pincer:", perr)
		}
	}()
	var tracer obsv.Tracer
	if *metricsAddr != "" {
		reg := obsv.NewRegistry()
		tracer = obsv.NewMetricsTracer(reg)
		srv, err := obsv.Serve(*metricsAddr, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "pincer: serving metrics on http://%s/metrics (expvar /debug/vars, pprof /debug/pprof/)\n", srv.Addr)
	}
	if *traceJSON != "" {
		w := io.Writer(os.Stderr)
		if *traceJSON != "-" {
			f, err := os.Create(*traceJSON)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		tracer = obsv.Multi(tracer, obsv.NewJSONTracer(w))
	}

	d, err := dataset.Load(*input)
	if err != nil {
		return err
	}
	// Sparse item ids (SKUs, hashes) would size the pass-1/2 arrays by the
	// largest id; remap to a dense universe and translate results back.
	var comp *dataset.Compaction
	if dataset.WorthCompacting(d) {
		comp = dataset.Compact(d)
		fmt.Fprintf(os.Stderr, "pincer: compacted %d-wide universe to %d distinct items\n",
			d.NumItems(), comp.NumDenseItems())
		d = comp.Dataset
	}
	sc := dataset.NewScanner(d)

	// -algorithm auto: profile the (compacted) database and let the policy
	// pick the plan. Every plan it can choose produces the identical MFS;
	// the choice only moves wall-clock time.
	algo := *algorithm
	if algo == "auto" {
		sel := counting.SelectEngine(d.Profile())
		algo = sel.Algorithm
		if algo == "vertical" {
			algo = "maxeclat"
		}
		if sel.Counter == "tidlist" && !tidlist {
			tidlist = true
			counterRep = counting.RepAuto
		}
		plan := algo
		if sel.Counter != "" {
			plan += "/" + sel.Counter
		}
		fmt.Fprintf(os.Stderr, "pincer: auto plan: %s — %s\n", plan, sel.Rationale)
	}

	if *workers >= 0 && *algorithm != "pincer" && *algorithm != "apriori" {
		return fmt.Errorf("-workers requires -algorithm pincer or apriori, got %q", *algorithm)
	}
	popt := parallel.DefaultOptions()
	popt.Workers = *workers
	popt.Engine = engine
	popt.KeepFrequent = *frequent
	popt.Tracer = tracer
	popt.Context = ctx
	popt.Deadline = *timeout

	// A budget or cancellation surfaces as a *mfi.PartialResultError whose
	// Result is the anytime answer; treat it as a successful (partial) run.
	var partial *mfi.PartialResultError
	handle := func(err error) error {
		var pe *mfi.PartialResultError
		if errors.As(err, &pe) && pe.Result != nil {
			partial = pe
			return nil
		}
		return err
	}
	minCount := dataset.MinCountFor(d.Len(), *support)

	var res *mfi.Result
	switch algo {
	case "pincer":
		opt := core.DefaultOptions()
		opt.Engine = engine
		opt.Pure = *pure
		opt.KeepFrequent = *frequent
		opt.Tracer = tracer
		opt.Context = ctx
		opt.Deadline = *timeout
		opt.MaxCandidatesPerPass = *maxCandidates
		opt.Checkpointer = ckpt
		if tidlist {
			tw := 1
			switch {
			case *workers == 0:
				tw = runtime.GOMAXPROCS(0)
			case *workers > 0:
				tw = *workers
			}
			opt.Counter = counting.NewTidListCounter(d, counting.TidListOptions{Workers: tw, Rep: counterRep})
		}
		switch {
		case *workers >= 0 && *resume:
			res, err = parallel.MinePincerResume(d, minCount, opt, popt)
		case *workers >= 0:
			res, err = parallel.MinePincerOpts(d, *support, opt, popt)
		case *resume:
			res, err = core.MineResume(sc, minCount, opt)
		default:
			res, err = core.Mine(sc, *support, opt)
		}
		if err = handle(err); err != nil {
			return err
		}
	case "apriori":
		if *workers >= 0 {
			res, err = parallel.MineApriori(d, *support, popt)
		} else {
			opt := apriori.DefaultOptions()
			opt.Engine = engine
			opt.KeepFrequent = *frequent
			opt.Tracer = tracer
			opt.Context = ctx
			opt.Deadline = *timeout
			opt.MaxCandidatesPerPass = *maxCandidates
			opt.Checkpointer = ckpt
			if *resume {
				res, err = apriori.MineResume(sc, minCount, opt)
			} else {
				res, err = apriori.Mine(sc, *support, opt)
			}
		}
		if err = handle(err); err != nil {
			return err
		}
	case "ais":
		opt := ais.DefaultOptions()
		opt.KeepFrequent = *frequent
		ares, err := ais.Mine(sc, *support, opt)
		if err != nil {
			return err
		}
		if ares.Aborted {
			return fmt.Errorf("ais: candidate explosion; use -algorithm pincer or apriori")
		}
		res = &ares.Result
	case "eclat":
		opt := vertical.DefaultOptions()
		opt.KeepFrequent = *frequent
		res = vertical.Eclat(d, *support, opt)
	case "maxeclat":
		vres := vertical.MineMaximal(d, *support, vertical.DefaultOptions())
		res = &vres.Result
	case "fpmax":
		fres := fpmax.MineMaximal(d, *support, fpmax.DefaultOptions())
		res = &fres.Result
	case "topdown":
		topt := topdown.DefaultOptions()
		topt.Tracer = tracer
		topt.Context = ctx
		topt.Deadline = *timeout
		tres, err := topdown.Mine(sc, *support, topt)
		if err = handle(err); err != nil {
			return err
		}
		if tres != nil {
			if tres.Aborted {
				return fmt.Errorf("topdown: frontier exploded; this algorithm only suits very concentrated data")
			}
			res = &tres.Result
		}
	default:
		return fmt.Errorf("unknown algorithm %q", *algorithm)
	}
	if partial != nil {
		res = partial.Result
		fmt.Fprintf(os.Stderr, "pincer: run stopped early (%s) at pass %d; printing the partial anytime result\n",
			partial.Reason, partial.Pass)
		if ckpt != nil {
			if st, _ := ckpt.Load(); st != nil {
				fmt.Fprintf(os.Stderr, "pincer: checkpoint saved; rerun with -resume -checkpoint %s to continue\n", *ckptPath)
			}
		}
	}
	if comp != nil {
		res.MFS = comp.OriginalAll(res.MFS)
		if res.Frequent != nil {
			translated := itemset.NewSet(res.Frequent.Len())
			res.Frequent.Each(func(x itemset.Itemset, c int64) {
				translated.AddWithCount(comp.Original(x), c)
			})
			res.Frequent = translated
		}
	}

	if *stats {
		fmt.Fprintln(os.Stderr, res.Stats.String())
		for _, p := range res.Stats.PassDetails {
			fmt.Fprintf(os.Stderr, "  pass %d: candidates=%d mfcs=%d frequent=%d maximal-found=%d\n",
				p.Pass, p.Candidates, p.MFCSCandidates, p.Frequent, p.MFSFound)
		}
	}

	if *asJSON {
		type jsonItemset struct {
			Items   []int32 `json:"items"`
			Support int64   `json:"support"`
		}
		doc := struct {
			Database     string        `json:"database"`
			Transactions int           `json:"transactions"`
			MinSupport   float64       `json:"min_support"`
			MinCount     int64         `json:"min_count"`
			Algorithm    string        `json:"algorithm"`
			Passes       int           `json:"passes"`
			Candidates   int64         `json:"candidates"`
			Partial      string        `json:"partial_reason,omitempty"`
			PartialPass  int           `json:"partial_pass,omitempty"`
			MFS          []jsonItemset `json:"maximal_frequent_itemsets"`
		}{
			Database: *input, Transactions: d.Len(),
			MinSupport: *support, MinCount: res.MinCount,
			Algorithm: algo, Passes: res.Stats.Passes, Candidates: res.Stats.Candidates,
		}
		if partial != nil {
			doc.Partial = partial.Reason
			doc.PartialPass = partial.Pass
		}
		for i, m := range res.MFS {
			items := make([]int32, len(m))
			for j, it := range m {
				items[j] = int32(it)
			}
			doc.MFS = append(doc.MFS, jsonItemset{Items: items, Support: res.MFSSupports[i]})
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}

	if partial != nil {
		fmt.Fprintf(out, "# PARTIAL result (%s, stopped at pass %d): the sets below are frequent but may not be maximal\n",
			partial.Reason, partial.Pass)
	}
	fmt.Fprintf(out, "# %d transactions, min support %g (count %d), %d maximal frequent itemsets\n",
		d.Len(), *support, res.MinCount, len(res.MFS))
	for i, m := range res.MFS {
		fmt.Fprintf(out, "%v support=%d\n", m, res.MFSSupports[i])
	}
	if *frequent && res.Frequent != nil {
		fmt.Fprintf(out, "# %d frequent itemsets explicitly discovered\n", res.Frequent.Len())
		for _, f := range res.Frequent.Sorted() {
			c, _ := res.Frequent.Count(f)
			fmt.Fprintf(out, "%v support=%d\n", f, c)
		}
	}
	return nil
}
