// Command benchrun regenerates the paper's evaluation figures: for every
// benchmark database and minimum support it runs Apriori and Pincer-Search
// and prints the three panels the paper plots — relative execution time,
// number of candidates, and number of passes.
//
// Usage:
//
//	benchrun                        # both figures at the default |D|=10K scale
//	benchrun -figure 4              # concentrated distributions only
//	benchrun -spec F4-T20I15        # one experiment
//	benchrun -d 100000              # paper-scale |D|
//	benchrun -budget 120s           # skip cells after an algorithm exceeds 2 min
//	benchrun -csv results.csv       # machine-readable output too
//	benchrun -workers 1,2,4         # parallel Pincer workers sweep (with -json out.json)
//	benchrun -cluster 1,2,4         # distributed sweep over an in-process loopback cluster
//	benchrun -stream-cluster 1,2,4  # distributed-streams sweep: per-delta cost over a loopback cluster
//	benchrun -vertical -spec F4-T20I10      # scan vs tid-list counting sweep
//	benchrun -counter tidlist       # figure cells count by tid-list intersection
//	benchrun -timeout 10m           # stop cleanly after 10 minutes (Ctrl-C does the same)
//	benchrun -checkpoint run.ckpt -resume   # continue pincer cells from an interrupted run
//
// Cells run from the highest support downward; once an algorithm blows the
// -budget on a cell, its harder cells are skipped and marked (the paper
// reports the same rows as ">2 orders of magnitude").
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"pincer/internal/bench"
	"pincer/internal/checkpoint"
	"pincer/internal/counting"
	"pincer/internal/obsv"
)

// parseWorkers parses a comma-separated worker-count list such as "1,2,4".
// 0 is allowed and means GOMAXPROCS.
func parseWorkers(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("-workers wants a comma-separated list of non-negative counts, got %q", s)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchrun", flag.ContinueOnError)
	figure := fs.Int("figure", 0, "run only figure 3 (scattered) or 4 (concentrated); 0 = both")
	specID := fs.String("spec", "", "run a single experiment by id, e.g. F4-T20I10")
	numTx := fs.Int("d", 10_000, "|D|: transactions per database (paper scale: 100000)")
	budget := fs.Duration("budget", 5*time.Minute, "per-algorithm time budget; harder cells are skipped once exceeded (0 = unlimited)")
	engineName := fs.String("engine", "hashtree", "counting engine: hashtree, list, or trie")
	counterName := fs.String("counter", "scan", "pincer support counting for the figure cells: scan or tidlist[:bitset|list|diffset]; also sets the representation of -vertical")
	vertical := fs.Bool("vertical", false, "run the scan-vs-tidlist counting sweep for one spec instead of the figures (honors -spec, -repeats, -json)")
	engines := fs.Bool("engines", false, "run the adaptive engine-selection sweep on the rising-density ladder instead of the figures (honors -d, -repeats, -json)")
	stream := fs.Bool("stream", false, "run the incremental-maintenance sweep: stream the spec's database batch by batch, pricing each border-check delta against a from-scratch mine (honors -spec, -d, -repeats, -counter, -json)")
	streamBatchTx := fs.Int("stream-batch-tx", 500, "stream sweep: transactions per batch")
	streamSup := fs.Float64("stream-support", 0.2, "stream sweep: maintained minimum support")
	engineDatasets := fs.Int("engine-datasets", 6, "engine sweep: datasets on the rising-density ladder")
	verticalWorkers := fs.Int("vertical-workers", 1, "vertical sweep: tid-list counting workers")
	pure := fs.Bool("pure", false, "use pure (non-adaptive) Pincer-Search")
	csvPath := fs.String("csv", "", "also write results as CSV to this file")
	quiet := fs.Bool("q", false, "suppress per-cell progress lines")
	baselines := fs.Bool("baselines", false, "run the cross-algorithm comparison (§5's baselines) instead of the figures")
	baselineSup := fs.Float64("baseline-support", 0.06, "minimum support for the baseline comparison")
	workersList := fs.String("workers", "", "comma-separated worker counts, e.g. 1,2,4 (0 = GOMAXPROCS): run the count-distribution parallel Pincer sweep instead of the figures")
	clusterList := fs.String("cluster", "", "comma-separated cluster worker counts, e.g. 1,2,4: run the distributed sweep over an in-process loopback cluster instead of the figures (honors -spec, -d, -repeats, -parallel-support, -json)")
	streamClusterList := fs.String("stream-cluster", "", "comma-separated worker counts, e.g. 1,2,4: run the distributed-streams sweep — per-delta cost of a cluster-backed maintainer over an in-process loopback cluster vs the single-node maintainer (honors -spec, -d, -repeats, -counter, -stream-batch-tx, -stream-support, -json)")
	parallelSup := fs.Float64("parallel-support", 0.06, "minimum support for the parallel and cluster sweeps")
	repeats := fs.Int("repeats", 3, "parallel sweep: measurements per setting (minimum is reported)")
	jsonPath := fs.String("json", "", "parallel sweep: also write the report as JSON to this file")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars, and /debug/pprof/ on this address while the benchmark runs (e.g. localhost:6060)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	traceJSON := fs.String("trace-json", "", "parallel sweep: trace per-pass events — written as JSON lines to this file (\"-\" for stderr) and folded into the -json report")
	timeout := fs.Duration("timeout", 0, "overall wall-clock limit: the harness is cancelled and the remaining cells are marked skipped (0 = none)")
	maxCandidates := fs.Int("max-candidates", 0, "per-pass candidate budget for both algorithms; a cell whose pass exceeds it is marked skipped (0 = unlimited)")
	ckptPath := fs.String("checkpoint", "", "pincer cells persist a resumable checkpoint to this file at every pass boundary")
	resume := fs.Bool("resume", false, "pincer cells continue from a matching -checkpoint file instead of starting fresh")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *resume && *ckptPath == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	if *baselines && (*timeout > 0 || *maxCandidates > 0 || *ckptPath != "") {
		return fmt.Errorf("-timeout, -max-candidates, and -checkpoint are not supported with -baselines")
	}
	engine, err := counting.ParseEngine(*engineName)
	if err != nil {
		return err
	}
	tidlist, counterRep, err := counting.ParseCounterSpec(*counterName)
	if err != nil {
		return err
	}

	// Ctrl-C (or -timeout) cancels the harness: in-flight cells stop at the
	// next cancellation point and the tables report what finished.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	prof, err := obsv.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := prof.Stop(); perr != nil {
			fmt.Fprintln(os.Stderr, "benchrun:", perr)
		}
	}()
	var tracer obsv.Tracer
	if *metricsAddr != "" {
		reg := obsv.NewRegistry()
		tracer = obsv.NewMetricsTracer(reg)
		srv, err := obsv.Serve(*metricsAddr, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "benchrun: serving metrics on http://%s/metrics (expvar /debug/vars, pprof /debug/pprof/)\n", srv.Addr)
	}
	if *traceJSON != "" {
		w := io.Writer(os.Stderr)
		if *traceJSON != "-" {
			f, err := os.Create(*traceJSON)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		tracer = obsv.Multi(tracer, obsv.NewJSONTracer(w))
	}

	if *stream {
		spec, ok := bench.SpecByID("F4-T20I10", *numTx)
		if *specID != "" {
			spec, ok = bench.SpecByID(*specID, *numTx)
		}
		if !ok {
			return fmt.Errorf("unknown spec %q", *specID)
		}
		opt := bench.DefaultOptions()
		opt.Engine = engine
		opt.Context = ctx
		if tidlist {
			opt.Counter = "tidlist"
		}
		if !*quiet {
			opt.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
		}
		rep := bench.RunStreamSweep(spec, *streamSup, *streamBatchTx, *repeats, opt)
		if err := bench.WriteStreamTable(os.Stdout, rep); err != nil {
			return err
		}
		if *jsonPath != "" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := bench.WriteStreamJSON(f, rep); err != nil {
				return err
			}
		}
		if rep.Err != "" {
			fmt.Fprintf(os.Stderr, "benchrun: sweep stopped early: %s\n", rep.Err)
			return nil
		}
		for _, c := range rep.Cells {
			if !c.Agree {
				return fmt.Errorf("correctness check failed: maintained MFS diverges from the from-scratch mine at seq %d", c.Seq)
			}
		}
		if rep.FastPathDeltas == 0 {
			return fmt.Errorf("workload check failed: no batch was absorbed by the border check (every delta re-mined)")
		}
		return nil
	}

	if *engines {
		opt := bench.DefaultOptions()
		opt.Context = ctx
		if !*quiet {
			opt.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
		}
		// The figures' |D| default is oversized for a 6-plan × 12-cell
		// sweep; default to 1000 transactions unless -d was given.
		engineTx := 1000
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "d" {
				engineTx = *numTx
			}
		})
		params := bench.EngineSweepDatasets(engineTx, *engineDatasets)
		rep := bench.RunEngineSweep(params, []float64{0.05, 0.15}, *repeats, opt)
		if err := bench.WriteEngineTable(os.Stdout, rep); err != nil {
			return err
		}
		if *jsonPath != "" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := bench.WriteEngineJSON(f, rep); err != nil {
				return err
			}
		}
		if rep.Err != "" {
			fmt.Fprintf(os.Stderr, "benchrun: sweep stopped early: %s\n", rep.Err)
			return nil
		}
		for _, c := range rep.Cells {
			if !c.Agree {
				return fmt.Errorf("correctness check failed: plans disagree on %s at minsup %g", c.Dataset, c.Support)
			}
		}
		if !rep.AutoNeverWorst {
			return fmt.Errorf("policy check failed: auto was the worst plan on at least one cell")
		}
		return nil
	}

	if *vertical {
		spec, ok := bench.SpecByID("F4-T20I10", *numTx)
		if *specID != "" {
			spec, ok = bench.SpecByID(*specID, *numTx)
		}
		if !ok {
			return fmt.Errorf("unknown spec %q", *specID)
		}
		opt := bench.DefaultOptions()
		opt.Engine = engine
		opt.Pincer.Pure = *pure
		opt.Pincer.MaxCandidatesPerPass = *maxCandidates
		opt.Context = ctx
		if !*quiet {
			opt.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
		}
		rep := bench.RunVerticalSweep(spec, *verticalWorkers, *repeats, counterRep, opt)
		if err := bench.WriteVerticalTable(os.Stdout, rep); err != nil {
			return err
		}
		if *jsonPath != "" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := bench.WriteVerticalJSON(f, []bench.VerticalReport{rep}); err != nil {
				return err
			}
		}
		if rep.Err != "" {
			fmt.Fprintf(os.Stderr, "benchrun: sweep stopped early: %s\n", rep.Err)
			return nil
		}
		for _, c := range rep.Cells {
			if !c.Agree && c.Scan.Err == "" && c.TidList.Err == "" {
				return fmt.Errorf("correctness check failed: tidlist disagrees with scan at minsup %g", c.Support)
			}
		}
		return nil
	}

	if *clusterList != "" {
		counts, err := parseWorkers(*clusterList)
		if err != nil {
			return err
		}
		for _, n := range counts {
			if n < 1 {
				return fmt.Errorf("-cluster wants worker counts >= 1, got %d", n)
			}
		}
		spec, ok := bench.SpecByID("F4-T20I10", *numTx)
		if *specID != "" {
			spec, ok = bench.SpecByID(*specID, *numTx)
		}
		if !ok {
			return fmt.Errorf("unknown spec %q", *specID)
		}
		opt := bench.DefaultOptions()
		opt.Engine = engine
		opt.Pincer.Pure = *pure
		opt.Pincer.MaxCandidatesPerPass = *maxCandidates
		opt.Context = ctx
		if !*quiet {
			opt.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
		}
		rep := bench.RunClusterSweep(spec, *parallelSup, counts, *repeats, opt)
		if err := bench.WriteClusterTable(os.Stdout, rep); err != nil {
			return err
		}
		if *jsonPath != "" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := bench.WriteClusterJSON(f, []bench.ClusterReport{rep}); err != nil {
				return err
			}
		}
		if rep.Err != "" {
			fmt.Fprintf(os.Stderr, "benchrun: sweep stopped early: %s\n", rep.Err)
			return nil
		}
		for _, m := range rep.Runs {
			if !m.Agree && m.Err == "" {
				return fmt.Errorf("correctness check failed: cluster workers=%d disagrees with the sequential run", m.Workers)
			}
		}
		return nil
	}

	if *streamClusterList != "" {
		counts, err := parseWorkers(*streamClusterList)
		if err != nil {
			return err
		}
		for _, n := range counts {
			if n < 1 {
				return fmt.Errorf("-stream-cluster wants worker counts >= 1, got %d", n)
			}
		}
		spec, ok := bench.SpecByID("F4-T20I10", *numTx)
		if *specID != "" {
			spec, ok = bench.SpecByID(*specID, *numTx)
		}
		if !ok {
			return fmt.Errorf("unknown spec %q", *specID)
		}
		opt := bench.DefaultOptions()
		opt.Engine = engine
		opt.Context = ctx
		if tidlist {
			opt.Counter = "tidlist"
		}
		if !*quiet {
			opt.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
		}
		rep := bench.RunStreamClusterSweep(spec, *streamSup, *streamBatchTx, counts, *repeats, opt)
		if err := bench.WriteStreamClusterTable(os.Stdout, rep); err != nil {
			return err
		}
		if *jsonPath != "" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := bench.WriteStreamClusterJSON(f, rep); err != nil {
				return err
			}
		}
		if rep.Err != "" {
			fmt.Fprintf(os.Stderr, "benchrun: sweep stopped early: %s\n", rep.Err)
			return nil
		}
		for _, m := range rep.Runs {
			if m.Err != "" {
				continue
			}
			if !m.Agree {
				return fmt.Errorf("correctness check failed: stream cluster workers=%d diverges from the single-node maintainer", m.Workers)
			}
			if m.Degraded {
				return fmt.Errorf("health check failed: stream cluster workers=%d degraded below quorum on a loopback pool", m.Workers)
			}
		}
		return nil
	}

	if *workersList != "" {
		counts, err := parseWorkers(*workersList)
		if err != nil {
			return err
		}
		spec, ok := bench.SpecByID("F4-T20I10", *numTx)
		if *specID != "" {
			spec, ok = bench.SpecByID(*specID, *numTx)
		}
		if !ok {
			return fmt.Errorf("unknown spec %q", *specID)
		}
		opt := bench.DefaultOptions()
		opt.Engine = engine
		opt.Pincer.Pure = *pure
		opt.Pincer.MaxCandidatesPerPass = *maxCandidates
		opt.Tracer = tracer
		opt.Context = ctx
		opt.Resume = *resume
		if *ckptPath != "" {
			opt.Pincer.Checkpointer = checkpoint.NewFileCheckpointer(*ckptPath)
		}
		if !*quiet {
			opt.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
		}
		rep := bench.RunParallelSweep(spec, *parallelSup, counts, *repeats, opt)
		if err := bench.WriteParallelTable(os.Stdout, rep); err != nil {
			return err
		}
		if *jsonPath != "" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := bench.WriteParallelJSON(f, []bench.ParallelReport{rep}); err != nil {
				return err
			}
		}
		if rep.Err != "" {
			fmt.Fprintf(os.Stderr, "benchrun: sweep stopped early: %s\n", rep.Err)
			return nil
		}
		for _, m := range rep.Runs {
			if !m.Agree && m.Err == "" {
				return fmt.Errorf("correctness check failed: workers=%d disagrees with the sequential run", m.Workers)
			}
		}
		return nil
	}

	if *baselines {
		p, ok := bench.SpecByID("F4-T20I10", *numTx)
		if *specID != "" {
			p, ok = bench.SpecByID(*specID, *numTx)
		}
		if !ok {
			return fmt.Errorf("unknown spec %q", *specID)
		}
		opt := bench.DefaultOptions()
		opt.Engine = engine
		rows := bench.RunBaselines(p.Quest, *baselineSup, opt)
		return bench.WriteBaselines(os.Stdout, p.Quest, *baselineSup, rows)
	}

	var specs []bench.Spec
	switch {
	case *specID != "":
		s, ok := bench.SpecByID(*specID, *numTx)
		if !ok {
			return fmt.Errorf("unknown spec %q (want one of F3-T5I2, F3-T10I4, F3-T20I6, F4-T20I6, F4-T20I10, F4-T20I15)", *specID)
		}
		specs = []bench.Spec{s}
	case *figure == 3:
		specs = bench.Figure3Specs(*numTx)
	case *figure == 4:
		specs = bench.Figure4Specs(*numTx)
	case *figure == 0:
		specs = bench.AllSpecs(*numTx)
	default:
		return fmt.Errorf("-figure must be 0, 3, or 4")
	}

	opt := bench.DefaultOptions()
	opt.Engine = engine
	opt.Budget = *budget
	opt.Pincer.Pure = *pure
	if tidlist {
		opt.Counter = "tidlist"
		opt.CounterRep = counterRep
	}
	opt.Pincer.MaxCandidatesPerPass = *maxCandidates
	opt.Apriori.MaxCandidatesPerPass = *maxCandidates
	opt.Context = ctx
	opt.Resume = *resume
	if *ckptPath != "" {
		opt.Pincer.Checkpointer = checkpoint.NewFileCheckpointer(*ckptPath)
	}
	if !*quiet {
		opt.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}

	var allCells []bench.Cell
	for _, spec := range specs {
		fmt.Fprintf(os.Stderr, "== %s: generating %s (|D|=%d) ==\n", spec.ID, spec.Name(), spec.Quest.Defaults().NumTransactions)
		cells := bench.RunSpec(spec, opt)
		if err := bench.WriteTable(os.Stdout, spec, cells); err != nil {
			return err
		}
		allCells = append(allCells, cells...)
	}

	if ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "benchrun: stopped early (%v); unfinished cells are marked skipped\n", ctx.Err())
	}

	disagreements := 0
	for _, c := range allCells {
		if !c.Agree && !c.Apriori.Skipped && !c.Pincer.Skipped {
			disagreements++
		}
	}
	if disagreements > 0 {
		fmt.Fprintf(os.Stderr, "WARNING: %d cells where Apriori and Pincer-Search disagree on the MFS\n", disagreements)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := bench.WriteCSV(f, allCells); err != nil {
			return err
		}
	}
	if disagreements > 0 {
		return fmt.Errorf("correctness check failed on %d cells", disagreements)
	}
	return nil
}
