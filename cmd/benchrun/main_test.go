package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBenchrunSingleSpec(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "out.csv")
	err := run([]string{"-spec", "F4-T20I6", "-d", "400", "-q", "-csv", csv, "-budget", "0"})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if !strings.Contains(out, "F4-T20I6") {
		t.Errorf("csv missing spec id:\n%s", out)
	}
	// every non-header line ends with agree=true, skipped=false
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 2 {
		t.Fatalf("csv too short:\n%s", out)
	}
	for _, l := range lines[1:] {
		if !strings.HasSuffix(l, "true,false") {
			t.Errorf("cell not agreeing or skipped: %q", l)
		}
	}
}

func TestBenchrunErrors(t *testing.T) {
	if err := run([]string{"-spec", "F9-NOPE"}); err == nil {
		t.Error("unknown spec accepted")
	}
	if err := run([]string{"-figure", "7"}); err == nil {
		t.Error("bad figure accepted")
	}
	if err := run([]string{"-engine", "abacus"}); err == nil {
		t.Error("bad engine accepted")
	}
	if err := run([]string{"-workers", "1,two"}); err == nil {
		t.Error("bad worker list accepted")
	}
	if err := run([]string{"-workers", "-3"}); err == nil {
		t.Error("negative worker count accepted")
	}
	if err := run([]string{"-workers", "1,2", "-spec", "F9-NOPE"}); err == nil {
		t.Error("unknown spec accepted in parallel sweep")
	}
}

func TestBenchrunParallelSweep(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "parallel.json")
	err := run([]string{"-workers", "1,2", "-spec", "F4-T20I6", "-d", "400",
		"-parallel-support", "0.15", "-repeats", "1", "-q", "-json", jsonPath})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{`"spec": "F4-T20I6"`, `"workers": 2`, `"agree": true`, `"sequential_seconds"`} {
		if !strings.Contains(out, want) {
			t.Errorf("json missing %q:\n%s", want, out)
		}
	}
}

func TestBenchrunFlagValidation(t *testing.T) {
	if err := run([]string{"-resume"}); err == nil {
		t.Error("-resume without -checkpoint accepted")
	}
	if err := run([]string{"-baselines", "-timeout", "1s"}); err == nil {
		t.Error("-baselines with -timeout accepted")
	}
	if err := run([]string{"-baselines", "-checkpoint", "x"}); err == nil {
		t.Error("-baselines with -checkpoint accepted")
	}
}

// TestBenchrunTimeoutSkipsCells runs the figure harness with an expired
// deadline: every cell must be marked skipped, and the command must still
// exit cleanly with a complete CSV.
func TestBenchrunTimeoutSkipsCells(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "out.csv")
	err := run([]string{"-spec", "F4-T20I6", "-d", "400", "-q", "-budget", "0",
		"-timeout", "1ns", "-csv", csv})
	if err != nil {
		t.Fatalf("timed-out run should exit cleanly, got %v", err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 2 {
		t.Fatalf("csv too short:\n%s", string(data))
	}
	for _, l := range lines[1:] {
		if !strings.HasSuffix(l, "true") { // skipped column
			t.Errorf("cell not marked skipped: %q", l)
		}
	}
}

func TestBenchrunCheckpointSweepCompletes(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	err := run([]string{"-workers", "1", "-spec", "F4-T20I6", "-d", "400",
		"-parallel-support", "0.15", "-repeats", "1", "-q",
		"-checkpoint", ckpt, "-resume"})
	if err != nil {
		t.Fatal(err)
	}
	// Completed runs clear their checkpoint.
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Errorf("checkpoint not cleared after a completed sweep: %v", err)
	}
}
