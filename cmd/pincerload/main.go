// Command pincerload is the load generator and soak harness for pincerd.
//
// Usage:
//
//	pincerload -target http://host:8080 [-duration 10s] [-concurrency 8]
//	           [-rate hz] [-datasets n] [-minsup 0.2,0.4] [-miners list]
//	           [-resubmit r] [-cancel r] [-verify] [-out FILE.json]
//	pincerload -local [-chaos-interval 2s] [-chaos-restarts 2] ...
//
// It drives the daemon with a mix of Quest-generated datasets × a
// minimum-support grid × miner engines: closed loop (-concurrency clients,
// each submit → poll-until-terminal → repeat) or open loop (-rate fixed
// arrivals per second). -resubmit replays already-submitted cells to
// exercise the result cache; -cancel DELETEs a share of accepted jobs.
// The run's per-endpoint latency histograms (p50/p95/p99/max), throughput,
// status-code taxonomy (2xx/4xx/429/503), and job accounting (done,
// partial, cancelled, failed, lost — lost must be zero) land in -out as
// JSON (default BENCH_serve_load.json).
//
// With -local the harness boots an in-process pincerd instead of dialing a
// -target, which also unlocks soak mode: -chaos-interval kill-restarts the
// daemon on that interval (-chaos-restarts times), exercising the
// spool-resume path mid-burst; with -verify every complete result is
// diffed against a sequential reference mine — a lost job or a divergent
// result fails the run with exit status 1.
//
// -cluster-workers n attaches n in-process cluster counting workers to the
// -local daemon and adds distributed ("cluster") cells to the mix;
// -chaos-kill-worker turns the chaos ticks into worker kills — crashing a
// worker at a pass barrier on even ticks and mid-scan on odd ones instead
// of restarting the daemon — exercising the coordinator's retry,
// reassignment, and quorum-degradation machinery under load.
//
// -streams n holds n incremental streams open alongside the job mix, each
// fed stocks-generated batches with explicit sequence numbers through the
// window, so batch retries across chaos restarts are acknowledged as
// duplicates instead of double-applied; with -verify each stream's final
// maintained MFS is diffed against a sequential reference mine of the
// delivered transactions. Combining -streams with -cluster-workers opens
// every stream with "cluster": true, fanning each delta's verification
// counting over the same worker pool -chaos-kill-worker crashes — the
// full distributed-streams failure model in one run.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"pincer/internal/loadgen"
	"pincer/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pincerload:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pincerload", flag.ContinueOnError)
	target := fs.String("target", "", "base URL of a running pincerd (e.g. http://127.0.0.1:8080)")
	local := fs.Bool("local", false, "boot an in-process daemon instead of dialing -target")
	spool := fs.String("spool", "", "spool directory for -local (default: a temp dir)")
	workers := fs.Int("workers", 2, "worker pool size of the -local daemon, and workers for parallel-miner cells")
	queue := fs.Int("queue", 16, "run-queue bound of the -local daemon")
	duration := fs.Duration("duration", 10*time.Second, "submission window")
	concurrency := fs.Int("concurrency", 8, "closed-loop client count")
	rate := fs.Float64("rate", 0, "open-loop arrival rate in requests/second (0 = closed loop)")
	datasets := fs.Int("datasets", 3, "number of Quest datasets in the mix")
	minsupFlag := fs.String("minsup", "0.2,0.4,0.6", "comma-separated minimum-support grid")
	minersFlag := fs.String("miners", "pincer,apriori,topdown,vertical,parallel,fpmax,auto,pincer/auto",
		"comma-separated miner engines; \"auto\" delegates the plan, \"miner/auto\" delegates the counting engine")
	resubmit := fs.Float64("resubmit", 0.3, "probability a request replays a submitted cell (cache exercise)")
	cancel := fs.Float64("cancel", 0.05, "probability an accepted job is DELETEd")
	seed := fs.Int64("seed", 1, "mix seed (equal seeds replay the same request sequence)")
	jobDeadline := fs.Duration("job-deadline", 5*time.Second, "deadline_ms stamped on every job; pathological cells end partial instead of wedging a worker (0 = none)")
	verify := fs.Bool("verify", false, "diff every complete result against a sequential reference mine")
	chaosInterval := fs.Duration("chaos-interval", 0, "inject one chaos fault on this interval (0 = off); restarts the -local daemon unless -chaos-kill-worker redirects the ticks")
	chaosRestarts := fs.Int("chaos-restarts", 2, "restart budget for -chaos-interval (0 = until the window closes)")
	clusterWorkers := fs.Int("cluster-workers", 0, "attach this many in-process cluster counting workers to the -local daemon and add cluster cells to the mix (0 = no cluster)")
	chaosKillWorker := fs.Bool("chaos-kill-worker", false, "chaos ticks kill a cluster worker (pass-barrier/mid-scan alternating) instead of restarting the daemon")
	streams := fs.Int("streams", 0, "hold this many incremental streams open alongside the job mix, fed stocks batches through the window (0 = no streams)")
	streamBatches := fs.Int("stream-batches", 12, "batches appended per stream")
	streamBatchTx := fs.Int("stream-batch-tx", 40, "trading days per stream batch")
	out := fs.String("out", "BENCH_serve_load.json", "report file (- for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*target == "") == !*local {
		fs.Usage()
		return errors.New("exactly one of -target or -local is required")
	}
	if *chaosInterval > 0 && !*local {
		return errors.New("-chaos-interval needs -local (the harness must own the daemon it restarts)")
	}
	if *clusterWorkers > 0 && !*local {
		return errors.New("-cluster-workers needs -local (the harness must own the cluster it attaches)")
	}
	if *chaosKillWorker && *clusterWorkers <= 0 {
		return errors.New("-chaos-kill-worker needs -cluster-workers (there must be workers to kill)")
	}
	if *chaosKillWorker && *chaosInterval <= 0 {
		return errors.New("-chaos-kill-worker needs -chaos-interval (the kill cadence)")
	}
	minsups, err := parseFloats(*minsupFlag)
	if err != nil {
		return fmt.Errorf("-minsup: %w", err)
	}
	miners := strings.Split(*minersFlag, ",")
	for i := range miners {
		miners[i] = strings.TrimSpace(miners[i])
	}

	logger := log.New(os.Stderr, "pincerload: ", log.LstdFlags)
	cfg := loadgen.Config{
		BaseURL:       *target,
		Concurrency:   *concurrency,
		RateHz:        *rate,
		Duration:      *duration,
		ResubmitRatio: *resubmit,
		CancelRatio:   *cancel,
		Seed:          *seed,
		JobDeadline:   *jobDeadline,
		Verify:        *verify,
		Streams:       *streams,
		StreamBatches: *streamBatches,
		StreamBatchTx: *streamBatchTx,
		Logf:          logger.Printf,
	}

	if *local {
		dir := *spool
		if dir == "" {
			if dir, err = os.MkdirTemp("", "pincerload-spool-*"); err != nil {
				return err
			}
			defer os.RemoveAll(dir)
		}
		scfg := server.Config{
			SpoolDir:  dir,
			Workers:   *workers,
			QueueSize: *queue,
		}
		var lc *loadgen.LocalCluster
		if *clusterWorkers > 0 {
			if lc, err = loadgen.StartLocalCluster(*clusterWorkers, logger.Printf); err != nil {
				return err
			}
			defer lc.Close()
			scfg.Cluster = lc.Pool()
			miners = append(miners, "cluster")
			if *streams > 0 {
				cfg.StreamCluster = true
			}
			logger.Printf("local cluster: %d counting workers attached (clustered streams: %v)",
				lc.Workers(), cfg.StreamCluster)
		}
		daemon, err := loadgen.StartLocal(scfg)
		if err != nil {
			return err
		}
		defer daemon.Close()
		cfg.BaseURL = daemon.URL()
		if *chaosInterval > 0 {
			cfg.Chaos = &loadgen.ChaosConfig{Interval: *chaosInterval}
			if *chaosKillWorker {
				cfg.Chaos.KillWorker = lc.ChaosTick
			} else {
				cfg.Chaos.MaxRestarts = *chaosRestarts
				cfg.Chaos.Restart = daemon.Restart
			}
		}
		logger.Printf("local daemon at %s (spool %s)", cfg.BaseURL, dir)
	}

	ds := loadgen.GenerateDatasets(*datasets, *seed)
	cfg.Cells = loadgen.BuildCells(ds, minsups, miners, *workers)
	logger.Printf("mix: %d datasets × %d supports × %d miners = %d cells",
		len(ds), len(minsups), len(miners), len(cfg.Cells))

	rep, err := loadgen.Run(context.Background(), cfg)
	if err != nil {
		return err
	}
	logger.Printf("%d requests (%.0f rps), codes %v", rep.Requests, rep.ThroughputRPS, rep.Codes)
	logger.Printf("jobs: accepted %d, cache hits %d, done %d, partial %d, cancelled %d, failed %d, lost %d",
		rep.Jobs.Accepted, rep.Jobs.CacheHits, rep.Jobs.Done, rep.Jobs.Partial,
		rep.Jobs.Cancelled, rep.Jobs.Failed, rep.Jobs.Lost)
	if rep.Streams != nil {
		logger.Printf("streams: %d open (%d clustered), %d batches (%d duplicate acks, %d retries), %d fast-path, %d re-mines, %d verified",
			rep.Streams.Streams, rep.Streams.Clustered, rep.Streams.Batches, rep.Streams.Duplicates, rep.Streams.Retries,
			rep.Streams.FastPath, rep.Streams.Remines, rep.Streams.Verified)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(data)
	} else {
		err = os.WriteFile(*out, data, 0o644)
		if err == nil {
			logger.Printf("report written to %s", *out)
		}
	}
	if err != nil {
		return err
	}

	// The harness's own pass/fail: overload may 429 and chaos may sever
	// connections, but a lost job, a failed job, or a divergent result is
	// a daemon bug.
	if rep.Jobs.Lost > 0 {
		return fmt.Errorf("%d accepted jobs never reached a terminal state: %v", rep.Jobs.Lost, rep.Jobs.LostIDs)
	}
	if rep.Jobs.Failed > 0 {
		return fmt.Errorf("%d jobs failed", rep.Jobs.Failed)
	}
	if len(rep.Jobs.Divergent) > 0 {
		return fmt.Errorf("%d results diverge from the sequential reference: %v", len(rep.Jobs.Divergent), rep.Jobs.Divergent)
	}
	if rep.Streams != nil {
		if len(rep.Streams.Failed) > 0 {
			return fmt.Errorf("%d streams failed: %v", len(rep.Streams.Failed), rep.Streams.Failed)
		}
		if len(rep.Streams.Divergent) > 0 {
			return fmt.Errorf("%d streams diverge from the sequential reference: %v", len(rep.Streams.Divergent), rep.Streams.Divergent)
		}
	}
	return nil
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}
