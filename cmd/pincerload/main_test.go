package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunRequiresTargetOrLocal(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("run without -target or -local: got nil error")
	}
	if err := run([]string{"-target", "http://x", "-local"}); err == nil {
		t.Fatal("run with both -target and -local: got nil error")
	}
	if err := run([]string{"-target", "http://x", "-chaos-interval", "1s"}); err == nil {
		t.Fatal("run with chaos against a remote target: got nil error")
	}
	if err := run([]string{"-local", "-minsup", "bogus"}); err == nil {
		t.Fatal("run with unparsable -minsup: got nil error")
	}
}

// TestShortLocalRun is the end-to-end CLI check: a sub-second local run
// must exit cleanly and write a report with per-endpoint latencies and a
// status-code taxonomy.
func TestShortLocalRun(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_serve_load.json")
	err := run([]string{
		"-local",
		"-duration", "500ms",
		"-concurrency", "4",
		"-datasets", "1",
		"-minsup", "0.4",
		"-miners", "pincer,apriori",
		"-verify",
		"-out", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Requests  int64                      `json:"requests"`
		Codes     map[string]int64           `json:"codes"`
		Endpoints map[string]json.RawMessage `json:"endpoints"`
		Jobs      struct {
			Lost int64 `json:"lost"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Requests == 0 || len(rep.Codes) == 0 {
		t.Errorf("report is empty: requests %d, codes %v", rep.Requests, rep.Codes)
	}
	if rep.Endpoints["submit"] == nil {
		t.Error("report has no submit endpoint section")
	}
	if rep.Jobs.Lost != 0 {
		t.Errorf("short local run lost %d jobs", rep.Jobs.Lost)
	}
}
