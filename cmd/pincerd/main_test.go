package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"pincer/internal/server"
)

func TestRunRequiresSpool(t *testing.T) {
	err := run([]string{"-addr", "localhost:0"})
	if err == nil || !strings.Contains(err.Error(), "-spool is required") {
		t.Fatalf("run without -spool: got %v, want -spool error", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("run with unknown flag: got nil error")
	}
}

// TestMaxBodyBytesFlagWiring boots the real daemon with a 1 KiB body cap
// and checks the flag reaches the handler: an oversized POST answers 413
// with the typed reason. Regression for the zero-timeout, uncapped
// http.Server the daemon originally ran.
func TestMaxBodyBytesFlagWiring(t *testing.T) {
	// Reserve a port, free it, and hand it to run(); the window where
	// another process could grab it is negligible for a test.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", addr, "-spool", t.TempDir(), "-max-body-bytes", "1024"})
	}()
	base := "http://" + addr
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never came up at %s: %v", base, err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	big, err := json.Marshal(server.JobRequest{
		Baskets:    strings.Repeat("1 2 3 4\n", 512),
		MinSupport: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	var e struct {
		Reason string `json:"reason"`
	}
	json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized POST: status %d, want 413", resp.StatusCode)
	}
	if e.Reason != server.ReasonBodyTooLarge {
		t.Errorf("413 reason = %q, want %q", e.Reason, server.ReasonBodyTooLarge)
	}

	// run() is parked on signal.Notify; a SIGTERM to ourselves drains it.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after SIGTERM")
	}
}
