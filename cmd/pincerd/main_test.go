package main

import (
	"strings"
	"testing"
)

func TestRunRequiresSpool(t *testing.T) {
	err := run([]string{"-addr", "localhost:0"})
	if err == nil || !strings.Contains(err.Error(), "-spool is required") {
		t.Fatalf("run without -spool: got %v, want -spool error", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("run with unknown flag: got nil error")
	}
}
