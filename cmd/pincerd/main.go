// Command pincerd serves maximum-frequent-set mining over HTTP.
//
// Usage:
//
//	pincerd -addr :8080 -spool /var/lib/pincerd [-workers n] [-queue n]
//	        [-cache-bytes n] [-max-body-bytes n] [-max-inflight-per-remote n]
//	        [-read-timeout d] [-write-timeout d] [-idle-timeout d]
//
// The daemon exposes the REST API of internal/server: POST /v1/jobs to
// submit a mining job (inline baskets or a server-side dataset file, any of
// the five miners), GET /v1/jobs/{id} to poll status — including the anytime
// partial MFS while the job runs — DELETE /v1/jobs/{id} to cancel, and
// GET /v1/results/{id} for the finished result document. /metrics,
// /debug/vars, and /debug/pprof/ serve observability on the same listener.
//
// Identical submissions (same dataset bytes, support, miner, and options)
// are answered from a byte-bounded result cache without re-mining. Every
// accepted job is spooled to disk before it runs and checkpointed at each
// pass barrier, so a killed daemon resumes its in-flight jobs on the next
// start with results identical to an uninterrupted run.
//
// Shutdown: SIGTERM drains — no new jobs, queued and running jobs finish.
// SIGINT aborts — running jobs stop at the next cancellation point, their
// checkpoints and queue entries stay in the spool for the next start.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pincer/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pincerd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pincerd", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8080", "listen address")
	spoolDir := fs.String("spool", "", "spool directory for job durability and restart-resume (required)")
	workers := fs.Int("workers", 2, "mining worker pool size")
	queue := fs.Int("queue", 16, "run-queue bound; a full queue answers 429")
	cacheBytes := fs.Int64("cache-bytes", 64<<20, "result cache byte bound (-1 disables caching)")
	maxBodyBytes := fs.Int64("max-body-bytes", 8<<20, "request body byte cap; oversize bodies answer 413 (-1 disables)")
	maxInflight := fs.Int("max-inflight-per-remote", 64, "concurrent in-flight request cap per remote host; excess answers 429 (0 = unlimited)")
	readTimeout := fs.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout")
	writeTimeout := fs.Duration("write-timeout", 120*time.Second, "http.Server WriteTimeout (bounds long pprof profiles too)")
	idleTimeout := fs.Duration("idle-timeout", 120*time.Second, "http.Server IdleTimeout for keep-alive connections")
	shutdownTimeout := fs.Duration("shutdown-timeout", 30*time.Second, "how long shutdown waits for jobs before giving up")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *spoolDir == "" {
		fs.Usage()
		return errors.New("-spool is required")
	}

	logger := log.New(os.Stderr, "pincerd: ", log.LstdFlags)
	srv, err := server.New(server.Config{
		SpoolDir:             *spoolDir,
		Workers:              *workers,
		QueueSize:            *queue,
		CacheMaxBytes:        *cacheBytes,
		MaxBodyBytes:         *maxBodyBytes,
		MaxInflightPerRemote: *maxInflight,
		Logf:                 logger.Printf,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// A server with zero timeouts lets one slow or stalled client hold a
	// connection (and its per-remote slot) forever; every bound is a flag.
	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	logger.Printf("listening on http://%s (spool %s, %d workers, queue %d)",
		ln.Addr(), *spoolDir, *workers, *queue)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	var sig os.Signal
	select {
	case sig = <-sigCh:
	case err := <-serveErr:
		return err
	}
	signal.Stop(sigCh) // a second signal kills the process the default way

	ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if sig == syscall.SIGTERM {
		logger.Printf("SIGTERM: draining (queued and running jobs will finish)")
		err = srv.Drain(ctx)
	} else {
		logger.Printf("SIGINT: aborting (checkpoints persist; restart resumes in-flight jobs)")
		err = srv.Abort(ctx)
	}
	if herr := hs.Shutdown(ctx); err == nil && herr != nil && !errors.Is(herr, http.ErrServerClosed) {
		err = herr
	}
	if err != nil {
		return err
	}
	logger.Printf("stopped")
	return nil
}
