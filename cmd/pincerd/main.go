// Command pincerd serves maximum-frequent-set mining over HTTP.
//
// Usage:
//
//	pincerd -addr :8080 -spool /var/lib/pincerd [-workers n] [-queue n]
//	        [-cache-bytes n] [-max-body-bytes n] [-max-inflight-per-remote n]
//	        [-read-timeout d] [-write-timeout d] [-idle-timeout d]
//	        [-role coordinator -peers host1:9001,host2:9001 [-cluster-quorum n]]
//	pincerd -role worker -addr :9001
//
// # Cluster roles
//
// With -role worker the daemon serves only the cluster counting protocol
// (internal/cluster): it holds content-addressed dataset shards pushed by a
// coordinator and answers per-pass count RPCs. No spool is needed; a
// restarted worker is re-seeded on demand.
//
// With -role coordinator (the default role with -peers set) the daemon
// serves the full REST API and additionally accepts jobs with
// "cluster": true, distributing their support counting over the -peers
// workers with heartbeat liveness, retry with backoff, shard reassignment
// on worker death, and graceful degradation to local counting below
// -cluster-quorum — the job still finishes, and the result document's
// "cluster" field records how.
//
// A coordinator also accepts streams created with "cluster": true
// (POST /v1/streams): every append/evict delta's MFS∪border verification
// counts — and any warm-started re-mine passes — fan out over the same
// workers as content-addressed per-batch shards. Because the deltas are
// additive support counts over partitions, the maintained MFS, border, and
// supports stay byte-identical to a single-node stream; worker death mid
// count fails over at the batch barrier, and below quorum the batch is
// counted locally and the delta document's "cluster" field says so.
// Degradation is per batch: the next delta retries the cluster.
//
// The daemon exposes the REST API of internal/server: POST /v1/jobs to
// submit a mining job (inline baskets or a server-side dataset file, any of
// the five miners), GET /v1/jobs/{id} to poll status — including the anytime
// partial MFS while the job runs — DELETE /v1/jobs/{id} to cancel, and
// GET /v1/results/{id} for the finished result document. /metrics,
// /debug/vars, and /debug/pprof/ serve observability on the same listener.
//
// Identical submissions (same dataset bytes, support, miner, and options)
// are answered from a byte-bounded result cache without re-mining. Every
// accepted job is spooled to disk before it runs and checkpointed at each
// pass barrier, so a killed daemon resumes its in-flight jobs on the next
// start with results identical to an uninterrupted run.
//
// Shutdown: SIGTERM drains — no new jobs, queued and running jobs finish.
// SIGINT aborts — running jobs stop at the next cancellation point, their
// checkpoints and queue entries stay in the spool for the next start.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pincer/internal/cluster"
	"pincer/internal/obsv"
	"pincer/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pincerd:", err)
		os.Exit(1)
	}
}

// runWorker serves the cluster counting protocol: the whole daemon is one
// cluster.Worker (plus /healthz and the debug endpoints). Workers keep no
// durable state — a restarted worker is re-seeded by its coordinator on the
// next unknown-shard reply.
func runWorker(addr string, readTimeout, writeTimeout, idleTimeout, shutdownTimeout time.Duration, logger *log.Logger) error {
	reg := obsv.NewRegistry()
	w := cluster.NewWorker(cluster.WorkerConfig{
		ID:   fmt.Sprintf("%s/pid%d", addr, os.Getpid()),
		Logf: logger.Printf,
	})
	mux := http.NewServeMux()
	mux.Handle("/cluster/v1/", w)
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		rw.Write([]byte(`{"status":"ok"}` + "\n"))
	})
	obsv.RegisterDebug(mux, reg)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       readTimeout,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       idleTimeout,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	logger.Printf("cluster worker listening on http://%s", ln.Addr())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	select {
	case <-sigCh:
	case err := <-serveErr:
		return err
	}
	signal.Stop(sigCh)
	ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Printf("stopped")
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("pincerd", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8080", "listen address")
	spoolDir := fs.String("spool", "", "spool directory for job durability and restart-resume (required)")
	workers := fs.Int("workers", 2, "mining worker pool size")
	queue := fs.Int("queue", 16, "run-queue bound; a full queue answers 429")
	cacheBytes := fs.Int64("cache-bytes", 64<<20, "result cache byte bound (-1 disables caching)")
	datasetCacheBytes := fs.Int64("dataset-cache-bytes", 64<<20, "parsed-dataset cache byte bound; repeat submissions of a database skip parsing and profiling (-1 disables)")
	maxBodyBytes := fs.Int64("max-body-bytes", 8<<20, "request body byte cap; oversize bodies answer 413 (-1 disables)")
	maxInflight := fs.Int("max-inflight-per-remote", 64, "concurrent in-flight request cap per remote host; excess answers 429 (0 = unlimited)")
	readTimeout := fs.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout")
	writeTimeout := fs.Duration("write-timeout", 120*time.Second, "http.Server WriteTimeout (bounds long pprof profiles too)")
	idleTimeout := fs.Duration("idle-timeout", 120*time.Second, "http.Server IdleTimeout for keep-alive connections")
	shutdownTimeout := fs.Duration("shutdown-timeout", 30*time.Second, "how long shutdown waits for jobs before giving up")
	role := fs.String("role", "coordinator", "cluster role: coordinator (full API; distributes cluster jobs over -peers) or worker (counting node only)")
	peers := fs.String("peers", "", "comma-separated worker base URLs (e.g. http://host1:9001,http://host2:9001); enables cluster jobs")
	clusterQuorum := fs.Int("cluster-quorum", 1, "minimum live workers for distributed counting; below it cluster jobs degrade to local counting")
	heartbeat := fs.Duration("cluster-heartbeat", 500*time.Millisecond, "worker heartbeat ping interval")
	liveness := fs.Duration("cluster-liveness", 0, "declare a worker dead after this long without a successful ping (0 = 4 × heartbeat)")
	rpcTimeout := fs.Duration("cluster-rpc-timeout", 10*time.Second, "per-attempt timeout of each cluster count/load RPC")
	shardsPerWorker := fs.Int("cluster-shards-per-worker", 2, "dataset shards per worker (reassignment granularity on node loss)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger := log.New(os.Stderr, "pincerd: ", log.LstdFlags)
	switch *role {
	case "worker":
		return runWorker(*addr, *readTimeout, *writeTimeout, *idleTimeout, *shutdownTimeout, logger)
	case "coordinator":
	default:
		return fmt.Errorf("unknown -role %q (want coordinator or worker)", *role)
	}
	if *spoolDir == "" {
		fs.Usage()
		return errors.New("-spool is required")
	}

	// One registry for the daemon and the cluster pool, so the
	// pincer_cluster_* series serve from the same /metrics endpoint.
	reg := obsv.NewRegistry()
	var pool *cluster.Pool
	if *peers != "" {
		var addrs []string
		for _, a := range strings.Split(*peers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		var err error
		pool, err = cluster.NewPool(addrs, cluster.PoolConfig{
			HeartbeatInterval: *heartbeat,
			LivenessDeadline:  *liveness,
			RPCTimeout:        *rpcTimeout,
			Quorum:            *clusterQuorum,
			ShardsPerWorker:   *shardsPerWorker,
			Registry:          reg,
			Logf:              logger.Printf,
		})
		if err != nil {
			return err
		}
		pool.Start()
		defer pool.Close()
		logger.Printf("cluster: %d worker peers, quorum %d", len(pool.Workers()), *clusterQuorum)
	}

	srv, err := server.New(server.Config{
		SpoolDir:             *spoolDir,
		Workers:              *workers,
		QueueSize:            *queue,
		CacheMaxBytes:        *cacheBytes,
		DatasetCacheBytes:    *datasetCacheBytes,
		MaxBodyBytes:         *maxBodyBytes,
		MaxInflightPerRemote: *maxInflight,
		Registry:             reg,
		Cluster:              pool,
		Logf:                 logger.Printf,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// A server with zero timeouts lets one slow or stalled client hold a
	// connection (and its per-remote slot) forever; every bound is a flag.
	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	logger.Printf("listening on http://%s (spool %s, %d workers, queue %d)",
		ln.Addr(), *spoolDir, *workers, *queue)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	var sig os.Signal
	select {
	case sig = <-sigCh:
	case err := <-serveErr:
		return err
	}
	signal.Stop(sigCh) // a second signal kills the process the default way

	ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if sig == syscall.SIGTERM {
		logger.Printf("SIGTERM: draining (queued and running jobs will finish)")
		err = srv.Drain(ctx)
	} else {
		logger.Printf("SIGINT: aborting (checkpoints persist; restart resumes in-flight jobs)")
		err = srv.Abort(ctx)
	}
	if herr := hs.Shutdown(ctx); err == nil && herr != nil && !errors.Is(herr, http.ErrServerClosed) {
		err = herr
	}
	if err != nil {
		return err
	}
	logger.Printf("stopped")
	return nil
}
