package pincer_test

import (
	"path/filepath"
	"testing"

	"pincer"
)

// TestEndToEndPipeline exercises the full public-API pipeline the README
// advertises: synthesize a benchmark database, persist it, mine it from
// disk and from memory with both algorithms, expand the frequent set, and
// generate rules — with every stage cross-checked against the others.
func TestEndToEndPipeline(t *testing.T) {
	params, err := pincer.ParseQuestName("T10.I6.D800")
	if err != nil {
		t.Fatal(err)
	}
	params.NumPatterns = 25
	params.NumItems = 150
	params.Seed = 99
	db := pincer.GenerateQuest(params)

	path := filepath.Join(t.TempDir(), "db.basket")
	if err := pincer.SaveDataset(path, db); err != nil {
		t.Fatal(err)
	}
	loaded, err := pincer.LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != db.Len() {
		t.Fatalf("persisted |D| = %d, want %d", loaded.Len(), db.Len())
	}

	const sup = 0.04
	pin := pincer.Mine(db, sup)
	apr := pincer.MineApriori(loaded, sup)
	fileRes, err := pincer.MineFile(path, sup, pincer.DefaultPincerOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(pin.MFS) == 0 {
		t.Fatal("nothing frequent; test workload broken")
	}
	for _, other := range []*pincer.Result{apr, fileRes} {
		if len(other.MFS) != len(pin.MFS) {
			t.Fatalf("miners disagree: %d vs %d maximal itemsets", len(other.MFS), len(pin.MFS))
		}
		for i := range pin.MFS {
			if !other.MFS[i].Equal(pin.MFS[i]) {
				t.Fatalf("MFS[%d]: %v vs %v", i, other.MFS[i], pin.MFS[i])
			}
		}
	}

	// the implied frequent set equals Apriori's explicit one
	implied := pincer.ExpandFrequent(pin, 0)
	if int64(len(implied)) != pincer.CountFrequent(pin) {
		t.Fatalf("CountFrequent %d != expansion %d", pincer.CountFrequent(pin), len(implied))
	}
	if apr.Frequent.Len() != len(implied) {
		t.Fatalf("implied frequent set %d != apriori's %d", len(implied), apr.Frequent.Len())
	}
	for _, x := range implied {
		if !apr.Frequent.Contains(x) {
			t.Fatalf("implied itemset %v not in apriori's frequent set", x)
		}
	}

	// rules from the MFS are internally consistent
	rules, err := pincer.RulesFromResult(db, pin, 0, pincer.RuleParams{MinConfidence: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if r.Confidence < 0.7 || r.Confidence > 1.0000001 {
			t.Errorf("rule confidence out of range: %v", r)
		}
		union := r.Antecedent.Union(r.Consequent)
		if !pin.IsFrequent(union) {
			t.Errorf("rule over infrequent itemset: %v", r)
		}
	}
}

// TestEndToEndApplications drives the two §6 application paths through the
// facade: episode mining and market co-movement.
func TestEndToEndApplications(t *testing.T) {
	planted := pincer.NewItemset(3, 4, 5, 6)
	seq := pincer.GenerateEventSequence(pincer.EpisodeGeneratorParams{
		NumTypes: 20, Length: 2000, NoiseRate: 0.05,
		Episodes: []pincer.Itemset{planted}, Period: 25, BurstWidth: 4, Seed: 5,
	})
	eps, res, err := pincer.MineEpisodes(seq, 8, 0.05, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || len(eps) == 0 {
		t.Fatal("no episodes")
	}
	covered := false
	for _, e := range eps {
		if planted.IsSubsetOf(e.Types) {
			covered = true
		}
	}
	if !covered {
		t.Errorf("planted episode not recovered: %v", eps)
	}

	market, err := pincer.GenerateMarket(pincer.MarketParams{
		NumStocks: 40, NumDays: 800, Sectors: []int{8, 6},
		MarketVol: 0.2, SectorVol: 1.4, IdioVol: 0.3, UpThreshold: 1.0, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	mres := pincer.Mine(market.Days, 0.06)
	for s, sec := range market.SectorMembers {
		if !mres.IsFrequent(sec) {
			t.Errorf("sector %d not recovered as frequent", s)
		}
	}
}
