package server_test

// FuzzStreamBatchRequest throws arbitrary bytes at the POST
// /v1/streams/{id}/batches decoder over the real handler stack. The batch
// apply is synchronous, so unlike the job fuzzer there is nothing to cancel
// — the contract is that the server never panics, every rejection carries a
// typed reason, and every accepted batch returns a well-formed delta whose
// seq advances by exactly one (or acknowledges a duplicate). The item-
// universe cap is load-bearing here: without it one fuzz-crafted line could
// commit the maintainer to a billion-item universe.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"pincer/internal/server"
)

func FuzzStreamBatchRequest(f *testing.F) {
	f.Add([]byte(`{"baskets":"1 2\n1 2\n"}`))
	f.Add([]byte(`{"baskets":"1 2\n","seq":1}`))
	f.Add([]byte(`{"baskets":"1 2\n","seq":-3}`))
	f.Add([]byte(`{"baskets":"1 2\n","seq":9999}`))
	f.Add([]byte(`{"baskets":""}`))
	f.Add([]byte(`{"baskets":"not numbers"}`))
	f.Add([]byte(`{"baskets":"999999999\n"}`)) // over the universe cap
	f.Add([]byte(`{"baskets":"0\n1\n2\n"}`))
	f.Add([]byte(`{not json`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"baskets":"1 2\n","unknown_field":1}`))
	f.Add([]byte(fmt.Sprintf(`{"baskets":%q}`, "1 2 3\n"+string(make([]byte, 5000)))))

	srv, err := server.New(server.Config{
		SpoolDir:     f.TempDir(),
		Workers:      1,
		MaxBodyBytes: 4 << 10,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Abort(ctx)
	})
	st, err := srv.Manager().CreateStream(server.StreamRequest{MinSupport: 0.5})
	if err != nil {
		f.Fatal(err)
	}
	path := "/v1/streams/" + st.ID + "/batches"

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req) // must not panic, whatever the bytes
		switch rec.Code {
		case http.StatusOK:
			var doc server.StreamDeltaDoc
			if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
				t.Fatalf("200 response is not a delta doc (%v): %q", err, rec.Body.String())
			}
			if doc.Seq <= 0 && !doc.Duplicate {
				t.Fatalf("applied delta without a seq: %+v", doc)
			}
		case http.StatusBadRequest, http.StatusRequestEntityTooLarge:
			var e struct {
				Error  string `json:"error"`
				Reason string `json:"reason"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" || e.Reason == "" {
				t.Fatalf("%d response lacks typed reason: %q", rec.Code, rec.Body.String())
			}
		default:
			t.Fatalf("POST %s answered %d for body %q", path, rec.Code, body)
		}
		// The maintainer must stay consistent with its own accounting after
		// every request, whatever was just thrown at it.
		v, ok := srv.Manager().Stream(st.ID)
		if !ok {
			t.Fatal("stream vanished")
		}
		view := streamViewOf(t, srv, v.ID)
		if view.Interrupted {
			t.Fatalf("fuzz input interrupted the stream: %+v", view)
		}
		if view.Seq != view.Batches {
			t.Fatalf("seq %d != batches %d", view.Seq, view.Batches)
		}
	})
}

// streamViewOf reads a stream's status through the HTTP surface.
func streamViewOf(t *testing.T, srv *server.Server, id string) server.StreamView {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/v1/streams/"+id, nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET stream: status %d", rec.Code)
	}
	var v server.StreamView
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	return v
}
