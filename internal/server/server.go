// Package server is the mining service daemon behind cmd/pincerd: an
// HTTP/JSON API (stdlib net/http only) that fronts every miner in the
// repository — Pincer-Search, Apriori, top-down, vertical/Eclat, and the
// count-distribution parallel miner — with an async job manager, a
// content-addressed result cache, and checkpoint-backed durability.
//
// # API
//
//	POST   /v1/jobs          submit a mining job (JobRequest); 202 queued,
//	                         200 when served from the result cache,
//	                         429 when the bounded queue is full
//	GET    /v1/jobs          list jobs, newest first
//	GET    /v1/jobs/{id}     status + anytime partial progress while running
//	DELETE /v1/jobs/{id}     cancel via the mining context seam
//	GET    /v1/results/{id}  the full result document of a finished job
//	GET    /healthz          liveness
//	/metrics, /debug/vars, /debug/pprof/   the obsv debug endpoints
//
// # Durability
//
// Every non-cached job is persisted to the spool directory before it is
// queued, checkpointable miners (pincer, apriori, parallel) write their
// pass-barrier state next to it, and a restarted daemon re-enqueues every
// job that never reached a terminal record — resuming checkpointed runs at
// the exact pass barrier they last completed. The result cache is keyed by
// (dataset SHA-256, minsup, miner, options), so resubmitting a finished
// query never re-mines, even if the basket file was renamed.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"pincer/internal/cluster"
	"pincer/internal/dataset"
	"pincer/internal/obsv"
)

// Config configures the daemon.
type Config struct {
	// SpoolDir is the durability root: job specs, checkpoints, traces, and
	// terminal records live here, and a restart resumes from it. Required.
	SpoolDir string
	// Workers is the mining worker pool size (default 2). Each worker runs
	// one job at a time; parallel jobs additionally fan out their own
	// counting goroutines.
	Workers int
	// QueueSize bounds the run queue; a full queue rejects submissions
	// with 429 instead of buffering unboundedly (default 16).
	QueueSize int
	// CacheMaxBytes bounds the result cache (default 64 MiB; ≤ -1
	// disables caching, 0 means the default).
	CacheMaxBytes int64
	// DatasetCacheBytes bounds the parsed-dataset cache, which memoizes
	// each distinct database's parsed form and shape profile so repeat
	// submissions (same bytes, different options) skip the parse and the
	// profiling pass (default 64 MiB of raw encoding; ≤ -1 disables, 0
	// means the default).
	DatasetCacheBytes int64
	// Registry receives the daemon's metrics; a fresh registry is created
	// when nil.
	Registry *obsv.Registry
	// MaxBodyBytes caps every request body via http.MaxBytesReader; an
	// over-long POST /v1/jobs body is answered with 413 instead of being
	// buffered whole (default 8 MiB; ≤ -1 disables the cap, 0 means the
	// default).
	MaxBodyBytes int64
	// MaxInflightPerRemote caps concurrent in-flight requests per remote
	// host; excess requests are answered 429 before touching a handler
	// (0 = unlimited).
	MaxInflightPerRemote int
	// Cluster, when set, is the worker pool cluster jobs (JobRequest.Cluster)
	// distribute their support counting over; nil rejects such jobs. The
	// caller owns the pool's lifecycle (Start/Close) — pincerd builds it
	// from -peers in the coordinator role.
	Cluster *cluster.Pool
	// Logf, when set, receives one line per lifecycle event (job started,
	// finished, resumed, ...). Nil silences logging.
	Logf func(format string, args ...interface{})
	// WrapScanner, when set, wraps every sequential-scanning job's dataset
	// scanner — a seam for the fault-injection and latency tests; nil in
	// production.
	WrapScanner func(jobID string, sc dataset.Scanner) dataset.Scanner
}

// withDefaults fills unset fields.
func (c Config) withDefaults() (Config, error) {
	if c.SpoolDir == "" {
		return c, errors.New("server: Config.SpoolDir is required")
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 16
	}
	if c.CacheMaxBytes == 0 {
		c.CacheMaxBytes = 64 << 20
	}
	if c.DatasetCacheBytes == 0 {
		c.DatasetCacheBytes = 64 << 20
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c, nil
}

// Server is the HTTP mining service. It implements http.Handler; wire it
// into an http.Server (cmd/pincerd does) or an httptest.Server.
type Server struct {
	cfg     Config
	reg     *obsv.Registry
	man     *Manager
	mux     *http.ServeMux
	hmet    *httpMetrics
	limiter *remoteLimiter
}

// New builds the service: metrics registry, result cache, job manager
// (restart-resuming the spool), and routes.
func New(cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obsv.NewRegistry()
	}
	man, err := newManager(cfg, reg)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, reg: reg, man: man, mux: http.NewServeMux(), hmet: newHTTPMetrics(reg)}
	if cfg.MaxInflightPerRemote > 0 {
		s.limiter = &remoteLimiter{max: cfg.MaxInflightPerRemote, inflight: map[string]int{}}
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/results/{id}", s.handleResult)
	s.mux.HandleFunc("POST /v1/streams", s.handleStreamCreate)
	s.mux.HandleFunc("GET /v1/streams", s.handleStreamList)
	s.mux.HandleFunc("GET /v1/streams/{id}", s.handleStreamStatus)
	s.mux.HandleFunc("DELETE /v1/streams/{id}", s.handleStreamDelete)
	s.mux.HandleFunc("POST /v1/streams/{id}/batches", s.handleStreamBatch)
	s.mux.HandleFunc("GET /v1/streams/{id}/mfs", s.handleStreamMFS)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	obsv.RegisterDebug(s.mux, reg)
	return s, nil
}

// Manager exposes the job manager (the daemon's signal handling drives
// Drain/Abort through it).
func (s *Server) Manager() *Manager { return s.man }

// Registry exposes the metrics registry.
func (s *Server) Registry() *obsv.Registry { return s.reg }

// ServeHTTP implements http.Handler. It wraps the route table with the
// serving-layer hardening the load harness exercises: the per-remote
// in-flight cap, the request-body byte cap, and per-route latency/outcome
// metrics (pincer_http_request_seconds, pincer_http_responses_total).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	route := routeOf(r)
	start := time.Now()
	sw := &statusRecorder{ResponseWriter: w}
	defer func() {
		s.hmet.observe(route, sw.status(), time.Since(start))
	}()
	if s.limiter != nil {
		host := remoteHost(r.RemoteAddr)
		if !s.limiter.acquire(host) {
			s.hmet.inflightLimited.Inc()
			// The remote's slots free as its requests finish; submits among
			// them are bounded by the same queue the estimate keys on.
			sw.Header().Set("Retry-After", strconv.Itoa(s.man.RetryAfterSeconds()))
			writeError(sw, http.StatusTooManyRequests, ReasonRemoteLimit,
				"too many in-flight requests from %s", host)
			return
		}
		defer s.limiter.release(host)
	}
	if s.cfg.MaxBodyBytes > 0 {
		r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
	}
	s.mux.ServeHTTP(sw, r)
}

// routeOf buckets a request into the fixed route vocabulary the HTTP
// metrics are labeled with.
func routeOf(r *http.Request) string {
	p := r.URL.Path
	switch {
	case p == "/v1/jobs" || p == "/v1/jobs/":
		if r.Method == http.MethodPost {
			return "submit"
		}
		return "list"
	case strings.HasPrefix(p, "/v1/jobs/"):
		if r.Method == http.MethodDelete {
			return "cancel"
		}
		return "status"
	case strings.HasPrefix(p, "/v1/results/"):
		return "result"
	case p == "/v1/streams" || p == "/v1/streams/":
		if r.Method == http.MethodPost {
			return "stream_submit"
		}
		return "stream_list"
	case strings.HasPrefix(p, "/v1/streams/"):
		switch {
		case strings.HasSuffix(p, "/batches"):
			return "stream_batch"
		case strings.HasSuffix(p, "/mfs"):
			return "stream_mfs"
		case r.Method == http.MethodDelete:
			return "stream_delete"
		}
		return "stream_status"
	case p == "/healthz":
		return "healthz"
	case p == "/metrics" || p == "/debug/vars" || strings.HasPrefix(p, "/debug/pprof"):
		return "debug"
	}
	return "other"
}

// remoteHost strips the port from a RemoteAddr.
func remoteHost(addr string) string {
	if host, _, err := net.SplitHostPort(addr); err == nil {
		return host
	}
	return addr
}

// statusRecorder captures the response status for the metrics middleware.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (s *statusRecorder) WriteHeader(code int) {
	if s.code == 0 {
		s.code = code
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusRecorder) Write(b []byte) (int, error) {
	if s.code == 0 {
		s.code = http.StatusOK
	}
	return s.ResponseWriter.Write(b)
}

// status returns the recorded code (200 when the handler never wrote one).
func (s *statusRecorder) status() int {
	if s.code == 0 {
		return http.StatusOK
	}
	return s.code
}

// Flush forwards to the underlying writer so streaming handlers (pprof
// profiles) keep working through the recorder.
func (s *statusRecorder) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// remoteLimiter caps concurrent in-flight requests per remote host.
type remoteLimiter struct {
	max      int
	mu       sync.Mutex
	inflight map[string]int
}

func (l *remoteLimiter) acquire(host string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inflight[host] >= l.max {
		return false
	}
	l.inflight[host]++
	return true
}

func (l *remoteLimiter) release(host string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inflight[host] <= 1 {
		delete(l.inflight, host)
	} else {
		l.inflight[host]--
	}
}

// Drain gracefully stops the service: no new jobs, queued and running work
// completes (SIGTERM semantics).
func (s *Server) Drain(ctx context.Context) error { return s.man.Drain(ctx) }

// Abort stops the service immediately: running jobs are cancelled at their
// next cancellation point, checkpoints and queued jobs stay in the spool
// for the next start (SIGINT semantics).
func (s *Server) Abort(ctx context.Context) error { return s.man.Abort(ctx) }

// Machine-readable reasons carried by every error response, so clients
// (and the fuzz harness) can branch without parsing prose.
const (
	ReasonBadJSON      = "bad_json"        // body is not the JobRequest JSON shape
	ReasonInvalid      = "invalid_request" // well-formed JSON, invalid field values
	ReasonBodyTooLarge = "body_too_large"  // body exceeded Config.MaxBodyBytes
	ReasonQueueFull    = "queue_full"      // bounded run queue saturated (429)
	ReasonShuttingDown = "shutting_down"   // drain/abort in progress (503)
	ReasonNotFound     = "not_found"       // unknown job or result id
	ReasonJobFailed    = "job_failed"      // result requested for a failed job
	ReasonRemoteLimit  = "remote_limit"    // per-remote in-flight cap tripped (429)

	// Field-level validation reasons: normalize rejects a request with the
	// reason naming the failing field, so clients can branch on which knob
	// was wrong instead of parsing prose. All map to 400.
	ReasonBadMiner   = "bad_miner"   // unknown miner name
	ReasonBadEngine  = "bad_engine"  // unknown engine, or engine on a miner without one
	ReasonBadCounter = "bad_counter" // unknown counter spec, or counter on a non-level-wise miner
	ReasonBadSupport = "bad_support" // min_support outside (0, 1]
	ReasonBadDataset = "bad_dataset" // not exactly one of dataset_path / baskets
	ReasonBadWorkers = "bad_workers" // negative workers, or workers on a sequential miner
	ReasonBadBudget  = "bad_budget"  // negative deadline or resource budget
	ReasonBadCluster = "bad_cluster" // cluster on an incompatible plan, or no cluster configured
)

// ValidationError is a request-validation rejection carrying its machine-
// readable reason; handleSubmit surfaces the reason in the error doc.
type ValidationError struct {
	Reason string
	msg    string
}

func (e *ValidationError) Error() string { return e.msg }

// invalidf builds a *ValidationError with a formatted message.
func invalidf(reason, format string, args ...interface{}) error {
	return &ValidationError{Reason: reason, msg: fmt.Sprintf(format, args...)}
}

// errorDoc is the wire form of every error response: prose plus a typed
// reason from the Reason* vocabulary.
type errorDoc struct {
	Error  string `json:"error"`
	Reason string `json:"reason"`
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, reason, format string, args ...interface{}) {
	writeJSON(w, code, errorDoc{Error: fmt.Sprintf(format, args...), Reason: reason})
}

// handleSubmit implements POST /v1/jobs.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, ReasonBodyTooLarge,
				"request body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, ReasonBadJSON, "bad request body: %v", err)
		return
	}
	j, err := s.man.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(s.man.RetryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, ReasonQueueFull, "%v", err)
		return
	case errors.Is(err, ErrShuttingDown):
		// A shutting-down daemon is typically about to be replaced (chaos
		// restarts, rolling deploys); the backlog-derived estimate is as
		// honest a hint as exists for when the successor will answer.
		w.Header().Set("Retry-After", strconv.Itoa(s.man.RetryAfterSeconds()))
		writeError(w, http.StatusServiceUnavailable, ReasonShuttingDown, "%v", err)
		return
	case err != nil:
		reason := ReasonInvalid
		var ve *ValidationError
		if errors.As(err, &ve) {
			reason = ve.Reason
		}
		writeError(w, http.StatusBadRequest, reason, "%v", err)
		return
	}
	v := j.view()
	code := http.StatusAccepted
	if v.Status == StatusDone { // cache hit: the answer is already here
		code = http.StatusOK
	}
	writeJSON(w, code, v)
}

// handleList implements GET /v1/jobs.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{"jobs": s.man.JobViews()})
}

// handleStatus implements GET /v1/jobs/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.man.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ReasonNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// handleCancel implements DELETE /v1/jobs/{id}.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	cancelled, exists := s.man.Cancel(id)
	if !exists {
		writeError(w, http.StatusNotFound, ReasonNotFound, "no such job")
		return
	}
	j, _ := s.man.Job(id)
	if !cancelled {
		// Already terminal: cancellation is a no-op, report the state.
		writeJSON(w, http.StatusConflict, j.view())
		return
	}
	writeJSON(w, http.StatusAccepted, j.view())
}

// handleResult implements GET /v1/results/{id}.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.man.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ReasonNotFound, "no such job")
		return
	}
	j.mu.Lock()
	doc := j.doc
	status := j.status
	errMsg := j.err
	j.mu.Unlock()
	if doc == nil {
		switch status {
		case StatusFailed:
			writeError(w, http.StatusInternalServerError, ReasonJobFailed, "job failed: %s", errMsg)
		default:
			writeJSON(w, http.StatusConflict, j.view())
		}
		return
	}
	writeJSON(w, http.StatusOK, doc)
}
