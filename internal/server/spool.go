package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"pincer/internal/dataset"
)

// The spool directory is the daemon's durability root. Each job owns up to
// four files, all named by its id:
//
//	<id>.job          the submitted spec (written before the job is queued)
//	<id>.ckpt         the miner's pass-barrier checkpoint (checkpointable miners)
//	<id>.trace.jsonl  per-pass trace events (JSON lines)
//	<id>.result       the terminal record: status, error, result document
//
// A job with a .job file and no .result file did not reach a terminal
// state — the daemon died (or was SIGINT-aborted) while it was queued or
// running — and is re-enqueued on the next start; its surviving .ckpt lets
// the miner re-enter at the last pass barrier instead of pass 1. Records
// are written with the same temp-file + rename protocol as checkpoints, so
// a crash never leaves a half-written record that would mask a resumable
// job.

// jobFile is the persisted submission.
type jobFile struct {
	ID   string     `json:"id"`
	Key  string     `json:"cache_key"`
	Spec JobRequest `json:"spec"`
}

// resultRecord is the persisted terminal state.
type resultRecord struct {
	ID     string     `json:"id"`
	Status string     `json:"status"`
	Error  string     `json:"error,omitempty"`
	Doc    *ResultDoc `json:"result,omitempty"`
}

// spool wraps the directory with typed accessors.
type spool struct {
	dir string
}

func (s spool) jobPath(id string) string        { return filepath.Join(s.dir, id+".job") }
func (s spool) checkpointPath(id string) string { return filepath.Join(s.dir, id+".ckpt") }
func (s spool) tracePath(id string) string      { return filepath.Join(s.dir, id+".trace.jsonl") }
func (s spool) resultPath(id string) string     { return filepath.Join(s.dir, id+".result") }

// writeAtomic persists a value as JSON via temp-file + rename.
func (s spool) writeAtomic(path string, v interface{}) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("server: encode %s: %w", filepath.Base(path), err)
	}
	return s.writeAtomicBytes(path, data)
}

// writeAtomicBytes persists raw bytes via temp-file + rename.
func (s spool) writeAtomicBytes(path string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("server: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("server: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	return nil
}

// saveJob persists the submission.
func (s spool) saveJob(j *Job) error {
	return s.writeAtomic(s.jobPath(j.ID), jobFile{ID: j.ID, Key: j.Key, Spec: j.Spec})
}

// saveResult persists a terminal record.
func (s spool) saveResult(j *Job, status, errMsg string, doc *ResultDoc) error {
	return s.writeAtomic(s.resultPath(j.ID), resultRecord{ID: j.ID, Status: status, Error: errMsg, Doc: doc})
}

// dropJob removes a submission that never entered the queue (429).
func (s spool) dropJob(id string) {
	os.Remove(s.jobPath(id))
}

// scan enumerates the spool: every persisted job, each paired with its
// terminal record when one exists. IDs come back sorted so restart order is
// deterministic.
func (s spool) scan() (jobs []jobFile, records map[string]*resultRecord, err error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("server: scan spool: %w", err)
	}
	records = map[string]*resultRecord{}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".job"):
			data, err := os.ReadFile(filepath.Join(s.dir, name))
			if err != nil {
				return nil, nil, fmt.Errorf("server: scan spool: %w", err)
			}
			var jf jobFile
			if err := json.Unmarshal(data, &jf); err != nil || jf.ID == "" {
				continue // foreign or corrupt file: skip, never crash the daemon
			}
			jobs = append(jobs, jf)
		case strings.HasSuffix(name, ".result"):
			data, err := os.ReadFile(filepath.Join(s.dir, name))
			if err != nil {
				return nil, nil, fmt.Errorf("server: scan spool: %w", err)
			}
			var rec resultRecord
			if err := json.Unmarshal(data, &rec); err != nil || rec.ID == "" {
				continue
			}
			records[rec.ID] = &rec
		}
	}
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].ID < jobs[j].ID })
	return jobs, records, nil
}

// loadDatasetBytes materializes the job's database bytes — the inline
// basket text, or the referenced file read whole (the bytes are also what
// the cache key hashes, so a file swapped in place yields a new key).
func loadDatasetBytes(spec JobRequest) ([]byte, error) {
	if spec.Baskets != "" {
		return []byte(spec.Baskets), nil
	}
	data, err := os.ReadFile(spec.DatasetPath)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	return data, nil
}

// parseDataset decodes database bytes, sniffing the library's binary magic
// and falling back to the basket text format — the same convention as
// dataset.Load, over bytes already in hand.
func parseDataset(data []byte) (*dataset.Dataset, error) {
	if len(data) >= 5 && string(data[:4]) == "PNCR" {
		return dataset.ReadBinary(bytes.NewReader(data))
	}
	return dataset.ReadBasket(bytes.NewReader(data))
}
