package server

import (
	"container/list"

	"pincer/internal/dataset"
)

// datasetCache is a byte-size-bounded LRU over parsed datasets, keyed by the
// SHA-256 of their raw bytes — the same digest the result-cache key embeds.
// Each entry carries the dataset's shape profile, computed once at insert
// time, so the adaptive engine-selection policy never re-profiles a database
// it has already seen: submitting one dataset at many thresholds parses and
// profiles it exactly once.
//
// Entries are shared read-only across jobs; Dataset is immutable after parse
// (nothing in the serving path appends, re-sorts, or widens a cached
// dataset), so concurrent miners can hold the same entry without locking.
type datasetCache struct {
	max   int64
	ll    *list.List // front = most recently used
	items map[[32]byte]*list.Element

	bytes int64
}

// dsEntry is one cached dataset with its memoized profile. size is the raw
// encoding length — a deliberate under-count of the parsed footprint, but
// proportional to it and available without walking the transactions.
type dsEntry struct {
	key  [32]byte
	d    *dataset.Dataset
	prof dataset.Profile
	size int64
}

// newDatasetCache builds a cache bounded to max bytes (≤ 0 disables caching:
// get always misses, put drops).
func newDatasetCache(max int64) *datasetCache {
	return &datasetCache{max: max, ll: list.New(), items: map[[32]byte]*list.Element{}}
}

// get returns the cached dataset and its profile, bumping recency. The
// caller must hold the manager's lock.
func (c *datasetCache) get(key [32]byte) (*dataset.Dataset, dataset.Profile, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, dataset.Profile{}, false
	}
	c.ll.MoveToFront(el)
	ent := el.Value.(*dsEntry)
	return ent.d, ent.prof, true
}

// put stores a parsed dataset and its profile, evicting least-recently-used
// entries until the byte bound holds. A dataset larger than the whole bound
// is not stored — the job still runs, it just isn't memoized.
func (c *datasetCache) put(key [32]byte, d *dataset.Dataset, prof dataset.Profile, size int64) {
	if c.max <= 0 || size > c.max {
		return
	}
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*dsEntry)
		c.bytes += size - ent.size
		ent.d, ent.prof, ent.size = d, prof, size
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&dsEntry{key: key, d: d, prof: prof, size: size})
		c.bytes += size
	}
	for c.bytes > c.max {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*dsEntry)
		c.ll.Remove(back)
		delete(c.items, ent.key)
		c.bytes -= ent.size
	}
}

// len returns the number of cached datasets.
func (c *datasetCache) len() int { return c.ll.Len() }
