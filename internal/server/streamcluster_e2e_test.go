package server_test

// End-to-end tests of clustered streams over real HTTP: a stream created
// with "cluster": true fans every delta's verification counting (and any
// re-mine) out over live workers, and must stay byte-identical to the
// single-node answer through the full chaos matrix — workers killed at
// batch barriers and mid-delta-scan, and a coordinator daemon killed
// between the journal write and the state snapshot. The composition case
// the suite exists for: journal replay and cluster failover must compose,
// with zero lost and zero double-counted batches.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pincer/internal/cluster"
	"pincer/internal/server"
)

// testStreamBatches splits testBaskets into three append batches.
func testStreamBatches() []string {
	lines := strings.SplitAfter(testBaskets, "\n")
	return []string{
		strings.Join(lines[:6], ""),
		strings.Join(lines[6:12], ""),
		strings.Join(lines[12:], ""),
	}
}

// TestStreamClusterE2ELifecycle pins the happy path: a clustered stream
// tracks the from-scratch reference after every batch, its delta docs and
// view carry the cluster accounting, and the metric family moves.
func TestStreamClusterE2ELifecycle(t *testing.T) {
	fx := startClusterWorkers(t, 2)
	pool := startPool(t, fx, nil)
	srv, hs := newTestServer(t, func(c *server.Config) { c.Cluster = pool })

	v := openStream(t, hs.URL, server.StreamRequest{MinSupport: testMinSupport, Cluster: true})
	if !v.Cluster {
		t.Fatalf("stream view does not mark the stream clustered: %+v", v)
	}
	prefix := ""
	var sawRPCs int64
	for i, b := range testStreamBatches() {
		code, doc := postBatch(t, hs.URL, v.ID, server.BatchRequest{Baskets: b})
		if code != http.StatusOK {
			t.Fatalf("batch %d: status %d", i+1, code)
		}
		if doc.Cluster == nil {
			t.Fatalf("batch %d: delta doc lacks the cluster summary: %+v", i+1, doc)
		}
		if doc.Cluster.Degraded {
			t.Fatalf("batch %d: healthy cluster degraded: %+v", i+1, doc.Cluster)
		}
		if doc.Cluster.Workers != 2 {
			t.Fatalf("batch %d: cluster doc reports %d workers, want 2", i+1, doc.Cluster.Workers)
		}
		sawRPCs += doc.Cluster.RPCs
		for _, md := range doc.Cluster.Mine {
			sawRPCs += md.RPCs
		}
		prefix += b
		checkStreamMFS(t, hs.URL, v.ID, streamRef(t, prefix, testMinSupport))
	}
	if sawRPCs == 0 {
		t.Fatal("no RPCs across three batches — stream counting never distributed")
	}

	snap := srv.Registry().Snapshot()
	if snap["pincer_stream_cluster_batches_total"] != 3 {
		t.Fatalf("pincer_stream_cluster_batches_total = %d, want 3", snap["pincer_stream_cluster_batches_total"])
	}
	if snap["pincer_stream_cluster_rpcs_total"] == 0 {
		t.Fatal("pincer_stream_cluster_rpcs_total never moved")
	}
	if snap["pincer_stream_cluster_remines_total"] == 0 {
		t.Fatal("pincer_stream_cluster_remines_total never moved (the initial mine is always a re-mine)")
	}

	// The view's last delta carries the same accounting.
	var view server.StreamView
	doJSON(t, http.MethodGet, hs.URL+"/v1/streams/"+v.ID, nil, &view)
	if !view.Cluster || view.LastDelta == nil || view.LastDelta.Cluster == nil {
		t.Fatalf("view lost the cluster accounting: %+v", view)
	}
}

// TestStreamClusterE2EValidation: a clusterless daemon refuses to open a
// clustered stream with the same typed reason as cluster jobs.
func TestStreamClusterE2EValidation(t *testing.T) {
	_, hs := newTestServer(t, nil)
	var e struct {
		Reason string `json:"reason"`
	}
	code := doJSON(t, http.MethodPost, hs.URL+"/v1/streams",
		server.StreamRequest{MinSupport: testMinSupport, Cluster: true}, &e)
	if code != http.StatusBadRequest || e.Reason != server.ReasonBadCluster {
		t.Fatalf("clusterless daemon answered %d reason %q, want 400 %q", code, e.Reason, server.ReasonBadCluster)
	}
}

// TestStreamClusterE2EChaosMatrix is the node-loss matrix at the HTTP
// layer: kill 1-of-2 and 1-of-4 workers at the batch barrier and
// mid-delta-scan. Every batch must still apply with the reference answer —
// failover, not failure — and the death must be visible in the delta doc.
func TestStreamClusterE2EChaosMatrix(t *testing.T) {
	batches := testStreamBatches()
	for _, workers := range []int{2, 4} {
		workers := workers
		for _, afterTx := range []int{0, 3} {
			afterTx := afterTx
			mode := "barrier"
			if afterTx > 0 {
				mode = "midscan"
			}
			t.Run(fmt.Sprintf("w%d/%s", workers, mode), func(t *testing.T) {
				fx := startClusterWorkers(t, workers)
				pool := startPool(t, fx, nil)
				_, hs := newTestServer(t, func(c *server.Config) { c.Cluster = pool })
				v := openStream(t, hs.URL, server.StreamRequest{MinSupport: testMinSupport, Cluster: true})

				// Batch 1 healthy; then arm worker 0 to die at its next
				// stream-count RPC (optionally mid-scan) and land batch 2
				// mid-kill; batch 3 runs with the survivor set.
				if code, _ := postBatch(t, hs.URL, v.ID, server.BatchRequest{Baskets: batches[0]}); code != http.StatusOK {
					t.Fatalf("batch 1: status %d", code)
				}
				fx.kills[0].Arm(1, afterTx)
				var sawDeath bool
				prefix := batches[0]
				for i, b := range batches[1:] {
					code, doc := postBatch(t, hs.URL, v.ID, server.BatchRequest{Baskets: b})
					if code != http.StatusOK {
						t.Fatalf("batch %d: status %d (worker loss must not fail the batch)", i+2, code)
					}
					if doc.Cluster == nil {
						t.Fatalf("batch %d: no cluster summary", i+2)
					}
					if doc.Cluster.Degraded {
						t.Fatalf("batch %d: lost 1 of %d workers but degraded: %+v", i+2, workers, doc.Cluster)
					}
					deaths := doc.Cluster.WorkerDeaths
					for _, md := range doc.Cluster.Mine {
						deaths += md.WorkerDeaths
					}
					sawDeath = sawDeath || deaths > 0
					prefix += b
					checkStreamMFS(t, hs.URL, v.ID, streamRef(t, prefix, testMinSupport))
				}
				if !fx.kills[0].Down() {
					t.Fatal("tripwire never fired — the matrix cell tested nothing")
				}
				if !sawDeath {
					t.Fatal("worker died but no delta doc recorded a death")
				}

				// Zero lost batches: the view is at seq 3 with every
				// transaction accounted for.
				var view server.StreamView
				doJSON(t, http.MethodGet, hs.URL+"/v1/streams/"+v.ID, nil, &view)
				if view.Seq != 3 || view.Transactions != mustParse(t, prefix).Len() || view.Interrupted {
					t.Fatalf("after chaos: %+v", view)
				}
			})
		}
	}
}

// TestStreamClusterE2EQuorumDegradedBatch: a batch arriving while the
// cluster is below quorum is counted locally — byte-identical — and the
// degradation is recorded in that batch's delta doc only; the next batch
// returns to the cluster.
func TestStreamClusterE2EQuorumDegradedBatch(t *testing.T) {
	fx := startClusterWorkers(t, 2)
	pool := startPool(t, fx, func(c *cluster.PoolConfig) { c.Quorum = 2 })
	srv, hs := newTestServer(t, func(c *server.Config) { c.Cluster = pool })
	batches := testStreamBatches()

	v := openStream(t, hs.URL, server.StreamRequest{MinSupport: testMinSupport, Cluster: true})
	if code, _ := postBatch(t, hs.URL, v.ID, server.BatchRequest{Baskets: batches[0]}); code != http.StatusOK {
		t.Fatal("batch 1 failed")
	}

	// Take one worker down and wait for the heartbeat to notice.
	fx.kills[0].Kill()
	deadline := time.Now().Add(15 * time.Second)
	for len(pool.Live()) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("dead worker never left the live set")
		}
		time.Sleep(5 * time.Millisecond)
	}

	code, doc := postBatch(t, hs.URL, v.ID, server.BatchRequest{Baskets: batches[1]})
	if code != http.StatusOK {
		t.Fatalf("below-quorum batch: status %d, want 200 (degrade, don't fail)", code)
	}
	if doc.Cluster == nil || !doc.Cluster.Degraded || doc.Cluster.DegradedReason == "" {
		t.Fatalf("degradation not recorded in the delta doc: %+v", doc.Cluster)
	}
	checkStreamMFS(t, hs.URL, v.ID, streamRef(t, batches[0]+batches[1], testMinSupport))
	if srv.Registry().Snapshot()["pincer_stream_cluster_degraded_total"] != 1 {
		t.Fatal("pincer_stream_cluster_degraded_total != 1")
	}

	// Revive; the next batch must fan out again — per-batch, not sticky.
	fx.kills[0].Revive()
	for len(pool.Live()) != 2 {
		if time.Now().After(deadline) {
			t.Fatal("revived worker never rejoined")
		}
		time.Sleep(5 * time.Millisecond)
	}
	code, doc = postBatch(t, hs.URL, v.ID, server.BatchRequest{Baskets: batches[2]})
	if code != http.StatusOK {
		t.Fatalf("post-recovery batch: status %d", code)
	}
	if doc.Cluster == nil || doc.Cluster.Degraded {
		t.Fatalf("degradation stuck across batches: %+v", doc.Cluster)
	}
	rpcs := doc.Cluster.RPCs
	for _, md := range doc.Cluster.Mine {
		rpcs += md.RPCs
	}
	if rpcs == 0 {
		t.Fatal("post-recovery batch did not return to the cluster")
	}
	checkStreamMFS(t, hs.URL, v.ID, streamRef(t, strings.Join(batches, ""), testMinSupport))
}

// TestStreamClusterE2ECoordinatorKillCompose is the composition case the
// suite exists for: the coordinator daemon dies between journaling a batch
// and snapshotting the state, AND a worker dies mid-delta-scan during the
// restarted daemon's journal replay. The replay must fail over and
// converge to the uninterrupted reference with zero lost and zero
// double-counted batches — and a third, clusterless generation on the
// same spool must still serve the stream by counting locally.
func TestStreamClusterE2ECoordinatorKillCompose(t *testing.T) {
	spoolDir := t.TempDir()
	fx := startClusterWorkers(t, 2)
	batches := testStreamBatches()

	// Generation 1: batch 1 applies and is snapshotted; batch 2 is
	// journaled "by the dying daemon" but never applied — the kill window
	// between the journal write and the state snapshot.
	pool1 := startPool(t, fx, nil)
	srv1, err := server.New(server.Config{SpoolDir: spoolDir, Workers: 1, Cluster: pool1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(srv1)
	v := openStream(t, hs1.URL, server.StreamRequest{MinSupport: testMinSupport, Cluster: true})
	if code, _ := postBatch(t, hs1.URL, v.ID, server.BatchRequest{Baskets: batches[0]}); code != http.StatusOK {
		t.Fatal("batch 1 failed")
	}
	journal := fmt.Sprintf(`{"id":%q,"seq":2,"baskets":%q}`, v.ID, batches[1])
	if err := os.WriteFile(filepath.Join(spoolDir, fmt.Sprintf("%s.b%08d.batch", v.ID, 2)), []byte(journal), 0o644); err != nil {
		t.Fatal(err)
	}
	hs1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	srv1.Abort(ctx)
	cancel()

	// Worker 0 will die mid-scan during the replayed batch's delta counting.
	fx.kills[0].Arm(1, 3)

	// Generation 2 over the same spool and workers: the replay must push
	// batch 2 through the normal apply path, fanning its verification over
	// the cluster, surviving the mid-delta worker death by failover.
	pool2 := startPool(t, fx, nil)
	srv2, err := server.New(server.Config{SpoolDir: spoolDir, Workers: 1, Cluster: pool2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptest.NewServer(srv2)
	snap := srv2.Registry().Snapshot()
	if snap["pincer_stream_batches_replayed_total"] != 1 {
		t.Fatalf("batches replayed = %d, want 1", snap["pincer_stream_batches_replayed_total"])
	}
	if snap["pincer_stream_cluster_batches_total"] == 0 {
		t.Fatal("the replayed batch did not go through the cluster accounting")
	}
	if !fx.kills[0].Down() {
		t.Fatal("the armed worker never died — the composition was not exercised")
	}

	var view server.StreamView
	doJSON(t, http.MethodGet, hs2.URL+"/v1/streams/"+v.ID, nil, &view)
	wantTx := mustParse(t, batches[0]+batches[1]).Len()
	if view.Interrupted || view.Seq != 2 || view.Transactions != wantTx || !view.Cluster {
		t.Fatalf("after composed recovery: %+v (want seq 2, %d tx)", view, wantTx)
	}
	checkStreamMFS(t, hs2.URL, v.ID, streamRef(t, batches[0]+batches[1], testMinSupport))

	// Zero double counts: a client retry of the replayed batch is a
	// duplicate ack, not a re-apply.
	code, doc := postBatch(t, hs2.URL, v.ID, server.BatchRequest{Baskets: batches[1], Seq: 2})
	if code != http.StatusOK || !doc.Duplicate || doc.Transactions != wantTx {
		t.Fatalf("retry of replayed batch: code %d, delta %+v", code, doc)
	}

	// The stream keeps accepting batches on the surviving worker.
	fx.kills[0].Revive()
	code, doc = postBatch(t, hs2.URL, v.ID, server.BatchRequest{Baskets: batches[2]})
	if code != http.StatusOK || doc.Cluster == nil {
		t.Fatalf("post-recovery batch: code %d, delta %+v", code, doc)
	}
	checkStreamMFS(t, hs2.URL, v.ID, streamRef(t, strings.Join(batches, ""), testMinSupport))
	hs2.Close()
	ctx, cancel = context.WithTimeout(context.Background(), 10*time.Second)
	srv2.Abort(ctx)
	cancel()

	// Generation 3 has no cluster at all: the clustered spec must degrade
	// to local counting — same answers — instead of refusing to recover.
	srv3, err := server.New(server.Config{SpoolDir: spoolDir, Workers: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	hs3 := httptest.NewServer(srv3)
	defer hs3.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv3.Abort(ctx)
	}()
	var view3 server.StreamView
	doJSON(t, http.MethodGet, hs3.URL+"/v1/streams/"+v.ID, nil, &view3)
	if view3.Interrupted || view3.Seq != 3 {
		t.Fatalf("clusterless recovery: %+v", view3)
	}
	code, doc = postBatch(t, hs3.URL, v.ID, server.BatchRequest{Baskets: batches[0]})
	if code != http.StatusOK {
		t.Fatalf("clusterless append: status %d", code)
	}
	if doc.Cluster != nil {
		t.Fatalf("clusterless batch claims cluster accounting: %+v", doc.Cluster)
	}
	checkStreamMFS(t, hs3.URL, v.ID, streamRef(t, strings.Join(batches, "")+batches[0], testMinSupport))
}
