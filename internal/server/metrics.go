package server

import "pincer/internal/obsv"

// metricsSet holds the serving-layer metrics, registered next to the mining
// metrics (pincer_runs_total, pincer_passes_total, ...) that the shared
// MetricsTracer feeds, so one /metrics scrape describes both layers.
type metricsSet struct {
	jobsSubmitted *obsv.Counter
	jobsStarted   *obsv.Counter
	jobsCompleted *obsv.Counter
	jobsPartial   *obsv.Counter
	jobsFailed    *obsv.Counter
	jobsCancelled *obsv.Counter
	jobsRejected  *obsv.Counter
	jobsResumed   *obsv.Counter

	cacheHits      *obsv.Counter
	cacheMisses    *obsv.Counter
	cacheEvictions *obsv.Counter

	queueDepth   *obsv.Gauge
	jobsRunning  *obsv.Gauge
	cacheBytes   *obsv.Gauge
	cacheEntries *obsv.Gauge
}

func newMetricsSet(reg *obsv.Registry) *metricsSet {
	return &metricsSet{
		jobsSubmitted: reg.Counter("pincer_jobs_submitted_total", "Jobs accepted by POST /v1/jobs (including cache hits)."),
		jobsStarted:   reg.Counter("pincer_jobs_started_total", "Jobs whose mining actually started (cache hits never do)."),
		jobsCompleted: reg.Counter("pincer_jobs_completed_total", "Jobs that finished with a complete result."),
		jobsPartial:   reg.Counter("pincer_jobs_partial_total", "Jobs ended early by a deadline or resource budget."),
		jobsFailed:    reg.Counter("pincer_jobs_failed_total", "Jobs that ended in an error."),
		jobsCancelled: reg.Counter("pincer_jobs_cancelled_total", "Jobs cancelled by DELETE /v1/jobs/{id}."),
		jobsRejected:  reg.Counter("pincer_jobs_rejected_total", "Submissions rejected with 429 because the queue was full."),
		jobsResumed:   reg.Counter("pincer_jobs_resumed_total", "Interrupted jobs re-enqueued from the spool at startup."),

		cacheHits:      reg.Counter("pincer_cache_hits_total", "Submissions served from the result cache without mining."),
		cacheMisses:    reg.Counter("pincer_cache_misses_total", "Submissions that had to mine."),
		cacheEvictions: reg.Counter("pincer_cache_evictions_total", "Results evicted to hold the cache byte bound."),

		queueDepth:   reg.Gauge("pincer_queue_depth", "Jobs waiting in the run queue."),
		jobsRunning:  reg.Gauge("pincer_jobs_running", "Jobs currently mining."),
		cacheBytes:   reg.Gauge("pincer_result_cache_bytes", "Bytes held by the result cache."),
		cacheEntries: reg.Gauge("pincer_result_cache_entries", "Results held by the cache."),
	}
}
