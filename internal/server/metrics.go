package server

import (
	"fmt"
	"sync"
	"time"

	"pincer/internal/cluster"
	"pincer/internal/obsv"
)

// metricsSet holds the serving-layer metrics, registered next to the mining
// metrics (pincer_runs_total, pincer_passes_total, ...) that the shared
// MetricsTracer feeds, so one /metrics scrape describes both layers.
type metricsSet struct {
	jobsSubmitted *obsv.Counter
	jobsStarted   *obsv.Counter
	jobsCompleted *obsv.Counter
	jobsPartial   *obsv.Counter
	jobsFailed    *obsv.Counter
	jobsCancelled *obsv.Counter
	jobsRejected  *obsv.Counter
	jobsResumed   *obsv.Counter

	cacheHits      *obsv.Counter
	cacheMisses    *obsv.Counter
	cacheEvictions *obsv.Counter

	datasetCacheHits   *obsv.Counter
	datasetCacheMisses *obsv.Counter

	queueDepth          *obsv.Gauge
	jobsRunning         *obsv.Gauge
	cacheBytes          *obsv.Gauge
	cacheEntries        *obsv.Gauge
	datasetCacheBytes   *obsv.Gauge
	datasetCacheEntries *obsv.Gauge

	// Stream-resource metrics (pincer_stream_*): the incremental maintainers
	// behind /v1/streams. The fast-path / re-mine split is the headline —
	// it is the whole point of maintaining the negative border.
	streamsCreated        *obsv.Counter
	streamsResumed        *obsv.Counter
	streamsInterrupted    *obsv.Counter
	streamBatches         *obsv.Counter
	streamBatchesReplayed *obsv.Counter
	streamFastPath        *obsv.Counter
	streamRemines         *obsv.Counter
	streamChecked         *obsv.Counter
	streamsActive         *obsv.Gauge
	streamVerifySeconds   *obsv.Histogram
	streamMineSeconds     *obsv.Histogram

	// Distributed-stream metrics (pincer_stream_cluster_*): batches whose
	// delta counting fanned out over the worker cluster, folded from each
	// batch's cluster.StreamDoc (including any distributed re-mine).
	streamClusterBatches      *obsv.Counter
	streamClusterShards       *obsv.Counter
	streamClusterRPCs         *obsv.Counter
	streamClusterRetries      *obsv.Counter
	streamClusterDuplicates   *obsv.Counter
	streamClusterWorkerDeaths *obsv.Counter
	streamClusterFailovers    *obsv.Counter
	streamClusterLocalCounts  *obsv.Counter
	streamClusterDegraded     *obsv.Counter
	streamClusterRemines      *obsv.Counter

	// selected counts adaptive engine-selection decisions by the resolved
	// miner (pincer_engine_selected_total{engine="..."}); the full miner
	// vocabulary is pre-registered so the exposition is stable from the
	// first scrape.
	selected map[string]*obsv.Counter
}

const engineSelectedName = "pincer_engine_selected_total"

func newMetricsSet(reg *obsv.Registry) *metricsSet {
	selected := map[string]*obsv.Counter{}
	for _, miner := range [...]string{MinerPincer, MinerApriori, MinerTopdown, MinerVertical, MinerParallel, MinerFPMax} {
		selected[miner] = reg.LabeledCounter(engineSelectedName,
			fmt.Sprintf("engine=%q", miner), "Adaptive engine-selection decisions by resolved miner.")
	}
	return &metricsSet{
		selected:      selected,
		jobsSubmitted: reg.Counter("pincer_jobs_submitted_total", "Jobs accepted by POST /v1/jobs (including cache hits)."),
		jobsStarted:   reg.Counter("pincer_jobs_started_total", "Jobs whose mining actually started (cache hits never do)."),
		jobsCompleted: reg.Counter("pincer_jobs_completed_total", "Jobs that finished with a complete result."),
		jobsPartial:   reg.Counter("pincer_jobs_partial_total", "Jobs ended early by a deadline or resource budget."),
		jobsFailed:    reg.Counter("pincer_jobs_failed_total", "Jobs that ended in an error."),
		jobsCancelled: reg.Counter("pincer_jobs_cancelled_total", "Jobs cancelled by DELETE /v1/jobs/{id}."),
		jobsRejected:  reg.Counter("pincer_jobs_rejected_total", "Submissions rejected with 429 because the queue was full."),
		jobsResumed:   reg.Counter("pincer_jobs_resumed_total", "Interrupted jobs re-enqueued from the spool at startup."),

		cacheHits:      reg.Counter("pincer_cache_hits_total", "Submissions served from the result cache without mining."),
		cacheMisses:    reg.Counter("pincer_cache_misses_total", "Submissions that had to mine."),
		cacheEvictions: reg.Counter("pincer_cache_evictions_total", "Results evicted to hold the cache byte bound."),

		datasetCacheHits:   reg.Counter("pincer_dataset_cache_hits_total", "Dataset loads served from the parsed-dataset cache (no parse, no re-profile)."),
		datasetCacheMisses: reg.Counter("pincer_dataset_cache_misses_total", "Dataset loads that had to parse and profile the database."),

		queueDepth:          reg.Gauge("pincer_queue_depth", "Jobs waiting in the run queue."),
		jobsRunning:         reg.Gauge("pincer_jobs_running", "Jobs currently mining."),
		cacheBytes:          reg.Gauge("pincer_result_cache_bytes", "Bytes held by the result cache."),
		cacheEntries:        reg.Gauge("pincer_result_cache_entries", "Results held by the cache."),
		datasetCacheBytes:   reg.Gauge("pincer_dataset_cache_bytes", "Raw bytes represented by the parsed-dataset cache."),
		datasetCacheEntries: reg.Gauge("pincer_dataset_cache_entries", "Datasets held by the parsed-dataset cache."),

		streamsCreated:        reg.Counter("pincer_stream_created_total", "Streams opened by POST /v1/streams."),
		streamsResumed:        reg.Counter("pincer_stream_resumed_total", "Streams rebuilt from the spool at startup."),
		streamsInterrupted:    reg.Counter("pincer_stream_interrupted_total", "Streams whose batch apply failed mid-flight (journal retained for restart)."),
		streamBatches:         reg.Counter("pincer_stream_batches_total", "Batches journaled and applied to stream maintainers."),
		streamBatchesReplayed: reg.Counter("pincer_stream_batches_replayed_total", "Journaled batches re-applied during startup recovery."),
		streamFastPath:        reg.Counter("pincer_stream_remines_avoided_total", "Deltas absorbed by the border check alone, with no mining."),
		streamRemines:         reg.Counter("pincer_stream_remines_total", "Deltas that moved the border and forced a warm-started re-mine."),
		streamChecked:         reg.Counter("pincer_stream_border_checks_total", "MFS and border itemsets counted against delta transactions."),
		streamsActive:         reg.Gauge("pincer_stream_active", "Streams currently open."),
		streamVerifySeconds:   reg.Histogram("pincer_stream_verify_seconds", "", "Wall clock of per-batch delta verification (border check)."),
		streamMineSeconds:     reg.Histogram("pincer_stream_remine_seconds", "", "Wall clock of border-moved re-mines."),

		streamClusterBatches:      reg.Counter("pincer_stream_cluster_batches_total", "Batches whose delta counting was fanned out over the worker cluster."),
		streamClusterShards:       reg.Counter("pincer_stream_cluster_shards_total", "Delta shards counted across the cluster."),
		streamClusterRPCs:         reg.Counter("pincer_stream_cluster_rpcs_total", "Count/load RPC attempts issued for stream deltas (including re-mines)."),
		streamClusterRetries:      reg.Counter("pincer_stream_cluster_rpc_retries_total", "Stream RPC attempts beyond a shard's first."),
		streamClusterDuplicates:   reg.Counter("pincer_stream_cluster_duplicate_replies_total", "Memoized (duplicate-delivery) stream count replies detected."),
		streamClusterWorkerDeaths: reg.Counter("pincer_stream_cluster_worker_deaths_total", "Workers declared dead while counting a stream delta."),
		streamClusterFailovers:    reg.Counter("pincer_stream_cluster_failovers_total", "Delta shards failed over to another live worker mid-batch."),
		streamClusterLocalCounts:  reg.Counter("pincer_stream_cluster_local_counts_total", "Delta shards counted locally by the stream coordinator."),
		streamClusterDegraded:     reg.Counter("pincer_stream_cluster_degraded_total", "Batches counted locally because the cluster fell below quorum."),
		streamClusterRemines:      reg.Counter("pincer_stream_cluster_remines_total", "Re-mines whose passes fanned out over the cluster."),
	}
}

// streamCluster folds one batch's distribution doc into the
// pincer_stream_cluster_* family.
func (ms *metricsSet) streamCluster(doc *cluster.StreamDoc) {
	ms.streamClusterBatches.Inc()
	ms.streamClusterShards.Add(doc.Shards)
	rpcs, retries, dups, deaths := doc.RPCs, doc.Retries, doc.DuplicateReplies, doc.WorkerDeaths
	local := doc.LocalShardCounts
	for _, md := range doc.Mine {
		rpcs += md.RPCs
		retries += md.Retries
		dups += md.DuplicateReplies
		deaths += md.WorkerDeaths
		local += md.LocalShardCounts
	}
	ms.streamClusterRPCs.Add(rpcs)
	ms.streamClusterRetries.Add(retries)
	ms.streamClusterDuplicates.Add(dups)
	ms.streamClusterWorkerDeaths.Add(deaths)
	ms.streamClusterFailovers.Add(doc.Failovers)
	ms.streamClusterLocalCounts.Add(local)
	if doc.Degraded {
		ms.streamClusterDegraded.Inc()
	}
	ms.streamClusterRemines.Add(int64(len(doc.Mine)))
}

// engineSelected bumps the selection counter for the resolved miner.
func (ms *metricsSet) engineSelected(miner string) {
	if c := ms.selected[miner]; c != nil {
		c.Inc()
	}
}

// httpRoutes is the fixed route vocabulary of the HTTP metrics (see
// routeOf). Pre-registering every route keeps the /metrics exposition
// stable from the first scrape.
var httpRoutes = [...]string{"submit", "list", "status", "cancel", "result",
	"stream_submit", "stream_list", "stream_status", "stream_batch", "stream_mfs", "stream_delete",
	"healthz", "debug", "other"}

// httpMetrics records per-route request latency histograms and response
// counters by status class — the serving-layer view the load harness reads
// back from /metrics while it drives the daemon.
type httpMetrics struct {
	reg             *obsv.Registry
	inflightLimited *obsv.Counter

	mu    sync.Mutex
	hists map[string]*obsv.Histogram // route → latency histogram
	codes map[string]*obsv.Counter   // route|class → response counter
}

const (
	httpSecondsName   = "pincer_http_request_seconds"
	httpResponsesName = "pincer_http_responses_total"
)

func newHTTPMetrics(reg *obsv.Registry) *httpMetrics {
	m := &httpMetrics{
		reg:             reg,
		inflightLimited: reg.Counter("pincer_http_inflight_limited_total", "Requests rejected by the per-remote in-flight cap."),
		hists:           map[string]*obsv.Histogram{},
		codes:           map[string]*obsv.Counter{},
	}
	for _, route := range httpRoutes {
		m.hists[route] = reg.Histogram(httpSecondsName,
			fmt.Sprintf("route=%q", route), "HTTP request latency by route.")
		for _, class := range [...]string{"2xx", "4xx", "5xx"} {
			m.codes[route+"|"+class] = reg.LabeledCounter(httpResponsesName,
				fmt.Sprintf("route=%q,code=%q", route, class), "HTTP responses by route and status class.")
		}
	}
	return m
}

// observe records one finished request.
func (m *httpMetrics) observe(route string, code int, d time.Duration) {
	m.mu.Lock()
	h, ok := m.hists[route]
	if !ok {
		h = m.reg.Histogram(httpSecondsName, fmt.Sprintf("route=%q", route), "HTTP request latency by route.")
		m.hists[route] = h
	}
	class := fmt.Sprintf("%dxx", code/100)
	c, ok := m.codes[route+"|"+class]
	if !ok {
		c = m.reg.LabeledCounter(httpResponsesName,
			fmt.Sprintf("route=%q,code=%q", route, class), "HTTP responses by route and status class.")
		m.codes[route+"|"+class] = c
	}
	m.mu.Unlock()
	h.Observe(d)
	c.Inc()
}
