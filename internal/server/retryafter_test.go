package server

import (
	"testing"
	"time"
)

// TestRetryAfterSeconds pins the honesty contract of the 429/503 Retry-After
// header: the advertised wait grows with the queued backlog (spread over the
// worker pool), never drops below one second of slack, and is clamped so a
// deep backlog cannot tell clients to go away for minutes.
func TestRetryAfterSeconds(t *testing.T) {
	mk := func(workers, queued int) *Manager {
		m := &Manager{cfg: Config{Workers: workers}, queue: make(chan *Job, queued+1)}
		for i := 0; i < queued; i++ {
			m.queue <- &Job{ID: "q", created: time.Now()}
		}
		return m
	}
	cases := []struct {
		workers, queued, want int
	}{
		{2, 0, 1},    // empty queue: just the slack second
		{2, 4, 3},    // 4 queued over 2 workers: 1 + 2
		{1, 10, 11},  // single worker drains the whole backlog serially
		{4, 2, 1},    // backlog smaller than the pool rounds down to slack
		{2, 200, 30}, // clamped
	}
	for _, tc := range cases {
		if got := mk(tc.workers, tc.queued).RetryAfterSeconds(); got != tc.want {
			t.Errorf("RetryAfterSeconds(workers=%d, queued=%d) = %d, want %d",
				tc.workers, tc.queued, got, tc.want)
		}
	}
	// A zero-worker config (impossible after withDefaults, but cheap to
	// harden) must not divide by zero.
	if got := mk(0, 3).RetryAfterSeconds(); got != 4 {
		t.Errorf("RetryAfterSeconds(workers=0, queued=3) = %d, want 4", got)
	}
}
