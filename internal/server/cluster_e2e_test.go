package server_test

// End-to-end tests of distributed-counting jobs over real HTTP at both
// layers: REST clients on one side, a live coordinator/worker cluster on
// the other. Pinned here: a cluster job's result is byte-identical to the
// single-node answer and its result doc records the distribution; quorum
// loss degrades the job to local counting (recorded in doc and metrics)
// instead of failing it; and a coordinator daemon killed mid-job resumes
// from its checkpoint on restart and finishes on the still-live workers.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"pincer/internal/cluster"
	"pincer/internal/faultinject"
	"pincer/internal/obsv"
	"pincer/internal/server"
)

// clusterFixture is a set of cluster workers with their kill switches.
type clusterFixture struct {
	servers []*httptest.Server
	kills   []*faultinject.NodeKill
	addrs   []string
	// countDelay slows every count RPC, so tests can observe (and
	// interrupt) a job mid-mine deterministically.
	countDelay atomic.Int64 // nanoseconds
}

func startClusterWorkers(t *testing.T, n int) *clusterFixture {
	t.Helper()
	fx := &clusterFixture{}
	for i := 0; i < n; i++ {
		nk := &faultinject.NodeKill{}
		w := cluster.NewWorker(cluster.WorkerConfig{
			ID:   fmt.Sprintf("w%d", i),
			Down: nk.Down,
			CountHook: func(*cluster.CountRequest) error {
				if d := fx.countDelay.Load(); d > 0 {
					time.Sleep(time.Duration(d))
				}
				return nk.CountHook()
			},
			StreamCountHook: func(*cluster.StreamCountRequest) error { return nk.CountHook() },
			TxHook:          nk.TxHook,
		})
		srv := httptest.NewServer(w)
		t.Cleanup(srv.Close)
		fx.servers = append(fx.servers, srv)
		fx.kills = append(fx.kills, nk)
		fx.addrs = append(fx.addrs, srv.URL)
	}
	return fx
}

func startPool(t *testing.T, fx *clusterFixture, mod func(*cluster.PoolConfig)) *cluster.Pool {
	t.Helper()
	cfg := cluster.PoolConfig{
		HeartbeatInterval: 25 * time.Millisecond,
		LivenessDeadline:  2 * time.Second,
		BackoffBase:       time.Millisecond,
		BackoffCap:        5 * time.Millisecond,
	}
	if mod != nil {
		mod(&cfg)
	}
	pool, err := cluster.NewPool(fx.addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool.Start()
	t.Cleanup(pool.Close)
	return pool
}

func TestE2EClusterJob(t *testing.T) {
	fx := startClusterWorkers(t, 2)
	pool := startPool(t, fx, nil)
	_, hs := newTestServer(t, func(c *server.Config) { c.Cluster = pool })

	// The single-node reference, mined by the same daemon.
	code, ref := submit(t, hs.URL, server.JobRequest{Baskets: testBaskets, MinSupport: testMinSupport})
	if code != http.StatusAccepted {
		t.Fatalf("reference submit: status %d", code)
	}
	waitStatus(t, hs.URL, ref.ID, server.StatusDone)
	var refDoc server.ResultDoc
	if code := doJSON(t, http.MethodGet, hs.URL+"/v1/results/"+ref.ID, nil, &refDoc); code != http.StatusOK {
		t.Fatalf("GET reference result: status %d", code)
	}

	code, v := submit(t, hs.URL, server.JobRequest{Baskets: testBaskets, MinSupport: testMinSupport, Cluster: true})
	if code != http.StatusAccepted {
		t.Fatalf("cluster submit: status %d (a cluster job must not hit the single-node cache)", code)
	}
	waitStatus(t, hs.URL, v.ID, server.StatusDone)
	var doc server.ResultDoc
	if code := doJSON(t, http.MethodGet, hs.URL+"/v1/results/"+v.ID, nil, &doc); code != http.StatusOK {
		t.Fatalf("GET cluster result: status %d", code)
	}
	if got, want := mfsSignature(&doc), mfsSignature(&refDoc); got != want {
		t.Fatalf("cluster MFS %q differs from single-node %q", got, want)
	}
	if doc.Cluster == nil {
		t.Fatal("cluster job's result doc lacks the cluster summary")
	}
	if doc.Cluster.Degraded {
		t.Fatalf("healthy cluster degraded: %+v", doc.Cluster)
	}
	if doc.Cluster.RPCs == 0 || doc.Cluster.Workers != 2 {
		t.Fatalf("implausible cluster accounting: %+v", doc.Cluster)
	}

	// An identical cluster resubmission is a cache hit of the cluster doc.
	code, v2 := submit(t, hs.URL, server.JobRequest{Baskets: testBaskets, MinSupport: testMinSupport, Cluster: true})
	if code != http.StatusOK || !v2.Cached {
		t.Fatalf("cluster resubmit: status %d cached=%v, want 200 cached", code, v2.Cached)
	}
}

func TestE2EClusterValidation(t *testing.T) {
	// Without a configured pool, cluster jobs are rejected up front.
	_, hs := newTestServer(t, nil)
	var e struct {
		Reason string `json:"reason"`
	}
	code := doJSON(t, http.MethodPost, hs.URL+"/v1/jobs",
		server.JobRequest{Baskets: testBaskets, MinSupport: testMinSupport, Cluster: true}, &e)
	if code != http.StatusBadRequest || e.Reason != server.ReasonBadCluster {
		t.Fatalf("clusterless daemon answered %d reason %q, want 400 %q", code, e.Reason, server.ReasonBadCluster)
	}

	// Incompatible plans are rejected regardless of the pool.
	for _, spec := range []server.JobRequest{
		{Baskets: testBaskets, MinSupport: testMinSupport, Cluster: true, Miner: server.MinerApriori},
		{Baskets: testBaskets, MinSupport: testMinSupport, Cluster: true, Counter: "tidlist"},
		{Baskets: testBaskets, MinSupport: testMinSupport, Cluster: true, Engine: server.EngineAuto},
	} {
		code := doJSON(t, http.MethodPost, hs.URL+"/v1/jobs", spec, &e)
		if code != http.StatusBadRequest || e.Reason != server.ReasonBadCluster {
			t.Fatalf("spec %+v answered %d reason %q, want 400 %q", spec, code, e.Reason, server.ReasonBadCluster)
		}
	}
}

func TestE2EClusterQuorumDegraded(t *testing.T) {
	fx := startClusterWorkers(t, 2)
	reg := obsv.NewRegistry()
	pool := startPool(t, fx, func(c *cluster.PoolConfig) {
		c.Quorum = 2
		c.Registry = reg
	})
	_, hs := newTestServer(t, func(c *server.Config) {
		c.Cluster = pool
		c.Registry = reg
	})

	// Kill one worker at its second count RPC: the pass fails over to the
	// survivor, and the next barrier sees the cluster below quorum.
	fx.kills[0].TripAtCount = 2

	code, v := submit(t, hs.URL, server.JobRequest{Baskets: testBaskets, MinSupport: testMinSupport, Cluster: true})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	waitStatus(t, hs.URL, v.ID, server.StatusDone)
	var doc server.ResultDoc
	if code := doJSON(t, http.MethodGet, hs.URL+"/v1/results/"+v.ID, nil, &doc); code != http.StatusOK {
		t.Fatalf("GET result: status %d", code)
	}

	// The degraded run still answers exactly.
	code, ref := submit(t, hs.URL, server.JobRequest{Baskets: testBaskets, MinSupport: testMinSupport})
	if code != http.StatusAccepted {
		t.Fatalf("reference submit: status %d", code)
	}
	waitStatus(t, hs.URL, ref.ID, server.StatusDone)
	var refDoc server.ResultDoc
	doJSON(t, http.MethodGet, hs.URL+"/v1/results/"+ref.ID, nil, &refDoc)
	if got, want := mfsSignature(&doc), mfsSignature(&refDoc); got != want {
		t.Fatalf("degraded MFS %q differs from single-node %q", got, want)
	}

	if doc.Cluster == nil || !doc.Cluster.Degraded {
		t.Fatalf("quorum loss not recorded in the result doc: %+v", doc.Cluster)
	}
	if doc.Cluster.DegradedReason == "" || doc.Cluster.DegradedPass == 0 {
		t.Fatalf("degradation not attributed: %+v", doc.Cluster)
	}
	if n := reg.Snapshot()["pincer_cluster_degraded_total"]; n != 1 {
		t.Fatalf("pincer_cluster_degraded_total = %d, want 1", n)
	}
}

func TestE2EClusterCoordinatorRestartResume(t *testing.T) {
	spoolDir := t.TempDir()
	fx := startClusterWorkers(t, 2)
	// Slow every count RPC so generation 1 is reliably still mining when
	// the abort lands.
	fx.countDelay.Store(int64(150 * time.Millisecond))

	// Coordinator generation 1: submit a cluster job, wait for the first
	// pass barrier, then abort the daemon (SIGINT semantics) — the job is
	// left interrupted with its spool entry and checkpoint.
	pool1 := startPool(t, fx, nil)
	srv1, err := server.New(server.Config{SpoolDir: spoolDir, Workers: 1, Cluster: pool1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(srv1)
	code, v := submit(t, hs1.URL, server.JobRequest{Baskets: testBaskets, MinSupport: testMinSupport, Cluster: true})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var jv server.JobView
		if code := doJSON(t, http.MethodGet, hs1.URL+"/v1/jobs/"+v.ID, nil, &jv); code != http.StatusOK {
			t.Fatalf("GET job: status %d", code)
		}
		if jv.Status == server.StatusRunning && jv.Pass >= 1 {
			break
		}
		if jv.Status == server.StatusDone {
			t.Fatal("job finished before the abort; countDelay too small to interrupt")
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached a pass barrier (status %s)", jv.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := srv1.Abort(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	hs1.Close()

	// Generation 2 over the same spool and the same still-live workers:
	// the job resumes at its checkpointed pass barrier and completes on
	// the cluster.
	fx.countDelay.Store(0)
	pool2 := startPool(t, fx, nil)
	srv2, err := server.New(server.Config{SpoolDir: spoolDir, Workers: 1, Cluster: pool2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptest.NewServer(srv2)
	defer hs2.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv2.Abort(ctx)
	}()
	if got := srv2.Registry().Snapshot()["pincer_jobs_resumed_total"]; got != 1 {
		t.Fatalf("jobs_resumed_total = %d, want 1", got)
	}
	waitStatus(t, hs2.URL, v.ID, server.StatusDone)
	var doc server.ResultDoc
	if code := doJSON(t, http.MethodGet, hs2.URL+"/v1/results/"+v.ID, nil, &doc); code != http.StatusOK {
		t.Fatalf("GET resumed result: status %d", code)
	}

	// The resumed distributed run reproduces the uninterrupted single-node
	// answer exactly.
	code, ref := submit(t, hs2.URL, server.JobRequest{Baskets: testBaskets, MinSupport: testMinSupport})
	if code != http.StatusAccepted {
		t.Fatalf("reference submit: status %d", code)
	}
	waitStatus(t, hs2.URL, ref.ID, server.StatusDone)
	var refDoc server.ResultDoc
	doJSON(t, http.MethodGet, hs2.URL+"/v1/results/"+ref.ID, nil, &refDoc)
	if got, want := mfsSignature(&doc), mfsSignature(&refDoc); got != want {
		t.Fatalf("resumed cluster MFS %q differs from single-node %q", got, want)
	}
	if doc.Cluster == nil || doc.Cluster.RPCs == 0 {
		t.Fatalf("resumed run did not count on the cluster: %+v", doc.Cluster)
	}
}
