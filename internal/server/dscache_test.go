package server

import (
	"crypto/sha256"
	"fmt"
	"testing"

	"pincer/internal/dataset"
	"pincer/internal/itemset"
)

func dsKey(s string) [32]byte { return sha256.Sum256([]byte(s)) }

func testDS(n int) *dataset.Dataset {
	d := dataset.Empty(8)
	for i := 0; i < n; i++ {
		d.Append(itemset.New(itemset.Item(i%8), itemset.Item((i+1)%8)))
	}
	return d
}

func TestDatasetCacheLRUByteBound(t *testing.T) {
	c := newDatasetCache(30) // three 10-byte entries
	for i := 0; i < 3; i++ {
		d := testDS(i + 1)
		c.put(dsKey(fmt.Sprint(i)), d, d.Profile(), 10)
	}
	if c.len() != 3 {
		t.Fatalf("len = %d, want 3", c.len())
	}
	// Touch entry 0 so entry 1 is the LRU victim.
	if _, _, ok := c.get(dsKey("0")); !ok {
		t.Fatal("entry 0 missing")
	}
	d3 := testDS(4)
	c.put(dsKey("3"), d3, d3.Profile(), 10)
	if _, _, ok := c.get(dsKey("1")); ok {
		t.Error("entry 1 survived; LRU eviction did not pick the least recent")
	}
	for _, k := range []string{"0", "2", "3"} {
		if _, _, ok := c.get(dsKey(k)); !ok {
			t.Errorf("entry %s missing after eviction", k)
		}
	}
	if c.bytes > 30 {
		t.Errorf("bytes = %d exceeds bound 30", c.bytes)
	}

	// The memoized profile round-trips with its dataset.
	d, prof, ok := c.get(dsKey("3"))
	if !ok || d != d3 {
		t.Fatal("entry 3 lost its dataset")
	}
	if want := d3.Profile(); prof != want {
		t.Errorf("memoized profile %+v differs from recomputed %+v", prof, want)
	}
}

func TestDatasetCacheDisabledAndOversized(t *testing.T) {
	for _, c := range []*datasetCache{newDatasetCache(0), newDatasetCache(-1)} {
		c.put(dsKey("k"), testDS(2), dataset.Profile{}, 1)
		if c.len() != 0 {
			t.Fatal("disabled cache stored an entry")
		}
	}
	c := newDatasetCache(10)
	c.put(dsKey("big"), testDS(2), dataset.Profile{}, 11)
	if c.len() != 0 || c.bytes != 0 {
		t.Fatalf("oversized dataset stored: len=%d bytes=%d", c.len(), c.bytes)
	}
}

func TestDatasetCacheReplaceSameKey(t *testing.T) {
	c := newDatasetCache(1 << 10)
	a, b := testDS(1), testDS(5)
	c.put(dsKey("k"), a, a.Profile(), 4)
	c.put(dsKey("k"), b, b.Profile(), 9)
	d, prof, ok := c.get(dsKey("k"))
	if !ok || d != b {
		t.Fatal("replacement lost")
	}
	if prof != b.Profile() {
		t.Error("replacement kept the stale profile")
	}
	if c.len() != 1 || c.bytes != 9 {
		t.Errorf("len=%d bytes=%d, want 1/9 (replacement must re-account)", c.len(), c.bytes)
	}
}
