package server_test

// End-to-end tests of the stream resource over real HTTP: open → append →
// read-back equivalence against from-scratch mining, seq idempotency,
// validation reasons, deletion, and the two kill → restart → replay
// contracts (a batch journaled but never applied, and a daemon killed in
// the middle of a border-moved re-mine).

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pincer/internal/core"
	"pincer/internal/dataset"
	"pincer/internal/faultinject"
	"pincer/internal/server"
)

// streamRef mines the concatenated basket text from scratch and renders the
// MFS as a canonical signature map — the answer the maintained stream must
// match exactly after every applied batch.
func streamRef(t *testing.T, baskets string, minSupport float64) map[string]int64 {
	t.Helper()
	d := mustParse(t, baskets)
	opt := core.DefaultOptions()
	opt.KeepFrequent = false
	res, err := core.MineCount(dataset.NewScanner(d), d.MinCount(minSupport), opt)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{}
	for i, m := range res.MFS {
		parts := make([]string, len(m))
		for j, it := range m {
			parts[j] = fmt.Sprint(int64(it))
		}
		want[strings.Join(parts, " ")] = res.MFSSupports[i]
	}
	return want
}

// checkStreamMFS asserts GET /v1/streams/{id}/mfs equals the reference.
func checkStreamMFS(t *testing.T, base, id string, want map[string]int64) {
	t.Helper()
	var doc server.StreamMFSDoc
	if code := doJSON(t, http.MethodGet, base+"/v1/streams/"+id+"/mfs", nil, &doc); code != http.StatusOK {
		t.Fatalf("GET mfs: status %d", code)
	}
	if len(doc.MFS) != len(want) {
		t.Fatalf("stream MFS has %d sets, reference %d", len(doc.MFS), len(want))
	}
	for _, m := range doc.MFS {
		items := make([]string, len(m.Items))
		for i, it := range m.Items {
			items[i] = fmt.Sprint(it)
		}
		key := strings.Join(items, " ")
		if sup, ok := want[key]; !ok || sup != m.Support {
			t.Errorf("stream MFS element %q support %d not in reference %v", key, m.Support, want)
		}
	}
}

func openStream(t *testing.T, base string, spec server.StreamRequest) server.StreamView {
	t.Helper()
	var v server.StreamView
	if code := doJSON(t, http.MethodPost, base+"/v1/streams", spec, &v); code != http.StatusCreated {
		t.Fatalf("POST /v1/streams: status %d", code)
	}
	if v.ID == "" || v.Seq != 0 {
		t.Fatalf("fresh stream view: %+v", v)
	}
	return v
}

func postBatch(t *testing.T, base, id string, req server.BatchRequest) (int, server.StreamDeltaDoc) {
	t.Helper()
	var doc server.StreamDeltaDoc
	code := doJSON(t, http.MethodPost, base+"/v1/streams/"+id+"/batches", req, &doc)
	return code, doc
}

func TestE2EStreamLifecycle(t *testing.T) {
	srv, hs := newTestServer(t, nil)
	v := openStream(t, hs.URL, server.StreamRequest{MinSupport: testMinSupport})
	id := v.ID

	// Feed testBaskets in three batches; after every one the maintained MFS
	// must be byte-identical to mining the accumulated prefix from scratch.
	lines := strings.SplitAfter(strings.TrimSuffix(testBaskets, "\n"), "\n")
	batches := []string{
		strings.Join(lines[:6], ""),
		strings.Join(lines[6:12], ""),
		strings.Join(lines[12:], ""),
	}
	prefix := ""
	for i, b := range batches {
		code, doc := postBatch(t, hs.URL, id, server.BatchRequest{Baskets: b})
		if code != http.StatusOK {
			t.Fatalf("batch %d: status %d", i+1, code)
		}
		if doc.Seq != int64(i+1) || doc.Duplicate {
			t.Fatalf("batch %d: delta %+v", i+1, doc)
		}
		if i == 0 && (!doc.Remined || doc.Reason != "initial") {
			t.Fatalf("first delta should be the initial mine, got %+v", doc)
		}
		prefix += b
		checkStreamMFS(t, hs.URL, id, streamRef(t, prefix, testMinSupport))
	}

	// Retrying an already-applied seq is acknowledged without re-applying.
	nTx := mustParse(t, prefix).Len()
	code, doc := postBatch(t, hs.URL, id, server.BatchRequest{Baskets: batches[0], Seq: 1})
	if code != http.StatusOK || !doc.Duplicate || doc.Transactions != nTx {
		t.Fatalf("duplicate seq 1: code %d, delta %+v", code, doc)
	}
	// A future seq is out of order.
	if code, _ := postBatch(t, hs.URL, id, server.BatchRequest{Baskets: batches[0], Seq: 99}); code != http.StatusBadRequest {
		t.Fatalf("out-of-order seq: status %d", code)
	}

	// Status view and listing.
	var view server.StreamView
	if code := doJSON(t, http.MethodGet, hs.URL+"/v1/streams/"+id, nil, &view); code != http.StatusOK {
		t.Fatalf("GET stream: status %d", code)
	}
	if view.Seq != 3 || view.Batches != 3 || view.Transactions != nTx || view.Interrupted {
		t.Fatalf("stream view: %+v", view)
	}
	if view.Remines < 1 {
		t.Fatalf("stream never mined: %+v", view)
	}
	var list struct {
		Streams []server.StreamView `json:"streams"`
	}
	if code := doJSON(t, http.MethodGet, hs.URL+"/v1/streams", nil, &list); code != http.StatusOK || len(list.Streams) != 1 {
		t.Fatalf("list streams: %d entries", len(list.Streams))
	}

	// The border is opt-in on the mfs doc and non-empty on this database.
	var mfs server.StreamMFSDoc
	doJSON(t, http.MethodGet, hs.URL+"/v1/streams/"+id+"/mfs?border=1", nil, &mfs)
	if mfs.BorderSize == 0 || len(mfs.Border) != mfs.BorderSize {
		t.Fatalf("border not rendered: size %d, %d sets", mfs.BorderSize, len(mfs.Border))
	}

	// Metrics: every batch journaled, the fast/re-mine split populated.
	snap := srv.Registry().Snapshot()
	if snap["pincer_stream_batches_total"] != 3 || snap["pincer_stream_created_total"] != 1 {
		t.Fatalf("stream metrics: %v %v", snap["pincer_stream_batches_total"], snap["pincer_stream_created_total"])
	}
	if snap["pincer_stream_remines_total"]+snap["pincer_stream_remines_avoided_total"] != 3 {
		t.Fatalf("remine split does not cover all batches: %v + %v",
			snap["pincer_stream_remines_total"], snap["pincer_stream_remines_avoided_total"])
	}

	// Delete: gone from the API and the spool.
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/streams/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE stream: status %d", resp.StatusCode)
	}
	if code := doJSON(t, http.MethodGet, hs.URL+"/v1/streams/"+id, nil, nil); code != http.StatusNotFound {
		t.Fatalf("GET deleted stream: status %d", code)
	}
	if code, _ := postBatch(t, hs.URL, id, server.BatchRequest{Baskets: batches[0]}); code != http.StatusNotFound {
		t.Fatalf("POST to deleted stream: status %d", code)
	}
	left, _ := filepath.Glob(filepath.Join(srv.Manager().SpoolDir(), id+"*"))
	if len(left) != 0 {
		t.Fatalf("spool files survived deletion: %v", left)
	}
}

func TestE2EStreamValidation(t *testing.T) {
	_, hs := newTestServer(t, nil)
	cases := []struct {
		spec   server.StreamRequest
		reason string
	}{
		{server.StreamRequest{MinSupport: 0}, "bad_support"},
		{server.StreamRequest{MinSupport: 1.5}, "bad_support"},
		{server.StreamRequest{MinSupport: 0.5, Window: -1}, "bad_window"},
		{server.StreamRequest{MinSupport: 0.5, Counter: "quantum"}, "bad_counter"},
		{server.StreamRequest{MinSupport: 0.5, Workers: -2}, "bad_workers"},
	}
	for _, c := range cases {
		var e struct {
			Reason string `json:"reason"`
		}
		if code := doJSON(t, http.MethodPost, hs.URL+"/v1/streams", c.spec, &e); code != http.StatusBadRequest || e.Reason != c.reason {
			t.Errorf("spec %+v: code %d reason %q, want 400 %q", c.spec, code, e.Reason, c.reason)
		}
	}

	v := openStream(t, hs.URL, server.StreamRequest{MinSupport: 0.5})
	batchCases := []struct {
		req    server.BatchRequest
		reason string
	}{
		{server.BatchRequest{Baskets: ""}, "bad_batch"},
		{server.BatchRequest{Baskets: "not numbers\n"}, "bad_batch"},
		{server.BatchRequest{Baskets: "999999999\n"}, "bad_batch"}, // universe cap
		{server.BatchRequest{Baskets: "1 2\n", Seq: -4}, "bad_seq"},
		{server.BatchRequest{Baskets: "1 2\n", Seq: 7}, "bad_seq"},
	}
	for _, c := range batchCases {
		var e struct {
			Reason string `json:"reason"`
		}
		if code := doJSON(t, http.MethodPost, hs.URL+"/v1/streams/"+v.ID+"/batches", c.req, &e); code != http.StatusBadRequest || e.Reason != c.reason {
			t.Errorf("batch %+v: code %d reason %q, want 400 %q", c.req, code, e.Reason, c.reason)
		}
	}
	if code := doJSON(t, http.MethodGet, hs.URL+"/v1/streams/nope", nil, nil); code != http.StatusNotFound {
		t.Errorf("GET unknown stream: status %d", code)
	}
}

// TestE2EStreamKillRestartReplay exercises both restart contracts at once
// on one spool:
//
//   - stream A is killed in the middle of its initial re-mine (the
//     fault-injection scanner trips during pass 2), leaving the batch
//     journaled, the stream interrupted, and the pass-1 mine checkpoint on
//     disk;
//   - stream B simulates a daemon killed after journaling a batch but
//     before applying it (the journal entry is written directly into the
//     spool).
//
// The restarted daemon must converge both to the uninterrupted reference:
// no lost batches, no double-applied batches.
func TestE2EStreamKillRestartReplay(t *testing.T) {
	spoolDir := t.TempDir()

	lines := strings.SplitAfter(strings.TrimSuffix(testBaskets, "\n"), "\n")
	batch1 := strings.Join(lines[:9], "")
	batch2 := strings.Join(lines[9:], "")

	// Generation 1: streams opened after arming get a scanner that crashes
	// the second database pass of any mine.
	var mu sync.Mutex
	failing := map[string]bool{}
	srv1, err := server.New(server.Config{
		SpoolDir: spoolDir,
		Workers:  1,
		Logf:     t.Logf,
		WrapScanner: func(id string, sc dataset.Scanner) dataset.Scanner {
			mu.Lock()
			defer mu.Unlock()
			if failing[id] {
				return &faultinject.Scanner{Scanner: sc, TripAtScan: 2, AfterTx: 3}
			}
			return sc
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(srv1)

	// Stream A: the kill unwinds mid-re-mine.
	a := openStream(t, hs1.URL, server.StreamRequest{MinSupport: testMinSupport})
	mu.Lock()
	failing[a.ID] = true
	mu.Unlock()
	if code, _ := postBatch(t, hs1.URL, a.ID, server.BatchRequest{Baskets: batch1}); code != http.StatusServiceUnavailable {
		t.Fatalf("killed batch: status %d, want 503", code)
	}
	var av server.StreamView
	doJSON(t, http.MethodGet, hs1.URL+"/v1/streams/"+a.ID, nil, &av)
	if !av.Interrupted || av.Seq != 0 {
		t.Fatalf("stream A after kill: %+v", av)
	}
	// Further appends are refused until a restart replays the journal.
	var e struct {
		Reason string `json:"reason"`
	}
	if code := doJSON(t, http.MethodPost, hs1.URL+"/v1/streams/"+a.ID+"/batches",
		server.BatchRequest{Baskets: batch2}, &e); code != http.StatusServiceUnavailable || e.Reason != "stream_interrupted" {
		t.Fatalf("append to interrupted stream: code %d reason %q", code, e.Reason)
	}
	// The interrupted mine left its pass-barrier checkpoint behind.
	if _, err := os.Stat(filepath.Join(spoolDir, a.ID+".mine.ckpt")); err != nil {
		t.Fatalf("stream A mine checkpoint missing: %v", err)
	}

	// Stream B: batch 1 applies cleanly; batch 2 is journaled "by the dying
	// daemon" but never applied.
	b := openStream(t, hs1.URL, server.StreamRequest{MinSupport: testMinSupport})
	if code, _ := postBatch(t, hs1.URL, b.ID, server.BatchRequest{Baskets: batch1}); code != http.StatusOK {
		t.Fatalf("stream B batch 1: status %d", code)
	}
	journal := fmt.Sprintf(`{"id":%q,"seq":2,"baskets":%q}`, b.ID, batch2)
	if err := os.WriteFile(filepath.Join(spoolDir, fmt.Sprintf("%s.b%08d.batch", b.ID, 2)), []byte(journal), 0o644); err != nil {
		t.Fatal(err)
	}

	hs1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	srv1.Abort(ctx)
	cancel()

	// Generation 2: both streams replay to the uninterrupted reference.
	srv2, err := server.New(server.Config{SpoolDir: spoolDir, Workers: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptest.NewServer(srv2)
	defer hs2.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv2.Abort(ctx)
	}()

	snap := srv2.Registry().Snapshot()
	if snap["pincer_stream_resumed_total"] != 2 {
		t.Fatalf("streams resumed = %d, want 2", snap["pincer_stream_resumed_total"])
	}
	if snap["pincer_stream_batches_replayed_total"] != 2 {
		t.Fatalf("batches replayed = %d, want 2 (A's killed batch, B's unapplied batch)",
			snap["pincer_stream_batches_replayed_total"])
	}

	var av2 server.StreamView // fresh struct: omitempty fields must not inherit gen-1 state
	doJSON(t, http.MethodGet, hs2.URL+"/v1/streams/"+a.ID, nil, &av2)
	if av2.Interrupted || av2.Seq != 1 || av2.Transactions != mustParse(t, batch1).Len() {
		t.Fatalf("stream A after restart: %+v", av2)
	}
	checkStreamMFS(t, hs2.URL, a.ID, streamRef(t, batch1, testMinSupport))

	var bv server.StreamView
	doJSON(t, http.MethodGet, hs2.URL+"/v1/streams/"+b.ID, nil, &bv)
	wantTx := mustParse(t, batch1+batch2).Len()
	if bv.Interrupted || bv.Seq != 2 || bv.Transactions != wantTx {
		t.Fatalf("stream B after restart: %+v (want seq 2, %d tx)", bv, wantTx)
	}
	checkStreamMFS(t, hs2.URL, b.ID, streamRef(t, batch1+batch2, testMinSupport))

	// A client retry of the replayed batch is a duplicate, not a re-apply.
	code, doc := postBatch(t, hs2.URL, b.ID, server.BatchRequest{Baskets: batch2, Seq: 2})
	if code != http.StatusOK || !doc.Duplicate || doc.Transactions != wantTx {
		t.Fatalf("retry of replayed batch: code %d, delta %+v", code, doc)
	}

	// Both streams keep accepting new batches after recovery.
	for _, id := range []string{a.ID, b.ID} {
		if code, doc := postBatch(t, hs2.URL, id, server.BatchRequest{Baskets: batch1}); code != http.StatusOK || doc.Duplicate {
			t.Fatalf("stream %s post-recovery batch: code %d, delta %+v", id, code, doc)
		}
	}
	checkStreamMFS(t, hs2.URL, a.ID, streamRef(t, batch1+batch1, testMinSupport))
}
