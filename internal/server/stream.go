package server

// The stream resource surfaces internal/incremental through the daemon:
//
//	POST   /v1/streams               open a live dataset (StreamRequest)
//	GET    /v1/streams               list streams, newest first
//	GET    /v1/streams/{id}          stream status + last delta
//	POST   /v1/streams/{id}/batches  append a transaction batch (BatchRequest)
//	GET    /v1/streams/{id}/mfs      the maintained MFS, delta-fresh (no mining)
//	DELETE /v1/streams/{id}          drop the stream and its spool files
//
// Durability follows the job spool's contract, adapted to a resource that
// never terminates. Each stream owns:
//
//	<id>.stream             the opening spec
//	<id>.b<seq>.batch       one journal entry per batch, written BEFORE apply
//	<id>.state              the maintainer snapshot, written AFTER apply
//	<id>.mine.ckpt          the re-mine pass-barrier checkpoint
//	<id>.stream.trace.jsonl stream + mining trace events (append-only)
//
// Because the batch journal is written before the maintainer moves and the
// state snapshot after, a daemon killed anywhere in between restarts into a
// consistent position: the snapshot restores the last committed state
// without counting anything, journaled batches past it replay through the
// normal Append path (resuming an interrupted re-mine at its pass-barrier
// checkpoint), and a batch is never folded in twice because its seq is
// already part of the snapshot. A POST whose apply fails mid-flight leaves
// the journal entry behind and marks the stream interrupted — further
// appends get 503 until a restart replays the journal.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"pincer/internal/checkpoint"
	"pincer/internal/cluster"
	"pincer/internal/core"
	"pincer/internal/dataset"
	"pincer/internal/incremental"
	"pincer/internal/itemset"
	"pincer/internal/obsv"
)

// Stream-specific reasons, extending the Reason* vocabulary in server.go.
const (
	ReasonBadWindow = "bad_window" // negative sliding-window size
	ReasonBadBatch  = "bad_batch"  // unparsable or empty batch
	ReasonBadSeq    = "bad_seq"    // batch sequence number out of order
	// ReasonStreamInterrupted answers appends to a stream whose journal and
	// state diverged (a batch apply failed mid-flight); a daemon restart
	// replays the journal and clears the condition.
	ReasonStreamInterrupted = "stream_interrupted"
)

// errStreamInterrupted is the sentinel behind ReasonStreamInterrupted.
var errStreamInterrupted = errors.New("server: stream interrupted; restart the daemon to replay its journal")

// StreamRequest is the body of POST /v1/streams.
type StreamRequest struct {
	// MinSupport is the maintained threshold, a fraction of the CURRENT
	// window length (the absolute count moves as transactions arrive).
	MinSupport float64 `json:"min_support"`
	// Window keeps only the most recent Window transactions live; 0 keeps
	// everything (append-only stream).
	Window int `json:"window,omitempty"`
	// Counter picks the delta-counting strategy: "scan" (default) or
	// "tidlist".
	Counter string `json:"counter,omitempty"`
	// Workers parallelizes re-mines (1 = sequential).
	Workers int `json:"workers,omitempty"`
	// Cluster pins the stream to the daemon's worker cluster: delta
	// verification and re-mine passes fan out over the pool (requires a
	// coordinator-role daemon). Results are byte-identical to local
	// counting.
	Cluster bool `json:"cluster,omitempty"`
}

// normalize validates the spec, tagging rejections with field reasons.
func (r *StreamRequest) normalize() error {
	if r.MinSupport <= 0 || r.MinSupport > 1 {
		return invalidf(ReasonBadSupport, "min_support must be in (0, 1], got %g", r.MinSupport)
	}
	if r.Window < 0 {
		return invalidf(ReasonBadWindow, "window must be >= 0, got %d", r.Window)
	}
	switch r.Counter {
	case "", incremental.CounterScan, incremental.CounterTidList:
	default:
		return invalidf(ReasonBadCounter, "unknown counter %q (want %q or %q)",
			r.Counter, incremental.CounterScan, incremental.CounterTidList)
	}
	if r.Workers < 0 {
		return invalidf(ReasonBadWorkers, "workers must be >= 0, got %d", r.Workers)
	}
	if r.Workers == 0 {
		r.Workers = 1
	}
	return nil
}

// BatchRequest is the body of POST /v1/streams/{id}/batches.
type BatchRequest struct {
	// Baskets holds the batch in the whitespace basket text format, one
	// transaction per line.
	Baskets string `json:"baskets"`
	// Seq optionally asserts the batch's position (1-based). 0 auto-assigns
	// the next slot; an already-applied seq is acknowledged as a duplicate
	// without re-applying (safe client retries); a future seq is rejected.
	Seq int64 `json:"seq,omitempty"`
}

// maxStreamItem caps the item universe a batch may declare. The maintainer
// sizes singleton structures by the largest item id ever seen, so one
// adversarial line ("999999999") would otherwise commit the daemon to a
// billion-item universe.
const maxStreamItem = 1 << 20

// parseBatchBaskets decodes the basket text into transactions.
func parseBatchBaskets(baskets string) ([]dataset.Transaction, error) {
	d, err := dataset.ReadBasket(bytes.NewReader([]byte(baskets)))
	if err != nil {
		return nil, err
	}
	if d.Len() == 0 {
		return nil, errors.New("batch has no transactions")
	}
	if d.NumItems() > maxStreamItem {
		return nil, fmt.Errorf("batch item ids reach %d; streams cap the universe at %d", d.NumItems()-1, maxStreamItem)
	}
	return d.Transactions(), nil
}

// StreamDeltaDoc is the wire form of one applied batch (incremental.Delta).
type StreamDeltaDoc struct {
	Seq          int64   `json:"seq"`
	Appended     int     `json:"appended"`
	Evicted      int     `json:"evicted,omitempty"`
	Transactions int     `json:"transactions"`
	MinCount     int64   `json:"min_count"`
	Remined      bool    `json:"remined"`
	Reason       string  `json:"reason,omitempty"`
	Checked      int     `json:"checked,omitempty"`
	Duplicate    bool    `json:"duplicate,omitempty"`
	VerifyMillis float64 `json:"verify_ms"`
	MineMillis   float64 `json:"mine_ms,omitempty"`
	// Cluster summarizes the batch's distributed counting (clustered
	// streams only): shard/RPC accounting, failovers, and any quorum
	// degradation, plus the distribution of a triggered re-mine.
	Cluster *cluster.StreamDoc `json:"cluster,omitempty"`
}

func streamDeltaDoc(d incremental.Delta) *StreamDeltaDoc {
	return &StreamDeltaDoc{
		Seq:          d.Seq,
		Appended:     d.Appended,
		Evicted:      d.Evicted,
		Transactions: d.Transactions,
		MinCount:     d.MinCount,
		Remined:      d.Remined,
		Reason:       d.Reason,
		Checked:      d.Checked,
		VerifyMillis: float64(d.VerifyDuration) / float64(time.Millisecond),
		MineMillis:   float64(d.MineDuration) / float64(time.Millisecond),
	}
}

// StreamView is the status body of a stream.
type StreamView struct {
	ID           string          `json:"id"`
	MinSupport   float64         `json:"min_support"`
	Window       int             `json:"window,omitempty"`
	Counter      string          `json:"counter,omitempty"`
	Workers      int             `json:"workers,omitempty"`
	Cluster      bool            `json:"cluster,omitempty"`
	Seq          int64           `json:"seq"`
	Transactions int             `json:"transactions"`
	NumItems     int             `json:"num_items"`
	MinCount     int64           `json:"min_count"`
	MFSSize      int             `json:"mfs_size"`
	BorderSize   int             `json:"border_size"`
	Batches      int64           `json:"batches"`
	FastPath     int64           `json:"fast_path"`
	Remines      int64           `json:"remines"`
	Interrupted  bool            `json:"interrupted,omitempty"`
	Error        string          `json:"error,omitempty"`
	Resumed      bool            `json:"resumed,omitempty"`
	CreatedAt    string          `json:"created_at"`
	LastDelta    *StreamDeltaDoc `json:"last_delta,omitempty"`
}

// StreamMFSDoc is the body of GET /v1/streams/{id}/mfs: the live maintained
// answer, read straight out of the maintainer — never a re-mine.
type StreamMFSDoc struct {
	ID           string       `json:"id"`
	Seq          int64        `json:"seq"`
	Transactions int          `json:"transactions"`
	MinSupport   float64      `json:"min_support"`
	MinCount     int64        `json:"min_count"`
	MFS          []ItemsetDoc `json:"maximal_frequent_itemsets"`
	BorderSize   int          `json:"border_size"`
	Border       []ItemsetDoc `json:"negative_border,omitempty"`
}

// Stream is one live dataset under incremental maintenance. The maintainer
// is single-threaded by design; mu serializes batch applies and reads.
type Stream struct {
	ID      string
	Spec    StreamRequest
	created time.Time
	resumed bool

	mu          sync.Mutex
	mt          *incremental.Maintainer
	lastDelta   *StreamDeltaDoc
	interrupted bool
	errMsg      string
	tracer      obsv.Tracer
	trace       *os.File

	// sc fans delta counting out over the worker cluster (clustered
	// streams only); mineCoords collects the per-re-mine coordinators of
	// the current batch, drained into the delta doc after each apply. Both
	// are touched only on the apply path, which mu (or startup recovery's
	// single thread) serializes.
	sc         *cluster.StreamCoordinator
	mineCoords []*cluster.Coordinator
}

// view renders the stream's status.
func (st *Stream) view() StreamView {
	st.mu.Lock()
	defer st.mu.Unlock()
	stats := st.mt.Stats()
	return StreamView{
		ID:           st.ID,
		MinSupport:   st.Spec.MinSupport,
		Window:       st.Spec.Window,
		Counter:      st.Spec.Counter,
		Workers:      st.Spec.Workers,
		Cluster:      st.Spec.Cluster,
		Seq:          st.mt.Seq(),
		Transactions: st.mt.Len(),
		NumItems:     st.mt.NumItems(),
		MinCount:     st.mt.MinCount(),
		MFSSize:      len(st.mt.MFS()),
		BorderSize:   len(st.mt.Border()),
		Batches:      stats.Batches,
		FastPath:     stats.FastPath,
		Remines:      stats.Remines,
		Interrupted:  st.interrupted,
		Error:        st.errMsg,
		Resumed:      st.resumed,
		CreatedAt:    st.created.UTC().Format(time.RFC3339),
		LastDelta:    st.lastDelta,
	}
}

// mfsDoc renders the maintained answer; withBorder includes the negative
// border sets themselves (they can dwarf the MFS, so they are opt-in).
func (st *Stream) mfsDoc(withBorder bool) StreamMFSDoc {
	st.mu.Lock()
	defer st.mu.Unlock()
	doc := StreamMFSDoc{
		ID:           st.ID,
		Seq:          st.mt.Seq(),
		Transactions: st.mt.Len(),
		MinSupport:   st.Spec.MinSupport,
		MinCount:     st.mt.MinCount(),
		MFS:          make([]ItemsetDoc, 0, len(st.mt.MFS())),
		BorderSize:   len(st.mt.Border()),
	}
	for i, m := range st.mt.MFS() {
		doc.MFS = append(doc.MFS, itemsetDoc(m, st.mt.MFSSupports()[i]))
	}
	if withBorder {
		doc.Border = make([]ItemsetDoc, 0, len(st.mt.Border()))
		for i, b := range st.mt.Border() {
			doc.Border = append(doc.Border, itemsetDoc(b, st.mt.BorderSupports()[i]))
		}
	}
	return doc
}

// streamEvent maps an applied delta to the trace vocabulary; cdoc (nil on
// local streams) adds the batch's cluster distribution summary.
func streamEvent(id string, d incremental.Delta, cdoc *cluster.StreamDoc) obsv.StreamEvent {
	ev := obsv.StreamEvent{
		Stream:       id,
		Seq:          d.Seq,
		Appended:     d.Appended,
		Evicted:      d.Evicted,
		Transactions: d.Transactions,
		Checked:      d.Checked,
		Remined:      d.Remined,
		Reason:       d.Reason,
		VerifyMillis: float64(d.VerifyDuration) / float64(time.Millisecond),
		MineMillis:   float64(d.MineDuration) / float64(time.Millisecond),
	}
	if cdoc != nil {
		ev.Cluster = true
		ev.ClusterWorkers = cdoc.Workers
		ev.ClusterRPCs = cdoc.RPCs
		ev.ClusterFailovers = cdoc.Failovers
		ev.ClusterDegraded = cdoc.Degraded
		for _, md := range cdoc.Mine {
			ev.ClusterRPCs += md.RPCs
		}
	}
	return ev
}

// ---- spool layout ----

// streamFile is the persisted opening spec.
type streamFile struct {
	ID   string        `json:"id"`
	Spec StreamRequest `json:"spec"`
}

// batchFile is one journal entry, written before its batch is applied.
type batchFile struct {
	ID      string `json:"id"`
	Seq     int64  `json:"seq"`
	Baskets string `json:"baskets"`
}

func (s spool) streamPath(id string) string      { return filepath.Join(s.dir, id+".stream") }
func (s spool) streamStatePath(id string) string { return filepath.Join(s.dir, id+".state") }
func (s spool) streamCheckpointPath(id string) string {
	return filepath.Join(s.dir, id+".mine.ckpt")
}
func (s spool) streamTracePath(id string) string {
	return filepath.Join(s.dir, id+".stream.trace.jsonl")
}
func (s spool) streamBatchPath(id string, seq int64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s.b%08d.batch", id, seq))
}

// scanStreams enumerates persisted streams and their batch journals, IDs
// sorted and batches ordered by seq. Foreign and corrupt files are skipped,
// never fatal — same contract as the job scan.
func (s spool) scanStreams() (streams []streamFile, batches map[string][]batchFile, err error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("server: scan spool: %w", err)
	}
	batches = map[string][]batchFile{}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".stream"):
			data, rerr := os.ReadFile(filepath.Join(s.dir, name))
			if rerr != nil {
				return nil, nil, fmt.Errorf("server: scan spool: %w", rerr)
			}
			var sf streamFile
			if jerr := json.Unmarshal(data, &sf); jerr != nil || sf.ID == "" {
				continue
			}
			streams = append(streams, sf)
		case strings.HasSuffix(name, ".batch"):
			data, rerr := os.ReadFile(filepath.Join(s.dir, name))
			if rerr != nil {
				return nil, nil, fmt.Errorf("server: scan spool: %w", rerr)
			}
			var bf batchFile
			if jerr := json.Unmarshal(data, &bf); jerr != nil || bf.ID == "" || bf.Seq <= 0 {
				continue
			}
			batches[bf.ID] = append(batches[bf.ID], bf)
		}
	}
	sort.Slice(streams, func(i, j int) bool { return streams[i].ID < streams[j].ID })
	for _, bs := range batches {
		sort.Slice(bs, func(i, j int) bool { return bs[i].Seq < bs[j].Seq })
	}
	return streams, batches, nil
}

// dropStream removes every spool file a stream owns.
func (s spool) dropStream(id string) {
	os.Remove(s.streamPath(id))
	os.Remove(s.streamStatePath(id))
	os.Remove(s.streamCheckpointPath(id))
	os.Remove(s.streamTracePath(id))
	if matches, err := filepath.Glob(filepath.Join(s.dir, id+".b*.batch")); err == nil {
		for _, m := range matches {
			os.Remove(m)
		}
	}
}

// ---- manager integration ----

// nextStreamID mirrors nextID with the stream prefix.
func (m *Manager) nextStreamID() string {
	m.mu.Lock()
	m.seq++
	seq := m.seq
	m.mu.Unlock()
	return fmt.Sprintf("s%016x-%04d", time.Now().UnixNano(), seq)
}

// newStream wires a maintainer to the daemon's seams: the shared metrics
// tracer plus a per-stream JSONL trace, the base context, the re-mine
// checkpoint file, and the fault-injection scanner hook.
func (m *Manager) newStream(id string, spec StreamRequest, resumed bool) (*Stream, error) {
	st := &Stream{ID: id, Spec: spec, created: time.Now(), resumed: resumed, tracer: m.tracer}
	if f, err := os.OpenFile(m.sp.streamTracePath(id), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644); err == nil {
		st.trace = f
		st.tracer = obsv.Multi(m.tracer, obsv.NewJSONTracer(f))
	} else {
		m.logf("stream %s: trace file: %v", id, err)
	}
	opt := incremental.Options{
		MinSupport:       spec.MinSupport,
		Window:           spec.Window,
		Counter:          spec.Counter,
		Workers:          spec.Workers,
		Tracer:           st.tracer,
		Context:          m.baseCtx,
		MineCheckpointer: checkpoint.NewFileCheckpointer(m.sp.streamCheckpointPath(id)),
	}
	if m.cfg.WrapScanner != nil {
		opt.WrapScanner = func(sc dataset.Scanner) dataset.Scanner {
			return m.cfg.WrapScanner(id, sc)
		}
	}
	if spec.Cluster {
		if m.cfg.Cluster != nil {
			st.sc = cluster.NewStreamCoordinator(id, m.cfg.Cluster, st.tracer)
			opt.DeltaCounter = func(seq int64, side string, d *dataset.Dataset, sets []itemset.Itemset) []int64 {
				return st.sc.CountSets(seq, side, d, sets)
			}
			opt.MineCounter = func(seq int64, d *dataset.Dataset) core.PassCounter {
				coord, cerr := cluster.NewCoordinator(fmt.Sprintf("%s.b%d", id, seq), d, m.cfg.Cluster, st.tracer)
				if cerr != nil {
					m.logf("stream %s: batch %d re-mine coordinator: %v; mining locally", id, seq, cerr)
					return nil
				}
				st.mineCoords = append(st.mineCoords, coord)
				return coord
			}
		} else {
			// A clustered stream resumed on a daemon started without peers:
			// keep the stream alive with local counting (byte-identical)
			// rather than refusing to replay its journal.
			m.logf("stream %s: spec wants a cluster but this daemon has none; counting locally", id)
		}
	}
	mt, err := incremental.New(opt)
	if err != nil {
		if st.trace != nil {
			st.trace.Close()
		}
		return nil, err
	}
	st.mt = mt
	return st, nil
}

// CreateStream validates, persists, and registers a new stream.
func (m *Manager) CreateStream(spec StreamRequest) (*Stream, error) {
	if err := spec.normalize(); err != nil {
		return nil, err
	}
	if spec.Cluster && m.cfg.Cluster == nil {
		return nil, invalidf(ReasonBadCluster, "this daemon has no worker cluster (start with -role coordinator -peers ...)")
	}
	if m.currentState() != stateAccepting {
		return nil, ErrShuttingDown
	}
	id := m.nextStreamID()
	if err := m.sp.writeAtomic(m.sp.streamPath(id), streamFile{ID: id, Spec: spec}); err != nil {
		return nil, err
	}
	st, err := m.newStream(id, spec, false)
	if err != nil {
		m.sp.dropStream(id)
		return nil, err
	}
	m.mu.Lock()
	if m.state != stateAccepting {
		m.mu.Unlock()
		if st.trace != nil {
			st.trace.Close()
		}
		m.sp.dropStream(id)
		return nil, ErrShuttingDown
	}
	m.streams[id] = st
	active := len(m.streams)
	m.mu.Unlock()
	m.met.streamsCreated.Inc()
	m.met.streamsActive.Set(int64(active))
	m.logf("stream %s: opened (minsup %g, window %d, %s)", id, spec.MinSupport, spec.Window, spec.Counter)
	return st, nil
}

// Stream returns the stream by id.
func (m *Manager) Stream(id string) (*Stream, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.streams[id]
	return st, ok
}

// StreamViews lists every stream, newest first.
func (m *Manager) StreamViews() []StreamView {
	m.mu.Lock()
	streams := make([]*Stream, 0, len(m.streams))
	for _, st := range m.streams {
		streams = append(streams, st)
	}
	m.mu.Unlock()
	sort.Slice(streams, func(i, j int) bool { return streams[i].ID > streams[j].ID })
	views := make([]StreamView, len(streams))
	for i, st := range streams {
		views[i] = st.view()
	}
	return views
}

// DeleteStream unregisters a stream and removes its spool files.
func (m *Manager) DeleteStream(id string) bool {
	m.mu.Lock()
	st, ok := m.streams[id]
	if ok {
		delete(m.streams, id)
	}
	active := len(m.streams)
	m.mu.Unlock()
	if !ok {
		return false
	}
	st.mu.Lock()
	if st.trace != nil {
		st.trace.Close()
		st.trace = nil
	}
	st.mu.Unlock()
	m.sp.dropStream(id)
	m.met.streamsActive.Set(int64(active))
	m.logf("stream %s: deleted", id)
	return true
}

// AppendBatch journals and applies one batch: journal entry first, then the
// maintainer's Append, then the state snapshot. A failed apply leaves the
// journal entry in place and marks the stream interrupted — the restart
// replay is the only path that reconciles it.
func (m *Manager) AppendBatch(st *Stream, req BatchRequest) (*StreamDeltaDoc, error) {
	if req.Seq < 0 {
		return nil, invalidf(ReasonBadSeq, "seq must be >= 0, got %d", req.Seq)
	}
	txs, err := parseBatchBaskets(req.Baskets)
	if err != nil {
		return nil, invalidf(ReasonBadBatch, "bad batch: %v", err)
	}
	if m.currentState() != stateAccepting {
		return nil, ErrShuttingDown
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.interrupted {
		return nil, errStreamInterrupted
	}
	applied := st.mt.Seq()
	if req.Seq != 0 && req.Seq <= applied {
		// Client retry of a batch already folded in: acknowledge, don't
		// re-apply (the journal has it; the snapshot includes it).
		return &StreamDeltaDoc{
			Seq:          req.Seq,
			Transactions: st.mt.Len(),
			MinCount:     st.mt.MinCount(),
			Duplicate:    true,
		}, nil
	}
	seq := applied + 1
	if req.Seq != 0 && req.Seq != seq {
		return nil, invalidf(ReasonBadSeq, "seq %d out of order (next is %d)", req.Seq, seq)
	}
	if err := m.sp.writeAtomic(m.sp.streamBatchPath(st.ID, seq), batchFile{ID: st.ID, Seq: seq, Baskets: req.Baskets}); err != nil {
		return nil, err
	}
	delta, err := st.mt.Append(txs)
	if err != nil {
		// The journal entry stays: the restart replay applies exactly this
		// batch once, resuming any interrupted re-mine at its checkpoint.
		st.interrupted = true
		st.errMsg = err.Error()
		m.met.streamsInterrupted.Inc()
		m.logf("stream %s: batch %d interrupted: %v", st.ID, seq, err)
		return nil, fmt.Errorf("%w (batch %d: %v)", errStreamInterrupted, seq, err)
	}
	m.saveStreamState(st)
	cdoc := m.takeStreamClusterDoc(st)
	doc := streamDeltaDoc(delta)
	doc.Cluster = cdoc
	st.lastDelta = doc
	m.met.streamBatches.Inc()
	m.met.streamChecked.Add(int64(delta.Checked))
	if delta.Remined {
		m.met.streamRemines.Inc()
		m.met.streamMineSeconds.Observe(delta.MineDuration)
	} else {
		m.met.streamFastPath.Inc()
	}
	if delta.Seq > 1 {
		m.met.streamVerifySeconds.Observe(delta.VerifyDuration)
	}
	obsv.EmitStream(st.tracer, streamEvent(st.ID, delta, cdoc))
	m.logf("stream %s: batch %d applied (+%d/-%d tx, %s, %d mfs)",
		st.ID, seq, delta.Appended, delta.Evicted, delta.Reason, len(st.mt.MFS()))
	return doc, nil
}

// saveStreamState persists the maintainer snapshot (caller holds st.mu). A
// write failure is logged, not fatal: the journal replay reconstructs any
// state a lost snapshot described.
func (m *Manager) saveStreamState(st *Stream) {
	raw, err := incremental.EncodeState(st.mt.Snapshot())
	if err == nil {
		err = m.sp.writeAtomicBytes(m.sp.streamStatePath(st.ID), raw)
	}
	if err != nil {
		m.logf("stream %s: save state: %v", st.ID, err)
	}
}

// takeStreamClusterDoc drains the per-batch cluster accounting (delta-count
// fan-out plus any re-mine coordinator docs) for a clustered stream and folds
// it into the metrics set. Returns nil for local streams. Caller holds st.mu
// (or is the single-threaded recovery path), which also serializes
// st.mineCoords: the MineCounter closure appends on the Append caller
// goroutine because core mining is synchronous.
func (m *Manager) takeStreamClusterDoc(st *Stream) *cluster.StreamDoc {
	if st.sc == nil {
		return nil
	}
	cdoc := st.sc.TakeDoc()
	for _, coord := range st.mineCoords {
		cdoc.Mine = append(cdoc.Mine, coord.Doc())
	}
	st.mineCoords = nil
	m.met.streamCluster(cdoc)
	return cdoc
}

// recoverStreams rebuilds every persisted stream at daemon start: restore
// the state snapshot when it is intact (no counting — the window rematerializes
// from the journal), fall back to replaying the whole journal when it is
// not, then push any journaled batches past the snapshot through the normal
// Append path. An interrupted re-mine resumes at its pass-barrier
// checkpoint inside that replay.
func (m *Manager) recoverStreams() error {
	streams, batches, err := m.sp.scanStreams()
	if err != nil {
		return err
	}
	for _, sf := range streams {
		st, err := m.newStream(sf.ID, sf.Spec, true)
		if err != nil {
			m.logf("stream %s: recover: %v", sf.ID, err)
			continue
		}
		bs := batches[sf.ID]
		if raw, rerr := os.ReadFile(m.sp.streamStatePath(sf.ID)); rerr == nil {
			if snap, derr := incremental.DecodeState(raw); derr == nil {
				if window, ok := rebuildWindow(bs, snap.AppliedSeq, sf.Spec.Window); ok {
					if resterr := st.mt.Restore(snap, window); resterr != nil {
						m.logf("stream %s: restore snapshot: %v; replaying journal", sf.ID, resterr)
					}
				} else {
					m.logf("stream %s: journal does not cover snapshot seq %d; replaying journal", sf.ID, snap.AppliedSeq)
				}
			} else {
				m.logf("stream %s: state snapshot unusable (%v); replaying journal", sf.ID, derr)
			}
		}
		replayed := 0
		for _, b := range bs {
			if b.Seq <= st.mt.Seq() {
				continue
			}
			if b.Seq != st.mt.Seq()+1 {
				st.interrupted = true
				st.errMsg = fmt.Sprintf("batch journal gap: state at seq %d, next batch file is %d", st.mt.Seq(), b.Seq)
				break
			}
			txs, perr := parseBatchBaskets(b.Baskets)
			if perr != nil {
				st.interrupted = true
				st.errMsg = fmt.Sprintf("batch %d unreadable: %v", b.Seq, perr)
				break
			}
			delta, aerr := st.mt.Append(txs)
			if aerr != nil {
				st.interrupted = true
				st.errMsg = fmt.Sprintf("replay batch %d: %v", b.Seq, aerr)
				break
			}
			cdoc := m.takeStreamClusterDoc(st)
			st.lastDelta = streamDeltaDoc(delta)
			st.lastDelta.Cluster = cdoc
			obsv.EmitStream(st.tracer, streamEvent(st.ID, delta, cdoc))
			replayed++
		}
		if replayed > 0 {
			st.mu.Lock()
			m.saveStreamState(st)
			st.mu.Unlock()
			m.met.streamBatchesReplayed.Add(int64(replayed))
		}
		m.mu.Lock()
		m.streams[sf.ID] = st
		active := len(m.streams)
		m.mu.Unlock()
		m.met.streamsResumed.Inc()
		m.met.streamsActive.Set(int64(active))
		if st.interrupted {
			m.logf("stream %s: resume stopped at seq %d: %s", sf.ID, st.mt.Seq(), st.errMsg)
		} else {
			m.logf("stream %s: resumed at seq %d (%d batches replayed)", sf.ID, st.mt.Seq(), replayed)
		}
	}
	return nil
}

// rebuildWindow rematerializes the live window a snapshot describes by
// concatenating journaled batches 1..appliedSeq and keeping the most recent
// `window` transactions — the same front-eviction arithmetic the maintainer
// applies per batch, so the result is byte-identical to the window it held
// when the snapshot was written. ok is false when the journal has a hole.
func rebuildWindow(bs []batchFile, appliedSeq int64, window int) ([]dataset.Transaction, bool) {
	var txs []dataset.Transaction
	next := int64(1)
	for _, b := range bs {
		if b.Seq > appliedSeq {
			break
		}
		if b.Seq != next {
			return nil, false
		}
		next++
		batch, err := parseBatchBaskets(b.Baskets)
		if err != nil {
			return nil, false
		}
		txs = append(txs, batch...)
		if window > 0 && len(txs) > window {
			txs = txs[len(txs)-window:]
		}
	}
	if next != appliedSeq+1 {
		return nil, false
	}
	return txs, true
}

// closeStreams releases per-stream trace files at shutdown.
func (m *Manager) closeStreams() {
	m.mu.Lock()
	streams := make([]*Stream, 0, len(m.streams))
	for _, st := range m.streams {
		streams = append(streams, st)
	}
	m.mu.Unlock()
	for _, st := range streams {
		st.mu.Lock()
		if st.trace != nil {
			st.trace.Close()
			st.trace = nil
		}
		st.mu.Unlock()
	}
}

// ---- HTTP handlers ----

// handleStreamCreate implements POST /v1/streams.
func (s *Server) handleStreamCreate(w http.ResponseWriter, r *http.Request) {
	var spec StreamRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, ReasonBodyTooLarge,
				"request body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, ReasonBadJSON, "bad request body: %v", err)
		return
	}
	st, err := s.man.CreateStream(spec)
	switch {
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, ReasonShuttingDown, "%v", err)
		return
	case err != nil:
		reason := ReasonInvalid
		var ve *ValidationError
		if errors.As(err, &ve) {
			reason = ve.Reason
		}
		writeError(w, http.StatusBadRequest, reason, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, st.view())
}

// handleStreamList implements GET /v1/streams.
func (s *Server) handleStreamList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{"streams": s.man.StreamViews()})
}

// handleStreamStatus implements GET /v1/streams/{id}.
func (s *Server) handleStreamStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.man.Stream(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ReasonNotFound, "no such stream")
		return
	}
	writeJSON(w, http.StatusOK, st.view())
}

// handleStreamBatch implements POST /v1/streams/{id}/batches.
func (s *Server) handleStreamBatch(w http.ResponseWriter, r *http.Request) {
	st, ok := s.man.Stream(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ReasonNotFound, "no such stream")
		return
	}
	var req BatchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, ReasonBodyTooLarge,
				"request body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, ReasonBadJSON, "bad request body: %v", err)
		return
	}
	doc, err := s.man.AppendBatch(st, req)
	switch {
	case errors.Is(err, errStreamInterrupted):
		writeError(w, http.StatusServiceUnavailable, ReasonStreamInterrupted, "%v", err)
		return
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, ReasonShuttingDown, "%v", err)
		return
	case err != nil:
		var ve *ValidationError
		if errors.As(err, &ve) {
			writeError(w, http.StatusBadRequest, ve.Reason, "%v", err)
			return
		}
		writeError(w, http.StatusInternalServerError, ReasonStreamInterrupted, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

// handleStreamMFS implements GET /v1/streams/{id}/mfs. Pass ?border=1 to
// include the negative border sets.
func (s *Server) handleStreamMFS(w http.ResponseWriter, r *http.Request) {
	st, ok := s.man.Stream(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ReasonNotFound, "no such stream")
		return
	}
	withBorder := r.URL.Query().Get("border") != ""
	writeJSON(w, http.StatusOK, st.mfsDoc(withBorder))
}

// handleStreamDelete implements DELETE /v1/streams/{id}.
func (s *Server) handleStreamDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.man.DeleteStream(id) {
		writeError(w, http.StatusNotFound, ReasonNotFound, "no such stream")
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
