package server_test

// FuzzJobRequest throws arbitrary bytes at the POST /v1/jobs decoder over
// the real handler stack (route table, body cap, validation, queue): the
// contract is that the server never panics and that every rejection is a
// typed JSON error — 400 with a reason for malformed or invalid bodies,
// 413 past the body cap, 429 at queue saturation. Accepted jobs are
// cancelled immediately so a pathological (but valid) dataset can never
// wedge the single fuzz worker.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"pincer/internal/server"
)

func FuzzJobRequest(f *testing.F) {
	// Seeds: one valid request, then one per rejection class the decoder
	// and validator must map to a typed 400.
	f.Add([]byte(`{"baskets":"1 2\n1 2\n","min_support":0.5}`))
	f.Add([]byte(`{"baskets":"1 2\n","min_support":0.5,"miner":"apriori","engine":"trie"}`))
	f.Add([]byte(`{not json`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"baskets":"1 2\n","min_support":NaN}`))
	f.Add([]byte(`{"baskets":"1 2\n","min_support":1e999}`))
	f.Add([]byte(`{"baskets":"1 2\n","min_support":-0.5}`))
	f.Add([]byte(`{"baskets":"1 2\n","min_support":0}`))
	f.Add([]byte(`{"baskets":"1 2\n","min_support":2}`))
	f.Add([]byte(`{"baskets":"1 2\n","min_support":0.5,"workers":-3}`))
	f.Add([]byte(`{"baskets":"1 2\n","min_support":0.5,"workers":2147483647}`))
	f.Add([]byte(`{"baskets":"1 2\n","min_support":0.5,"deadline_ms":-1}`))
	f.Add([]byte(`{"baskets":"1 2\n","min_support":0.5,"max_passes":-9}`))
	f.Add([]byte(`{"baskets":"1 2\n","dataset_path":"/etc/passwd","min_support":0.5}`))
	f.Add([]byte(`{"min_support":0.5}`))
	f.Add([]byte(`{"baskets":"1 2\n","min_support":0.5,"miner":"quantum"}`))
	f.Add([]byte(`{"baskets":"1 2\n","min_support":0.5,"miner":"auto"}`))
	f.Add([]byte(`{"baskets":"1 2\n","min_support":0.5,"miner":"fpmax"}`))
	f.Add([]byte(`{"baskets":"1 2\n","min_support":0.5,"engine":"auto"}`))
	f.Add([]byte(`{"baskets":"1 2\n","min_support":0.5,"miner":"vertical","engine":"auto"}`))
	f.Add([]byte(`{"baskets":"1 2\n","min_support":0.5,"miner":"auto","engine":"trie"}`))
	f.Add([]byte(`{"baskets":"1 2\n","min_support":0.5,"unknown_field":1}`))
	f.Add([]byte(`{"baskets":"not numbers at all","min_support":0.5}`))
	f.Add([]byte(fmt.Sprintf(`{"baskets":%q,"min_support":0.5}`, "1 2 3\n"+string(make([]byte, 5000)))))

	srv, err := server.New(server.Config{
		SpoolDir:     f.TempDir(),
		Workers:      1,
		QueueSize:    2,
		MaxBodyBytes: 4 << 10,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Abort(ctx)
	})

	allowed := map[int]bool{
		http.StatusOK:                    true, // cache hit
		http.StatusAccepted:              true,
		http.StatusBadRequest:            true,
		http.StatusRequestEntityTooLarge: true,
		http.StatusTooManyRequests:       true,
		http.StatusServiceUnavailable:    true,
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req) // must not panic, whatever the bytes
		code := rec.Code
		if !allowed[code] {
			t.Fatalf("POST /v1/jobs answered %d for body %q", code, body)
		}
		if code >= 400 {
			var e struct {
				Error  string `json:"error"`
				Reason string `json:"reason"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
				t.Fatalf("%d response is not the error JSON shape (%v): %q", code, err, rec.Body.String())
			}
			if e.Error == "" || e.Reason == "" {
				t.Fatalf("%d response lacks typed reason: %q", code, rec.Body.String())
			}
			return
		}
		// Accepted: cancel right away so no fuzz-crafted dataset can hold
		// the worker, and so the DELETE path gets fuzzed for free.
		var v server.JobView
		if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
			t.Fatalf("%d response is not a JobView (%v): %q", code, err, rec.Body.String())
		}
		if v.ID == "" {
			t.Fatalf("accepted job without an id: %q", rec.Body.String())
		}
		del := httptest.NewRequest(http.MethodDelete, "/v1/jobs/"+v.ID, nil)
		delRec := httptest.NewRecorder()
		srv.ServeHTTP(delRec, del)
		switch delRec.Code {
		case http.StatusAccepted, http.StatusConflict, http.StatusNotFound:
		default:
			t.Fatalf("DELETE after accept answered %d", delRec.Code)
		}
	})
}
