package server_test

// Regression tests for the server hardening the load harness forced: the
// request-body byte cap (413, never an unbounded buffer), the per-remote
// in-flight cap (429 before any handler runs), and the per-route
// pincer_http_request_seconds / pincer_http_responses_total metrics.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"pincer/internal/server"
)

type errorBody struct {
	Error  string `json:"error"`
	Reason string `json:"reason"`
}

func TestOversizedBodyGets413(t *testing.T) {
	_, hs := newTestServer(t, func(cfg *server.Config) {
		cfg.MaxBodyBytes = 4 << 10
	})
	// A 1 MiB body against a 4 KiB cap: the decoder must stop at the cap
	// and answer 413 with the typed reason, not buffer the whole body.
	big := strings.Repeat("1 2 3 4 5 6 7 8\n", 64<<10)
	body, err := json.Marshal(server.JobRequest{Baskets: big, MinSupport: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	var e errorBody
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("decode 413 body: %v", err)
	}
	if e.Reason != server.ReasonBodyTooLarge || e.Error == "" {
		t.Errorf("413 body = %+v, want reason %q and non-empty error", e, server.ReasonBodyTooLarge)
	}
	// A body under the cap still works.
	if code, _ := submit(t, hs.URL, server.JobRequest{Baskets: "1 2\n1 2\n", MinSupport: 0.5}); code != http.StatusAccepted {
		t.Errorf("small body after 413: status %d, want 202", code)
	}
}

func TestPerRemoteInflightCap(t *testing.T) {
	_, hs := newTestServer(t, func(cfg *server.Config) {
		cfg.MaxInflightPerRemote = 1
	})
	// Occupy the single in-flight slot with a request that takes ~1s to
	// answer (a pprof CPU profile), then race a second request from the
	// same remote host against it: the cap must answer 429 immediately.
	started := make(chan struct{})
	profileDone := make(chan error, 1)
	go func() {
		close(started)
		resp, err := http.Get(hs.URL + "/debug/pprof/profile?seconds=1")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		profileDone <- err
	}()
	<-started
	deadline := time.Now().Add(5 * time.Second)
	got429 := false
	for time.Now().Before(deadline) && !got429 {
		resp, err := http.Get(hs.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var e errorBody
		json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			got429 = true
			if e.Reason != server.ReasonRemoteLimit {
				t.Errorf("429 reason = %q, want %q", e.Reason, server.ReasonRemoteLimit)
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !got429 {
		t.Error("never observed a 429 while a request was in flight")
	}
	if err := <-profileDone; err != nil {
		t.Fatalf("profile request: %v", err)
	}
	// The slot frees after the profile completes.
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz after slot freed: %d, want 200", resp.StatusCode)
	}
}

func TestPerRemoteInflightCapConcurrent(t *testing.T) {
	// Hammer the limiter from many goroutines: every request must get
	// either 200 or 429, and the final in-flight count must drain to zero
	// (a leak would make later requests 429 forever).
	_, hs := newTestServer(t, func(cfg *server.Config) {
		cfg.MaxInflightPerRemote = 4
	})
	var wg sync.WaitGroup
	var mu sync.Mutex
	codes := map[int]int{}
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				resp, err := http.Get(hs.URL + "/healthz")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				mu.Lock()
				codes[resp.StatusCode]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for code := range codes {
		if code != http.StatusOK && code != http.StatusTooManyRequests {
			t.Errorf("unexpected status %d under load: %v", code, codes)
		}
	}
	time.Sleep(20 * time.Millisecond)
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("limiter leaked slots: idle healthz = %d, want 200", resp.StatusCode)
	}
}

func TestHTTPMetricsExposition(t *testing.T) {
	_, hs := newTestServer(t, nil)
	code, v := submit(t, hs.URL, server.JobRequest{Baskets: testBaskets, MinSupport: testMinSupport})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	waitStatus(t, hs.URL, v.ID, server.StatusDone)
	// One guaranteed 4xx for the taxonomy.
	doJSON(t, http.MethodGet, hs.URL+"/v1/jobs/nope", nil, nil)

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	for _, want := range []string{
		"# TYPE pincer_http_request_seconds histogram",
		`pincer_http_request_seconds_bucket{route="submit",le="+Inf"} 1`,
		`pincer_http_request_seconds_count{route="submit"} 1`,
		`pincer_http_responses_total{route="submit",code="2xx"} 1`,
		`pincer_http_responses_total{route="status",code="4xx"} 1`,
		"# TYPE pincer_http_inflight_limited_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The status route saw at least the polling GETs, all 2xx except the 404.
	var statusCount int64
	fmt.Sscanf(findLine(out, `pincer_http_request_seconds_count{route="status"}`),
		`pincer_http_request_seconds_count{route="status"} %d`, &statusCount)
	if statusCount < 1 {
		t.Errorf("status route count = %d, want ≥ 1", statusCount)
	}
}

// findLine returns the first exposition line starting with prefix.
func findLine(out, prefix string) string {
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, prefix) {
			return line
		}
	}
	return ""
}
