package server

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pincer/internal/apriori"
	"pincer/internal/checkpoint"
	"pincer/internal/cluster"
	"pincer/internal/core"
	"pincer/internal/counting"
	"pincer/internal/dataset"
	"pincer/internal/fpmax"
	"pincer/internal/mfi"
	"pincer/internal/obsv"
	"pincer/internal/parallel"
	"pincer/internal/topdown"
	"pincer/internal/vertical"
)

// Submission outcomes the HTTP layer maps to status codes.
var (
	// ErrQueueFull rejects a submission because the bounded run queue is
	// saturated — the backpressure signal behind 429.
	ErrQueueFull = errors.New("server: job queue is full")
	// ErrShuttingDown rejects submissions once a drain or abort has begun.
	ErrShuttingDown = errors.New("server: shutting down")
)

// manager lifecycle states.
const (
	stateAccepting = iota
	stateDraining  // SIGTERM: no new jobs, queued jobs still run
	stateAborting  // SIGINT: running jobs cancelled, queue left on disk
)

// Manager owns the job lifecycle: a bounded queue feeding a bounded worker
// pool, the content-addressed result cache in front of it, and the spool
// directory that makes in-flight jobs survive a daemon restart.
type Manager struct {
	cfg    Config
	sp     spool
	reg    *obsv.Registry
	met    *metricsSet
	tracer obsv.Tracer // MetricsTracer shared by every job's mining run

	baseCtx    context.Context
	baseCancel context.CancelFunc

	queue   chan *Job
	wg      sync.WaitGroup
	running atomic.Int64

	mu            sync.Mutex
	state         int
	queueClosed   bool
	jobs          map[string]*Job
	streams       map[string]*Stream
	seq           int64
	cache         *resultCache
	dsc           *datasetCache
	lastEvictions int64
}

// newManager builds the manager, re-enqueues the spool's incomplete jobs,
// and starts the worker pool.
func newManager(cfg Config, reg *obsv.Registry) (*Manager, error) {
	if err := os.MkdirAll(cfg.SpoolDir, 0o755); err != nil {
		return nil, fmt.Errorf("server: spool: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		sp:         spool{dir: cfg.SpoolDir},
		reg:        reg,
		met:        newMetricsSet(reg),
		tracer:     obsv.NewMetricsTracer(reg),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       map[string]*Job{},
		streams:    map[string]*Stream{},
		cache:      newResultCache(cfg.CacheMaxBytes),
		dsc:        newDatasetCache(cfg.DatasetCacheBytes),
	}
	pending, records, err := m.sp.scan()
	if err != nil {
		cancel()
		return nil, err
	}
	// Size the queue to fit the configured bound and every job being
	// recovered, so a restart never 429s its own backlog.
	capacity := cfg.QueueSize
	if n := len(pending); n > capacity {
		capacity = n
	}
	m.queue = make(chan *Job, capacity)
	for _, jf := range pending {
		if rec := records[jf.ID]; rec != nil {
			// Terminal before the restart: reload so GET keeps answering.
			j := &Job{ID: jf.ID, Spec: jf.Spec, Key: jf.Key, status: rec.Status, err: rec.Error, doc: rec.Doc}
			m.jobs[jf.ID] = j
			continue
		}
		// Queued or running when the previous daemon died: resume. The
		// miner re-enters at the checkpointed pass barrier (or pass 1 when
		// the job never reached one), reproducing the uninterrupted run.
		j := &Job{ID: jf.ID, Spec: jf.Spec, Key: jf.Key, resume: true, status: StatusQueued, created: time.Now()}
		m.jobs[jf.ID] = j
		m.queue <- j
		m.met.jobsResumed.Inc()
		m.logf("resuming job %s (%s) from spool", j.ID, j.Spec.Miner)
	}
	m.met.queueDepth.Set(int64(len(m.queue)))
	if err := m.recoverStreams(); err != nil {
		cancel()
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// SpoolDir reports the durability root the manager was configured with.
func (m *Manager) SpoolDir() string { return m.cfg.SpoolDir }

func (m *Manager) logf(format string, args ...interface{}) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// nextID returns a sortable unique job id; the timestamp prefix keeps
// restart order deterministic across daemon generations.
func (m *Manager) nextID() string {
	m.mu.Lock()
	m.seq++
	seq := m.seq
	m.mu.Unlock()
	return fmt.Sprintf("j%016x-%04d", time.Now().UnixNano(), seq)
}

// Submit validates a request, answers it from the result cache when the
// content-addressed key hits, and otherwise persists and enqueues a job.
// ErrQueueFull reports saturation (HTTP 429); ErrShuttingDown a draining
// daemon (503); any other error is a bad request (400).
func (m *Manager) Submit(spec JobRequest) (*Job, error) {
	if err := spec.normalize(); err != nil {
		return nil, err
	}
	if spec.Cluster && m.cfg.Cluster == nil {
		return nil, invalidf(ReasonBadCluster, "this daemon has no worker cluster (start with -role coordinator -peers ...)")
	}
	data, err := loadDatasetBytes(spec)
	if err != nil {
		return nil, err
	}
	key := CacheKey(data, spec)
	id := m.nextID()

	m.mu.Lock()
	if m.state != stateAccepting {
		m.mu.Unlock()
		return nil, ErrShuttingDown
	}
	m.met.jobsSubmitted.Inc()
	if doc, ok := m.cache.get(key); ok {
		hit := *doc // shallow copy: the MFS slice is shared read-only
		hit.ID = id
		hit.Cached = true
		j := &Job{ID: id, Spec: spec, Key: key, status: StatusDone, doc: &hit, created: time.Now()}
		j.finished = j.created
		m.jobs[id] = j
		m.met.cacheHits.Inc()
		m.mu.Unlock()
		m.logf("job %s: cache hit (%s)", id, key[:12])
		return j, nil
	}
	m.mu.Unlock()

	// Cache miss: only now pay for parsing the database (a hit never needs
	// the parsed form, just the bytes' hash). Repeats of a known database
	// come out of the dataset cache with their profile already computed.
	d, prof, err := m.datasetFor(data)
	if err != nil {
		return nil, err
	}
	j := &Job{ID: id, Spec: spec, Key: key, data: d, prof: prof, status: StatusQueued, created: time.Now()}
	if err := m.sp.saveJob(j); err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.state != stateAccepting {
		m.mu.Unlock()
		m.sp.dropJob(id)
		return nil, ErrShuttingDown
	}
	select {
	case m.queue <- j:
		m.jobs[id] = j
		m.met.cacheMisses.Inc()
		m.met.queueDepth.Set(int64(len(m.queue)))
		m.mu.Unlock()
		return j, nil
	default:
		m.met.jobsRejected.Inc()
		m.mu.Unlock()
		m.sp.dropJob(id)
		return nil, ErrQueueFull
	}
}

// RetryAfterSeconds estimates how long a 429-rejected client should wait
// before retrying, instead of a hardcoded constant: one second of slack plus
// the queued backlog spread over the worker pool (a queue this side of
// saturation drains roughly one job per worker per moment), clamped to 30s
// so a long backlog never tells clients to go away for minutes.
func (m *Manager) RetryAfterSeconds() int {
	workers := m.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	sec := 1 + len(m.queue)/workers
	if sec > 30 {
		sec = 30
	}
	return sec
}

// datasetFor returns the parsed dataset and its shape profile for the raw
// database bytes, memoized in the dataset cache: the same database submitted
// at many thresholds (or re-loaded for a spool-resumed job) is parsed and
// profiled exactly once. The profile is computed here — at cache-insert time
// — rather than by each job that happens to delegate its plan.
func (m *Manager) datasetFor(data []byte) (*dataset.Dataset, dataset.Profile, error) {
	sum := sha256.Sum256(data)
	m.mu.Lock()
	if d, prof, ok := m.dsc.get(sum); ok {
		m.mu.Unlock()
		m.met.datasetCacheHits.Inc()
		return d, prof, nil
	}
	m.mu.Unlock()
	// Parse and profile outside the lock: both are linear in the database
	// and must not stall submissions of other datasets. A racing duplicate
	// submission at worst parses twice; the second put wins harmlessly.
	d, err := parseDataset(data)
	if err != nil {
		return nil, dataset.Profile{}, err
	}
	prof := d.Profile()
	m.met.datasetCacheMisses.Inc()
	m.mu.Lock()
	m.dsc.put(sum, d, prof, int64(len(data)))
	m.met.datasetCacheEntries.Set(int64(m.dsc.len()))
	m.met.datasetCacheBytes.Set(m.dsc.bytes)
	m.mu.Unlock()
	return d, prof, nil
}

// Job returns the job by id.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// JobViews lists every known job, newest first.
func (m *Manager) JobViews() []JobView {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].ID > jobs[k].ID })
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.view()
	}
	return views
}

// Cancel stops a queued or running job via the context seam. A queued job
// is finalized immediately; a running one unwinds at its next cancellation
// point and keeps the partial anytime result. The second return reports
// whether the job exists at all.
func (m *Manager) Cancel(id string) (cancelled, exists bool) {
	j, ok := m.Job(id)
	if !ok {
		return false, false
	}
	j.mu.Lock()
	if j.status == StatusQueued {
		j.status = StatusCancelled
		j.cancelAsked = true
		j.finished = time.Now()
		j.mu.Unlock()
		m.met.jobsCancelled.Inc()
		if err := m.sp.saveResult(j, StatusCancelled, "", nil); err != nil {
			m.logf("job %s: record cancel: %v", id, err)
		}
		return true, true
	}
	j.mu.Unlock()
	return j.requestCancel(), true
}

// worker drains the queue until it is closed.
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.met.queueDepth.Set(int64(len(m.queue)))
		if m.currentState() == stateAborting {
			// Leave the spool entry and checkpoint: the next daemon start
			// resumes this job exactly where its checkpoint left it.
			if j.Status() == StatusQueued {
				j.setStatus(StatusInterrupted)
			}
			continue
		}
		if j.Status() != StatusQueued {
			continue // cancelled while waiting; already finalized
		}
		m.runJob(j)
	}
}

func (m *Manager) currentState() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state
}

// runJob executes one job end to end: dataset (re)load for spool-recovered
// jobs, the mining dispatch, and finalization.
func (m *Manager) runJob(j *Job) {
	if j.data == nil {
		data, err := loadDatasetBytes(j.Spec)
		var d *dataset.Dataset
		var prof dataset.Profile
		if err == nil {
			d, prof, err = m.datasetFor(data)
		}
		if err != nil {
			m.finalize(j, nil, err)
			return
		}
		j.data, j.prof = d, prof
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	defer cancel()
	j.mu.Lock()
	j.cancel = cancel
	j.status = StatusRunning
	asked := j.cancelAsked
	j.mu.Unlock()
	if asked {
		cancel()
	}
	m.met.jobsStarted.Inc()
	m.met.jobsRunning.Set(m.running.Add(1))
	defer func() { m.met.jobsRunning.Set(m.running.Add(-1)) }()
	m.logf("job %s: mining (%s, minsup %g, %d tx)", j.ID, j.Spec.Miner, j.Spec.MinSupport, j.data.Len())

	res, err := m.mine(ctx, j)
	m.finalize(j, res, err)
}

// jobTracer combines the process-wide metrics tracer with the job's JSONL
// trace file.
func (m *Manager) jobTracer(j *Job) (obsv.Tracer, func()) {
	f, err := os.Create(m.sp.tracePath(j.ID))
	if err != nil {
		m.logf("job %s: trace file: %v", j.ID, err)
		return m.tracer, func() {}
	}
	return obsv.Multi(m.tracer, obsv.NewJSONTracer(f)), func() { f.Close() }
}

// mine dispatches to the requested miner with the job's options mapped in.
func (m *Manager) mine(ctx context.Context, j *Job) (*mfi.Result, error) {
	spec := j.Spec
	d := j.data
	tracer, closeTrace := m.jobTracer(j)
	defer closeTrace()
	if sel := resolveSelection(&spec, j.prof); sel != nil {
		j.mu.Lock()
		j.sel = sel
		j.mu.Unlock()
		m.met.engineSelected(sel.Miner)
		obsv.EmitSelection(tracer, obsv.SelectionEvent{
			Algorithm:    sel.Miner,
			Engine:       sel.Engine,
			Counter:      sel.Counter,
			Rationale:    sel.Rationale,
			Transactions: sel.Profile.Transactions,
			Universe:     sel.Profile.Universe,
			Density:      sel.Profile.Density,
			Skew:         sel.Profile.Skew,
		})
		m.logf("job %s: auto plan: miner=%s engine=%s counter=%s (%s)",
			j.ID, sel.Miner, sel.Engine, sel.Counter, sel.Rationale)
	}
	minCount := dataset.MinCountFor(d.Len(), spec.MinSupport)
	var sc dataset.Scanner = dataset.NewScanner(d)
	if m.cfg.WrapScanner != nil {
		sc = m.cfg.WrapScanner(j.ID, sc)
	}
	var ckpt checkpoint.Checkpointer
	if spec.checkpointable() {
		ckpt = &snapshotCheckpointer{
			inner: checkpoint.NewFileCheckpointer(m.sp.checkpointPath(j.ID)),
			job:   j,
		}
	}
	switch spec.Miner {
	case MinerPincer:
		opt := core.DefaultOptions()
		opt.Engine = spec.engine()
		opt.KeepFrequent = false
		opt.Tracer = tracer
		opt.Context = ctx
		opt.Deadline = spec.deadline()
		opt.MaxTotalPasses = spec.MaxPasses
		opt.MaxCandidatesPerPass = spec.MaxCandidatesPerPass
		opt.MaxMemoryBytes = spec.MaxMemoryBytes
		opt.Checkpointer = ckpt
		if tidlist, rep := spec.counter(); tidlist {
			opt.Counter = counting.NewTidListCounter(d, counting.TidListOptions{Rep: rep})
		}
		if spec.Cluster {
			coord, cerr := cluster.NewCoordinator(j.ID, d, m.cfg.Cluster, tracer)
			if cerr != nil {
				return nil, cerr
			}
			opt.Counter = coord
			// Record the distribution summary however the run ends — the
			// doc of a degraded or partial run is exactly what matters.
			defer func() {
				cdoc := coord.Doc()
				j.mu.Lock()
				j.clusterDoc = cdoc
				j.mu.Unlock()
			}()
		}
		if j.resume {
			return core.MineResume(sc, minCount, opt)
		}
		return core.MineCount(sc, minCount, opt)
	case MinerApriori:
		opt := apriori.DefaultOptions()
		opt.Engine = spec.engine()
		opt.KeepFrequent = false
		opt.Tracer = tracer
		opt.Context = ctx
		opt.Deadline = spec.deadline()
		opt.MaxCandidatesPerPass = spec.MaxCandidatesPerPass
		opt.Checkpointer = ckpt
		if j.resume {
			return apriori.MineResume(sc, minCount, opt)
		}
		return apriori.MineCount(sc, minCount, opt)
	case MinerTopdown:
		opt := topdown.DefaultOptions()
		opt.Tracer = tracer
		opt.Context = ctx
		opt.Deadline = spec.deadline()
		opt.MaxPasses = spec.MaxPasses
		tres, err := topdown.MineCount(sc, minCount, opt)
		if err != nil {
			return nil, err
		}
		if tres.Aborted {
			return nil, fmt.Errorf("topdown: frontier exceeded %d elements; this miner only suits concentrated data", opt.MaxElements)
		}
		return &tres.Result, nil
	case MinerVertical:
		// The vertical miner builds its index in a single pass and performs
		// no database scans after it, so it has no cancellation points; it
		// is also the fastest miner on anything small enough to invert.
		opt := vertical.DefaultOptions()
		opt.KeepFrequent = false
		vres := vertical.MineMaximal(d, spec.MinSupport, opt)
		return &vres.Result, nil
	case MinerFPMax:
		// Like the vertical miner, FP-max reads the database exactly twice
		// and then works purely in memory: no cancellation points and no
		// checkpoints.
		fres := fpmax.MineMaximalCount(d, minCount, fpmax.DefaultOptions())
		return &fres.Result, nil
	case MinerParallel:
		copt := core.DefaultOptions()
		copt.MaxTotalPasses = spec.MaxPasses
		copt.MaxCandidatesPerPass = spec.MaxCandidatesPerPass
		copt.MaxMemoryBytes = spec.MaxMemoryBytes
		popt := parallel.DefaultOptions()
		popt.Workers = spec.Workers
		popt.Engine = spec.engine()
		popt.KeepFrequent = false
		popt.Tracer = tracer
		popt.Context = ctx
		popt.Deadline = spec.deadline()
		popt.Checkpointer = ckpt
		if tidlist, rep := spec.counter(); tidlist {
			copt.Counter = counting.NewTidListCounter(d, counting.TidListOptions{Workers: spec.Workers, Rep: rep})
		}
		if j.resume {
			return parallel.MinePincerResume(d, minCount, copt, popt)
		}
		return parallel.MinePincerCount(d, minCount, copt, popt)
	}
	return nil, fmt.Errorf("unknown miner %q", spec.Miner) // unreachable: normalize validated it
}

// terminalReasons are the PartialResultError reasons that genuinely end a
// job: a client cancel, an expired deadline, or a tripped budget. Any other
// abort reason reached the handler by unwinding a crash (the fault-
// injection harness kills runs exactly this way), and the job stays
// resumable instead.
var terminalReasons = map[string]bool{
	mfi.ReasonCancelled:     true,
	mfi.ReasonDeadline:      true,
	mfi.ReasonMaxPasses:     true,
	mfi.ReasonMaxCandidates: true,
	mfi.ReasonMemory:        true,
	mfi.ReasonCheckpoint:    true,
}

// finalize records a finished run: result document, terminal status, spool
// record, cache population, and metrics. Interrupted jobs (daemon abort or
// a crash-like unwind) are deliberately NOT finalized on disk — their spool
// entry and checkpoint are the restart contract.
func (m *Manager) finalize(j *Job, res *mfi.Result, err error) {
	j.mu.Lock()
	sel := j.sel
	cdoc := j.clusterDoc
	j.mu.Unlock()
	clearCheckpoint := func() {
		if j.Spec.checkpointable() {
			if cerr := checkpoint.NewFileCheckpointer(m.sp.checkpointPath(j.ID)).Clear(); cerr != nil {
				m.logf("job %s: clear checkpoint: %v", j.ID, cerr)
			}
		}
	}
	record := func(status string, doc *ResultDoc, errMsg string) {
		j.mu.Lock()
		j.status = status
		j.doc = doc
		j.err = errMsg
		j.finished = time.Now()
		j.mu.Unlock()
		if serr := m.sp.saveResult(j, status, errMsg, doc); serr != nil {
			m.logf("job %s: record result: %v", j.ID, serr)
		}
	}

	if err == nil {
		doc := buildDoc(j.ID, j.Spec, sel, res, nil)
		doc.Cluster = cdoc
		record(StatusDone, doc, "")
		m.met.jobsCompleted.Inc()
		m.mu.Lock()
		m.cache.put(j.Key, doc)
		m.met.cacheBytes.Set(m.cache.bytes)
		m.met.cacheEntries.Set(int64(m.cache.len()))
		m.met.cacheEvictions.Add(m.cache.evictions - m.lastEvictions)
		m.lastEvictions = m.cache.evictions
		m.mu.Unlock()
		m.logf("job %s: done (%d maximal sets, %d passes)", j.ID, len(res.MFS), res.Stats.Passes)
		return
	}

	var pe *mfi.PartialResultError
	if errors.As(err, &pe) && pe.Result != nil {
		j.mu.Lock()
		asked := j.cancelAsked
		j.mu.Unlock()
		aborting := m.currentState() == stateAborting
		switch {
		case !terminalReasons[pe.Reason], aborting && !asked:
			// Crash-like unwind, or shutdown abort: keep the job resumable.
			j.setStatus(StatusInterrupted)
			m.logf("job %s: interrupted (%s) at pass %d; checkpoint retained for restart", j.ID, pe.Reason, pe.Pass)
		case asked:
			doc := buildDoc(j.ID, j.Spec, sel, pe.Result, pe)
			doc.Cluster = cdoc
			record(StatusCancelled, doc, "")
			clearCheckpoint()
			m.met.jobsCancelled.Inc()
			m.logf("job %s: cancelled at pass %d", j.ID, pe.Pass)
		default:
			doc := buildDoc(j.ID, j.Spec, sel, pe.Result, pe)
			doc.Cluster = cdoc
			record(StatusPartial, doc, "")
			clearCheckpoint()
			m.met.jobsPartial.Inc()
			m.logf("job %s: stopped early (%s) at pass %d", j.ID, pe.Reason, pe.Pass)
		}
		return
	}

	record(StatusFailed, nil, err.Error())
	clearCheckpoint()
	m.met.jobsFailed.Inc()
	m.logf("job %s: failed: %v", j.ID, err)
}

// closeQueue closes the run queue exactly once.
func (m *Manager) closeQueue() {
	m.mu.Lock()
	if !m.queueClosed {
		m.queueClosed = true
		close(m.queue)
	}
	m.mu.Unlock()
}

// Drain stops accepting new jobs, lets queued and running jobs finish, and
// waits for the pool (bounded by ctx) — the SIGTERM path.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if m.state == stateAccepting {
		m.state = stateDraining
	}
	m.mu.Unlock()
	m.closeQueue()
	done := make(chan struct{})
	go func() { m.wg.Wait(); close(done) }()
	select {
	case <-done:
		m.baseCancel()
		m.closeStreams()
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain: %w", ctx.Err())
	}
}

// Abort cancels every running job (their pass-barrier checkpoints survive
// in the spool) and leaves queued jobs on disk for the next start — the
// SIGINT path. It waits for the pool to unwind, bounded by ctx.
func (m *Manager) Abort(ctx context.Context) error {
	m.mu.Lock()
	m.state = stateAborting
	m.mu.Unlock()
	m.baseCancel()
	m.closeQueue()
	done := make(chan struct{})
	go func() { m.wg.Wait(); close(done) }()
	select {
	case <-done:
		m.closeStreams()
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: abort: %w", ctx.Err())
	}
}
