package server

import (
	"errors"
	"fmt"
	"math"
	"testing"
)

func testDoc(id string, n int) *ResultDoc {
	doc := &ResultDoc{ID: id, Miner: MinerPincer, MinSupport: 0.1}
	for i := 0; i < n; i++ {
		doc.MFS = append(doc.MFS, ItemsetDoc{Items: []int32{int32(i), int32(i + 1)}, Support: int64(i)})
	}
	return doc
}

func TestCacheKeyDependsOnEveryInput(t *testing.T) {
	base := JobRequest{Baskets: "1 2\n", MinSupport: 0.1}
	key := func(data string, spec JobRequest) string { return CacheKey([]byte(data), spec) }
	k0 := key("1 2\n", base)
	if k0 != key("1 2\n", base) {
		t.Fatal("cache key is not deterministic")
	}
	variants := []JobRequest{}
	v := base
	v.MinSupport = 0.2
	variants = append(variants, v)
	v = base
	v.Miner = MinerApriori
	variants = append(variants, v)
	v = base
	v.Workers = 4
	variants = append(variants, v)
	v = base
	v.Engine = "trie"
	variants = append(variants, v)
	v = base
	v.Counter = "tidlist"
	variants = append(variants, v)
	v = base
	v.DeadlineMS = 100
	variants = append(variants, v)
	v = base
	v.MaxPasses = 3
	variants = append(variants, v)
	v = base
	v.Cluster = true
	variants = append(variants, v)
	for i, spec := range variants {
		if key("1 2\n", spec) == k0 {
			t.Errorf("variant %d: option change did not change the cache key", i)
		}
	}
	if key("1 3\n", base) == k0 {
		t.Error("dataset change did not change the cache key")
	}
}

// TestCacheKeyMinSupportBitExact pins the v3 fix for the %.12g collision:
// two thresholds that agree in their first 12 significant digits — and so
// collided under the v2 key, serving the second submission the first one's
// result — must produce distinct keys. The pair differs by one ULP, the
// worst case: any float64 gap the old format rounded away.
func TestCacheKeyMinSupportBitExact(t *testing.T) {
	a := 0.1
	b := math.Nextafter(a, 1) // 0.1 + 1 ULP: MinCount may differ, result may differ
	if a == b {
		t.Fatal("test bug: thresholds are equal")
	}
	// The collision the v2 key suffered from: %.12g cannot tell them apart.
	if fmt.Sprintf("%.12g", a) != fmt.Sprintf("%.12g", b) {
		t.Fatalf("test bug: %v and %v differ within 12 significant digits", a, b)
	}
	specA := JobRequest{Baskets: "1 2\n", MinSupport: a}
	specB := JobRequest{Baskets: "1 2\n", MinSupport: b}
	data := []byte("1 2\n")
	if CacheKey(data, specA) == CacheKey(data, specB) {
		t.Errorf("distinct min_support values %v and %v share a cache key", a, b)
	}
	if CacheKey(data, specA) != CacheKey(data, specA) {
		t.Error("cache key is not deterministic for the same threshold")
	}
}

// TestResultCachePutShortCircuits pins the cheap-rejection paths: a put
// into a disabled cache, or of a doc whose size lower bound already
// exceeds the whole bound, must return before JSON-encoding the result —
// that is, without allocating at all.
func TestResultCachePutShortCircuits(t *testing.T) {
	doc := testDoc("d", 64)
	disabled := newResultCache(0)
	if n := testing.AllocsPerRun(100, func() { disabled.put("k", doc) }); n > 0 {
		t.Errorf("disabled-cache put allocates %.1f/op; must not encode the doc", n)
	}
	if disabled.len() != 0 {
		t.Fatal("disabled cache stored an entry")
	}
	tiny := newResultCache(32) // smaller than any doc's lower bound
	if n := testing.AllocsPerRun(100, func() { tiny.put("k", doc) }); n > 0 {
		t.Errorf("oversized put allocates %.1f/op; must not encode the doc", n)
	}
	if tiny.len() != 0 {
		t.Fatal("tiny cache stored an entry")
	}
	// The short-circuit is only sound while the bound under-counts.
	for _, n := range []int{0, 1, 4, 100} {
		d := testDoc("d", n)
		if lo, real := minDocSize("k", d), docSize("k", d); lo > real {
			t.Errorf("minDocSize(%d itemsets) = %d exceeds real size %d; bound must under-count", n, lo, real)
		}
	}
}

func TestResultCacheLRUByteBound(t *testing.T) {
	probe := testDoc("probe", 4)
	unit := docSize("k0", probe) // all test docs have equal-size payloads
	c := newResultCache(3 * unit)
	for i := 0; i < 3; i++ {
		c.put(fmt.Sprintf("k%d", i), testDoc(fmt.Sprintf("d%d", i), 4))
	}
	if c.len() != 3 || c.evictions != 0 {
		t.Fatalf("len=%d evictions=%d, want 3/0", c.len(), c.evictions)
	}
	// Touch k0 so k1 becomes the LRU victim.
	if _, ok := c.get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	c.put("k3", testDoc("d3", 4))
	if _, ok := c.get("k1"); ok {
		t.Error("k1 survived; LRU eviction did not pick the least recent")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("%s missing after eviction", k)
		}
	}
	if c.evictions != 1 {
		t.Errorf("evictions = %d, want 1", c.evictions)
	}
	if c.bytes > 3*unit {
		t.Errorf("bytes = %d exceeds bound %d", c.bytes, 3*unit)
	}
}

func TestResultCacheRejectsOversized(t *testing.T) {
	c := newResultCache(16) // far smaller than any doc
	c.put("k", testDoc("d", 100))
	if c.len() != 0 || c.bytes != 0 {
		t.Fatalf("oversized doc was stored: len=%d bytes=%d", c.len(), c.bytes)
	}
	if _, ok := c.get("k"); ok {
		t.Fatal("oversized doc retrievable")
	}
}

func TestResultCacheReplaceSameKey(t *testing.T) {
	c := newResultCache(1 << 20)
	c.put("k", testDoc("a", 2))
	c.put("k", testDoc("b", 8))
	doc, ok := c.get("k")
	if !ok || doc.ID != "b" {
		t.Fatalf("replacement lost: %+v", doc)
	}
	if c.len() != 1 {
		t.Errorf("len = %d, want 1", c.len())
	}
	if c.bytes != docSize("k", doc) {
		t.Errorf("bytes = %d, want %d (replacement must re-account)", c.bytes, docSize("k", doc))
	}
}

// TestJobRequestNormalize is the miner × engine × counter validation
// matrix. Every rejection must be a *ValidationError carrying the Reason*
// constant naming the failing field — no untyped errors escape normalize —
// and every acceptance row checks the normalized miner/engine the request
// resolves to.
func TestJobRequestNormalize(t *testing.T) {
	req := func(mod func(*JobRequest)) JobRequest {
		r := JobRequest{Baskets: "1 2\n", MinSupport: 0.5}
		if mod != nil {
			mod(&r)
		}
		return r
	}
	cases := []struct {
		name       string
		spec       JobRequest
		wantReason string // "" = accepted
		wantMiner  string // post-normalize, accepted rows only
		wantEngine string
	}{
		{name: "default miner", spec: req(nil), wantMiner: MinerPincer},
		{name: "fpmax accepted", spec: req(func(r *JobRequest) { r.Miner = MinerFPMax }), wantMiner: MinerFPMax},
		{name: "miner auto accepted", spec: req(func(r *JobRequest) { r.Miner = MinerAuto }), wantMiner: MinerAuto},
		{name: "engine auto alone implies miner auto", spec: req(func(r *JobRequest) { r.Engine = EngineAuto }),
			wantMiner: MinerAuto, wantEngine: ""},
		{name: "miner auto + engine auto canonicalized", spec: req(func(r *JobRequest) { r.Miner, r.Engine = MinerAuto, EngineAuto }),
			wantMiner: MinerAuto, wantEngine: ""},
		{name: "engine auto on pincer", spec: req(func(r *JobRequest) { r.Miner, r.Engine = MinerPincer, EngineAuto }),
			wantMiner: MinerPincer, wantEngine: EngineAuto},
		{name: "engine auto on apriori", spec: req(func(r *JobRequest) { r.Miner, r.Engine = MinerApriori, EngineAuto }),
			wantMiner: MinerApriori, wantEngine: EngineAuto},
		{name: "engine auto on parallel", spec: req(func(r *JobRequest) { r.Miner, r.Engine = MinerParallel, EngineAuto }),
			wantMiner: MinerParallel, wantEngine: EngineAuto},

		{name: "unknown miner", spec: req(func(r *JobRequest) { r.Miner = "x" }), wantReason: ReasonBadMiner},
		{name: "engine auto on vertical", spec: req(func(r *JobRequest) { r.Miner, r.Engine = MinerVertical, EngineAuto }), wantReason: ReasonBadEngine},
		{name: "engine auto on topdown", spec: req(func(r *JobRequest) { r.Miner, r.Engine = MinerTopdown, EngineAuto }), wantReason: ReasonBadEngine},
		{name: "engine auto on fpmax", spec: req(func(r *JobRequest) { r.Miner, r.Engine = MinerFPMax, EngineAuto }), wantReason: ReasonBadEngine},
		{name: "fixed engine on miner auto", spec: req(func(r *JobRequest) { r.Miner, r.Engine = MinerAuto, "trie" }), wantReason: ReasonBadEngine},
		{name: "fixed engine on topdown", spec: req(func(r *JobRequest) { r.Miner, r.Engine = MinerTopdown, "trie" }), wantReason: ReasonBadEngine},
		{name: "fixed engine on vertical", spec: req(func(r *JobRequest) { r.Miner, r.Engine = MinerVertical, "hashtree" }), wantReason: ReasonBadEngine},
		{name: "fixed engine on fpmax", spec: req(func(r *JobRequest) { r.Miner, r.Engine = MinerFPMax, "list" }), wantReason: ReasonBadEngine},
		{name: "unknown engine", spec: req(func(r *JobRequest) { r.Engine = "bogus" }), wantReason: ReasonBadEngine},
		{name: "counter on vertical", spec: req(func(r *JobRequest) { r.Miner, r.Counter = MinerVertical, "tidlist" }), wantReason: ReasonBadCounter},
		{name: "counter on miner auto", spec: req(func(r *JobRequest) { r.Miner, r.Counter = MinerAuto, "tidlist" }), wantReason: ReasonBadCounter},
		{name: "bogus counter", spec: req(func(r *JobRequest) { r.Counter = "tidlist:bogus" }), wantReason: ReasonBadCounter},
		{name: "both sources", spec: req(func(r *JobRequest) { r.DatasetPath = "x" }), wantReason: ReasonBadDataset},
		{name: "no source", spec: req(func(r *JobRequest) { r.Baskets = "" }), wantReason: ReasonBadDataset},
		{name: "support zero", spec: req(func(r *JobRequest) { r.MinSupport = 0 }), wantReason: ReasonBadSupport},
		{name: "support above one", spec: req(func(r *JobRequest) { r.MinSupport = 1.5 }), wantReason: ReasonBadSupport},
		{name: "workers on sequential miner", spec: req(func(r *JobRequest) { r.Workers = 4 }), wantReason: ReasonBadWorkers},
		{name: "negative workers", spec: req(func(r *JobRequest) { r.Miner, r.Workers = MinerParallel, -1 }), wantReason: ReasonBadWorkers},
		{name: "cluster on default miner", spec: req(func(r *JobRequest) { r.Cluster = true }), wantMiner: MinerPincer},
		{name: "cluster on apriori", spec: req(func(r *JobRequest) { r.Miner, r.Cluster = MinerApriori, true }), wantReason: ReasonBadCluster},
		{name: "cluster with tidlist counter", spec: req(func(r *JobRequest) { r.Counter, r.Cluster = "tidlist", true }), wantReason: ReasonBadCluster},
		{name: "cluster with engine auto", spec: req(func(r *JobRequest) { r.Engine, r.Cluster = EngineAuto, true }), wantReason: ReasonBadCluster},
		{name: "negative deadline", spec: req(func(r *JobRequest) { r.DeadlineMS = -1 }), wantReason: ReasonBadBudget},
		{name: "negative memory budget", spec: req(func(r *JobRequest) { r.MaxMemoryBytes = -1 }), wantReason: ReasonBadBudget},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := tc.spec
			err := spec.normalize()
			if tc.wantReason == "" {
				if err != nil {
					t.Fatalf("valid request rejected: %v", err)
				}
				if spec.Miner != tc.wantMiner {
					t.Errorf("miner = %q, want %q", spec.Miner, tc.wantMiner)
				}
				if spec.Engine != tc.wantEngine {
					t.Errorf("engine = %q, want %q", spec.Engine, tc.wantEngine)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid request accepted: %+v", tc.spec)
			}
			var ve *ValidationError
			if !errors.As(err, &ve) {
				t.Fatalf("rejection is untyped (%T: %v); want *ValidationError", err, err)
			}
			if ve.Reason != tc.wantReason {
				t.Errorf("reason = %q, want %q (%v)", ve.Reason, tc.wantReason, err)
			}
		})
	}
}
