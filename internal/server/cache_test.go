package server

import (
	"fmt"
	"testing"
)

func testDoc(id string, n int) *ResultDoc {
	doc := &ResultDoc{ID: id, Miner: MinerPincer, MinSupport: 0.1}
	for i := 0; i < n; i++ {
		doc.MFS = append(doc.MFS, ItemsetDoc{Items: []int32{int32(i), int32(i + 1)}, Support: int64(i)})
	}
	return doc
}

func TestCacheKeyDependsOnEveryInput(t *testing.T) {
	base := JobRequest{Baskets: "1 2\n", MinSupport: 0.1}
	key := func(data string, spec JobRequest) string { return CacheKey([]byte(data), spec) }
	k0 := key("1 2\n", base)
	if k0 != key("1 2\n", base) {
		t.Fatal("cache key is not deterministic")
	}
	variants := []JobRequest{}
	v := base
	v.MinSupport = 0.2
	variants = append(variants, v)
	v = base
	v.Miner = MinerApriori
	variants = append(variants, v)
	v = base
	v.Workers = 4
	variants = append(variants, v)
	v = base
	v.Engine = "trie"
	variants = append(variants, v)
	v = base
	v.Counter = "tidlist"
	variants = append(variants, v)
	v = base
	v.DeadlineMS = 100
	variants = append(variants, v)
	v = base
	v.MaxPasses = 3
	variants = append(variants, v)
	for i, spec := range variants {
		if key("1 2\n", spec) == k0 {
			t.Errorf("variant %d: option change did not change the cache key", i)
		}
	}
	if key("1 3\n", base) == k0 {
		t.Error("dataset change did not change the cache key")
	}
}

func TestResultCacheLRUByteBound(t *testing.T) {
	probe := testDoc("probe", 4)
	unit := docSize("k0", probe) // all test docs have equal-size payloads
	c := newResultCache(3 * unit)
	for i := 0; i < 3; i++ {
		c.put(fmt.Sprintf("k%d", i), testDoc(fmt.Sprintf("d%d", i), 4))
	}
	if c.len() != 3 || c.evictions != 0 {
		t.Fatalf("len=%d evictions=%d, want 3/0", c.len(), c.evictions)
	}
	// Touch k0 so k1 becomes the LRU victim.
	if _, ok := c.get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	c.put("k3", testDoc("d3", 4))
	if _, ok := c.get("k1"); ok {
		t.Error("k1 survived; LRU eviction did not pick the least recent")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("%s missing after eviction", k)
		}
	}
	if c.evictions != 1 {
		t.Errorf("evictions = %d, want 1", c.evictions)
	}
	if c.bytes > 3*unit {
		t.Errorf("bytes = %d exceeds bound %d", c.bytes, 3*unit)
	}
}

func TestResultCacheRejectsOversized(t *testing.T) {
	c := newResultCache(16) // far smaller than any doc
	c.put("k", testDoc("d", 100))
	if c.len() != 0 || c.bytes != 0 {
		t.Fatalf("oversized doc was stored: len=%d bytes=%d", c.len(), c.bytes)
	}
	if _, ok := c.get("k"); ok {
		t.Fatal("oversized doc retrievable")
	}
}

func TestResultCacheReplaceSameKey(t *testing.T) {
	c := newResultCache(1 << 20)
	c.put("k", testDoc("a", 2))
	c.put("k", testDoc("b", 8))
	doc, ok := c.get("k")
	if !ok || doc.ID != "b" {
		t.Fatalf("replacement lost: %+v", doc)
	}
	if c.len() != 1 {
		t.Errorf("len = %d, want 1", c.len())
	}
	if c.bytes != docSize("k", doc) {
		t.Errorf("bytes = %d, want %d (replacement must re-account)", c.bytes, docSize("k", doc))
	}
}

func TestJobRequestNormalize(t *testing.T) {
	ok := JobRequest{Baskets: "1 2\n", MinSupport: 0.5}
	if err := ok.normalize(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	if ok.Miner != MinerPincer {
		t.Errorf("default miner = %q, want pincer", ok.Miner)
	}
	bad := []JobRequest{
		{Baskets: "1\n", DatasetPath: "x", MinSupport: 0.5}, // both sources
		{MinSupport: 0.5},                            // no source
		{Baskets: "1\n", MinSupport: 1.5},            // support > 1
		{Baskets: "1\n", MinSupport: 0.5, Miner: "x"},
		{Baskets: "1\n", MinSupport: 0.5, Miner: MinerTopdown, Engine: "trie"},
		{Baskets: "1\n", MinSupport: 0.5, DeadlineMS: -1},
		{Baskets: "1\n", MinSupport: 0.5, Miner: MinerVertical, Counter: "tidlist"},
		{Baskets: "1\n", MinSupport: 0.5, Counter: "tidlist:bogus"},
	}
	for i, spec := range bad {
		if err := spec.normalize(); err == nil {
			t.Errorf("case %d: invalid request accepted: %+v", i, spec)
		}
	}
}
