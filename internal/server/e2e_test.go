package server_test

// End-to-end tests of the mining service over real HTTP (httptest): the
// submit → poll → result lifecycle, the content-addressed cache hit on
// identical resubmission, mid-mine cancellation, queue-full backpressure,
// and the kill → restart → resume contract, with the fault-injection
// scanner standing in for a crashed daemon.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pincer/internal/apriori"
	"pincer/internal/dataset"
	"pincer/internal/faultinject"
	"pincer/internal/itemset"
	"pincer/internal/server"
)

// testBaskets is a handcrafted database whose exact answer is known: at
// minCount 5 (min_support 0.3 of 15 transactions) the maximum frequent set
// is {0 1 2 3} and {2 3 4 5}, each with support 6. Apriori needs five
// passes, giving the pass-stepping tests room to interrupt.
const testBaskets = `0 1 2 3
0 1 2 3
0 1 2 3
0 1 2 3
0 1 2 3
0 1 2 3
2 3 4 5
2 3 4 5
2 3 4 5
2 3 4 5
2 3 4 5
2 3 4 5
0 5
0 5
0 5
`

const testMinSupport = 0.3

func newTestServer(t *testing.T, mod func(*server.Config)) (*server.Server, *httptest.Server) {
	t.Helper()
	cfg := server.Config{
		SpoolDir: t.TempDir(),
		Workers:  2,
		Logf:     t.Logf,
	}
	if mod != nil {
		mod(&cfg)
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Abort(ctx)
	})
	return srv, hs
}

// doJSON performs one request and decodes the response into out (when
// non-nil), returning the status code.
func doJSON(t *testing.T, method, url string, body interface{}, out interface{}) int {
	t.Helper()
	var reqBody *bytes.Buffer = bytes.NewBuffer(nil)
	if body != nil {
		if err := json.NewEncoder(reqBody).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, reqBody)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func submit(t *testing.T, base string, spec server.JobRequest) (int, server.JobView) {
	t.Helper()
	var v server.JobView
	code := doJSON(t, http.MethodPost, base+"/v1/jobs", spec, &v)
	return code, v
}

// waitStatus polls the job until it reaches one of the wanted statuses.
func waitStatus(t *testing.T, base, id string, want ...string) server.JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var v server.JobView
		if code := doJSON(t, http.MethodGet, base+"/v1/jobs/"+id, nil, &v); code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		for _, w := range want {
			if v.Status == w {
				return v
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q, want one of %v", id, v.Status, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// mfsSignature renders a result's MFS canonically for equality checks.
func mfsSignature(doc *server.ResultDoc) string {
	lines := make([]string, 0, len(doc.MFS))
	for _, m := range doc.MFS {
		lines = append(lines, fmt.Sprintf("%v=%d", m.Items, m.Support))
	}
	return strings.Join(lines, ";")
}

func TestE2ESubmitPollResult(t *testing.T) {
	srv, hs := newTestServer(t, nil)
	code, v := submit(t, hs.URL, server.JobRequest{Baskets: testBaskets, MinSupport: testMinSupport})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202", code)
	}
	final := waitStatus(t, hs.URL, v.ID, server.StatusDone)
	var doc server.ResultDoc
	if code := doJSON(t, http.MethodGet, hs.URL+"/v1/results/"+v.ID, nil, &doc); code != http.StatusOK {
		t.Fatalf("GET result: status %d", code)
	}
	if len(doc.MFS) != 2 {
		t.Fatalf("MFS = %v, want the two known maximal sets", doc.MFS)
	}
	for _, m := range doc.MFS {
		if m.Support != 6 {
			t.Errorf("support of %v = %d, want 6", m.Items, m.Support)
		}
	}
	if doc.Cached {
		t.Error("first run reported cached")
	}
	if final.FinishedAt == "" {
		t.Error("finished job has no FinishedAt")
	}
	if got := srv.Registry().Snapshot()["pincer_jobs_completed_total"]; got != 1 {
		t.Errorf("jobs_completed_total = %d, want 1", got)
	}
}

// A tid-list job must mine the same answer as the default scan counter,
// echo the counter back in the result doc, and cache under a distinct key.
func TestE2ETidlistCounterJob(t *testing.T) {
	_, hs := newTestServer(t, nil)
	spec := server.JobRequest{Baskets: testBaskets, MinSupport: testMinSupport, Counter: "tidlist"}
	code, v := submit(t, hs.URL, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202", code)
	}
	waitStatus(t, hs.URL, v.ID, server.StatusDone)
	var doc server.ResultDoc
	if code := doJSON(t, http.MethodGet, hs.URL+"/v1/results/"+v.ID, nil, &doc); code != http.StatusOK {
		t.Fatalf("GET result: status %d", code)
	}
	if doc.Counter != "tidlist" {
		t.Errorf("doc.Counter = %q, want tidlist", doc.Counter)
	}
	if doc.Cached {
		t.Error("first tidlist run reported cached: counter missing from the cache key?")
	}
	if len(doc.MFS) != 2 {
		t.Fatalf("MFS = %v, want the two known maximal sets", doc.MFS)
	}
	for _, m := range doc.MFS {
		if m.Support != 6 {
			t.Errorf("support of %v = %d, want 6", m.Items, m.Support)
		}
	}
}

func TestE2EIdenticalResubmitIsCacheHit(t *testing.T) {
	srv, hs := newTestServer(t, nil)
	spec := server.JobRequest{Baskets: testBaskets, MinSupport: testMinSupport}
	_, v1 := submit(t, hs.URL, spec)
	waitStatus(t, hs.URL, v1.ID, server.StatusDone)
	var doc1 server.ResultDoc
	doJSON(t, http.MethodGet, hs.URL+"/v1/results/"+v1.ID, nil, &doc1)

	code, v2 := submit(t, hs.URL, spec)
	if code != http.StatusOK {
		t.Fatalf("resubmit: status %d, want 200 (cache hit)", code)
	}
	if !v2.Cached || v2.Status != server.StatusDone {
		t.Fatalf("resubmit view = %+v, want cached done", v2)
	}
	var doc2 server.ResultDoc
	if code := doJSON(t, http.MethodGet, hs.URL+"/v1/results/"+v2.ID, nil, &doc2); code != http.StatusOK {
		t.Fatalf("GET cached result: status %d", code)
	}
	if !doc2.Cached {
		t.Error("cached result document not marked Cached")
	}
	if mfsSignature(&doc1) != mfsSignature(&doc2) {
		t.Errorf("cached MFS differs:\n%s\nvs\n%s", mfsSignature(&doc1), mfsSignature(&doc2))
	}
	snap := srv.Registry().Snapshot()
	// The acceptance check: the second submission never started mining.
	if got := snap["pincer_jobs_started_total"]; got != 1 {
		t.Errorf("jobs_started_total = %d, want 1 (cache hit must not re-mine)", got)
	}
	if got := snap["pincer_cache_hits_total"]; got != 1 {
		t.Errorf("cache_hits_total = %d, want 1", got)
	}
	// A different support is a different key: it must miss.
	code, v3 := submit(t, hs.URL, server.JobRequest{Baskets: testBaskets, MinSupport: 0.5})
	if code != http.StatusAccepted {
		t.Fatalf("different-support submit: status %d, want 202", code)
	}
	waitStatus(t, hs.URL, v3.ID, server.StatusDone)
	if got := srv.Registry().Snapshot()["pincer_jobs_started_total"]; got != 2 {
		t.Errorf("jobs_started_total after different support = %d, want 2", got)
	}
}

// holdScanner blocks each Scan call after the first `free` ones until the
// gate channel is closed, holding a job mid-mine deterministically.
type holdScanner struct {
	dataset.Scanner
	gate  <-chan struct{}
	free  int
	scans int
}

func (h *holdScanner) Scan(fn func(itemset.Itemset, *itemset.Bitset)) {
	h.scans++
	if h.scans > h.free {
		<-h.gate
	}
	h.Scanner.Scan(fn)
}

func TestE2EAnytimePartialWhileRunning(t *testing.T) {
	gate := make(chan struct{})
	_, hs := newTestServer(t, func(cfg *server.Config) {
		cfg.Workers = 1
		cfg.WrapScanner = func(id string, sc dataset.Scanner) dataset.Scanner {
			return &holdScanner{Scanner: sc, gate: gate, free: 2}
		}
	})
	code, v := submit(t, hs.URL, server.JobRequest{
		Baskets: testBaskets, MinSupport: testMinSupport, Miner: server.MinerApriori,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	// Passes 1 and 2 run freely and checkpoint; pass 3 blocks on the gate.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var view server.JobView
		doJSON(t, http.MethodGet, hs.URL+"/v1/jobs/"+v.ID, nil, &view)
		if view.Status == server.StatusRunning && view.Pass >= 2 {
			break // anytime snapshot from the pass-2 barrier is visible
		}
		if time.Now().After(deadline) {
			t.Fatalf("never observed a running job with pass ≥ 2 (last: %+v)", view)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(gate)
	waitStatus(t, hs.URL, v.ID, server.StatusDone)
}

func TestE2ECancelMidMine(t *testing.T) {
	gate := make(chan struct{})
	srv, hs := newTestServer(t, func(cfg *server.Config) {
		cfg.Workers = 1
		cfg.WrapScanner = func(id string, sc dataset.Scanner) dataset.Scanner {
			return &holdScanner{Scanner: sc, gate: gate, free: 2}
		}
	})
	_, v := submit(t, hs.URL, server.JobRequest{
		Baskets: testBaskets, MinSupport: testMinSupport, Miner: server.MinerApriori,
	})
	waitStatus(t, hs.URL, v.ID, server.StatusRunning)
	var cv server.JobView
	if code := doJSON(t, http.MethodDelete, hs.URL+"/v1/jobs/"+v.ID, nil, &cv); code != http.StatusAccepted {
		t.Fatalf("DELETE: status %d, want 202", code)
	}
	close(gate) // release the held pass; the miner sees the cancelled context
	final := waitStatus(t, hs.URL, v.ID, server.StatusCancelled)
	if final.Status != server.StatusCancelled {
		t.Fatalf("final status = %s", final.Status)
	}
	if got := srv.Registry().Snapshot()["pincer_jobs_cancelled_total"]; got != 1 {
		t.Errorf("jobs_cancelled_total = %d, want 1", got)
	}
	// Cancelling a terminal job is a conflict, not a second cancel.
	if code := doJSON(t, http.MethodDelete, hs.URL+"/v1/jobs/"+v.ID, nil, nil); code != http.StatusConflict {
		t.Errorf("second DELETE: status %d, want 409", code)
	}
}

func TestE2EQueueFull429(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	srv, hs := newTestServer(t, func(cfg *server.Config) {
		cfg.Workers = 1
		cfg.QueueSize = 1
		cfg.WrapScanner = func(id string, sc dataset.Scanner) dataset.Scanner {
			return &holdScanner{Scanner: sc, gate: gate, free: 0}
		}
	})
	// Job A occupies the only worker (held at its first scan); job B fills
	// the queue; job C must bounce with 429 without blocking.
	_, a := submit(t, hs.URL, server.JobRequest{Baskets: testBaskets, MinSupport: 0.3})
	waitStatus(t, hs.URL, a.ID, server.StatusRunning)
	if code, _ := submit(t, hs.URL, server.JobRequest{Baskets: testBaskets, MinSupport: 0.4}); code != http.StatusAccepted {
		t.Fatalf("job B: status %d, want 202", code)
	}
	start := time.Now()
	code, _ := submit(t, hs.URL, server.JobRequest{Baskets: testBaskets, MinSupport: 0.5})
	if code != http.StatusTooManyRequests {
		t.Fatalf("job C: status %d, want 429", code)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("429 took %v; backpressure must not block", elapsed)
	}
	if got := srv.Registry().Snapshot()["pincer_jobs_rejected_total"]; got != 1 {
		t.Errorf("jobs_rejected_total = %d, want 1", got)
	}
}

func TestE2EKillRestartResume(t *testing.T) {
	spoolDir := t.TempDir()

	// The reference answer, mined uninterrupted.
	ref, err := apriori.MineCount(
		dataset.NewScanner(mustParse(t, testBaskets)),
		mustParse(t, testBaskets).MinCount(testMinSupport),
		apriori.DefaultOptions(),
	)
	if err != nil {
		t.Fatal(err)
	}

	// Daemon generation 1: the fault-injection scanner "kills" the job at
	// its third database pass — the run unwinds like a crash, leaving the
	// spool entry and the pass-2 checkpoint behind.
	srv1, err := server.New(server.Config{
		SpoolDir: spoolDir,
		Workers:  1,
		Logf:     t.Logf,
		WrapScanner: func(id string, sc dataset.Scanner) dataset.Scanner {
			return &faultinject.Scanner{Scanner: sc, TripAtScan: 3}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(srv1)
	code, v := submit(t, hs1.URL, server.JobRequest{
		Baskets: testBaskets, MinSupport: testMinSupport, Miner: server.MinerApriori,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	waitStatus(t, hs1.URL, v.ID, server.StatusInterrupted)
	hs1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	srv1.Abort(ctx)
	cancel()

	// Daemon generation 2 on the same spool: the job must be re-enqueued,
	// resumed from the checkpoint, and finish with the reference answer.
	srv2, err := server.New(server.Config{SpoolDir: spoolDir, Workers: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptest.NewServer(srv2)
	defer hs2.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv2.Abort(ctx)
	}()
	if got := srv2.Registry().Snapshot()["pincer_jobs_resumed_total"]; got != 1 {
		t.Fatalf("jobs_resumed_total = %d, want 1", got)
	}
	waitStatus(t, hs2.URL, v.ID, server.StatusDone)
	var doc server.ResultDoc
	if code := doJSON(t, http.MethodGet, hs2.URL+"/v1/results/"+v.ID, nil, &doc); code != http.StatusOK {
		t.Fatalf("GET resumed result: status %d", code)
	}
	if len(doc.MFS) != len(ref.MFS) {
		t.Fatalf("resumed MFS has %d sets, reference %d", len(doc.MFS), len(ref.MFS))
	}
	want := map[string]int64{}
	for i, m := range ref.MFS {
		parts := make([]string, len(m))
		for j, it := range m {
			parts[j] = fmt.Sprint(int64(it))
		}
		want[strings.Join(parts, " ")] = ref.MFSSupports[i]
	}
	for _, m := range doc.MFS {
		items := make([]string, len(m.Items))
		for i, it := range m.Items {
			items[i] = fmt.Sprint(it)
		}
		key := strings.Join(items, " ")
		if sup, ok := want[key]; !ok || sup != m.Support {
			t.Errorf("resumed MFS element %q support %d not in reference %v", key, m.Support, want)
		}
	}
}

func TestE2EValidationAndNotFound(t *testing.T) {
	_, hs := newTestServer(t, nil)
	cases := []server.JobRequest{
		{MinSupport: 0.5},                                                      // no dataset
		{Baskets: "1 2\n", MinSupport: 0},                                      // bad support
		{Baskets: "1 2\n", MinSupport: 0.5, Miner: "guess"},                    // unknown miner
		{Baskets: "1 2\n", MinSupport: 0.5, Workers: 4},                        // workers w/o parallel
		{Baskets: "1 2\n", MinSupport: 0.5, Miner: "vertical", Engine: "trie"}, // engine w/o counting
		{DatasetPath: "/no/such/file", MinSupport: 0.5},                        // unreadable dataset
	}
	for i, spec := range cases {
		if code, _ := submit(t, hs.URL, spec); code != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, code)
		}
	}
	if code := doJSON(t, http.MethodGet, hs.URL+"/v1/jobs/nope", nil, nil); code != http.StatusNotFound {
		t.Errorf("GET unknown job: %d, want 404", code)
	}
	if code := doJSON(t, http.MethodGet, hs.URL+"/v1/results/nope", nil, nil); code != http.StatusNotFound {
		t.Errorf("GET unknown result: %d, want 404", code)
	}
	if code := doJSON(t, http.MethodDelete, hs.URL+"/v1/jobs/nope", nil, nil); code != http.StatusNotFound {
		t.Errorf("DELETE unknown job: %d, want 404", code)
	}
	if code := doJSON(t, http.MethodGet, hs.URL+"/healthz", nil, nil); code != http.StatusOK {
		t.Errorf("healthz: %d, want 200", code)
	}
	if code := doJSON(t, http.MethodGet, hs.URL+"/metrics", nil, nil); code != http.StatusOK {
		t.Errorf("metrics: %d, want 200", code)
	}
}

func mustParse(t *testing.T, baskets string) *dataset.Dataset {
	t.Helper()
	d, err := dataset.ReadBasket(strings.NewReader(baskets))
	if err != nil {
		t.Fatal(err)
	}
	return d
}
