package server_test

// End-to-end tests of the dataset-adaptive engine selection: miner=auto and
// engine=auto jobs resolve to a concrete plan, record the decision (result
// doc selection block, pincer_engine_selected_total metric), and answer
// byte-identically to the fixed miners.

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"pincer/internal/server"
)

func fetchResult(t *testing.T, base, id string) *server.ResultDoc {
	t.Helper()
	var doc server.ResultDoc
	if code := doJSON(t, http.MethodGet, base+"/v1/results/"+id, nil, &doc); code != http.StatusOK {
		t.Fatalf("GET result %s: status %d", id, code)
	}
	return &doc
}

func TestE2EAutoMinerSelection(t *testing.T) {
	_, hs := newTestServer(t, nil)

	// Fixed reference answer.
	code, ref := submit(t, hs.URL, server.JobRequest{Baskets: testBaskets, MinSupport: testMinSupport, Miner: server.MinerApriori})
	if code != http.StatusAccepted {
		t.Fatalf("submit reference: %d", code)
	}
	waitStatus(t, hs.URL, ref.ID, server.StatusDone)
	want := mfsSignature(fetchResult(t, hs.URL, ref.ID))

	code, v := submit(t, hs.URL, server.JobRequest{Baskets: testBaskets, MinSupport: testMinSupport, Miner: server.MinerAuto})
	if code != http.StatusAccepted {
		t.Fatalf("submit auto: %d", code)
	}
	waitStatus(t, hs.URL, v.ID, server.StatusDone)
	doc := fetchResult(t, hs.URL, v.ID)

	if doc.Miner != server.MinerAuto {
		t.Errorf("doc.Miner = %q; the requested spelling must survive", doc.Miner)
	}
	sel := doc.Selection
	if sel == nil {
		t.Fatal("auto job's result doc has no selection block")
	}
	if sel.Requested != "miner" {
		t.Errorf("selection.requested = %q, want miner", sel.Requested)
	}
	switch sel.Miner {
	case server.MinerPincer, server.MinerApriori, server.MinerVertical, server.MinerFPMax:
	default:
		t.Errorf("selection resolved to %q; policy must pick a concrete sequential miner", sel.Miner)
	}
	if sel.Rationale == "" {
		t.Error("selection has no rationale")
	}
	if sel.Profile.Transactions != 15 {
		t.Errorf("profile transactions = %d, want 15", sel.Profile.Transactions)
	}
	if got := mfsSignature(doc); got != want {
		t.Errorf("auto answer differs from fixed apriori:\n got %s\nwant %s", got, want)
	}

	// The decision is visible on /metrics under the resolved plan's label.
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	line := `pincer_engine_selected_total{engine="` + sel.Miner + `"} 1`
	if !strings.Contains(string(raw), line) {
		t.Errorf("/metrics missing %q", line)
	}
}

func TestE2EEngineAutoOnFixedMiner(t *testing.T) {
	_, hs := newTestServer(t, nil)

	code, ref := submit(t, hs.URL, server.JobRequest{Baskets: testBaskets, MinSupport: testMinSupport, Miner: server.MinerPincer})
	if code != http.StatusAccepted {
		t.Fatalf("submit reference: %d", code)
	}
	waitStatus(t, hs.URL, ref.ID, server.StatusDone)
	want := mfsSignature(fetchResult(t, hs.URL, ref.ID))

	code, v := submit(t, hs.URL, server.JobRequest{
		Baskets: testBaskets, MinSupport: testMinSupport,
		Miner: server.MinerPincer, Engine: server.EngineAuto,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit engine=auto: %d", code)
	}
	waitStatus(t, hs.URL, v.ID, server.StatusDone)
	doc := fetchResult(t, hs.URL, v.ID)

	sel := doc.Selection
	if sel == nil {
		t.Fatal("engine=auto job's result doc has no selection block")
	}
	if sel.Requested != "engine" {
		t.Errorf("selection.requested = %q, want engine", sel.Requested)
	}
	if sel.Miner != server.MinerPincer {
		t.Errorf("selection.miner = %q; a fixed miner must not be overridden", sel.Miner)
	}
	if doc.Engine == "" || doc.Engine == server.EngineAuto {
		t.Errorf("doc.Engine = %q, want a concrete engine", doc.Engine)
	}
	if got := mfsSignature(doc); got != want {
		t.Errorf("engine=auto answer differs from fixed pincer:\n got %s\nwant %s", got, want)
	}
}

// TestAutoDistinctCacheKeys pins that an auto job and the fixed job it
// resolves to stay distinct cache entries: their result docs differ (the
// auto doc carries the selection block), so serving one for the other
// would hand the client the wrong document.
func TestAutoDistinctCacheKeys(t *testing.T) {
	auto := server.JobRequest{Baskets: testBaskets, MinSupport: testMinSupport, Miner: server.MinerAuto}
	fixed := server.JobRequest{Baskets: testBaskets, MinSupport: testMinSupport, Miner: server.MinerApriori}
	if server.CacheKey([]byte(testBaskets), auto) == server.CacheKey([]byte(testBaskets), fixed) {
		t.Error("auto and fixed requests share a cache key")
	}
}
