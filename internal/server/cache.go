package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
)

// CacheKey derives the content-addressed cache key of a mining request:
// SHA-256 over the dataset bytes and every option that shapes the answer
// (threshold, miner, workers, engine, counter, budgets). Two submissions
// with equal keys are guaranteed the same complete result, so the second is
// served from the cache without re-mining — the dataset hash makes this hold
// even when a basket file is replaced in place between submissions. The
// counter never changes the mined result, but it is still keyed because the
// result doc echoes it back.
//
// The minimum support is keyed by its exact IEEE-754 bit pattern. The v2
// key formatted it with %.12g, so two thresholds agreeing in the first 12
// significant digits collided into one key and the second submission was
// served the first one's result — a wrong answer, since MinCount can differ
// at any digit. Float64bits makes distinct float64 thresholds distinct keys
// by construction (and folds the two zeros apart, which is harmless:
// normalize rejects non-positive supports).
// Cluster jobs are keyed separately (v4's cluster=%t) even though the MFS
// is identical either way: the cached doc carries the run's cluster
// accounting, and answering a single-node submission with a doc claiming a
// distributed run (or vice versa) would misreport how the answer was made.
func CacheKey(datasetBytes []byte, spec JobRequest) string {
	dh := sha256.Sum256(datasetBytes)
	h := sha256.New()
	fmt.Fprintf(h, "v4|data=%x|sup=%016x|miner=%s|workers=%d|engine=%s|counter=%s|cluster=%t|deadline=%d|passes=%d|cand=%d|mem=%d",
		dh, math.Float64bits(spec.MinSupport), spec.Miner, spec.Workers, spec.Engine, spec.Counter, spec.Cluster,
		spec.DeadlineMS, spec.MaxPasses, spec.MaxCandidatesPerPass, spec.MaxMemoryBytes)
	return hex.EncodeToString(h.Sum(nil))
}

// cacheEntry is one cached result with its accounted byte size.
type cacheEntry struct {
	key  string
	doc  *ResultDoc
	size int64
}

// resultCache is a byte-size-bounded LRU over complete mining results.
// Partial and failed runs are never cached. The cache is not persisted: a
// restarted daemon re-mines (or resumes) and repopulates it.
type resultCache struct {
	max   int64
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	bytes     int64
	evictions int64
}

// newResultCache builds a cache bounded to max bytes (≤ 0 disables
// caching entirely: Get always misses, Put drops).
func newResultCache(max int64) *resultCache {
	return &resultCache{max: max, ll: list.New(), items: map[string]*list.Element{}}
}

// docSize accounts a result's cache footprint as its JSON encoding length
// plus the key — the same bytes a hit saves the wire, give or take headers.
func docSize(key string, doc *ResultDoc) int64 {
	b, err := json.Marshal(doc)
	if err != nil {
		return int64(len(key)) + 1024 // unreachable: ResultDoc always encodes
	}
	return int64(len(key) + len(b))
}

// get returns the cached result for key and bumps its recency. The caller
// must hold the manager's lock; entries are shared read-only.
func (c *resultCache) get(key string) (*ResultDoc, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).doc, true
}

// minDocSize is a cheap lower bound on docSize — no encoding. Every MFS
// element marshals to at least len(`{"items":[],"support":0}`) bytes plus
// one byte per item, and the fixed fields to more than 64 bytes of JSON
// keys alone; both are deliberately under-counted so the bound can only
// skip the exact accounting when the doc truly cannot fit.
func minDocSize(key string, doc *ResultDoc) int64 {
	size := int64(len(key)) + 64
	for _, m := range doc.MFS {
		size += 20 + int64(len(m.Items))
	}
	return size
}

// put stores a complete result, evicting least-recently-used entries until
// the byte bound holds. A result larger than the whole bound is not stored.
// Puts that can never fit — a disabled cache, or a doc whose cheap size
// lower bound already exceeds the whole bound — return before paying the
// JSON encoding that exact accounting costs.
func (c *resultCache) put(key string, doc *ResultDoc) {
	if c.max <= 0 || minDocSize(key, doc) > c.max {
		return
	}
	size := docSize(key, doc)
	if size > c.max {
		return
	}
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.bytes += size - ent.size
		ent.doc, ent.size = doc, size
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, doc: doc, size: size})
		c.bytes += size
	}
	for c.bytes > c.max {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, ent.key)
		c.bytes -= ent.size
		c.evictions++
	}
}

// len returns the number of cached results.
func (c *resultCache) len() int { return c.ll.Len() }
