package server

import (
	"sync"
	"time"

	"pincer/internal/checkpoint"
	"pincer/internal/cluster"
	"pincer/internal/counting"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
)

// Miner names accepted by JobRequest.Miner. Every miner answers the same
// question — the maximum frequent set at a minimum support — and the
// conformance corpus pins them to identical answers; which one is fastest
// depends on the dataset shape, so the choice is the client's.
const (
	MinerPincer   = "pincer"   // sequential adaptive Pincer-Search
	MinerApriori  = "apriori"  // sequential Apriori baseline
	MinerTopdown  = "topdown"  // pure top-down search (concentrated data only)
	MinerVertical = "vertical" // depth-first maximal Eclat (no database passes)
	MinerParallel = "parallel" // count-distribution parallel Pincer-Search
	MinerFPMax    = "fpmax"    // FP-tree maximal miner (two passes, then in-memory)
	// MinerAuto delegates the whole plan — miner, counter, and counting
	// structure — to the dataset-adaptive policy (counting.SelectEngine),
	// resolved from the dataset's profile on the worker. The resolved plan
	// is recorded in the result doc's "selection" field.
	MinerAuto = "auto"
)

// EngineAuto delegates the counting-engine choice to the dataset-adaptive
// policy. With no miner set it is equivalent to miner=auto (the whole plan
// is delegated); with a fixed level-wise miner only the counting structure
// (and, when unset, the counter) are selected.
const EngineAuto = "auto"

// JobRequest is the body of POST /v1/jobs. Exactly one of DatasetPath and
// Baskets names the database.
type JobRequest struct {
	// DatasetPath is a server-side database file (basket text or the
	// library's binary format, sniffed automatically).
	DatasetPath string `json:"dataset_path,omitempty"`
	// Baskets is an inline database in the basket text format (one
	// transaction of space-separated item ids per line).
	Baskets string `json:"baskets,omitempty"`
	// MinSupport is the fractional minimum support in (0, 1].
	MinSupport float64 `json:"min_support"`
	// Miner selects the algorithm (Miner* constants; default pincer).
	Miner string `json:"miner,omitempty"`
	// Workers is the counting-goroutine count (parallel miner only;
	// 0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Engine selects the support-counting structure: hashtree, list, or
	// trie (pincer, apriori, and parallel; default hashtree).
	Engine string `json:"engine,omitempty"`
	// Counter selects the support-counting strategy: "" or "scan" (database
	// passes) or "tidlist" (vertical tid-list intersection, optionally
	// "tidlist:bitset|list|diffset" to force the representation). Pincer and
	// parallel miners only; the result is identical either way.
	Counter string `json:"counter,omitempty"`
	// Cluster distributes the pincer miner's support counting over the
	// daemon's worker cluster (pincerd -role coordinator -peers ...). The
	// result is byte-identical to a single-node run; the result doc's
	// "cluster" field records the distribution (and any degradation).
	// Requires miner=pincer with a fixed scan counter and engine.
	Cluster bool `json:"cluster,omitempty"`
	// DeadlineMS bounds the mining wall clock in milliseconds; expiry ends
	// the job with its partial anytime result (0 = unlimited).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// MaxPasses bounds the number of database passes (0 = unlimited).
	MaxPasses int `json:"max_passes,omitempty"`
	// MaxCandidatesPerPass bounds any single pass's candidate set
	// (pincer, apriori, parallel; 0 = unlimited).
	MaxCandidatesPerPass int `json:"max_candidates_per_pass,omitempty"`
	// MaxMemoryBytes is the approximate heap ceiling checked at pass
	// boundaries (pincer and parallel; 0 = unlimited).
	MaxMemoryBytes int64 `json:"max_memory_bytes,omitempty"`
}

// normalize fills defaults and validates the request shape (everything that
// can be rejected before touching the dataset). Every rejection is a
// *ValidationError carrying a machine-readable Reason* constant, so clients
// can branch on the failing field without parsing prose.
func (r *JobRequest) normalize() error {
	if r.Miner == "" {
		if r.Engine == EngineAuto {
			// engine=auto with no miner delegates the whole plan.
			r.Miner = MinerAuto
		} else {
			r.Miner = MinerPincer
		}
	}
	switch r.Miner {
	case MinerPincer, MinerApriori, MinerTopdown, MinerVertical, MinerParallel, MinerFPMax, MinerAuto:
	default:
		return invalidf(ReasonBadMiner,
			"unknown miner %q (want pincer, apriori, topdown, vertical, parallel, fpmax, or auto)", r.Miner)
	}
	if (r.DatasetPath == "") == (r.Baskets == "") {
		return invalidf(ReasonBadDataset, "exactly one of dataset_path and baskets is required")
	}
	if r.MinSupport <= 0 || r.MinSupport > 1 {
		return invalidf(ReasonBadSupport, "min_support must be in (0, 1], got %v", r.MinSupport)
	}
	if r.Workers != 0 && r.Miner != MinerParallel {
		return invalidf(ReasonBadWorkers, "workers applies to the parallel miner only, not %q", r.Miner)
	}
	if r.Workers < 0 {
		return invalidf(ReasonBadWorkers, "workers must be ≥ 0, got %d", r.Workers)
	}
	switch {
	case r.Engine == "":
	case r.Engine == EngineAuto:
		switch r.Miner {
		case MinerAuto:
			// miner=auto already delegates everything; canonicalize the
			// engine away so both spellings share one cache key.
			r.Engine = ""
		case MinerPincer, MinerApriori, MinerParallel:
			// Selection applies: these miners make a counting-engine choice.
		default:
			return invalidf(ReasonBadEngine,
				"engine=auto does not apply to the %s miner (it makes no counting-engine choice)", r.Miner)
		}
	default:
		switch r.Miner {
		case MinerTopdown, MinerVertical, MinerFPMax:
			return invalidf(ReasonBadEngine, "engine does not apply to the %s miner", r.Miner)
		case MinerAuto:
			return invalidf(ReasonBadEngine,
				"miner=auto accepts engine \"\" or \"auto\" only: fixing the engine requires fixing the miner")
		}
		if _, err := counting.ParseEngine(r.Engine); err != nil {
			return invalidf(ReasonBadEngine, "%v", err)
		}
	}
	if r.Counter != "" && r.Counter != "scan" {
		switch r.Miner {
		case MinerPincer, MinerParallel:
		default:
			return invalidf(ReasonBadCounter, "counter applies to the pincer and parallel miners only, not %q", r.Miner)
		}
		if _, _, err := counting.ParseCounterSpec(r.Counter); err != nil {
			return invalidf(ReasonBadCounter, "%v", err)
		}
	}
	if r.Cluster {
		if r.Miner != MinerPincer {
			return invalidf(ReasonBadCluster, "cluster applies to the pincer miner only, not %q", r.Miner)
		}
		if r.Counter != "" && r.Counter != "scan" {
			return invalidf(ReasonBadCluster, "cluster counting is scan-based; counter %q does not apply", r.Counter)
		}
		if r.Engine == EngineAuto {
			return invalidf(ReasonBadCluster, "cluster requires a fixed engine, not engine=auto")
		}
	}
	if r.DeadlineMS < 0 || r.MaxPasses < 0 || r.MaxCandidatesPerPass < 0 || r.MaxMemoryBytes < 0 {
		return invalidf(ReasonBadBudget, "budgets must be non-negative")
	}
	return nil
}

// counter parses the (already validated) counter spec.
func (r *JobRequest) counter() (tidlist bool, rep counting.RepMode) {
	tidlist, rep, _ = counting.ParseCounterSpec(r.Counter)
	return tidlist, rep
}

// engine parses the (already validated) engine name.
func (r *JobRequest) engine() counting.Engine {
	if r.Engine == "" {
		return counting.EngineHashTree
	}
	e, _ := counting.ParseEngine(r.Engine)
	return e
}

// deadline returns the run deadline as a duration.
func (r *JobRequest) deadline() time.Duration {
	return time.Duration(r.DeadlineMS) * time.Millisecond
}

// checkpointable reports whether the miner supports pass-barrier
// checkpoints (and therefore restart-resume and anytime status snapshots).
func (r *JobRequest) checkpointable() bool {
	switch r.Miner {
	case MinerPincer, MinerApriori, MinerParallel:
		return true
	case MinerAuto:
		// The resolved plan may be checkpointable; answering true here is
		// conservative — the worker checkpoints iff the resolved miner
		// does, and clearing a checkpoint that was never written is a
		// no-op (FileCheckpointer.Clear tolerates a missing file).
		return true
	}
	return false
}

// Job statuses, in lifecycle order. A job is terminal in StatusDone,
// StatusPartial, StatusCancelled, or StatusFailed; StatusInterrupted marks
// a job whose daemon died (or was killed) mid-mine — its spool entry and
// checkpoint survive, and the next daemon start resumes it.
const (
	StatusQueued      = "queued"
	StatusRunning     = "running"
	StatusDone        = "done"
	StatusPartial     = "partial" // ended early by a deadline or budget; result is the anytime answer
	StatusCancelled   = "cancelled"
	StatusFailed      = "failed"
	StatusInterrupted = "interrupted"
)

// ItemsetDoc is the wire form of one itemset with its support count
// (-1 when the support was not determined, e.g. an anytime snapshot
// element whose count lives only in a pass the job hasn't replayed).
type ItemsetDoc struct {
	Items   []int32 `json:"items"`
	Support int64   `json:"support"`
}

func itemsetDoc(m itemset.Itemset, support int64) ItemsetDoc {
	items := make([]int32, len(m))
	for i, it := range m {
		items[i] = int32(it)
	}
	return ItemsetDoc{Items: items, Support: support}
}

// PartialDoc describes a run that ended early, mirroring
// *mfi.PartialResultError: the reason, the completed passes, and — for
// miners that maintain one — the MFCS upper bound on the true MFS.
type PartialDoc struct {
	Reason string    `json:"reason"`
	Pass   int       `json:"pass"`
	MFCS   [][]int32 `json:"mfcs_upper_bound,omitempty"`
}

// ResultDoc is the body of GET /v1/results/{id}. For a partial run the MFS
// field holds the anytime lower bound (every element is frequent, but more
// or larger maximal sets may exist) and Partial explains the stop.
type ResultDoc struct {
	ID        string `json:"id"`
	Miner     string `json:"miner"`
	Algorithm string `json:"algorithm"`
	Counter   string `json:"counter,omitempty"`
	// Engine is the counting structure the run used, when one applies.
	Engine       string      `json:"engine,omitempty"`
	MinSupport   float64     `json:"min_support"`
	MinCount     int64       `json:"min_count"`
	Transactions int         `json:"transactions"`
	Passes       int         `json:"passes"`
	Candidates   int64       `json:"candidates"`
	DurationNS   int64       `json:"duration_ns"`
	Cached       bool        `json:"cached,omitempty"`
	Partial      *PartialDoc `json:"partial,omitempty"`
	// Selection records the adaptive policy's decision for delegated
	// (miner=auto / engine=auto) jobs; nil for fully fixed plans. Miner
	// still echoes the request ("auto"); Selection.Miner is the plan run.
	Selection *SelectionDoc `json:"selection,omitempty"`
	// Cluster records the distributed-counting run for cluster jobs: shard
	// and RPC accounting, node-loss handling, and whether the run degraded
	// to local counting.
	Cluster *cluster.Doc `json:"cluster,omitempty"`
	MFS     []ItemsetDoc `json:"maximal_frequent_itemsets"`
}

// buildDoc renders a mining result (and the PartialResultError that cut it
// short, if any) into the wire form. sel is the adaptive selection the job
// resolved, nil when nothing was delegated.
func buildDoc(id string, spec JobRequest, sel *SelectionDoc, res *mfi.Result, pe *mfi.PartialResultError) *ResultDoc {
	doc := &ResultDoc{
		ID:           id,
		Miner:        spec.Miner,
		Algorithm:    res.Stats.Algorithm,
		Counter:      spec.Counter,
		Engine:       spec.Engine,
		MinSupport:   spec.MinSupport,
		MinCount:     res.MinCount,
		Transactions: res.NumTransactions,
		Passes:       res.Stats.Passes,
		Candidates:   res.Stats.Candidates,
		DurationNS:   res.Stats.Duration.Nanoseconds(),
		MFS:          make([]ItemsetDoc, 0, len(res.MFS)),
	}
	if sel != nil {
		doc.Counter = sel.Counter
		doc.Engine = sel.Engine
		doc.Selection = sel
	}
	for i, m := range res.MFS {
		doc.MFS = append(doc.MFS, itemsetDoc(m, res.MFSSupports[i]))
	}
	if pe != nil {
		p := &PartialDoc{Reason: pe.Reason, Pass: pe.Pass}
		for _, m := range pe.MFCS {
			p.MFCS = append(p.MFCS, itemsetDoc(m, 0).Items)
		}
		doc.Partial = p
	}
	return doc
}

// JobView is the body of GET /v1/jobs/{id}: the job's lifecycle state plus,
// while a checkpointable miner is running, the anytime snapshot published
// at the last pass barrier — a lower bound on the final MFS.
type JobView struct {
	ID         string  `json:"id"`
	Status     string  `json:"status"`
	Miner      string  `json:"miner"`
	MinSupport float64 `json:"min_support"`
	Cached     bool    `json:"cached,omitempty"`
	Error      string  `json:"error,omitempty"`
	// Pass is the number of pass barriers the running job has checkpointed.
	Pass int `json:"pass,omitempty"`
	// AnytimeMFS holds the maximal itemsets among the frequent sets the
	// running job has discovered so far.
	AnytimeMFS []ItemsetDoc `json:"anytime_mfs,omitempty"`
	// PartialReason is set on terminal jobs that stopped early.
	PartialReason string `json:"partial_reason,omitempty"`
	CreatedAt     string `json:"created_at,omitempty"`
	FinishedAt    string `json:"finished_at,omitempty"`
}

// Job is one mining request moving through the manager. All mutable fields
// are guarded by mu; the immutable identity (ID, Spec, Key) is set before
// the job is shared.
type Job struct {
	ID   string
	Spec JobRequest
	// Key is the content-addressed cache key (dataset SHA-256 + options).
	Key string
	// resume marks a job recovered from the spool at startup: its miner
	// re-enters at the checkpointed pass barrier instead of pass 1.
	resume bool

	// data is the parsed dataset; nil for spool-recovered jobs until the
	// worker re-reads the spec. prof is its shape profile, memoized by the
	// dataset cache at insert time (zero until data is set).
	data *dataset.Dataset
	prof dataset.Profile

	mu          sync.Mutex
	status      string
	err         string
	doc         *ResultDoc
	sel         *SelectionDoc // resolved adaptive plan; nil if nothing delegated
	clusterDoc  *cluster.Doc  // distributed-counting summary; nil off-cluster
	cancel      func()
	cancelAsked bool
	anytimePass int
	anytimeMFS  []ItemsetDoc
	created     time.Time
	finished    time.Time
}

// setStatus transitions the job (no validation: the manager owns the
// lifecycle).
func (j *Job) setStatus(s string) {
	j.mu.Lock()
	j.status = s
	if s != StatusQueued && s != StatusRunning {
		j.finished = time.Now()
	}
	j.mu.Unlock()
}

// Status returns the current status.
func (j *Job) Status() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// requestCancel asks a queued or running job to stop; it reports whether
// the job was still live. The worker observes the context; a queued job is
// finalized by the worker when it reaches the front of the queue.
func (j *Job) requestCancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.status {
	case StatusQueued, StatusRunning:
		j.cancelAsked = true
		if j.cancel != nil {
			j.cancel()
		}
		return true
	}
	return false
}

// view renders the job for the status endpoint.
func (j *Job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:         j.ID,
		Status:     j.status,
		Miner:      j.Spec.Miner,
		MinSupport: j.Spec.MinSupport,
	}
	if !j.created.IsZero() {
		v.CreatedAt = j.created.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
	}
	v.Error = j.err
	if j.doc != nil {
		v.Cached = j.doc.Cached
		if j.doc.Partial != nil {
			v.PartialReason = j.doc.Partial.Reason
		}
	}
	if j.status == StatusRunning {
		v.Pass = j.anytimePass
		v.AnytimeMFS = j.anytimeMFS
	}
	return v
}

// publishAnytime folds a freshly written checkpoint into the job's anytime
// view: the completed passes and the maximal sets among everything the run
// has established as frequent, with supports where the checkpoint carries
// them (singleton counts and the k ≥ 3 support cache; elements whose count
// lives only in the pass-2 triangle report -1).
func (j *Job) publishAnytime(st *checkpoint.State) {
	sets := make([]itemset.Itemset, 0, len(st.MFS)+len(st.AllFrequent))
	sets = append(sets, st.MFS...)
	sets = append(sets, st.AllFrequent...)
	maximal := itemset.MaximalOnly(sets)
	docs := make([]ItemsetDoc, 0, len(maximal))
	for _, m := range maximal {
		support := int64(-1)
		if c, ok := st.Cache[m.Key()]; ok {
			support = c
		} else if len(m) == 1 && int(m[0]) < len(st.ItemCounts) {
			support = st.ItemCounts[m[0]]
		}
		docs = append(docs, itemsetDoc(m, support))
	}
	j.mu.Lock()
	j.anytimePass = st.Stats.Passes
	j.anytimeMFS = docs
	j.mu.Unlock()
}

// snapshotCheckpointer tees every checkpoint into the job's anytime view on
// its way to the durable store, so GET /v1/jobs/{id} can report partial
// progress while the job runs.
type snapshotCheckpointer struct {
	inner checkpoint.Checkpointer
	job   *Job
}

func (s *snapshotCheckpointer) Save(st *checkpoint.State) error {
	if err := s.inner.Save(st); err != nil {
		return err
	}
	s.job.publishAnytime(st)
	return nil
}

func (s *snapshotCheckpointer) Load() (*checkpoint.State, error) { return s.inner.Load() }
func (s *snapshotCheckpointer) Clear() error                     { return s.inner.Clear() }
