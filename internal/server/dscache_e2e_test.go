package server_test

// End-to-end check of the parsed-dataset cache: the same database submitted
// at several thresholds is parsed and profiled once, and the memoized
// profile feeds the adaptive selection of later jobs identically.

import (
	"net/http"
	"testing"

	"pincer/internal/server"
)

func TestE2EDatasetCacheReuse(t *testing.T) {
	srv, hs := newTestServer(t, nil)

	// Three distinct jobs over the same database bytes: different
	// thresholds and a delegated plan, so none is a result-cache hit.
	for _, spec := range []server.JobRequest{
		{Baskets: testBaskets, MinSupport: 0.3},
		{Baskets: testBaskets, MinSupport: 0.4},
		{Baskets: testBaskets, MinSupport: 0.3, Miner: server.MinerAuto},
	} {
		code, v := submit(t, hs.URL, spec)
		if code != http.StatusAccepted {
			t.Fatalf("submit %+v: status %d", spec, code)
		}
		waitStatus(t, hs.URL, v.ID, server.StatusDone)
	}

	snap := srv.Registry().Snapshot()
	if got := snap["pincer_dataset_cache_misses_total"]; got != 1 {
		t.Errorf("dataset cache misses = %d, want 1 (one distinct database)", got)
	}
	if got := snap["pincer_dataset_cache_hits_total"]; got != 2 {
		t.Errorf("dataset cache hits = %d, want 2 (two repeat submissions)", got)
	}
	if got := snap["pincer_dataset_cache_entries"]; got != 1 {
		t.Errorf("dataset cache entries = %d, want 1", got)
	}

	// The delegated job's selection doc carries the memoized profile.
	var doc server.ResultDoc
	code, v := submit(t, hs.URL, server.JobRequest{Baskets: testBaskets, MinSupport: 0.35, Miner: server.MinerAuto})
	if code != http.StatusAccepted {
		t.Fatalf("auto submit: status %d", code)
	}
	waitStatus(t, hs.URL, v.ID, server.StatusDone)
	if code := doJSON(t, http.MethodGet, hs.URL+"/v1/results/"+v.ID, nil, &doc); code != http.StatusOK {
		t.Fatalf("GET result: status %d", code)
	}
	if doc.Selection == nil || doc.Selection.Profile.Transactions != 15 {
		t.Fatalf("selection profile missing or wrong: %+v", doc.Selection)
	}
}
