package server

import (
	"pincer/internal/counting"
	"pincer/internal/dataset"
)

// SelectionDoc records an adaptive engine-selection decision in the result
// document: what the client delegated, the concrete plan the policy chose,
// its one-line rationale, and the dataset profile the decision keyed on.
// The profile is a pure function of the dataset bytes, so a job resumed
// after a daemon restart re-derives the identical plan.
type SelectionDoc struct {
	// Requested names what was delegated: "miner" for miner=auto (the whole
	// plan), "engine" for a fixed level-wise miner with engine=auto.
	Requested string `json:"requested"`
	// Miner, Engine, and Counter are the resolved plan, in the request
	// vocabulary. Engine and Counter are empty where they do not apply
	// (e.g. the vertical and fpmax miners have no counting engine).
	Miner   string `json:"miner"`
	Engine  string `json:"engine,omitempty"`
	Counter string `json:"counter,omitempty"`
	// Rationale is the policy's one-line explanation of the choice.
	Rationale string `json:"rationale,omitempty"`
	// Profile is the dataset profile the policy keyed on.
	Profile dataset.Profile `json:"profile"`
}

// resolveSelection replaces the delegated fields of spec with the adaptive
// policy's concrete plan and returns the decision record; it returns nil —
// and leaves spec untouched — when nothing was delegated. The caller passes
// a copy of the job's spec: the original request (and its spool record and
// cache key) keeps the "auto" spelling. prof is the dataset's profile,
// memoized at dataset-cache-insert time — the policy never re-profiles here.
func resolveSelection(spec *JobRequest, prof dataset.Profile) *SelectionDoc {
	if spec.Miner != MinerAuto && spec.Engine != EngineAuto {
		return nil
	}
	sel := counting.SelectEngine(prof)
	doc := &SelectionDoc{Rationale: sel.Rationale, Profile: prof}
	if spec.Miner == MinerAuto {
		doc.Requested = "miner"
		spec.Miner = sel.Algorithm
		spec.Engine = ""
		spec.Counter = sel.Counter
		switch spec.Miner {
		case MinerPincer, MinerApriori, MinerParallel:
			spec.Engine = sel.Engine.String()
		}
	} else {
		// A fixed level-wise miner delegated only the counting structure.
		doc.Requested = "engine"
		spec.Engine = sel.Engine.String()
		if spec.Counter == "" {
			switch spec.Miner {
			case MinerPincer, MinerParallel:
				spec.Counter = sel.Counter
			}
		}
	}
	doc.Miner, doc.Engine, doc.Counter = spec.Miner, spec.Engine, spec.Counter
	return doc
}
