// Package topdown implements the "pure" top-down search of paper §3.1 as an
// ablation baseline: only Observation 2 (subsets of frequent itemsets are
// frequent) prunes the search. The frontier starts at the full item universe
// and is split one level per infrequent element, exactly the MFCS machinery
// with no bottom-up search feeding it.
//
// The paper argues (and the benchmarks confirm) that this direction alone is
// hopeless when maximal frequent itemsets are short: the frontier must creep
// down level by level from the top. It exists here to quantify that claim
// and to validate the MFCS mechanics in isolation.
package topdown

import (
	"context"
	"time"

	"pincer/internal/counting"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
	"pincer/internal/obsv"
)

// Options configures the top-down miner.
type Options struct {
	// MaxElements aborts the run (returning an error result) when the
	// frontier grows past this size; the pure top-down frontier is
	// exponential on all but the most concentrated databases (0 = unlimited).
	MaxElements int
	// MaxPasses bounds the number of passes (0 = unlimited).
	MaxPasses int
	// Tracer receives per-pass trace events; nil disables tracing (no
	// timestamps are taken).
	Tracer obsv.Tracer
	// Context cancels the run at pass boundaries and inside scan loops;
	// cancellation surfaces as a *mfi.PartialResultError whose MFCS field
	// carries the live frontier joined with the maximal sets found — the
	// top-down upper bound at the moment of interruption.
	Context context.Context
	// Deadline, if positive, bounds the run's wall clock via a timeout
	// context derived from Context.
	Deadline time.Duration
	// CancelCheckEvery is the number of transactions between in-scan
	// context checks (default mfi.DefaultCancelCheckEvery).
	CancelCheckEvery int
}

// DefaultOptions returns a guarded configuration.
func DefaultOptions() Options {
	return Options{MaxElements: 1_000_000}
}

// frontierElement tracks one candidate maximal itemset.
type frontierElement struct {
	set  itemset.Itemset
	bits *itemset.Bitset
}

// Result extends the shared mining result with an abort flag.
type Result struct {
	mfi.Result
	// Aborted reports that the frontier exceeded Options.MaxElements and
	// the MFS is incomplete (a lower set of the true MFS).
	Aborted bool
}

// Mine runs the pure top-down search at a fractional minimum support. A
// non-nil error reports a mid-pass failure re-reading a file-backed
// database (see mfi.RecoverMiningError); in-memory scans cannot fail.
func Mine(sc dataset.Scanner, minSupport float64, opt Options) (*Result, error) {
	return MineCount(sc, dataset.MinCountFor(sc.Len(), minSupport), opt)
}

// MineCount runs the pure top-down search with an absolute threshold.
func MineCount(sc dataset.Scanner, minCount int64, opt Options) (_ *Result, err error) {
	defer mfi.RecoverMiningError(&err)
	ctx := opt.Context
	var cancel context.CancelFunc
	if opt.Deadline > 0 {
		if ctx == nil {
			ctx = context.Background()
		}
		ctx, cancel = context.WithTimeout(ctx, opt.Deadline)
	}
	if cancel != nil {
		defer cancel()
	}
	if ctx != nil && ctx.Done() == nil {
		ctx = nil // uncancellable: skip every check
	}
	start := time.Now()
	res := &Result{Result: mfi.Result{
		MinCount:        minCount,
		NumTransactions: sc.Len(),
	}}
	res.Stats.Algorithm = "topdown"

	tr := opt.Tracer
	if tr != nil {
		tr.RunStart(obsv.RunInfo{
			Algorithm:       res.Stats.Algorithm,
			Workers:         1,
			MinCount:        minCount,
			NumTransactions: sc.Len(),
		})
	}

	n := sc.NumItems()
	mfs := itemset.NewSet(0)
	var mfsBits []*itemset.Bitset
	var mfsSupports []int64
	noteMaximal := func(e *frontierElement, count int64) {
		mfs.AddWithCount(e.set, count)
		mfsBits = append(mfsBits, e.bits)
		mfsSupports = append(mfsSupports, count)
	}
	coveredByMFS := func(b *itemset.Bitset) bool {
		for _, mb := range mfsBits {
			if b.IsSubsetOf(mb) {
				return true
			}
		}
		return false
	}

	frontier := []*frontierElement{}
	if n > 0 {
		u := itemset.Range(0, itemset.Item(n))
		frontier = append(frontier, &frontierElement{set: u, bits: itemset.BitsetOf(n, u)})
	}

	// finish assembles the result from whatever has been discovered so far;
	// it serves both the normal return and the abort recovery below.
	finish := func() {
		res.MFS = itemset.MaximalOnly(mfs.Sorted())
		res.MFSSupports = make([]int64, len(res.MFS))
		for i, m := range res.MFS {
			c, _ := mfs.Count(m)
			res.MFSSupports[i] = c
		}
		res.Frequent = mfs
		res.Stats.Duration = time.Since(start)
	}
	// Cancellation surfaces as an Abort panic from a pass boundary or a
	// mid-scan guard; convert it to a partial result whose MFCS bound is the
	// live frontier joined with the maximal sets already confirmed — every
	// frequent itemset is a subset of one of those.
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		ab := mfi.AbortFrom(r)
		if ab == nil {
			panic(r)
		}
		finish()
		if tr != nil {
			tr.RunDone(obsv.RunSummary{
				Algorithm:  res.Stats.Algorithm,
				Passes:     res.Stats.Passes,
				Candidates: res.Stats.Candidates,
				MFSSize:    len(res.MFS),
				Duration:   res.Stats.Duration,
				Aborted:    true, AbortReason: ab.Reason,
			})
		}
		// An exploded frontier would make the reported bound (and the
		// result document carrying it) arbitrarily large; past maxBound
		// elements collapse it to the frontier's union — every frontier
		// element is a subset of the union, so it stays a valid (coarser)
		// MFCS upper bound.
		const maxBound = 4096
		var bound []itemset.Itemset
		if len(frontier) > maxBound {
			var u itemset.Bitset
			for _, e := range frontier {
				u.Or(e.bits)
			}
			bound = append(bound, u.Items())
		} else {
			bound = make([]itemset.Itemset, 0, len(frontier)+len(res.MFS))
			for _, e := range frontier {
				bound = append(bound, e.set)
			}
		}
		bound = append(bound, res.MFS...)
		err = &mfi.PartialResultError{
			Result: &res.Result, MFCS: itemset.MaximalOnly(bound),
			Pass: res.Stats.Passes, Reason: ab.Reason, Cause: ab.Cause,
		}
	}()

	seen := map[string]bool{}
	for len(frontier) > 0 {
		mfi.CheckContext(ctx)
		if opt.MaxPasses > 0 && res.Stats.Passes >= opt.MaxPasses {
			res.Aborted = true
			break
		}
		// Count the whole frontier in one pass. Frontier elements at the
		// same level form an antichain, so the trie counter is safe.
		sets := make([]itemset.Itemset, len(frontier))
		for i, e := range frontier {
			sets[i] = e.set
		}
		counter := counting.NewTrie(sets)
		add := func(tx itemset.Itemset, _ *itemset.Bitset) { counter.Add(tx) }
		if guard := mfi.NewScanGuard(ctx, opt.CancelCheckEvery); guard != nil {
			inner := add
			add = func(tx itemset.Itemset, bits *itemset.Bitset) {
				guard.Tick()
				inner(tx, bits)
			}
		}
		var scanDur time.Duration
		if tr == nil {
			sc.Scan(add)
		} else {
			t0 := time.Now()
			sc.Scan(add)
			scanDur = time.Since(t0)
		}
		counts := counter.Counts()

		var next []*frontierElement
		mfsFound := 0
		frequentHere := 0
		for i, e := range frontier {
			// The split below runs in memory with no database scan, and on
			// unconcentrated data it builds the next frontier toward
			// MaxElements — far longer than a scan. Without a periodic check
			// a deadline or cancel cannot preempt it.
			if i&0x3ff == 0 {
				mfi.CheckContext(ctx)
			}
			if counts[i] >= minCount {
				frequentHere++
				if !coveredByMFS(e.bits) {
					noteMaximal(e, counts[i])
					mfsFound++
				}
				continue
			}
			// split one level down
			for j := range e.set {
				child := e.set.WithoutIndex(j)
				if len(child) == 0 {
					continue
				}
				key := child.Key()
				if seen[key] {
					continue
				}
				seen[key] = true
				cb := itemset.BitsetOf(n, child)
				if coveredByMFS(cb) {
					continue
				}
				next = append(next, &frontierElement{set: child, bits: cb})
			}
		}
		res.Stats.AddPass(mfi.PassStats{
			Candidates: len(frontier), Frequent: frequentHere, MFSFound: mfsFound,
		})
		if tr != nil {
			p := res.Stats.PassDetails[len(res.Stats.PassDetails)-1]
			// The frontier is this miner's top-down structure; report its
			// post-pass size in the MFCSSize slot.
			tr.PassDone(obsv.PassEvent{
				Algorithm:    res.Stats.Algorithm,
				Pass:         p.Pass,
				Phase:        obsv.PhaseMFCSCount,
				Candidates:   p.Candidates,
				MFCSSize:     len(next),
				Frequent:     p.Frequent,
				Infrequent:   p.Candidates - p.Frequent,
				MFSFound:     p.MFSFound,
				ScanDuration: scanDur,
				Workers:      1,
			})
		}
		if opt.MaxElements > 0 && len(next) > opt.MaxElements {
			res.Aborted = true
			break
		}
		frontier = next
	}

	finish()
	if tr != nil {
		tr.RunDone(obsv.RunSummary{
			Algorithm:  res.Stats.Algorithm,
			Passes:     res.Stats.Passes,
			Candidates: res.Stats.Candidates,
			MFSSize:    len(res.MFS),
			Duration:   res.Stats.Duration,
		})
	}
	return res, nil
}
