package topdown

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"pincer/internal/apriori"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
)

func TestTopDownLongMaximalIsFast(t *testing.T) {
	// The favourable case: the maximal itemset is the (near-)whole universe,
	// so the top-down search finds it immediately.
	d := dataset.Empty(8)
	for i := 0; i < 5; i++ {
		d.Append(itemset.Range(0, 8))
	}
	res := must(MineCount(dataset.NewScanner(d), 3, DefaultOptions()))
	if res.Aborted {
		t.Fatal("aborted")
	}
	if err := mfi.VerifyAgainst(res.MFS, []itemset.Itemset{itemset.Range(0, 8)}); err != nil {
		t.Fatalf("MFS: %v (got %v)", err, res.MFS)
	}
	if res.Stats.Passes != 1 {
		t.Errorf("passes = %d, want 1", res.Stats.Passes)
	}
}

func TestTopDownDescendsLevels(t *testing.T) {
	d := dataset.New([]dataset.Transaction{
		itemset.New(0, 1, 2),
		itemset.New(0, 1, 2),
		itemset.New(0, 3),
		itemset.New(0, 3),
	})
	res := must(MineCount(dataset.NewScanner(d), 2, DefaultOptions()))
	if res.Aborted {
		t.Fatal("aborted")
	}
	want := []itemset.Itemset{itemset.New(0, 1, 2), itemset.New(0, 3)}
	if err := mfi.VerifyAgainst(res.MFS, want); err != nil {
		t.Fatalf("MFS: %v (got %v)", err, res.MFS)
	}
	// universe {0,1,2,3} → level 3 → level 2: at least 3 passes
	if res.Stats.Passes < 3 {
		t.Errorf("passes = %d, want ≥ 3", res.Stats.Passes)
	}
}

func TestTopDownEmptyAndInfrequent(t *testing.T) {
	res := must(MineCount(dataset.NewScanner(dataset.Empty(4)), 1, DefaultOptions()))
	if len(res.MFS) != 0 || res.Aborted {
		t.Fatalf("empty db: MFS=%v aborted=%v", res.MFS, res.Aborted)
	}
	d := dataset.New([]dataset.Transaction{itemset.New(0), itemset.New(1)})
	res = must(MineCount(dataset.NewScanner(d), 2, DefaultOptions()))
	if len(res.MFS) != 0 {
		t.Fatalf("MFS = %v, want empty", res.MFS)
	}
}

func TestTopDownAbortsOnFrontierExplosion(t *testing.T) {
	// Frequent singletons only over a wide universe: the frontier must blow
	// past a tiny element budget on its way down.
	d := dataset.Empty(24)
	for i := 0; i < 24; i++ {
		d.Append(itemset.New(itemset.Item(i)))
		d.Append(itemset.New(itemset.Item(i)))
	}
	opt := Options{MaxElements: 50}
	res := must(MineCount(dataset.NewScanner(d), 2, opt))
	if !res.Aborted {
		t.Fatal("expected abort")
	}
}

func TestTopDownMaxPasses(t *testing.T) {
	d := dataset.New([]dataset.Transaction{itemset.New(0, 1), itemset.New(0, 1), itemset.New(2)})
	opt := DefaultOptions()
	opt.MaxPasses = 1
	res := must(MineCount(dataset.NewScanner(d), 2, opt))
	if !res.Aborted {
		t.Fatal("expected abort after 1 pass")
	}
	if res.Stats.Passes != 1 {
		t.Errorf("passes = %d", res.Stats.Passes)
	}
}

func TestQuickTopDownMatchesApriori(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		universe := 3 + r.Intn(6) // small: the frontier is exponential in it
		numTx := 4 + r.Intn(30)
		d := dataset.Empty(universe)
		for i := 0; i < numTx; i++ {
			n := 1 + r.Intn(universe)
			items := make([]itemset.Item, n)
			for j := range items {
				items[j] = itemset.Item(r.Intn(universe))
			}
			d.Append(itemset.New(items...))
		}
		minCount := int64(1 + r.Intn(numTx/2+1))
		res := must(MineCount(dataset.NewScanner(d), minCount, Options{}))
		if res.Aborted {
			return false
		}
		ares := must(apriori.MineCount(dataset.NewScanner(d), minCount, apriori.DefaultOptions()))
		return mfi.VerifyAgainst(res.MFS, ares.MFS) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// must unwraps the (result, error) mining returns; in-memory test scans
// cannot fail.
func must[R any](res R, err error) R {
	if err != nil {
		panic(err)
	}
	return res
}

// TestDeadlinePreemptsSplit pins the preemption bound the load harness
// exposed: between database scans the miner splits the frontier in memory,
// and on unconcentrated data that split — not the scan — is where the time
// goes (a 48-item universe held a deadline off for ~50s). The split loop
// must poll the context so an expired deadline surfaces as a partial
// result promptly instead of after the frontier finishes exploding.
func TestDeadlinePreemptsSplit(t *testing.T) {
	// One duplicated 22-item transaction with an unreachable support: every
	// level of the lattice splits, so the run is almost entirely split-loop
	// work. Unlimited MaxElements keeps the frontier guard from ending the
	// run before the deadline check would.
	d := dataset.Empty(22)
	d.Append(itemset.Range(0, 22))
	d.Append(itemset.Range(0, 22))
	opt := Options{Deadline: 100 * time.Millisecond}
	type out struct {
		res *Result
		err error
	}
	ch := make(chan out, 1)
	go func() {
		res, err := MineCount(dataset.NewScanner(d), 3, opt)
		ch <- out{res, err}
	}()
	select {
	case o := <-ch:
		var pe *mfi.PartialResultError
		if !errors.As(o.err, &pe) {
			t.Fatalf("err = %v, want PartialResultError", o.err)
		}
		if pe.Reason != mfi.ReasonDeadline {
			t.Errorf("reason = %q, want %q", pe.Reason, mfi.ReasonDeadline)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("deadline did not preempt the frontier split within 15s")
	}
}
