package loadgen

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"pincer/internal/cluster"
	"pincer/internal/faultinject"
)

// LocalCluster runs n in-process cluster counting workers for self-contained
// distributed-mining load runs. Each worker is a real HTTP server on its own
// loopback port with a faultinject.NodeKill wired into its fault seams, so
// the chaos harness can crash workers at pass barriers or mid-scan and
// revive them, while the pool's heartbeat/retry/reassignment machinery keeps
// the daemon's cluster jobs byte-identical to single-node runs.
type LocalCluster struct {
	servers []*http.Server
	kills   []*faultinject.NodeKill
	pool    *cluster.Pool

	mu     sync.Mutex
	victim int
}

// StartLocalCluster boots n workers and a started pool over them. The
// caller wires Pool() into server.Config.Cluster and must Close the cluster
// after the daemon is done with it.
func StartLocalCluster(n int, logf func(format string, args ...interface{})) (*LocalCluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("loadgen: cluster needs at least 1 worker, got %d", n)
	}
	lc := &LocalCluster{}
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		nk := &faultinject.NodeKill{}
		w := cluster.NewWorker(cluster.WorkerConfig{
			ID:        fmt.Sprintf("local%d", i),
			Down:      nk.Down,
			CountHook: func(*cluster.CountRequest) error { return nk.CountHook() },
			// Streamed delta counts share the kill tripwire with job counts,
			// so an armed crash lands on whichever RPC type arrives next.
			StreamCountHook: func(*cluster.StreamCountRequest) error { return nk.CountHook() },
			TxHook:    nk.TxHook,
			Logf:      logf,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			lc.Close()
			return nil, err
		}
		hs := &http.Server{Handler: w, ReadHeaderTimeout: 5 * time.Second}
		go hs.Serve(ln)
		lc.servers = append(lc.servers, hs)
		lc.kills = append(lc.kills, nk)
		addrs = append(addrs, "http://"+ln.Addr().String())
	}
	pool, err := cluster.NewPool(addrs, cluster.PoolConfig{
		HeartbeatInterval: 100 * time.Millisecond,
		// Generous: a kill is detected by RPC exhaustion within one pass;
		// the liveness deadline only has to catch silent deaths, and a tight
		// one misdeclares every worker dead under race-detector stalls.
		LivenessDeadline: 5 * time.Second,
		Logf:             logf,
	})
	if err != nil {
		lc.Close()
		return nil, err
	}
	pool.Start()
	lc.pool = pool
	return lc, nil
}

// Pool returns the started worker pool for server.Config.Cluster.
func (lc *LocalCluster) Pool() *cluster.Pool { return lc.pool }

// Workers returns the worker count.
func (lc *LocalCluster) Workers() int { return len(lc.kills) }

// ChaosTick is one worker-kill chaos step, shaped for ChaosConfig.KillWorker:
// it revives every downed worker (a crashed process restarted — the
// coordinator re-seeds its shards on demand), then arms a kill on the next
// victim round-robin, alternating pass-barrier crashes (down at its next
// count RPC) with mid-scan crashes (down seven transactions into it).
func (lc *LocalCluster) ChaosTick(tick int) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	for _, k := range lc.kills {
		k.Revive()
	}
	k := lc.kills[lc.victim%len(lc.kills)]
	lc.victim++
	if tick%2 == 0 {
		k.Arm(1, 0) // pass-barrier crash
	} else {
		k.Arm(1, 7) // mid-scan crash
	}
}

// ReviveAll brings every worker back up (end-of-run cleanup so the drain
// window finishes at full capacity).
func (lc *LocalCluster) ReviveAll() {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	for _, k := range lc.kills {
		k.Revive()
	}
}

// Close stops the pool and every worker server.
func (lc *LocalCluster) Close() error {
	if lc.pool != nil {
		lc.pool.Close()
	}
	var firstErr error
	for _, hs := range lc.servers {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := hs.Shutdown(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
		cancel()
	}
	return firstErr
}
