package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"pincer/internal/obsv"
	"pincer/internal/server"
)

// recorder accumulates per-endpoint latency histograms (the obsv
// log-bucketed histogram, the same structure the daemon's own HTTP metrics
// use) and a status-code taxonomy.
type recorder struct {
	mu        sync.Mutex
	endpoints map[string]*endpointRec
}

type endpointRec struct {
	hist      obsv.Histogram
	codes     map[string]int64
	transport int64
}

func newRecorder() *recorder {
	return &recorder{endpoints: map[string]*endpointRec{}}
}

func (r *recorder) endpoint(name string) *endpointRec {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.endpoints[name]
	if !ok {
		e = &endpointRec{codes: map[string]int64{}}
		r.endpoints[name] = e
	}
	return e
}

// record notes one completed request.
func (r *recorder) record(name string, code int, d time.Duration) {
	e := r.endpoint(name)
	e.hist.Observe(d)
	r.mu.Lock()
	e.codes[fmt.Sprint(code)]++
	r.mu.Unlock()
}

// transportError notes a request that never produced a status code (a
// connection refused/reset — routine while the chaos knob holds the
// daemon down).
func (r *recorder) transportError(name string) {
	e := r.endpoint(name)
	r.mu.Lock()
	e.transport++
	r.mu.Unlock()
}

// client is the load generator's HTTP job client. The base URL is held in
// an atomic so a chaos restart can repoint every worker mid-run.
type client struct {
	hc         *http.Client
	base       atomic.Value // string
	rec        *recorder
	deadlineMS int64 // per-job mining deadline stamped on every submit
}

func newClient(baseURL string, hc *http.Client, rec *recorder) *client {
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	c := &client{hc: hc, rec: rec}
	c.base.Store(baseURL)
	return c
}

func (c *client) baseURL() string     { return c.base.Load().(string) }
func (c *client) setBase(base string) { c.base.Store(base) }

// do performs one request, records it under endpoint, and decodes the JSON
// response into out when non-nil. A nil error with code 0 never happens:
// transport failures return the error.
func (c *client) do(endpoint, method, path string, body, out interface{}) (int, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.baseURL()+path, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	start := time.Now()
	resp, err := c.hc.Do(req)
	if err != nil {
		c.rec.transportError(endpoint)
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	c.rec.record(endpoint, resp.StatusCode, time.Since(start))
	if err != nil {
		return resp.StatusCode, err
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, fmt.Errorf("loadgen: decode %s %s: %w", method, path, err)
		}
	}
	return resp.StatusCode, nil
}

func (c *client) submit(cell Cell) (int, server.JobView, error) {
	spec := server.JobRequest{
		Baskets:    cell.Baskets,
		MinSupport: cell.MinSupport,
		Miner:      cell.Miner,
		Engine:     cell.Engine,
		Workers:    cell.Workers,
		DeadlineMS: c.deadlineMS,
	}
	var v server.JobView
	code, err := c.do("submit", http.MethodPost, "/v1/jobs", spec, &v)
	return code, v, err
}

func (c *client) status(id string) (int, server.JobView, error) {
	var v server.JobView
	code, err := c.do("status", http.MethodGet, "/v1/jobs/"+id, nil, &v)
	return code, v, err
}

func (c *client) cancel(id string) (int, error) {
	return c.do("cancel", http.MethodDelete, "/v1/jobs/"+id, nil, nil)
}

func (c *client) result(id string) (int, *server.ResultDoc, error) {
	var doc server.ResultDoc
	code, err := c.do("result", http.MethodGet, "/v1/results/"+id, nil, &doc)
	return code, &doc, err
}
