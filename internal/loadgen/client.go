package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pincer/internal/obsv"
	"pincer/internal/server"
)

// recorder accumulates per-endpoint latency histograms (the obsv
// log-bucketed histogram, the same structure the daemon's own HTTP metrics
// use) and a status-code taxonomy.
type recorder struct {
	mu        sync.Mutex
	endpoints map[string]*endpointRec
}

type endpointRec struct {
	hist      obsv.Histogram
	codes     map[string]int64
	transport int64
}

func newRecorder() *recorder {
	return &recorder{endpoints: map[string]*endpointRec{}}
}

func (r *recorder) endpoint(name string) *endpointRec {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.endpoints[name]
	if !ok {
		e = &endpointRec{codes: map[string]int64{}}
		r.endpoints[name] = e
	}
	return e
}

// record notes one completed request.
func (r *recorder) record(name string, code int, d time.Duration) {
	e := r.endpoint(name)
	e.hist.Observe(d)
	r.mu.Lock()
	e.codes[fmt.Sprint(code)]++
	r.mu.Unlock()
}

// transportError notes a request that never produced a status code (a
// connection refused/reset — routine while the chaos knob holds the
// daemon down).
func (r *recorder) transportError(name string) {
	e := r.endpoint(name)
	r.mu.Lock()
	e.transport++
	r.mu.Unlock()
}

// client is the load generator's HTTP job client. The base URL is held in
// an atomic so a chaos restart can repoint every worker mid-run.
type client struct {
	hc         *http.Client
	base       atomic.Value // string
	rec        *recorder
	deadlineMS int64 // per-job mining deadline stamped on every submit
}

func newClient(baseURL string, hc *http.Client, rec *recorder) *client {
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	c := &client{hc: hc, rec: rec}
	c.base.Store(baseURL)
	return c
}

func (c *client) baseURL() string     { return c.base.Load().(string) }
func (c *client) setBase(base string) { c.base.Store(base) }

// parseRetryAfter reads a backpressure response's Retry-After header
// (seconds form only — the daemon never emits the HTTP-date form). 0 means
// "no server guidance": absent header, unparsable value, or a status that
// carries no backoff semantics.
func parseRetryAfter(resp *http.Response) time.Duration {
	if resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode != http.StatusServiceUnavailable {
		return 0
	}
	s := resp.Header.Get("Retry-After")
	if s == "" {
		return 0
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0
	}
	return time.Duration(n) * time.Second
}

// do performs one request, records it under endpoint, and decodes the JSON
// response into out when non-nil. A nil error with code 0 never happens:
// transport failures return the error. The duration is the server's
// Retry-After guidance on backpressure responses (0 otherwise).
func (c *client) do(endpoint, method, path string, body, out interface{}) (int, time.Duration, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, 0, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.baseURL()+path, rd)
	if err != nil {
		return 0, 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	start := time.Now()
	resp, err := c.hc.Do(req)
	if err != nil {
		c.rec.transportError(endpoint)
		return 0, 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	c.rec.record(endpoint, resp.StatusCode, time.Since(start))
	retryAfter := parseRetryAfter(resp)
	if err != nil {
		return resp.StatusCode, retryAfter, err
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, retryAfter, fmt.Errorf("loadgen: decode %s %s: %w", method, path, err)
		}
	}
	return resp.StatusCode, retryAfter, nil
}

func (c *client) submit(cell Cell) (int, server.JobView, time.Duration, error) {
	spec := server.JobRequest{
		Baskets:    cell.Baskets,
		MinSupport: cell.MinSupport,
		Miner:      cell.Miner,
		Engine:     cell.Engine,
		Workers:    cell.Workers,
		Cluster:    cell.Cluster,
		DeadlineMS: c.deadlineMS,
	}
	var v server.JobView
	code, retryAfter, err := c.do("submit", http.MethodPost, "/v1/jobs", spec, &v)
	return code, v, retryAfter, err
}

func (c *client) status(id string) (int, server.JobView, time.Duration, error) {
	var v server.JobView
	code, retryAfter, err := c.do("status", http.MethodGet, "/v1/jobs/"+id, nil, &v)
	return code, v, retryAfter, err
}

func (c *client) cancel(id string) (int, error) {
	code, _, err := c.do("cancel", http.MethodDelete, "/v1/jobs/"+id, nil, nil)
	return code, err
}

func (c *client) result(id string) (int, *server.ResultDoc, error) {
	var doc server.ResultDoc
	code, _, err := c.do("result", http.MethodGet, "/v1/results/"+id, nil, &doc)
	return code, &doc, err
}
