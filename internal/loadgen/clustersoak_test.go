package loadgen

// The cluster-chaos regression: the chaos knob crashes a counting worker on
// every tick — at a pass barrier on even ticks, mid-scan on odd ones — while
// the mix drives distributed ("cluster") cells alongside local miners. The
// coordinator must detect each kill by RPC exhaustion, reassign the dead
// worker's shards to survivors at the pass barrier, and (below quorum) fall
// back to local counting — so the assertions are the same durability
// contract as the restart soak: no accepted job is lost, and every complete
// result is byte-identical to the sequential reference, kills included.

import (
	"context"
	"testing"
	"time"

	"pincer/internal/server"
)

func TestSoakClusterWorkerKills(t *testing.T) {
	if testing.Short() {
		t.Skip("soak run is several seconds of wall clock")
	}
	lc, err := StartLocalCluster(2, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	d, err := StartLocal(server.Config{
		SpoolDir:  t.TempDir(),
		Workers:   2,
		QueueSize: 16,
		Cluster:   lc.Pool(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	ds := GenerateDatasets(2, 33)
	cells := BuildCells(ds, []float64{0.25, 0.5},
		[]string{"cluster", server.MinerApriori}, 0)
	rep, err := Run(context.Background(), Config{
		BaseURL:       d.URL(),
		Cells:         cells,
		Concurrency:   6,
		Duration:      2500 * time.Millisecond,
		ResubmitRatio: 0.3,
		Seed:          17,
		Verify:        true,
		Chaos: &ChaosConfig{
			Interval:   400 * time.Millisecond,
			KillWorker: lc.ChaosTick,
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("cluster soak: %d requests, jobs %+v", rep.Requests, rep.Jobs)

	// The durability contract under worker loss: no accepted job vanished...
	if rep.Jobs.Lost != 0 {
		t.Errorf("lost %d jobs across worker kills: %v", rep.Jobs.Lost, rep.Jobs.LostIDs)
	}
	if rep.Jobs.Failed != 0 {
		t.Errorf("%d jobs failed across worker kills", rep.Jobs.Failed)
	}
	// ...and no reassigned or degraded job's answer drifted from the
	// sequential reference.
	if len(rep.Jobs.Divergent) != 0 {
		t.Errorf("results diverged from the sequential reference: %v", rep.Jobs.Divergent)
	}
	if rep.Jobs.Done == 0 {
		t.Error("cluster soak completed no jobs")
	}
	if rep.Jobs.Verified == 0 {
		t.Error("cluster soak verified no results")
	}
}

func TestChaosConfigValidation(t *testing.T) {
	base := Config{BaseURL: "http://x", Cells: []Cell{{}}, Duration: time.Second}

	c := base
	c.Chaos = &ChaosConfig{Interval: time.Second}
	if _, err := c.withDefaults(); err == nil {
		t.Error("ChaosConfig with neither Restart nor KillWorker passed validation")
	}

	c = base
	c.Chaos = &ChaosConfig{Interval: time.Second, KillWorker: func(int) {}}
	if _, err := c.withDefaults(); err != nil {
		t.Errorf("KillWorker-only ChaosConfig rejected: %v", err)
	}

	c = base
	c.Chaos = &ChaosConfig{KillWorker: func(int) {}}
	if _, err := c.withDefaults(); err == nil {
		t.Error("ChaosConfig without Interval passed validation")
	}
}
