package loadgen

import (
	"math/rand"
	"net/http"
	"testing"
	"time"
)

func TestParseRetryAfter(t *testing.T) {
	resp := func(code int, header string) *http.Response {
		r := &http.Response{StatusCode: code, Header: http.Header{}}
		if header != "" {
			r.Header.Set("Retry-After", header)
		}
		return r
	}
	cases := []struct {
		code   int
		header string
		want   time.Duration
	}{
		{http.StatusTooManyRequests, "3", 3 * time.Second},
		{http.StatusServiceUnavailable, "1", time.Second},
		{http.StatusTooManyRequests, "", 0},     // absent: caller falls back
		{http.StatusTooManyRequests, "soon", 0}, // unparsable
		{http.StatusTooManyRequests, "0", 0},    // non-positive
		{http.StatusTooManyRequests, "-2", 0},   // non-positive
		{http.StatusOK, "5", 0},                 // no backoff semantics on 200
		{http.StatusNotFound, "5", 0},           // nor on 404
	}
	for _, tc := range cases {
		if got := parseRetryAfter(resp(tc.code, tc.header)); got != tc.want {
			t.Errorf("parseRetryAfter(%d, %q) = %v, want %v", tc.code, tc.header, got, tc.want)
		}
	}
}

// TestBackoffDelay pins the jitter envelope: with server guidance the wait
// lands in [0.75, 1.25) of the advertised duration — long enough to respect
// the hint, spread enough that rejected clients do not return in lockstep —
// and without guidance the caller's fallback passes through untouched.
func TestBackoffDelay(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const retryAfter = 4 * time.Second
	lo, hi := retryAfter*3/4, retryAfter*5/4
	seen := map[time.Duration]bool{}
	for i := 0; i < 1000; i++ {
		d := backoffDelay(rng, retryAfter, time.Millisecond)
		if d < lo || d > hi {
			t.Fatalf("backoffDelay = %v outside [%v, %v]", d, lo, hi)
		}
		seen[d] = true
	}
	if len(seen) < 100 {
		t.Errorf("only %d distinct delays in 1000 draws; jitter is not spreading", len(seen))
	}
	if d := backoffDelay(rng, 0, 7*time.Millisecond); d != 7*time.Millisecond {
		t.Errorf("no-guidance fallback = %v, want 7ms", d)
	}
}
