package loadgen

// The request mix. A load run drives the daemon with a cross product of
// Quest-generated datasets × a minimum-support grid × miner engines — the
// request shape Heaton (arXiv:1701.09042) predicts is the hard one, since
// mining cost varies by orders of magnitude with dataset density and
// support threshold, and the multilevel-threshold workloads of
// arXiv:1209.6297 (repeated mines over one database at varying minsup)
// are exactly what the resubmit ratio replays against the result cache.

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"pincer/internal/apriori"
	"pincer/internal/dataset"
	"pincer/internal/quest"
	"pincer/internal/server"
)

// Dataset is one generated database of the mix.
type Dataset struct {
	Name    string
	Baskets string
}

// Cell is one workload cell: a dataset mined at one support by one miner.
// Repeats of a cell after its first completion are answered by the
// daemon's result cache, so the resubmit ratio controls the cache-hit
// share of the mix.
type Cell struct {
	Dataset    string
	Baskets    string
	MinSupport float64
	Miner      string
	// Engine is the counting-engine request ("auto" delegates the choice
	// to the daemon's adaptive policy); empty for the miner's default.
	Engine  string
	Workers int
	// Cluster submits the job with "cluster": true, distributing its
	// support counting over the daemon's worker cluster.
	Cluster bool
}

// Name renders the cell for reports and logs.
func (c Cell) Name() string {
	miner := c.Miner
	if c.Engine != "" {
		miner += "/" + c.Engine
	}
	if c.Cluster {
		miner += "+cluster"
	}
	return fmt.Sprintf("%s/s=%g/%s", c.Dataset, c.MinSupport, miner)
}

// GenerateDatasets builds n Quest databases of rising density: later
// datasets draw longer transactions from a smaller item universe, so their
// low-minsup cells are the expensive tail of the mix while the early
// sparse ones stay cheap.
func GenerateDatasets(n int, seed int64) []Dataset {
	out := make([]Dataset, 0, n)
	for i := 0; i < n; i++ {
		items := 72 - 12*i
		if items < 24 {
			items = 24
		}
		p := quest.Params{
			NumTransactions: 600 + 400*i,
			AvgTxLen:        6 + 3*float64(i),
			AvgPatternLen:   3 + float64(i),
			NumPatterns:     20 + 10*i,
			NumItems:        items,
			Seed:            seed + int64(i),
		}
		d := quest.Generate(p)
		var buf bytes.Buffer
		if err := dataset.WriteBasket(&buf, d); err != nil {
			panic(fmt.Sprintf("loadgen: encode generated dataset: %v", err)) // unreachable: bytes.Buffer never errors
		}
		out = append(out, Dataset{
			Name:    fmt.Sprintf("mix%d-%s", i, p.Name()),
			Baskets: buf.String(),
		})
	}
	return out
}

// BuildCells crosses datasets × minsups × miners into the request mix.
// A miner entry may carry an engine after a slash — "pincer/auto" submits
// the pincer miner with the counting engine delegated to the daemon's
// adaptive policy; the bare "auto" delegates the whole plan, and "cluster"
// submits the pincer miner with its support counting distributed over the
// daemon's worker cluster. workers is applied to parallel-miner cells only.
func BuildCells(ds []Dataset, minsups []float64, miners []string, workers int) []Cell {
	cells := make([]Cell, 0, len(ds)*len(minsups)*len(miners))
	for _, d := range ds {
		for _, s := range minsups {
			for _, m := range miners {
				c := Cell{Dataset: d.Name, Baskets: d.Baskets, MinSupport: s, Miner: m}
				if m == "cluster" {
					c.Miner, c.Cluster = server.MinerPincer, true
				} else if miner, engine, ok := strings.Cut(m, "/"); ok {
					c.Miner, c.Engine = miner, engine
				}
				if c.Miner == server.MinerParallel {
					c.Workers = workers
				}
				cells = append(cells, c)
			}
		}
	}
	return cells
}

// sigLine renders one maximal itemset with its support in the canonical
// comparison form shared by server results and sequential references.
func sigLine(items []int64, support int64) string {
	parts := make([]string, len(items))
	for i, it := range items {
		parts[i] = fmt.Sprint(it)
	}
	return strings.Join(parts, " ") + "=" + fmt.Sprint(support)
}

// Signature canonicalizes a result document's MFS (items and supports,
// sorted) for divergence checks against the sequential reference.
func Signature(doc *server.ResultDoc) string {
	lines := make([]string, 0, len(doc.MFS))
	for _, m := range doc.MFS {
		items := make([]int64, len(m.Items))
		for i, it := range m.Items {
			items[i] = int64(it)
		}
		lines = append(lines, sigLine(items, m.Support))
	}
	sort.Strings(lines)
	return strings.Join(lines, ";")
}

// ReferenceSignature mines the cell's database sequentially (Apriori, the
// baseline every miner is conformance-pinned to) and canonicalizes the
// answer. Every complete result the daemon hands back for the same
// (dataset, minsup) must match it byte for byte, whatever miner ran it and
// however many restarts interrupted it.
func ReferenceSignature(baskets string, minSupport float64) (string, error) {
	d, err := dataset.ReadBasket(strings.NewReader(baskets))
	if err != nil {
		return "", fmt.Errorf("loadgen: reference dataset: %w", err)
	}
	opt := apriori.DefaultOptions()
	opt.KeepFrequent = false
	res, err := apriori.MineCount(dataset.NewScanner(d), dataset.MinCountFor(d.Len(), minSupport), opt)
	if err != nil {
		return "", fmt.Errorf("loadgen: reference mine: %w", err)
	}
	lines := make([]string, 0, len(res.MFS))
	for i, m := range res.MFS {
		items := make([]int64, len(m))
		for j, it := range m {
			items[j] = int64(it)
		}
		lines = append(lines, sigLine(items, res.MFSSupports[i]))
	}
	sort.Strings(lines)
	return strings.Join(lines, ";"), nil
}
