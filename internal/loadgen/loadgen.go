// Package loadgen is the load-generation and soak harness for the pincerd
// mining service. It drives a daemon (a live process or an in-process
// LocalDaemon) with a configurable request mix — Quest datasets × a
// minimum-support grid × miners — in closed loop (N clients, each
// submit → poll-until-terminal → repeat) or open loop (a fixed arrival
// rate, concurrency unbounded), with tunable resubmit and cancel ratios to
// exercise the result cache and the DELETE path.
//
// Every request is timed into per-endpoint log-bucketed histograms
// (internal/obsv, the same structure behind the daemon's own
// pincer_http_request_seconds), every response lands in a status-code
// taxonomy, and every accepted job is tracked to a terminal state — the
// run fails loudly if a job is lost. A chaos knob kill-restarts the daemon
// mid-burst on an interval, leaning on the spool-resume path; Verify then
// checks every complete result against a sequential reference mine.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"pincer/internal/server"
)

// Config configures one load run.
type Config struct {
	// BaseURL targets the daemon, e.g. "http://127.0.0.1:8080". Required.
	BaseURL string
	// Client overrides the HTTP client (default: 30s total timeout).
	Client *http.Client
	// Cells is the request mix (see BuildCells). Required.
	Cells []Cell
	// Concurrency is the closed-loop client count (default 8). Ignored in
	// open-loop mode.
	Concurrency int
	// RateHz switches to open-loop mode: submissions arrive at this fixed
	// rate regardless of completions, so the queue — not the client —
	// absorbs overload. 0 keeps the closed loop.
	RateHz float64
	// Duration is the submission window; accepted jobs are drained past
	// it. Required.
	Duration time.Duration
	// ResubmitRatio is the probability a request replays an
	// already-submitted cell (a likely cache hit) instead of picking any
	// cell (default 0.3).
	ResubmitRatio float64
	// CancelRatio is the probability an accepted job is immediately
	// DELETEd (default 0).
	CancelRatio float64
	// PollInterval spaces the per-job status polls (default 5ms).
	PollInterval time.Duration
	// DrainTimeout bounds the post-window wait for accepted jobs to reach
	// a terminal state (default 60s); a job still live after it counts as
	// lost.
	DrainTimeout time.Duration
	// JobDeadline, when set, stamps a deadline_ms on every submitted job:
	// a cell that is pathological for its miner (the mining cost across a
	// dataset × support × miner mix spans orders of magnitude) ends as a
	// partial anytime answer instead of wedging a worker past the drain
	// window.
	JobDeadline time.Duration
	// Seed makes the mix deterministic: equal configs replay the same
	// request sequence per client.
	Seed int64
	// Verify re-mines every distinct (dataset, minsup) sequentially and
	// diffs each complete result against it.
	Verify bool
	// Chaos, when set, kill-restarts the daemon on an interval during the
	// submission window.
	Chaos *ChaosConfig
	// Streams opens this many incremental stream maintainers
	// (POST /v1/streams) alongside the job mix, each fed stocks-generated
	// batches with explicit sequence numbers through the window. Under
	// Verify each stream's final maintained MFS is diffed against a
	// sequential reference mine of the delivered transactions.
	Streams int
	// StreamBatches is how many batches each stream appends (default 12).
	StreamBatches int
	// StreamBatchTx is the trading days per stream batch (default 40).
	StreamBatchTx int
	// StreamCluster opens every stream with "cluster": true, so each
	// delta's verification counting fans out over the daemon's attached
	// worker pool. The daemon must have a cluster or stream opens are
	// rejected.
	StreamCluster bool
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...interface{})
}

// ChaosConfig is the soak mode's fault knob. At least one of Restart and
// KillWorker must be set; both together restart the daemon and kill a
// cluster worker on every tick.
type ChaosConfig struct {
	// Interval between chaos ticks (required).
	Interval time.Duration
	// MaxRestarts bounds the number of daemon restarts (0 = until the
	// window closes). Worker kills are not bounded by it.
	MaxRestarts int
	// Restart, when set, must stop the daemon the hard way (abort: running
	// jobs keep their checkpoints, the spool keeps the queue) and start a
	// fresh generation on the same spool, returning its base URL.
	Restart func() (string, error)
	// KillWorker, when set, receives each chaos tick (0, 1, 2, ...) and
	// must crash a cluster counting worker — at a pass barrier on even
	// ticks, mid-scan on odd ones (see LocalCluster.ChaosTick). The
	// coordinator's retry/reassignment machinery must keep every job's
	// result byte-identical to an uninterrupted single-node run.
	KillWorker func(tick int)
}

func (c Config) withDefaults() (Config, error) {
	if c.BaseURL == "" {
		return c, errors.New("loadgen: Config.BaseURL is required")
	}
	if len(c.Cells) == 0 {
		return c, errors.New("loadgen: Config.Cells is empty")
	}
	if c.Duration <= 0 {
		return c, errors.New("loadgen: Config.Duration is required")
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.ResubmitRatio == 0 {
		c.ResubmitRatio = 0.3
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 5 * time.Millisecond
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 60 * time.Second
	}
	if c.Chaos != nil && (c.Chaos.Interval <= 0 || (c.Chaos.Restart == nil && c.Chaos.KillWorker == nil)) {
		return c, errors.New("loadgen: ChaosConfig needs Interval and at least one of Restart and KillWorker")
	}
	if c.Streams < 0 {
		return c, errors.New("loadgen: Config.Streams must be >= 0")
	}
	if c.Streams > 0 {
		if c.StreamBatches <= 0 {
			c.StreamBatches = 12
		}
		if c.StreamBatchTx <= 0 {
			c.StreamBatchTx = 40
		}
	}
	return c, nil
}

// trackedJob is one accepted (202) job followed to its terminal state.
type trackedJob struct {
	id            string
	cellIdx       int
	cancelAsked   bool
	status        string // terminal status, "" while live
	partialReason string
	sig           string // result signature when status == done
}

// runner is one load run's shared state.
type runner struct {
	cfg Config
	cli *client
	rec *recorder

	mu           sync.Mutex
	submitted    []int
	submittedSet map[int]bool
	tracked      map[string]*trackedJob
	cacheHits    int64
	restarts     int

	// streams is the stream mix's workers, fixed before the run's
	// goroutines start and read back after they settle.
	streams []*streamRun
}

func (r *runner) logf(format string, args ...interface{}) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// Run executes one load run and returns its report. The context cancels
// the run early (the report covers what ran).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rec := newRecorder()
	r := &runner{
		cfg:          cfg,
		rec:          rec,
		cli:          newClient(cfg.BaseURL, cfg.Client, rec),
		submittedSet: map[int]bool{},
		tracked:      map[string]*trackedJob{},
	}
	r.cli.deadlineMS = int64(cfg.JobDeadline / time.Millisecond)

	loadCtx, cancelLoad := context.WithTimeout(ctx, cfg.Duration)
	defer cancelLoad()
	drainCtx, cancelDrain := context.WithTimeout(ctx, cfg.Duration+cfg.DrainTimeout)
	defer cancelDrain()

	start := time.Now()
	var wg sync.WaitGroup
	if cfg.Chaos != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.chaosLoop(loadCtx)
		}()
	}
	if cfg.Streams > 0 {
		r.streamLoop(loadCtx, drainCtx, &wg)
	}
	if cfg.RateHz > 0 {
		r.openLoop(loadCtx, drainCtx, &wg)
	} else {
		r.closedLoop(loadCtx, drainCtx, &wg)
	}
	wg.Wait()
	elapsed := time.Since(start)
	r.logf("load window + drain took %v", elapsed)

	rep := r.buildReport(elapsed)
	if cfg.Verify {
		r.verify(rep)
		if rep.Streams != nil {
			r.verifyStreams(rep)
		}
	}
	return rep, nil
}

// closedLoop runs Concurrency clients, each submit → follow → repeat.
func (r *runner) closedLoop(loadCtx, drainCtx context.Context, wg *sync.WaitGroup) {
	for i := 0; i < r.cfg.Concurrency; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(r.cfg.Seed + int64(i)))
			for loadCtx.Err() == nil {
				r.oneOp(rng, drainCtx)
			}
		}(i)
	}
}

// openLoop submits at a fixed arrival rate; each arrival is followed to
// its terminal state by its own goroutine.
func (r *runner) openLoop(loadCtx, drainCtx context.Context, wg *sync.WaitGroup) {
	interval := time.Duration(float64(time.Second) / r.cfg.RateHz)
	if interval <= 0 {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var n int64
	for {
		select {
		case <-loadCtx.Done():
			return
		case <-ticker.C:
			n++
			wg.Add(1)
			go func(n int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(r.cfg.Seed + 7919*n))
				r.oneOp(rng, drainCtx)
			}(n)
		}
	}
}

// chaosLoop injects one fault per Interval while the window is open: a
// cluster-worker kill (KillWorker), a daemon restart (Restart), or both.
func (r *runner) chaosLoop(loadCtx context.Context) {
	ticker := time.NewTicker(r.cfg.Chaos.Interval)
	defer ticker.Stop()
	restartsDone := false
	for tick := 0; ; tick++ {
		select {
		case <-loadCtx.Done():
			return
		case <-ticker.C:
		}
		if r.cfg.Chaos.KillWorker != nil {
			r.cfg.Chaos.KillWorker(tick)
			r.logf("chaos: tick %d worker kill armed", tick)
		}
		if r.cfg.Chaos.Restart == nil || restartsDone {
			if r.cfg.Chaos.KillWorker == nil {
				return
			}
			continue
		}
		r.mu.Lock()
		restartsDone = r.cfg.Chaos.MaxRestarts > 0 && r.restarts >= r.cfg.Chaos.MaxRestarts
		r.mu.Unlock()
		if restartsDone {
			continue
		}
		base, err := r.cfg.Chaos.Restart()
		if err != nil {
			r.logf("chaos: restart failed: %v", err)
			restartsDone = true
			continue
		}
		r.cli.setBase(base)
		r.mu.Lock()
		r.restarts++
		n := r.restarts
		r.mu.Unlock()
		r.logf("chaos: restart %d complete, daemon back at %s", n, base)
	}
}

// pickCell picks the next cell: with probability ResubmitRatio a replay of
// an already-submitted cell (exercising the result cache), otherwise any
// cell of the mix.
func (r *runner) pickCell(rng *rand.Rand) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.submitted) > 0 && rng.Float64() < r.cfg.ResubmitRatio {
		return r.submitted[rng.Intn(len(r.submitted))]
	}
	idx := rng.Intn(len(r.cfg.Cells))
	if !r.submittedSet[idx] {
		r.submittedSet[idx] = true
		r.submitted = append(r.submitted, idx)
	}
	return idx
}

// oneOp performs one submit and, when accepted, follows the job to a
// terminal state (optionally cancelling it first).
func (r *runner) oneOp(rng *rand.Rand, drainCtx context.Context) {
	idx := r.pickCell(rng)
	code, view, retryAfter, err := r.cli.submit(r.cfg.Cells[idx])
	if err != nil {
		// Transport failure: routine while a chaos restart holds the
		// daemon down; back off briefly and let the loop retry.
		sleepCtx(drainCtx, 20*time.Millisecond)
		return
	}
	switch code {
	case http.StatusOK: // cache hit: terminal on arrival
		r.mu.Lock()
		r.cacheHits++
		r.mu.Unlock()
	case http.StatusAccepted:
		t := &trackedJob{id: view.ID, cellIdx: idx}
		r.mu.Lock()
		r.tracked[view.ID] = t
		r.mu.Unlock()
		if r.cfg.CancelRatio > 0 && rng.Float64() < r.cfg.CancelRatio {
			r.cli.cancel(view.ID)
			r.mu.Lock()
			t.cancelAsked = true
			r.mu.Unlock()
		}
		r.follow(drainCtx, rng, t)
	case http.StatusTooManyRequests:
		sleepCtx(drainCtx, backoffDelay(rng, retryAfter, time.Duration(2+rng.Intn(8))*time.Millisecond))
	case http.StatusServiceUnavailable:
		// The daemon is shutting down under chaos; wait out the restart.
		sleepCtx(drainCtx, backoffDelay(rng, retryAfter, 20*time.Millisecond))
	}
}

// backoffDelay turns the server's Retry-After guidance into a wait: the
// advertised duration jittered to [0.75, 1.25) so a herd of rejected clients
// does not return in lockstep and re-saturate the queue in one instant. With
// no guidance (retryAfter 0) the caller's fallback applies unchanged.
func backoffDelay(rng *rand.Rand, retryAfter, fallback time.Duration) time.Duration {
	if retryAfter <= 0 {
		return fallback
	}
	return retryAfter*3/4 + time.Duration(rng.Int63n(int64(retryAfter/2)+1))
}

// terminalStatuses are the states a followed job can rest in. Note that
// StatusInterrupted is NOT terminal: it marks a job parked by a daemon
// abort, which the next generation resumes from the spool.
var terminalStatuses = map[string]bool{
	server.StatusDone:      true,
	server.StatusPartial:   true,
	server.StatusCancelled: true,
	server.StatusFailed:    true,
}

// follow polls the job until it reaches a terminal state (or the drain
// window closes — the job then counts as lost). Transport errors and 404s
// during a chaos restart are retried: the job's spool entry guarantees the
// next daemon generation knows it. A backpressured poll (the per-remote
// in-flight cap answers 429) waits out the server's Retry-After guidance
// with jitter instead of hammering on at the fixed poll interval.
func (r *runner) follow(drainCtx context.Context, rng *rand.Rand, t *trackedJob) {
	for {
		code, view, retryAfter, err := r.cli.status(t.id)
		if err == nil && code == http.StatusOK && terminalStatuses[view.Status] {
			r.finishTracked(t, view)
			return
		}
		if !sleepCtx(drainCtx, backoffDelay(rng, retryAfter, r.cfg.PollInterval)) {
			return // drain window closed: left non-terminal, reported lost
		}
	}
}

// finishTracked records a followed job's terminal state and, for complete
// results, fetches and canonicalizes the result document.
func (r *runner) finishTracked(t *trackedJob, view server.JobView) {
	sig := ""
	if view.Status == server.StatusDone {
		if code, doc, err := r.cli.result(t.id); err == nil && code == http.StatusOK {
			sig = Signature(doc)
		}
	}
	r.mu.Lock()
	t.status = view.Status
	t.partialReason = view.PartialReason
	t.sig = sig
	r.mu.Unlock()
}

// sleepCtx sleeps d unless ctx ends first; it reports whether the context
// is still live.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return ctx.Err() == nil
	}
}

// verify diffs every complete result against the sequential reference of
// its (dataset, minsup), filling the report's Verified/Divergent fields.
func (r *runner) verify(rep *Report) {
	refs := map[string]string{} // dataset|minsup → reference signature
	refKey := func(c Cell) string { return c.Dataset + "|" + fmt.Sprint(c.MinSupport) }
	r.mu.Lock()
	jobs := make([]*trackedJob, 0, len(r.tracked))
	for _, t := range r.tracked {
		jobs = append(jobs, t)
	}
	r.mu.Unlock()
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].id < jobs[j].id })
	for _, t := range jobs {
		if t.status != server.StatusDone || t.sig == "" {
			continue
		}
		cell := r.cfg.Cells[t.cellIdx]
		key := refKey(cell)
		want, ok := refs[key]
		if !ok {
			var err error
			want, err = ReferenceSignature(cell.Baskets, cell.MinSupport)
			if err != nil {
				rep.Jobs.Divergent = append(rep.Jobs.Divergent,
					fmt.Sprintf("%s (%s): reference failed: %v", t.id, cell.Name(), err))
				continue
			}
			refs[key] = want
		}
		if t.sig != want {
			rep.Jobs.Divergent = append(rep.Jobs.Divergent,
				fmt.Sprintf("%s (%s): result diverges from sequential reference", t.id, cell.Name()))
			continue
		}
		rep.Jobs.Verified++
	}
}
