package loadgen

// The e2e saturation test: 64 closed-loop clients against a deliberately
// under-provisioned daemon (2 workers, queue of 4). The contract under
// overload is graceful degradation — a bounded-queue 429, never a 5xx,
// never a lost job — and full recovery: once the burst drains, the queue
// gauge must read zero again.

import (
	"context"
	"testing"
	"time"

	"pincer/internal/server"
)

func TestSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation run is 5s of wall clock")
	}
	d, err := StartLocal(server.Config{SpoolDir: t.TempDir(), Workers: 2, QueueSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	ds := GenerateDatasets(2, 11)
	cells := BuildCells(ds, []float64{0.2, 0.4},
		[]string{server.MinerPincer, server.MinerApriori, server.MinerParallel}, 2)
	rep, err := Run(context.Background(), Config{
		BaseURL:       d.URL(),
		Cells:         cells,
		Concurrency:   64,
		Duration:      5 * time.Second,
		ResubmitRatio: 0.3,
		CancelRatio:   0.1,
		Seed:          5,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("saturation: %d requests (%.0f rps), codes %v, jobs %+v",
		rep.Requests, rep.ThroughputRPS, rep.Codes, rep.Jobs)

	// Overload must express itself as 429s, never as 5xx.
	for code, n := range rep.Codes {
		if code[0] == '5' {
			t.Errorf("saw %d responses with status %s under saturation", n, code)
		}
	}
	if rep.TransportErrors != 0 {
		t.Errorf("%d transport errors without chaos enabled", rep.TransportErrors)
	}
	// 64 clients vs 2 workers: the queue must have pushed back at least once.
	if rep.Codes["429"] == 0 {
		t.Error("64 clients against queue of 4 never saw a 429")
	}
	// Every accepted job reached a terminal state inside the drain window.
	if rep.Jobs.Lost != 0 {
		t.Errorf("lost %d jobs: %v", rep.Jobs.Lost, rep.Jobs.LostIDs)
	}
	if rep.Jobs.Failed != 0 {
		t.Errorf("%d jobs failed under saturation", rep.Jobs.Failed)
	}
	if rep.Jobs.Accepted == 0 && rep.Jobs.CacheHits == 0 {
		t.Error("saturation run completed no work at all")
	}

	// After the drain the queue gauge must be back at zero.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if depth := d.Server().Registry().Snapshot()["pincer_queue_depth"]; depth == 0 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("queue gauge stuck at %d after drain", depth)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
