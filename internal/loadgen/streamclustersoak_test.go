package loadgen

// The stream-cluster soak: clustered incremental streams run alongside a
// job mix that includes distributed ("cluster") cells, while the chaos knob
// crashes a counting worker on every tick — at a pass barrier on even
// ticks, mid-scan on odd ones. Every stream's delta verification counting
// fans out over the same worker pool the kills target, so worker deaths
// land mid-delta as well as mid-job. The assertions compose the streaming
// durability contract with the cluster failure model: no stream fails or
// diverges from its sequential reference, no job is lost, and every
// clustered answer stays byte-identical to a single-node mine — kills
// included.

import (
	"context"
	"testing"
	"time"

	"pincer/internal/server"
)

func TestSoakStreamCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("soak run is several seconds of wall clock")
	}
	lc, err := StartLocalCluster(2, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	d, err := StartLocal(server.Config{
		SpoolDir:  t.TempDir(),
		Workers:   2,
		QueueSize: 16,
		Cluster:   lc.Pool(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	ds := GenerateDatasets(1, 33)
	cells := BuildCells(ds, []float64{0.4}, []string{"cluster", server.MinerApriori}, 0)
	rep, err := Run(context.Background(), Config{
		BaseURL:       d.URL(),
		Cells:         cells,
		Concurrency:   2,
		Duration:      2500 * time.Millisecond,
		Seed:          17,
		Verify:        true,
		Streams:       3, // covers both spec shapes: append-only/scan and windowed/tidlist
		StreamBatches: 8,
		StreamBatchTx: 30,
		StreamCluster: true,
		Chaos: &ChaosConfig{
			Interval:   500 * time.Millisecond,
			KillWorker: lc.ChaosTick,
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Streams == nil {
		t.Fatal("run produced no streams report")
	}
	t.Logf("stream-cluster soak: streams %+v, jobs %+v", rep.Streams, rep.Jobs)

	// The composed contract: every clustered stream survived the worker
	// kills with a consistent maintainer...
	if len(rep.Streams.Failed) != 0 {
		t.Errorf("streams failed across worker kills: %v", rep.Streams.Failed)
	}
	if rep.Streams.Batches == 0 {
		t.Error("stream-cluster soak applied no batches")
	}
	// ...every maintained MFS matches an uninterrupted from-scratch mine
	// of the delivered (window-surviving) transactions...
	if len(rep.Streams.Divergent) != 0 {
		t.Errorf("maintained MFS diverged from the sequential reference: %v", rep.Streams.Divergent)
	}
	if want := int64(rep.Streams.Streams); rep.Streams.Verified != want {
		t.Errorf("verified %d streams, want %d", rep.Streams.Verified, want)
	}
	// ...and every stream really ran in cluster mode rather than silently
	// degrading to a local spec.
	if rep.Streams.Clustered != rep.Streams.Streams {
		t.Errorf("%d of %d streams report cluster accounting", rep.Streams.Clustered, rep.Streams.Streams)
	}
	// The distributed job mix must stay healthy with the kills landing on
	// its workers too.
	if rep.Jobs.Lost != 0 || rep.Jobs.Failed != 0 || len(rep.Jobs.Divergent) != 0 {
		t.Errorf("job mix degraded: %+v", rep.Jobs)
	}
}
