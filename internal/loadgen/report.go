package loadgen

import (
	"fmt"
	"sort"
	"time"

	"pincer/internal/server"
)

// Report is one load run's result document — the shape cmd/pincerload
// writes to BENCH_serve_load.json.
type Report struct {
	Target          string  `json:"target"`
	Mode            string  `json:"mode"` // "closed" or "open"
	DurationSeconds float64 `json:"duration_seconds"`
	Concurrency     int     `json:"concurrency,omitempty"`
	RateHz          float64 `json:"rate_hz,omitempty"`
	Cells           int     `json:"cells"`
	ResubmitRatio   float64 `json:"resubmit_ratio"`
	CancelRatio     float64 `json:"cancel_ratio"`

	Requests        int64            `json:"requests"`
	ThroughputRPS   float64          `json:"throughput_rps"`
	TransportErrors int64            `json:"transport_errors"`
	Codes           map[string]int64 `json:"codes"`

	Endpoints map[string]*EndpointReport `json:"endpoints"`

	Jobs          JobsReport     `json:"jobs"`
	Streams       *StreamsReport `json:"streams,omitempty"`
	ChaosRestarts int            `json:"chaos_restarts,omitempty"`
}

// StreamsReport accounts for the stream mix: every opened stream must end
// with its maintained MFS matching the client-side mirror — through chaos
// restarts included — so Failed and Divergent must stay empty.
type StreamsReport struct {
	Streams    int      `json:"streams"`
	Batches    int64    `json:"batches"`
	Duplicates int64    `json:"duplicates,omitempty"`
	Retries    int64    `json:"retries,omitempty"`
	FastPath   int64    `json:"fast_path"`
	Remines    int64    `json:"remines"`
	Clustered  int      `json:"clustered,omitempty"`
	Failed     []string `json:"failed,omitempty"`
	Verified   int64    `json:"verified,omitempty"`
	Divergent  []string `json:"divergent,omitempty"`
}

// EndpointReport is one endpoint's latency and status-code breakdown.
type EndpointReport struct {
	Requests        int64            `json:"requests"`
	Codes           map[string]int64 `json:"codes"`
	TransportErrors int64            `json:"transport_errors,omitempty"`
	P50Ms           float64          `json:"p50_ms"`
	P95Ms           float64          `json:"p95_ms"`
	P99Ms           float64          `json:"p99_ms"`
	MaxMs           float64          `json:"max_ms"`
}

// JobsReport accounts for every accepted job: each one must land in
// exactly one terminal bucket or the Lost column, which a healthy run
// keeps at zero — through chaos restarts included.
type JobsReport struct {
	Accepted  int64    `json:"accepted"`
	CacheHits int64    `json:"cache_hits"`
	Done      int64    `json:"done"`
	Partial   int64    `json:"partial"`
	Cancelled int64    `json:"cancelled"`
	Failed    int64    `json:"failed"`
	Lost      int64    `json:"lost"`
	LostIDs   []string `json:"lost_ids,omitempty"`
	Verified  int64    `json:"verified,omitempty"`
	Divergent []string `json:"divergent,omitempty"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// buildReport snapshots the recorder and job tracker into a Report.
func (r *runner) buildReport(elapsed time.Duration) *Report {
	rep := &Report{
		Target:          r.cfg.BaseURL,
		Mode:            "closed",
		DurationSeconds: elapsed.Seconds(),
		Concurrency:     r.cfg.Concurrency,
		Cells:           len(r.cfg.Cells),
		ResubmitRatio:   r.cfg.ResubmitRatio,
		CancelRatio:     r.cfg.CancelRatio,
		Codes:           map[string]int64{},
		Endpoints:       map[string]*EndpointReport{},
	}
	if r.cfg.RateHz > 0 {
		rep.Mode = "open"
		rep.RateHz = r.cfg.RateHz
		rep.Concurrency = 0
	}

	r.rec.mu.Lock()
	for name, e := range r.rec.endpoints {
		er := &EndpointReport{
			Requests:        e.hist.Count(),
			Codes:           map[string]int64{},
			TransportErrors: e.transport,
			P50Ms:           ms(e.hist.Quantile(0.50)),
			P95Ms:           ms(e.hist.Quantile(0.95)),
			P99Ms:           ms(e.hist.Quantile(0.99)),
			MaxMs:           ms(e.hist.Max()),
		}
		for code, n := range e.codes {
			er.Codes[code] = n
			rep.Codes[code] += n
		}
		rep.Requests += er.Requests
		rep.TransportErrors += e.transport
		rep.Endpoints[name] = er
	}
	r.rec.mu.Unlock()
	if elapsed > 0 {
		rep.ThroughputRPS = float64(rep.Requests) / elapsed.Seconds()
	}

	r.mu.Lock()
	rep.ChaosRestarts = r.restarts
	rep.Jobs.CacheHits = r.cacheHits
	rep.Jobs.Accepted = int64(len(r.tracked))
	for id, t := range r.tracked {
		switch t.status {
		case server.StatusDone:
			rep.Jobs.Done++
		case server.StatusPartial:
			rep.Jobs.Partial++
		case server.StatusCancelled:
			rep.Jobs.Cancelled++
		case server.StatusFailed:
			rep.Jobs.Failed++
		default: // never reached a terminal state inside the drain window
			rep.Jobs.Lost++
			rep.Jobs.LostIDs = append(rep.Jobs.LostIDs, id)
		}
	}
	r.mu.Unlock()
	sort.Strings(rep.Jobs.LostIDs)

	if r.streams != nil {
		sr := &StreamsReport{Streams: len(r.streams)}
		for i, s := range r.streams {
			sr.Batches += s.batches
			sr.Duplicates += s.duplicates
			sr.Retries += s.retries
			sr.FastPath += s.view.FastPath
			sr.Remines += s.view.Remines
			if s.view.Cluster {
				sr.Clustered++
			}
			if s.failed != "" {
				sr.Failed = append(sr.Failed, fmt.Sprintf("stream %d (%s): %s", i, s.id, s.failed))
			}
		}
		rep.Streams = sr
	}
	return rep
}
