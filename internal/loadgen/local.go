package loadgen

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"pincer/internal/server"
)

// LocalDaemon runs a pincerd server in-process for self-contained load
// runs and soak tests. Its Restart method is shaped for ChaosConfig: it
// aborts the current generation the way SIGINT does (running jobs park as
// interrupted, checkpoints and spool entries stay) and brings up a fresh
// server on the same spool directory, so a chaos restart exercises the
// real resume path end to end.
type LocalDaemon struct {
	cfg server.Config

	mu   sync.Mutex
	srv  *server.Server
	hs   *http.Server
	addr string // the bound host:port, kept stable across restarts
}

// StartLocal boots the first generation on 127.0.0.1:0.
func StartLocal(cfg server.Config) (*LocalDaemon, error) {
	d := &LocalDaemon{cfg: cfg}
	if err := d.start("127.0.0.1:0"); err != nil {
		return nil, err
	}
	return d, nil
}

func (d *LocalDaemon) start(addr string) error {
	srv, err := server.New(d.cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil && addr != "127.0.0.1:0" {
		// The old port is briefly unavailable (a straggling accept);
		// fall back to a fresh one — the chaos callback hands the new base
		// URL to the clients either way.
		ln, err = net.Listen("tcp", "127.0.0.1:0")
	}
	if err != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Abort(ctx)
		return err
	}
	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	go hs.Serve(ln)
	d.mu.Lock()
	d.srv, d.hs, d.addr = srv, hs, ln.Addr().String()
	d.mu.Unlock()
	return nil
}

// URL returns the current generation's base URL.
func (d *LocalDaemon) URL() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return "http://" + d.addr
}

// Server returns the current generation's server (for metrics probes).
func (d *LocalDaemon) Server() *server.Server {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.srv
}

// stop tears down the current generation: in-flight connections are cut
// and the mining manager is aborted, leaving checkpoints behind.
func (d *LocalDaemon) stop() error {
	d.mu.Lock()
	srv, hs := d.srv, d.hs
	d.srv, d.hs = nil, nil
	d.mu.Unlock()
	if hs != nil {
		hs.Close()
	}
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Abort(ctx); err != nil {
			return fmt.Errorf("loadgen: abort daemon: %w", err)
		}
	}
	return nil
}

// Restart kill-restarts the daemon on the same spool and returns the new
// generation's base URL. It is the ChaosConfig.Restart implementation.
func (d *LocalDaemon) Restart() (string, error) {
	if err := d.stop(); err != nil {
		return "", err
	}
	d.mu.Lock()
	addr := d.addr
	d.mu.Unlock()
	if err := d.start(addr); err != nil {
		return "", err
	}
	return d.URL(), nil
}

// Close stops the daemon for good.
func (d *LocalDaemon) Close() error {
	return d.stop()
}
