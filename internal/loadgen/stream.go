package loadgen

// The stream mix. Alongside the job mix a load run can hold N incremental
// streams open against POST /v1/streams — each a live stocks-feed dataset
// whose batches arrive through the submission window with explicit
// sequence numbers, so a retry across a chaos kill-restart is acknowledged
// as a duplicate instead of double-applied. Each worker mirrors the
// transactions it delivered (window-trimmed, exactly as the maintainer
// evicts); at the end of the run the stream's maintained MFS is read back
// and — under Verify — diffed against a sequential reference mine of the
// mirror, proving the maintainer crossed every restart with no lost and no
// double-counted batch.

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"pincer/internal/dataset"
	"pincer/internal/incremental"
	"pincer/internal/server"
	"pincer/internal/stocks"
)

// streamRun is one stream worker's accounting. Until the run's WaitGroup
// settles only its own goroutine touches it; buildReport and verify read it
// afterwards.
type streamRun struct {
	spec       server.StreamRequest
	id         string
	batches    int64    // batches acknowledged (fresh or duplicate)
	duplicates int64    // retries acknowledged as already-applied
	retries    int64    // transport errors, 429s and 503s waited out
	lines      []string // mirror: one basket line per delivered transaction
	failed     string   // harness-side failure, "" while healthy
	view       server.StreamView
	sig        string // final maintained-MFS signature
}

func (sr *streamRun) failf(format string, args ...interface{}) {
	sr.failed = fmt.Sprintf(format, args...)
}

// streamSpec shapes stream i of the mix: even streams append-only with the
// default scan counter, odd streams windowed (so eviction is live in the
// back half of the run) counting deltas against tid-lists.
func streamSpec(i int, cfg Config) server.StreamRequest {
	spec := server.StreamRequest{MinSupport: 0.3, Workers: 1, Cluster: cfg.StreamCluster}
	if i%2 == 1 {
		spec.Counter = incremental.CounterTidList
		spec.Window = cfg.StreamBatchTx * (cfg.StreamBatches/2 + 1)
		spec.Workers = 2
	}
	return spec
}

// streamLoop launches one worker per configured stream; they run alongside
// the job mix and the chaos loop, so kill-restarts land mid-batch.
func (r *runner) streamLoop(loadCtx, drainCtx context.Context, wg *sync.WaitGroup) {
	r.streams = make([]*streamRun, r.cfg.Streams)
	for i := 0; i < r.cfg.Streams; i++ {
		sr := &streamRun{spec: streamSpec(i, r.cfg)}
		r.streams[i] = sr
		wg.Add(1)
		go func(i int, sr *streamRun) {
			defer wg.Done()
			r.runStream(loadCtx, drainCtx, i, sr)
		}(i, sr)
	}
}

// runStream feeds one stream through the window: open, append
// StreamBatches stocks-feed batches on a fixed cadence, then read the final
// status and maintained MFS back. Every request retries through transport
// errors and 503s — the signature of a chaos restart holding the daemon
// down — with the explicit seq making batch retries idempotent.
func (r *runner) runStream(loadCtx, drainCtx context.Context, idx int, sr *streamRun) {
	rng := rand.New(rand.NewSource(r.cfg.Seed + 104729*int64(idx+1)))
	feed, err := stocks.NewFeed(stocks.Params{Seed: r.cfg.Seed + int64(idx)})
	if err != nil {
		sr.failf("stocks feed: %v", err)
		return
	}

	for {
		code, view, retryAfter, err := r.cli.streamOpen(sr.spec)
		if err == nil && code == http.StatusCreated {
			sr.id = view.ID
			break
		}
		if err == nil && code != http.StatusTooManyRequests && code != http.StatusServiceUnavailable {
			sr.failf("stream open rejected with %d", code)
			return
		}
		sr.retries++
		if !sleepCtx(drainCtx, backoffDelay(rng, retryAfter, 20*time.Millisecond)) {
			sr.failf("drain window closed before the stream opened")
			return
		}
	}
	r.logf("stream %d open as %s (window %d, counter %q)", idx, sr.id, sr.spec.Window, sr.spec.Counter)

	pace := r.cfg.Duration / time.Duration(r.cfg.StreamBatches+1)
	seq := int64(1)
	for b := 0; b < r.cfg.StreamBatches; b++ {
		txs := feed.NextBatch(r.cfg.StreamBatchTx)
		lines := basketLines(txs)
		if len(txs) == 0 {
			break // feed exhausted
		}
		if len(lines) > 0 {
			req := server.BatchRequest{Baskets: strings.Join(lines, "\n") + "\n", Seq: seq}
			for {
				code, delta, retryAfter, err := r.cli.streamBatch(sr.id, req)
				if err == nil && code == http.StatusOK {
					sr.batches++
					if delta.Duplicate {
						sr.duplicates++
					}
					break
				}
				if err == nil && code != http.StatusTooManyRequests && code != http.StatusServiceUnavailable {
					sr.failf("batch %d rejected with %d", seq, code)
					return
				}
				// The batch may have been journaled before the failure; the
				// explicit seq turns the retry into a duplicate ack.
				sr.retries++
				if !sleepCtx(drainCtx, backoffDelay(rng, retryAfter, 20*time.Millisecond)) {
					sr.failf("drain window closed with batch %d unacknowledged", seq)
					return
				}
			}
			sr.lines = append(sr.lines, lines...)
			if w := sr.spec.Window; w > 0 && len(sr.lines) > w {
				sr.lines = sr.lines[len(sr.lines)-w:] // front eviction, as the maintainer does
			}
			seq++
		}
		if b < r.cfg.StreamBatches-1 && !sleepCtx(loadCtx, pace) {
			break // submission window closed: verify the prefix delivered so far
		}
	}
	if seq == 1 {
		sr.failf("no batches delivered")
		return
	}

	// Final read-back. An interrupted status is transient under chaos (the
	// next generation replays the journal), so wait it out like a 503.
	for {
		code, view, retryAfter, err := r.cli.streamStatus(sr.id)
		if err == nil && code == http.StatusOK && !view.Interrupted {
			sr.view = view
			break
		}
		if err == nil && code == http.StatusNotFound {
			sr.failf("stream vanished before the final status read")
			return
		}
		sr.retries++
		if !sleepCtx(drainCtx, backoffDelay(rng, retryAfter, 20*time.Millisecond)) {
			sr.failf("drain window closed before a clean final status")
			return
		}
	}
	if sr.view.Seq != seq-1 {
		sr.failf("server applied %d batches, client delivered %d", sr.view.Seq, seq-1)
		return
	}
	if sr.view.Transactions != len(sr.lines) {
		sr.failf("server holds %d transactions, client delivered %d", sr.view.Transactions, len(sr.lines))
		return
	}
	for {
		code, doc, retryAfter, err := r.cli.streamMFS(sr.id)
		if err == nil && code == http.StatusOK {
			sr.sig = streamSignature(doc)
			break
		}
		sr.retries++
		if !sleepCtx(drainCtx, backoffDelay(rng, retryAfter, 20*time.Millisecond)) {
			sr.failf("drain window closed before the final MFS read")
			return
		}
	}
}

// basketLines renders a feed batch as basket text lines, one transaction
// per line. Empty baskets (a day no stock rose) are dropped: the text
// format cannot carry them, so the mirror drops them identically.
func basketLines(txs []dataset.Transaction) []string {
	lines := make([]string, 0, len(txs))
	for _, tx := range txs {
		if len(tx) == 0 {
			continue
		}
		parts := make([]string, len(tx))
		for i, it := range tx {
			parts[i] = fmt.Sprint(it)
		}
		lines = append(lines, strings.Join(parts, " "))
	}
	return lines
}

// streamSignature canonicalizes a maintained MFS document in the same form
// Signature and ReferenceSignature use for job results.
func streamSignature(doc server.StreamMFSDoc) string {
	lines := make([]string, 0, len(doc.MFS))
	for _, m := range doc.MFS {
		items := make([]int64, len(m.Items))
		for i, it := range m.Items {
			items[i] = int64(it)
		}
		lines = append(lines, sigLine(items, m.Support))
	}
	sort.Strings(lines)
	return strings.Join(lines, ";")
}

// verifyStreams diffs every healthy stream's maintained MFS against a
// sequential reference mine of its mirror — what an uninterrupted
// from-scratch mine of exactly the delivered (and surviving) transactions
// would answer.
func (r *runner) verifyStreams(rep *Report) {
	for i, sr := range r.streams {
		if sr.failed != "" {
			continue
		}
		baskets := strings.Join(sr.lines, "\n") + "\n"
		want, err := ReferenceSignature(baskets, sr.spec.MinSupport)
		if err != nil {
			rep.Streams.Divergent = append(rep.Streams.Divergent,
				fmt.Sprintf("stream %d (%s): reference failed: %v", i, sr.id, err))
			continue
		}
		if sr.sig != want {
			rep.Streams.Divergent = append(rep.Streams.Divergent,
				fmt.Sprintf("stream %d (%s): maintained MFS diverges from sequential reference", i, sr.id))
			continue
		}
		rep.Streams.Verified++
	}
}

// Stream client methods, recorded under the daemon's own route vocabulary.

func (c *client) streamOpen(spec server.StreamRequest) (int, server.StreamView, time.Duration, error) {
	var v server.StreamView
	code, retryAfter, err := c.do("stream_submit", http.MethodPost, "/v1/streams", spec, &v)
	return code, v, retryAfter, err
}

func (c *client) streamBatch(id string, req server.BatchRequest) (int, server.StreamDeltaDoc, time.Duration, error) {
	var d server.StreamDeltaDoc
	code, retryAfter, err := c.do("stream_batch", http.MethodPost, "/v1/streams/"+id+"/batches", req, &d)
	return code, d, retryAfter, err
}

func (c *client) streamStatus(id string) (int, server.StreamView, time.Duration, error) {
	var v server.StreamView
	code, retryAfter, err := c.do("stream_status", http.MethodGet, "/v1/streams/"+id, nil, &v)
	return code, v, retryAfter, err
}

func (c *client) streamMFS(id string) (int, server.StreamMFSDoc, time.Duration, error) {
	var doc server.StreamMFSDoc
	code, retryAfter, err := c.do("stream_mfs", http.MethodGet, "/v1/streams/"+id+"/mfs", nil, &doc)
	return code, doc, retryAfter, err
}
