package loadgen

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"pincer/internal/server"
)

func TestGenerateDatasetsDeterministic(t *testing.T) {
	a := GenerateDatasets(3, 42)
	b := GenerateDatasets(3, 42)
	if len(a) != 3 {
		t.Fatalf("got %d datasets, want 3", len(a))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Baskets != b[i].Baskets {
			t.Errorf("dataset %d differs between equal-seed generations", i)
		}
		if a[i].Baskets == "" {
			t.Errorf("dataset %d is empty", i)
		}
	}
	c := GenerateDatasets(3, 43)
	if c[0].Baskets == a[0].Baskets {
		t.Error("different seeds produced identical baskets")
	}
}

func TestBuildCells(t *testing.T) {
	ds := GenerateDatasets(2, 1)
	minsups := []float64{0.2, 0.4}
	miners := []string{server.MinerPincer, server.MinerParallel}
	cells := BuildCells(ds, minsups, miners, 4)
	if len(cells) != len(ds)*len(minsups)*len(miners) {
		t.Fatalf("got %d cells, want %d", len(cells), len(ds)*len(minsups)*len(miners))
	}
	for _, c := range cells {
		if c.Miner == server.MinerParallel && c.Workers != 4 {
			t.Errorf("parallel cell %s has workers %d, want 4", c.Name(), c.Workers)
		}
		if c.Miner != server.MinerParallel && c.Workers != 0 {
			t.Errorf("sequential cell %s has workers %d, want 0", c.Name(), c.Workers)
		}
	}
}

func TestReferenceSignature(t *testing.T) {
	// {1,2} appears in 3 of 4 transactions, {3} in 2: at 50% support the
	// maximal frequent itemsets are {1 2} (support 3) and {3} (support 2).
	baskets := "1 2\n1 2 3\n1 2\n3\n"
	sig, err := ReferenceSignature(baskets, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := "1 2=3;3=2"
	if sig != want {
		t.Errorf("signature = %q, want %q", sig, want)
	}
	// Signature over the equivalent ResultDoc must canonicalize identically.
	doc := &server.ResultDoc{MFS: []server.ItemsetDoc{
		{Items: []int32{3}, Support: 2},
		{Items: []int32{1, 2}, Support: 3},
	}}
	if got := Signature(doc); got != want {
		t.Errorf("Signature(doc) = %q, want %q", got, want)
	}
}

func TestConfigValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Run(ctx, Config{}); err == nil {
		t.Error("empty config did not error")
	}
	if _, err := Run(ctx, Config{BaseURL: "http://x", Duration: time.Second}); err == nil {
		t.Error("config without cells did not error")
	}
	if _, err := Run(ctx, Config{BaseURL: "http://x", Cells: []Cell{{}}}); err == nil {
		t.Error("config without duration did not error")
	}
	if _, err := Run(ctx, Config{
		BaseURL: "http://x", Cells: []Cell{{}}, Duration: time.Second,
		Chaos: &ChaosConfig{},
	}); err == nil {
		t.Error("chaos config without restart callback did not error")
	}
}

// TestShortClosedLoopRun drives a small in-process daemon with the full
// request mix for half a second: resubmits hit the cache, cancels hit
// DELETE, and every accepted job must land in a terminal bucket.
func TestShortClosedLoopRun(t *testing.T) {
	d, err := StartLocal(server.Config{SpoolDir: t.TempDir(), Workers: 2, QueueSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	ds := GenerateDatasets(2, 7)
	cells := BuildCells(ds, []float64{0.3, 0.6}, []string{server.MinerPincer, server.MinerApriori}, 0)
	rep, err := Run(context.Background(), Config{
		BaseURL:       d.URL(),
		Cells:         cells,
		Concurrency:   4,
		Duration:      500 * time.Millisecond,
		ResubmitRatio: 0.5,
		CancelRatio:   0.2,
		Seed:          1,
		Verify:        true,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("run made no requests")
	}
	if rep.Jobs.Lost != 0 {
		t.Errorf("lost %d jobs: %v", rep.Jobs.Lost, rep.Jobs.LostIDs)
	}
	if rep.Jobs.Failed != 0 {
		t.Errorf("%d jobs failed", rep.Jobs.Failed)
	}
	if len(rep.Jobs.Divergent) != 0 {
		t.Errorf("divergent results: %v", rep.Jobs.Divergent)
	}
	if rep.Jobs.Done > 0 && rep.Jobs.Verified == 0 {
		t.Error("jobs completed but none verified")
	}
	for code := range rep.Codes {
		if code[0] == '5' {
			t.Errorf("saw %s responses: %v", code, rep.Codes)
		}
	}
	if rep.Endpoints["submit"] == nil || rep.Endpoints["submit"].Requests == 0 {
		t.Error("no submit latencies recorded")
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Errorf("report does not marshal: %v", err)
	}
}

// TestOpenLoopRun checks the fixed-arrival-rate mode: submissions keep
// arriving regardless of completions and the report flags the mode.
func TestOpenLoopRun(t *testing.T) {
	d, err := StartLocal(server.Config{SpoolDir: t.TempDir(), Workers: 2, QueueSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	ds := GenerateDatasets(1, 3)
	cells := BuildCells(ds, []float64{0.5}, []string{server.MinerApriori}, 0)
	rep, err := Run(context.Background(), Config{
		BaseURL:  d.URL(),
		Cells:    cells,
		RateHz:   100,
		Duration: 400 * time.Millisecond,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "open" {
		t.Errorf("mode = %q, want open", rep.Mode)
	}
	if rep.Endpoints["submit"] == nil || rep.Endpoints["submit"].Requests < 10 {
		t.Errorf("open loop at 100 Hz for 400ms made too few submits: %+v", rep.Endpoints["submit"])
	}
	if rep.Jobs.Lost != 0 {
		t.Errorf("lost %d jobs: %v", rep.Jobs.Lost, rep.Jobs.LostIDs)
	}
}
