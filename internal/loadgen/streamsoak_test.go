package loadgen

// The stream-soak regression: incremental streams run alongside the job
// mix while the chaos knob kill-restarts the daemon mid-batch. Explicit
// sequence numbers make every batch retry idempotent (a journaled batch is
// acknowledged as a duplicate, never double-applied), and the restart
// generation rebuilds each maintainer from its state snapshot plus journal
// replay. The assertions are the streaming durability contract: every
// stream ends healthy and its maintained MFS is byte-identical to a
// sequential reference mine of exactly the transactions the client
// delivered — restarts included.

import (
	"context"
	"testing"
	"time"

	"pincer/internal/server"
)

func TestSoakStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("soak run is several seconds of wall clock")
	}
	spool := t.TempDir()
	d, err := StartLocal(server.Config{SpoolDir: spool, Workers: 2, QueueSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	ds := GenerateDatasets(1, 33)
	cells := BuildCells(ds, []float64{0.4}, []string{server.MinerApriori}, 0)
	rep, err := Run(context.Background(), Config{
		BaseURL:       d.URL(),
		Cells:         cells,
		Concurrency:   2,
		Duration:      2500 * time.Millisecond,
		Seed:          17,
		Verify:        true,
		Streams:       3, // covers both spec shapes: append-only/scan and windowed/tidlist
		StreamBatches: 8,
		StreamBatchTx: 30,
		Chaos: &ChaosConfig{
			Interval:    700 * time.Millisecond,
			MaxRestarts: 2,
			Restart:     d.Restart,
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Streams == nil {
		t.Fatal("run produced no streams report")
	}
	t.Logf("stream soak: %d restarts, streams %+v", rep.ChaosRestarts, rep.Streams)

	if rep.ChaosRestarts != 2 {
		t.Errorf("chaos restarts = %d, want 2", rep.ChaosRestarts)
	}
	// The streaming durability contract: every stream survived the
	// restarts with a consistent maintainer...
	if len(rep.Streams.Failed) != 0 {
		t.Errorf("streams failed across restarts: %v", rep.Streams.Failed)
	}
	if rep.Streams.Batches == 0 {
		t.Error("stream soak applied no batches")
	}
	// ...and every maintained MFS matches an uninterrupted from-scratch
	// mine of the delivered (window-surviving) transactions.
	if len(rep.Streams.Divergent) != 0 {
		t.Errorf("maintained MFS diverged from the sequential reference: %v", rep.Streams.Divergent)
	}
	if want := int64(rep.Streams.Streams); rep.Streams.Verified != want {
		t.Errorf("verified %d streams, want %d", rep.Streams.Verified, want)
	}
	// The job mix must stay healthy with streams in the request stream.
	if rep.Jobs.Lost != 0 || rep.Jobs.Failed != 0 || len(rep.Jobs.Divergent) != 0 {
		t.Errorf("job mix degraded: %+v", rep.Jobs)
	}
}

func TestStreamConfigValidation(t *testing.T) {
	cfg := Config{
		BaseURL:  "http://127.0.0.1:1",
		Cells:    []Cell{{Dataset: "d", Baskets: "0 1\n", MinSupport: 0.5, Miner: server.MinerPincer}},
		Duration: time.Second,
		Streams:  -1,
	}
	if _, err := cfg.withDefaults(); err == nil {
		t.Fatal("negative Streams accepted")
	}
	cfg.Streams = 2
	got, err := cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if got.StreamBatches != 12 || got.StreamBatchTx != 40 {
		t.Errorf("stream defaults = %d batches × %d tx, want 12 × 40", got.StreamBatches, got.StreamBatchTx)
	}
}
