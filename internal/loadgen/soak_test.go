package loadgen

// The soak-restart regression: the chaos knob kill-restarts the daemon
// twice in the middle of a burst. The abort path parks running jobs as
// interrupted with their checkpoints on disk; the next generation resumes
// them from the spool. The assertions are the durability contract: not one
// accepted job is lost, and every complete result is byte-identical to the
// sequential reference — restarts included.

import (
	"context"
	"testing"
	"time"

	"pincer/internal/server"
)

func TestSoakRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("soak run is several seconds of wall clock")
	}
	spool := t.TempDir()
	d, err := StartLocal(server.Config{SpoolDir: spool, Workers: 2, QueueSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	ds := GenerateDatasets(2, 21)
	cells := BuildCells(ds, []float64{0.25, 0.5},
		[]string{server.MinerPincer, server.MinerApriori}, 0)
	rep, err := Run(context.Background(), Config{
		BaseURL:       d.URL(),
		Cells:         cells,
		Concurrency:   8,
		Duration:      2500 * time.Millisecond,
		ResubmitRatio: 0.3,
		Seed:          9,
		Verify:        true,
		Chaos: &ChaosConfig{
			Interval:    700 * time.Millisecond,
			MaxRestarts: 2,
			Restart:     d.Restart,
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak: %d requests, %d restarts, jobs %+v", rep.Requests, rep.ChaosRestarts, rep.Jobs)

	if rep.ChaosRestarts != 2 {
		t.Errorf("chaos restarts = %d, want 2", rep.ChaosRestarts)
	}
	// The durability contract: no accepted job vanished across restarts...
	if rep.Jobs.Lost != 0 {
		t.Errorf("lost %d jobs across restarts: %v", rep.Jobs.Lost, rep.Jobs.LostIDs)
	}
	if rep.Jobs.Failed != 0 {
		t.Errorf("%d jobs failed across restarts", rep.Jobs.Failed)
	}
	// ...and no resumed job's answer drifted from the sequential reference.
	if len(rep.Jobs.Divergent) != 0 {
		t.Errorf("results diverged from the sequential reference: %v", rep.Jobs.Divergent)
	}
	if rep.Jobs.Done == 0 {
		t.Error("soak run completed no jobs")
	}
	if rep.Jobs.Verified == 0 {
		t.Error("soak run verified no results")
	}
}
