package apriori

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pincer/internal/counting"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
	"pincer/internal/quest"
)

func TestJoin(t *testing.T) {
	tests := []struct {
		name string
		lk   []itemset.Itemset
		want []itemset.Itemset
	}{
		{"empty", nil, nil},
		{
			"singletons join to all pairs",
			[]itemset.Itemset{itemset.New(1), itemset.New(2), itemset.New(3)},
			[]itemset.Itemset{itemset.New(1, 2), itemset.New(1, 3), itemset.New(2, 3)},
		},
		{
			"pairs with shared prefix",
			[]itemset.Itemset{itemset.New(1, 2), itemset.New(1, 3), itemset.New(2, 3)},
			[]itemset.Itemset{itemset.New(1, 2, 3)},
		},
		{
			"no shared prefixes",
			[]itemset.Itemset{itemset.New(1, 2), itemset.New(3, 4)},
			nil,
		},
		{
			"paper §3.4: {2,4,6},{2,5,6},{4,5,6} generate nothing",
			[]itemset.Itemset{itemset.New(2, 4, 6), itemset.New(2, 5, 6), itemset.New(4, 5, 6)},
			nil,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := Join(tc.lk)
			if len(got) != len(tc.want) {
				t.Fatalf("Join = %v, want %v", got, tc.want)
			}
			for i := range tc.want {
				if !got[i].Equal(tc.want[i]) {
					t.Errorf("Join[%d] = %v, want %v", i, got[i], tc.want[i])
				}
			}
		})
	}
}

func TestPrune(t *testing.T) {
	lk := []itemset.Itemset{
		itemset.New(1, 2), itemset.New(1, 3), itemset.New(2, 3), itemset.New(2, 4),
	}
	lkSet := itemset.SetOf(lk...)
	cands := []itemset.Itemset{
		itemset.New(1, 2, 3), // all facets frequent: kept
		itemset.New(1, 2, 4), // {1,4} missing: pruned
	}
	got := Prune(cands, lkSet)
	if len(got) != 1 || !got[0].Equal(itemset.New(1, 2, 3)) {
		t.Fatalf("Prune = %v", got)
	}
}

func TestGenMatchesAprioriPaperExample(t *testing.T) {
	// L3 from [AS94]: {123},{124},{134},{135},{234}
	l3 := []itemset.Itemset{
		itemset.New(1, 2, 3), itemset.New(1, 2, 4), itemset.New(1, 3, 4),
		itemset.New(1, 3, 5), itemset.New(2, 3, 4),
	}
	got := Gen(l3, itemset.SetOf(l3...))
	// join yields {1234},{1345}; prune removes {1345} ({145},{345} ∉ L3)
	if len(got) != 1 || !got[0].Equal(itemset.New(1, 2, 3, 4)) {
		t.Fatalf("Gen = %v, want [{1,2,3,4}]", got)
	}
}

// smallDataset has a known frequent-set structure at minCount 2:
// maximal frequent itemsets {1,2,3} and {3,4}.
func smallDataset() *dataset.Dataset {
	return dataset.New([]dataset.Transaction{
		itemset.New(1, 2, 3),
		itemset.New(1, 2, 3, 4),
		itemset.New(3, 4),
		itemset.New(1, 5),
	})
}

func TestMineSmall(t *testing.T) {
	d := smallDataset()
	res := must(MineCount(dataset.NewScanner(d), 2, DefaultOptions()))
	wantMFS := []itemset.Itemset{itemset.New(1, 2, 3), itemset.New(3, 4)}
	if err := mfi.VerifyAgainst(res.MFS, wantMFS); err != nil {
		t.Fatalf("MFS: %v (got %v)", err, res.MFS)
	}
	if err := mfi.Verify(d, 2, res.MFS); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// complete frequent set with correct supports
	wantFreq := map[string]int64{
		itemset.New(1).Key():       3,
		itemset.New(2).Key():       2,
		itemset.New(3).Key():       3,
		itemset.New(4).Key():       2,
		itemset.New(1, 2).Key():    2,
		itemset.New(1, 3).Key():    2,
		itemset.New(2, 3).Key():    2,
		itemset.New(3, 4).Key():    2,
		itemset.New(1, 2, 3).Key(): 2,
	}
	if res.Frequent.Len() != len(wantFreq) {
		t.Fatalf("frequent count = %d, want %d: %v", res.Frequent.Len(), len(wantFreq), res.Frequent.Sorted())
	}
	res.Frequent.Each(func(x itemset.Itemset, c int64) {
		if wantFreq[x.Key()] != c {
			t.Errorf("support(%v) = %d, want %d", x, c, wantFreq[x.Key()])
		}
	})
	// MFS supports
	for i, m := range res.MFS {
		if res.MFSSupports[i] != d.Support(m) {
			t.Errorf("MFSSupports[%v] = %d, want %d", m, res.MFSSupports[i], d.Support(m))
		}
	}
	// stats: 3 passes (pass 3 counts {1,2,3}; pass 4 generates nothing)
	if res.Stats.Passes != 3 {
		t.Errorf("Passes = %d, want 3", res.Stats.Passes)
	}
	if res.Stats.Candidates != 1 { // only pass-3 candidate {1,2,3} counts in the paper metric
		t.Errorf("Candidates = %d, want 1", res.Stats.Candidates)
	}
	if res.Stats.FrequentCount != int64(len(wantFreq)) {
		t.Errorf("FrequentCount = %d", res.Stats.FrequentCount)
	}
}

func TestMineEdgeCases(t *testing.T) {
	// empty database
	res := must(MineCount(dataset.NewScanner(dataset.Empty(5)), 1, DefaultOptions()))
	if len(res.MFS) != 0 {
		t.Errorf("empty db MFS = %v", res.MFS)
	}
	// threshold higher than |D|: nothing frequent
	d := smallDataset()
	res = must(MineCount(dataset.NewScanner(d), 100, DefaultOptions()))
	if len(res.MFS) != 0 || res.Stats.Passes != 1 {
		t.Errorf("impossible threshold: MFS=%v passes=%d", res.MFS, res.Stats.Passes)
	}
	// minSupport = 1.0: only itemsets in every transaction
	every := dataset.New([]dataset.Transaction{
		itemset.New(1, 2), itemset.New(1, 2, 3), itemset.New(1, 2, 4),
	})
	res = must(Mine(dataset.NewScanner(every), 1.0, DefaultOptions()))
	if err := mfi.VerifyAgainst(res.MFS, []itemset.Itemset{itemset.New(1, 2)}); err != nil {
		t.Errorf("minSupport=1: %v (got %v)", err, res.MFS)
	}
	// single frequent item: no pass 2
	single := dataset.New([]dataset.Transaction{
		itemset.New(1), itemset.New(1), itemset.New(2),
	})
	res = must(MineCount(dataset.NewScanner(single), 2, DefaultOptions()))
	if err := mfi.VerifyAgainst(res.MFS, []itemset.Itemset{itemset.New(1)}); err != nil {
		t.Errorf("single item: %v", err)
	}
	if res.Stats.Passes != 1 {
		t.Errorf("single item passes = %d", res.Stats.Passes)
	}
}

func TestMineKeepFrequentFalse(t *testing.T) {
	d := smallDataset()
	opt := DefaultOptions()
	opt.KeepFrequent = false
	res := must(MineCount(dataset.NewScanner(d), 2, opt))
	if res.Frequent != nil {
		t.Error("Frequent retained despite KeepFrequent=false")
	}
	if err := mfi.VerifyAgainst(res.MFS, []itemset.Itemset{itemset.New(1, 2, 3), itemset.New(3, 4)}); err != nil {
		t.Fatal(err)
	}
}

func TestMineMaxPasses(t *testing.T) {
	d := smallDataset()
	opt := DefaultOptions()
	opt.MaxPasses = 1
	res := must(MineCount(dataset.NewScanner(d), 2, opt))
	if res.Stats.Passes != 1 {
		t.Fatalf("passes = %d", res.Stats.Passes)
	}
	// MFS of what was discovered: the four frequent singletons
	if len(res.MFS) != 4 {
		t.Fatalf("MFS after 1 pass = %v", res.MFS)
	}
	opt.MaxPasses = 2
	res = must(MineCount(dataset.NewScanner(d), 2, opt))
	if res.Stats.Passes != 2 {
		t.Fatalf("passes = %d", res.Stats.Passes)
	}
}

func TestMineEnginesAgree(t *testing.T) {
	p := quest.Params{
		NumTransactions: 800, AvgTxLen: 8, AvgPatternLen: 3,
		NumPatterns: 40, NumItems: 60, Seed: 5,
	}
	d := quest.Generate(p)
	var ref *mfi.Result
	for _, e := range []counting.Engine{counting.EngineList, counting.EngineHashTree, counting.EngineTrie} {
		opt := DefaultOptions()
		opt.Engine = e
		res := must(Mine(dataset.NewScanner(d), 0.02, opt))
		if ref == nil {
			ref = res
			continue
		}
		if err := mfi.VerifyAgainst(res.MFS, ref.MFS); err != nil {
			t.Fatalf("engine %v disagrees: %v", e, err)
		}
		if res.Frequent.Len() != ref.Frequent.Len() {
			t.Fatalf("engine %v frequent count %d vs %d", e, res.Frequent.Len(), ref.Frequent.Len())
		}
	}
	if len(ref.MFS) == 0 {
		t.Fatal("degenerate test: no frequent itemsets")
	}
}

// bruteForceFrequent enumerates the frequent set by exhaustive counting.
func bruteForceFrequent(d *dataset.Dataset, minCount int64, maxLen int) *itemset.Set {
	out := itemset.NewSet(0)
	universe := d.PresentItems()
	for k := 1; k <= maxLen; k++ {
		universe.EachSubsetOfSize(k, func(x itemset.Itemset) {
			c := d.Support(x)
			if c >= minCount {
				out.AddWithCount(x.Clone(), c)
			}
		})
	}
	return out
}

func TestQuickMineMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		universe := 4 + r.Intn(8)
		numTx := 5 + r.Intn(40)
		d := dataset.Empty(universe)
		for i := 0; i < numTx; i++ {
			n := 1 + r.Intn(universe)
			items := make([]itemset.Item, n)
			for j := range items {
				items[j] = itemset.Item(r.Intn(universe))
			}
			d.Append(itemset.New(items...))
		}
		minCount := int64(1 + r.Intn(numTx/2+1))
		res := must(MineCount(dataset.NewScanner(d), minCount, DefaultOptions()))
		want := bruteForceFrequent(d, minCount, universe)
		if res.Frequent.Len() != want.Len() {
			return false
		}
		ok := true
		want.Each(func(x itemset.Itemset, c int64) {
			got, present := res.Frequent.Count(x)
			if !present || got != c {
				ok = false
			}
		})
		if !ok {
			return false
		}
		// MFS is the maximal filter of the frequent set
		return mfi.VerifyAgainst(res.MFS, itemset.MaximalOnly(want.Sorted())) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCombineLevelsSavesPassesSameResult(t *testing.T) {
	p := quest.Params{
		NumTransactions: 800, AvgTxLen: 14, AvgPatternLen: 10,
		NumPatterns: 20, NumItems: 200, Seed: 23,
	}
	d := quest.Generate(p)
	plain := must(Mine(dataset.NewScanner(d), 0.05, DefaultOptions()))
	copt := DefaultOptions()
	copt.CombineLevels = true
	combined := must(Mine(dataset.NewScanner(d), 0.05, copt))
	if err := mfi.VerifyAgainst(combined.MFS, plain.MFS); err != nil {
		t.Fatalf("combined levels changed the MFS: %v", err)
	}
	if combined.Frequent.Len() != plain.Frequent.Len() {
		t.Fatalf("frequent sets differ: %d vs %d", combined.Frequent.Len(), plain.Frequent.Len())
	}
	if combined.Stats.Passes >= plain.Stats.Passes {
		t.Errorf("combining saved no passes: %d vs %d", combined.Stats.Passes, plain.Stats.Passes)
	}
	// the price: at least as many candidates
	if combined.Stats.Candidates < plain.Stats.Candidates {
		t.Errorf("combined candidates %d < plain %d?", combined.Stats.Candidates, plain.Stats.Candidates)
	}
}

func TestQuickCombineLevelsMatchesPlain(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		universe := 4 + r.Intn(8)
		numTx := 5 + r.Intn(40)
		d := dataset.Empty(universe)
		for i := 0; i < numTx; i++ {
			n := 1 + r.Intn(universe)
			items := make([]itemset.Item, n)
			for j := range items {
				items[j] = itemset.Item(r.Intn(universe))
			}
			d.Append(itemset.New(items...))
		}
		minCount := int64(1 + r.Intn(numTx/2+1))
		copt := DefaultOptions()
		copt.CombineLevels = true
		copt.CombineThreshold = 1 + r.Intn(50)
		combined := must(MineCount(dataset.NewScanner(d), minCount, copt))
		plain := must(MineCount(dataset.NewScanner(d), minCount, DefaultOptions()))
		if combined.Frequent.Len() != plain.Frequent.Len() {
			return false
		}
		ok := true
		plain.Frequent.Each(func(x itemset.Itemset, c int64) {
			got, present := combined.Frequent.Count(x)
			if !present || got != c {
				ok = false
			}
		})
		return ok && mfi.VerifyAgainst(combined.MFS, plain.MFS) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMineOnQuestData(t *testing.T) {
	p := quest.Params{
		NumTransactions: 1000, AvgTxLen: 10, AvgPatternLen: 4,
		NumPatterns: 30, NumItems: 80, Seed: 11,
	}
	d := quest.Generate(p)
	sc := dataset.NewScanner(d)
	res := must(Mine(sc, 0.02, DefaultOptions()))
	if len(res.MFS) == 0 {
		t.Fatal("no maximal frequent itemsets on quest data at 2%")
	}
	if err := mfi.Verify(d, res.MinCount, res.MFS); err != nil {
		t.Fatal(err)
	}
	if sc.Passes() != res.Stats.Passes {
		t.Errorf("scanner passes %d != stats passes %d", sc.Passes(), res.Stats.Passes)
	}
	// every frequent itemset's support is correct
	res.Frequent.Each(func(x itemset.Itemset, c int64) {
		if c != d.Support(x) {
			t.Errorf("support(%v) = %d, want %d", x, c, d.Support(x))
		}
	})
}

// must unwraps the (result, error) mining returns; in-memory test scans
// cannot fail.
func must[R any](res R, err error) R {
	if err != nil {
		panic(err)
	}
	return res
}
