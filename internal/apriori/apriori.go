// Package apriori implements the Apriori algorithm of Agrawal & Srikant
// (VLDB 1994) — the bottom-up, breadth-first baseline the paper compares
// against (§3.3), and the source of the join and prune procedures that
// Pincer-Search modifies.
//
// Following the paper's §4.1.1 (after Özden et al.), pass 1 counts items in
// a flat array and pass 2 counts all pairs of frequent items in a triangular
// matrix with no candidate generation; the level-wise candidate machinery
// starts at pass 3.
package apriori

import (
	"time"

	"pincer/internal/counting"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
	"pincer/internal/obsv"
)

// Join is the join procedure of Apriori-gen (§3.3): it combines every pair
// of k-itemsets in lk sharing a (k-1)-prefix into a (k+1)-itemset. lk must
// be sorted lexicographically; the output is sorted and duplicate-free.
func Join(lk []itemset.Itemset) []itemset.Itemset {
	if len(lk) == 0 {
		return nil
	}
	k := len(lk[0])
	var out []itemset.Itemset
	for i := 0; i < len(lk); i++ {
		for j := i + 1; j < len(lk); j++ {
			if !itemset.SamePrefix(lk[i], lk[j], k-1) {
				break // sorted input: no later itemset shares the prefix
			}
			out = append(out, lk[i].Union(lk[j]))
		}
	}
	return out
}

// Prune is the prune procedure of Apriori-gen: it removes from candidates
// every itemset with a k-subset missing from lk (the superset-of-infrequent
// rule, Observation 1). lkSet must contain exactly the itemsets of the
// frequent set L_k.
func Prune(candidates []itemset.Itemset, lkSet *itemset.Set) []itemset.Itemset {
	out := candidates[:0]
	for _, c := range candidates {
		if allFacetsIn(c, lkSet) {
			out = append(out, c)
		}
	}
	return out
}

func allFacetsIn(c itemset.Itemset, lkSet *itemset.Set) bool {
	ok := true
	c.Facets(func(f itemset.Itemset) {
		if ok && !lkSet.Contains(f) {
			ok = false
		}
	})
	return ok
}

// Gen is the full Apriori-gen candidate generation: Join then Prune.
func Gen(lk []itemset.Itemset, lkSet *itemset.Set) []itemset.Itemset {
	return Prune(Join(lk), lkSet)
}

// Options configures a mining run.
type Options struct {
	// Engine selects the support-counting structure for passes ≥ 3
	// (default: hash tree).
	Engine counting.Engine
	// KeepFrequent materializes the complete frequent set with support
	// counts in the result (default true via DefaultOptions). Apriori
	// discovers every frequent itemset either way; this only controls
	// whether they are retained.
	KeepFrequent bool
	// MaxPasses bounds the number of passes (0 = unlimited); used to build
	// partial runs for tests.
	MaxPasses int
	// CombineLevels enables the multi-level pass optimization the paper
	// discusses (§3.5, §5, after [AS94] and [MTV94]): once the candidate
	// set is small, C_{k+2} is speculatively generated from C_{k+1}
	// (treating every candidate as frequent) and both levels are counted in
	// the same pass, halving the remaining database reads at the price of
	// extra candidates. "This technique is only useful in the later passes"
	// (§5) — hence the threshold.
	CombineLevels bool
	// CombineThreshold is the candidate-count ceiling under which levels
	// are combined (default 10000 when CombineLevels is set).
	CombineThreshold int
	// Tracer receives per-pass trace events; nil disables tracing (no
	// timestamps are taken).
	Tracer obsv.Tracer
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options {
	return Options{Engine: counting.EngineHashTree, KeepFrequent: true}
}

// Mine runs Apriori over the scanned database at the given fractional
// minimum support and returns the complete frequent set and the MFS. A
// non-nil error reports a mid-pass failure re-reading a file-backed
// database (see mfi.RecoverMiningError); in-memory scans cannot fail.
func Mine(sc dataset.Scanner, minSupport float64, opt Options) (*mfi.Result, error) {
	minCount := dataset.MinCountFor(sc.Len(), minSupport)
	return MineCount(sc, minCount, opt)
}

// MineCount is Mine with an absolute support-count threshold.
func MineCount(sc dataset.Scanner, minCount int64, opt Options) (res *mfi.Result, err error) {
	defer mfi.RecoverMiningError(&err)
	start := time.Now()
	r := &mfi.Result{
		MinCount:        minCount,
		NumTransactions: sc.Len(),
		Frequent:        itemset.NewSet(0),
	}
	r.Stats.Algorithm = "apriori"

	// Tracing seam: when a Tracer is set, every database read is timed and
	// each pass emits an event mirroring its PassDetails entry. With a nil
	// Tracer the scan helper is a plain passthrough — no timestamps.
	tr := opt.Tracer
	var scanDur time.Duration
	scan := func(f func(itemset.Itemset, *itemset.Bitset)) {
		if tr == nil {
			sc.Scan(f)
			return
		}
		t0 := time.Now()
		sc.Scan(f)
		scanDur = time.Since(t0)
	}
	emit := func() {
		if tr == nil {
			return
		}
		p := r.Stats.PassDetails[len(r.Stats.PassDetails)-1]
		d := scanDur
		scanDur = 0
		tr.PassDone(obsv.PassEvent{
			Algorithm:    r.Stats.Algorithm,
			Pass:         p.Pass,
			Phase:        obsv.PhaseBottomUp,
			Candidates:   p.Candidates,
			Frequent:     p.Frequent,
			Infrequent:   p.Candidates - p.Frequent,
			MFSFound:     p.MFSFound,
			ScanDuration: d,
			Workers:      1,
		})
	}
	if tr != nil {
		tr.RunStart(obsv.RunInfo{
			Algorithm:       r.Stats.Algorithm,
			Workers:         1,
			MinCount:        minCount,
			NumTransactions: sc.Len(),
		})
	}

	var allFrequent []itemset.Itemset
	counts := make(map[string]int64)
	noteFrequent := func(x itemset.Itemset, count int64) {
		allFrequent = append(allFrequent, x)
		counts[x.Key()] = count
		if opt.KeepFrequent {
			r.Frequent.AddWithCount(x, count)
		}
	}
	finish := func() *mfi.Result {
		r.MFS = itemset.MaximalOnly(allFrequent)
		r.MFSSupports = make([]int64, len(r.MFS))
		for i, m := range r.MFS {
			r.MFSSupports[i] = counts[m.Key()]
		}
		if !opt.KeepFrequent {
			r.Frequent = nil
		}
		r.Stats.Duration = time.Since(start)
		if tr != nil {
			tr.RunDone(obsv.RunSummary{
				Algorithm:  r.Stats.Algorithm,
				Passes:     r.Stats.Passes,
				Candidates: r.Stats.Candidates,
				MFSSize:    len(r.MFS),
				Duration:   r.Stats.Duration,
			})
		}
		return r
	}

	// Pass 1: flat per-item array.
	array := counting.NewItemArray(sc.NumItems())
	scan(func(tx itemset.Itemset, _ *itemset.Bitset) { array.Add(tx) })
	var l1 itemset.Itemset
	for i, c := range array.Counts() {
		if c >= minCount {
			l1 = append(l1, itemset.Item(i))
			noteFrequent(itemset.Itemset{itemset.Item(i)}, c)
		}
	}
	r.Stats.AddPass(mfi.PassStats{Candidates: sc.NumItems(), Frequent: len(l1)})
	emit()
	if len(l1) < 2 || opt.MaxPasses == 1 {
		return finish(), nil
	}

	// Pass 2: triangular matrix over frequent items, no candidate generation.
	tri := counting.NewTriangle(sc.NumItems(), l1)
	scan(func(tx itemset.Itemset, _ *itemset.Bitset) { tri.Add(tx) })
	var l2 []itemset.Itemset
	tri.Each(func(x, y itemset.Item, count int64) {
		if count >= minCount {
			pair := itemset.Itemset{x, y}
			l2 = append(l2, pair)
			noteFrequent(pair, count)
		}
	})
	r.Stats.AddPass(mfi.PassStats{Candidates: tri.NumPairs(), Frequent: len(l2)})
	emit()
	if len(l2) == 0 || opt.MaxPasses == 2 {
		return finish(), nil
	}

	// Passes ≥ 3: Apriori-gen + the configured counting engine.
	combineThreshold := opt.CombineThreshold
	if opt.CombineLevels && combineThreshold <= 0 {
		combineThreshold = 10_000
	}
	lk := l2
	for k := 3; ; k++ {
		if opt.MaxPasses > 0 && k > opt.MaxPasses {
			break
		}
		lkSet := itemset.SetOf(lk...)
		ck := Gen(lk, lkSet)
		if len(ck) == 0 {
			break
		}
		// Optionally stack the next level's speculative candidates into the
		// same pass: C_{k+1} generated from C_k as if all of C_k were
		// frequent. Any speculative candidate whose count clears the
		// threshold is genuinely frequent (support is anti-monotone), so no
		// separate validation is needed.
		var speculative []itemset.Itemset
		if opt.CombineLevels && len(ck) <= combineThreshold {
			speculative = Gen(ck, itemset.SetOf(ck...))
		}
		all := ck
		if len(speculative) > 0 {
			all = append(append([]itemset.Itemset(nil), ck...), speculative...)
		}
		counter := counting.NewCounter(opt.Engine, all)
		scan(func(tx itemset.Itemset, _ *itemset.Bitset) { counter.Add(tx) })
		counts := counter.Counts()
		var next []itemset.Itemset
		for i, c := range ck {
			if counts[i] >= minCount {
				next = append(next, c)
				noteFrequent(c, counts[i])
			}
		}
		r.Stats.AddPass(mfi.PassStats{Candidates: len(all), Frequent: len(next)})
		if len(speculative) > 0 {
			var next2 []itemset.Itemset
			for i, c := range speculative {
				if counts[len(ck)+i] >= minCount {
					next2 = append(next2, c)
					noteFrequent(c, counts[len(ck)+i])
				}
			}
			r.Stats.PassDetails[len(r.Stats.PassDetails)-1].Frequent += len(next2)
			r.Stats.FrequentCount += int64(len(next2))
			emit() // after the speculative fold, so the event matches PassDetails
			if len(next2) == 0 {
				// The speculative level contains every true C_{k+1}
				// candidate (Gen over a superset yields a superset), so an
				// empty frequent result there ends the level-wise climb.
				break
			}
			k++ // the combined pass consumed two levels
			lk = next2
			continue
		}
		emit()
		if len(next) == 0 {
			break
		}
		lk = next
	}
	return finish(), nil
}
