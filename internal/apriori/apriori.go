// Package apriori implements the Apriori algorithm of Agrawal & Srikant
// (VLDB 1994) — the bottom-up, breadth-first baseline the paper compares
// against (§3.3), and the source of the join and prune procedures that
// Pincer-Search modifies.
//
// Following the paper's §4.1.1 (after Özden et al.), pass 1 counts items in
// a flat array and pass 2 counts all pairs of frequent items in a triangular
// matrix with no candidate generation; the level-wise candidate machinery
// starts at pass 3.
package apriori

import (
	"context"
	"errors"
	"fmt"
	"time"

	"pincer/internal/checkpoint"
	"pincer/internal/counting"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
	"pincer/internal/obsv"
)

// Join is the join procedure of Apriori-gen (§3.3): it combines every pair
// of k-itemsets in lk sharing a (k-1)-prefix into a (k+1)-itemset. lk must
// be sorted lexicographically; the output is sorted and duplicate-free.
func Join(lk []itemset.Itemset) []itemset.Itemset {
	if len(lk) == 0 {
		return nil
	}
	k := len(lk[0])
	var out []itemset.Itemset
	for i := 0; i < len(lk); i++ {
		for j := i + 1; j < len(lk); j++ {
			if !itemset.SamePrefix(lk[i], lk[j], k-1) {
				break // sorted input: no later itemset shares the prefix
			}
			out = append(out, lk[i].Union(lk[j]))
		}
	}
	return out
}

// Prune is the prune procedure of Apriori-gen: it removes from candidates
// every itemset with a k-subset missing from lk (the superset-of-infrequent
// rule, Observation 1). lkSet must contain exactly the itemsets of the
// frequent set L_k.
func Prune(candidates []itemset.Itemset, lkSet *itemset.Set) []itemset.Itemset {
	out := candidates[:0]
	for _, c := range candidates {
		if allFacetsIn(c, lkSet) {
			out = append(out, c)
		}
	}
	return out
}

func allFacetsIn(c itemset.Itemset, lkSet *itemset.Set) bool {
	ok := true
	c.Facets(func(f itemset.Itemset) {
		if ok && !lkSet.Contains(f) {
			ok = false
		}
	})
	return ok
}

// Gen is the full Apriori-gen candidate generation: Join then Prune.
func Gen(lk []itemset.Itemset, lkSet *itemset.Set) []itemset.Itemset {
	return Prune(Join(lk), lkSet)
}

// Options configures a mining run.
type Options struct {
	// Engine selects the support-counting structure for passes ≥ 3
	// (default: hash tree).
	Engine counting.Engine
	// KeepFrequent materializes the complete frequent set with support
	// counts in the result (default true via DefaultOptions). Apriori
	// discovers every frequent itemset either way; this only controls
	// whether they are retained.
	KeepFrequent bool
	// MaxPasses bounds the number of passes (0 = unlimited); used to build
	// partial runs for tests. Unlike the budgets below this is a normal
	// truncation, not an error.
	MaxPasses int
	// CombineLevels enables the multi-level pass optimization the paper
	// discusses (§3.5, §5, after [AS94] and [MTV94]): once the candidate
	// set is small, C_{k+2} is speculatively generated from C_{k+1}
	// (treating every candidate as frequent) and both levels are counted in
	// the same pass, halving the remaining database reads at the price of
	// extra candidates. "This technique is only useful in the later passes"
	// (§5) — hence the threshold.
	CombineLevels bool
	// CombineThreshold is the candidate-count ceiling under which levels
	// are combined (default 10000 when CombineLevels is set).
	CombineThreshold int
	// Tracer receives per-pass trace events; nil disables tracing (no
	// timestamps are taken).
	Tracer obsv.Tracer

	// Context cancels the run at pass boundaries and inside scan loops
	// (every CancelCheckEvery transactions); cancellation surfaces as a
	// *mfi.PartialResultError whose Result carries the frequent sets found
	// so far (Apriori maintains no MFCS, so the error's upper bound is nil).
	Context context.Context
	// Deadline, if positive, bounds the run's wall clock via a timeout
	// context derived from Context.
	Deadline time.Duration
	// MaxCandidatesPerPass bounds the candidate set of any pass ≥ 3
	// (0 = unlimited); exceeding it aborts with reason "max-candidates".
	MaxCandidatesPerPass int
	// CancelCheckEvery is the number of transactions between in-scan
	// context checks (default mfi.DefaultCancelCheckEvery).
	CancelCheckEvery int
	// Checkpointer, if set, persists the run's state at every pass barrier
	// (cleared on completion); MineResume restarts from it.
	Checkpointer checkpoint.Checkpointer
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options {
	return Options{Engine: counting.EngineHashTree, KeepFrequent: true}
}

// Mine runs Apriori over the scanned database at the given fractional
// minimum support and returns the complete frequent set and the MFS. A
// non-nil error reports a mid-pass failure re-reading a file-backed
// database (see mfi.RecoverMiningError); in-memory scans cannot fail.
func Mine(sc dataset.Scanner, minSupport float64, opt Options) (*mfi.Result, error) {
	minCount := dataset.MinCountFor(sc.Len(), minSupport)
	return MineCount(sc, minCount, opt)
}

// MineCount is Mine with an absolute support-count threshold.
func MineCount(sc dataset.Scanner, minCount int64, opt Options) (res *mfi.Result, err error) {
	defer mfi.RecoverMiningError(&err)
	m := newAprioriMiner(sc, minCount, opt)
	return m.mine()
}

// MineResume continues an Apriori run interrupted after a checkpoint; with
// no checkpoint on record it mines from scratch. The same resume invariant
// as core.MineResume holds: the result and per-pass statistics equal an
// uninterrupted run's.
func MineResume(sc dataset.Scanner, minCount int64, opt Options) (res *mfi.Result, err error) {
	if opt.Checkpointer == nil {
		return nil, errors.New("apriori: MineResume requires Options.Checkpointer")
	}
	st, err := opt.Checkpointer.Load()
	if err != nil {
		return nil, err
	}
	if st == nil {
		return MineCount(sc, minCount, opt)
	}
	if err := validateState(st, sc, minCount); err != nil {
		return nil, err
	}
	defer mfi.RecoverMiningError(&err)
	m := newAprioriMiner(sc, minCount, opt)
	if rerr := m.restore(st); rerr != nil {
		return nil, rerr
	}
	return m.mine()
}

func validateState(st *checkpoint.State, sc dataset.Scanner, minCount int64) error {
	switch {
	case st.Algorithm != "apriori":
		return &checkpoint.MismatchError{Field: "algorithm", Want: "apriori", Got: st.Algorithm}
	case st.MinCount != minCount:
		return &checkpoint.MismatchError{Field: "min count",
			Want: fmt.Sprint(minCount), Got: fmt.Sprint(st.MinCount)}
	case st.NumTransactions != int64(sc.Len()):
		return &checkpoint.MismatchError{Field: "transactions",
			Want: fmt.Sprint(sc.Len()), Got: fmt.Sprint(st.NumTransactions)}
	case st.NumItems != sc.NumItems():
		return &checkpoint.MismatchError{Field: "item universe",
			Want: fmt.Sprint(sc.NumItems()), Got: fmt.Sprint(st.NumItems)}
	}
	return nil
}

// aprioriStage positions the staged run loop, mirroring core's runStage.
type aprioriStage uint8

const (
	stageFresh     aprioriStage = iota // nothing counted yet
	stagePass2                         // pass 1 done, pair pass next
	stageLevelwise                     // level-wise loop at miner.k
)

func (s aprioriStage) stageName() string {
	switch s {
	case stagePass2:
		return "pass2"
	case stageLevelwise:
		return "levelwise"
	}
	return "fresh"
}

// aprioriMiner holds the pass-barrier state of a run, on the struct rather
// than in locals so checkpoints can persist it and restore can re-enter.
type aprioriMiner struct {
	sc       dataset.Scanner
	opt      Options
	minCount int64
	res      *mfi.Result

	allFrequent []itemset.Itemset
	counts      map[string]int64
	itemCounts  []int64 // pass-1 array; l1 is its frequent entries

	stage aprioriStage
	lk    []itemset.Itemset
	k     int

	ctx    context.Context
	cancel context.CancelFunc
	cp     checkpoint.Checkpointer
	start  time.Time

	tr      obsv.Tracer
	scanDur time.Duration
}

func newAprioriMiner(sc dataset.Scanner, minCount int64, opt Options) *aprioriMiner {
	ctx := opt.Context
	var cancel context.CancelFunc
	if opt.Deadline > 0 {
		if ctx == nil {
			ctx = context.Background()
		}
		ctx, cancel = context.WithTimeout(ctx, opt.Deadline)
	}
	if ctx != nil && ctx.Done() == nil {
		ctx = nil // uncancellable: skip every check
	}
	m := &aprioriMiner{
		sc:       sc,
		opt:      opt,
		minCount: minCount,
		counts:   make(map[string]int64),
		stage:    stageFresh,
		k:        3,
		ctx:      ctx,
		cancel:   cancel,
		cp:       opt.Checkpointer,
		tr:       opt.Tracer,
		res: &mfi.Result{
			MinCount:        minCount,
			NumTransactions: sc.Len(),
			Frequent:        itemset.NewSet(0),
		},
	}
	m.res.Stats.Algorithm = "apriori"
	return m
}

func (m *aprioriMiner) mine() (res *mfi.Result, err error) {
	if m.cancel != nil {
		defer m.cancel()
	}
	defer m.recoverAbort(&err)
	if m.tr != nil {
		m.tr.RunStart(obsv.RunInfo{
			Algorithm:       m.res.Stats.Algorithm,
			Workers:         1,
			MinCount:        m.minCount,
			NumTransactions: m.sc.Len(),
		})
	}
	m.start = time.Now()
	m.run()
	r := m.assemble()
	if m.tr != nil {
		m.tr.RunDone(obsv.RunSummary{
			Algorithm:  r.Stats.Algorithm,
			Passes:     r.Stats.Passes,
			Candidates: r.Stats.Candidates,
			MFSSize:    len(r.MFS),
			Duration:   r.Stats.Duration,
		})
	}
	if m.cp != nil {
		if cerr := m.cp.Clear(); cerr != nil {
			return nil, cerr
		}
	}
	return r, nil
}

// scan performs one timed, guarded database read. The tracing seam: with a
// Tracer the read is timed for the pass event; with a cancellable context
// each transaction ticks a ScanGuard. Neither costs anything when unused.
func (m *aprioriMiner) scan(f func(itemset.Itemset, *itemset.Bitset)) {
	fn := f
	if guard := mfi.NewScanGuard(m.ctx, m.opt.CancelCheckEvery); guard != nil {
		fn = func(tx itemset.Itemset, bits *itemset.Bitset) {
			guard.Tick()
			f(tx, bits)
		}
	}
	if m.tr == nil {
		m.sc.Scan(fn)
		return
	}
	t0 := time.Now()
	m.sc.Scan(fn)
	m.scanDur = time.Since(t0)
}

// emit reports the pass just recorded by AddPass, mirroring its
// PassDetails entry exactly.
func (m *aprioriMiner) emit() {
	if m.tr == nil {
		return
	}
	p := m.res.Stats.PassDetails[len(m.res.Stats.PassDetails)-1]
	d := m.scanDur
	m.scanDur = 0
	m.tr.PassDone(obsv.PassEvent{
		Algorithm:    m.res.Stats.Algorithm,
		Pass:         p.Pass,
		Phase:        obsv.PhaseBottomUp,
		Candidates:   p.Candidates,
		Frequent:     p.Frequent,
		Infrequent:   p.Candidates - p.Frequent,
		MFSFound:     p.MFSFound,
		ScanDuration: d,
		Workers:      1,
	})
}

func (m *aprioriMiner) noteFrequent(x itemset.Itemset, count int64) {
	m.allFrequent = append(m.allFrequent, x)
	m.counts[x.Key()] = count
	if m.opt.KeepFrequent {
		m.res.Frequent.AddWithCount(x, count)
	}
}

// beforePass is the pass-boundary gate: context cancellation plus the
// per-pass candidate budget.
func (m *aprioriMiner) beforePass(candidates int) {
	mfi.CheckContext(m.ctx)
	if b := m.opt.MaxCandidatesPerPass; b > 0 && candidates > b {
		panic(&mfi.Abort{Reason: mfi.ReasonMaxCandidates,
			Cause: fmt.Errorf("pass would count %d candidates, budget is %d", candidates, b)})
	}
}

// l1 returns the frequent items of the pass-1 array.
func (m *aprioriMiner) l1() itemset.Itemset {
	var l1 itemset.Itemset
	for i, c := range m.itemCounts {
		if c >= m.minCount {
			l1 = append(l1, itemset.Item(i))
		}
	}
	return l1
}

// run drives the stages in order, entering at m.stage.
func (m *aprioriMiner) run() {
	if m.stage == stageFresh {
		if m.pass1() {
			return
		}
		m.stage = stagePass2
		m.checkpointNow()
	}
	if m.stage == stagePass2 {
		if m.pass2() {
			return
		}
		m.stage = stageLevelwise
		m.k = 3
		m.checkpointNow()
	}
	m.levelwise()
}

// pass1 counts every item in a flat array; done means the run is complete.
func (m *aprioriMiner) pass1() (done bool) {
	m.beforePass(0)
	array := counting.NewItemArray(m.sc.NumItems())
	m.scan(func(tx itemset.Itemset, _ *itemset.Bitset) { array.Add(tx) })
	m.itemCounts = array.Counts()
	var l1 itemset.Itemset
	for i, c := range m.itemCounts {
		if c >= m.minCount {
			l1 = append(l1, itemset.Item(i))
			m.noteFrequent(itemset.Itemset{itemset.Item(i)}, c)
		}
	}
	m.res.Stats.AddPass(mfi.PassStats{Candidates: m.sc.NumItems(), Frequent: len(l1)})
	m.emit()
	return len(l1) < 2 || m.opt.MaxPasses == 1
}

// pass2 counts all pairs of frequent items in a triangular matrix with no
// candidate generation; done means the run is complete.
func (m *aprioriMiner) pass2() (done bool) {
	m.beforePass(0)
	tri := counting.NewTriangle(m.sc.NumItems(), m.l1())
	m.scan(func(tx itemset.Itemset, _ *itemset.Bitset) { tri.Add(tx) })
	var l2 []itemset.Itemset
	tri.Each(func(x, y itemset.Item, count int64) {
		if count >= m.minCount {
			pair := itemset.Itemset{x, y}
			l2 = append(l2, pair)
			m.noteFrequent(pair, count)
		}
	})
	m.res.Stats.AddPass(mfi.PassStats{Candidates: tri.NumPairs(), Frequent: len(l2)})
	m.emit()
	m.lk = l2
	return len(l2) == 0 || m.opt.MaxPasses == 2
}

// levelwise runs passes ≥ 3: Apriori-gen + the configured counting engine,
// checkpointing after every pass barrier.
func (m *aprioriMiner) levelwise() {
	combineThreshold := m.opt.CombineThreshold
	if m.opt.CombineLevels && combineThreshold <= 0 {
		combineThreshold = 10_000
	}
	for {
		k := m.k
		if m.opt.MaxPasses > 0 && k > m.opt.MaxPasses {
			return
		}
		lkSet := itemset.SetOf(m.lk...)
		ck := Gen(m.lk, lkSet)
		if len(ck) == 0 {
			return
		}
		// Optionally stack the next level's speculative candidates into the
		// same pass: C_{k+1} generated from C_k as if all of C_k were
		// frequent. Any speculative candidate whose count clears the
		// threshold is genuinely frequent (support is anti-monotone), so no
		// separate validation is needed.
		var speculative []itemset.Itemset
		if m.opt.CombineLevels && len(ck) <= combineThreshold {
			speculative = Gen(ck, itemset.SetOf(ck...))
		}
		all := ck
		if len(speculative) > 0 {
			all = append(append([]itemset.Itemset(nil), ck...), speculative...)
		}
		m.beforePass(len(all))
		counter := counting.NewCounter(m.opt.Engine, all)
		m.scan(func(tx itemset.Itemset, _ *itemset.Bitset) { counter.Add(tx) })
		counts := counter.Counts()
		var next []itemset.Itemset
		for i, c := range ck {
			if counts[i] >= m.minCount {
				next = append(next, c)
				m.noteFrequent(c, counts[i])
			}
		}
		m.res.Stats.AddPass(mfi.PassStats{Candidates: len(all), Frequent: len(next)})
		if len(speculative) > 0 {
			var next2 []itemset.Itemset
			for i, c := range speculative {
				if counts[len(ck)+i] >= m.minCount {
					next2 = append(next2, c)
					m.noteFrequent(c, counts[len(ck)+i])
				}
			}
			m.res.Stats.PassDetails[len(m.res.Stats.PassDetails)-1].Frequent += len(next2)
			m.res.Stats.FrequentCount += int64(len(next2))
			m.emit() // after the speculative fold, so the event matches PassDetails
			if len(next2) == 0 {
				// The speculative level contains every true C_{k+1}
				// candidate (Gen over a superset yields a superset), so an
				// empty frequent result there ends the level-wise climb.
				return
			}
			m.k = k + 2 // the combined pass consumed two levels
			m.lk = next2
			m.checkpointNow()
			continue
		}
		m.emit()
		if len(next) == 0 {
			return
		}
		m.lk = next
		m.k = k + 1
		m.checkpointNow()
	}
}

// assemble builds the final (or partial) result from the frequent sets
// discovered so far and stamps the duration.
func (m *aprioriMiner) assemble() *mfi.Result {
	r := m.res
	r.MFS = itemset.MaximalOnly(m.allFrequent)
	r.MFSSupports = make([]int64, len(r.MFS))
	for i, x := range r.MFS {
		r.MFSSupports[i] = m.counts[x.Key()]
	}
	if !m.opt.KeepFrequent {
		r.Frequent = nil
	}
	r.Stats.Duration = time.Since(m.start)
	return r
}

// recoverAbort converts the Abort sentinel into a *mfi.PartialResultError.
// Apriori maintains no top-down frontier, so the error's MFCS bound is nil.
func (m *aprioriMiner) recoverAbort(errp *error) {
	r := recover()
	if r == nil {
		return
	}
	ab := mfi.AbortFrom(r)
	if ab == nil {
		panic(r)
	}
	res := m.assemble()
	if m.tr != nil {
		m.tr.RunDone(obsv.RunSummary{
			Algorithm:  res.Stats.Algorithm,
			Passes:     res.Stats.Passes,
			Candidates: res.Stats.Candidates,
			MFSSize:    len(res.MFS),
			Duration:   res.Stats.Duration,
			Aborted:    true, AbortReason: ab.Reason,
		})
	}
	*errp = &mfi.PartialResultError{
		Result: res, Pass: res.Stats.Passes, Reason: ab.Reason, Cause: ab.Cause,
	}
}

// checkpointNow persists the pass-barrier state (no-op without a
// Checkpointer); a failed write aborts the run.
func (m *aprioriMiner) checkpointNow() {
	if m.cp == nil {
		return
	}
	start := time.Now()
	st := &checkpoint.State{
		Version:         checkpoint.Version,
		Algorithm:       m.res.Stats.Algorithm,
		MinCount:        m.minCount,
		NumTransactions: int64(m.sc.Len()),
		NumItems:        m.sc.NumItems(),
		Stage:           m.stage.stageName(),
		K:               m.k,
		Lk:              m.lk,
		AllFrequent:     m.allFrequent,
		Cache:           m.counts,
		ItemCounts:      m.itemCounts,
		Stats:           m.res.Stats,
	}
	if err := m.cp.Save(st); err != nil {
		panic(&mfi.Abort{Reason: mfi.ReasonCheckpoint, Cause: err})
	}
	obsv.EmitCheckpoint(m.tr, obsv.CheckpointEvent{
		Algorithm: m.res.Stats.Algorithm, Pass: m.res.Stats.Passes,
		Stage: m.stage.stageName(), Duration: time.Since(start),
	})
}

// restore re-enters from a checkpoint's pass barrier.
func (m *aprioriMiner) restore(st *checkpoint.State) error {
	switch st.Stage {
	case "pass2":
		m.stage = stagePass2
	case "levelwise":
		m.stage = stageLevelwise
	default:
		return &checkpoint.CorruptError{Path: "(state)", Err: fmt.Errorf("unknown stage %q", st.Stage)}
	}
	m.k = st.K
	m.lk = st.Lk
	m.allFrequent = st.AllFrequent
	if st.Cache != nil {
		m.counts = st.Cache
	}
	m.itemCounts = st.ItemCounts
	m.res.Stats = st.Stats
	if m.opt.KeepFrequent {
		for _, f := range m.allFrequent {
			m.res.Frequent.AddWithCount(f, m.counts[f.Key()])
		}
	}
	return nil
}
