package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"pincer/internal/ais"
	"pincer/internal/apriori"
	"pincer/internal/core"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/partition"
	"pincer/internal/quest"
	"pincer/internal/randmax"
	"pincer/internal/sampling"
	"pincer/internal/topdown"
	"pincer/internal/vertical"
)

// BaselineRow is one algorithm's measurement in the cross-algorithm
// comparison (a supplementary table beyond the paper's two figures: the
// paper restricts its evaluation to Apriori "for space limitation", §4, and
// discusses the rest qualitatively in §5 — this table puts numbers on §5).
type BaselineRow struct {
	Algorithm string
	Time      time.Duration
	Passes    int
	MFSSize   int
	// Exact reports whether the algorithm guarantees the exact MFS
	// (randmax is probabilistic; topdown may abort).
	Exact bool
	// Agrees reports the output matched the reference (Apriori) MFS.
	Agrees bool
	// Note carries algorithm-specific diagnostics.
	Note string
}

// RunBaselines mines one database at one support with every algorithm in
// the repository and returns the comparison, reference (Apriori) first.
func RunBaselines(p quest.Params, minSupport float64, opt Options) []BaselineRow {
	d := quest.Generate(p)
	var rows []BaselineRow

	ref := must(apriori.Mine(dataset.NewScanner(d), minSupport, apriori.Options{Engine: opt.Engine}))
	refMFS := ref.MFS
	add := func(name string, dur time.Duration, passes int, mfs []itemsetList, exact bool, note string) {
		rows = append(rows, BaselineRow{
			Algorithm: name, Time: dur, Passes: passes, MFSSize: len(mfs),
			Exact: exact, Agrees: sameMFS(mfs, toList(refMFS)), Note: note,
		})
	}
	add("apriori", ref.Stats.Duration, ref.Stats.Passes, toList(ref.MFS), true, "")

	popt := opt.Pincer
	popt.Engine = opt.Engine
	pres := must(core.Mine(dataset.NewScanner(d), minSupport, popt))
	add("pincer", pres.Stats.Duration, pres.Stats.Passes, toList(pres.MFS), true,
		adaptiveNote(pres.Stats.AdaptiveOff))

	copt := apriori.Options{Engine: opt.Engine, CombineLevels: true}
	cres := must(apriori.Mine(dataset.NewScanner(d), minSupport, copt))
	add("apriori+combine", cres.Stats.Duration, cres.Stats.Passes, toList(cres.MFS), true, "")

	ares := must(ais.Mine(dataset.NewScanner(d), minSupport, ais.Options{MaxCandidatesPerPass: 5_000_000}))
	note := ""
	if ares.Aborted {
		note = "aborted: candidate explosion"
	}
	add("ais", ares.Stats.Duration, ares.Stats.Passes, toList(ares.MFS), !ares.Aborted, note)

	part := partition.Mine(d, minSupport, partition.Options{NumPartitions: 4, Engine: opt.Engine})
	add("partition", part.Stats.Duration, part.Stats.Passes, toList(part.MFS), true, "4 partitions")

	samp := sampling.Mine(d, minSupport, sampling.Options{LowerFactor: 0.8, Engine: opt.Engine, Seed: 7})
	add("sampling", samp.Stats.Duration, samp.Stats.Passes, toList(samp.MFS), true,
		fmt.Sprintf("misses=%d expansions=%d", samp.BorderMisses, samp.Expansions))

	ecl := vertical.Eclat(d, minSupport, vertical.Options{})
	add("eclat", ecl.Stats.Duration, ecl.Stats.Passes, toList(ecl.MFS), true, "vertical, 1 pass")

	mx := vertical.MineMaximal(d, minSupport, vertical.Options{})
	add("maxeclat", mx.Stats.Duration, mx.Stats.Passes, toList(mx.MFS), true,
		fmt.Sprintf("%d intersections", mx.Intersections))

	rm := randmax.Mine(d, minSupport, randmax.Options{Patience: 128, Seed: 7})
	add("randmax", rm.Stats.Duration, 0, toList(rm.MFS), false,
		fmt.Sprintf("%d walks, probabilistic", rm.Walks))

	// The pure top-down frontier explodes on any universe wider than a few
	// dozen items (that is §3.1's point); give it a tight budget so the
	// comparison reports the abort rather than hanging.
	td := must(topdown.Mine(dataset.NewScanner(d), minSupport, topdown.Options{MaxElements: 20_000, MaxPasses: 16}))
	tdNote := "pure top-down"
	if td.Aborted {
		tdNote = "aborted: frontier explosion"
	}
	add("topdown", td.Stats.Duration, td.Stats.Passes, toList(td.MFS), !td.Aborted, tdNote)

	return rows
}

type itemsetList = string

func toList(mfs []itemset.Itemset) []itemsetList {
	out := make([]itemsetList, len(mfs))
	for i, m := range mfs {
		out[i] = m.String()
	}
	sort.Strings(out)
	return out
}

func sameMFS(a, b []itemsetList) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func adaptiveNote(off bool) string {
	if off {
		return "adaptive fallback engaged"
	}
	return ""
}

// WriteBaselines renders the comparison table.
func WriteBaselines(w io.Writer, p quest.Params, minSupport float64, rows []BaselineRow) error {
	fmt.Fprintf(w, "Baseline comparison — %s |L|=%d at minsup %.4g\n",
		p.Name(), p.Defaults().NumPatterns, minSupport)
	fmt.Fprintf(w, "%-16s %12s %7s %7s %7s %7s  %s\n",
		"algorithm", "time", "passes", "|MFS|", "exact", "agrees", "notes")
	fmt.Fprintln(w, strings.Repeat("-", 90))
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %12s %7d %7d %7v %7v  %s\n",
			r.Algorithm, r.Time.Round(time.Millisecond), r.Passes, r.MFSSize, r.Exact, r.Agrees, r.Note)
	}
	fmt.Fprintln(w)
	return nil
}
