package bench

// The distributed-streams sweep: replay the same batch stream into a
// single-node incremental.Maintainer and into cluster-backed maintainers at
// each worker count, with the workers booted in-process on loopback HTTP.
// Every delta's MFS∪border verification counts — and any warm-started
// re-mine passes — fan out over the pool exactly as a clustered pincerd
// stream's do. On one machine the ratio prices the wire protocol's
// per-delta overhead (shard push, count RPCs, merge) — NOT a slowdown of
// real distribution: every "remote" worker shares the local CPUs. What the
// sweep certifies is the distribution contract, re-checked after every
// batch: the clustered maintainer's MFS and supports are byte-identical to
// the single-node maintainer's at each seq.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"pincer/internal/cluster"
	"pincer/internal/core"
	"pincer/internal/dataset"
	"pincer/internal/incremental"
	"pincer/internal/itemset"
	"pincer/internal/quest"
)

// StreamClusterMeasure is one worker-count setting of the sweep.
type StreamClusterMeasure struct {
	Workers int `json:"workers"`
	// DeltaSeconds is the fastest replay's summed per-delta cost (border
	// verification plus warm-started re-mines), the clustered counterpart
	// of the report's LocalDeltaSeconds.
	DeltaSeconds     float64 `json:"delta_seconds"`
	DeltaMeanSeconds float64 `json:"delta_mean_seconds"`
	// WireOverheadVsLocal is DeltaSeconds / LocalDeltaSeconds (> 1 means
	// the wire protocol cost that much); it is the honest loopback
	// statistic where a "speedup" or "slowdown" claim would be fiction.
	WireOverheadVsLocal float64 `json:"wire_overhead_vs_local,omitempty"`
	// RPCs counts every count/load RPC of the fastest replay, delta
	// shards and re-mine passes included.
	RPCs    int64 `json:"rpcs"`
	Remines int   `json:"remines"`
	// Agree is the per-batch gate: after every batch the clustered
	// maintainer's MFS and supports were byte-identical to the
	// single-node maintainer's.
	Agree bool `json:"agree"`
	// Degraded reports whether any batch fell below quorum and counted
	// locally — a healthy loopback sweep keeps it false.
	Degraded bool `json:"degraded,omitempty"`
	// Err records why this setting produced no measurement.
	Err string `json:"error,omitempty"`
}

// StreamClusterReport is one spec's local-vs-clustered stream sweep.
type StreamClusterReport struct {
	SpecID       string  `json:"spec"`
	Database     string  `json:"database"`
	Transactions int     `json:"transactions"`
	BatchTx      int     `json:"batch_tx"`
	Batches      int     `json:"batches"`
	MinSupport   float64 `json:"min_support"`
	Counter      string  `json:"counter"`
	// CPUs and GoMaxProcs record the hardware context; with loopback
	// workers every setting shares them, which is why the report prices
	// wire overhead rather than claiming distribution effects.
	CPUs       int `json:"cpus"`
	GoMaxProcs int `json:"gomaxprocs"`
	// Repeats is the full-replay count per setting; Seconds values are
	// the minimum over the replays.
	Repeats int `json:"repeats"`
	// LocalDeltaSeconds is the single-node maintainer's summed per-delta
	// cost — the baseline every clustered setting is priced against.
	LocalDeltaSeconds     float64                `json:"local_delta_seconds"`
	LocalDeltaMeanSeconds float64                `json:"local_delta_mean_seconds"`
	LocalRemines          int                    `json:"local_remines"`
	Runs                  []StreamClusterMeasure `json:"runs"`
	// Err records why the sweep stopped before producing its runs.
	Err string `json:"error,omitempty"`
}

// streamClusterBaseline replays the stream into a single-node maintainer,
// returning the summed delta cost, the re-mine count, and the per-seq
// MFS-with-supports signature every clustered replay is gated against.
func streamClusterBaseline(batches [][]dataset.Transaction, sup float64, counter string, opt Options) (float64, int, []string, error) {
	mt, err := incremental.New(incremental.Options{
		MinSupport: sup, Counter: counter, Workers: 1, Context: opt.Context,
	})
	if err != nil {
		return 0, 0, nil, err
	}
	var total float64
	var remines int
	sigs := make([]string, 0, len(batches))
	for _, batch := range batches {
		delta, err := mt.Append(batch)
		if err != nil {
			return 0, 0, nil, fmt.Errorf("seq %d: %w", mt.Seq()+1, err)
		}
		total += (delta.VerifyDuration + delta.MineDuration).Seconds()
		if delta.Remined {
			remines++
		}
		sigs = append(sigs, mfsSignature(mt.MFS(), mt.MFSSupports()))
	}
	return total, remines, sigs, nil
}

// streamClusterReplay runs one clustered replay over the shared pool and
// gates every batch against the baseline signatures.
func streamClusterReplay(batches [][]dataset.Transaction, sup float64, counter, runID string,
	pool *cluster.Pool, sigs []string, opt Options) (StreamClusterMeasure, error) {
	sc := cluster.NewStreamCoordinator(runID, pool, nil)
	var mineCoords []*cluster.Coordinator
	mopt := incremental.Options{
		MinSupport: sup, Counter: counter, Workers: 1, Context: opt.Context,
		DeltaCounter: func(seq int64, side string, d *dataset.Dataset, sets []itemset.Itemset) []int64 {
			return sc.CountSets(seq, side, d, sets)
		},
	}
	mopt.MineCounter = func(seq int64, d *dataset.Dataset) core.PassCounter {
		coord, err := cluster.NewCoordinator(fmt.Sprintf("%s.b%d", runID, seq), d, pool, nil)
		if err != nil {
			return nil // local fallback, same answers
		}
		mineCoords = append(mineCoords, coord)
		return coord
	}
	mt, err := incremental.New(mopt)
	if err != nil {
		return StreamClusterMeasure{}, err
	}
	m := StreamClusterMeasure{Agree: true}
	for i, batch := range batches {
		delta, err := mt.Append(batch)
		if err != nil {
			return StreamClusterMeasure{}, fmt.Errorf("seq %d: %w", mt.Seq()+1, err)
		}
		m.DeltaSeconds += (delta.VerifyDuration + delta.MineDuration).Seconds()
		if delta.Remined {
			m.Remines++
		}
		doc := sc.TakeDoc()
		m.RPCs += doc.RPCs
		if doc.Degraded {
			m.Degraded = true
		}
		for _, coord := range mineCoords {
			m.RPCs += coord.Doc().RPCs
		}
		mineCoords = mineCoords[:0]
		if mfsSignature(mt.MFS(), mt.MFSSupports()) != sigs[i] {
			m.Agree = false
		}
	}
	if n := len(batches); n > 0 {
		m.DeltaMeanSeconds = m.DeltaSeconds / float64(n)
	}
	return m, nil
}

// RunStreamClusterSweep slices the spec's database into batchTx-transaction
// batches, replays the stream into a single-node maintainer, then into a
// cluster-backed maintainer over an in-process loopback pool at each worker
// count — gating every batch on byte-identical MFS and supports. Each
// setting is measured `repeats` times and the minimum delta cost reported.
func RunStreamClusterSweep(spec Spec, sup float64, batchTx int, workerCounts []int, repeats int, opt Options) StreamClusterReport {
	if repeats < 1 {
		repeats = 1
	}
	if batchTx < 1 {
		batchTx = 100
	}
	counter := opt.Counter
	if counter == "" {
		counter = incremental.CounterScan
	}
	d := quest.Generate(spec.Quest)
	txs := d.Transactions()
	var batches [][]dataset.Transaction
	for at := 0; at < len(txs); at += batchTx {
		end := at + batchTx
		if end > len(txs) {
			end = len(txs)
		}
		batches = append(batches, txs[at:end])
	}
	rep := StreamClusterReport{
		SpecID: spec.ID, Database: spec.Name(), Transactions: d.Len(),
		BatchTx: batchTx, Batches: len(batches), MinSupport: sup, Counter: counter,
		CPUs: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0), Repeats: repeats,
	}

	var sigs []string
	for i := 0; i < repeats; i++ {
		total, remines, s, err := streamClusterBaseline(batches, sup, counter, opt)
		if err != nil {
			rep.Err = err.Error()
			return rep
		}
		if sigs == nil || total < rep.LocalDeltaSeconds {
			rep.LocalDeltaSeconds, rep.LocalRemines, sigs = total, remines, s
		}
	}
	if rep.Batches > 0 {
		rep.LocalDeltaMeanSeconds = rep.LocalDeltaSeconds / float64(rep.Batches)
	}

	for _, n := range workerCounts {
		if opt.cancelled() {
			rep.Runs = append(rep.Runs, StreamClusterMeasure{Workers: n, Err: opt.Context.Err().Error()})
			continue
		}
		m := runStreamClusterSetting(batches, spec, sup, counter, n, repeats, sigs, rep.LocalDeltaSeconds, opt)
		rep.Runs = append(rep.Runs, m)
	}
	return rep
}

// runStreamClusterSetting measures one worker count: boot the loopback
// pool, replay the stream through a fresh coordinator per repeat, keep the
// fastest.
func runStreamClusterSetting(batches [][]dataset.Transaction, spec Spec, sup float64, counter string,
	n, repeats int, sigs []string, localSeconds float64, opt Options) StreamClusterMeasure {
	addrs, stop, err := loopbackWorkers(n)
	if err != nil {
		return StreamClusterMeasure{Workers: n, Err: err.Error()}
	}
	defer stop()
	pool, err := cluster.NewPool(addrs, cluster.PoolConfig{})
	if err != nil {
		return StreamClusterMeasure{Workers: n, Err: err.Error()}
	}
	pool.Start()
	defer pool.Close()

	var best StreamClusterMeasure
	for i := 0; i < repeats; i++ {
		runID := fmt.Sprintf("bench-stream-%s-w%d-r%d", spec.ID, n, i)
		m, err := streamClusterReplay(batches, sup, counter, runID, pool, sigs, opt)
		if err != nil {
			return StreamClusterMeasure{Workers: n, Err: err.Error()}
		}
		if i == 0 || m.DeltaSeconds < best.DeltaSeconds {
			keep := best
			best = m
			// The contract columns aggregate over every replay, not just
			// the fastest: one divergent or degraded replay taints the cell.
			if i > 0 {
				best.Agree = best.Agree && keep.Agree
				best.Degraded = best.Degraded || keep.Degraded
			}
		} else {
			best.Agree = best.Agree && m.Agree
			best.Degraded = best.Degraded || m.Degraded
		}
	}
	best.Workers = n
	if localSeconds > 0 {
		best.WireOverheadVsLocal = best.DeltaSeconds / localSeconds
	}
	if opt.Progress != nil {
		opt.Progress(fmt.Sprintf("%s sup=%.4f stream cluster workers=%d: delta %v (%.2fx local %v), %d RPCs, %d re-mines, agree=%v",
			spec.ID, sup, n, time.Duration(best.DeltaSeconds*float64(time.Second)).Round(time.Millisecond),
			best.WireOverheadVsLocal, time.Duration(localSeconds*float64(time.Second)).Round(time.Millisecond),
			best.RPCs, best.Remines, best.Agree))
	}
	return best
}

// WriteStreamClusterTable renders a sweep as a human-readable table.
func WriteStreamClusterTable(w io.Writer, rep StreamClusterReport) error {
	fmt.Fprintf(w, "%s — distributed streams (loopback cluster) — %s (|D|=%d, %d batches × %d tx, minsup=%g, counter=%s, %d CPUs, GOMAXPROCS=%d)\n",
		rep.SpecID, rep.Database, rep.Transactions, rep.Batches, rep.BatchTx,
		rep.MinSupport, rep.Counter, rep.CPUs, rep.GoMaxProcs)
	fmt.Fprintf(w, "single-node maintainer: %.3fs summed delta cost (%.2fms/delta, %d re-mines, min of %d replays)\n",
		rep.LocalDeltaSeconds, rep.LocalDeltaMeanSeconds*1e3, rep.LocalRemines, rep.Repeats)
	if rep.Err != "" {
		fmt.Fprintf(w, "sweep stopped: %s\n\n", rep.Err)
		return nil
	}
	fmt.Fprintln(w, "loopback workers share the CPUs, so the ratio is per-delta wire-protocol overhead, not a distribution effect")
	fmt.Fprintf(w, "%-8s | %10s %12s %9s %7s %8s %6s\n",
		"workers", "delta(s)", "ms/delta", "overhead", "rpcs", "remines", "agree")
	for _, m := range rep.Runs {
		if m.Err != "" {
			fmt.Fprintf(w, "%-8d | skipped: %s\n", m.Workers, m.Err)
			continue
		}
		degraded := ""
		if m.Degraded {
			degraded = " DEGRADED"
		}
		fmt.Fprintf(w, "%-8d | %10.3f %12.2f %8.2fx %7d %8d %6v%s\n",
			m.Workers, m.DeltaSeconds, m.DeltaMeanSeconds*1e3,
			m.WireOverheadVsLocal, m.RPCs, m.Remines, m.Agree, degraded)
	}
	fmt.Fprintln(w)
	return nil
}

// WriteStreamClusterJSON writes the sweep as an indented JSON document.
func WriteStreamClusterJSON(w io.Writer, rep StreamClusterReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
