package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"pincer/internal/checkpoint"
)

func tinySpec() Spec {
	s := Figure4Specs(600)[0] // T20.I6, |L|=50, scaled to 600 transactions
	s.Supports = []float64{0.18, 0.12}
	return s
}

func TestSpecsCoverEveryFigureRow(t *testing.T) {
	f3 := Figure3Specs(0)
	f4 := Figure4Specs(0)
	if len(f3) != 3 || len(f4) != 3 {
		t.Fatalf("spec counts: %d + %d, want 3 + 3", len(f3), len(f4))
	}
	wantNames := map[string]string{
		"F3-T5I2":   "T5.I2.D100K (|L|=2000)",
		"F3-T10I4":  "T10.I4.D100K (|L|=2000)",
		"F3-T20I6":  "T20.I6.D100K (|L|=2000)",
		"F4-T20I6":  "T20.I6.D100K (|L|=50)",
		"F4-T20I10": "T20.I10.D100K (|L|=50)",
		"F4-T20I15": "T20.I15.D100K (|L|=50)",
	}
	for _, s := range AllSpecs(0) {
		want, ok := wantNames[s.ID]
		if !ok {
			t.Errorf("unexpected spec %q", s.ID)
			continue
		}
		if got := s.Name(); got != want {
			t.Errorf("spec %s Name = %q, want %q", s.ID, got, want)
		}
		if len(s.Supports) == 0 {
			t.Errorf("spec %s has no support sweep", s.ID)
		}
		if s.Figure != 3 && s.Figure != 4 {
			t.Errorf("spec %s figure = %d", s.ID, s.Figure)
		}
	}
	if _, ok := SpecByID("f4-t20i10", 0); !ok {
		t.Error("SpecByID case-insensitive lookup failed")
	}
	if _, ok := SpecByID("nope", 0); ok {
		t.Error("SpecByID found a ghost")
	}
}

func TestScalingOverridesD(t *testing.T) {
	s := Figure3Specs(1234)[0]
	if s.Quest.NumTransactions != 1234 {
		t.Fatalf("|D| = %d", s.Quest.NumTransactions)
	}
	s = Figure3Specs(0)[0]
	if s.Quest.NumTransactions != 100_000 {
		t.Fatalf("default |D| = %d", s.Quest.NumTransactions)
	}
}

func TestRunSpecProducesAgreeingCells(t *testing.T) {
	var progress []string
	opt := DefaultOptions()
	opt.Progress = func(l string) { progress = append(progress, l) }
	spec := tinySpec()
	cells := RunSpec(spec, opt)
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		if c.Apriori.Skipped || c.Pincer.Skipped {
			t.Fatalf("unexpected skip: %+v", c)
		}
		if !c.Agree {
			t.Errorf("algorithms disagree at sup %v", c.Support)
		}
		if c.Apriori.Passes == 0 || c.Pincer.Passes == 0 {
			t.Errorf("empty pass counts: %+v", c)
		}
		if c.Apriori.Time <= 0 || c.Pincer.Time <= 0 {
			t.Errorf("no timing recorded: %+v", c)
		}
	}
	// supports are swept in descending order
	if cells[0].Support < cells[1].Support {
		t.Errorf("supports not descending: %v then %v", cells[0].Support, cells[1].Support)
	}
	if len(progress) != 2 {
		t.Errorf("progress lines = %d", len(progress))
	}
}

func TestBudgetSkipsHarderCells(t *testing.T) {
	opt := DefaultOptions()
	opt.Budget = time.Nanosecond // everything exceeds this after the first cell
	spec := tinySpec()
	cells := RunSpec(spec, opt)
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	if cells[0].Apriori.Skipped || cells[0].Pincer.Skipped {
		t.Fatal("first cell must run")
	}
	if !cells[1].Apriori.Skipped || !cells[1].Pincer.Skipped {
		t.Fatal("second cell should be budget-skipped")
	}
	if cells[1].RelativeTime() != 0 {
		t.Error("skipped cell reports a relative time")
	}
}

func TestCancelledContextSkipsEverything(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := DefaultOptions()
	opt.Context = ctx
	cells := RunSpec(tinySpec(), opt)
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		if !c.Apriori.Skipped || !c.Pincer.Skipped {
			t.Errorf("cell at sup %v ran under a cancelled context: %+v", c.Support, c)
		}
	}
}

func TestCandidateBudgetMarksCellsSkipped(t *testing.T) {
	opt := DefaultOptions()
	opt.Apriori.MaxCandidatesPerPass = 1
	opt.Pincer.MaxCandidatesPerPass = 1
	cells := RunSpec(tinySpec(), opt)
	for _, c := range cells {
		if !c.Apriori.Skipped || !c.Pincer.Skipped {
			t.Fatalf("cell at sup %v survived a 1-candidate budget: %+v", c.Support, c)
		}
	}
	// The first cell carries the abort reason; later ones inherit the skip.
	if note := cells[0].Pincer.Note; !strings.Contains(note, "max-candidates") {
		t.Errorf("pincer note = %q, want a max-candidates abort", note)
	}
	var tbl bytes.Buffer
	if err := WriteTable(&tbl, tinySpec(), cells); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "skipped: ") {
		t.Errorf("table does not surface the skip reason:\n%s", tbl.String())
	}
}

// TestResumeContinuesFromCheckpoint aborts a pincer cell with a pass budget,
// then reruns the sweep with Resume: the resumed cell must complete and agree
// with Apriori exactly as an uninterrupted sweep would.
func TestResumeContinuesFromCheckpoint(t *testing.T) {
	spec := tinySpec()
	spec.Supports = spec.Supports[:1]

	cp := &checkpoint.MemCheckpointer{}
	opt := DefaultOptions()
	opt.Pincer.Checkpointer = cp
	opt.Pincer.MaxTotalPasses = 2
	cells := RunSpec(spec, opt)
	if !cells[0].Pincer.Skipped {
		t.Fatalf("budgeted pincer cell not skipped: %+v", cells[0])
	}
	if cp.Saves == 0 {
		t.Fatal("no checkpoint written by the aborted run")
	}

	opt.Pincer.MaxTotalPasses = 0
	opt.Resume = true
	cells = RunSpec(spec, opt)
	if cells[0].Pincer.Skipped || !cells[0].Agree {
		t.Fatalf("resumed cell did not complete and agree: %+v", cells[0])
	}
	// Resume ≡ uninterrupted: the restored statistics include the passes
	// counted before the abort, so the totals must match a fresh sweep.
	full := RunSpec(spec, DefaultOptions())
	if cells[0].Pincer.Passes != full[0].Pincer.Passes ||
		cells[0].Pincer.MFSSize != full[0].Pincer.MFSSize {
		t.Errorf("resumed cell %+v differs from uninterrupted %+v", cells[0].Pincer, full[0].Pincer)
	}
}

func TestRunBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ten algorithms; skipped in -short mode")
	}
	spec := Figure4Specs(400)[0]
	rows := RunBaselines(spec.Quest, 0.15, DefaultOptions())
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]BaselineRow{}
	for _, r := range rows {
		byName[r.Algorithm] = r
		if r.Time <= 0 {
			t.Errorf("%s: no timing", r.Algorithm)
		}
	}
	// every exact algorithm must agree with the Apriori reference
	for _, name := range []string{"apriori", "pincer", "apriori+combine", "ais", "partition", "sampling", "eclat", "maxeclat"} {
		r, ok := byName[name]
		if !ok {
			t.Fatalf("%s missing", name)
		}
		if !r.Exact {
			t.Errorf("%s unexpectedly inexact: %s", name, r.Note)
			continue
		}
		if !r.Agrees {
			t.Errorf("%s disagrees with the reference MFS", name)
		}
	}
	// the probabilistic one is labeled as such
	if byName["randmax"].Exact {
		t.Error("randmax labeled exact")
	}
	var buf bytes.Buffer
	if err := WriteBaselines(&buf, spec.Quest, 0.15, rows); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"pincer", "eclat", "agrees"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("table missing %q", want)
		}
	}
}

func TestWriteTableAndCSV(t *testing.T) {
	spec := tinySpec()
	cells := RunSpec(spec, DefaultOptions())
	var tbl bytes.Buffer
	if err := WriteTable(&tbl, spec, cells); err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, want := range []string{"F4-T20I6", "minsup", "18%", "12%", "agree"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	var csv bytes.Buffer
	if err := WriteCSV(&csv, cells); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv.String())
	}
	if !strings.HasPrefix(lines[0], "spec,database,minsup") {
		t.Errorf("csv header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "F4-T20I6") {
		t.Errorf("csv row = %q", lines[1])
	}
}
