package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunStreamSweep(t *testing.T) {
	var progress []string
	opt := DefaultOptions()
	opt.Progress = func(l string) { progress = append(progress, l) }
	spec := tinySpec()
	rep := RunStreamSweep(spec, 0.2, 100, 2, opt)
	if rep.Err != "" {
		t.Fatalf("sweep stopped: %s", rep.Err)
	}
	if rep.SpecID != spec.ID || rep.Transactions != 600 || rep.BatchTx != 100 {
		t.Fatalf("report header: %+v", rep)
	}
	if rep.Batches != 6 || len(rep.Cells) != 6 {
		t.Fatalf("batches = %d, cells = %d, want 6", rep.Batches, len(rep.Cells))
	}
	if rep.Counter != "scan" {
		t.Fatalf("counter = %q, want scan", rep.Counter)
	}
	fast, remines := 0, 0
	for i, c := range rep.Cells {
		if c.Seq != int64(i+1) || c.Transactions != 100*(i+1) {
			t.Errorf("cell %d: seq %d, |D| %d", i, c.Seq, c.Transactions)
		}
		// The sweep's whole claim rests on the maintained MFS matching the
		// from-scratch mine at every prefix.
		if !c.Agree {
			t.Errorf("seq %d: maintained MFS diverges from the from-scratch mine", c.Seq)
		}
		if c.ScratchSeconds <= 0 || c.DeltaSeconds <= 0 {
			t.Errorf("seq %d: no timing (%+v)", c.Seq, c)
		}
		if c.Remined {
			remines++
			if c.Reason == "" {
				t.Errorf("seq %d: re-mine without a reason", c.Seq)
			}
		} else {
			fast++
		}
	}
	if rep.FastPathDeltas != fast || rep.Remines != remines {
		t.Errorf("aggregates %d/%d, cells say %d/%d", rep.FastPathDeltas, rep.Remines, fast, remines)
	}
	if rep.ScratchMeanSeconds <= 0 {
		t.Error("no scratch mean")
	}
	if len(progress) != 6 {
		t.Errorf("progress lines = %d", len(progress))
	}

	var tbl bytes.Buffer
	if err := WriteStreamTable(&tbl, rep); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"delta(ms)", "scratch(ms)", "avoidance rate", spec.ID} {
		if !strings.Contains(tbl.String(), want) {
			t.Errorf("table missing %q:\n%s", want, tbl.String())
		}
	}

	var buf bytes.Buffer
	if err := WriteStreamJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var back StreamReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Batches != rep.Batches || len(back.Cells) != len(rep.Cells) {
		t.Errorf("JSON round trip lost cells: %+v", back)
	}
}

func TestRunStreamSweepCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := DefaultOptions()
	opt.Context = ctx
	rep := RunStreamSweep(tinySpec(), 0.2, 100, 1, opt)
	if rep.Err == "" {
		t.Fatal("cancelled sweep reported no error")
	}
	if len(rep.Cells) != 0 {
		t.Fatalf("cancelled sweep produced %d cells", len(rep.Cells))
	}
}
