package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"pincer/internal/core"
	"pincer/internal/counting"
	"pincer/internal/dataset"
	"pincer/internal/mfi"
	"pincer/internal/quest"
)

// VerticalMeasure is one counting strategy's measurement on one support
// cell: the same Pincer-Search run, counted either by database scans
// ("scan") or by tid-list intersection ("tidlist").
type VerticalMeasure struct {
	Counter string  `json:"counter"`
	Seconds float64 `json:"seconds"`
	Passes  int     `json:"passes"`
	// Candidates is the run's paper-accounting candidate total — identical
	// between the strategies by construction (the sweep verifies it).
	Candidates int64 `json:"candidates"`
	// Intersections is the number of tidset kernel operations (tidlist
	// strategy only); Representation labels the encoding those operations
	// used ("bitset", "list", "mixed", with "+diffset" when applicable).
	Intersections  int64  `json:"intersections,omitempty"`
	Representation string `json:"representation,omitempty"`
	// Err records why this strategy produced no measurement.
	Err string `json:"error,omitempty"`
}

// VerticalCell is one (support) row of a scan-vs-tidlist sweep.
type VerticalCell struct {
	Support float64         `json:"min_support"`
	Scan    VerticalMeasure `json:"scan"`
	TidList VerticalMeasure `json:"tidlist"`
	// ScanOverTidlistTime is scan seconds / tidlist seconds (> 1 means the
	// tid-list counter wins). Deliberately NOT named "speedup": it compares
	// two strategies of the same sequential-equivalent computation on the
	// same machine, so — unlike a parallel speedup — it is meaningful on any
	// CPU count, including cpus=1.
	ScanOverTidlistTime float64 `json:"scan_over_tidlist_time,omitempty"`
	// Agree reports the built-in correctness check: identical MFS, supports,
	// and per-pass statistics between the two strategies.
	Agree bool `json:"agree"`
}

// VerticalReport is one spec's scan-vs-tidlist counting sweep.
type VerticalReport struct {
	SpecID       string `json:"spec"`
	Database     string `json:"database"`
	Transactions int    `json:"transactions"`
	MinItems     int    `json:"num_items"`
	Workers      int    `json:"workers"`
	Rep          string `json:"representation_mode"`
	// CPUs and GoMaxProcs record the hardware context of every report in
	// the multi-core protocol, whether or not the measurement depends on it.
	CPUs       int `json:"cpus"`
	GoMaxProcs int `json:"gomaxprocs"`
	// Repeats is the measurements per cell; Seconds values are the minimum.
	Repeats int            `json:"repeats"`
	Cells   []VerticalCell `json:"cells"`
	// Err records why the sweep stopped early (e.g. a cancelled context).
	Err string `json:"error,omitempty"`
}

// runVerticalCell measures one strategy on one cell: repeats runs, minimum
// wall clock. makeCounter is nil for the scan baseline; otherwise it builds
// a fresh TidListCounter per run, so the measurement honestly includes the
// one-time vertical index construction.
func runVerticalCell(d *dataset.Dataset, sup float64, repeats int, popt core.Options,
	name string, makeCounter func() *counting.TidListCounter) (*mfi.Result, VerticalMeasure) {
	m := VerticalMeasure{Counter: name}
	var bestRes *mfi.Result
	best := time.Duration(0)
	for i := 0; i < repeats; i++ {
		ropt := popt
		var tl *counting.TidListCounter
		if makeCounter != nil {
			tl = makeCounter()
			ropt.Counter = tl
		}
		res, err := core.Mine(dataset.NewScanner(d), sup, ropt)
		if err != nil {
			m.Err = err.Error()
			return nil, m
		}
		if bestRes == nil || res.Stats.Duration < best {
			bestRes, best = res, res.Stats.Duration
			if tl != nil {
				st := tl.TakeIntersections()
				m.Intersections = st.Total
				m.Representation = st.Label()
			}
		}
	}
	m.Seconds = best.Seconds()
	m.Passes = bestRes.Stats.Passes
	m.Candidates = bestRes.Stats.Candidates
	return bestRes, m
}

// RunVerticalSweep generates the spec's database once and, for each support,
// runs Pincer-Search with the default scan counting and with the vertical
// tid-list counter, verifying that both produce the identical result (MFS,
// supports, and per-pass statistics — the tid-list counter is a drop-in
// replacement at the PassCounter seam, so even the candidate accounting must
// match exactly).
func RunVerticalSweep(spec Spec, workers, repeats int, rep counting.RepMode, opt Options) VerticalReport {
	if repeats < 1 {
		repeats = 1
	}
	if workers < 1 {
		workers = 1
	}
	d := quest.Generate(spec.Quest)
	vr := VerticalReport{
		SpecID: spec.ID, Database: spec.Name(), Transactions: d.Len(),
		MinItems: d.NumItems(), Workers: workers, Rep: rep.String(),
		CPUs: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0), Repeats: repeats,
	}
	popt := opt.Pincer
	popt.Engine = opt.Engine
	popt.KeepFrequent = false
	if popt.Context == nil {
		popt.Context = opt.Context
	}
	for _, sup := range spec.Supports {
		if opt.cancelled() {
			vr.Err = opt.Context.Err().Error()
			return vr
		}
		cell := VerticalCell{Support: sup}
		scanRes, scanM := runVerticalCell(d, sup, repeats, popt, "scan", nil)
		cell.Scan = scanM
		tlRes, tlM := runVerticalCell(d, sup, repeats, popt, "tidlist", func() *counting.TidListCounter {
			return counting.NewTidListCounter(d, counting.TidListOptions{Workers: workers, Rep: rep})
		})
		cell.TidList = tlM
		if scanRes != nil && tlRes != nil {
			cell.Agree = sameMiningResults(scanRes, tlRes)
			if tlM.Seconds > 0 {
				cell.ScanOverTidlistTime = scanM.Seconds / tlM.Seconds
			}
		}
		if opt.Progress != nil {
			opt.Progress(fmt.Sprintf("%s sup=%.4f: scan %.3fs, tidlist %.3fs (ratio %.2fx, %d intersections, rep=%s), agree=%v",
				spec.ID, sup, cell.Scan.Seconds, cell.TidList.Seconds,
				cell.ScanOverTidlistTime, cell.TidList.Intersections,
				cell.TidList.Representation, cell.Agree))
		}
		vr.Cells = append(vr.Cells, cell)
	}
	return vr
}

// WriteVerticalTable renders a sweep as a human-readable table.
func WriteVerticalTable(w io.Writer, rep VerticalReport) error {
	fmt.Fprintf(w, "%s — scan vs tid-list counting — %s (|D|=%d, workers=%d, rep=%s, %d CPUs, GOMAXPROCS=%d)\n",
		rep.SpecID, rep.Database, rep.Transactions, rep.Workers, rep.Rep, rep.CPUs, rep.GoMaxProcs)
	if rep.Err != "" {
		fmt.Fprintf(w, "sweep stopped: %s\n\n", rep.Err)
		return nil
	}
	fmt.Fprintf(w, "%-8s | %10s %10s %9s | %13s %14s | %6s\n",
		"minsup", "scan(s)", "tidlist(s)", "ratio", "intersections", "representation", "agree")
	for _, c := range rep.Cells {
		if c.Scan.Err != "" || c.TidList.Err != "" {
			reason := c.Scan.Err
			if reason == "" {
				reason = c.TidList.Err
			}
			fmt.Fprintf(w, "%-8s | skipped: %s\n", fmtSup(c.Support), reason)
			continue
		}
		fmt.Fprintf(w, "%-8s | %10.3f %10.3f %8.2fx | %13d %14s | %6v\n",
			fmtSup(c.Support), c.Scan.Seconds, c.TidList.Seconds, c.ScanOverTidlistTime,
			c.TidList.Intersections, c.TidList.Representation, c.Agree)
	}
	fmt.Fprintln(w)
	return nil
}

// WriteVerticalJSON writes sweeps as an indented JSON document.
func WriteVerticalJSON(w io.Writer, reps []VerticalReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reps)
}
