package bench

// Serving-layer benchmark: the cost of answering an identical resubmission
// from the content-addressed result cache versus re-mining it from scratch.
// The spread is the value proposition of the cache — a hit costs one
// dataset hash plus a map lookup, a miss costs the full mining run.

import (
	"bytes"
	"context"
	"testing"
	"time"

	"pincer/internal/dataset"
	"pincer/internal/quest"
	"pincer/internal/server"
)

func benchBaskets(b *testing.B) string {
	b.Helper()
	d := quest.Generate(quest.Params{
		NumTransactions: 2000, AvgTxLen: 8, AvgPatternLen: 4,
		NumPatterns: 20, NumItems: 60, Seed: 7,
	})
	var buf bytes.Buffer
	if err := dataset.WriteBasket(&buf, d); err != nil {
		b.Fatal(err)
	}
	return buf.String()
}

func benchServe(b *testing.B, cacheBytes int64) {
	srv, err := server.New(server.Config{
		SpoolDir:      b.TempDir(),
		Workers:       1,
		QueueSize:     4,
		CacheMaxBytes: cacheBytes,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Drain(ctx) // flush every in-flight spool write before TempDir cleanup
	})
	man := srv.Manager()
	spec := server.JobRequest{Baskets: benchBaskets(b), MinSupport: 0.05}
	wait := func(j *server.Job) {
		for j.Status() == server.StatusQueued || j.Status() == server.StatusRunning {
			time.Sleep(100 * time.Microsecond)
		}
		if s := j.Status(); s != server.StatusDone {
			b.Fatalf("job ended %s", s)
		}
	}
	// Warm: the first submission always mines (and populates the cache
	// when one is enabled).
	j, err := man.Submit(spec)
	if err != nil {
		b.Fatal(err)
	}
	wait(j)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := man.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		wait(j)
	}
}

// BenchmarkServeCacheHit measures answering an identical resubmission from
// the result cache.
func BenchmarkServeCacheHit(b *testing.B) { benchServe(b, 64<<20) }

// BenchmarkServeReMine measures the same resubmission with the cache
// disabled — every iteration mines the database again.
func BenchmarkServeReMine(b *testing.B) { benchServe(b, -1) }
