package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"runtime"
	"strings"
	"testing"
)

func TestRunParallelSweep(t *testing.T) {
	var progress []string
	opt := DefaultOptions()
	opt.Progress = func(l string) { progress = append(progress, l) }
	spec := tinySpec()
	rep := RunParallelSweep(spec, 0.12, []int{1, 2, 4}, 2, opt)
	if rep.SpecID != spec.ID || rep.Transactions != 600 {
		t.Fatalf("report header: %+v", rep)
	}
	if rep.SequentialSeconds <= 0 || rep.Passes == 0 {
		t.Fatalf("no sequential measurement: %+v", rep)
	}
	if len(rep.Runs) != 3 {
		t.Fatalf("runs = %d", len(rep.Runs))
	}
	for _, m := range rep.Runs {
		if !m.Agree {
			t.Errorf("workers=%d: parallel result disagrees with sequential", m.Workers)
		}
		if m.Seconds <= 0 {
			t.Errorf("workers=%d: no timing (%+v)", m.Workers, m)
		}
		// The multi-core protocol: speedup fields only on real multi-core
		// hardware, an explicit reason otherwise — never both.
		if runtime.NumCPU() > 1 {
			if m.Speedup <= 0 || m.SpeedupInvalidReason != "" {
				t.Errorf("workers=%d: want valid speedup on %d CPUs (%+v)", m.Workers, runtime.NumCPU(), m)
			}
		} else if m.Speedup != 0 || m.SpeedupInvalidReason != "cpus=1" {
			t.Errorf("workers=%d: single-CPU run must withhold speedup (%+v)", m.Workers, m)
		}
	}
	if len(progress) != 3 {
		t.Errorf("progress lines = %d", len(progress))
	}

	var tbl bytes.Buffer
	if err := WriteParallelTable(&tbl, rep); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"workers", "speedup", "sequential:", spec.ID} {
		if !strings.Contains(tbl.String(), want) {
			t.Errorf("table missing %q:\n%s", want, tbl.String())
		}
	}

	var buf bytes.Buffer
	if err := WriteParallelJSON(&buf, []ParallelReport{rep}); err != nil {
		t.Fatal(err)
	}
	var back []ParallelReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if len(back) != 1 || len(back[0].Runs) != 3 || back[0].Runs[2].Workers != 4 {
		t.Fatalf("round-tripped report: %+v", back)
	}
}

// A cancelled context must stop the sweep before the sequential baseline and
// report the reason instead of panicking or hanging.
func TestRunParallelSweepCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := DefaultOptions()
	opt.Context = ctx
	rep := RunParallelSweep(tinySpec(), 0.12, []int{1, 2}, 1, opt)
	if rep.Err == "" {
		t.Fatalf("cancelled sweep reported no error: %+v", rep)
	}
	var tbl bytes.Buffer
	if err := WriteParallelTable(&tbl, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "sweep stopped:") {
		t.Errorf("table does not surface the stop reason:\n%s", tbl.String())
	}
}
