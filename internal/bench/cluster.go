package bench

// The distributed-counting sweep: sequential Pincer-Search against the
// coordinator/worker cluster at each worker count, with the workers booted
// in-process on loopback HTTP. On one machine this measures the
// coordination overhead of the wire protocol (shard push, per-pass count
// RPCs, barrier merges) — NOT a speedup: every "remote" worker shares the
// local CPUs, so the report never calls the ratio one. What the sweep
// certifies is the distribution contract — byte-identical MFS, supports,
// and pass/candidate statistics at every cluster width — plus honest
// wall-clock and RPC accounting for the overhead.

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"time"

	"pincer/internal/cluster"
	"pincer/internal/core"
	"pincer/internal/dataset"
	"pincer/internal/mfi"
	"pincer/internal/quest"
)

// ClusterMeasure is one worker-count setting of a distributed sweep.
type ClusterMeasure struct {
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	// OverheadVsSequential is this setting's seconds / sequential seconds
	// (> 1 means the wire protocol cost that much); it is the honest
	// loopback statistic where a "speedup" would be fiction.
	OverheadVsSequential float64 `json:"overhead_vs_sequential,omitempty"`
	// Shards and RPCs account the distribution work of the fastest repeat.
	Shards int   `json:"shards"`
	RPCs   int64 `json:"rpcs"`
	// Agree reports the distribution contract: identical MFS, supports,
	// and per-pass candidate statistics against the sequential run.
	Agree bool `json:"agree"`
	// Err records why this setting produced no measurement.
	Err string `json:"error,omitempty"`
}

// ClusterReport is one spec's sequential-vs-distributed sweep.
type ClusterReport struct {
	SpecID       string  `json:"spec"`
	Database     string  `json:"database"`
	Support      float64 `json:"min_support"`
	Transactions int     `json:"transactions"`
	// CPUs and GoMaxProcs record the hardware context; with loopback
	// workers every setting shares them, which is why the report prices
	// overhead rather than claiming speedups.
	CPUs       int `json:"cpus"`
	GoMaxProcs int `json:"gomaxprocs"`
	// Repeats is the measurements per setting; Seconds values are the
	// minimum over the repeats.
	Repeats           int              `json:"repeats"`
	SequentialSeconds float64          `json:"sequential_seconds"`
	Passes            int              `json:"passes"`
	Candidates        int64            `json:"candidates"`
	MFSSize           int              `json:"mfs_size"`
	Runs              []ClusterMeasure `json:"runs"`
	// Err records why the sweep stopped before producing its runs.
	Err string `json:"error,omitempty"`
}

// loopbackWorkers boots n cluster counting workers on loopback HTTP and
// returns their base URLs with a shutdown func.
func loopbackWorkers(n int) ([]string, func(), error) {
	var servers []*http.Server
	stop := func() {
		for _, hs := range servers {
			hs.Close()
		}
	}
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			stop()
			return nil, nil, err
		}
		w := cluster.NewWorker(cluster.WorkerConfig{ID: fmt.Sprintf("bench%d", i)})
		hs := &http.Server{Handler: w, ReadHeaderTimeout: 5 * time.Second}
		go hs.Serve(ln)
		servers = append(servers, hs)
		addrs = append(addrs, "http://"+ln.Addr().String())
	}
	return addrs, stop, nil
}

// RunClusterSweep generates the spec's database once, runs sequential
// Pincer-Search, then distributed Pincer-Search over an in-process loopback
// cluster at each worker count, verifying every distributed run against the
// sequential result. Each setting is measured `repeats` times and the
// minimum wall clock is reported.
func RunClusterSweep(spec Spec, support float64, workerCounts []int, repeats int, opt Options) ClusterReport {
	if repeats < 1 {
		repeats = 1
	}
	d := quest.Generate(spec.Quest)
	rep := ClusterReport{
		SpecID: spec.ID, Database: spec.Name(), Support: support,
		Transactions: d.Len(), CPUs: runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0), Repeats: repeats,
	}

	popt := opt.Pincer
	popt.Engine = opt.Engine
	popt.KeepFrequent = false
	if popt.Context == nil {
		popt.Context = opt.Context
	}

	var seq *mfi.Result
	best := time.Duration(0)
	for i := 0; i < repeats; i++ {
		res, err := core.Mine(dataset.NewScanner(d), support, popt)
		if err != nil {
			rep.Err = err.Error()
			return rep
		}
		if seq == nil || res.Stats.Duration < best {
			seq, best = res, res.Stats.Duration
		}
	}
	rep.SequentialSeconds = best.Seconds()
	rep.Passes = seq.Stats.Passes
	rep.Candidates = seq.Stats.Candidates
	rep.MFSSize = len(seq.MFS)

	for _, n := range workerCounts {
		if opt.cancelled() {
			rep.Runs = append(rep.Runs, ClusterMeasure{Workers: n, Err: opt.Context.Err().Error()})
			continue
		}
		m := runClusterSetting(d, spec, support, n, repeats, popt, seq, best, opt)
		rep.Runs = append(rep.Runs, m)
	}
	return rep
}

// runClusterSetting measures one worker count: boot the loopback cluster,
// mine through a fresh coordinator per repeat, keep the fastest.
func runClusterSetting(d *dataset.Dataset, spec Spec, support float64, n, repeats int,
	popt core.Options, seq *mfi.Result, seqBest time.Duration, opt Options) ClusterMeasure {
	addrs, stop, err := loopbackWorkers(n)
	if err != nil {
		return ClusterMeasure{Workers: n, Err: err.Error()}
	}
	defer stop()
	pool, err := cluster.NewPool(addrs, cluster.PoolConfig{})
	if err != nil {
		return ClusterMeasure{Workers: n, Err: err.Error()}
	}
	pool.Start()
	defer pool.Close()

	var dist *mfi.Result
	var doc *cluster.Doc
	dbest := time.Duration(0)
	for i := 0; i < repeats; i++ {
		// A coordinator is per job: fresh shard assignment and RPC
		// accounting each repeat, over the shared pool.
		coord, err := cluster.NewCoordinator(fmt.Sprintf("bench-%s-w%d-r%d", spec.ID, n, i), d, pool, nil)
		if err != nil {
			return ClusterMeasure{Workers: n, Err: err.Error()}
		}
		ropt := popt
		ropt.Counter = coord
		res, err := core.Mine(dataset.NewScanner(d), support, ropt)
		if err != nil {
			return ClusterMeasure{Workers: n, Err: err.Error()}
		}
		if dist == nil || res.Stats.Duration < dbest {
			dist, dbest, doc = res, res.Stats.Duration, coord.Doc()
		}
	}
	m := ClusterMeasure{
		Workers: n, Seconds: dbest.Seconds(),
		Shards: doc.Shards, RPCs: doc.RPCs,
		Agree: sameMiningResults(dist, seq),
	}
	if seqBest > 0 {
		m.OverheadVsSequential = dbest.Seconds() / seqBest.Seconds()
	}
	if opt.Progress != nil {
		opt.Progress(fmt.Sprintf("%s sup=%.4f cluster workers=%d: %v (%.2fx sequential %v), %d shards, %d RPCs, agree=%v",
			spec.ID, support, n, dbest.Round(time.Millisecond), m.OverheadVsSequential,
			seqBest.Round(time.Millisecond), m.Shards, m.RPCs, m.Agree))
	}
	return m
}

// WriteClusterTable renders a sweep as a human-readable table.
func WriteClusterTable(w io.Writer, rep ClusterReport) error {
	fmt.Fprintf(w, "%s — distributed Pincer-Search (loopback cluster) — %s at minsup %s (|D|=%d, %d CPUs, GOMAXPROCS=%d)\n",
		rep.SpecID, rep.Database, fmtSup(rep.Support), rep.Transactions, rep.CPUs, rep.GoMaxProcs)
	fmt.Fprintf(w, "sequential: %.3fs over %d passes, %d candidates, |MFS|=%d (min of %d runs)\n",
		rep.SequentialSeconds, rep.Passes, rep.Candidates, rep.MFSSize, rep.Repeats)
	if rep.Err != "" {
		fmt.Fprintf(w, "sweep stopped: %s\n\n", rep.Err)
		return nil
	}
	fmt.Fprintln(w, "loopback workers share the CPUs, so the ratio is wire-protocol overhead, not a speedup")
	fmt.Fprintf(w, "%-8s | %10s %9s %7s %7s %6s\n", "workers", "seconds", "overhead", "shards", "rpcs", "agree")
	for _, m := range rep.Runs {
		if m.Err != "" {
			fmt.Fprintf(w, "%-8d | skipped: %s\n", m.Workers, m.Err)
			continue
		}
		fmt.Fprintf(w, "%-8d | %10.3f %8.2fx %7d %7d %6v\n",
			m.Workers, m.Seconds, m.OverheadVsSequential, m.Shards, m.RPCs, m.Agree)
	}
	fmt.Fprintln(w)
	return nil
}

// WriteClusterJSON writes sweeps as an indented JSON document.
func WriteClusterJSON(w io.Writer, reps []ClusterReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reps)
}
