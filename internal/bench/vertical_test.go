package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunVerticalSweep(t *testing.T) {
	var progress []string
	opt := DefaultOptions()
	opt.Progress = func(l string) { progress = append(progress, l) }
	spec := tinySpec()
	rep := RunVerticalSweep(spec, 1, 2, 0, opt)
	if rep.SpecID != spec.ID || rep.Transactions != 600 {
		t.Fatalf("report header: %+v", rep)
	}
	if rep.CPUs < 1 || rep.GoMaxProcs < 1 {
		t.Fatalf("hardware context missing: %+v", rep)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("cells = %d", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if !c.Agree {
			t.Errorf("sup=%.4f: tidlist result disagrees with scan", c.Support)
		}
		if c.Scan.Seconds <= 0 || c.TidList.Seconds <= 0 || c.ScanOverTidlistTime <= 0 {
			t.Errorf("sup=%.4f: no timing (%+v)", c.Support, c)
		}
		if c.TidList.Intersections == 0 || c.TidList.Representation == "" {
			t.Errorf("sup=%.4f: no intersection accounting (%+v)", c.Support, c.TidList)
		}
		if c.Scan.Intersections != 0 {
			t.Errorf("sup=%.4f: scan cell claims intersections (%+v)", c.Support, c.Scan)
		}
		if c.Scan.Passes != c.TidList.Passes || c.Scan.Candidates != c.TidList.Candidates {
			t.Errorf("sup=%.4f: accounting diverged (%+v vs %+v)", c.Support, c.Scan, c.TidList)
		}
	}
	if len(progress) != 2 {
		t.Errorf("progress lines = %d", len(progress))
	}

	var tbl bytes.Buffer
	if err := WriteVerticalTable(&tbl, rep); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"tidlist(s)", "ratio", "intersections", spec.ID, "CPUs"} {
		if !strings.Contains(tbl.String(), want) {
			t.Errorf("table missing %q:\n%s", want, tbl.String())
		}
	}

	var buf bytes.Buffer
	if err := WriteVerticalJSON(&buf, []VerticalReport{rep}); err != nil {
		t.Fatal(err)
	}
	var back []VerticalReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if len(back) != 1 || len(back[0].Cells) != 2 || back[0].Cells[0].TidList.Counter != "tidlist" {
		t.Fatalf("round-tripped report: %+v", back)
	}
	// The strategy ratio must never be presented as a parallel speedup: the
	// JSON field name is pinned here on purpose.
	if !strings.Contains(buf.String(), "scan_over_tidlist_time") || strings.Contains(buf.String(), `"speedup"`) {
		t.Errorf("vertical JSON must use scan_over_tidlist_time, not speedup:\n%s", buf.String())
	}
}

// A cancelled context must stop the sweep before any cell and report why.
func TestRunVerticalSweepCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := DefaultOptions()
	opt.Context = ctx
	rep := RunVerticalSweep(tinySpec(), 1, 1, 0, opt)
	if rep.Err == "" || len(rep.Cells) != 0 {
		t.Fatalf("cancelled sweep: %+v", rep)
	}
	var tbl bytes.Buffer
	if err := WriteVerticalTable(&tbl, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "sweep stopped:") {
		t.Errorf("table does not surface the stop reason:\n%s", tbl.String())
	}
}

// TestRunSpecTidlistCounter exercises the Options.Counter knob end-to-end:
// RunSpec with the tid-list counter must agree with Apriori on every cell.
func TestRunSpecTidlistCounter(t *testing.T) {
	opt := DefaultOptions()
	opt.Counter = "tidlist"
	cells := RunSpec(tinySpec(), opt)
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		if c.Apriori.Skipped || c.Pincer.Skipped || !c.Agree {
			t.Errorf("sup=%.4f: %+v", c.Support, c)
		}
	}
}
