// Package bench regenerates the paper's evaluation (Figures 3 and 4): for
// each benchmark database and minimum-support sweep it runs Apriori and
// Pincer-Search under identical conditions and reports relative execution
// time, number of candidates (paper accounting: passes 1–2 excluded, MFCS
// candidates included), and number of passes.
package bench

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"pincer/internal/apriori"
	"pincer/internal/core"
	"pincer/internal/counting"
	"pincer/internal/dataset"
	"pincer/internal/mfi"
	"pincer/internal/obsv"
	"pincer/internal/quest"
)

// Spec describes one experiment: a database and its support sweep — one
// row of Figure 3 or Figure 4.
type Spec struct {
	ID       string // experiment id, e.g. "F4-T20I10"
	Figure   int    // 3 (scattered) or 4 (concentrated)
	Quest    quest.Params
	Supports []float64 // minimum supports, fractions, descending
	// Headline describes the paper's reported shape for this row.
	Headline string
}

// Name returns the conventional database name with the |L| annotation.
func (s Spec) Name() string {
	return fmt.Sprintf("%s (|L|=%d)", s.Quest.Name(), s.Quest.Defaults().NumPatterns)
}

// Figure3Specs returns the scattered-distribution experiments (|L| = 2000).
// numTransactions scales |D| (0 means the paper's 100K).
func Figure3Specs(numTransactions int) []Spec {
	if numTransactions <= 0 {
		numTransactions = 100_000
	}
	base := func(t, i float64) quest.Params {
		return quest.Params{
			NumTransactions: numTransactions,
			AvgTxLen:        t,
			AvgPatternLen:   i,
			NumPatterns:     2000,
			NumItems:        1000,
			Seed:            1998,
		}
	}
	return []Spec{
		{
			ID: "F3-T5I2", Figure: 3, Quest: base(5, 2),
			Supports: []float64{0.0075, 0.005, 0.0033, 0.0025},
			Headline: "Pincer counts MORE candidates (MFCS overhead, short maximal itemsets) yet stays close on time",
		},
		{
			ID: "F3-T10I4", Figure: 3, Quest: base(10, 4),
			Supports: []float64{0.02, 0.015, 0.01, 0.0075, 0.005},
			Headline: "best case ≈1.7x at 0.5%; slight loss possible near 0.75%",
		},
		{
			ID: "F3-T20I6", Figure: 3, Quest: base(20, 6),
			Supports: []float64{0.02, 0.015, 0.01},
			Headline: "moderate wins from fewer passes",
		},
	}
}

// Figure4Specs returns the concentrated-distribution experiments (|L| = 50).
func Figure4Specs(numTransactions int) []Spec {
	if numTransactions <= 0 {
		numTransactions = 100_000
	}
	base := func(i float64) quest.Params {
		return quest.Params{
			NumTransactions: numTransactions,
			AvgTxLen:        20,
			AvgPatternLen:   i,
			NumPatterns:     50,
			NumItems:        1000,
			Seed:            1998,
		}
	}
	return []Spec{
		{
			ID: "F4-T20I6", Figure: 4, Quest: base(6),
			Supports: []float64{0.18, 0.16, 0.14, 0.12, 0.11, 0.10},
			Headline: "≈2.3x at 18%; non-monotone effect at 12%→11% (Apriori adds a pass, Pincer drops to ~4)",
		},
		{
			ID: "F4-T20I10", Figure: 4, Quest: base(10),
			Supports: []float64{0.10, 0.08, 0.06},
			Headline: "≈23x at 6%: maximal itemsets up to ~16 items found in early passes",
		},
		{
			ID: "F4-T20I15", Figure: 4, Quest: base(15),
			Supports: []float64{0.10, 0.08, 0.07, 0.06},
			Headline: ">2 orders of magnitude at 6–7%; ~17-item maximal itemsets in 3 passes",
		},
	}
}

// AllSpecs returns both figures' experiments.
func AllSpecs(numTransactions int) []Spec {
	return append(Figure3Specs(numTransactions), Figure4Specs(numTransactions)...)
}

// SpecByID finds a spec by its experiment id.
func SpecByID(id string, numTransactions int) (Spec, bool) {
	for _, s := range AllSpecs(numTransactions) {
		if strings.EqualFold(s.ID, id) {
			return s, true
		}
	}
	return Spec{}, false
}

// Measure is one algorithm's result on one cell.
type Measure struct {
	Time        time.Duration
	Candidates  int64 // paper accounting
	Passes      int
	Frequent    int64 // itemsets explicitly discovered
	MFSSize     int
	LongestMFS  int
	AdaptiveOff bool
	Skipped     bool // budget-skipped or aborted (Time is meaningless)
	// Note explains a Skipped cell that did not come from the wall-clock
	// budget: a cancelled context, an exceeded resource budget, or any
	// other mining error.
	Note string
}

// Cell is one (database, support) measurement pair.
type Cell struct {
	SpecID   string
	Database string
	Support  float64
	Apriori  Measure
	Pincer   Measure
	// Agree reports that both algorithms produced the identical MFS —
	// the harness's built-in correctness check.
	Agree bool
}

// RelativeTime returns apriori time / pincer time (the paper's headline
// metric; > 1 means Pincer-Search wins).
func (c Cell) RelativeTime() float64 {
	if c.Pincer.Time <= 0 || c.Apriori.Skipped || c.Pincer.Skipped {
		return 0
	}
	return float64(c.Apriori.Time) / float64(c.Pincer.Time)
}

// Options configures a harness run.
type Options struct {
	Engine counting.Engine
	// Pincer configures the Pincer-Search variant (zero value: defaults).
	// Its Context, Deadline, budget, and Checkpointer fields apply to the
	// pincer cells of RunSpec and to RunParallelSweep.
	Pincer core.Options
	// Apriori configures the Apriori baseline of RunSpec (zero value:
	// defaults), including its Context, Deadline, and budget fields.
	Apriori apriori.Options
	// Context, when non-nil, cancels the whole harness: it is checked
	// between cells and propagated into every miner that has no context of
	// its own, so a cancellation mid-cell also stops that cell's run.
	// Remaining cells are marked skipped.
	Context context.Context
	// Resume makes pincer cells continue from Pincer.Checkpointer's saved
	// state (when one exists and matches) instead of starting fresh.
	Resume bool
	// Budget is a soft per-algorithm wall-clock guard: cells are run from
	// the highest support downward, and once an algorithm exceeds the
	// budget on a cell, its remaining (harder) cells in the spec are
	// skipped and marked. Zero means no guard.
	Budget time.Duration
	// Progress, when non-nil, receives one line per finished cell.
	Progress func(string)
	// Tracer, when non-nil, receives per-pass span events from the first
	// repeat of each configuration in RunParallelSweep, and the same events
	// are folded into ParallelReport.Trace.
	Tracer obsv.Tracer
	// Counter selects the pincer support-counting strategy for RunSpec
	// cells: "" or "scan" (database scans, the default) or "tidlist"
	// (vertical tid-list intersection; a fresh counter is built per cell).
	// The results are identical either way; only the wall clock changes.
	Counter string
	// CounterRep is the tidset representation mode for the tid-list counter
	// (zero value: automatic density-based choice).
	CounterRep counting.RepMode
}

// must strips the impossible error of an in-memory mining run: memory scans
// cannot fail, so any error here is a programmer error.
func must[R any](res R, err error) R {
	if err != nil {
		panic(err)
	}
	return res
}

// cancelled reports whether the harness context has been cancelled.
func (o Options) cancelled() bool {
	return o.Context != nil && o.Context.Err() != nil
}

// DefaultOptions returns the standard harness configuration.
func DefaultOptions() Options {
	p := core.DefaultOptions()
	p.KeepFrequent = false
	a := apriori.DefaultOptions()
	a.KeepFrequent = false
	return Options{Engine: counting.EngineHashTree, Pincer: p, Apriori: a}
}

// RunSpec generates the spec's database once and sweeps its supports. A
// cell whose miner aborts (cancellation, deadline, or a resource budget
// from Options.Apriori / Options.Pincer) is marked skipped with its Note
// set; the sweep carries on with the other algorithm until both are dead.
func RunSpec(spec Spec, opt Options) []Cell {
	d := quest.Generate(spec.Quest)
	supports := append([]float64(nil), spec.Supports...)
	sort.Sort(sort.Reverse(sort.Float64Slice(supports)))

	cells := make([]Cell, 0, len(supports))
	aprioriDead, pincerDead := false, false
	for _, sup := range supports {
		var cancelNote string
		if opt.cancelled() {
			aprioriDead, pincerDead = true, true
			cancelNote = "harness " + opt.Context.Err().Error()
		}
		cell := Cell{SpecID: spec.ID, Database: spec.Name(), Support: sup}
		var aMFS, pMFS []string

		if aprioriDead {
			cell.Apriori.Skipped = true
			cell.Apriori.Note = cancelNote
		} else {
			aopt := opt.Apriori
			aopt.Engine = opt.Engine
			aopt.KeepFrequent = false
			if aopt.Context == nil {
				aopt.Context = opt.Context
			}
			res, err := apriori.Mine(dataset.NewScanner(d), sup, aopt)
			if err != nil {
				cell.Apriori.Skipped = true
				cell.Apriori.Note = err.Error()
				aprioriDead = true
			} else {
				cell.Apriori = Measure{
					Time: res.Stats.Duration, Candidates: res.Stats.Candidates,
					Passes: res.Stats.Passes, Frequent: res.Stats.FrequentCount,
					MFSSize: len(res.MFS), LongestMFS: res.LongestMFS(),
				}
				for _, m := range res.MFS {
					aMFS = append(aMFS, m.String())
				}
				if opt.Budget > 0 && res.Stats.Duration > opt.Budget {
					aprioriDead = true
				}
			}
		}

		if pincerDead {
			cell.Pincer.Skipped = true
			cell.Pincer.Note = cancelNote
		} else {
			popt := opt.Pincer
			popt.Engine = opt.Engine
			if popt.Context == nil {
				popt.Context = opt.Context
			}
			if opt.Counter == "tidlist" {
				popt.Counter = counting.NewTidListCounter(d, counting.TidListOptions{Rep: opt.CounterRep})
			}
			var res *mfi.Result
			var err error
			if opt.Resume && popt.Checkpointer != nil {
				res, err = core.MineResume(dataset.NewScanner(d), dataset.MinCountFor(d.Len(), sup), popt)
			} else {
				res, err = core.Mine(dataset.NewScanner(d), sup, popt)
			}
			if err != nil {
				cell.Pincer.Skipped = true
				cell.Pincer.Note = err.Error()
				pincerDead = true
			} else {
				cell.Pincer = Measure{
					Time: res.Stats.Duration, Candidates: res.Stats.Candidates,
					Passes: res.Stats.Passes, Frequent: res.Stats.FrequentCount,
					MFSSize: len(res.MFS), LongestMFS: res.LongestMFS(),
					AdaptiveOff: res.Stats.AdaptiveOff,
				}
				for _, m := range res.MFS {
					pMFS = append(pMFS, m.String())
				}
				if opt.Budget > 0 && res.Stats.Duration > opt.Budget {
					pincerDead = true
				}
			}
		}

		if !cell.Apriori.Skipped && !cell.Pincer.Skipped {
			cell.Agree = equalStringSets(aMFS, pMFS)
		}
		if opt.Progress != nil {
			opt.Progress(progressLine(cell))
		}
		cells = append(cells, cell)
	}
	return cells
}

func equalStringSets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	sort.Strings(a)
	sort.Strings(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func progressLine(c Cell) string {
	if c.Apriori.Skipped || c.Pincer.Skipped {
		reason := "budget"
		if c.Apriori.Note != "" {
			reason = c.Apriori.Note
		} else if c.Pincer.Note != "" {
			reason = c.Pincer.Note
		}
		return fmt.Sprintf("%s sup=%.4f: skipped (%s)", c.SpecID, c.Support, reason)
	}
	return fmt.Sprintf("%s sup=%.4f: apriori %v/%d passes, pincer %v/%d passes, rel %.2fx, agree=%v",
		c.SpecID, c.Support, c.Apriori.Time.Round(time.Millisecond), c.Apriori.Passes,
		c.Pincer.Time.Round(time.Millisecond), c.Pincer.Passes, c.RelativeTime(), c.Agree)
}

// WriteTable renders cells of one spec as the three-panel table of the
// figures: relative time, candidates, passes.
func WriteTable(w io.Writer, spec Spec, cells []Cell) error {
	fmt.Fprintf(w, "%s — Figure %d — %s\n", spec.ID, spec.Figure, spec.Name())
	if spec.Headline != "" {
		fmt.Fprintf(w, "paper shape: %s\n", spec.Headline)
	}
	fmt.Fprintf(w, "%-8s | %12s %12s %8s | %10s %10s | %6s %6s | %6s %7s %5s\n",
		"minsup", "apriori(s)", "pincer(s)", "rel", "cand(A)", "cand(P)", "pass A", "pass P", "|MFS|", "longest", "agree")
	fmt.Fprintln(w, strings.Repeat("-", 124))
	for _, c := range cells {
		if c.Apriori.Skipped || c.Pincer.Skipped {
			reason := "previous cell exceeded the time budget"
			if c.Apriori.Note != "" {
				reason = c.Apriori.Note
			} else if c.Pincer.Note != "" {
				reason = c.Pincer.Note
			}
			fmt.Fprintf(w, "%-8s | skipped: %s\n", fmtSup(c.Support), reason)
			continue
		}
		fmt.Fprintf(w, "%-8s | %12.3f %12.3f %7.2fx | %10d %10d | %6d %6d | %6d %7d %5v\n",
			fmtSup(c.Support),
			c.Apriori.Time.Seconds(), c.Pincer.Time.Seconds(), c.RelativeTime(),
			c.Apriori.Candidates, c.Pincer.Candidates,
			c.Apriori.Passes, c.Pincer.Passes,
			c.Pincer.MFSSize, c.Pincer.LongestMFS, c.Agree)
	}
	fmt.Fprintln(w)
	return nil
}

// WriteCSV renders cells as machine-readable CSV (one header per call).
func WriteCSV(w io.Writer, cells []Cell) error {
	if _, err := fmt.Fprintln(w, "spec,database,minsup,apriori_seconds,pincer_seconds,relative_time,apriori_candidates,pincer_candidates,apriori_passes,pincer_passes,mfs_size,longest_mfs,pincer_adaptive_off,agree,skipped"); err != nil {
		return err
	}
	for _, c := range cells {
		skipped := c.Apriori.Skipped || c.Pincer.Skipped
		if _, err := fmt.Fprintf(w, "%s,%q,%g,%.6f,%.6f,%.4f,%d,%d,%d,%d,%d,%d,%v,%v,%v\n",
			c.SpecID, c.Database, c.Support,
			c.Apriori.Time.Seconds(), c.Pincer.Time.Seconds(), c.RelativeTime(),
			c.Apriori.Candidates, c.Pincer.Candidates,
			c.Apriori.Passes, c.Pincer.Passes,
			c.Pincer.MFSSize, c.Pincer.LongestMFS, c.Pincer.AdaptiveOff, c.Agree, skipped); err != nil {
			return err
		}
	}
	return nil
}

func fmtSup(s float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", s*100), "0"), ".") + "%"
}
