package bench

// The engine sweep measures the dataset-adaptive selection policy against
// every fixed plan on a rising-density dataset ladder — the axis the policy
// keys on. Each cell verifies that every plan mines the identical MFS
// (selection may only ever change latency, never the answer), and the
// report's summary records the two claims the policy is held to: auto is
// never the worst plan on any cell, and auto's summed wall clock beats the
// best single fixed choice. The auto measurement honestly includes the
// profile computation and the selection itself.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"pincer/internal/apriori"
	"pincer/internal/core"
	"pincer/internal/counting"
	"pincer/internal/dataset"
	"pincer/internal/fpmax"
	"pincer/internal/mfi"
	"pincer/internal/quest"
	"pincer/internal/vertical"
)

// EngineSweepDatasets returns the rising-density ladder: pattern pools
// shrink and transactions lengthen as the index grows, sweeping
// sparse-scattered (many short patterns over a wide universe) to
// dense-concentrated (a handful of long patterns over a narrow one). It
// mirrors the engine-invariance property test's corpus so the committed
// BENCH_engines.json calibrates exactly the workloads the test pins.
func EngineSweepDatasets(numTx, n int) []quest.Params {
	if numTx <= 0 {
		numTx = 2000
	}
	out := make([]quest.Params, n)
	for i := range out {
		items := 600 - 104*i
		if items < 80 {
			items = 80
		}
		patterns := 90 - 16*i
		if patterns < 6 {
			patterns = 6
		}
		out[i] = quest.Params{
			NumTransactions: numTx,
			AvgTxLen:        float64(5 + 2*i),
			AvgPatternLen:   float64(2 + i/2),
			NumPatterns:     patterns,
			NumItems:        items,
			Seed:            int64(100 + i),
		}
	}
	return out
}

// EnginePlanSpec names one fixed plan of the sweep.
type EnginePlanSpec struct {
	Name string
	Sel  counting.Selection
}

// EnginePlans returns the fixed-plan roster the adaptive policy competes
// against: every sequential miner the policy can select, plus the scan
// baseline it must beat on dense data.
func EnginePlans() []EnginePlanSpec {
	return []EnginePlanSpec{
		{"apriori", counting.Selection{Algorithm: "apriori", Engine: counting.EngineHashTree}},
		{"pincer-scan", counting.Selection{Algorithm: "pincer", Engine: counting.EngineHashTree}},
		{"pincer-tidlist", counting.Selection{Algorithm: "pincer", Counter: "tidlist", Engine: counting.EngineHashTree}},
		{"vertical", counting.Selection{Algorithm: "vertical"}},
		{"fpmax", counting.Selection{Algorithm: "fpmax"}},
	}
}

// RunEnginePlan executes one Selection on a dataset — the same dispatch the
// server performs for a resolved plan.
func RunEnginePlan(d *dataset.Dataset, minsup float64, sel counting.Selection) (*mfi.Result, error) {
	minCount := d.MinCount(minsup)
	switch sel.Algorithm {
	case "pincer":
		opt := core.DefaultOptions()
		opt.Engine = sel.Engine
		opt.KeepFrequent = false
		if sel.Counter == "tidlist" {
			opt.Counter = counting.NewTidListCounter(d, counting.TidListOptions{})
		}
		return core.MineCount(dataset.NewScanner(d), minCount, opt)
	case "apriori":
		opt := apriori.DefaultOptions()
		opt.Engine = sel.Engine
		opt.KeepFrequent = false
		return apriori.MineCount(dataset.NewScanner(d), minCount, opt)
	case "vertical":
		opt := vertical.DefaultOptions()
		opt.KeepFrequent = false
		res := vertical.MineMaximal(d, minsup, opt)
		return &res.Result, nil
	case "fpmax":
		return &fpmax.MineMaximalCount(d, minCount, fpmax.DefaultOptions()).Result, nil
	}
	return nil, fmt.Errorf("unknown algorithm %q", sel.Algorithm)
}

// EngineMeasure is one plan's timing on one cell (minimum over repeats).
type EngineMeasure struct {
	Plan    string  `json:"plan"`
	Seconds float64 `json:"seconds"`
	MFSSize int     `json:"mfs_size"`
	Err     string  `json:"error,omitempty"`
}

// EngineCell is one (dataset, support) cell: every fixed plan plus the
// adaptive selection, with the policy's decision and the cell's winner.
type EngineCell struct {
	Dataset      string  `json:"dataset"`
	Transactions int     `json:"transactions"`
	Density      float64 `json:"density"`
	Skew         float64 `json:"skew"`
	Support      float64 `json:"min_support"`

	Fixed []EngineMeasure `json:"fixed"`
	// Auto is the delegated run; its Seconds include computing the profile
	// and evaluating the policy, not just the mining.
	Auto          EngineMeasure `json:"auto"`
	AutoPlan      string        `json:"auto_plan"`
	AutoRationale string        `json:"auto_rationale,omitempty"`

	// Winner is the fastest fixed plan; AutoNotWorst reports that auto beat
	// (or tied, within 10% + 2ms timing slack) the slowest fixed plan.
	Winner       string `json:"winner"`
	AutoNotWorst bool   `json:"auto_not_worst"`
	// Agree reports that every plan and auto mined the identical MFS.
	Agree bool `json:"agree"`
}

// EngineReport is the whole sweep with its machine context and the two
// summary verdicts the policy is held to.
type EngineReport struct {
	// CPUs and GoMaxProcs record the hardware context of every report in
	// the multi-core protocol, whether or not the measurement depends on it.
	CPUs         int          `json:"cpus"`
	GoMaxProcs   int          `json:"gomaxprocs"`
	Repeats      int          `json:"repeats"`
	Transactions int          `json:"transactions"`
	Supports     []float64    `json:"supports"`
	Cells        []EngineCell `json:"cells"`
	// SumSeconds totals each plan's wall clock across all cells ("auto"
	// included); BestFixed is the cheapest fixed plan by that total.
	SumSeconds map[string]float64 `json:"sum_seconds"`
	BestFixed  string             `json:"best_fixed"`
	// AutoNeverWorst: on no cell was auto slower than the worst fixed plan.
	// AutoBeatsBestFixedSum: auto's total beats the best single fixed
	// choice's total — the adaptive policy pays for itself.
	AutoNeverWorst        bool   `json:"auto_never_worst"`
	AutoBeatsBestFixedSum bool   `json:"auto_beats_best_fixed_sum"`
	Err                   string `json:"error,omitempty"`
}

// engineMFSKey renders an MFS canonically for cross-plan equality.
func engineMFSKey(res *mfi.Result) string {
	lines := make([]string, len(res.MFS))
	for i, m := range res.MFS {
		lines[i] = fmt.Sprintf("%s=%d", m.String(), res.MFSSupports[i])
	}
	sort.Strings(lines)
	return strings.Join(lines, ";")
}

// runEngineCellPlan measures one plan: repeats runs, minimum wall clock.
func runEngineCellPlan(d *dataset.Dataset, minsup float64, repeats int, name string, sel counting.Selection) (string, EngineMeasure) {
	m := EngineMeasure{Plan: name}
	var key string
	best := time.Duration(-1)
	for i := 0; i < repeats; i++ {
		start := time.Now()
		res, err := RunEnginePlan(d, minsup, sel)
		took := time.Since(start)
		if err != nil {
			m.Err = err.Error()
			return "", m
		}
		if best < 0 || took < best {
			best = took
			m.MFSSize = len(res.MFS)
			key = engineMFSKey(res)
		}
	}
	m.Seconds = best.Seconds()
	return key, m
}

// RunEngineSweep measures every fixed plan and the adaptive selection on the
// rising-density ladder at each support. opt supplies Context (checked
// between cells) and Progress only.
func RunEngineSweep(params []quest.Params, supports []float64, repeats int, opt Options) EngineReport {
	if repeats < 1 {
		repeats = 1
	}
	rep := EngineReport{
		CPUs: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0),
		Repeats: repeats, Supports: supports,
		SumSeconds: map[string]float64{},
	}
	plans := EnginePlans()
	for _, p := range params {
		if opt.cancelled() {
			rep.Err = opt.Context.Err().Error()
			return rep
		}
		d := quest.Generate(p)
		rep.Transactions = d.Len()
		prof := d.Profile()
		for _, sup := range supports {
			if opt.cancelled() {
				rep.Err = opt.Context.Err().Error()
				return rep
			}
			cell := EngineCell{
				Dataset: p.Name(), Transactions: d.Len(),
				Density: prof.Density, Skew: prof.Skew, Support: sup,
			}
			keys := map[string]string{}
			worst, bestFixed := 0.0, -1.0
			for _, plan := range plans {
				key, m := runEngineCellPlan(d, sup, repeats, plan.Name, plan.Sel)
				cell.Fixed = append(cell.Fixed, m)
				if m.Err != "" {
					continue
				}
				keys[plan.Name] = key
				rep.SumSeconds[plan.Name] += m.Seconds
				if m.Seconds > worst {
					worst = m.Seconds
				}
				if bestFixed < 0 || m.Seconds < bestFixed {
					bestFixed, cell.Winner = m.Seconds, plan.Name
				}
			}

			// The delegated run: profile + policy + mine, all on the clock.
			auto := EngineMeasure{Plan: "auto"}
			var autoKey string
			best := time.Duration(-1)
			for i := 0; i < repeats; i++ {
				start := time.Now()
				sel := counting.SelectEngine(d.Profile())
				res, err := RunEnginePlan(d, sup, sel)
				took := time.Since(start)
				if err != nil {
					auto.Err = err.Error()
					break
				}
				if best < 0 || took < best {
					best = took
					auto.MFSSize = len(res.MFS)
					autoKey = engineMFSKey(res)
					cell.AutoPlan = sel.Algorithm
					if sel.Counter != "" {
						cell.AutoPlan += "+" + sel.Counter
					}
					cell.AutoRationale = sel.Rationale
				}
			}
			if auto.Err == "" {
				auto.Seconds = best.Seconds()
				rep.SumSeconds["auto"] += auto.Seconds
				// 10% + 2ms slack absorbs scheduler noise on these short
				// cells without masking a genuinely wrong selection.
				cell.AutoNotWorst = auto.Seconds <= worst*1.10+0.002
			}
			cell.Auto = auto

			cell.Agree = auto.Err == ""
			for _, plan := range plans {
				if k, ok := keys[plan.Name]; !ok || k != autoKey {
					cell.Agree = false
				}
			}
			if opt.Progress != nil {
				opt.Progress(fmt.Sprintf("%s sup=%g dens=%.3f skew=%.2f: auto=%s %.3fs (winner %s %.3fs, worst %.3fs), agree=%v",
					cell.Dataset, sup, cell.Density, cell.Skew, cell.AutoPlan, auto.Seconds, cell.Winner, bestFixed, worst, cell.Agree))
			}
			rep.Cells = append(rep.Cells, cell)
		}
	}

	rep.AutoNeverWorst = len(rep.Cells) > 0
	for _, c := range rep.Cells {
		if !c.AutoNotWorst {
			rep.AutoNeverWorst = false
		}
	}
	bestSum := -1.0
	for _, plan := range plans {
		if s, ok := rep.SumSeconds[plan.Name]; ok && (bestSum < 0 || s < bestSum) {
			bestSum, rep.BestFixed = s, plan.Name
		}
	}
	if autoSum, ok := rep.SumSeconds["auto"]; ok && bestSum >= 0 {
		rep.AutoBeatsBestFixedSum = autoSum < bestSum
	}
	return rep
}

// WriteEngineTable renders the sweep as a human-readable table.
func WriteEngineTable(w io.Writer, rep EngineReport) error {
	fmt.Fprintf(w, "engine selection sweep — %d CPUs, GOMAXPROCS=%d, %d repeats (min reported), |D|=%d\n",
		rep.CPUs, rep.GoMaxProcs, rep.Repeats, rep.Transactions)
	if rep.Err != "" {
		fmt.Fprintf(w, "sweep stopped: %s\n\n", rep.Err)
		return nil
	}
	plans := EnginePlans()
	fmt.Fprintf(w, "%-14s %-7s %6s %5s |", "dataset", "minsup", "dens", "skew")
	for _, p := range plans {
		fmt.Fprintf(w, " %14s", p.Name)
	}
	fmt.Fprintf(w, " | %10s %-22s %5s\n", "auto", "auto plan", "agree")
	for _, c := range rep.Cells {
		fmt.Fprintf(w, "%-14s %-7g %6.3f %5.2f |", c.Dataset, c.Support, c.Density, c.Skew)
		for _, m := range c.Fixed {
			if m.Err != "" {
				fmt.Fprintf(w, " %14s", "error")
				continue
			}
			mark := " "
			if m.Plan == c.Winner {
				mark = "*"
			}
			fmt.Fprintf(w, " %12.3fs%s", m.Seconds, mark)
		}
		fmt.Fprintf(w, " | %9.3fs %-22s %5v\n", c.Auto.Seconds, c.AutoPlan, c.Agree)
	}
	fmt.Fprintf(w, "\nsum of cells: ")
	for _, p := range plans {
		fmt.Fprintf(w, "%s=%.3fs ", p.Name, rep.SumSeconds[p.Name])
	}
	fmt.Fprintf(w, "auto=%.3fs\n", rep.SumSeconds["auto"])
	fmt.Fprintf(w, "best fixed: %s; auto never worst: %v; auto beats best fixed sum: %v\n\n",
		rep.BestFixed, rep.AutoNeverWorst, rep.AutoBeatsBestFixedSum)
	return nil
}

// WriteEngineJSON writes the report as an indented JSON document.
func WriteEngineJSON(w io.Writer, rep EngineReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
