package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"pincer/internal/core"
	"pincer/internal/dataset"
	"pincer/internal/mfi"
	"pincer/internal/obsv"
	"pincer/internal/parallel"
	"pincer/internal/quest"
)

// ParallelMeasure is one workers setting of a count-distribution sweep.
type ParallelMeasure struct {
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	// Speedup is sequential seconds / this setting's seconds (> 1 means the
	// parallel run wins). It is withheld — zero, omitted from the JSON, and
	// SpeedupInvalidReason set — when the machine cannot give the comparison
	// meaning (a single CPU: every "parallel" run is a time-sliced sequential
	// run plus goroutine overhead, and reporting a ratio would dress
	// scheduler noise up as a parallelism measurement).
	Speedup float64 `json:"speedup,omitempty"`
	// SpeedupInvalidReason explains a withheld Speedup, e.g. "cpus=1".
	SpeedupInvalidReason string `json:"speedup_invalid_reason,omitempty"`
	// Agree reports the built-in correctness check: identical MFS, supports,
	// and per-pass candidate statistics against the sequential run.
	Agree bool `json:"agree"`
	// Err records why this setting produced no measurement (cancellation
	// or a mining failure); Seconds and Agree are meaningless when set.
	Err string `json:"error,omitempty"`
}

// ParallelReport is one spec's sequential-vs-parallel wall-clock sweep.
type ParallelReport struct {
	SpecID       string  `json:"spec"`
	Database     string  `json:"database"`
	Support      float64 `json:"min_support"`
	Transactions int     `json:"transactions"`
	// CPUs and GoMaxProcs record the hardware context: count distribution
	// cannot beat the sequential run on a single-CPU machine, so speedups
	// are only meaningful relative to these.
	CPUs       int `json:"cpus"`
	GoMaxProcs int `json:"gomaxprocs"`
	// Repeats is the measurements per setting; Seconds values are the
	// minimum over the repeats.
	Repeats           int               `json:"repeats"`
	SequentialSeconds float64           `json:"sequential_seconds"`
	Passes            int               `json:"passes"`
	Candidates        int64             `json:"candidates"`
	MFSSize           int               `json:"mfs_size"`
	Runs              []ParallelMeasure `json:"runs"`
	// Err records why the sweep stopped before producing its runs (for
	// example a cancelled sequential baseline).
	Err string `json:"error,omitempty"`
	// Trace holds the per-pass span events of the first sequential repeat
	// and the first repeat of each worker setting, populated only when
	// Options.Tracer is set.
	Trace []obsv.PassEvent `json:"trace,omitempty"`
}

// speedupInvalidReason reports why parallel-vs-sequential wall-clock ratios
// must not be emitted ("" when they are valid). On a single-CPU machine the
// sweep still runs — the correctness check and per-setting timings are
// meaningful — but the protocol refuses to call any ratio a speedup.
func speedupInvalidReason() string {
	if runtime.NumCPU() <= 1 {
		return "cpus=1"
	}
	return ""
}

// sameMiningResults checks the equivalence RunParallelSweep certifies:
// identical MFS with identical supports, and identical pass/candidate
// statistics.
func sameMiningResults(a, b *mfi.Result) bool {
	if len(a.MFS) != len(b.MFS) {
		return false
	}
	for i := range a.MFS {
		if !a.MFS[i].Equal(b.MFS[i]) || a.MFSSupports[i] != b.MFSSupports[i] {
			return false
		}
	}
	if a.Stats.Passes != b.Stats.Passes || a.Stats.Candidates != b.Stats.Candidates ||
		a.Stats.MFCSCandidates != b.Stats.MFCSCandidates {
		return false
	}
	for i, p := range a.Stats.PassDetails {
		if p != b.Stats.PassDetails[i] {
			return false
		}
	}
	return true
}

// RunParallelSweep generates the spec's database once, runs sequential
// Pincer-Search, then count-distribution parallel Pincer-Search at each
// worker count, verifying every parallel run against the sequential result.
// Each setting is measured `repeats` times and the minimum wall clock is
// reported (the standard noise-robust statistic for speedup curves).
func RunParallelSweep(spec Spec, support float64, workerCounts []int, repeats int, opt Options) ParallelReport {
	if repeats < 1 {
		repeats = 1
	}
	d := quest.Generate(spec.Quest)
	rep := ParallelReport{
		SpecID: spec.ID, Database: spec.Name(), Support: support,
		Transactions: d.Len(), CPUs: runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0), Repeats: repeats,
	}

	popt := opt.Pincer
	popt.Engine = opt.Engine
	popt.KeepFrequent = false

	// When tracing is requested, the first repeat of every configuration
	// also feeds a local collector whose pass events fold into the report.
	// Repeats beyond the first stay untraced so the timing loop is not
	// perturbed.
	var collect *obsv.Collector
	if opt.Tracer != nil {
		collect = obsv.NewCollector()
	}
	tracerFor := func(i int) obsv.Tracer {
		if collect == nil || i > 0 {
			return nil
		}
		return obsv.Multi(opt.Tracer, collect)
	}

	if popt.Context == nil {
		popt.Context = opt.Context
	}

	var seq *mfi.Result
	best := time.Duration(0)
	for i := 0; i < repeats; i++ {
		ropt := popt
		ropt.Tracer = tracerFor(i)
		res, err := core.Mine(dataset.NewScanner(d), support, ropt)
		if err != nil {
			// Without an uninterrupted sequential baseline there is nothing
			// to compare the parallel runs against; stop the sweep here.
			rep.Err = err.Error()
			return rep
		}
		if seq == nil || res.Stats.Duration < best {
			seq, best = res, res.Stats.Duration
		}
	}
	rep.SequentialSeconds = best.Seconds()
	rep.Passes = seq.Stats.Passes
	rep.Candidates = seq.Stats.Candidates
	rep.MFSSize = len(seq.MFS)

	paropt := parallel.DefaultOptions()
	paropt.Engine = opt.Engine
	paropt.KeepFrequent = false
	paropt.Context = opt.Context
	for _, w := range workerCounts {
		if opt.cancelled() {
			rep.Runs = append(rep.Runs, ParallelMeasure{Workers: w, Err: opt.Context.Err().Error()})
			continue
		}
		paropt.Workers = w
		var par *mfi.Result
		var runErr error
		pbest := time.Duration(0)
		for i := 0; i < repeats; i++ {
			paropt.Tracer = tracerFor(i)
			res, err := parallel.MinePincerOpts(d, support, popt, paropt)
			if err != nil {
				runErr = err
				break
			}
			if par == nil || res.Stats.Duration < pbest {
				par, pbest = res, res.Stats.Duration
			}
		}
		if runErr != nil {
			rep.Runs = append(rep.Runs, ParallelMeasure{Workers: w, Err: runErr.Error()})
			continue
		}
		m := ParallelMeasure{
			Workers: w, Seconds: pbest.Seconds(),
			Agree: sameMiningResults(par, seq),
		}
		if reason := speedupInvalidReason(); reason != "" {
			m.SpeedupInvalidReason = reason
		} else if pbest > 0 {
			m.Speedup = best.Seconds() / pbest.Seconds()
		}
		if opt.Progress != nil {
			sp := fmt.Sprintf("%.2fx", m.Speedup)
			if m.SpeedupInvalidReason != "" {
				sp = "speedup n/a: " + m.SpeedupInvalidReason
			}
			opt.Progress(fmt.Sprintf("%s sup=%.4f workers=%d: %v (%s vs sequential %v), agree=%v",
				spec.ID, support, w, pbest.Round(time.Millisecond), sp,
				best.Round(time.Millisecond), m.Agree))
		}
		rep.Runs = append(rep.Runs, m)
	}
	if collect != nil {
		rep.Trace = collect.Passes()
	}
	return rep
}

// WriteParallelTable renders a sweep as a human-readable table.
func WriteParallelTable(w io.Writer, rep ParallelReport) error {
	fmt.Fprintf(w, "%s — parallel Pincer-Search — %s at minsup %s (|D|=%d, %d CPUs, GOMAXPROCS=%d)\n",
		rep.SpecID, rep.Database, fmtSup(rep.Support), rep.Transactions, rep.CPUs, rep.GoMaxProcs)
	fmt.Fprintf(w, "sequential: %.3fs over %d passes, %d candidates, |MFS|=%d (min of %d runs)\n",
		rep.SequentialSeconds, rep.Passes, rep.Candidates, rep.MFSSize, rep.Repeats)
	if rep.Err != "" {
		fmt.Fprintf(w, "sweep stopped: %s\n\n", rep.Err)
		return nil
	}
	if len(rep.Runs) > 0 && rep.Runs[0].SpeedupInvalidReason != "" {
		fmt.Fprintf(w, "speedup withheld: %s\n", rep.Runs[0].SpeedupInvalidReason)
	}
	fmt.Fprintf(w, "%-8s | %10s %8s %6s\n", "workers", "seconds", "speedup", "agree")
	for _, m := range rep.Runs {
		if m.Err != "" {
			fmt.Fprintf(w, "%-8d | skipped: %s\n", m.Workers, m.Err)
			continue
		}
		sp := fmt.Sprintf("%7.2fx", m.Speedup)
		if m.SpeedupInvalidReason != "" {
			sp = fmt.Sprintf("%8s", "n/a")
		}
		fmt.Fprintf(w, "%-8d | %10.3f %s %6v\n", m.Workers, m.Seconds, sp, m.Agree)
	}
	fmt.Fprintln(w)
	return nil
}

// WriteParallelJSON writes sweeps as an indented JSON document.
func WriteParallelJSON(w io.Writer, reps []ParallelReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reps)
}
