package bench

// The incremental-maintenance sweep: stream one quest database into an
// incremental.Maintainer batch by batch and price every delta against a
// from-scratch Pincer-Search mine of the same prefix. The headline is the
// Mannila–Toivonen border argument made quantitative: a border-unmoved
// delta costs one pass of |MFS ∪ border| candidates over the batch, a
// border-moved delta costs a warm-started re-mine, and the from-scratch
// mine the fast path avoids costs orders of magnitude more.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"pincer/internal/core"
	"pincer/internal/dataset"
	"pincer/internal/incremental"
	"pincer/internal/itemset"
	"pincer/internal/quest"
)

// StreamCell is one batch delta of the sweep.
type StreamCell struct {
	Seq          int64  `json:"seq"`
	Transactions int    `json:"transactions"` // prefix length after the batch
	Remined      bool   `json:"remined"`
	Reason       string `json:"reason,omitempty"`
	Checked      int    `json:"checked"` // MFS∪border itemsets counted against the batch
	// DeltaSeconds is the maintainer's whole cost for the batch: the border
	// check plus, when the border moved, the warm-started re-mine.
	DeltaSeconds float64 `json:"delta_seconds"`
	// ScratchSeconds is a from-scratch mine of the same prefix — what a
	// daemon without incremental maintenance would pay for the same answer.
	ScratchSeconds   float64 `json:"scratch_seconds"`
	ScratchOverDelta float64 `json:"scratch_over_delta,omitempty"`
	// Agree reports the per-batch correctness check: the maintained MFS and
	// supports are identical to the from-scratch mine's.
	Agree bool `json:"agree"`
}

// StreamReport is one streaming sweep.
type StreamReport struct {
	SpecID       string  `json:"spec"`
	Database     string  `json:"database"`
	Transactions int     `json:"transactions"`
	BatchTx      int     `json:"batch_tx"`
	Batches      int     `json:"batches"`
	MinSupport   float64 `json:"min_support"`
	Counter      string  `json:"counter"`
	CPUs         int     `json:"cpus"`
	GoMaxProcs   int     `json:"gomaxprocs"`
	// Repeats is the full-replay count; per-cell Seconds are the minimum
	// across replays (the delta classification is deterministic).
	Repeats int          `json:"repeats"`
	Cells   []StreamCell `json:"cells"`

	// The aggregate story: how often the border check absorbed a batch
	// outright, and what each path cost.
	FastPathDeltas      int     `json:"fast_path_deltas"`
	Remines             int     `json:"remines"`
	AvoidanceRate       float64 `json:"avoidance_rate"`
	FastPathMeanSeconds float64 `json:"fast_path_mean_seconds,omitempty"`
	RemineMeanSeconds   float64 `json:"remine_mean_seconds,omitempty"`
	ScratchMeanSeconds  float64 `json:"scratch_mean_seconds"`
	// ScratchOverFastPath divides the mean from-scratch cost by the mean
	// border-unmoved delta cost over the same seqs — the factor the fast
	// path is cheaper than the mine it avoids.
	ScratchOverFastPath float64 `json:"scratch_over_fast_path,omitempty"`
	// Err records why the sweep stopped early (e.g. a cancelled context).
	Err string `json:"error,omitempty"`
}

// mfsSignature canonicalizes an MFS with supports for equality checks.
func mfsSignature(mfs []itemset.Itemset, supports []int64) string {
	lines := make([]string, len(mfs))
	for i, m := range mfs {
		lines[i] = fmt.Sprintf("%v=%d", m, supports[i])
	}
	sort.Strings(lines)
	return strings.Join(lines, ";")
}

// streamReplay runs one full replay of the stream and returns the per-seq
// cells. The scratch mine reuses the maintainer's live dataset view, so
// both sides answer for the identical prefix.
func streamReplay(batches [][]dataset.Transaction, sup float64, counter string, opt Options) ([]StreamCell, error) {
	mopt := incremental.Options{
		MinSupport: sup,
		Counter:    counter,
		Workers:    1,
		Context:    opt.Context,
	}
	mt, err := incremental.New(mopt)
	if err != nil {
		return nil, err
	}
	popt := opt.Pincer
	popt.Engine = opt.Engine
	popt.KeepFrequent = false
	if popt.Context == nil {
		popt.Context = opt.Context
	}
	cells := make([]StreamCell, 0, len(batches))
	for _, batch := range batches {
		delta, err := mt.Append(batch)
		if err != nil {
			return nil, fmt.Errorf("seq %d: %w", mt.Seq()+1, err)
		}
		d := mt.Dataset()
		start := time.Now()
		res, err := core.Mine(dataset.NewScanner(d), sup, popt)
		if err != nil {
			return nil, fmt.Errorf("seq %d scratch mine: %w", delta.Seq, err)
		}
		scratch := time.Since(start)
		cells = append(cells, StreamCell{
			Seq:            delta.Seq,
			Transactions:   delta.Transactions,
			Remined:        delta.Remined,
			Reason:         delta.Reason,
			Checked:        delta.Checked,
			DeltaSeconds:   (delta.VerifyDuration + delta.MineDuration).Seconds(),
			ScratchSeconds: scratch.Seconds(),
			Agree: mfsSignature(mt.MFS(), mt.MFSSupports()) ==
				mfsSignature(res.MFS, res.MFSSupports),
		})
	}
	return cells, nil
}

// RunStreamSweep slices the spec's database into batchTx-transaction
// batches and replays the stream repeats times, keeping each seq's minimum
// delta and scratch wall clock. Every batch's maintained MFS is checked
// against the from-scratch mine — the equivalence the incremental package
// pins under test, certified again on the measured workload.
func RunStreamSweep(spec Spec, sup float64, batchTx, repeats int, opt Options) StreamReport {
	if repeats < 1 {
		repeats = 1
	}
	if batchTx < 1 {
		batchTx = 100
	}
	counter := opt.Counter
	if counter == "" {
		counter = incremental.CounterScan
	}
	d := quest.Generate(spec.Quest)
	txs := d.Transactions()
	var batches [][]dataset.Transaction
	for at := 0; at < len(txs); at += batchTx {
		end := at + batchTx
		if end > len(txs) {
			end = len(txs)
		}
		batches = append(batches, txs[at:end])
	}
	sr := StreamReport{
		SpecID: spec.ID, Database: spec.Name(), Transactions: d.Len(),
		BatchTx: batchTx, Batches: len(batches), MinSupport: sup, Counter: counter,
		CPUs: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0), Repeats: repeats,
	}
	for rep := 0; rep < repeats; rep++ {
		if opt.cancelled() {
			sr.Err = opt.Context.Err().Error()
			return sr
		}
		cells, err := streamReplay(batches, sup, counter, opt)
		if err != nil {
			sr.Err = err.Error()
			return sr
		}
		if rep == 0 {
			sr.Cells = cells
			continue
		}
		for i, c := range cells {
			if c.DeltaSeconds < sr.Cells[i].DeltaSeconds {
				sr.Cells[i].DeltaSeconds = c.DeltaSeconds
			}
			if c.ScratchSeconds < sr.Cells[i].ScratchSeconds {
				sr.Cells[i].ScratchSeconds = c.ScratchSeconds
			}
		}
	}

	var fastDelta, fastScratch, remineDelta, scratchAll float64
	for i := range sr.Cells {
		c := &sr.Cells[i]
		if c.DeltaSeconds > 0 {
			c.ScratchOverDelta = c.ScratchSeconds / c.DeltaSeconds
		}
		scratchAll += c.ScratchSeconds
		if c.Remined {
			sr.Remines++
			remineDelta += c.DeltaSeconds
		} else {
			sr.FastPathDeltas++
			fastDelta += c.DeltaSeconds
			fastScratch += c.ScratchSeconds
		}
		if opt.Progress != nil {
			path := "fast-path"
			if c.Remined {
				path = fmt.Sprintf("re-mine (%s)", c.Reason)
			}
			opt.Progress(fmt.Sprintf("seq %d (|D|=%d): %s delta %.2fms vs scratch %.2fms (%.0fx), agree=%v",
				c.Seq, c.Transactions, path, c.DeltaSeconds*1e3, c.ScratchSeconds*1e3,
				c.ScratchOverDelta, c.Agree))
		}
	}
	if len(sr.Cells) > 0 {
		sr.AvoidanceRate = float64(sr.FastPathDeltas) / float64(len(sr.Cells))
		sr.ScratchMeanSeconds = scratchAll / float64(len(sr.Cells))
	}
	if sr.FastPathDeltas > 0 {
		sr.FastPathMeanSeconds = fastDelta / float64(sr.FastPathDeltas)
		if fastDelta > 0 {
			sr.ScratchOverFastPath = fastScratch / fastDelta
		}
	}
	if sr.Remines > 0 {
		sr.RemineMeanSeconds = remineDelta / float64(sr.Remines)
	}
	return sr
}

// WriteStreamTable renders a sweep as a human-readable table.
func WriteStreamTable(w io.Writer, rep StreamReport) error {
	fmt.Fprintf(w, "%s — incremental maintenance — %s (|D|=%d, %d batches × %d tx, minsup=%g, counter=%s, %d CPUs)\n",
		rep.SpecID, rep.Database, rep.Transactions, rep.Batches, rep.BatchTx,
		rep.MinSupport, rep.Counter, rep.CPUs)
	if rep.Err != "" {
		fmt.Fprintf(w, "sweep stopped: %s\n\n", rep.Err)
		return nil
	}
	fmt.Fprintf(w, "%-4s | %6s | %-22s | %10s %12s %8s | %5s\n",
		"seq", "|D|", "path", "delta(ms)", "scratch(ms)", "ratio", "agree")
	for _, c := range rep.Cells {
		path := "fast-path"
		if c.Remined {
			path = "re-mine " + c.Reason
		}
		fmt.Fprintf(w, "%-4d | %6d | %-22s | %10.2f %12.2f %7.0fx | %5v\n",
			c.Seq, c.Transactions, path, c.DeltaSeconds*1e3, c.ScratchSeconds*1e3,
			c.ScratchOverDelta, c.Agree)
	}
	fmt.Fprintf(w, "avoidance rate %.0f%% (%d fast-path, %d re-mines); border-unmoved delta %.2fms vs from-scratch %.2fms — %.0fx cheaper\n\n",
		rep.AvoidanceRate*100, rep.FastPathDeltas, rep.Remines,
		rep.FastPathMeanSeconds*1e3, rep.ScratchMeanSeconds*1e3, rep.ScratchOverFastPath)
	return nil
}

// WriteStreamJSON writes the sweep as an indented JSON document.
func WriteStreamJSON(w io.Writer, rep StreamReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
