package incremental

import (
	"errors"
	"testing"

	"pincer/internal/checkpoint"
	"pincer/internal/itemset"
)

// FuzzMaintainerState throws arbitrary bytes at the maintainer-state
// decoder: it must never panic, and every failure must be the typed
// *checkpoint.CorruptError restart logic switches on. Successful decodes
// must satisfy the invariants DecodeState promises (version match, parallel
// slices, non-negative scalars).
func FuzzMaintainerState(f *testing.F) {
	valid, err := EncodeState(&State{
		Version:        StateVersion,
		AppliedSeq:     3,
		Transactions:   10,
		NumItems:       5,
		MinCount:       2,
		MFS:            []itemset.Itemset{itemset.New(0, 1), itemset.New(2, 4)},
		MFSSupports:    []int64{4, 3},
		Border:         []itemset.Itemset{itemset.New(3)},
		BorderSupports: []int64{1},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("not a gob stream"))
	f.Add(valid[:len(valid)/2]) // truncated mid-stream

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeState(data)
		if err != nil {
			var ce *checkpoint.CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("DecodeState returned untyped error %T: %v", err, err)
			}
			return
		}
		if st.Version != StateVersion {
			t.Fatalf("decoded state with version %d slipped past the gate", st.Version)
		}
		if len(st.MFS) != len(st.MFSSupports) || len(st.Border) != len(st.BorderSupports) {
			t.Fatal("decoded state with mismatched parallel slices")
		}
		if st.Transactions < 0 || st.NumItems < 0 || st.AppliedSeq < 0 {
			t.Fatal("decoded state with negative scalars")
		}
	})
}
