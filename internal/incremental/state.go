package incremental

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"pincer/internal/checkpoint"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
)

// StateVersion gates the maintainer-state wire format. A checkpoint written
// by a different version decodes to *checkpoint.CorruptError rather than to
// silently misinterpreted state.
const StateVersion = 1

// State is a maintainer's durable snapshot: everything except the window
// transactions themselves, which the serving layer reconstructs from its
// batch journal (replaying batches 1..AppliedSeq materializes exactly the
// window this state describes, with no counting).
type State struct {
	Version        int
	AppliedSeq     int64 // batches folded into this state
	Transactions   int   // window length — cross-checked on restore
	NumItems       int
	MinCount       int64
	MFS            []itemset.Itemset
	MFSSupports    []int64
	Border         []itemset.Itemset
	BorderSupports []int64
	Stats          Stats
}

// Snapshot captures the maintainer's current durable state.
func (m *Maintainer) Snapshot() *State {
	return &State{
		Version:        StateVersion,
		AppliedSeq:     m.seq,
		Transactions:   len(m.window),
		NumItems:       m.numItems,
		MinCount:       m.minCount,
		MFS:            m.mfs,
		MFSSupports:    m.mfsSupports,
		Border:         m.border,
		BorderSupports: m.borderSupports,
		Stats:          m.stats,
	}
}

// Restore installs a snapshot plus the window it describes (rebuilt by the
// caller from its batch journal). The window length must match the
// snapshot; a mismatch means the journal and state disagree and the caller
// should fall back to a full replay.
func (m *Maintainer) Restore(st *State, window []dataset.Transaction) error {
	if st.Version != StateVersion {
		return &checkpoint.MismatchError{Field: "state version",
			Want: fmt.Sprint(StateVersion), Got: fmt.Sprint(st.Version)}
	}
	if len(window) != st.Transactions {
		return &checkpoint.MismatchError{Field: "window length",
			Want: fmt.Sprint(st.Transactions), Got: fmt.Sprint(len(window))}
	}
	norm := make([]dataset.Transaction, len(window))
	for i, t := range window {
		norm[i] = itemset.New(t...)
	}
	m.window = norm
	m.numItems = st.NumItems
	m.minCount = st.MinCount
	m.seq = st.AppliedSeq
	m.mfs = st.MFS
	m.mfsSupports = st.MFSSupports
	m.border = st.Border
	m.borderSupports = st.BorderSupports
	m.stats = st.Stats
	return nil
}

// EncodeState serializes a state snapshot.
func EncodeState(st *State) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("incremental: encode state: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeState deserializes a state snapshot. Undecodable bytes and unknown
// versions both return a *checkpoint.CorruptError (path left to the
// caller), so restart logic can distinguish "state damaged, replay the
// journal" from real I/O failures.
func DecodeState(data []byte) (*State, error) {
	var st State
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return nil, &checkpoint.CorruptError{Err: err}
	}
	if st.Version != StateVersion {
		return nil, &checkpoint.CorruptError{
			Err: fmt.Errorf("unsupported maintainer state version %d (want %d)", st.Version, StateVersion)}
	}
	// Parallel slices must actually be parallel; a truncated or hand-edited
	// checkpoint that breaks this would corrupt every later delta.
	if len(st.MFS) != len(st.MFSSupports) || len(st.Border) != len(st.BorderSupports) {
		return nil, &checkpoint.CorruptError{
			Err: fmt.Errorf("mismatched state slices: %d MFS / %d supports, %d border / %d supports",
				len(st.MFS), len(st.MFSSupports), len(st.Border), len(st.BorderSupports))}
	}
	if st.Transactions < 0 || st.NumItems < 0 || st.AppliedSeq < 0 {
		return nil, &checkpoint.CorruptError{
			Err: fmt.Errorf("negative state fields: seq %d, transactions %d, items %d",
				st.AppliedSeq, st.Transactions, st.NumItems)}
	}
	return &st, nil
}
