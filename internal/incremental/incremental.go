// Package incremental maintains the maximum frequent set of a live
// transaction stream — the scenario the paper motivates with stock
// movements and event episodes (§6), where the database is never frozen but
// usually arrives *almost* unchanged.
//
// The maintainer holds the current window of transactions, the MFS with
// exact supports, and the Mannila–Toivonen negative border (the minimal
// infrequent itemsets) with exact supports. Each appended batch (and, in
// window mode, the transactions it evicts) is counted against only
// MFS ∪ border through the core.PassCounter seam — two antichains, two
// counting calls per delta side — and the border argument decides the rest:
//
//   - If every MFS element stays frequent, every border element stays
//     infrequent, and no brand-new item reaches the threshold, then the
//     frequent collection is unchanged — any itemset that changed side
//     would have a minimal witness in the border — so the MFS and border
//     are byte-identical to a from-scratch mine and only the maintained
//     supports move. No mining happens.
//
//   - Otherwise the border moved and the maintainer re-mines the
//     materialized window, warm-started two ways: the surviving old MFS
//     elements (still frequent at the new threshold, supports already
//     updated) seed the miner's MFS view (core.Options.SeedMFS), and when a
//     Checkpointer is configured an interrupted re-mine resumes at its last
//     pass barrier instead of pass 1.
//
// The maintainer is not safe for concurrent use; the serving layer
// (internal/server's stream resource) serializes batches per stream.
package incremental

import (
	"context"
	"errors"
	"fmt"
	"time"

	"pincer/internal/checkpoint"
	"pincer/internal/core"
	"pincer/internal/counting"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
	"pincer/internal/obsv"
	"pincer/internal/parallel"
)

// Counter kinds for Options.Counter.
const (
	// CounterScan counts deltas and re-mines by sequential database scans
	// (the default).
	CounterScan = "scan"
	// CounterTidList counts by vertical tid-list intersection.
	CounterTidList = "tidlist"
)

// Delta sides passed to Options.DeltaCounter: which part of a batch the
// maintained sets are being counted over.
const (
	SideAppend = "append" // the appended transactions
	SideEvict  = "evict"  // the evicted transactions
	SideBorder = "border" // the full window, recounting a re-mined border
)

// Delta reasons. A fast-path delta has Reason ""; a re-mine records which
// border condition failed (ReasonInitial for the first batch, which has no
// border to verify).
const (
	ReasonInitial         = "initial"           // first batch: nothing to verify against
	ReasonMFSInfrequent   = "mfs-infrequent"    // a maximal set fell below the threshold
	ReasonBorderFrequent  = "border-frequent"   // a border set reached the threshold
	ReasonNewItemFrequent = "new-item-frequent" // an unseen item arrived frequent
)

// Options configures a Maintainer.
type Options struct {
	// MinSupport is the fractional minimum support in (0, 1]. The absolute
	// threshold is re-derived from the window length after every delta.
	MinSupport float64
	// Window, when positive, keeps only the last Window transactions: each
	// batch evicts from the front whatever overflows. Zero means append-only.
	Window int
	// Counter selects the delta-verification and re-mine counting strategy:
	// CounterScan (default) or CounterTidList.
	Counter string
	// Workers is the counting-goroutine count for tid-list verification and
	// for re-mines (> 1 re-mines with the count-distribution parallel
	// miner); ≤ 1 is sequential.
	Workers int
	// Tracer receives the re-mines' per-pass events (nil disables).
	Tracer obsv.Tracer
	// Context cancels in-flight re-mines (nil: uncancellable).
	Context context.Context
	// MineCheckpointer, when set, persists re-mine pass-barrier state: a
	// maintainer restarted on the same checkpointer resumes an interrupted
	// re-mine at the barrier instead of pass 1.
	MineCheckpointer checkpoint.Checkpointer
	// WrapScanner wraps every scan-counting dataset scanner — the
	// fault-injection seam; nil in production.
	WrapScanner func(sc dataset.Scanner) dataset.Scanner
	// DeltaCounter, when set, replaces local delta-verification counting:
	// it returns the support of each set (one antichain — the maintained
	// MFS or border) over d, for the batch seq and Side* constant given.
	// Supports are additive over horizontal partitions, so a distributed
	// implementation (cluster.StreamCoordinator) yields byte-identical
	// maintenance. Counter and Workers then shape only re-mines.
	DeltaCounter func(seq int64, side string, d *dataset.Dataset, sets []itemset.Itemset) []int64
	// MineCounter, when set, supplies the core.PassCounter a re-mine's
	// passes fan out over (e.g. a cluster.Coordinator built per re-mine);
	// it takes precedence over Counter and Workers, which only shape local
	// counting. A nil return falls back to local mining.
	MineCounter func(seq int64, d *dataset.Dataset) core.PassCounter
}

// Delta reports what one Append did.
type Delta struct {
	// Seq is the 1-based batch sequence number.
	Seq int64
	// Appended and Evicted count the transactions entering and leaving the
	// window (Evicted includes batch transactions that overflow immediately).
	Appended int
	Evicted  int
	// Transactions is the window length after the delta; MinCount the
	// absolute threshold derived from it.
	Transactions int
	MinCount     int64
	// BorderMoved reports whether the delta could have changed the frequent
	// collection; Remined whether a mine actually ran (they differ only on
	// the first batch, which re-mines without a border to move).
	BorderMoved bool
	Remined     bool
	// Reason explains a re-mine (Reason* constants); "" on the fast path.
	Reason string
	// Checked is the number of maintained itemsets counted against the
	// delta (MFS + border, appended + evicted sides).
	Checked int
	// VerifyDuration is the wall clock of the delta verification;
	// MineDuration of the re-mine (0 on the fast path).
	VerifyDuration time.Duration
	MineDuration   time.Duration
}

// Stats aggregates a maintainer's lifetime.
type Stats struct {
	Batches    int64         // batches applied
	FastPath   int64         // deltas absorbed without mining
	Remines    int64         // full mines (including the initial one)
	Checked    int64         // itemsets counted against deltas
	VerifyTime time.Duration // total delta-verification wall clock
	MineTime   time.Duration // total re-mine wall clock
}

// Maintainer holds a live dataset and its incrementally maintained MFS and
// negative border. Create one with New, feed it with Append.
type Maintainer struct {
	opt Options

	window   []dataset.Transaction
	numItems int
	minCount int64
	seq      int64

	mfs            []itemset.Itemset
	mfsSupports    []int64
	border         []itemset.Itemset
	borderSupports []int64

	stats Stats
}

// New validates the options and returns an empty maintainer. The first
// Append establishes the initial MFS and border by a full mine.
func New(opt Options) (*Maintainer, error) {
	if opt.MinSupport <= 0 || opt.MinSupport > 1 {
		return nil, fmt.Errorf("incremental: min support must be in (0, 1], got %v", opt.MinSupport)
	}
	if opt.Window < 0 {
		return nil, fmt.Errorf("incremental: window must be ≥ 0, got %d", opt.Window)
	}
	switch opt.Counter {
	case "", CounterScan:
		opt.Counter = CounterScan
	case CounterTidList:
	default:
		return nil, fmt.Errorf("incremental: unknown counter %q (want scan or tidlist)", opt.Counter)
	}
	if opt.Workers < 1 {
		opt.Workers = 1
	}
	return &Maintainer{opt: opt}, nil
}

// Accessors. The returned slices are the maintainer's own state — callers
// must not modify them.

// MFS returns the current maximum frequent set, lexicographically sorted.
func (m *Maintainer) MFS() []itemset.Itemset { return m.mfs }

// MFSSupports returns the exact support counts parallel to MFS.
func (m *Maintainer) MFSSupports() []int64 { return m.mfsSupports }

// Border returns the negative border over the declared universe,
// lexicographically sorted.
func (m *Maintainer) Border() []itemset.Itemset { return m.border }

// BorderSupports returns the exact support counts parallel to Border.
func (m *Maintainer) BorderSupports() []int64 { return m.borderSupports }

// Len returns the current window length.
func (m *Maintainer) Len() int { return len(m.window) }

// NumItems returns the declared item universe (monotone over the stream).
func (m *Maintainer) NumItems() int { return m.numItems }

// MinCount returns the current absolute support threshold.
func (m *Maintainer) MinCount() int64 { return m.minCount }

// Seq returns the number of batches applied.
func (m *Maintainer) Seq() int64 { return m.seq }

// Stats returns the lifetime counters.
func (m *Maintainer) Stats() Stats { return m.stats }

// Window returns the live transactions (read-only).
func (m *Maintainer) Window() []dataset.Transaction { return m.window }

// Dataset materializes the current window as a dataset with the declared
// universe.
func (m *Maintainer) Dataset() *dataset.Dataset {
	d := dataset.Empty(m.numItems)
	for _, t := range m.window {
		d.Append(t)
	}
	return d
}

// Append applies one batch of transactions. On success the maintainer's
// MFS, border, and supports describe the post-delta window exactly; on
// error (a cancelled or killed re-mine) the maintainer is unchanged, so the
// same batch can be replayed.
func (m *Maintainer) Append(batch []dataset.Transaction) (Delta, error) {
	verifyStart := time.Now()

	// Normalize the batch and extend the declared universe.
	norm := make([]dataset.Transaction, len(batch))
	newNumItems := m.numItems
	for i, t := range batch {
		n := itemset.New(t...)
		norm[i] = n
		if len(n) > 0 && int(n.Last())+1 > newNumItems {
			newNumItems = int(n.Last()) + 1
		}
	}

	// Window arithmetic over the conceptual concatenation window ++ batch:
	// everything past the last Window entries falls off the front. Evicted
	// batch transactions (a batch longer than the window) are added and
	// subtracted below, which nets out exactly.
	full := make([]dataset.Transaction, 0, len(m.window)+len(norm))
	full = append(full, m.window...)
	full = append(full, norm...)
	evictN := 0
	if m.opt.Window > 0 && len(full) > m.opt.Window {
		evictN = len(full) - m.opt.Window
	}
	evicted := full[:evictN]
	newWindow := full[evictN:]
	newMinCount := dataset.MinCountFor(len(newWindow), m.opt.MinSupport)

	d := Delta{
		Seq:          m.seq + 1,
		Appended:     len(norm),
		Evicted:      evictN,
		Transactions: len(newWindow),
		MinCount:     newMinCount,
	}

	if m.seq == 0 {
		// First batch: no maintained state to verify against.
		d.Remined = true
		d.Reason = ReasonInitial
		d.VerifyDuration = time.Since(verifyStart)
		if err := m.remine(&d, newWindow, newNumItems, newMinCount, nil, nil); err != nil {
			return d, err
		}
		m.commitCounters(&d)
		return d, nil
	}

	// Delta verification: count the two maintained antichains over the
	// appended and evicted transactions.
	db := deltaDataset(norm, newNumItems)
	de := deltaDataset(evicted, newNumItems)
	addMFS := m.countOver(d.Seq, SideAppend, db, m.mfs)
	subMFS := m.countOver(d.Seq, SideEvict, de, m.mfs)
	addBorder := m.countOver(d.Seq, SideAppend, db, m.border)
	subBorder := m.countOver(d.Seq, SideEvict, de, m.border)
	d.Checked = 2 * (len(m.mfs) + len(m.border))

	newMFSSupports := make([]int64, len(m.mfsSupports))
	for i, s := range m.mfsSupports {
		newMFSSupports[i] = s + addMFS[i] - subMFS[i]
	}
	newBorderSupports := make([]int64, len(m.borderSupports))
	for i, s := range m.borderSupports {
		newBorderSupports[i] = s + addBorder[i] - subBorder[i]
	}

	// The border argument, three conditions. Brand-new items (ids past the
	// old universe) have no border witness yet: an infrequent one extends
	// the border by exactly its singleton (minimal, and contained in no
	// other minimal infrequent set), a frequent one moves it for real.
	reason := ""
	for _, s := range newMFSSupports {
		if s < newMinCount {
			reason = ReasonMFSInfrequent
			break
		}
	}
	if reason == "" {
		for _, s := range newBorderSupports {
			if s >= newMinCount {
				reason = ReasonBorderFrequent
				break
			}
		}
	}
	var newItems []itemset.Item
	var newItemCounts []int64
	if newNumItems > m.numItems {
		ic := db.ItemCounts()
		for i := m.numItems; i < newNumItems; i++ {
			newItems = append(newItems, itemset.Item(i))
			newItemCounts = append(newItemCounts, ic[i])
		}
		if reason == "" {
			for _, c := range newItemCounts {
				if c >= newMinCount {
					reason = ReasonNewItemFrequent
					break
				}
			}
		}
	}
	d.VerifyDuration = time.Since(verifyStart)

	if reason == "" {
		// Fast path: the frequent collection is unchanged; commit the
		// updated supports and extend the border with the new singletons.
		m.window = newWindow
		m.numItems = newNumItems
		m.minCount = newMinCount
		m.mfsSupports = newMFSSupports
		m.borderSupports = newBorderSupports
		for i, it := range newItems {
			m.border = append(m.border, itemset.Itemset{it})
			m.borderSupports = append(m.borderSupports, newItemCounts[i])
		}
		if len(newItems) > 0 {
			sortBorder(m.border, m.borderSupports)
		}
		m.seq++
		m.stats.FastPath++
		m.commitCounters(&d)
		return d, nil
	}

	// Border moved: re-mine the materialized window, seeded with the old
	// maximal sets that survive the new threshold (their updated supports
	// are exact, so they are genuinely frequent seeds).
	d.BorderMoved = true
	d.Remined = true
	d.Reason = reason
	var seeds []itemset.Itemset
	var seedSupports []int64
	for i, s := range m.mfs {
		if newMFSSupports[i] >= newMinCount {
			seeds = append(seeds, s)
			seedSupports = append(seedSupports, newMFSSupports[i])
		}
	}
	if err := m.remine(&d, newWindow, newNumItems, newMinCount, seeds, seedSupports); err != nil {
		return d, err
	}
	m.commitCounters(&d)
	return d, nil
}

// commitCounters folds a committed delta into the lifetime stats.
func (m *Maintainer) commitCounters(d *Delta) {
	m.stats.Batches++
	m.stats.Checked += int64(d.Checked)
	m.stats.VerifyTime += d.VerifyDuration
	m.stats.MineTime += d.MineDuration
}

// remine mines the materialized window from scratch (warm-started by seeds
// and, via the checkpointer, by any interrupted re-mine's pass barrier) and
// commits the new window, MFS, and border. On error nothing is committed.
func (m *Maintainer) remine(d *Delta, window []dataset.Transaction, numItems int, minCount int64, seeds []itemset.Itemset, seedSupports []int64) error {
	mineStart := time.Now()
	dnew := deltaDataset(window, numItems)

	res, err := m.mineDataset(d.Seq, dnew, minCount, seeds, seedSupports)
	if err != nil {
		return err
	}

	universe := itemset.Range(0, itemset.Item(numItems))
	border := mfi.NegativeBorder(universe, mfi.Expand(res.MFS, 0))
	borderSupports := m.countOver(d.Seq, SideBorder, dnew, border)

	m.window = window
	m.numItems = numItems
	m.minCount = minCount
	m.mfs = res.MFS
	m.mfsSupports = res.MFSSupports
	m.border = border
	m.borderSupports = borderSupports
	m.seq++
	m.stats.Remines++
	d.MineDuration = time.Since(mineStart)
	return nil
}

// mineDataset runs the configured miner over d. With a checkpointer it
// resumes from any recorded barrier; a checkpoint that turns out corrupt or
// recorded for a different run is cleared and the mine restarts fresh
// rather than failing the stream.
func (m *Maintainer) mineDataset(seq int64, d *dataset.Dataset, minCount int64, seeds []itemset.Itemset, seedSupports []int64) (*mfi.Result, error) {
	run := func(resume bool) (*mfi.Result, error) {
		copt := core.DefaultOptions()
		copt.KeepFrequent = false
		copt.Tracer = m.opt.Tracer
		copt.Context = m.opt.Context
		copt.Checkpointer = m.opt.MineCheckpointer
		copt.SeedMFS = seeds
		copt.SeedSupports = seedSupports
		if m.opt.MineCounter != nil {
			if pc := m.opt.MineCounter(seq, d); pc != nil {
				// Distributed re-mine: the injected counter fans each pass
				// out itself, so the core (sequential-loop) miner drives it.
				copt.Counter = pc
				if resume {
					return core.MineResume(m.scanner(d), minCount, copt)
				}
				return core.MineCount(m.scanner(d), minCount, copt)
			}
		}
		if m.opt.Counter == CounterTidList {
			copt.Counter = counting.NewTidListCounter(d, counting.TidListOptions{Workers: m.opt.Workers})
		}
		if m.opt.Workers > 1 {
			popt := parallel.DefaultOptions()
			popt.Workers = m.opt.Workers
			popt.KeepFrequent = false
			popt.Tracer = m.opt.Tracer
			popt.Context = m.opt.Context
			popt.Checkpointer = m.opt.MineCheckpointer
			if resume {
				return parallel.MinePincerResume(d, minCount, copt, popt)
			}
			return parallel.MinePincerCount(d, minCount, copt, popt)
		}
		sc := m.scanner(d)
		if resume {
			return core.MineResume(sc, minCount, copt)
		}
		return core.MineCount(sc, minCount, copt)
	}

	resume := m.opt.MineCheckpointer != nil
	res, err := run(resume)
	if err != nil && resume {
		var ce *checkpoint.CorruptError
		var me *checkpoint.MismatchError
		if errors.As(err, &ce) || errors.As(err, &me) {
			// A stale or unreadable warm-start checkpoint must not wedge the
			// stream: drop it and mine fresh.
			if cerr := m.opt.MineCheckpointer.Clear(); cerr != nil {
				return nil, cerr
			}
			res, err = run(false)
		}
	}
	return res, err
}

// scanner builds the (possibly fault-wrapped) scanner for scan counting.
func (m *Maintainer) scanner(d *dataset.Dataset) dataset.Scanner {
	var sc dataset.Scanner = dataset.NewScanner(d)
	if m.opt.WrapScanner != nil {
		sc = m.opt.WrapScanner(sc)
	}
	return sc
}

// countOver counts each of sets over d through the configured PassCounter
// (or the injected DeltaCounter). sets must be an antichain (the MFS and
// the border each are; their union is not, which is why Append counts them
// separately).
func (m *Maintainer) countOver(seq int64, side string, d *dataset.Dataset, sets []itemset.Itemset) []int64 {
	if len(sets) == 0 {
		return nil
	}
	if d.Len() == 0 {
		return make([]int64, len(sets))
	}
	if m.opt.DeltaCounter != nil {
		return m.opt.DeltaCounter(seq, side, d, sets)
	}
	var pc core.PassCounter
	if m.opt.Counter == CounterTidList {
		pc = counting.NewTidListCounter(d, counting.TidListOptions{Workers: m.opt.Workers})
	} else {
		pc = core.NewScanCounter(m.scanner(d))
	}
	bits := make([]*itemset.Bitset, len(sets))
	for i, s := range sets {
		bits[i] = itemset.BitsetOf(d.NumItems(), s)
	}
	_, counts := pc.CountCandidates(counting.EngineHashTree, nil, sets, bits)
	return counts
}

// deltaDataset materializes transactions into a dataset with an explicit
// universe, so element bitsets and tid-lists agree on their width.
func deltaDataset(txs []dataset.Transaction, numItems int) *dataset.Dataset {
	d := dataset.Empty(numItems)
	for _, t := range txs {
		d.Append(t)
	}
	return d
}

// sortBorder sorts the border and its supports in parallel into the
// lexicographic order mfi.NegativeBorder produces.
func sortBorder(border []itemset.Itemset, supports []int64) {
	order := make([]int, len(border))
	for i := range order {
		order[i] = i
	}
	sortOrder(order, func(a, b int) bool { return border[a].Compare(border[b]) < 0 })
	bs := make([]itemset.Itemset, len(border))
	ss := make([]int64, len(supports))
	for to, from := range order {
		bs[to] = border[from]
		ss[to] = supports[from]
	}
	copy(border, bs)
	copy(supports, ss)
}

// sortOrder is sort.Slice without dragging package sort into the hot file's
// import graph twice; kept trivial.
func sortOrder(order []int, less func(a, b int) bool) {
	// insertion sort: border extensions are tiny (the new singletons land
	// near the end of an already sorted list).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && less(order[j], order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
}
