package incremental

// Cross-layer equivalence: a maintainer whose delta counting and re-mine
// passes fan out over a worker cluster (the DeltaCounter / MineCounter
// seams, wired here exactly as the server wires them) must stay
// byte-identical to the single-node maintainer AND to a from-scratch mine
// of the materialized window after every delta. This is the distributed
// half of the incremental correctness argument: the Mannila–Toivonen
// border check consumes support counts, and additive counts over disjoint
// partitions are the same counts.

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"pincer/internal/cluster"
	"pincer/internal/core"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
	"pincer/internal/quest"
)

// startStreamWorkers boots n cluster workers behind httptest servers and a
// pool over them, with CI-fast failure clocks.
func startStreamWorkers(t *testing.T, n int) *cluster.Pool {
	t.Helper()
	var addrs []string
	var servers []*httptest.Server
	for i := 0; i < n; i++ {
		w := cluster.NewWorker(cluster.WorkerConfig{ID: fmt.Sprintf("w%d", i)})
		srv := httptest.NewServer(w)
		servers = append(servers, srv)
		addrs = append(addrs, srv.URL)
	}
	pool, err := cluster.NewPool(addrs, cluster.PoolConfig{
		HeartbeatInterval: 20 * time.Millisecond,
		LivenessDeadline:  2 * time.Second,
		RPCTimeout:        5 * time.Second,
		MaxAttempts:       3,
		BackoffBase:       time.Millisecond,
		BackoffCap:        5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	pool.Start()
	t.Cleanup(func() {
		pool.Close()
		for _, s := range servers {
			s.Close()
		}
	})
	return pool
}

// clusterSeams wires Options to a StreamCoordinator the way the server
// does: every delta count through CountSets, every re-mine through a fresh
// job Coordinator.
func clusterSeams(t *testing.T, opt *Options, id string, pool *cluster.Pool, sc *cluster.StreamCoordinator) {
	t.Helper()
	opt.DeltaCounter = func(seq int64, side string, d *dataset.Dataset, sets []itemset.Itemset) []int64 {
		return sc.CountSets(seq, side, d, sets)
	}
	opt.MineCounter = func(seq int64, d *dataset.Dataset) core.PassCounter {
		coord, err := cluster.NewCoordinator(fmt.Sprintf("%s.b%d", id, seq), d, pool, nil)
		if err != nil {
			t.Fatalf("re-mine coordinator: %v", err)
		}
		return coord
	}
}

// assertMaintainersEqual asserts the full maintained state of two
// maintainers is byte-identical.
func assertMaintainersEqual(t *testing.T, tag string, got, want *Maintainer) {
	t.Helper()
	if got.MinCount() != want.MinCount() {
		t.Fatalf("%s: minCount %d, want %d", tag, got.MinCount(), want.MinCount())
	}
	if err := mfi.VerifyAgainst(got.MFS(), want.MFS()); err != nil {
		t.Fatalf("%s: MFS diverged from single-node maintainer: %v", tag, err)
	}
	for i, sup := range want.MFSSupports() {
		if got.MFSSupports()[i] != sup {
			t.Fatalf("%s: support(%v) = %d, single-node has %d",
				tag, want.MFS()[i], got.MFSSupports()[i], sup)
		}
	}
	if err := mfi.VerifyAgainst(got.Border(), want.Border()); err != nil {
		t.Fatalf("%s: border diverged from single-node maintainer: %v", tag, err)
	}
	for i, sup := range want.BorderSupports() {
		if got.BorderSupports()[i] != sup {
			t.Fatalf("%s: border support(%v) = %d, single-node has %d",
				tag, want.Border()[i], got.BorderSupports()[i], sup)
		}
	}
}

// TestStreamClusterEquivalence is the tentpole property test: across the
// 12-workload corpus × randomized append/evict schedules × cluster sizes
// {1, 2, 4} × both counters, the clustered maintainer must match the
// single-node maintainer AND a from-scratch mine after EVERY delta — and
// both decision outcomes (fast path and re-mine) plus actual RPC fan-out
// must be exercised, or the test proved nothing.
func TestStreamClusterEquivalence(t *testing.T) {
	type config struct {
		name    string
		workers int // cluster size
		counter string
		window  bool
	}
	configs := []config{
		{"w1-scan", 1, CounterScan, false},
		{"w2-scan", 2, CounterScan, true},
		{"w4-scan", 4, CounterScan, false},
		{"w1-tidlist", 1, CounterTidList, true},
		{"w2-tidlist", 2, CounterTidList, false},
		{"w4-tidlist", 4, CounterTidList, true},
	}
	pools := map[int]*cluster.Pool{}
	for _, n := range []int{1, 2, 4} {
		pools[n] = startStreamWorkers(t, n)
	}
	var totalFast, totalRemines, totalRPCs int64
	for wi, wl := range corpus() {
		if testing.Short() && wi%4 != 0 {
			continue
		}
		// Rotate the six configs over the twelve workloads: every config
		// sees both corpus regimes.
		cfg := configs[wi%len(configs)]
		d := quest.Generate(wl.params)
		txs := d.Transactions()

		opt := Options{MinSupport: wl.support, Counter: cfg.counter, Workers: 1}
		if cfg.window {
			opt.Window = len(txs) * 4 / 5
		}
		local := must(New(opt))

		copt := opt
		id := fmt.Sprintf("s%d", wi)
		sc := cluster.NewStreamCoordinator(id, pools[cfg.workers], nil)
		clusterSeams(t, &copt, id, pools[cfg.workers], sc)
		clustered := must(New(copt))

		rng := rand.New(rand.NewSource(int64(6007*wi + 13)))
		for bi, batch := range schedule(rng, txs) {
			tag := fmt.Sprintf("workload %d cfg %s batch %d", wi, cfg.name, bi)
			if _, err := local.Append(batch); err != nil {
				t.Fatalf("%s: single-node append: %v", tag, err)
			}
			if _, err := clustered.Append(batch); err != nil {
				t.Fatalf("%s: clustered append: %v", tag, err)
			}
			doc := sc.TakeDoc()
			if doc.Degraded {
				t.Fatalf("%s: healthy cluster degraded: %+v", tag, doc)
			}
			totalRPCs += doc.RPCs
			assertMaintainersEqual(t, tag, clustered, local)
			checkAgainstReference(t, clustered, tag)
		}
		totalFast += clustered.Stats().FastPath
		totalRemines += clustered.Stats().Remines
	}
	if totalFast == 0 {
		t.Fatal("no delta ever took the fast path — the clustered border check was never load-bearing")
	}
	if totalRemines == 0 {
		t.Fatal("no delta ever re-mined — cluster re-mine fan-out was never exercised")
	}
	if totalRPCs == 0 {
		t.Fatal("no RPCs issued — delta counting never actually distributed")
	}
	t.Logf("fast-path deltas: %d, re-mines: %d, delta-count RPCs: %d", totalFast, totalRemines, totalRPCs)
}

// TestStreamClusterNilMineCounter pins the local fallback seam the server
// relies on when a re-mine coordinator cannot be built: a MineCounter that
// returns nil must fall back to the configured local counter with
// identical results.
func TestStreamClusterNilMineCounter(t *testing.T) {
	d := quest.Generate(quest.Params{
		NumTransactions: 240, AvgTxLen: 8, AvgPatternLen: 4,
		NumPatterns: 20, NumItems: 40, Seed: 3,
	})
	txs := d.Transactions()
	local := must(New(Options{MinSupport: 0.1}))
	opt := Options{MinSupport: 0.1}
	opt.MineCounter = func(int64, *dataset.Dataset) core.PassCounter { return nil }
	fallback := must(New(opt))
	rng := rand.New(rand.NewSource(42))
	for bi, batch := range schedule(rng, txs) {
		must(local.Append(batch))
		must(fallback.Append(batch))
		assertMaintainersEqual(t, fmt.Sprintf("batch %d", bi), fallback, local)
	}
	if fallback.Stats().Remines == 0 {
		t.Fatal("no re-mine occurred — the nil fallback was never exercised")
	}
}
