package incremental

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"pincer/internal/checkpoint"
	"pincer/internal/core"
	"pincer/internal/dataset"
	"pincer/internal/faultinject"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
	"pincer/internal/quest"
)

func must[R any](r R, err error) R {
	if err != nil {
		panic(err)
	}
	return r
}

type workload struct {
	params  quest.Params
	support float64
}

// corpus mirrors the 12-workload quest corpus of the parallel conformance
// suite: five concentrated shapes (the Figure-4 regime), five scattered
// shapes (Figure-3), and two small dense edge shapes.
func corpus() []workload {
	var workloads []workload
	for seed := int64(1); seed <= 5; seed++ {
		workloads = append(workloads, workload{quest.Params{
			NumTransactions: 300 + 40*int(seed), AvgTxLen: 14, AvgPatternLen: 7,
			NumPatterns: 15, NumItems: 60, Seed: seed,
		}, 0.10})
	}
	for seed := int64(6); seed <= 10; seed++ {
		workloads = append(workloads, workload{quest.Params{
			NumTransactions: 300 + 40*int(seed), AvgTxLen: 8, AvgPatternLen: 3,
			NumPatterns: 80, NumItems: 100, Seed: seed,
		}, 0.03})
	}
	workloads = append(workloads,
		workload{quest.Params{NumTransactions: 120, AvgTxLen: 6, AvgPatternLen: 4,
			NumPatterns: 5, NumItems: 12, Seed: 11}, 0.25},
		workload{quest.Params{NumTransactions: 200, AvgTxLen: 10, AvgPatternLen: 5,
			NumPatterns: 10, NumItems: 30, Seed: 12}, 0.08},
	)
	return workloads
}

// reference mines the maintainer's materialized window from scratch and
// derives the expected MFS, supports, and border — the ground truth every
// delta is checked against.
type refState struct {
	mfs            []itemset.Itemset
	mfsSupports    []int64
	border         []itemset.Itemset
	borderSupports []int64
	minCount       int64
}

func reference(t *testing.T, m *Maintainer) refState {
	t.Helper()
	d := m.Dataset()
	minCount := dataset.MinCountFor(d.Len(), m.opt.MinSupport)
	res := must(core.MineCount(dataset.NewScanner(d), minCount, core.DefaultOptions()))
	universe := itemset.Range(0, itemset.Item(d.NumItems()))
	border := mfi.NegativeBorder(universe, mfi.Expand(res.MFS, 0))
	borderSupports := make([]int64, len(border))
	for i, b := range border {
		borderSupports[i] = d.Support(b)
	}
	return refState{res.MFS, res.MFSSupports, border, borderSupports, minCount}
}

// checkAgainstReference asserts the maintained state is byte-identical to a
// from-scratch mine of the materialized window.
func checkAgainstReference(t *testing.T, m *Maintainer, tag string) {
	t.Helper()
	ref := reference(t, m)
	if m.MinCount() != ref.minCount {
		t.Fatalf("%s: minCount = %d, want %d", tag, m.MinCount(), ref.minCount)
	}
	if err := mfi.VerifyAgainst(m.MFS(), ref.mfs); err != nil {
		t.Fatalf("%s: MFS diverged: %v", tag, err)
	}
	for i := range ref.mfs {
		if m.MFSSupports()[i] != ref.mfsSupports[i] {
			t.Fatalf("%s: support(%v) = %d, want %d",
				tag, ref.mfs[i], m.MFSSupports()[i], ref.mfsSupports[i])
		}
	}
	if err := mfi.VerifyAgainst(m.Border(), ref.border); err != nil {
		t.Fatalf("%s: border diverged: %v", tag, err)
	}
	for i := range ref.border {
		if m.BorderSupports()[i] != ref.borderSupports[i] {
			t.Fatalf("%s: border support(%v) = %d, want %d",
				tag, ref.border[i], m.BorderSupports()[i], ref.borderSupports[i])
		}
	}
}

type maintainerConfig struct {
	name    string
	counter string
	workers int
	window  bool
}

// TestMaintainerEquivalence is the headline property test: across the
// 12-workload corpus, two minsups, scan and tid-list counters, and worker
// counts {1, 4}, a randomized append/evict schedule must leave the
// maintained MFS, supports, and border byte-identical to a from-scratch
// mine of the materialized window after EVERY delta — including the deltas
// the maintainer absorbed on the re-mine-avoided fast path, which the test
// proves actually occur.
func TestMaintainerEquivalence(t *testing.T) {
	configs := []maintainerConfig{
		{"scan-w1", CounterScan, 1, false},
		{"scan-w4", CounterScan, 4, true},
		{"tidlist-w1", CounterTidList, 1, true},
		{"tidlist-w4", CounterTidList, 4, false},
	}
	var totalFast, totalRemines int64
	for wi, wl := range corpus() {
		if testing.Short() && wi%4 != 0 {
			continue
		}
		supports := []float64{wl.support, wl.support * 1.5}
		if testing.Short() || wi%3 != 0 {
			supports = supports[:1]
		}
		d := quest.Generate(wl.params)
		txs := d.Transactions()
		for si, sup := range supports {
			// Rotate two of the four configs per workload (every config runs
			// against every workload shape across the corpus) and re-prove
			// the second minsup on the first of them only: after-every-delta
			// reference mines are expensive, and the property is per-delta,
			// not per-combination.
			for ci, cfg := range []maintainerConfig{configs[wi%4], configs[(wi+1)%4]} {
				if si > 0 && ci > 0 {
					continue
				}
				opt := Options{MinSupport: sup, Counter: cfg.counter, Workers: cfg.workers}
				if cfg.window {
					opt.Window = len(txs) * 4 / 5
				}
				m := must(New(opt))
				rng := rand.New(rand.NewSource(int64(7919*wi + 101*si + ci)))
				st := schedule(rng, txs)
				for bi, batch := range st {
					if _, err := m.Append(batch); err != nil {
						t.Fatalf("workload %d sup %v cfg %s batch %d: %v", wi, sup, cfg.name, bi, err)
					}
					checkAgainstReference(t, m,
						fmt.Sprintf("workload %d sup %v cfg %s batch %d", wi, sup, cfg.name, bi))
				}
				if cfg.window && m.Len() != opt.Window {
					t.Fatalf("workload %d cfg %s: window length %d, want %d", wi, cfg.name, m.Len(), opt.Window)
				}
				totalFast += m.Stats().FastPath
				totalRemines += m.Stats().Remines
			}
		}
	}
	// Both decision outcomes must actually be exercised, or the test says
	// nothing about the fast path (or about warm-started re-mines).
	if totalFast == 0 {
		t.Fatal("no delta ever took the fast path — the border argument was never exercised")
	}
	if totalRemines == 0 {
		t.Fatal("no delta ever re-mined")
	}
	t.Logf("fast-path deltas: %d, re-mines: %d", totalFast, totalRemines)
}

// schedule splits txs into a randomized batch schedule: one bulk batch to
// establish the stream, two single-transaction deltas (the fast path's
// natural habitat), then three random cuts over the remainder.
func schedule(rng *rand.Rand, txs []dataset.Transaction) [][]dataset.Transaction {
	bulk := len(txs) * 3 / 5
	batches := [][]dataset.Transaction{txs[:bulk], txs[bulk : bulk+1], txs[bulk+1 : bulk+2]}
	at := bulk + 2
	rest := len(txs) - at
	cuts := []int{at + rng.Intn(rest), at + rng.Intn(rest), len(txs)}
	sortInts(cuts)
	for _, c := range cuts {
		if c > at {
			batches = append(batches, txs[at:c])
			at = c
		}
	}
	return batches
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestMaintainerWindowSmallerThanBatch covers the window-boundary edge
// where a single batch overflows the whole window: its own head is evicted
// immediately and the arithmetic must net out exactly.
func TestMaintainerWindowSmallerThanBatch(t *testing.T) {
	d := quest.Generate(quest.Params{NumTransactions: 200, AvgTxLen: 8,
		AvgPatternLen: 4, NumPatterns: 10, NumItems: 30, Seed: 3})
	txs := d.Transactions()
	m := must(New(Options{MinSupport: 0.1, Window: 50}))
	if _, err := m.Append(txs[:120]); err != nil { // 70 of its own evicted
		t.Fatal(err)
	}
	if m.Len() != 50 {
		t.Fatalf("window length %d, want 50", m.Len())
	}
	checkAgainstReference(t, m, "oversized first batch")
	delta := must(m.Append(txs[120:200])) // full turnover
	if delta.Evicted != 80 {
		t.Fatalf("evicted %d, want 80", delta.Evicted)
	}
	checkAgainstReference(t, m, "full-turnover batch")
}

// TestMaintainerNewItems covers universe growth mid-stream: transactions
// introducing item ids past the declared universe must extend the border
// with exactly the new infrequent singletons (fast path) or trigger a
// re-mine when a new item arrives frequent.
func TestMaintainerNewItems(t *testing.T) {
	m := must(New(Options{MinSupport: 0.5}))
	base := make([]dataset.Transaction, 0, 8)
	for i := 0; i < 8; i++ {
		base = append(base, itemset.New(0, 1))
	}
	must(m.Append(base))
	checkAgainstReference(t, m, "initial")

	// One transaction with a brand-new item: infrequent, so the border just
	// gains the singleton {2} — no mine.
	delta := must(m.Append([]dataset.Transaction{itemset.New(0, 1, 2)}))
	if delta.Remined {
		t.Fatalf("infrequent new item forced a re-mine (reason %q)", delta.Reason)
	}
	checkAgainstReference(t, m, "new infrequent item")

	// Flood of a newer item riding the existing pattern: the old MFS stays
	// frequent, so the new item itself is what forces the re-mine.
	flood := make([]dataset.Transaction, 0, 12)
	for i := 0; i < 12; i++ {
		flood = append(flood, itemset.New(0, 1, 3))
	}
	delta = must(m.Append(flood))
	if !delta.Remined || delta.Reason != ReasonNewItemFrequent {
		t.Fatalf("frequent new item: remined=%v reason=%q, want re-mine with %q",
			delta.Remined, delta.Reason, ReasonNewItemFrequent)
	}
	checkAgainstReference(t, m, "new frequent item")
}

// TestMaintainerStateRoundTrip proves Snapshot → Encode → Decode → Restore
// reproduces a maintainer that continues the stream identically to the
// original.
func TestMaintainerStateRoundTrip(t *testing.T) {
	d := quest.Generate(quest.Params{NumTransactions: 300, AvgTxLen: 10,
		AvgPatternLen: 5, NumPatterns: 12, NumItems: 40, Seed: 9})
	txs := d.Transactions()
	opt := Options{MinSupport: 0.08, Window: 220}
	orig := must(New(opt))
	must(orig.Append(txs[:180]))
	must(orig.Append(txs[180:220]))

	raw := must(EncodeState(orig.Snapshot()))
	st := must(DecodeState(raw))
	restored := must(New(opt))
	if err := restored.Restore(st, orig.Window()); err != nil {
		t.Fatal(err)
	}
	if restored.Seq() != orig.Seq() || restored.MinCount() != orig.MinCount() {
		t.Fatalf("restored seq/minCount %d/%d, want %d/%d",
			restored.Seq(), restored.MinCount(), orig.Seq(), orig.MinCount())
	}

	for at := 220; at < len(txs); at += 30 {
		end := at + 30
		if end > len(txs) {
			end = len(txs)
		}
		do := must(orig.Append(txs[at:end]))
		dr := must(restored.Append(txs[at:end]))
		if do.Remined != dr.Remined || do.Reason != dr.Reason {
			t.Fatalf("batch at %d: original delta %+v, restored delta %+v", at, do, dr)
		}
		checkAgainstReference(t, restored, "restored continuation")
	}
	if err := mfi.VerifyAgainst(restored.MFS(), orig.MFS()); err != nil {
		t.Fatalf("restored MFS diverged from original: %v", err)
	}

	// A window that disagrees with the snapshot must be rejected.
	fresh := must(New(opt))
	if err := fresh.Restore(st, orig.Window()[1:]); err == nil {
		t.Fatal("Restore accepted a window shorter than the snapshot records")
	}
}

// TestDecodeStateErrors pins the typed-error contract: garbage, version
// skew, and inconsistent parallel slices all surface *checkpoint.CorruptError.
func TestDecodeStateErrors(t *testing.T) {
	var ce *checkpoint.CorruptError
	if _, err := DecodeState([]byte("not a gob stream")); !errors.As(err, &ce) {
		t.Fatalf("garbage: got %v, want *checkpoint.CorruptError", err)
	}
	bad := &State{Version: StateVersion + 1}
	if _, err := DecodeState(must(EncodeState(bad))); !errors.As(err, &ce) {
		t.Fatalf("version skew: got %v, want *checkpoint.CorruptError", err)
	}
	bad = &State{Version: StateVersion, MFS: []itemset.Itemset{itemset.New(1)}}
	if _, err := DecodeState(must(EncodeState(bad))); !errors.As(err, &ce) {
		t.Fatalf("mismatched slices: got %v, want *checkpoint.CorruptError", err)
	}
}

// TestMaintainerRemineFaultResume kills a re-mine mid-scan and proves the
// transactionality contract: the failed Append leaves the maintainer
// unchanged, and replaying the same batch — resuming from the mine
// checkpoint the crash left behind — converges to the exact reference.
func TestMaintainerRemineFaultResume(t *testing.T) {
	d := quest.Generate(quest.Params{NumTransactions: 240, AvgTxLen: 10,
		AvgPatternLen: 5, NumPatterns: 10, NumItems: 30, Seed: 5})
	txs := d.Transactions()

	armed := true
	opt := Options{
		MinSupport:       0.08,
		MineCheckpointer: &checkpoint.MemCheckpointer{},
		WrapScanner: func(sc dataset.Scanner) dataset.Scanner {
			if !armed {
				return sc
			}
			return &faultinject.Scanner{Scanner: sc, TripAtScan: 2, AfterTx: 20}
		},
	}
	m := must(New(opt))

	if _, err := m.Append(txs); err == nil {
		t.Fatal("killed re-mine reported success")
	}
	if m.Seq() != 0 || m.Len() != 0 || len(m.MFS()) != 0 {
		t.Fatalf("failed Append mutated the maintainer: seq %d, len %d, |MFS| %d",
			m.Seq(), m.Len(), len(m.MFS()))
	}
	// The crash must have left a resumable checkpoint behind.
	if st := must(opt.MineCheckpointer.Load()); st == nil {
		t.Fatal("no mine checkpoint survived the simulated crash")
	}

	armed = false
	delta := must(m.Append(txs))
	if !delta.Remined {
		t.Fatal("replayed first batch did not mine")
	}
	checkAgainstReference(t, m, "post-crash replay")

	// Success must clear the checkpoint so the next re-mine starts fresh.
	if st := must(opt.MineCheckpointer.Load()); st != nil {
		t.Fatal("successful mine left its checkpoint behind")
	}
}

// TestMaintainerCorruptMineCheckpoint proves a stale or corrupt warm-start
// checkpoint cannot wedge the stream: the maintainer clears it and mines
// fresh.
func TestMaintainerCorruptMineCheckpoint(t *testing.T) {
	d := quest.Generate(quest.Params{NumTransactions: 150, AvgTxLen: 8,
		AvgPatternLen: 4, NumPatterns: 8, NumItems: 20, Seed: 4})
	ck := &checkpoint.MemCheckpointer{}
	// A checkpoint from some other run: wrong database size, wrong minCount.
	if err := ck.Save(&checkpoint.State{Version: checkpoint.Version,
		Algorithm: "pincer", MinCount: 999, NumTransactions: 7, NumItems: 3}); err != nil {
		t.Fatal(err)
	}
	m := must(New(Options{MinSupport: 0.1, MineCheckpointer: ck}))
	must(m.Append(d.Transactions()))
	checkAgainstReference(t, m, "after clearing foreign checkpoint")
}

// TestNewValidation pins the option validation errors.
func TestNewValidation(t *testing.T) {
	cases := []Options{
		{MinSupport: 0},
		{MinSupport: 1.5},
		{MinSupport: 0.1, Window: -1},
		{MinSupport: 0.1, Counter: "bitmap"},
	}
	for i, opt := range cases {
		if _, err := New(opt); err == nil {
			t.Fatalf("case %d: New(%+v) accepted invalid options", i, opt)
		}
	}
}
