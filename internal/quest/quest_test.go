package quest

import (
	"math"
	"testing"

	"pincer/internal/itemset"
)

func smallParams() Params {
	return Params{
		NumTransactions: 2000,
		AvgTxLen:        10,
		AvgPatternLen:   4,
		NumPatterns:     100,
		NumItems:        200,
		Seed:            1,
	}
}

func TestDefaults(t *testing.T) {
	p := Params{}.Defaults()
	if p.NumTransactions != 100_000 || p.NumItems != 1000 || p.NumPatterns != 2000 {
		t.Fatalf("Defaults = %+v", p)
	}
	if p.AvgTxLen != 10 || p.AvgPatternLen != 4 {
		t.Fatalf("Defaults = %+v", p)
	}
	if p.CorrelationLevel != 0.5 || p.CorruptionMean != 0.5 || p.CorruptionStdDev != 0.1 {
		t.Fatalf("Defaults = %+v", p)
	}
	// explicit values are preserved
	p = Params{NumTransactions: 7, AvgTxLen: 5, NumItems: 3}.Defaults()
	if p.NumTransactions != 7 || p.AvgTxLen != 5 || p.NumItems != 3 {
		t.Fatalf("Defaults clobbered explicit values: %+v", p)
	}
}

func TestName(t *testing.T) {
	tests := []struct {
		p    Params
		want string
	}{
		{Params{AvgTxLen: 20, AvgPatternLen: 6, NumTransactions: 100_000}, "T20.I6.D100K"},
		{Params{AvgTxLen: 5, AvgPatternLen: 2, NumTransactions: 100_000}, "T5.I2.D100K"},
		{Params{AvgTxLen: 10, AvgPatternLen: 4, NumTransactions: 1234}, "T10.I4.D1234"},
		{Params{AvgTxLen: 2.5, AvgPatternLen: 1, NumTransactions: 1000}, "T2.5.I1.D1K"},
	}
	for _, tc := range tests {
		if got := tc.p.Name(); got != tc.want {
			t.Errorf("Name(%+v) = %q, want %q", tc.p, got, tc.want)
		}
	}
}

func TestParseName(t *testing.T) {
	p, err := ParseName("T20.I15.D100K")
	if err != nil {
		t.Fatal(err)
	}
	if p.AvgTxLen != 20 || p.AvgPatternLen != 15 || p.NumTransactions != 100_000 {
		t.Fatalf("ParseName = %+v", p)
	}
	p, err = ParseName("T5.I2.D400")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumTransactions != 400 {
		t.Fatalf("ParseName = %+v", p)
	}
	for _, bad := range []string{"", "T20", "I4.T10.D100K", "T20.I6", "T20.I6.Dabc"} {
		if _, err := ParseName(bad); err == nil {
			t.Errorf("ParseName(%q) succeeded", bad)
		}
	}
	// round trip
	orig := Params{AvgTxLen: 10, AvgPatternLen: 4, NumTransactions: 100_000}
	back, err := ParseName(orig.Name())
	if err != nil {
		t.Fatal(err)
	}
	if back.AvgTxLen != orig.AvgTxLen || back.NumTransactions != orig.NumTransactions {
		t.Fatalf("round trip: %+v", back)
	}
}

func TestGenerateShape(t *testing.T) {
	p := smallParams()
	d := Generate(p)
	if d.Len() != p.NumTransactions {
		t.Fatalf("|D| = %d, want %d", d.Len(), p.NumTransactions)
	}
	if d.NumItems() != p.NumItems {
		t.Fatalf("N = %d, want %d", d.NumItems(), p.NumItems)
	}
	st := d.Stats()
	// The mean transaction length should be near |T| (generous tolerance:
	// corruption and the fit rule shift it slightly below the Poisson mean).
	if st.AvgLength < p.AvgTxLen*0.5 || st.AvgLength > p.AvgTxLen*1.5 {
		t.Errorf("avg length %v too far from |T|=%v", st.AvgLength, p.AvgTxLen)
	}
	for _, tx := range d.Transactions() {
		if len(tx) == 0 {
			continue
		}
		if int(tx.Last()) >= p.NumItems {
			t.Fatalf("item %d out of universe", tx.Last())
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a := Generate(smallParams())
	b := Generate(smallParams())
	if a.Len() != b.Len() {
		t.Fatal("same seed, different |D|")
	}
	for i := 0; i < a.Len(); i++ {
		if !a.Transaction(i).Equal(b.Transaction(i)) {
			t.Fatalf("same seed diverges at tx %d: %v vs %v", i, a.Transaction(i), b.Transaction(i))
		}
	}
	p := smallParams()
	p.Seed = 2
	c := Generate(p)
	same := true
	for i := 0; i < a.Len() && i < c.Len(); i++ {
		if !a.Transaction(i).Equal(c.Transaction(i)) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produce identical databases")
	}
}

func TestPatterns(t *testing.T) {
	g := New(smallParams())
	pats := g.Patterns()
	if len(pats) != 100 {
		t.Fatalf("|L| = %d", len(pats))
	}
	totalLen := 0
	for _, p := range pats {
		if len(p) == 0 {
			t.Fatal("empty pattern")
		}
		if int(p.Last()) >= g.Params().NumItems {
			t.Fatalf("pattern item out of range: %v", p)
		}
		totalLen += len(p)
	}
	avg := float64(totalLen) / float64(len(pats))
	if avg < 2 || avg > 7 {
		t.Errorf("avg pattern length %v too far from |I|=4", avg)
	}
}

func TestPatternsActuallyOccur(t *testing.T) {
	// Concentrated parameters: few long patterns, so at least some of them
	// should be frequent in the generated data — this is the property the
	// whole benchmark design depends on.
	p := Params{
		NumTransactions: 2000,
		AvgTxLen:        20,
		AvgPatternLen:   10,
		NumPatterns:     10,
		NumItems:        200,
		Seed:            7,
	}
	g := New(p)
	d := g.Generate()
	found := 0
	for _, pat := range g.Patterns() {
		if d.SupportFraction(pat) >= 0.01 {
			found++
		}
	}
	if found == 0 {
		t.Fatal("no seeded pattern reaches 1% support; generator is not planting patterns")
	}
}

func TestLongTransactionsForLongPatterns(t *testing.T) {
	// T20.I15-style parameters must yield long frequent itemsets: verify a
	// 10+-item itemset has noticeable support.
	p := Params{
		NumTransactions: 1500,
		AvgTxLen:        20,
		AvgPatternLen:   15,
		NumPatterns:     10,
		NumItems:        200,
		Seed:            3,
	}
	g := New(p)
	d := g.Generate()
	best := 0.0
	bestLen := 0
	for _, pat := range g.Patterns() {
		if len(pat) >= 10 {
			if s := d.SupportFraction(pat); s > best {
				best = s
				bestLen = len(pat)
			}
		}
	}
	if best < 0.02 {
		t.Fatalf("no long pattern with support ≥ 2%% (best %.3f, len %d)", best, bestLen)
	}
}

func TestPoissonMean(t *testing.T) {
	g := New(smallParams())
	const n = 20000
	sum := 0
	for i := 0; i < n; i++ {
		sum += g.poisson(6)
	}
	mean := float64(sum) / n
	if math.Abs(mean-6) > 0.2 {
		t.Fatalf("poisson mean = %v, want ≈6", mean)
	}
	if g.poisson(0) != 0 || g.poisson(-1) != 0 {
		t.Fatal("poisson of non-positive mean should be 0")
	}
}

func TestExponentialMean(t *testing.T) {
	g := New(smallParams())
	const n = 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.exponential(0.5)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.05 {
		t.Fatalf("exponential mean = %v, want ≈0.5", mean)
	}
}

func TestGenerateIntoStreams(t *testing.T) {
	g := New(smallParams())
	var got []itemset.Itemset
	g.GenerateInto(func(tx itemset.Itemset) { got = append(got, tx) })
	if len(got) != g.Params().NumTransactions {
		t.Fatalf("streamed %d transactions", len(got))
	}
}
