// Package quest implements the IBM Quest synthetic transaction-data
// generator of Agrawal and Srikant ("Fast Algorithms for Mining Association
// Rules", VLDB 1994, §Experiments), the benchmark workload the paper's
// evaluation uses. Database names follow the convention
//
//	T<avg tx len>.I<avg pattern len>.D<num transactions>
//
// so T20.I6.D100K is |T|=20, |I|=6, |D|=100 000. Two further parameters
// control the distribution: N, the number of items (1000 throughout the
// paper), and |L|, the number of maximal potentially large itemsets —
// 2000 for the paper's "scattered" experiments (Figure 3) and 50 for the
// "concentrated" ones (Figure 4).
package quest

import (
	"fmt"
	"math"
	"math/rand"
	"regexp"
	"strconv"
	"strings"

	"pincer/internal/dataset"
	"pincer/internal/itemset"
)

// Params configures the generator. Zero fields are replaced by the paper's
// defaults (see Defaults).
type Params struct {
	NumTransactions int     // |D|: number of transactions
	AvgTxLen        float64 // |T|: average transaction size (Poisson mean)
	AvgPatternLen   float64 // |I|: average size of maximal potentially large itemsets (Poisson mean)
	NumPatterns     int     // |L|: number of maximal potentially large itemsets
	NumItems        int     // N: item universe size

	// CorrelationLevel is the mean of the exponential distribution that
	// decides what fraction of each pattern is drawn from its predecessor
	// (0.5 in [AS94]).
	CorrelationLevel float64
	// CorruptionMean / CorruptionStdDev parameterize the per-pattern
	// corruption level, drawn from a clamped normal distribution
	// (0.5 / 0.1 in [AS94]).
	CorruptionMean   float64
	CorruptionStdDev float64

	Seed int64 // PRNG seed; runs with equal Params and Seed are identical
}

// Defaults fills in the paper's default values for unset fields.
func (p Params) Defaults() Params {
	if p.NumTransactions <= 0 {
		p.NumTransactions = 100_000
	}
	if p.AvgTxLen <= 0 {
		p.AvgTxLen = 10
	}
	if p.AvgPatternLen <= 0 {
		p.AvgPatternLen = 4
	}
	if p.NumPatterns <= 0 {
		p.NumPatterns = 2000
	}
	if p.NumItems <= 0 {
		p.NumItems = 1000
	}
	if p.CorrelationLevel <= 0 {
		p.CorrelationLevel = 0.5
	}
	if p.CorruptionMean <= 0 {
		p.CorruptionMean = 0.5
	}
	if p.CorruptionStdDev <= 0 {
		p.CorruptionStdDev = 0.1
	}
	return p
}

// Name renders the conventional database name, e.g. "T20.I6.D100K".
func (p Params) Name() string {
	p = p.Defaults()
	d := strconv.Itoa(p.NumTransactions)
	if p.NumTransactions%1000 == 0 {
		d = strconv.Itoa(p.NumTransactions/1000) + "K"
	}
	return fmt.Sprintf("T%s.I%s.D%s",
		trimFloat(p.AvgTxLen), trimFloat(p.AvgPatternLen), d)
}

func trimFloat(f float64) string {
	s := strconv.FormatFloat(f, 'f', -1, 64)
	return s
}

var nameRE = regexp.MustCompile(`^T([0-9.]+)\.I([0-9.]+)\.D([0-9]+)(K|k)?$`)

// ParseName parses a conventional database name into Params (other fields
// keep their zero values, i.e. the paper defaults apply).
func ParseName(name string) (Params, error) {
	m := nameRE.FindStringSubmatch(strings.TrimSpace(name))
	if m == nil {
		return Params{}, fmt.Errorf("quest: cannot parse database name %q (want e.g. T10.I4.D100K)", name)
	}
	t, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		return Params{}, fmt.Errorf("quest: bad |T| in %q: %w", name, err)
	}
	i, err := strconv.ParseFloat(m[2], 64)
	if err != nil {
		return Params{}, fmt.Errorf("quest: bad |I| in %q: %w", name, err)
	}
	d, err := strconv.Atoi(m[3])
	if err != nil {
		return Params{}, fmt.Errorf("quest: bad |D| in %q: %w", name, err)
	}
	if m[4] != "" {
		d *= 1000
	}
	return Params{AvgTxLen: t, AvgPatternLen: i, NumTransactions: d}, nil
}

// pattern is one maximal potentially large itemset with its selection weight
// and corruption level. order holds the items in a fixed random order:
// corruption truncates its tail, so the subsets a corrupted pattern leaves
// behind are nested prefixes — this matches the original Quest generator
// and is what makes "concentrated" databases have few, long maximal
// frequent itemsets rather than a combinatorial smear of subsets.
type pattern struct {
	items      itemset.Itemset
	order      []itemset.Item // items in corruption order
	weight     float64        // cumulative after normalization
	corruption float64
}

// Generator produces synthetic transaction databases. Create one with New,
// then call Generate (or GenerateInto for streaming use).
type Generator struct {
	params   Params
	rng      *rand.Rand
	patterns []pattern
}

// New builds a generator: it draws the |L| potentially large itemsets, their
// weights, and their corruption levels. The transaction stream itself is
// produced by Generate.
func New(p Params) *Generator {
	p = p.Defaults()
	g := &Generator{params: p, rng: rand.New(rand.NewSource(p.Seed))}
	g.buildPatterns()
	return g
}

// Params returns the fully-defaulted parameters in effect.
func (g *Generator) Params() Params { return g.params }

// Patterns exposes the maximal potentially large itemsets that seed the
// data (useful for validating that mining recovers them). The returned
// slices must not be modified.
func (g *Generator) Patterns() []itemset.Itemset {
	out := make([]itemset.Itemset, len(g.patterns))
	for i, p := range g.patterns {
		out[i] = p.items
	}
	return out
}

func (g *Generator) buildPatterns() {
	p := g.params
	g.patterns = make([]pattern, p.NumPatterns)
	var prev itemset.Itemset
	weights := make([]float64, p.NumPatterns)
	totalW := 0.0
	for i := range g.patterns {
		size := g.poisson(p.AvgPatternLen - 1)
		size++ // at least one item
		if size > p.NumItems {
			size = p.NumItems
		}
		items := make(map[itemset.Item]bool, size)
		if i > 0 && len(prev) > 0 {
			// Take an exponentially-distributed fraction of items from the
			// previous pattern, to model cross-pattern correlation.
			frac := g.exponential(p.CorrelationLevel)
			if frac > 1 {
				frac = 1
			}
			take := int(math.Round(frac * float64(size)))
			if take > len(prev) {
				take = len(prev)
			}
			perm := g.rng.Perm(len(prev))
			for _, j := range perm[:take] {
				items[prev[j]] = true
			}
		}
		for len(items) < size {
			items[itemset.Item(g.rng.Intn(p.NumItems))] = true
		}
		flat := make([]itemset.Item, 0, len(items))
		for it := range items {
			flat = append(flat, it)
		}
		g.patterns[i].items = itemset.New(flat...)
		prev = g.patterns[i].items
		order := make([]itemset.Item, len(g.patterns[i].items))
		copy(order, g.patterns[i].items)
		g.rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		g.patterns[i].order = order

		w := g.exponential(1)
		weights[i] = w
		totalW += w

		c := p.CorruptionMean + g.rng.NormFloat64()*p.CorruptionStdDev
		if c < 0 {
			c = 0
		}
		if c > 1 {
			c = 1
		}
		g.patterns[i].corruption = c
	}
	// cumulative weights for O(log L) pattern selection
	cum := 0.0
	for i := range g.patterns {
		cum += weights[i] / totalW
		g.patterns[i].weight = cum
	}
	g.patterns[len(g.patterns)-1].weight = 1
}

// pickPattern samples a pattern index according to the normalized weights.
func (g *Generator) pickPattern() *pattern {
	u := g.rng.Float64()
	lo, hi := 0, len(g.patterns)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if g.patterns[mid].weight < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return &g.patterns[lo]
}

// Generate materializes the complete database.
func (g *Generator) Generate() *dataset.Dataset {
	d := dataset.Empty(g.params.NumItems)
	g.GenerateInto(func(t itemset.Itemset) { d.Append(t) })
	return d
}

// GenerateInto streams |D| transactions to sink, in order. Each call
// continues the PRNG stream, so two calls yield different transactions.
func (g *Generator) GenerateInto(sink func(itemset.Itemset)) {
	var carry itemset.Itemset // corrupted pattern deferred to the next transaction
	for i := 0; i < g.params.NumTransactions; i++ {
		sink(g.transaction(&carry))
	}
}

// transaction assembles one transaction following [AS94]: draw a Poisson
// length, then fill it with (possibly corrupted) patterns; a pattern that
// does not fit is kept anyway half the time and deferred to the next
// transaction otherwise.
func (g *Generator) transaction(carry *itemset.Itemset) itemset.Itemset {
	want := g.poisson(g.params.AvgTxLen)
	if want < 1 {
		want = 1
	}
	tx := make(map[itemset.Item]bool, want)
	add := func(s itemset.Itemset) {
		for _, it := range s {
			tx[it] = true
		}
	}
	if *carry != nil {
		add(*carry)
		*carry = nil
	}
	guard := 0
	for len(tx) < want {
		guard++
		if guard > 64 { // pathological parameters; never triggered by paper settings
			break
		}
		p := g.pickPattern()
		corrupted := g.corrupt(p)
		if len(corrupted) == 0 {
			continue
		}
		if len(tx)+len(corrupted) > want && len(tx) > 0 {
			// Does not fit: half the time keep it regardless, otherwise
			// defer it to the next transaction.
			if g.rng.Float64() < 0.5 {
				add(corrupted)
			} else {
				*carry = corrupted
			}
			break
		}
		add(corrupted)
	}
	flat := make([]itemset.Item, 0, len(tx))
	for it := range tx {
		flat = append(flat, it)
	}
	return itemset.New(flat...)
}

// corrupt drops items from the tail of the pattern's fixed random order
// while successive uniform draws stay below the pattern's corruption level
// — the original Quest rule. Because the order is fixed per pattern, the
// surviving subsets form a nested chain of prefixes, concentrating support
// on one subset per length instead of smearing it over all C(l,k) subsets.
func (g *Generator) corrupt(p *pattern) itemset.Itemset {
	keep := len(p.order)
	for keep > 0 && g.rng.Float64() < p.corruption {
		keep--
	}
	if keep == len(p.order) {
		return p.items
	}
	return itemset.New(p.order[:keep]...)
}

// poisson draws from a Poisson distribution with the given mean using
// Knuth's product method — adequate for the small means used here.
func (g *Generator) poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= g.rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10_000 {
			return k
		}
	}
}

// exponential draws from an exponential distribution with the given mean.
func (g *Generator) exponential(mean float64) float64 {
	return g.rng.ExpFloat64() * mean
}

// Generate is the package-level convenience: build a generator and produce
// the database in one call.
func Generate(p Params) *dataset.Dataset {
	return New(p).Generate()
}
