package core

import (
	"time"

	"pincer/internal/apriori"
	"pincer/internal/counting"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
	"pincer/internal/obsv"
)

// Options configures a Pincer-Search run.
type Options struct {
	// Engine selects the support-counting structure for bottom-up
	// candidates in passes ≥ 3 (default: hash tree).
	Engine counting.Engine
	// Pure disables the adaptive policy: no caps, MFCS is maintained to the
	// bitter end (paper §3.5 calls this the "pure" version; the evaluated
	// algorithm is the adaptive one).
	Pure bool
	// MFCSCap bounds |MFCS|; exceeding it makes the adaptive algorithm
	// abandon the MFCS and degrade to bottom-up search (0 = unlimited).
	MFCSCap int
	// CliqueNodeBudget bounds the pass-2 maximal-clique enumeration
	// (recursion states); exhausting it likewise abandons the MFCS.
	CliqueNodeBudget int
	// IncrementalSplitMax selects the pass-2 MFCS-gen strategy: at most
	// this many infrequent pairs are fed through the paper's incremental
	// MFCS-gen; beyond it the batch (maximal-clique) rebuild runs instead.
	// Both compute the same set — see clique.go.
	IncrementalSplitMax int
	// KeepFrequent retains every explicitly counted frequent itemset (with
	// support) in the result. Pincer-Search's point is that this set can be
	// far smaller than the full frequent set.
	KeepFrequent bool
	// DisableRecovery skips the recovery procedure (§3.4) — for ablation
	// only. The tail phase still makes the output correct; the bottom-up
	// search just loses candidates and more work shifts to the MFCS.
	DisableRecovery bool
	// MaxTailPasses bounds the MFCS-only passes after the bottom-up search
	// exhausts (0 = unlimited). If exceeded, the run falls back to Apriori
	// to guarantee a correct result.
	MaxTailPasses int
	// MFSCap bounds the number of maximal frequent itemsets the MFCS path
	// tracks; a maximum frequent set that large means the distribution is
	// hostile to Pincer-Search and the run falls back to Apriori
	// (0 = unlimited, implied by Pure).
	MFSCap int
	// CombineAfterAbandon implements the rest of §3.5's adaptive sentence:
	// once the MFCS is abandoned ("we may simply count candidates of
	// different sizes in one pass, as in [3] and [12]"), the degraded
	// bottom-up search counts two candidate levels per pass when the
	// candidate set is small (≤ CombineThreshold, default 10000).
	CombineAfterAbandon bool
	// CombineThreshold is the candidate ceiling for the combined passes.
	CombineThreshold int
	// Counter overrides the per-pass support counting (nil: one sequential
	// scan of the Scanner per pass). internal/parallel injects its
	// count-distribution implementation here; the algorithm, pass
	// accounting, and results are unchanged by the override — only how each
	// pass's counts are produced.
	Counter PassCounter
	// Tracer receives one span event per database pass plus run start and
	// finish notifications (see internal/obsv). Nil disables tracing: the
	// miner then takes no timestamps and emits nothing, so the hot path is
	// unchanged.
	Tracer obsv.Tracer
	// Algorithm overrides the name recorded in Stats and trace events
	// (default "pincer"); internal/parallel labels its runs
	// "pincer-parallel".
	Algorithm string
}

// DefaultOptions returns the adaptive configuration evaluated in the paper.
// The caps embody §3.5's adaptive policy: when the MFCS (or the MFS it
// discovers) grows so large that maintaining it is counterproductive, the
// run degrades to bottom-up search.
func DefaultOptions() Options {
	return Options{
		Engine:              counting.EngineHashTree,
		MFCSCap:             10_000,
		CliqueNodeBudget:    1_000_000,
		IncrementalSplitMax: 256,
		KeepFrequent:        true,
		MFSCap:              50_000,
		CombineAfterAbandon: true,
		CombineThreshold:    10_000,
	}
}

// Mine runs Pincer-Search at a fractional minimum support. A mid-pass
// failure of the database read (e.g. a corrupt or vanished basket file
// behind a dataset.FileScanner) is returned as an error; an in-memory scan
// cannot fail.
func Mine(sc dataset.Scanner, minSupport float64, opt Options) (*mfi.Result, error) {
	return MineCount(sc, dataset.MinCountFor(sc.Len(), minSupport), opt)
}

// MineCount runs Pincer-Search with an absolute support-count threshold and
// returns the maximum frequent set. It is a mining boundary: I/O and parse
// panics raised mid-pass, counter-merge mismatches, and captured worker
// panics from a parallel PassCounter all surface as the returned error
// (see mfi.RecoverMiningError).
func MineCount(sc dataset.Scanner, minCount int64, opt Options) (res *mfi.Result, err error) {
	defer mfi.RecoverMiningError(&err)
	pc := opt.Counter
	if pc == nil {
		pc = &seqPassCounter{sc: sc}
	}
	m := &miner{
		sc:       sc,
		pc:       pc,
		opt:      opt,
		minCount: minCount,
		cache:    make(map[string]int64),
		res: &mfi.Result{
			MinCount:        minCount,
			NumTransactions: sc.Len(),
			Frequent:        itemset.NewSet(0),
		},
	}
	m.res.Stats.Algorithm = "pincer"
	if opt.Algorithm != "" {
		m.res.Stats.Algorithm = opt.Algorithm
	}
	if opt.Tracer != nil {
		// Thread the tracer through the PassCounter seam: the timing
		// decorator records each pass's scan wall clock for the events.
		m.tracer = opt.Tracer
		m.workers = countingWorkers(pc)
		m.timed = &timedPassCounter{pc: pc}
		m.pc = m.timed
		m.tracer.RunStart(obsv.RunInfo{
			Algorithm: m.res.Stats.Algorithm, Workers: m.workers,
			MinCount: minCount, NumTransactions: sc.Len(),
		})
	}
	start := time.Now()
	m.run()
	m.res.Stats.Duration = time.Since(start)
	if m.tracer != nil {
		m.tracer.RunDone(obsv.RunSummary{
			Algorithm: m.res.Stats.Algorithm, Passes: m.res.Stats.Passes,
			Candidates: m.res.Stats.Candidates, MFSSize: len(m.res.MFS),
			Duration: m.res.Stats.Duration,
		})
	}
	return m.res, nil
}

type miner struct {
	sc       dataset.Scanner
	pc       PassCounter
	opt      Options
	minCount int64
	res      *mfi.Result

	mfcs *MFCS
	mfs  *mfsView
	// mfsAtPass records, parallel to mfs additions, nothing — supports are
	// kept in cache; allFrequent keeps every explicitly discovered frequent
	// itemset for the defensive final merge.
	allFrequent []itemset.Itemset
	cache       map[string]int64 // every support this run has determined
	itemCounts  []int64          // pass-1 array
	tri         *counting.Triangle

	abandoned bool // adaptive policy dropped the MFCS
	fellBack  bool // full Apriori fallback produced the result

	// lastMFCSCounted is the number of MFCS elements counted by the most
	// recent countPass, for the per-pass statistics.
	lastMFCSCounted int

	// tracer/workers/timed are set only when Options.Tracer is non-nil;
	// every emission site checks tracer for nil, so an untraced run takes
	// no timestamps and allocates nothing extra.
	tracer  obsv.Tracer
	workers int
	timed   *timedPassCounter
}

// emitPass reports the pass just recorded by AddPass to the tracer. The
// event mirrors the PassStats entry exactly (same pass number, candidate,
// MFCS, frequent, and MFS-found figures) and adds the phase tag, current
// |MFCS|, scan wall clock, and worker count.
func (m *miner) emitPass(phase obsv.Phase) {
	if m.tracer == nil {
		return
	}
	p := m.res.Stats.PassDetails[len(m.res.Stats.PassDetails)-1]
	mfcsSize := 0
	if !m.abandoned && m.mfcs != nil {
		mfcsSize = m.mfcs.Len()
	}
	var scan time.Duration
	if m.timed != nil {
		scan = m.timed.take()
	}
	m.tracer.PassDone(obsv.PassEvent{
		Algorithm: m.res.Stats.Algorithm,
		Pass:      p.Pass, Phase: phase,
		Candidates: p.Candidates, MFCSCandidates: p.MFCSCandidates,
		MFCSSize: mfcsSize, Frequent: p.Frequent,
		Infrequent: p.Candidates - p.Frequent, MFSFound: p.MFSFound,
		ScanDuration: scan, Workers: m.workers,
	})
}

// resolveSupport is the MFCS SupportResolver: pass-1 array, pass-2
// triangle, then the cache of everything counted so far.
func (m *miner) resolveSupport(s itemset.Itemset) (int64, bool) {
	switch len(s) {
	case 0:
		return int64(m.sc.Len()), true
	case 1:
		if m.itemCounts != nil {
			return m.itemCounts[s[0]], true
		}
	case 2:
		if m.tri != nil {
			// Count returns 0 for pairs involving an infrequent item; the
			// exact value is unknown but the pair is certainly infrequent,
			// so classification (all the resolver is used for) is sound.
			return m.tri.Count(s[0], s[1]), true
		}
	}
	c, ok := m.cache[s.Key()]
	return c, ok
}

func (m *miner) noteFrequent(x itemset.Itemset, count int64) {
	m.allFrequent = append(m.allFrequent, x)
	m.cache[x.Key()] = count
	if m.opt.KeepFrequent {
		m.res.Frequent.AddWithCount(x, count)
	}
}

// harvest moves newly classified frequent MFCS elements into the MFS and
// returns how many were new.
func (m *miner) harvest() int {
	found := 0
	for _, e := range m.mfcs.elems {
		if e.state == stateFrequent && !e.harvested {
			e.harvested = true
			m.cache[e.set.Key()] = e.count
			if m.mfs.add(e.set) {
				found++
			}
		}
	}
	return found
}

// settle records counted supports on elements and in the cache.
func (m *miner) settle(elems []*element, counts []int64) {
	for i, e := range elems {
		e.markCounted(counts[i], m.minCount)
		m.cache[e.set.Key()] = counts[i]
	}
}

// filterByMFS implements line 8 of the main algorithm: frequent itemsets
// that are subsets of MFS elements leave the bottom-up search. It reports
// whether anything was removed (the trigger for the recovery procedure).
func (m *miner) filterByMFS(frequent []itemset.Itemset) ([]itemset.Itemset, bool) {
	if m.mfs.len() == 0 {
		return frequent, false
	}
	out := frequent[:0]
	removed := false
	for _, x := range frequent {
		if m.mfs.containsSuperset(x) {
			removed = true
		} else {
			out = append(out, x)
		}
	}
	return out, removed
}

// countPass performs one database read, counting the bottom-up candidates
// (if any) and the uncounted MFCS elements together, exactly as the paper's
// line 6 prescribes. It returns the candidate counts. The read itself is
// delegated to the PassCounter seam.
func (m *miner) countPass(candidates []itemset.Itemset) []int64 {
	var uncounted []*element
	if !m.abandoned {
		uncounted = m.mfcs.Uncounted()
	}
	elems, elemBits := elemSets(uncounted)
	candCounts, elemCounts := m.pc.CountCandidates(m.opt.Engine, candidates, elems, elemBits)
	if len(uncounted) > 0 {
		m.settle(uncounted, elemCounts)
	}
	m.lastMFCSCounted = len(uncounted)
	return candCounts
}

func (m *miner) run() {
	n := m.sc.NumItems()
	cap := m.opt.MFCSCap
	budget := m.opt.CliqueNodeBudget
	if m.opt.Pure {
		cap, budget = 0, 0
	}
	m.mfcs = NewMFCS(n, m.minCount, cap, m.resolveSupport)
	m.mfs = newMFSView(n)

	// ---- Pass 1: flat item array + the initial MFCS element ----
	uncounted := m.mfcs.Uncounted()
	elems, elemBits := elemSets(uncounted)
	itemCounts, elemCounts := m.pc.CountItems(n, elems, elemBits)
	m.itemCounts = itemCounts
	m.settle(uncounted, elemCounts)
	found := m.harvest()
	var l1 itemset.Itemset
	var s1 []itemset.Itemset
	for i, c := range m.itemCounts {
		if c >= m.minCount {
			l1 = append(l1, itemset.Item(i))
			m.noteFrequent(itemset.Itemset{itemset.Item(i)}, c)
		} else {
			s1 = append(s1, itemset.Itemset{itemset.Item(i)})
		}
	}
	// MFCS-gen on the infrequent items: the top-down search drops |s1|
	// levels in this single pass (paper §3.1).
	m.mfcs.Update(s1)
	found += m.harvest()
	m.res.Stats.AddPass(mfi.PassStats{
		Candidates: n, MFCSCandidates: len(uncounted), Frequent: len(l1), MFSFound: found,
	})
	m.emitPass(obsv.PhaseBottomUp)
	if len(l1) < 2 {
		m.finish()
		return
	}
	// After pass 1 the MFCS holds a single element. If it is already
	// frequent it covers every frequent item, every itemset over them is
	// frequent, and the MFS is complete after one database read.
	if m.mfs.len() > 0 {
		singles := make([]itemset.Itemset, len(l1))
		for i, it := range l1 {
			singles[i] = itemset.Itemset{it}
		}
		if rest, _ := m.filterByMFS(singles); len(rest) == 0 {
			m.finish()
			return
		}
	}

	// ---- Pass 2: triangular pair matrix + uncounted MFCS elements ----
	uncounted = m.mfcs.Uncounted()
	elems, elemBits = elemSets(uncounted)
	tri, elemCounts := m.pc.CountPairs(n, l1, elems, elemBits)
	m.tri = tri
	m.settle(uncounted, elemCounts)
	found = m.harvest()
	var l2 []itemset.Itemset
	infreqPairs := 0
	tri.Each(func(x, y itemset.Item, count int64) {
		if count >= m.minCount {
			pair := itemset.Itemset{x, y}
			l2 = append(l2, pair)
			m.noteFrequent(pair, count)
		} else {
			infreqPairs++
		}
	})
	frequentL2 := l2 // unfiltered, for a potential pass-2 abandonment

	// MFCS-gen for pass 2: incremental splits when the infrequent-pair set
	// is small, the algebraically equivalent maximal-clique rebuild when it
	// is large (see clique.go).
	if infreqPairs > 0 {
		if infreqPairs <= m.opt.IncrementalSplitMax || m.opt.Pure {
			var s2 []itemset.Itemset
			tri.Each(func(x, y itemset.Item, count int64) {
				if count < m.minCount {
					s2 = append(s2, itemset.Itemset{x, y})
				}
			})
			m.mfcs.Update(s2)
		} else {
			m.mfcs.RebuildFromPairGraph(l1, func(a, b itemset.Item) bool {
				return tri.Count(a, b) >= m.minCount
			}, budget)
		}
	}
	if m.mfcs.Exploded() {
		l2 = m.abandon(frequentL2)
		if m.fellBack {
			return
		}
	}
	found += m.harvest()
	m.res.Stats.AddPass(mfi.PassStats{
		Candidates: tri.NumPairs(), MFCSCandidates: len(uncounted), Frequent: len(frequentL2), MFSFound: found,
	})
	m.emitPass(obsv.PhaseBottomUp)

	removedAny := false
	if !m.abandoned {
		l2, removedAny = m.filterByMFS(l2)
	}

	// ---- Passes ≥ 3: join + recovery + new prune, with MFCS counting ----
	lk := l2
	emptyView := newMFSView(n)
	for k := 2; ; k++ {
		view := m.mfs
		if m.abandoned {
			view = emptyView
		}
		ck := generateCandidates(lk, view, k, removedAny, m.opt.DisableRecovery)
		if len(ck) == 0 && (m.abandoned || len(m.mfcs.Uncounted()) == 0) {
			break
		}
		phase := obsv.PhaseBottomUp
		if len(ck) == 0 {
			phase = obsv.PhaseMFCSCount
		} else if removedAny && !m.opt.DisableRecovery {
			phase = obsv.PhaseRecovery
		}
		// §3.5's degraded mode: with no MFCS to maintain, count two levels
		// per pass while the candidate sets stay small.
		combineThreshold := m.opt.CombineThreshold
		if combineThreshold <= 0 {
			combineThreshold = 10_000
		}
		if m.abandoned && m.opt.CombineAfterAbandon && len(ck) > 0 && len(ck) <= combineThreshold {
			speculative := generateCandidates(ck, emptyView, k+1, false, true)
			all := ck
			if len(speculative) > 0 {
				all = append(append([]itemset.Itemset(nil), ck...), speculative...)
			}
			counts := m.countPass(all)
			var frequentCk, frequentSpec []itemset.Itemset
			for i, c := range ck {
				if counts[i] >= m.minCount {
					frequentCk = append(frequentCk, c)
					m.noteFrequent(c, counts[i])
				}
			}
			for i, c := range speculative {
				if counts[len(ck)+i] >= m.minCount {
					frequentSpec = append(frequentSpec, c)
					m.noteFrequent(c, counts[len(ck)+i])
				}
			}
			m.res.Stats.AddPass(mfi.PassStats{
				Candidates: len(all), Frequent: len(frequentCk) + len(frequentSpec),
			})
			m.emitPass(obsv.PhaseBottomUp)
			if len(frequentSpec) == 0 {
				// The speculative set contains every true next-level
				// candidate, so nothing survives above level k+1 either.
				break
			}
			k++ // this pass consumed two levels
			lk = frequentSpec
			removedAny = false
			continue
		}
		counts := m.countPass(ck)
		found := m.harvest()
		var frequentCk, sk []itemset.Itemset
		for i, c := range ck {
			if counts[i] >= m.minCount {
				frequentCk = append(frequentCk, c)
				m.noteFrequent(c, counts[i])
			} else {
				sk = append(sk, c)
				m.cache[c.Key()] = counts[i]
			}
		}
		if !m.abandoned {
			m.mfcs.Update(sk)
			if m.mfcs.Exploded() {
				frequentCk = m.abandon(frequentCk)
				if m.fellBack {
					return
				}
			}
		}
		found += m.harvest()
		if m.mfsOverCap() {
			m.fallbackFullApriori()
			return
		}
		m.res.Stats.AddPass(mfi.PassStats{
			Candidates: len(ck), MFCSCandidates: m.lastMFCSCounted,
			Frequent: len(frequentCk), MFSFound: found,
		})
		m.emitPass(phase)
		removedAny = false
		if !m.abandoned {
			frequentCk, removedAny = m.filterByMFS(frequentCk)
		}
		lk = frequentCk
	}

	if !m.abandoned {
		m.tailPhase()
		if m.fellBack {
			return
		}
	}
	m.finish()
}

// tailPhase classifies whatever remains of the MFCS once the bottom-up
// search has exhausted its candidates. Infrequent elements are split one
// level at a time (the pure top-down step) and the new elements counted in
// MFCS-only passes until every element is frequent. This restores the
// Definition-1 invariant the paper's pseudocode can violate (DESIGN.md §2
// issue 2) and yields the exact-termination argument: at the end every
// MFCS element is frequent and the closure covers all frequent itemsets,
// so MFCS = MFS.
func (m *miner) tailPhase() {
	for tail := 1; ; tail++ {
		for _, e := range m.mfcs.Infrequent() {
			m.mfcs.SplitSelf(e)
			if m.mfcs.Exploded() {
				m.fallbackFullApriori()
				return
			}
		}
		found := m.harvest()
		if m.mfsOverCap() {
			m.fallbackFullApriori()
			return
		}
		uncounted := m.mfcs.Uncounted()
		if len(uncounted) == 0 {
			if len(m.mfcs.Infrequent()) == 0 {
				if found > 0 && len(m.res.Stats.PassDetails) > 0 {
					m.res.Stats.PassDetails[len(m.res.Stats.PassDetails)-1].MFSFound += found
				}
				return
			}
			continue // resolver classified everything; keep splitting
		}
		if m.opt.MaxTailPasses > 0 && tail > m.opt.MaxTailPasses {
			m.fallbackFullApriori()
			return
		}
		m.countPass(nil)
		found += m.harvest()
		m.res.Stats.TailPasses++
		m.res.Stats.AddPass(mfi.PassStats{
			MFCSCandidates: m.lastMFCSCounted, MFSFound: found,
		})
		m.emitPass(obsv.PhaseTail)
	}
}

// mfsOverCap reports whether the discovered maximal-itemset count exceeds
// the adaptive MFSCap.
func (m *miner) mfsOverCap() bool {
	return !m.opt.Pure && m.opt.MFSCap > 0 && m.mfs.len() > m.opt.MFSCap
}

// abandon implements the adaptive fallback (paper §3.5): the MFCS has grown
// past its cap, so maintaining it is counterproductive. If no maximal
// frequent itemset has been discovered yet (the overwhelmingly common case
// — explosion happens on scattered data in pass 2), the bottom-up state is
// still complete and the run simply continues as Apriori; the unfiltered
// frequent set of the current pass is returned as the new L_k. Otherwise
// bottom-up completeness may already be compromised (subsets of MFS
// elements were pruned), and the run restarts as a full Apriori.
func (m *miner) abandon(frequentCk []itemset.Itemset) []itemset.Itemset {
	m.abandoned = true
	m.res.Stats.AdaptiveOff = true
	if m.mfs.len() == 0 {
		m.mfcs.Replace(nil) // release the exploded structure
		return frequentCk
	}
	m.fallbackFullApriori()
	return nil
}

// fallbackFullApriori produces a guaranteed-correct result by running the
// Apriori baseline, merging its statistics into this run's. It is the
// safety net for pathological configurations; none of the benchmark
// workloads trigger it.
func (m *miner) fallbackFullApriori() {
	m.fellBack = true
	m.res.Stats.AdaptiveOff = true
	aopt := apriori.DefaultOptions()
	aopt.Engine = m.opt.Engine
	aopt.KeepFrequent = m.opt.KeepFrequent
	ares, err := apriori.MineCount(m.sc, m.minCount, aopt)
	if err != nil {
		// Re-raise so this run's own mining boundary reports the error with
		// the merged statistics discarded, exactly as for a direct failure.
		panic(err)
	}
	for _, p := range ares.Stats.PassDetails {
		m.res.Stats.AddPass(mfi.PassStats{
			Candidates: p.Candidates, Frequent: p.Frequent, MFSFound: p.MFSFound,
		})
		// The sub-run's scan durations are not attributable pass-by-pass
		// here; events carry the merged accounting with a zero scan time.
		m.emitPass(obsv.PhaseBottomUp)
	}
	m.res.MFS = ares.MFS
	m.res.MFSSupports = ares.MFSSupports
	if m.opt.KeepFrequent {
		m.res.Frequent = ares.Frequent
	} else {
		m.res.Frequent = nil
	}
}

// finish assembles the final MFS. The MFCS termination argument makes
// m.mfs complete on its own; the explicitly discovered frequent itemsets
// are merged defensively (after an adaptive abandonment they are the sole
// source).
func (m *miner) finish() {
	all := make([]itemset.Itemset, 0, m.mfs.len()+len(m.allFrequent))
	all = append(all, m.mfs.sets...)
	all = append(all, m.allFrequent...)
	m.res.MFS = itemset.MaximalOnly(all)
	m.res.MFSSupports = make([]int64, len(m.res.MFS))
	for i, x := range m.res.MFS {
		m.res.MFSSupports[i] = m.cache[x.Key()]
	}
	if !m.opt.KeepFrequent {
		m.res.Frequent = nil
	}
}
