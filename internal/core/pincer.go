package core

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"pincer/internal/apriori"
	"pincer/internal/checkpoint"
	"pincer/internal/counting"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
	"pincer/internal/obsv"
)

// Options configures a Pincer-Search run.
type Options struct {
	// Engine selects the support-counting structure for bottom-up
	// candidates in passes ≥ 3 (default: hash tree).
	Engine counting.Engine
	// Pure disables the adaptive policy: no caps, MFCS is maintained to the
	// bitter end (paper §3.5 calls this the "pure" version; the evaluated
	// algorithm is the adaptive one).
	Pure bool
	// MFCSCap bounds |MFCS|; exceeding it makes the adaptive algorithm
	// abandon the MFCS and degrade to bottom-up search (0 = unlimited).
	MFCSCap int
	// CliqueNodeBudget bounds the pass-2 maximal-clique enumeration
	// (recursion states); exhausting it likewise abandons the MFCS.
	CliqueNodeBudget int
	// IncrementalSplitMax selects the pass-2 MFCS-gen strategy: at most
	// this many infrequent pairs are fed through the paper's incremental
	// MFCS-gen; beyond it the batch (maximal-clique) rebuild runs instead.
	// Both compute the same set — see clique.go.
	IncrementalSplitMax int
	// KeepFrequent retains every explicitly counted frequent itemset (with
	// support) in the result. Pincer-Search's point is that this set can be
	// far smaller than the full frequent set.
	KeepFrequent bool
	// DisableRecovery skips the recovery procedure (§3.4) — for ablation
	// only. The tail phase still makes the output correct; the bottom-up
	// search just loses candidates and more work shifts to the MFCS.
	DisableRecovery bool
	// MaxTailPasses bounds the MFCS-only passes after the bottom-up search
	// exhausts (0 = unlimited). If exceeded, the run falls back to Apriori
	// to guarantee a correct result.
	MaxTailPasses int
	// MFSCap bounds the number of maximal frequent itemsets the MFCS path
	// tracks; a maximum frequent set that large means the distribution is
	// hostile to Pincer-Search and the run falls back to Apriori
	// (0 = unlimited, implied by Pure).
	MFSCap int
	// CombineAfterAbandon implements the rest of §3.5's adaptive sentence:
	// once the MFCS is abandoned ("we may simply count candidates of
	// different sizes in one pass, as in [3] and [12]"), the degraded
	// bottom-up search counts two candidate levels per pass when the
	// candidate set is small (≤ CombineThreshold, default 10000).
	CombineAfterAbandon bool
	// CombineThreshold is the candidate ceiling for the combined passes.
	CombineThreshold int
	// Counter overrides the per-pass support counting (nil: one sequential
	// scan of the Scanner per pass). internal/parallel injects its
	// count-distribution implementation here; the algorithm, pass
	// accounting, and results are unchanged by the override — only how each
	// pass's counts are produced.
	Counter PassCounter
	// Tracer receives one span event per database pass plus run start and
	// finish notifications (see internal/obsv). Nil disables tracing: the
	// miner then takes no timestamps and emits nothing, so the hot path is
	// unchanged.
	Tracer obsv.Tracer
	// Algorithm overrides the name recorded in Stats and trace events
	// (default "pincer"); internal/parallel labels its runs
	// "pincer-parallel".
	Algorithm string

	// Context cancels the run: cancellation is observed at every pass
	// boundary and inside scan loops (every CancelCheckEvery transactions,
	// in each worker for parallel counters), and surfaces as a
	// *mfi.PartialResultError carrying the anytime result. Nil means
	// context.Background() — an uncancellable context adds no per-
	// transaction work.
	Context context.Context
	// Deadline, if positive, bounds the run's wall clock: the miner derives
	// a timeout context from Context, so expiry behaves exactly like
	// cancellation with reason "deadline".
	Deadline time.Duration
	// MaxTotalPasses bounds the number of database passes (0 = unlimited);
	// exceeding it aborts with reason "max-passes".
	MaxTotalPasses int
	// MaxCandidatesPerPass bounds the bottom-up candidate set of any
	// single pass ≥ 3 (0 = unlimited); a larger generated set aborts with
	// reason "max-candidates" before the pass is counted.
	MaxCandidatesPerPass int
	// MaxMemoryBytes is an approximate heap ceiling, compared against
	// runtime.MemStats.HeapAlloc at pass boundaries only (0 = unlimited);
	// exceeding it aborts with reason "memory-budget".
	MaxMemoryBytes int64
	// CancelCheckEvery is the number of transactions between context checks
	// inside a scan loop (default mfi.DefaultCancelCheckEvery).
	CancelCheckEvery int
	// Checkpointer, if set, persists the miner's state at every pass
	// barrier and is cleared when the run completes; MineResume restarts an
	// interrupted run from it. A checkpoint write failure aborts the run
	// with reason "checkpoint-failure" rather than continuing undurably.
	Checkpointer checkpoint.Checkpointer

	// SeedMFS warm-starts the run with itemsets known to be frequent in
	// THIS dataset at THIS threshold — e.g. the surviving maximal sets of an
	// incremental maintainer whose delta moved the border. Seeds join the
	// MFS view before pass 1, so the bottom-up search prunes their subsets
	// immediately (with the recovery procedure compensating, exactly as for
	// MFCS-harvested sets); the top-down MFCS path is unaffected and its
	// termination argument alone guarantees the exact MFS, so stale or
	// non-maximal seeds cost work but never correctness — but an INFREQUENT
	// seed does break correctness, because the MFS view treats every element
	// as proof of frequency. SeedSupports carries the seeds' exact support
	// counts, parallel to SeedMFS.
	SeedMFS      []itemset.Itemset
	SeedSupports []int64
}

// DefaultOptions returns the adaptive configuration evaluated in the paper.
// The caps embody §3.5's adaptive policy: when the MFCS (or the MFS it
// discovers) grows so large that maintaining it is counterproductive, the
// run degrades to bottom-up search.
func DefaultOptions() Options {
	return Options{
		Engine:              counting.EngineHashTree,
		MFCSCap:             10_000,
		CliqueNodeBudget:    1_000_000,
		IncrementalSplitMax: 256,
		KeepFrequent:        true,
		MFSCap:              50_000,
		CombineAfterAbandon: true,
		CombineThreshold:    10_000,
	}
}

// Mine runs Pincer-Search at a fractional minimum support. A mid-pass
// failure of the database read (e.g. a corrupt or vanished basket file
// behind a dataset.FileScanner) is returned as an error; an in-memory scan
// cannot fail.
func Mine(sc dataset.Scanner, minSupport float64, opt Options) (*mfi.Result, error) {
	return MineCount(sc, dataset.MinCountFor(sc.Len(), minSupport), opt)
}

// MineCount runs Pincer-Search with an absolute support-count threshold and
// returns the maximum frequent set. It is a mining boundary: I/O and parse
// panics raised mid-pass, counter-merge mismatches, and captured worker
// panics from a parallel PassCounter all surface as the returned error
// (see mfi.RecoverMiningError), and cancellation or a tripped resource
// budget surfaces as a *mfi.PartialResultError carrying the anytime result.
func MineCount(sc dataset.Scanner, minCount int64, opt Options) (res *mfi.Result, err error) {
	defer mfi.RecoverMiningError(&err)
	m := newMiner(sc, minCount, opt)
	return m.mine()
}

// runStage names the phase of the staged run loop a checkpoint re-enters.
type runStage uint8

const (
	stageFresh     runStage = iota // nothing counted yet
	stagePass2     runStage = iota // pass 1 done, pair pass next
	stageLevelwise                 // level-wise loop, position in miner.k
	stageTail                      // MFCS-only tail passes
)

// stageName maps the stage to its persisted checkpoint string.
func (s runStage) stageName() string {
	switch s {
	case stagePass2:
		return "pass2"
	case stageLevelwise:
		return "levelwise"
	case stageTail:
		return "tail"
	}
	return "fresh"
}

// stageFromName is the inverse of stageName for checkpoint loading.
func stageFromName(name string) (runStage, bool) {
	switch name {
	case "pass2":
		return stagePass2, true
	case "levelwise":
		return stageLevelwise, true
	case "tail":
		return stageTail, true
	}
	return stageFresh, false
}

type miner struct {
	sc       dataset.Scanner
	pc       PassCounter
	opt      Options
	minCount int64
	res      *mfi.Result

	mfcs *MFCS
	mfs  *mfsView
	// mfsAtPass records, parallel to mfs additions, nothing — supports are
	// kept in cache; allFrequent keeps every explicitly discovered frequent
	// itemset for the defensive final merge.
	allFrequent []itemset.Itemset
	cache       map[string]int64 // every support this run has determined
	itemCounts  []int64          // pass-1 array
	tri         *counting.Triangle

	abandoned bool // adaptive policy dropped the MFCS
	fellBack  bool // full Apriori fallback produced the result
	seeded    bool // Options.SeedMFS pre-populated the MFS view

	// Staged-loop state: everything the run loop carries across a pass
	// barrier lives on the miner (not in locals) so checkpoints can
	// persist it and MineResume can re-enter run() at the saved stage.
	stage      runStage
	l1         itemset.Itemset   // frequent items (pass 1)
	lk         []itemset.Itemset // current frequent level L_k
	k          int               // level the next iteration generates from
	removedAny bool              // L_k was filtered by the MFS
	tailNum    int               // 1-based tail-pass number

	// ctx is the effective run context (Options.Context plus Deadline), or
	// nil when the run is uncancellable so no checks are emitted; cancel
	// releases the deadline timer. cp persists pass-barrier checkpoints.
	ctx    context.Context
	cancel context.CancelFunc
	cp     checkpoint.Checkpointer
	start  time.Time

	// lastMFCSCounted is the number of MFCS elements counted by the most
	// recent countPass, for the per-pass statistics.
	lastMFCSCounted int

	// tracer/workers/timed are set only when Options.Tracer is non-nil;
	// every emission site checks tracer for nil, so an untraced run takes
	// no timestamps and allocates nothing extra.
	tracer  obsv.Tracer
	workers int
	timed   *timedPassCounter
}

// newMiner assembles a fresh miner: effective context, pass counter (bound
// to the context when it can be cancelled), MFCS/MFS structures, and the
// staged-loop state positioned at the start.
func newMiner(sc dataset.Scanner, minCount int64, opt Options) *miner {
	ctx := opt.Context
	var cancel context.CancelFunc
	if opt.Deadline > 0 {
		if ctx == nil {
			ctx = context.Background()
		}
		ctx, cancel = context.WithTimeout(ctx, opt.Deadline)
	}
	if ctx != nil && ctx.Done() == nil {
		ctx = nil // uncancellable: skip every check
	}
	pc := opt.Counter
	if pc == nil {
		pc = &seqPassCounter{sc: sc}
	}
	if ctx != nil {
		if cb, ok := pc.(ContextBinder); ok {
			cb.BindContext(ctx, opt.CancelCheckEvery)
		}
	}
	m := &miner{
		sc:       sc,
		pc:       pc,
		opt:      opt,
		minCount: minCount,
		cache:    make(map[string]int64),
		ctx:      ctx,
		cancel:   cancel,
		cp:       opt.Checkpointer,
		stage:    stageFresh,
		k:        2,
		tailNum:  1,
		res: &mfi.Result{
			MinCount:        minCount,
			NumTransactions: sc.Len(),
			Frequent:        itemset.NewSet(0),
		},
	}
	m.res.Stats.Algorithm = "pincer"
	if opt.Algorithm != "" {
		m.res.Stats.Algorithm = opt.Algorithm
	}
	n := sc.NumItems()
	mfcsCap := opt.MFCSCap
	if opt.Pure {
		mfcsCap = 0
	}
	m.mfcs = NewMFCS(n, minCount, mfcsCap, m.resolveSupport)
	m.mfs = newMFSView(n)
	if len(opt.SeedMFS) > 0 {
		m.seeded = true
		for i, s := range opt.SeedMFS {
			if m.mfs.add(s) && i < len(opt.SeedSupports) {
				m.cache[s.Key()] = opt.SeedSupports[i]
			}
		}
	}
	if opt.Tracer != nil {
		// Thread the tracer through the PassCounter seam: the timing
		// decorator records each pass's scan wall clock for the events.
		m.tracer = opt.Tracer
		m.workers = countingWorkers(pc)
		m.timed = &timedPassCounter{pc: pc}
		m.pc = m.timed
	}
	return m
}

// mine drives the (possibly resumed) staged run to completion, converting
// the Abort sentinel into a *mfi.PartialResultError on the way out.
func (m *miner) mine() (res *mfi.Result, err error) {
	if m.cancel != nil {
		defer m.cancel()
	}
	defer m.recoverAbort(&err)
	if m.tracer != nil {
		m.tracer.RunStart(obsv.RunInfo{
			Algorithm: m.res.Stats.Algorithm, Workers: m.workers,
			MinCount: m.minCount, NumTransactions: m.sc.Len(),
		})
	}
	m.start = time.Now()
	m.run()
	m.res.Stats.Duration = time.Since(m.start)
	if m.tracer != nil {
		m.tracer.RunDone(obsv.RunSummary{
			Algorithm: m.res.Stats.Algorithm, Passes: m.res.Stats.Passes,
			Candidates: m.res.Stats.Candidates, MFSSize: len(m.res.MFS),
			Duration: m.res.Stats.Duration,
		})
	}
	if m.cp != nil {
		// The run is complete; a lingering checkpoint would make a later
		// MineResume replay a finished mine.
		if cerr := m.cp.Clear(); cerr != nil {
			return nil, cerr
		}
	}
	return m.res, nil
}

// emitPass reports the pass just recorded by AddPass to the tracer. The
// event mirrors the PassStats entry exactly (same pass number, candidate,
// MFCS, frequent, and MFS-found figures) and adds the phase tag, current
// |MFCS|, scan wall clock, and worker count.
func (m *miner) emitPass(phase obsv.Phase) {
	if m.tracer == nil {
		return
	}
	p := m.res.Stats.PassDetails[len(m.res.Stats.PassDetails)-1]
	mfcsSize := 0
	if !m.abandoned && m.mfcs != nil {
		mfcsSize = m.mfcs.Len()
	}
	var scan time.Duration
	if m.timed != nil {
		scan = m.timed.take()
	}
	ev := obsv.PassEvent{
		Algorithm: m.res.Stats.Algorithm,
		Pass:      p.Pass, Phase: phase,
		Candidates: p.Candidates, MFCSCandidates: p.MFCSCandidates,
		MFCSSize: mfcsSize, Frequent: p.Frequent,
		Infrequent: p.Candidates - p.Frequent, MFSFound: p.MFSFound,
		ScanDuration: scan, Workers: m.workers,
	}
	if ir, ok := m.pc.(IntersectionReporter); ok {
		if st := ir.TakeIntersections(); st.Total > 0 {
			ev.Intersections = st.Total
			ev.Representation = st.Label()
		}
	}
	m.tracer.PassDone(ev)
}

// resolveSupport is the MFCS SupportResolver: pass-1 array, pass-2
// triangle, then the cache of everything counted so far.
func (m *miner) resolveSupport(s itemset.Itemset) (int64, bool) {
	switch len(s) {
	case 0:
		return int64(m.sc.Len()), true
	case 1:
		if m.itemCounts != nil {
			return m.itemCounts[s[0]], true
		}
	case 2:
		if m.tri != nil {
			// Count returns 0 for pairs involving an infrequent item; the
			// exact value is unknown but the pair is certainly infrequent,
			// so classification (all the resolver is used for) is sound.
			return m.tri.Count(s[0], s[1]), true
		}
	}
	c, ok := m.cache[s.Key()]
	return c, ok
}

func (m *miner) noteFrequent(x itemset.Itemset, count int64) {
	m.allFrequent = append(m.allFrequent, x)
	m.cache[x.Key()] = count
	if m.opt.KeepFrequent {
		m.res.Frequent.AddWithCount(x, count)
	}
}

// harvest moves newly classified frequent MFCS elements into the MFS and
// returns how many were new.
func (m *miner) harvest() int {
	found := 0
	for _, e := range m.mfcs.elems {
		if e.state == stateFrequent && !e.harvested {
			e.harvested = true
			m.cache[e.set.Key()] = e.count
			if m.mfs.add(e.set) {
				found++
			}
		}
	}
	return found
}

// settle records counted supports on elements and in the cache.
func (m *miner) settle(elems []*element, counts []int64) {
	for i, e := range elems {
		e.markCounted(counts[i], m.minCount)
		m.cache[e.set.Key()] = counts[i]
	}
}

// filterByMFS implements line 8 of the main algorithm: frequent itemsets
// that are subsets of MFS elements leave the bottom-up search. It reports
// whether anything was removed (the trigger for the recovery procedure).
func (m *miner) filterByMFS(frequent []itemset.Itemset) ([]itemset.Itemset, bool) {
	if m.mfs.len() == 0 {
		return frequent, false
	}
	out := frequent[:0]
	removed := false
	for _, x := range frequent {
		if m.mfs.containsSuperset(x) {
			removed = true
		} else {
			out = append(out, x)
		}
	}
	return out, removed
}

// countPass performs one database read, counting the bottom-up candidates
// (if any) and the uncounted MFCS elements together, exactly as the paper's
// line 6 prescribes. It returns the candidate counts. The read itself is
// delegated to the PassCounter seam.
func (m *miner) countPass(candidates []itemset.Itemset) []int64 {
	var uncounted []*element
	if !m.abandoned {
		uncounted = m.mfcs.Uncounted()
	}
	elems, elemBits := elemSets(uncounted)
	candCounts, elemCounts := m.pc.CountCandidates(m.opt.Engine, candidates, elems, elemBits)
	if len(uncounted) > 0 {
		m.settle(uncounted, elemCounts)
	}
	m.lastMFCSCounted = len(uncounted)
	return candCounts
}

// run drives the stages in order, entering at m.stage (stageFresh for a new
// run, later stages when MineResume restored a checkpoint) and writing a
// checkpoint at every stage transition and pass barrier.
func (m *miner) run() {
	if m.stage == stageFresh {
		if m.pass1() {
			m.finish()
			return
		}
		m.stage = stagePass2
		m.checkpointNow()
	}
	if m.stage == stagePass2 {
		m.pass2()
		if m.fellBack {
			return
		}
		m.stage = stageLevelwise
		m.checkpointNow()
	}
	if m.stage == stageLevelwise {
		m.levelwise()
		if m.fellBack {
			return
		}
		if m.abandoned {
			m.finish()
			return
		}
		m.stage = stageTail
		m.checkpointNow()
	}
	m.tailPhase()
	if m.fellBack {
		return
	}
	m.finish()
}

// pass1 counts every item plus the initial MFCS element and reports whether
// the run is already complete (fewer than two frequent items, or the MFS
// covers every frequent item after one read). The early exits happen before
// the first checkpoint, so a resumed run never skips them.
func (m *miner) pass1() (done bool) {
	n := m.sc.NumItems()
	m.beforePass(0)

	// ---- Pass 1: flat item array + the initial MFCS element ----
	uncounted := m.mfcs.Uncounted()
	elems, elemBits := elemSets(uncounted)
	itemCounts, elemCounts := m.pc.CountItems(n, elems, elemBits)
	m.itemCounts = itemCounts
	m.settle(uncounted, elemCounts)
	found := m.harvest()
	var s1 []itemset.Itemset
	for i, c := range m.itemCounts {
		if c >= m.minCount {
			m.l1 = append(m.l1, itemset.Item(i))
			m.noteFrequent(itemset.Itemset{itemset.Item(i)}, c)
		} else {
			s1 = append(s1, itemset.Itemset{itemset.Item(i)})
		}
	}
	// MFCS-gen on the infrequent items: the top-down search drops |s1|
	// levels in this single pass (paper §3.1).
	m.mfcs.Update(s1)
	found += m.harvest()
	m.res.Stats.AddPass(mfi.PassStats{
		Candidates: n, MFCSCandidates: len(uncounted), Frequent: len(m.l1), MFSFound: found,
	})
	m.emitPass(obsv.PhaseBottomUp)
	if len(m.l1) < 2 {
		return true
	}
	// After pass 1 the MFCS holds a single element. If it is already
	// frequent it covers every frequent item, every itemset over them is
	// frequent, and the MFS is complete after one database read. A seeded
	// view disables the exit: seeds can cover every frequent item without
	// being the complete MFS (two seeds may miss a maximal set straddling
	// them), so the full pincer loop must still run.
	if m.mfs.len() > 0 && !m.seeded {
		singles := make([]itemset.Itemset, len(m.l1))
		for i, it := range m.l1 {
			singles[i] = itemset.Itemset{it}
		}
		if rest, _ := m.filterByMFS(singles); len(rest) == 0 {
			return true
		}
	}
	return false
}

// pass2 counts the triangular pair matrix plus uncounted MFCS elements and
// leaves the level-wise loop positioned at k=2 with L_2 in m.lk.
func (m *miner) pass2() {
	n := m.sc.NumItems()
	budget := m.opt.CliqueNodeBudget
	if m.opt.Pure {
		budget = 0
	}
	m.beforePass(0)

	// ---- Pass 2: triangular pair matrix + uncounted MFCS elements ----
	uncounted := m.mfcs.Uncounted()
	elems, elemBits := elemSets(uncounted)
	tri, elemCounts := m.pc.CountPairs(n, m.l1, elems, elemBits)
	m.tri = tri
	m.settle(uncounted, elemCounts)
	found := m.harvest()
	var l2 []itemset.Itemset
	infreqPairs := 0
	tri.Each(func(x, y itemset.Item, count int64) {
		if count >= m.minCount {
			pair := itemset.Itemset{x, y}
			l2 = append(l2, pair)
			m.noteFrequent(pair, count)
		} else {
			infreqPairs++
		}
	})
	frequentL2 := l2 // unfiltered, for a potential pass-2 abandonment

	// MFCS-gen for pass 2: incremental splits when the infrequent-pair set
	// is small, the algebraically equivalent maximal-clique rebuild when it
	// is large (see clique.go).
	if infreqPairs > 0 {
		if infreqPairs <= m.opt.IncrementalSplitMax || m.opt.Pure {
			var s2 []itemset.Itemset
			tri.Each(func(x, y itemset.Item, count int64) {
				if count < m.minCount {
					s2 = append(s2, itemset.Itemset{x, y})
				}
			})
			m.mfcs.Update(s2)
		} else {
			m.mfcs.RebuildFromPairGraph(m.l1, func(a, b itemset.Item) bool {
				return tri.Count(a, b) >= m.minCount
			}, budget)
		}
	}
	if m.mfcs.Exploded() {
		l2 = m.abandon(frequentL2)
		if m.fellBack {
			return
		}
	}
	found += m.harvest()
	m.res.Stats.AddPass(mfi.PassStats{
		Candidates: tri.NumPairs(), MFCSCandidates: len(uncounted), Frequent: len(frequentL2), MFSFound: found,
	})
	m.emitPass(obsv.PhaseBottomUp)

	m.removedAny = false
	if !m.abandoned {
		l2, m.removedAny = m.filterByMFS(l2)
	}
	m.lk = l2
	m.k = 2
}

// levelwise runs the passes ≥ 3 — join + recovery + new prune, with MFCS
// counting — checkpointing after every pass barrier. It returns when the
// bottom-up search exhausts (the tail phase follows) or the run abandoned
// the MFCS and the degraded search finished.
func (m *miner) levelwise() {
	n := m.sc.NumItems()
	emptyView := newMFSView(n)
	for {
		k := m.k
		view := m.mfs
		if m.abandoned {
			view = emptyView
		}
		ck := generateCandidates(m.lk, view, k, m.removedAny, m.opt.DisableRecovery)
		if len(ck) == 0 && (m.abandoned || len(m.mfcs.Uncounted()) == 0) {
			return
		}
		phase := obsv.PhaseBottomUp
		if len(ck) == 0 {
			phase = obsv.PhaseMFCSCount
		} else if m.removedAny && !m.opt.DisableRecovery {
			phase = obsv.PhaseRecovery
		}
		// §3.5's degraded mode: with no MFCS to maintain, count two levels
		// per pass while the candidate sets stay small.
		combineThreshold := m.opt.CombineThreshold
		if combineThreshold <= 0 {
			combineThreshold = 10_000
		}
		if m.abandoned && m.opt.CombineAfterAbandon && len(ck) > 0 && len(ck) <= combineThreshold {
			speculative := generateCandidates(ck, emptyView, k+1, false, true)
			all := ck
			if len(speculative) > 0 {
				all = append(append([]itemset.Itemset(nil), ck...), speculative...)
			}
			m.beforePass(len(all))
			counts := m.countPass(all)
			var frequentCk, frequentSpec []itemset.Itemset
			for i, c := range ck {
				if counts[i] >= m.minCount {
					frequentCk = append(frequentCk, c)
					m.noteFrequent(c, counts[i])
				}
			}
			for i, c := range speculative {
				if counts[len(ck)+i] >= m.minCount {
					frequentSpec = append(frequentSpec, c)
					m.noteFrequent(c, counts[len(ck)+i])
				}
			}
			m.res.Stats.AddPass(mfi.PassStats{
				Candidates: len(all), Frequent: len(frequentCk) + len(frequentSpec),
			})
			m.emitPass(obsv.PhaseBottomUp)
			if len(frequentSpec) == 0 {
				// The speculative set contains every true next-level
				// candidate, so nothing survives above level k+1 either.
				return
			}
			m.k = k + 2 // this pass consumed two levels
			m.lk = frequentSpec
			m.removedAny = false
			m.checkpointNow()
			continue
		}
		m.beforePass(len(ck))
		counts := m.countPass(ck)
		found := m.harvest()
		var frequentCk, sk []itemset.Itemset
		for i, c := range ck {
			if counts[i] >= m.minCount {
				frequentCk = append(frequentCk, c)
				m.noteFrequent(c, counts[i])
			} else {
				sk = append(sk, c)
				m.cache[c.Key()] = counts[i]
			}
		}
		if !m.abandoned {
			m.mfcs.Update(sk)
			if m.mfcs.Exploded() {
				frequentCk = m.abandon(frequentCk)
				if m.fellBack {
					return
				}
			}
		}
		found += m.harvest()
		if m.mfsOverCap() {
			m.fallbackFullApriori()
			return
		}
		m.res.Stats.AddPass(mfi.PassStats{
			Candidates: len(ck), MFCSCandidates: m.lastMFCSCounted,
			Frequent: len(frequentCk), MFSFound: found,
		})
		m.emitPass(phase)
		m.removedAny = false
		if !m.abandoned {
			frequentCk, m.removedAny = m.filterByMFS(frequentCk)
		}
		m.lk = frequentCk
		m.k = k + 1
		m.checkpointNow()
	}
}

// tailPhase classifies whatever remains of the MFCS once the bottom-up
// search has exhausted its candidates. Infrequent elements are split one
// level at a time (the pure top-down step) and the new elements counted in
// MFCS-only passes until every element is frequent. This restores the
// Definition-1 invariant the paper's pseudocode can violate (DESIGN.md §2
// issue 2) and yields the exact-termination argument: at the end every
// MFCS element is frequent and the closure covers all frequent itemsets,
// so MFCS = MFS.
func (m *miner) tailPhase() {
	for tail := m.tailNum; ; tail++ {
		for _, e := range m.mfcs.Infrequent() {
			m.mfcs.SplitSelf(e)
			if m.mfcs.Exploded() {
				m.fallbackFullApriori()
				return
			}
		}
		found := m.harvest()
		if m.mfsOverCap() {
			m.fallbackFullApriori()
			return
		}
		uncounted := m.mfcs.Uncounted()
		if len(uncounted) == 0 {
			if len(m.mfcs.Infrequent()) == 0 {
				if found > 0 && len(m.res.Stats.PassDetails) > 0 {
					m.res.Stats.PassDetails[len(m.res.Stats.PassDetails)-1].MFSFound += found
				}
				return
			}
			continue // resolver classified everything; keep splitting
		}
		if m.opt.MaxTailPasses > 0 && tail > m.opt.MaxTailPasses {
			m.fallbackFullApriori()
			return
		}
		m.beforePass(0)
		m.countPass(nil)
		found += m.harvest()
		m.res.Stats.TailPasses++
		m.res.Stats.AddPass(mfi.PassStats{
			MFCSCandidates: m.lastMFCSCounted, MFSFound: found,
		})
		m.emitPass(obsv.PhaseTail)
		m.tailNum = tail + 1
		m.checkpointNow()
	}
}

// beforePass is the pass-boundary gate: context cancellation, the total-
// pass budget, the per-pass candidate budget (passes ≥ 3 only — passes 1
// and 2 count the fixed item/pair universe), and the approximate memory
// ceiling. Any trip raises the Abort sentinel, which mine() converts into
// a *mfi.PartialResultError carrying the anytime result.
func (m *miner) beforePass(candidates int) {
	mfi.CheckContext(m.ctx)
	if b := m.opt.MaxTotalPasses; b > 0 && m.res.Stats.Passes >= b {
		panic(&mfi.Abort{Reason: mfi.ReasonMaxPasses,
			Cause: fmt.Errorf("pass budget exhausted: %d passes completed", m.res.Stats.Passes)})
	}
	if b := m.opt.MaxCandidatesPerPass; b > 0 && candidates > b {
		panic(&mfi.Abort{Reason: mfi.ReasonMaxCandidates,
			Cause: fmt.Errorf("pass would count %d candidates, budget is %d", candidates, b)})
	}
	if b := m.opt.MaxMemoryBytes; b > 0 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > uint64(b) {
			panic(&mfi.Abort{Reason: mfi.ReasonMemory,
				Cause: fmt.Errorf("heap %d bytes exceeds ceiling %d", ms.HeapAlloc, b)})
		}
	}
}

// recoverAbort converts the Abort sentinel (raised directly by a boundary
// or budget check, or captured inside a counting worker and re-raised
// wrapped in a WorkerPanic) into a *mfi.PartialResultError assembled from
// the miner's best-so-far state; any other panic continues to the outer
// mfi.RecoverMiningError.
func (m *miner) recoverAbort(errp *error) {
	r := recover()
	if r == nil {
		return
	}
	ab := mfi.AbortFrom(r)
	if ab == nil {
		panic(r)
	}
	m.res.Stats.Duration = time.Since(m.start)
	m.finish()
	if m.tracer != nil {
		m.tracer.RunDone(obsv.RunSummary{
			Algorithm: m.res.Stats.Algorithm, Passes: m.res.Stats.Passes,
			Candidates: m.res.Stats.Candidates, MFSSize: len(m.res.MFS),
			Duration: m.res.Stats.Duration,
			Aborted:  true, AbortReason: ab.Reason,
		})
	}
	*errp = &mfi.PartialResultError{
		Result: m.res,
		MFCS:   m.upperBound(),
		Pass:   m.res.Stats.Passes,
		Reason: ab.Reason,
		Cause:  ab.Cause,
	}
}

// upperBound returns the current anytime upper bound on the MFS: the MFCS
// elements (whose closure covers every actually-frequent itemset throughout
// the run — infrequent elements linger until split, so their still-viable
// subsets are covered too) merged with the harvested MFS. Nil once the
// adaptive policy abandoned the MFCS: no bound is maintained then.
func (m *miner) upperBound() []itemset.Itemset {
	if m.abandoned || m.mfcs == nil {
		return nil
	}
	sets := make([]itemset.Itemset, 0, m.mfcs.Len()+m.mfs.len())
	sets = append(sets, m.mfcs.Elements()...)
	sets = append(sets, m.mfs.sets...)
	return itemset.MaximalOnly(sets)
}

// checkpointNow persists the miner's state through the configured
// Checkpointer (a no-op without one). A failed write aborts the run: a
// caller that asked for durability should not silently lose it.
func (m *miner) checkpointNow() {
	if m.cp == nil {
		return
	}
	start := time.Now()
	st := m.snapshot()
	if err := m.cp.Save(st); err != nil {
		panic(&mfi.Abort{Reason: mfi.ReasonCheckpoint, Cause: err})
	}
	obsv.EmitCheckpoint(m.tracer, obsv.CheckpointEvent{
		Algorithm: m.res.Stats.Algorithm, Pass: m.res.Stats.Passes,
		Stage: m.stage.stageName(), Duration: time.Since(start),
	})
}

// snapshot captures everything run() carries across the current pass
// barrier. The pass-1 item array and pass-2 pair triangle are included
// because the support resolver answers from them for the rest of the run;
// without them a resumed run would recount resolved MFCS elements and its
// per-pass statistics would diverge from the uninterrupted run's.
func (m *miner) snapshot() *checkpoint.State {
	st := &checkpoint.State{
		Version:         checkpoint.Version,
		Algorithm:       m.res.Stats.Algorithm,
		MinCount:        m.minCount,
		NumTransactions: int64(m.sc.Len()),
		NumItems:        m.sc.NumItems(),
		Stage:           m.stage.stageName(),
		K:               m.k,
		Tail:            m.tailNum,
		Lk:              m.lk,
		RemovedAny:      m.removedAny,
		Abandoned:       m.abandoned,
		MFS:             m.mfs.sets,
		AllFrequent:     m.allFrequent,
		Cache:           m.cache,
		ItemCounts:      m.itemCounts,
		Stats:           m.res.Stats,
	}
	if m.tri != nil {
		universe, live, counts := m.tri.Snapshot()
		st.Pairs = &checkpoint.TriangleState{Universe: universe, Live: live, Counts: counts}
	}
	if !m.abandoned {
		st.MFCS = make([]checkpoint.MFCSElement, len(m.mfcs.elems))
		for i, e := range m.mfcs.elems {
			st.MFCS[i] = checkpoint.MFCSElement{
				Set: e.set, State: uint8(e.state), Count: e.count, Harvested: e.harvested,
			}
		}
	}
	return st
}

// mfsOverCap reports whether the discovered maximal-itemset count exceeds
// the adaptive MFSCap.
func (m *miner) mfsOverCap() bool {
	return !m.opt.Pure && m.opt.MFSCap > 0 && m.mfs.len() > m.opt.MFSCap
}

// abandon implements the adaptive fallback (paper §3.5): the MFCS has grown
// past its cap, so maintaining it is counterproductive. If no maximal
// frequent itemset has been discovered yet (the overwhelmingly common case
// — explosion happens on scattered data in pass 2), the bottom-up state is
// still complete and the run simply continues as Apriori; the unfiltered
// frequent set of the current pass is returned as the new L_k. Otherwise
// bottom-up completeness may already be compromised (subsets of MFS
// elements were pruned), and the run restarts as a full Apriori.
func (m *miner) abandon(frequentCk []itemset.Itemset) []itemset.Itemset {
	m.abandoned = true
	m.res.Stats.AdaptiveOff = true
	if m.mfs.len() == 0 {
		m.mfcs.Replace(nil) // release the exploded structure
		return frequentCk
	}
	m.fallbackFullApriori()
	return nil
}

// fallbackFullApriori produces a guaranteed-correct result by running the
// Apriori baseline, merging its statistics into this run's. It is the
// safety net for pathological configurations; none of the benchmark
// workloads trigger it. The sub-run inherits this run's context so
// cancellation still lands, but never the Checkpointer: the fallback
// replays deterministically from the last Pincer checkpoint on resume.
func (m *miner) fallbackFullApriori() {
	m.fellBack = true
	m.res.Stats.AdaptiveOff = true
	aopt := apriori.DefaultOptions()
	aopt.Engine = m.opt.Engine
	aopt.KeepFrequent = m.opt.KeepFrequent
	aopt.Context = m.ctx
	aopt.CancelCheckEvery = m.opt.CancelCheckEvery
	ares, err := apriori.MineCount(m.sc, m.minCount, aopt)
	if err != nil {
		if pe, ok := err.(*mfi.PartialResultError); ok {
			// The sub-run was cancelled; re-raise as an Abort so this run's
			// own partial (the state before the fallback) is reported.
			panic(&mfi.Abort{Reason: pe.Reason, Cause: pe.Cause})
		}
		// Re-raise so this run's own mining boundary reports the error with
		// the merged statistics discarded, exactly as for a direct failure.
		panic(err)
	}
	for _, p := range ares.Stats.PassDetails {
		m.res.Stats.AddPass(mfi.PassStats{
			Candidates: p.Candidates, Frequent: p.Frequent, MFSFound: p.MFSFound,
		})
		// The sub-run's scan durations are not attributable pass-by-pass
		// here; events carry the merged accounting with a zero scan time.
		m.emitPass(obsv.PhaseBottomUp)
	}
	m.res.MFS = ares.MFS
	m.res.MFSSupports = ares.MFSSupports
	if m.opt.KeepFrequent {
		m.res.Frequent = ares.Frequent
	} else {
		m.res.Frequent = nil
	}
}

// finish assembles the final MFS. The MFCS termination argument makes
// m.mfs complete on its own; the explicitly discovered frequent itemsets
// are merged defensively (after an adaptive abandonment they are the sole
// source).
func (m *miner) finish() {
	all := make([]itemset.Itemset, 0, m.mfs.len()+len(m.allFrequent))
	all = append(all, m.mfs.sets...)
	all = append(all, m.allFrequent...)
	m.res.MFS = itemset.MaximalOnly(all)
	m.res.MFSSupports = make([]int64, len(m.res.MFS))
	for i, x := range m.res.MFS {
		m.res.MFSSupports[i] = m.cache[x.Key()]
	}
	if !m.opt.KeepFrequent {
		m.res.Frequent = nil
	}
}
