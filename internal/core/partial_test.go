package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"pincer/internal/checkpoint"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
	"pincer/internal/quest"
)

// partialWorkloads are the quest configurations the anytime property is
// checked on — three distinct shapes: scattered short patterns, longer
// correlated patterns, and a concentrated distribution.
var partialWorkloads = []struct {
	name       string
	params     quest.Params
	minSupport float64
}{
	{"T8.I4.scattered", quest.Params{
		NumTransactions: 600, AvgTxLen: 8, AvgPatternLen: 4,
		NumPatterns: 25, NumItems: 40, Seed: 11,
	}, 0.04},
	{"T12.I6.long", quest.Params{
		NumTransactions: 500, AvgTxLen: 12, AvgPatternLen: 6,
		NumPatterns: 12, NumItems: 30, Seed: 5,
	}, 0.06},
	{"T10.I4.concentrated", quest.Params{
		NumTransactions: 700, AvgTxLen: 10, AvgPatternLen: 4,
		NumPatterns: 6, NumItems: 25, Seed: 3,
	}, 0.08},
}

// TestPartialResultBounds is the anytime-property test of ISSUE 3: when a
// run is cut off after pass k by the MaxTotalPasses budget, the partial MFS
// must be a lower bound of the full MFS (every partial maximal set lies
// below some true one) and the reported MFCS must be an upper bound (every
// true maximal set lies below some reported element).
func TestPartialResultBounds(t *testing.T) {
	for _, w := range partialWorkloads {
		w := w
		t.Run(w.name, func(t *testing.T) {
			d := quest.Generate(w.params)
			sc := dataset.NewScanner(d)
			minCount := dataset.MinCountFor(d.Len(), w.minSupport)
			full, err := MineCount(sc, minCount, DefaultOptions())
			if err != nil {
				t.Fatalf("full run: %v", err)
			}
			if full.Stats.Passes < 3 {
				t.Fatalf("workload finished in %d passes; pick a harder one", full.Stats.Passes)
			}
			for k := 1; k < full.Stats.Passes; k++ {
				opt := DefaultOptions()
				opt.MaxTotalPasses = k
				_, err := MineCount(dataset.NewScanner(d), minCount, opt)
				var pe *mfi.PartialResultError
				if !errors.As(err, &pe) {
					t.Fatalf("MaxTotalPasses=%d: got %v, want *mfi.PartialResultError", k, err)
				}
				if pe.Reason != mfi.ReasonMaxPasses {
					t.Errorf("MaxTotalPasses=%d: reason %q, want %q", k, pe.Reason, mfi.ReasonMaxPasses)
				}
				if pe.Pass != k {
					t.Errorf("MaxTotalPasses=%d: aborted at pass %d", k, pe.Pass)
				}
				checkBounds(t, k, pe, full.MFS)
			}
		})
	}
}

// checkBounds asserts partial.MFS ⊑ fullMFS ⊑ partial.MFCS (⊑ meaning
// every element of the left side is a subset of some element of the right).
func checkBounds(t *testing.T, k int, pe *mfi.PartialResultError, fullMFS []itemset.Itemset) {
	t.Helper()
	for _, m := range pe.Result.MFS {
		if !coveredBy(m, fullMFS) {
			t.Errorf("pass %d: partial MFS element %v is not below any true maximal set", k, m)
		}
	}
	for _, full := range fullMFS {
		if !coveredBy(full, pe.MFCS) {
			t.Errorf("pass %d: true maximal set %v is not covered by the MFCS bound %v", k, full, pe.MFCS)
		}
	}
}

func coveredBy(x itemset.Itemset, sets []itemset.Itemset) bool {
	for _, s := range sets {
		if x.IsSubsetOf(s) {
			return true
		}
	}
	return false
}

// TestCancellationLatency bounds how fast a cancelled mine returns on the
// paper-sized T20.I10.D10K workload: well under one full pass, let alone
// the full run. The context is cancelled while the first pass is scanning;
// with in-scan checks the miner must return without finishing the pass.
func TestCancellationLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping latency measurement in -short mode")
	}
	d := quest.Generate(quest.Params{
		NumTransactions: 10_000, AvgTxLen: 20, AvgPatternLen: 10,
		NumPatterns: 50, NumItems: 200, Seed: 1,
	})
	minCount := dataset.MinCountFor(d.Len(), 0.06)

	fullStart := time.Now()
	full, err := MineCount(dataset.NewScanner(d), minCount, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	fullDur := time.Since(fullStart)
	perPass := fullDur / time.Duration(full.Stats.Passes)

	ctx, cancel := context.WithCancel(context.Background())
	opt := DefaultOptions()
	opt.Context = ctx
	opt.CancelCheckEvery = 256
	var cancelledAt time.Time
	fired := 0
	sc := hookScanner{Scanner: dataset.NewScanner(d), every: 1000, hook: func() {
		if fired == 0 {
			cancelledAt = time.Now()
			cancel()
		}
		fired++
	}}
	_, err = MineCount(sc, minCount, opt)
	latency := time.Since(cancelledAt)
	var pe *mfi.PartialResultError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *mfi.PartialResultError", err)
	}
	if pe.Reason != mfi.ReasonCancelled {
		t.Errorf("reason %q, want %q", pe.Reason, mfi.ReasonCancelled)
	}
	// Generous bound: cancellation must beat half a pass plus scheduling
	// slack; in practice it is microseconds (256 transactions of counting).
	bound := perPass/2 + 250*time.Millisecond
	if latency > bound {
		t.Errorf("cancellation latency %v exceeds bound %v (full run %v over %d passes)",
			latency, bound, fullDur, full.Stats.Passes)
	}
}

// hookScanner invokes hook every `every` transactions of every scan — used
// to cancel a context from inside a pass without a goroutine race.
type hookScanner struct {
	dataset.Scanner
	every int
	hook  func()
}

func (h hookScanner) Scan(fn func(itemset.Itemset, *itemset.Bitset)) {
	n := 0
	h.Scanner.Scan(func(tx itemset.Itemset, bits *itemset.Bitset) {
		if n%h.every == 0 {
			h.hook()
		}
		n++
		fn(tx, bits)
	})
}

// TestBudgets exercises the remaining resource budgets end to end.
func TestBudgets(t *testing.T) {
	d := quest.Generate(quest.Params{
		NumTransactions: 600, AvgTxLen: 10, AvgPatternLen: 4,
		NumPatterns: 20, NumItems: 30, Seed: 2,
	})
	minCount := dataset.MinCountFor(d.Len(), 0.05)

	t.Run("deadline", func(t *testing.T) {
		opt := DefaultOptions()
		opt.Deadline = time.Nanosecond
		opt.CancelCheckEvery = 1
		_, err := MineCount(dataset.NewScanner(d), minCount, opt)
		var pe *mfi.PartialResultError
		if !errors.As(err, &pe) {
			t.Fatalf("got %v, want *mfi.PartialResultError", err)
		}
		if pe.Reason != mfi.ReasonDeadline {
			t.Errorf("reason %q, want %q", pe.Reason, mfi.ReasonDeadline)
		}
	})

	t.Run("max-candidates", func(t *testing.T) {
		opt := DefaultOptions()
		opt.MaxCandidatesPerPass = 1
		_, err := MineCount(dataset.NewScanner(d), minCount, opt)
		var pe *mfi.PartialResultError
		if !errors.As(err, &pe) {
			t.Fatalf("got %v, want *mfi.PartialResultError", err)
		}
		if pe.Reason != mfi.ReasonMaxCandidates {
			t.Errorf("reason %q, want %q", pe.Reason, mfi.ReasonMaxCandidates)
		}
		// Passes 1 and 2 count fixed universes and are exempt from the
		// candidate budget, so the abort lands at a pass ≥ 3 boundary.
		if pe.Pass < 2 {
			t.Errorf("aborted at pass %d; the budget applies from pass 3", pe.Pass)
		}
	})

	t.Run("memory", func(t *testing.T) {
		opt := DefaultOptions()
		opt.MaxMemoryBytes = 1 // any live heap exceeds this
		_, err := MineCount(dataset.NewScanner(d), minCount, opt)
		var pe *mfi.PartialResultError
		if !errors.As(err, &pe) {
			t.Fatalf("got %v, want *mfi.PartialResultError", err)
		}
		if pe.Reason != mfi.ReasonMemory {
			t.Errorf("reason %q, want %q", pe.Reason, mfi.ReasonMemory)
		}
	})
}

// TestResumeValidation covers the failure modes of MineResume itself.
func TestResumeValidation(t *testing.T) {
	d := quest.Generate(quest.Params{
		NumTransactions: 400, AvgTxLen: 8, AvgPatternLen: 4,
		NumPatterns: 15, NumItems: 25, Seed: 9,
	})
	minCount := dataset.MinCountFor(d.Len(), 0.05)

	t.Run("no-checkpointer", func(t *testing.T) {
		if _, err := MineResume(dataset.NewScanner(d), minCount, DefaultOptions()); err == nil {
			t.Fatal("MineResume without a Checkpointer must fail")
		}
	})

	t.Run("empty-checkpoint-runs-fresh", func(t *testing.T) {
		opt := DefaultOptions()
		opt.Checkpointer = &checkpoint.MemCheckpointer{}
		got, err := MineResume(dataset.NewScanner(d), minCount, opt)
		if err != nil {
			t.Fatal(err)
		}
		want, err := MineCount(dataset.NewScanner(d), minCount, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(got.MFS) != len(want.MFS) {
			t.Fatalf("fresh-resume MFS size %d, want %d", len(got.MFS), len(want.MFS))
		}
	})

	t.Run("mismatched-threshold", func(t *testing.T) {
		cp := &checkpoint.MemCheckpointer{}
		opt := DefaultOptions()
		opt.Checkpointer = cp
		opt.MaxTotalPasses = 2
		if _, err := MineCount(dataset.NewScanner(d), minCount, opt); err == nil {
			t.Fatal("budgeted run should abort")
		}
		opt.MaxTotalPasses = 0
		if _, err := MineResume(dataset.NewScanner(d), minCount+1, opt); err == nil {
			t.Fatal("resume with a different threshold must be rejected")
		}
	})
}
