package core

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pincer/internal/dataset"
	"pincer/internal/itemset"
)

// corruptingScanner delegates to a FileScanner and appends a malformed line
// to the file once a given number of passes have started — a database file
// corrupted mid-mine.
type corruptingScanner struct {
	fs    *dataset.FileScanner
	path  string
	after int
	scans int
}

func (c *corruptingScanner) Scan(fn func(tx itemset.Itemset, bits *itemset.Bitset)) {
	c.scans++
	if c.scans == c.after+1 {
		f, err := os.OpenFile(c.path, os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			panic(err)
		}
		if _, err := f.WriteString("3 bogus 5\n"); err != nil {
			panic(err)
		}
		f.Close()
	}
	c.fs.Scan(fn)
}

func (c *corruptingScanner) Len() int      { return c.fs.Len() }
func (c *corruptingScanner) NumItems() int { return c.fs.NumItems() }
func (c *corruptingScanner) Passes() int   { return c.fs.Passes() }

func writeBasketFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "db.basket")
	content := strings.Repeat("1 2 3\n1 2\n2 3\n1 3 4\n", 20)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMineCorruptedFileAfterPassOneReturnsError is the regression test for
// the mining boundary: a *dataset.FileScanError panic raised by a mid-run
// pass must come back as an error from MineCount, not crash the caller.
func TestMineCorruptedFileAfterPassOneReturnsError(t *testing.T) {
	path := writeBasketFile(t)
	fs, err := dataset.OpenFileScanner(path)
	if err != nil {
		t.Fatal(err)
	}
	sc := &corruptingScanner{fs: fs, path: path, after: 1}
	res, err := MineCount(sc, 2, DefaultOptions())
	if err == nil {
		t.Fatal("mining a corrupted file reported no error")
	}
	var fse *dataset.FileScanError
	if !errors.As(err, &fse) {
		t.Fatalf("err = %T (%v), want *dataset.FileScanError", err, err)
	}
	if res != nil {
		t.Errorf("result %+v returned alongside the error", res)
	}
	if sc.scans < 2 {
		t.Errorf("error surfaced on scan %d; the corruption happens after pass 1", sc.scans)
	}
}

// TestMineIntactFileMatchesInMemory pins the healthy path of the same
// scanner: file-backed mining equals in-memory mining.
func TestMineIntactFileMatchesInMemory(t *testing.T) {
	path := writeBasketFile(t)
	fs, err := dataset.OpenFileScanner(path)
	if err != nil {
		t.Fatal(err)
	}
	fres, err := MineCount(fs, 2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	d, err := dataset.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	mres, err := MineCount(dataset.NewScanner(d), 2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(fres.MFS) != len(mres.MFS) || fres.Stats.Passes != mres.Stats.Passes {
		t.Errorf("file-backed run differs: |MFS| %d vs %d, passes %d vs %d",
			len(fres.MFS), len(mres.MFS), fres.Stats.Passes, mres.Stats.Passes)
	}
}
