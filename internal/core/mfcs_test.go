package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pincer/internal/itemset"
)

func newTestMFCS(numItems int, initial ...itemset.Itemset) *MFCS {
	m := NewMFCS(numItems, 2, 0, nil)
	if len(initial) > 0 {
		m.Replace(initial)
	}
	return m
}

func elementsOf(m *MFCS) []itemset.Itemset {
	return m.Elements()
}

func TestNewMFCSStartsWithUniverse(t *testing.T) {
	m := NewMFCS(5, 2, 0, nil)
	es := elementsOf(m)
	if len(es) != 1 || !es[0].Equal(itemset.Range(0, 5)) {
		t.Fatalf("initial MFCS = %v", es)
	}
	if m.Len() != 1 || m.Exploded() {
		t.Fatalf("Len=%d Exploded=%v", m.Len(), m.Exploded())
	}
	// empty universe
	if NewMFCS(0, 2, 0, nil).Len() != 0 {
		t.Fatal("empty universe MFCS not empty")
	}
}

// TestMFCSGenPaperExample replays the worked example of §3.2: MFCS
// {{1,2,3,4,5,6}}, new infrequent itemsets {1,6} then {3,6}, expected
// result {{1,2,3,4,5},{2,4,5,6}}.
func TestMFCSGenPaperExample(t *testing.T) {
	m := newTestMFCS(7, itemset.New(1, 2, 3, 4, 5, 6))
	m.Split(itemset.New(1, 6))
	got := m.Elements()
	itemset.SortItemsets(got)
	want := []itemset.Itemset{itemset.New(1, 2, 3, 4, 5), itemset.New(2, 3, 4, 5, 6)}
	if len(got) != 2 || !got[0].Equal(want[0]) || !got[1].Equal(want[1]) {
		t.Fatalf("after {1,6}: %v, want %v", got, want)
	}
	m.Split(itemset.New(3, 6))
	got = m.Elements()
	itemset.SortItemsets(got)
	want = []itemset.Itemset{itemset.New(1, 2, 3, 4, 5), itemset.New(2, 4, 5, 6)}
	if len(got) != 2 || !got[0].Equal(want[0]) || !got[1].Equal(want[1]) {
		t.Fatalf("after {3,6}: %v, want %v", got, want)
	}
}

func TestMFCSPassOneManyLevels(t *testing.T) {
	// §3.1: m infrequent 1-itemsets take the single element down m levels in
	// one update.
	m := NewMFCS(10, 2, 0, nil)
	m.Update([]itemset.Itemset{itemset.New(3), itemset.New(7), itemset.New(9)})
	es := elementsOf(m)
	if len(es) != 1 || !es[0].Equal(itemset.New(0, 1, 2, 4, 5, 6, 8)) {
		t.Fatalf("MFCS = %v", es)
	}
}

func TestMFCSSplitNoElementContainsS(t *testing.T) {
	m := newTestMFCS(6, itemset.New(1, 2, 3))
	m.Split(itemset.New(4, 5)) // disjoint: no-op
	if es := elementsOf(m); len(es) != 1 || !es[0].Equal(itemset.New(1, 2, 3)) {
		t.Fatalf("MFCS = %v", es)
	}
}

func TestMFCSSplitMultipleElements(t *testing.T) {
	m := newTestMFCS(8, itemset.New(1, 2, 3, 4), itemset.New(2, 3, 5, 6))
	m.Split(itemset.New(2, 3)) // hits both elements
	es := m.Elements()
	if !itemset.IsAntichain(es) {
		t.Fatalf("not an antichain: %v", es)
	}
	for _, e := range es {
		if itemset.New(2, 3).IsSubsetOf(e) {
			t.Fatalf("element %v still contains the infrequent itemset", e)
		}
	}
	// coverage: itemsets not containing {2,3} stay covered
	for _, x := range []itemset.Itemset{itemset.New(1, 2, 4), itemset.New(3, 5, 6), itemset.New(1, 3, 4), itemset.New(2, 5, 6)} {
		if !m.Covers(x) {
			t.Errorf("%v lost coverage: %v", x, es)
		}
	}
}

func TestMFCSAddKeepsAntichain(t *testing.T) {
	// The §3.2 example's own subtlety: a generated subset that is covered
	// by another element must be dropped.
	m := newTestMFCS(8, itemset.New(1, 2, 3, 4, 5), itemset.New(2, 3, 4, 5, 6))
	m.Split(itemset.New(3, 6))
	// {2,3,4,5,6} splits to {2,4,5,6} and {2,3,4,5}; the latter is inside
	// {1,2,3,4,5} and must vanish.
	got := m.Elements()
	itemset.SortItemsets(got)
	if len(got) != 2 || !got[0].Equal(itemset.New(1, 2, 3, 4, 5)) || !got[1].Equal(itemset.New(2, 4, 5, 6)) {
		t.Fatalf("MFCS = %v", got)
	}
}

func TestMFCSSplitSelf(t *testing.T) {
	m := newTestMFCS(6, itemset.New(1, 2, 3))
	e := m.elems[0]
	e.state = stateInfrequent
	m.SplitSelf(e)
	got := m.Elements()
	itemset.SortItemsets(got)
	want := []itemset.Itemset{itemset.New(1, 2), itemset.New(1, 3), itemset.New(2, 3)}
	if len(got) != 3 {
		t.Fatalf("SplitSelf = %v", got)
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("SplitSelf[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// singleton splits to nothing
	m2 := newTestMFCS(6, itemset.New(4))
	m2.SplitSelf(m2.elems[0])
	if m2.Len() != 0 {
		t.Fatalf("singleton SplitSelf left %v", m2.Elements())
	}
}

func TestMFCSCapExplodes(t *testing.T) {
	m := NewMFCS(8, 2, 2, nil)
	// splitting the universe element by a long infrequent itemset makes
	// many replacements
	m.Update([]itemset.Itemset{itemset.New(0, 1, 2, 3)})
	if !m.Exploded() {
		t.Fatalf("cap 2 not exceeded: %d elements", m.Len())
	}
	// further updates are no-ops once exploded
	n := m.Len()
	m.Split(itemset.New(4, 5))
	if m.Len() != n {
		t.Fatal("Split mutated an exploded MFCS")
	}
}

func TestMFCSResolver(t *testing.T) {
	resolved := map[string]int64{
		itemset.New(1, 2).Key(): 5,
		itemset.New(3).Key():    1,
	}
	resolve := func(s itemset.Itemset) (int64, bool) {
		c, ok := resolved[s.Key()]
		return c, ok
	}
	m := NewMFCS(4, 2, 0, resolve)
	m.Replace([]itemset.Itemset{itemset.New(1, 2), itemset.New(3)})
	if len(m.Uncounted()) != 0 {
		t.Fatalf("resolver left uncounted: %v", m.Uncounted())
	}
	if fr := m.FrequentElements(); len(fr) != 1 || !fr[0].Equal(itemset.New(1, 2)) {
		t.Fatalf("FrequentElements = %v", fr)
	}
	if in := m.Infrequent(); len(in) != 1 || !in[0].set.Equal(itemset.New(3)) {
		t.Fatalf("Infrequent = %v", in)
	}
}

// TestQuickMFCSGenInvariants checks Definition 1 on random update streams:
// after feeding random infrequent itemsets, the MFCS is an antichain, no
// element contains an infrequent itemset, and every itemset that contains
// no infrequent subset remains covered.
func TestQuickMFCSGenInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		universe := 4 + r.Intn(6)
		m := NewMFCS(universe, 2, 0, nil)
		var infrequents []itemset.Itemset
		for i := 0; i < 2+r.Intn(8); i++ {
			s := randomNonEmpty(r, universe, 3)
			infrequents = append(infrequents, s)
			m.Split(s)
		}
		es := m.Elements()
		if !itemset.IsAntichain(es) {
			return false
		}
		for _, e := range es {
			for _, s := range infrequents {
				if s.IsSubsetOf(e) {
					return false
				}
			}
		}
		// coverage of all "possibly frequent" itemsets (≤4 items to bound cost)
		full := itemset.Range(0, itemset.Item(universe))
		ok := true
		for k := 1; k <= 4 && k <= universe && ok; k++ {
			full.EachSubsetOfSize(k, func(x itemset.Itemset) {
				if !ok {
					return
				}
				for _, s := range infrequents {
					if s.IsSubsetOf(x) {
						return // known infrequent: no coverage required
					}
				}
				if !m.Covers(x) {
					ok = false
				}
			})
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCliqueRebuildMatchesIncremental verifies the algebraic
// equivalence that makes Pincer-Search practical on scattered data: the
// batch rebuild (maximal cliques of the frequent-pair graph) equals the
// paper's incremental MFCS-gen fed every infrequent pair.
func TestQuickCliqueRebuildMatchesIncremental(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(9)
		vertices := itemset.Range(0, itemset.Item(n))
		edge := make(map[[2]itemset.Item]bool)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Intn(3) > 0 {
					edge[[2]itemset.Item{itemset.Item(i), itemset.Item(j)}] = true
				}
			}
		}
		isEdge := func(a, b itemset.Item) bool {
			if a > b {
				a, b = b, a
			}
			return edge[[2]itemset.Item{a, b}]
		}
		// incremental: start from the universe element, split by every
		// infrequent pair
		inc := NewMFCS(n, 2, 0, nil)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if !isEdge(itemset.Item(i), itemset.Item(j)) {
					inc.Split(itemset.New(itemset.Item(i), itemset.Item(j)))
				}
			}
		}
		// batch: Bron–Kerbosch
		batch := NewMFCS(n, 2, 0, nil)
		if !batch.RebuildFromPairGraph(vertices, isEdge, 0) {
			return false
		}
		a, b := inc.Elements(), batch.Elements()
		itemset.SortItemsets(a)
		itemset.SortItemsets(b)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if !a[i].Equal(b[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCliqueBudgetAborts(t *testing.T) {
	m := NewMFCS(12, 2, 0, nil)
	vertices := itemset.Range(0, 12)
	allEdges := func(a, b itemset.Item) bool { return true }
	if !m.RebuildFromPairGraph(vertices, allEdges, 0) {
		t.Fatal("unlimited budget failed on complete graph")
	}
	if m.Len() != 1 || !m.Elements()[0].Equal(vertices) {
		t.Fatalf("complete graph cliques = %v", m.Elements())
	}
	m2 := NewMFCS(12, 2, 0, nil)
	if m2.RebuildFromPairGraph(vertices, allEdges, 2) {
		t.Fatal("tiny budget did not abort")
	}
	if !m2.Exploded() {
		t.Fatal("aborted rebuild did not mark exploded")
	}
}

func TestCliqueCapAborts(t *testing.T) {
	// a perfect matching has n/2 maximal 2-cliques
	m := NewMFCS(10, 2, 3, nil)
	ok := m.RebuildFromPairGraph(itemset.Range(0, 10), func(a, b itemset.Item) bool {
		return b == a+1 && a%2 == 0
	}, 0)
	if ok || !m.Exploded() {
		t.Fatalf("cap 3 with 5 cliques: ok=%v exploded=%v", ok, m.Exploded())
	}
}

func TestCliqueIsolatedVerticesAreSingletons(t *testing.T) {
	m := NewMFCS(4, 2, 0, nil)
	// only edge 0-1; 2 and 3 isolated
	m.RebuildFromPairGraph(itemset.Range(0, 4), func(a, b itemset.Item) bool {
		return (a == 0 && b == 1) || (a == 1 && b == 0)
	}, 0)
	got := m.Elements()
	itemset.SortItemsets(got)
	want := []itemset.Itemset{itemset.New(0, 1), itemset.New(2), itemset.New(3)}
	if len(got) != 3 {
		t.Fatalf("cliques = %v", got)
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("clique[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func randomNonEmpty(r *rand.Rand, universe, maxLen int) itemset.Itemset {
	for {
		n := 1 + r.Intn(maxLen)
		items := make([]itemset.Item, n)
		for i := range items {
			items[i] = itemset.Item(r.Intn(universe))
		}
		s := itemset.New(items...)
		if len(s) > 0 {
			return s
		}
	}
}
