package core

import (
	"context"
	"time"

	"pincer/internal/counting"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
)

// PassCounter is the miner's injection seam for per-pass support counting.
// Each method performs the counting work of one database pass — pass 1
// (per-item array), pass 2 (triangular pair matrix), or a pass ≥ 3
// (candidate engine) — together with the support counts of the given MFCS
// elements, and is charged as exactly one database read by the miner's pass
// accounting.
//
// Implementations must return counts positionally parallel to their inputs
// and must be observationally equivalent to one sequential scan: identical
// counts, independent of transaction order or partitioning. The sequential
// default scans the miner's Scanner; internal/parallel injects a
// count-distribution implementation that scans horizontal partitions
// concurrently and merges per-worker counters at the pass barrier.
//
// elems is always an antichain of mixed-length itemsets (MFCS elements)
// with elemBits their dense forms, parallel to elems; both may be empty.
type PassCounter interface {
	// CountItems counts every item of the universe plus the elements.
	CountItems(numItems int, elems []itemset.Itemset, elemBits []*itemset.Bitset) (itemCounts, elemCounts []int64)
	// CountPairs counts every pair of live items plus the elements.
	CountPairs(numItems int, live itemset.Itemset, elems []itemset.Itemset, elemBits []*itemset.Bitset) (*counting.Triangle, []int64)
	// CountCandidates counts the bottom-up candidates with the given engine
	// plus the elements. candidates may be empty (MFCS-only tail passes).
	CountCandidates(engine counting.Engine, candidates []itemset.Itemset, elems []itemset.Itemset, elemBits []*itemset.Bitset) (candCounts, elemCounts []int64)
}

// ContextBinder is implemented by PassCounters that perform their own
// database scans and need the run's context for mid-scan cancellation
// checks (every checkEvery transactions, per worker for parallel
// counters). The miner calls it once, before the first pass, and only when
// the context can actually be cancelled.
type ContextBinder interface {
	BindContext(ctx context.Context, checkEvery int)
}

// WorkerCounted is implemented by PassCounters that distribute a pass over
// worker goroutines; the miner reports the count in trace events.
type WorkerCounted interface {
	// Workers returns the number of counting goroutines per pass.
	Workers() int
}

// IntersectionReporter is implemented by PassCounters that determine
// supports by tidset intersection (counting.TidListCounter) instead of by
// scanning the database. TakeIntersections drains the kernel-operation
// statistics accumulated since the previous call, so the miner can
// attribute them to the pass that just finished and surface them in trace
// events. Scan-based counters simply don't implement it.
type IntersectionReporter interface {
	TakeIntersections() counting.IntersectionStats
}

// countingWorkers reports how many goroutines a PassCounter counts with
// (1 unless it says otherwise).
func countingWorkers(pc PassCounter) int {
	if wc, ok := pc.(WorkerCounted); ok {
		if w := wc.Workers(); w > 0 {
			return w
		}
	}
	return 1
}

// timedPassCounter decorates a PassCounter with per-call wall-clock
// measurement — the tracing hook at the PassCounter seam. It is installed
// only when a Tracer is configured, so untraced runs keep the undecorated
// counter and take no timestamps.
type timedPassCounter struct {
	pc   PassCounter
	last time.Duration
}

// take returns the duration of the most recent pass and resets it, so a
// pass that performs no database read reports zero.
func (t *timedPassCounter) take() time.Duration {
	d := t.last
	t.last = 0
	return d
}

func (t *timedPassCounter) CountItems(numItems int, elems []itemset.Itemset, elemBits []*itemset.Bitset) ([]int64, []int64) {
	start := time.Now()
	itemCounts, elemCounts := t.pc.CountItems(numItems, elems, elemBits)
	t.last = time.Since(start)
	return itemCounts, elemCounts
}

func (t *timedPassCounter) CountPairs(numItems int, live itemset.Itemset, elems []itemset.Itemset, elemBits []*itemset.Bitset) (*counting.Triangle, []int64) {
	start := time.Now()
	tri, elemCounts := t.pc.CountPairs(numItems, live, elems, elemBits)
	t.last = time.Since(start)
	return tri, elemCounts
}

func (t *timedPassCounter) CountCandidates(engine counting.Engine, candidates []itemset.Itemset, elems []itemset.Itemset, elemBits []*itemset.Bitset) ([]int64, []int64) {
	start := time.Now()
	candCounts, elemCounts := t.pc.CountCandidates(engine, candidates, elems, elemBits)
	t.last = time.Since(start)
	return candCounts, elemCounts
}

// Workers delegates to the wrapped counter.
func (t *timedPassCounter) Workers() int { return countingWorkers(t.pc) }

// TakeIntersections delegates to the wrapped counter; for scan counters it
// reports zero stats, which the trace layer omits.
func (t *timedPassCounter) TakeIntersections() counting.IntersectionStats {
	if ir, ok := t.pc.(IntersectionReporter); ok {
		return ir.TakeIntersections()
	}
	return counting.IntersectionStats{}
}

// directElemsMax is the element count up to which a pass counts MFCS
// elements by direct per-transaction bitset subset tests; above it a trie
// over the elements is cheaper. Either way the counts are identical.
const directElemsMax = 16

// seqPassCounter is the default PassCounter: one sequential scan of the
// miner's Scanner per call, exactly the paper's counting procedure. When a
// cancellable context is bound, each scan checks it every checkEvery
// transactions via a ScanGuard; unbound (the common case) the guard is nil
// and Tick is a single nil test.
type seqPassCounter struct {
	sc         dataset.Scanner
	ctx        context.Context
	checkEvery int
}

// BindContext implements ContextBinder.
func (s *seqPassCounter) BindContext(ctx context.Context, checkEvery int) {
	s.ctx = ctx
	s.checkEvery = checkEvery
}

func (s *seqPassCounter) CountItems(numItems int, elems []itemset.Itemset, elemBits []*itemset.Bitset) ([]int64, []int64) {
	array := counting.NewItemArray(numItems)
	elemCounts := make([]int64, len(elems))
	guard := mfi.NewScanGuard(s.ctx, s.checkEvery)
	s.sc.Scan(func(tx itemset.Itemset, bits *itemset.Bitset) {
		guard.Tick()
		array.Add(tx)
		for i, eb := range elemBits {
			if eb.IsSubsetOf(bits) {
				elemCounts[i]++
			}
		}
	})
	return array.Counts(), elemCounts
}

func (s *seqPassCounter) CountPairs(numItems int, live itemset.Itemset, elems []itemset.Itemset, elemBits []*itemset.Bitset) (*counting.Triangle, []int64) {
	tri := counting.NewTriangle(numItems, live)
	elemCounts := make([]int64, len(elems))
	guard := mfi.NewScanGuard(s.ctx, s.checkEvery)
	s.sc.Scan(func(tx itemset.Itemset, bits *itemset.Bitset) {
		guard.Tick()
		tri.Add(tx)
		for i, eb := range elemBits {
			if eb.IsSubsetOf(bits) {
				elemCounts[i]++
			}
		}
	})
	return tri, elemCounts
}

func (s *seqPassCounter) CountCandidates(engine counting.Engine, candidates []itemset.Itemset, elems []itemset.Itemset, elemBits []*itemset.Bitset) ([]int64, []int64) {
	var counter counting.Counter
	if len(candidates) > 0 {
		counter = counting.NewCounter(engine, candidates)
	}
	var elemCounter counting.Counter
	var elemCounts []int64
	if len(elems) > directElemsMax {
		// MFCS elements form an antichain, so no element is a prefix of
		// another and the trie handles the mixed lengths safely.
		elemCounter = counting.NewTrie(elems)
	} else {
		elemCounts = make([]int64, len(elems))
	}
	guard := mfi.NewScanGuard(s.ctx, s.checkEvery)
	s.sc.Scan(func(tx itemset.Itemset, bits *itemset.Bitset) {
		guard.Tick()
		if counter != nil {
			counter.Add(tx)
		}
		if elemCounter != nil {
			elemCounter.Add(tx)
		} else {
			for i, eb := range elemBits {
				if eb.IsSubsetOf(bits) {
					elemCounts[i]++
				}
			}
		}
	})
	if elemCounter != nil {
		elemCounts = elemCounter.Counts()
	}
	if counter != nil {
		return counter.Counts(), elemCounts
	}
	return nil, elemCounts
}

// NewScanCounter returns the default sequential PassCounter over sc — one
// full scan per counting call, exactly the paper's procedure. It is what a
// miner uses when Options.Counter is nil; the constructor exists so other
// packages (internal/incremental's delta verification) can drive the same
// counting path over ad-hoc datasets without a miner in the loop.
func NewScanCounter(sc dataset.Scanner) PassCounter {
	return &seqPassCounter{sc: sc}
}

// elemSets extracts the itemset and bitset forms of uncounted MFCS elements
// for a PassCounter call.
func elemSets(uncounted []*element) ([]itemset.Itemset, []*itemset.Bitset) {
	if len(uncounted) == 0 {
		return nil, nil
	}
	sets := make([]itemset.Itemset, len(uncounted))
	bits := make([]*itemset.Bitset, len(uncounted))
	for i, e := range uncounted {
		sets[i] = e.set
		bits[i] = e.bits
	}
	return sets, bits
}
