package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pincer/internal/apriori"
	"pincer/internal/counting"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
	"pincer/internal/quest"
)

// figure2Dataset realizes the paper's Figure 2 scenario: maximal frequent
// itemsets {1,2,3,4,5} and {2,4,5,6}, with {1,6} and {3,6} infrequent.
func figure2Dataset() *dataset.Dataset {
	d := dataset.Empty(7)
	for i := 0; i < 2; i++ {
		d.Append(itemset.New(1, 2, 3, 4, 5))
		d.Append(itemset.New(2, 4, 5, 6))
	}
	return d
}

func TestPincerFigure2(t *testing.T) {
	d := figure2Dataset()
	sc := dataset.NewScanner(d)
	res := must(MineCount(sc, 2, DefaultOptions()))
	want := []itemset.Itemset{itemset.New(1, 2, 3, 4, 5), itemset.New(2, 4, 5, 6)}
	if err := mfi.VerifyAgainst(res.MFS, want); err != nil {
		t.Fatalf("MFS: %v (got %v)", err, res.MFS)
	}
	for i, m := range res.MFS {
		if res.MFSSupports[i] != 2 {
			t.Errorf("support(%v) = %d, want 2", m, res.MFSSupports[i])
		}
	}
	// The two maximal itemsets are discovered from the MFCS in pass 3; the
	// bottom-up search never climbs to levels 4 and 5.
	if res.Stats.Passes > 3 {
		t.Errorf("Pincer passes = %d, want ≤ 3", res.Stats.Passes)
	}
	ares := must(apriori.MineCount(dataset.NewScanner(d), 2, apriori.DefaultOptions()))
	if ares.Stats.Passes <= res.Stats.Passes {
		t.Errorf("Apriori passes (%d) should exceed Pincer passes (%d) here",
			ares.Stats.Passes, res.Stats.Passes)
	}
	if err := mfi.VerifyAgainst(res.MFS, ares.MFS); err != nil {
		t.Fatalf("Pincer vs Apriori: %v", err)
	}
}

func TestPincerFigure2PureIncremental(t *testing.T) {
	// Force the incremental (paper-faithful) MFCS-gen path.
	d := figure2Dataset()
	opt := DefaultOptions()
	opt.Pure = true
	res := must(MineCount(dataset.NewScanner(d), 2, opt))
	want := []itemset.Itemset{itemset.New(1, 2, 3, 4, 5), itemset.New(2, 4, 5, 6)}
	if err := mfi.VerifyAgainst(res.MFS, want); err != nil {
		t.Fatalf("MFS: %v (got %v)", err, res.MFS)
	}
	if res.Stats.Passes > 3 {
		t.Errorf("passes = %d", res.Stats.Passes)
	}
}

func TestPincerEdgeCases(t *testing.T) {
	// empty database
	res := must(MineCount(dataset.NewScanner(dataset.Empty(4)), 1, DefaultOptions()))
	if len(res.MFS) != 0 {
		t.Errorf("empty db MFS = %v", res.MFS)
	}
	// nothing frequent
	d := dataset.New([]dataset.Transaction{itemset.New(1), itemset.New(2)})
	res = must(MineCount(dataset.NewScanner(d), 2, DefaultOptions()))
	if len(res.MFS) != 0 {
		t.Errorf("MFS = %v, want empty", res.MFS)
	}
	// single frequent item
	d = dataset.New([]dataset.Transaction{itemset.New(1), itemset.New(1), itemset.New(2)})
	res = must(MineCount(dataset.NewScanner(d), 2, DefaultOptions()))
	if err := mfi.VerifyAgainst(res.MFS, []itemset.Itemset{itemset.New(1)}); err != nil {
		t.Errorf("single item: %v (got %v)", err, res.MFS)
	}
	// the whole universe frequent: one pass can settle everything
	d = dataset.New([]dataset.Transaction{
		itemset.New(0, 1, 2), itemset.New(0, 1, 2), itemset.New(0, 1, 2),
	})
	res = must(MineCount(dataset.NewScanner(d), 2, DefaultOptions()))
	if err := mfi.VerifyAgainst(res.MFS, []itemset.Itemset{itemset.New(0, 1, 2)}); err != nil {
		t.Errorf("universe frequent: %v (got %v)", err, res.MFS)
	}
	if res.Stats.Passes != 1 {
		t.Errorf("universe frequent should need 1 pass, took %d", res.Stats.Passes)
	}
}

func TestPincerAdaptiveAbandonment(t *testing.T) {
	// A tiny cap forces the MFCS to explode at pass 2 before any maximal
	// itemset is found; the run must degrade to bottom-up search and still
	// be correct.
	d := quest.Generate(quest.Params{
		NumTransactions: 400, AvgTxLen: 8, AvgPatternLen: 3,
		NumPatterns: 50, NumItems: 40, Seed: 3,
	})
	opt := DefaultOptions()
	opt.MFCSCap = 1
	res := must(Mine(dataset.NewScanner(d), 0.03, opt))
	if !res.Stats.AdaptiveOff {
		t.Fatal("cap 1 did not trigger abandonment")
	}
	ares := must(apriori.Mine(dataset.NewScanner(d), 0.03, apriori.DefaultOptions()))
	if err := mfi.VerifyAgainst(res.MFS, ares.MFS); err != nil {
		t.Fatalf("abandoned run wrong: %v", err)
	}
}

func TestPincerFallbackAfterMFSFound(t *testing.T) {
	// Two separate cliques: {1,2,3} is frequent as a whole (found in the
	// MFCS at pass 3); the 4-7 clique has frequent pairs but infrequent
	// {4,5,6}, so pass-3 MFCS-gen splits {4,5,6,7} into three elements and
	// exceeds cap 3 — after an MFS element exists, which forces the full
	// Apriori fallback.
	d := dataset.Empty(8)
	for i := 0; i < 2; i++ {
		d.Append(itemset.New(1, 2, 3))
		d.Append(itemset.New(4, 5, 7))
		d.Append(itemset.New(4, 6, 7))
		d.Append(itemset.New(5, 6, 7))
	}
	opt := DefaultOptions()
	opt.MFCSCap = 3
	opt.IncrementalSplitMax = 1_000_000 // keep the incremental pass-2 path
	res := must(MineCount(dataset.NewScanner(d), 2, opt))
	if !res.Stats.AdaptiveOff {
		t.Fatal("expected adaptive fallback")
	}
	ares := must(apriori.MineCount(dataset.NewScanner(d), 2, apriori.DefaultOptions()))
	if err := mfi.VerifyAgainst(res.MFS, ares.MFS); err != nil {
		t.Fatalf("fallback result wrong: %v (got %v, want %v)", err, res.MFS, ares.MFS)
	}
}

func TestPincerAbandonedCombineLevels(t *testing.T) {
	// Force abandonment at pass 2, then check the degraded mode combines
	// levels: same answers as Apriori, fewer passes than the plain
	// abandoned run.
	d := quest.Generate(quest.Params{
		NumTransactions: 600, AvgTxLen: 10, AvgPatternLen: 5,
		NumPatterns: 25, NumItems: 80, Seed: 13,
	})
	base := DefaultOptions()
	base.MFCSCap = 1 // guarantees pass-2 explosion before any MFS exists
	plain := base
	plain.CombineAfterAbandon = false
	combined := base
	combined.CombineAfterAbandon = true

	resPlain := must(Mine(dataset.NewScanner(d), 0.03, plain))
	resComb := must(Mine(dataset.NewScanner(d), 0.03, combined))
	ares := must(apriori.Mine(dataset.NewScanner(d), 0.03, apriori.DefaultOptions()))
	if !resPlain.Stats.AdaptiveOff || !resComb.Stats.AdaptiveOff {
		t.Fatal("abandonment did not trigger")
	}
	if err := mfi.VerifyAgainst(resComb.MFS, ares.MFS); err != nil {
		t.Fatalf("combined: %v", err)
	}
	if err := mfi.VerifyAgainst(resPlain.MFS, ares.MFS); err != nil {
		t.Fatalf("plain: %v", err)
	}
	if ares.Stats.Passes <= 4 {
		t.Skipf("workload too shallow (%d passes) to observe combining", ares.Stats.Passes)
	}
	if resComb.Stats.Passes >= resPlain.Stats.Passes {
		t.Errorf("combining saved no passes: %d vs %d", resComb.Stats.Passes, resPlain.Stats.Passes)
	}
}

func TestQuickPincerAbandonedCombineMatchesApriori(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDB(r)
		minCount := int64(1 + r.Intn(d.Len()/2+1))
		opt := DefaultOptions()
		opt.MFCSCap = 1
		opt.CombineAfterAbandon = true
		opt.CombineThreshold = 1 + r.Intn(40)
		res := must(MineCount(dataset.NewScanner(d), minCount, opt))
		ares := must(apriori.MineCount(dataset.NewScanner(d), minCount, apriori.DefaultOptions()))
		return mfi.VerifyAgainst(res.MFS, ares.MFS) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestPincerKeepFrequentFalse(t *testing.T) {
	d := figure2Dataset()
	opt := DefaultOptions()
	opt.KeepFrequent = false
	res := must(MineCount(dataset.NewScanner(d), 2, opt))
	if res.Frequent != nil {
		t.Fatal("Frequent retained")
	}
	if len(res.MFS) != 2 {
		t.Fatalf("MFS = %v", res.MFS)
	}
	for i := range res.MFS {
		if res.MFSSupports[i] != 2 {
			t.Errorf("MFSSupports[%d] = %d", i, res.MFSSupports[i])
		}
	}
}

func TestPincerExaminesFewerItemsets(t *testing.T) {
	// The headline property: on a database with long maximal itemsets,
	// Pincer-Search explicitly examines far fewer itemsets than Apriori.
	d := dataset.Empty(20)
	long := itemset.Range(0, 12)
	for i := 0; i < 30; i++ {
		d.Append(long)
	}
	d.Append(itemset.New(15, 16))
	sc := dataset.NewScanner(d)
	res := must(MineCount(sc, 10, DefaultOptions()))
	if err := mfi.VerifyAgainst(res.MFS, []itemset.Itemset{long}); err != nil {
		t.Fatalf("MFS: %v (got %v)", err, res.MFS)
	}
	if res.Stats.Passes > 2 {
		t.Errorf("passes = %d, want ≤ 2", res.Stats.Passes)
	}
	ares := must(apriori.MineCount(dataset.NewScanner(d), 10, apriori.DefaultOptions()))
	if ares.Stats.Passes != 12 {
		t.Errorf("apriori passes = %d, want 12", ares.Stats.Passes)
	}
	// Apriori explicitly discovers all 2^12-1 frequent itemsets
	if ares.Stats.FrequentCount != 4095 {
		t.Errorf("apriori frequent = %d, want 4095", ares.Stats.FrequentCount)
	}
	if res.Stats.FrequentCount > 100 {
		t.Errorf("pincer examined %d frequent itemsets, want ≤ 100", res.Stats.FrequentCount)
	}
}

func TestPincerTailPhaseRescuesRecoveryHole(t *testing.T) {
	// With the recovery procedure disabled, removing MFS subsets from L_k
	// starves the join and the bottom-up search stalls; the MFCS tail phase
	// must still deliver the complete MFS.
	d := figure2Dataset()
	// add a third maximal itemset overlapping both
	for i := 0; i < 2; i++ {
		d.Append(itemset.New(1, 2, 6))
	}
	opt := DefaultOptions()
	opt.DisableRecovery = true
	res := must(MineCount(dataset.NewScanner(d), 2, opt))
	ares := must(apriori.MineCount(dataset.NewScanner(d), 2, apriori.DefaultOptions()))
	if err := mfi.VerifyAgainst(res.MFS, ares.MFS); err != nil {
		t.Fatalf("recovery-off run incomplete: %v (got %v, want %v)", err, res.MFS, ares.MFS)
	}
}

func comparePincerApriori(t testing.TB, d *dataset.Dataset, minCount int64, opt Options) {
	res := must(MineCount(dataset.NewScanner(d), minCount, opt))
	ares := must(apriori.MineCount(dataset.NewScanner(d), minCount, apriori.DefaultOptions()))
	if err := mfi.VerifyAgainst(res.MFS, ares.MFS); err != nil {
		t.Fatalf("pincer (opt=%+v) vs apriori at minCount %d: %v\n got %v\nwant %v\ndata %v",
			opt, minCount, err, res.MFS, ares.MFS, d.Transactions())
	}
	// supports of MFS elements agree
	for i, m := range res.MFS {
		if res.MFSSupports[i] != d.Support(m) {
			t.Fatalf("support(%v) = %d, want %d", m, res.MFSSupports[i], d.Support(m))
		}
	}
}

func randomDB(r *rand.Rand) *dataset.Dataset {
	universe := 4 + r.Intn(10)
	numTx := 5 + r.Intn(50)
	d := dataset.Empty(universe)
	for i := 0; i < numTx; i++ {
		n := 1 + r.Intn(universe)
		items := make([]itemset.Item, n)
		for j := range items {
			items[j] = itemset.Item(r.Intn(universe))
		}
		d.Append(itemset.New(items...))
	}
	return d
}

func TestQuickPincerMatchesApriori(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDB(r)
		minCount := int64(1 + r.Intn(d.Len()/2+1))
		res := must(MineCount(dataset.NewScanner(d), minCount, DefaultOptions()))
		ares := must(apriori.MineCount(dataset.NewScanner(d), minCount, apriori.DefaultOptions()))
		return mfi.VerifyAgainst(res.MFS, ares.MFS) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPincerPureMatchesApriori(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDB(r)
		minCount := int64(1 + r.Intn(d.Len()/2+1))
		opt := DefaultOptions()
		opt.Pure = true
		res := must(MineCount(dataset.NewScanner(d), minCount, opt))
		ares := must(apriori.MineCount(dataset.NewScanner(d), minCount, apriori.DefaultOptions()))
		return mfi.VerifyAgainst(res.MFS, ares.MFS) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPincerNoRecoveryMatchesApriori(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDB(r)
		minCount := int64(1 + r.Intn(d.Len()/2+1))
		opt := DefaultOptions()
		opt.DisableRecovery = true
		res := must(MineCount(dataset.NewScanner(d), minCount, opt))
		ares := must(apriori.MineCount(dataset.NewScanner(d), minCount, apriori.DefaultOptions()))
		return mfi.VerifyAgainst(res.MFS, ares.MFS) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPincerTinyCapMatchesApriori(t *testing.T) {
	// Exercise the abandonment and fallback paths aggressively.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDB(r)
		minCount := int64(1 + r.Intn(d.Len()/2+1))
		opt := DefaultOptions()
		opt.MFCSCap = 1 + r.Intn(3)
		opt.IncrementalSplitMax = r.Intn(8)
		res := must(MineCount(dataset.NewScanner(d), minCount, opt))
		ares := must(apriori.MineCount(dataset.NewScanner(d), minCount, apriori.DefaultOptions()))
		return mfi.VerifyAgainst(res.MFS, ares.MFS) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestPincerOnQuestScattered(t *testing.T) {
	// Scattered parameters (many patterns): the clique path must engage and
	// the result must match Apriori exactly.
	d := quest.Generate(quest.Params{
		NumTransactions: 1500, AvgTxLen: 8, AvgPatternLen: 3,
		NumPatterns: 120, NumItems: 100, Seed: 17,
	})
	for _, sup := range []float64{0.01, 0.02, 0.04} {
		comparePincerApriori(t, d, dataset.MinCountFor(d.Len(), sup), DefaultOptions())
	}
}

func TestPincerOnQuestConcentrated(t *testing.T) {
	// Concentrated parameters (few long patterns): the MFCS should find
	// long maximal itemsets early and beat Apriori on passes.
	d := quest.Generate(quest.Params{
		NumTransactions: 800, AvgTxLen: 14, AvgPatternLen: 10,
		NumPatterns: 20, NumItems: 500, Seed: 23,
	})
	minCount := dataset.MinCountFor(d.Len(), 0.05)
	res := must(MineCount(dataset.NewScanner(d), minCount, DefaultOptions()))
	ares := must(apriori.MineCount(dataset.NewScanner(d), minCount, apriori.DefaultOptions()))
	if err := mfi.VerifyAgainst(res.MFS, ares.MFS); err != nil {
		t.Fatalf("concentrated: %v", err)
	}
	if res.LongestMFS() < 6 {
		t.Skipf("workload too easy (longest MFS %d); shape assertions skipped", res.LongestMFS())
	}
	if res.Stats.Passes >= ares.Stats.Passes {
		t.Errorf("pincer passes %d, apriori %d: expected fewer", res.Stats.Passes, ares.Stats.Passes)
	}
	if res.Stats.FrequentCount >= ares.Stats.FrequentCount {
		t.Errorf("pincer examined %d frequent itemsets, apriori %d: expected fewer",
			res.Stats.FrequentCount, ares.Stats.FrequentCount)
	}
}

func TestPincerEnginesAgree(t *testing.T) {
	d := quest.Generate(quest.Params{
		NumTransactions: 700, AvgTxLen: 10, AvgPatternLen: 4,
		NumPatterns: 40, NumItems: 60, Seed: 9,
	})
	var ref *mfi.Result
	for _, e := range []counting.Engine{counting.EngineList, counting.EngineHashTree, counting.EngineTrie} {
		opt := DefaultOptions()
		opt.Engine = e
		res := must(Mine(dataset.NewScanner(d), 0.02, opt))
		if ref == nil {
			ref = res
			continue
		}
		if err := mfi.VerifyAgainst(res.MFS, ref.MFS); err != nil {
			t.Fatalf("engine %v: %v", e, err)
		}
	}
}

// TestNonMonotoneMFS reproduces §4.1.3's observation: lowering the minimum
// support can SHRINK the maximum frequent set. The paper's example: at the
// higher threshold the MFS is {{1,2},{1,3},{2,3}}; lowering it makes
// {1,2,3} frequent and the MFS collapses to one element.
func TestNonMonotoneMFS(t *testing.T) {
	d := dataset.Empty(4)
	// {1,2,3} in 2 of 12 transactions (~17%); each pair in 4 of 12 (~33%)
	for i := 0; i < 2; i++ {
		d.Append(itemset.New(1, 2, 3))
		d.Append(itemset.New(1, 2))
		d.Append(itemset.New(1, 3))
		d.Append(itemset.New(2, 3))
	}
	for i := 0; i < 4; i++ {
		d.Append(itemset.New(0))
	}
	high := must(MineCount(dataset.NewScanner(d), 4, DefaultOptions())) // pairs yes, triple no
	wantHigh := []itemset.Itemset{itemset.New(0), itemset.New(1, 2), itemset.New(1, 3), itemset.New(2, 3)}
	if err := mfi.VerifyAgainst(high.MFS, wantHigh); err != nil {
		t.Fatalf("high threshold: %v (got %v)", err, high.MFS)
	}
	low := must(MineCount(dataset.NewScanner(d), 2, DefaultOptions())) // triple becomes frequent
	foundTriple := false
	for _, m := range low.MFS {
		if m.Equal(itemset.New(1, 2, 3)) {
			foundTriple = true
		}
		if len(m) == 2 && m.IsSubsetOf(itemset.New(1, 2, 3)) {
			t.Errorf("pair %v survived in the low-threshold MFS", m)
		}
	}
	if !foundTriple {
		t.Fatalf("low threshold MFS = %v", low.MFS)
	}
	// the non-monotonicity itself: fewer maximal itemsets at lower support
	highCount, lowCount := 0, 0
	for _, m := range high.MFS {
		if m.IsSubsetOf(itemset.New(1, 2, 3)) {
			highCount++
		}
	}
	for _, m := range low.MFS {
		if m.IsSubsetOf(itemset.New(1, 2, 3)) {
			lowCount++
		}
	}
	if lowCount >= highCount {
		t.Errorf("MFS over {1,2,3} did not shrink: %d -> %d", highCount, lowCount)
	}
}

func TestStatsAggregatesMatchPassDetails(t *testing.T) {
	d := figure2Dataset()
	for _, opt := range []Options{DefaultOptions(), {Engine: counting.EngineTrie, Pure: true, KeepFrequent: true}} {
		res := must(MineCount(dataset.NewScanner(d), 2, opt))
		var candAll, mfcs, freq int64
		var cand3 int64
		for _, p := range res.Stats.PassDetails {
			candAll += int64(p.Candidates) + int64(p.MFCSCandidates)
			mfcs += int64(p.MFCSCandidates)
			freq += int64(p.Frequent)
			if p.Pass > 2 {
				cand3 += int64(p.Candidates)
			}
		}
		if res.Stats.CandidatesAll != candAll {
			t.Errorf("CandidatesAll %d != sum %d", res.Stats.CandidatesAll, candAll)
		}
		if res.Stats.MFCSCandidates != mfcs {
			t.Errorf("MFCSCandidates %d != sum %d", res.Stats.MFCSCandidates, mfcs)
		}
		if res.Stats.FrequentCount != freq {
			t.Errorf("FrequentCount %d != sum %d", res.Stats.FrequentCount, freq)
		}
		if res.Stats.Candidates != cand3+mfcs {
			t.Errorf("Candidates %d != pass≥3 %d + mfcs %d", res.Stats.Candidates, cand3, mfcs)
		}
		if res.Stats.Passes != len(res.Stats.PassDetails) {
			t.Errorf("Passes %d != detail count %d", res.Stats.Passes, len(res.Stats.PassDetails))
		}
	}
}

func TestPincerStatsConsistency(t *testing.T) {
	d := figure2Dataset()
	sc := dataset.NewScanner(d)
	res := must(MineCount(sc, 2, DefaultOptions()))
	if sc.Passes() != res.Stats.Passes {
		t.Errorf("scanner passes %d != stats passes %d", sc.Passes(), res.Stats.Passes)
	}
	var mfsFound int
	for _, p := range res.Stats.PassDetails {
		mfsFound += p.MFSFound
	}
	if mfsFound < len(res.MFS) {
		t.Errorf("pass details account for %d MFS discoveries, result has %d", mfsFound, len(res.MFS))
	}
	if res.Stats.Algorithm != "pincer" {
		t.Errorf("Algorithm = %q", res.Stats.Algorithm)
	}
}

// must unwraps the (result, error) mining returns; in-memory test scans
// cannot fail.
func must[R any](res R, err error) R {
	if err != nil {
		panic(err)
	}
	return res
}
