package core

import (
	"math/bits"

	"pincer/internal/itemset"
)

// After pass 2 the MFCS is, by Definition 1, exactly the set of maximal
// cliques of the graph whose vertices are the frequent items and whose
// edges are the frequent pairs: a set of items all of whose 2-subsets are
// frequent is a clique, and minimality demands the maximal ones. Feeding
// the (often hundreds of thousands of) infrequent pairs one by one through
// MFCS-gen computes the same result in wildly more steps; this file
// implements the batch equivalent — Bron–Kerbosch maximal-clique
// enumeration with pivoting — which makes Pincer-Search practical on
// sparse ("scattered") databases. A property test verifies the algebraic
// equivalence of the two paths on random graphs.

// cliqueGraph is a dense undirected graph over vertices 0..n-1 with
// bitset adjacency rows.
type cliqueGraph struct {
	n   int
	adj []vbits
}

// vbits is a small inline bitset over vertex indices.
type vbits []uint64

func newVbits(n int) vbits { return make(vbits, (n+63)/64) }

func (v vbits) set(i int)      { v[i/64] |= 1 << (uint(i) % 64) }
func (v vbits) has(i int) bool { return v[i/64]&(1<<(uint(i)%64)) != 0 }
func (v vbits) clear(i int)    { v[i/64] &^= 1 << (uint(i) % 64) }
func (v vbits) clone() vbits   { c := make(vbits, len(v)); copy(c, v); return c }
func (v vbits) empty() bool {
	for _, w := range v {
		if w != 0 {
			return false
		}
	}
	return true
}
func (v vbits) count() int {
	n := 0
	for _, w := range v {
		n += bits.OnesCount64(w)
	}
	return n
}
func (v vbits) and(a, b vbits) {
	for i := range v {
		v[i] = a[i] & b[i]
	}
}
func (v vbits) countAnd(b vbits) int {
	n := 0
	for i := range v {
		n += bits.OnesCount64(v[i] & b[i])
	}
	return n
}
func (v vbits) each(f func(int) bool) {
	for wi, w := range v {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !f(wi*64 + b) {
				return
			}
			w &= w - 1
		}
	}
}

func newCliqueGraph(n int) *cliqueGraph {
	g := &cliqueGraph{n: n, adj: make([]vbits, n)}
	for i := range g.adj {
		g.adj[i] = newVbits(n)
	}
	return g
}

func (g *cliqueGraph) addEdge(a, b int) {
	if a == b {
		return
	}
	g.adj[a].set(b)
	g.adj[b].set(a)
}

// maximalCliques enumerates all maximal cliques (as vertex-index slices),
// including isolated vertices as singleton cliques. The enumeration aborts
// returning (nil, false) when more than maxCliques cliques are found or the
// recursion visits more than nodeBudget states — the adaptive miner's
// explosion signal. Budgets of 0 mean unlimited.
func (g *cliqueGraph) maximalCliques(maxCliques, nodeBudget int) ([][]int, bool) {
	var out [][]int
	p := newVbits(g.n)
	for i := 0; i < g.n; i++ {
		p.set(i)
	}
	x := newVbits(g.n)
	budget := nodeBudget
	ok := g.bronKerbosch(nil, p, x, &out, maxCliques, &budget)
	if !ok {
		return nil, false
	}
	return out, true
}

func (g *cliqueGraph) bronKerbosch(r []int, p, x vbits, out *[][]int, maxCliques int, budget *int) bool {
	if *budget != 0 {
		*budget--
		if *budget <= 0 {
			return false
		}
	}
	if p.empty() && x.empty() {
		clique := make([]int, len(r))
		copy(clique, r)
		*out = append(*out, clique)
		return maxCliques == 0 || len(*out) <= maxCliques
	}
	// Pivot: the vertex of P ∪ X with the most neighbours in P minimizes
	// the branching set P \ N(pivot).
	pivot, best := -1, -1
	consider := func(v int) bool {
		if c := g.adj[v].countAnd(p); c > best {
			best, pivot = c, v
		}
		return true
	}
	p.each(consider)
	x.each(consider)

	// Branch vertices: P minus the pivot's neighbourhood.
	var branch []int
	p.each(func(v int) bool {
		if pivot < 0 || !g.adj[pivot].has(v) {
			branch = append(branch, v)
		}
		return true
	})
	np := newVbits(g.n)
	nx := newVbits(g.n)
	for _, v := range branch {
		np.and(p, g.adj[v])
		nx.and(x, g.adj[v])
		if !g.bronKerbosch(append(r, v), np.clone(), nx.clone(), out, maxCliques, budget) {
			return false
		}
		p.clear(v)
		x.set(v)
	}
	return true
}

// RebuildFromPairGraph replaces the MFCS with the maximal cliques of the
// frequent-pair graph: vertices are the frequent items, edges the frequent
// pairs. It returns false (and marks the MFCS exploded) if the clique count
// exceeds the element cap or the enumeration budget is exhausted.
func (m *MFCS) RebuildFromPairGraph(vertices itemset.Itemset, frequentPair func(a, b itemset.Item) bool, nodeBudget int) bool {
	n := len(vertices)
	if n == 0 {
		m.elems = m.elems[:0]
		return true
	}
	g := newCliqueGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if frequentPair(vertices[i], vertices[j]) {
				g.addEdge(i, j)
			}
		}
	}
	cliques, ok := g.maximalCliques(m.cap, nodeBudget)
	if !ok {
		m.exploded = true
		return false
	}
	sets := make([]itemset.Itemset, len(cliques))
	for i, c := range cliques {
		s := make(itemset.Itemset, len(c))
		for j, v := range c {
			s[j] = vertices[v]
		}
		sets[i] = itemset.New(s...)
	}
	m.Replace(sets)
	return !m.exploded
}
