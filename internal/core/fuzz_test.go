package core

import (
	"testing"

	"pincer/internal/apriori"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
)

// FuzzPincerMatchesApriori decodes arbitrary bytes into a transaction
// database and checks the fundamental contract: Pincer-Search and Apriori
// agree on the maximum frequent set for every input and threshold.
//
// Encoding: the first byte selects the support threshold; the rest is a
// stream of items in a small universe, with the high bit terminating a
// transaction.
func FuzzPincerMatchesApriori(f *testing.F) {
	f.Add([]byte{2, 1, 2, 0x83, 1, 2, 0x83, 1, 0x82})
	f.Add([]byte{1, 0x80})
	f.Add([]byte{3, 5, 6, 7, 0x85, 5, 6, 0x87})
	f.Add([]byte{0})
	f.Add([]byte{255, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 256 {
			t.Skip()
		}
		minCount := int64(data[0]%8) + 1
		d := dataset.Empty(16)
		var cur []itemset.Item
		for _, b := range data[1:] {
			cur = append(cur, itemset.Item(b&0x0f))
			if b&0x80 != 0 {
				d.Append(itemset.New(cur...))
				cur = nil
			}
		}
		if len(cur) > 0 {
			d.Append(itemset.New(cur...))
		}
		if d.Len() == 0 {
			t.Skip()
		}
		res := must(MineCount(dataset.NewScanner(d), minCount, DefaultOptions()))
		ares := must(apriori.MineCount(dataset.NewScanner(d), minCount, apriori.DefaultOptions()))
		if err := mfi.VerifyAgainst(res.MFS, ares.MFS); err != nil {
			t.Fatalf("disagreement at minCount=%d on %v: %v", minCount, d.Transactions(), err)
		}
		// supports reported for MFS elements are exact
		for i, m := range res.MFS {
			if res.MFSSupports[i] != d.Support(m) {
				t.Fatalf("support(%v) = %d, want %d", m, res.MFSSupports[i], d.Support(m))
			}
		}
		// the pure variant agrees too
		popt := DefaultOptions()
		popt.Pure = true
		pres := must(MineCount(dataset.NewScanner(d), minCount, popt))
		if err := mfi.VerifyAgainst(pres.MFS, ares.MFS); err != nil {
			t.Fatalf("pure variant disagrees at minCount=%d: %v", minCount, err)
		}
	})
}
