package core

import (
	"errors"
	"fmt"

	"pincer/internal/checkpoint"
	"pincer/internal/counting"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
)

// MineResume continues a mine that was interrupted after writing a
// checkpoint: it loads the latest state from opt.Checkpointer, validates it
// against this run's database and threshold, and re-enters the staged run
// loop at the saved pass barrier. With no checkpoint on record it simply
// runs MineCount from scratch — so "mine with -resume" is always safe, even
// when the previous attempt died before the first barrier.
//
// The resume invariant (enforced by the fault-injection suite): for any
// interruption point, resume produces the same MFS, supports, and per-pass
// statistics as an uninterrupted run, because checkpoints are written only
// at pass barriers and every mutation between barriers is replayed from the
// barrier's snapshot.
func MineResume(sc dataset.Scanner, minCount int64, opt Options) (res *mfi.Result, err error) {
	if opt.Checkpointer == nil {
		return nil, errors.New("core: MineResume requires Options.Checkpointer")
	}
	st, err := opt.Checkpointer.Load()
	if err != nil {
		return nil, err
	}
	if st == nil {
		return MineCount(sc, minCount, opt)
	}
	if err := validateState(st, sc, minCount, opt); err != nil {
		return nil, err
	}
	defer mfi.RecoverMiningError(&err)
	m := newMiner(sc, minCount, opt)
	if rerr := m.restore(st); rerr != nil {
		return nil, rerr
	}
	return m.mine()
}

// validateState rejects a checkpoint recorded for a different run: another
// database, support threshold, or algorithm variant.
func validateState(st *checkpoint.State, sc dataset.Scanner, minCount int64, opt Options) error {
	algorithm := "pincer"
	if opt.Algorithm != "" {
		algorithm = opt.Algorithm
	}
	switch {
	case st.Algorithm != algorithm:
		return &checkpoint.MismatchError{Field: "algorithm", Want: algorithm, Got: st.Algorithm}
	case st.MinCount != minCount:
		return &checkpoint.MismatchError{Field: "min count",
			Want: fmt.Sprint(minCount), Got: fmt.Sprint(st.MinCount)}
	case st.NumTransactions != int64(sc.Len()):
		return &checkpoint.MismatchError{Field: "transactions",
			Want: fmt.Sprint(sc.Len()), Got: fmt.Sprint(st.NumTransactions)}
	case st.NumItems != sc.NumItems():
		return &checkpoint.MismatchError{Field: "item universe",
			Want: fmt.Sprint(sc.NumItems()), Got: fmt.Sprint(st.NumItems)}
	}
	return nil
}

// restore rebuilds the miner's pass-barrier state from a checkpoint: the
// staged-loop position, discovered frequent sets and supports, the pass-1/
// pass-2 counting structures backing the support resolver, and the MFCS
// with per-element states.
func (m *miner) restore(st *checkpoint.State) error {
	stage, ok := stageFromName(st.Stage)
	if !ok {
		return &checkpoint.CorruptError{Path: "(state)", Err: fmt.Errorf("unknown stage %q", st.Stage)}
	}
	m.stage = stage
	m.k = st.K
	m.tailNum = st.Tail
	m.lk = st.Lk
	m.removedAny = st.RemovedAny
	m.abandoned = st.Abandoned
	m.allFrequent = st.AllFrequent
	if st.Cache != nil {
		m.cache = st.Cache
	}
	m.itemCounts = st.ItemCounts
	if st.Pairs != nil {
		m.tri = counting.RestoreTriangle(st.Pairs.Universe, st.Pairs.Live, st.Pairs.Counts)
	}
	m.res.Stats = st.Stats

	// l1 is not persisted: it is exactly the frequent items of the pass-1
	// array, which is.
	m.l1 = nil
	for i, c := range m.itemCounts {
		if c >= m.minCount {
			m.l1 = append(m.l1, itemset.Item(i))
		}
	}

	for _, s := range st.MFS {
		m.mfs.add(s)
	}
	if m.abandoned {
		m.mfcs.Replace(nil)
	} else {
		m.mfcs.elems = m.mfcs.elems[:0]
		for _, e := range st.MFCS {
			m.mfcs.elems = append(m.mfcs.elems, &element{
				set:       e.Set,
				bits:      itemset.BitsetOf(m.mfcs.numItems, e.Set),
				state:     elementState(e.State),
				count:     e.Count,
				harvested: e.Harvested,
			})
		}
	}

	// Rebuild the retained frequent-set view from the persisted itemsets
	// and the support cache.
	if m.opt.KeepFrequent {
		for _, f := range m.allFrequent {
			m.res.Frequent.AddWithCount(f, m.cache[f.Key()])
		}
	}
	return nil
}
