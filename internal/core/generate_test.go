package core

import (
	"testing"

	"pincer/internal/itemset"
)

// TestRecoveryPaperExample replays §3.4: MFS = {{1,2,3,4,5}}, surviving
// L_3 = {{2,4,6},{2,5,6},{4,5,6}}; the join yields nothing, and the
// recovery procedure must produce exactly {2,4,5,6}.
func TestRecoveryPaperExample(t *testing.T) {
	mfs := newMFSView(8)
	mfs.add(itemset.New(1, 2, 3, 4, 5))
	l3 := []itemset.Itemset{itemset.New(2, 4, 6), itemset.New(2, 5, 6), itemset.New(4, 5, 6)}

	got := generateCandidates(l3, mfs, 3, true, false)
	if len(got) != 1 || !got[0].Equal(itemset.New(2, 4, 5, 6)) {
		t.Fatalf("candidates = %v, want [{2,4,5,6}]", got)
	}
}

// TestPruneKeepsRecoveredCandidate is the regression test for DESIGN.md §2
// issue 1: the candidate {2,4,5,6} has the 3-subset {2,4,5} which is NOT in
// L_3 (it was removed as a subset of the maximal frequent itemset
// {1,2,3,4,5}); the paper's literal prune would delete it, ours must not.
func TestPruneKeepsRecoveredCandidate(t *testing.T) {
	mfs := newMFSView(8)
	mfs.add(itemset.New(1, 2, 3, 4, 5))
	ps := &pruneState{
		lk:  itemset.SetOf(itemset.New(2, 4, 6), itemset.New(2, 5, 6), itemset.New(4, 5, 6)),
		mfs: mfs,
	}
	if !ps.keepCandidate(itemset.New(2, 4, 5, 6)) {
		t.Fatal("recovered candidate pruned: the literal paper prune bug")
	}
	// a candidate fully inside the MFS element is known frequent: pruned
	if ps.keepCandidate(itemset.New(2, 3, 4, 5)) {
		t.Fatal("subset of MFS element not pruned")
	}
	// a candidate with a genuinely infrequent subset is pruned
	if ps.keepCandidate(itemset.New(2, 4, 6, 7)) {
		t.Fatal("candidate with infrequent subset {2,4,7} kept")
	}
}

func TestGenerateWithoutRemovalsMatchesAprioriGen(t *testing.T) {
	// With nothing removed from L_k, generation must reduce to Apriori-gen.
	lk := []itemset.Itemset{
		itemset.New(1, 2, 3), itemset.New(1, 2, 4), itemset.New(1, 3, 4),
		itemset.New(1, 3, 5), itemset.New(2, 3, 4),
	}
	got := generateCandidates(lk, newMFSView(8), 3, false, false)
	if len(got) != 1 || !got[0].Equal(itemset.New(1, 2, 3, 4)) {
		t.Fatalf("candidates = %v, want [{1,2,3,4}]", got)
	}
}

func TestGenerateDisableRecovery(t *testing.T) {
	mfs := newMFSView(8)
	mfs.add(itemset.New(1, 2, 3, 4, 5))
	l3 := []itemset.Itemset{itemset.New(2, 4, 6), itemset.New(2, 5, 6), itemset.New(4, 5, 6)}
	got := generateCandidates(l3, mfs, 3, true, true)
	if len(got) != 0 {
		t.Fatalf("recovery disabled but candidates = %v", got)
	}
}

func TestRecoverySkipsShortMFSElements(t *testing.T) {
	// Elements of length ≤ k contribute no k-subsets with a (k-1)-prefix
	// plus an extra item.
	mfs := newMFSView(8)
	mfs.add(itemset.New(1, 2, 3))
	var got []itemset.Itemset
	recoverCandidates([]itemset.Itemset{itemset.New(1, 2, 7)}, mfs, 3, func(c itemset.Itemset) {
		got = append(got, c)
	})
	if len(got) != 0 {
		t.Fatalf("recovered %v from a too-short MFS element", got)
	}
}

func TestRecoveryPassOneIsNoop(t *testing.T) {
	mfs := newMFSView(8)
	mfs.add(itemset.New(1, 2, 3))
	called := false
	recoverCandidates([]itemset.Itemset{itemset.New(5)}, mfs, 1, func(itemset.Itemset) { called = true })
	if called {
		t.Fatal("recovery ran at pass 1")
	}
}

func TestRecoveryMultipleElements(t *testing.T) {
	// Y={2,4,6}: against X1={1,2,3,4,5} recovers {2,4,5,6};
	// against X2={2,4,7,8} recovers {2,4,6,7} and {2,4,6,8}.
	mfs := newMFSView(10)
	mfs.add(itemset.New(1, 2, 3, 4, 5))
	mfs.add(itemset.New(2, 4, 7, 8))
	var got []itemset.Itemset
	recoverCandidates([]itemset.Itemset{itemset.New(2, 4, 6)}, mfs, 3, func(c itemset.Itemset) {
		got = append(got, c.Clone())
	})
	itemset.SortItemsets(got)
	want := []itemset.Itemset{itemset.New(2, 4, 5, 6), itemset.New(2, 4, 6, 7), itemset.New(2, 4, 6, 8)}
	if len(got) != len(want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("recovered[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMFSViewDedupAndQueries(t *testing.T) {
	v := newMFSView(8)
	if !v.add(itemset.New(1, 2)) {
		t.Fatal("first add failed")
	}
	if v.add(itemset.New(1, 2)) {
		t.Fatal("exact duplicate accepted")
	}
	if !v.add(itemset.New(1, 2, 3)) {
		t.Fatal("second add failed")
	}
	if v.len() != 2 {
		t.Fatalf("len = %d, want 2 (lazy antichain keeps both)", v.len())
	}
	if !v.containsSuperset(itemset.New(2, 3)) {
		t.Fatal("containsSuperset({2,3}) = false")
	}
	if !v.containsSuperset(itemset.New(1, 2)) {
		t.Fatal("containsSuperset({1,2}) = false")
	}
	if v.containsSuperset(itemset.New(4)) {
		t.Fatal("containsSuperset({4}) = true")
	}
	if v.containsSuperset(itemset.New(1, 2, 3, 4)) {
		t.Fatal("containsSuperset of a strict superset = true")
	}
}
