// Package core implements the paper's contribution: the Pincer-Search
// algorithm for discovering the maximum frequent set, built around the
// maximum-frequent-candidate-set (MFCS) data structure.
//
// MFCS (paper Definition 1) is the minimum-cardinality antichain of itemsets
// whose subset-closure contains every itemset known to be frequent and no
// itemset known to be infrequent. It is the frontier of the top-down search:
// whenever the bottom-up search discovers an infrequent itemset, MFCS-gen
// pushes the frontier down (possibly many levels in one pass); whenever an
// MFCS element is counted and found frequent, it is — by the antichain
// property — a maximal frequent itemset.
package core

import (
	"pincer/internal/itemset"
)

// elementState classifies an MFCS element's support knowledge.
type elementState uint8

const (
	stateUncounted  elementState = iota // support not yet determined
	stateFrequent                       // counted (or resolved) at ≥ minCount: a maximal frequent itemset
	stateInfrequent                     // counted (or resolved) below minCount
)

// element is one MFCS member, kept in both sparse and dense form: the
// sorted itemset drives candidate generation and trie counting, the bitset
// drives the subset tests that dominate MFCS-gen.
type element struct {
	set       itemset.Itemset
	bits      *itemset.Bitset
	state     elementState
	count     int64
	harvested bool // already moved into the MFS by the miner
}

// SupportResolver reports a known support count for an itemset, if any.
// The miner backs it with the pass-1 item array, the pass-2 triangle, and a
// cache of every candidate counted so far, so that MFCS elements whose
// support is already implied are never recounted.
type SupportResolver func(itemset.Itemset) (int64, bool)

// MFCS is the maximum frequent candidate set.
type MFCS struct {
	numItems int
	minCount int64
	resolve  SupportResolver
	elems    []*element
	// cap bounds the number of elements; 0 means unlimited. Exceeding it
	// marks the structure exploded, which the adaptive miner treats as the
	// signal to abandon MFCS maintenance (paper §3.5).
	cap      int
	exploded bool
}

// NewMFCS builds the initial MFCS containing the single element {0,…,n-1}
// over the whole item universe (paper §3.5 line 3).
func NewMFCS(numItems int, minCount int64, cap int, resolve SupportResolver) *MFCS {
	m := &MFCS{numItems: numItems, minCount: minCount, cap: cap, resolve: resolve}
	if resolve == nil {
		m.resolve = func(itemset.Itemset) (int64, bool) { return 0, false }
	}
	universe := itemset.Range(0, itemset.Item(numItems))
	if len(universe) > 0 {
		m.elems = append(m.elems, m.newElement(universe))
	}
	return m
}

// newElement wraps an itemset, resolving its state if the support is
// already known.
func (m *MFCS) newElement(s itemset.Itemset) *element {
	e := &element{set: s, bits: itemset.BitsetOf(m.numItems, s)}
	if c, ok := m.resolve(s); ok {
		e.count = c
		if c >= m.minCount {
			e.state = stateFrequent
		} else {
			e.state = stateInfrequent
		}
	}
	return e
}

// Len returns the number of elements.
func (m *MFCS) Len() int { return len(m.elems) }

// Exploded reports whether a cap was exceeded; once true the structure is
// frozen and the adaptive miner falls back to pure bottom-up search.
func (m *MFCS) Exploded() bool { return m.exploded }

// Elements returns the current elements' itemsets (for inspection/tests).
func (m *MFCS) Elements() []itemset.Itemset {
	out := make([]itemset.Itemset, len(m.elems))
	for i, e := range m.elems {
		out[i] = e.set
	}
	return out
}

// Uncounted returns the elements whose support is not yet known.
func (m *MFCS) Uncounted() []*element {
	var out []*element
	for _, e := range m.elems {
		if e.state == stateUncounted {
			out = append(out, e)
		}
	}
	return out
}

// Infrequent returns the elements known to be infrequent (they linger until
// a bottom-up infrequent subset splits them, or the tail phase splits them
// by themselves — see the package documentation of the miner).
func (m *MFCS) Infrequent() []*element {
	var out []*element
	for _, e := range m.elems {
		if e.state == stateInfrequent {
			out = append(out, e)
		}
	}
	return out
}

// FrequentElements returns the elements known to be frequent: by the
// antichain property these are exactly the maximal frequent itemsets
// discovered via the top-down search.
func (m *MFCS) FrequentElements() []itemset.Itemset {
	var out []itemset.Itemset
	for _, e := range m.elems {
		if e.state == stateFrequent {
			out = append(out, e.set)
		}
	}
	return out
}

// CoversAllFrequent reports whether x is a subset of some element — the
// Definition-1 invariant that every (actually) frequent itemset remains
// covered throughout the run. Exposed for tests.
func (m *MFCS) Covers(x itemset.Itemset) bool {
	xb := itemset.BitsetOf(m.numItems, x)
	for _, e := range m.elems {
		if xb.IsSubsetOf(e.bits) {
			return true
		}
	}
	return false
}

// add inserts a candidate element unless it is a subset of an existing
// element, and removes existing elements that are subsets of it, keeping
// the antichain invariant unconditionally. It returns whether the element
// was inserted.
func (m *MFCS) add(s itemset.Itemset) bool {
	if len(s) == 0 {
		return false
	}
	sb := itemset.BitsetOf(m.numItems, s)
	for _, e := range m.elems {
		if sb.IsSubsetOf(e.bits) {
			return false // already covered by an existing element
		}
	}
	// No dominator exists, so drop any elements the newcomer dominates.
	// (Both relations cannot hold across distinct elements: that would make
	// one existing element a subset of another, violating the antichain.)
	keep := m.elems[:0]
	for _, e := range m.elems {
		if !e.bits.IsSubsetOf(sb) {
			keep = append(keep, e)
		}
	}
	m.elems = keep
	e := &element{set: s, bits: sb}
	if c, ok := m.resolve(s); ok {
		e.count = c
		if c >= m.minCount {
			e.state = stateFrequent
		} else {
			e.state = stateInfrequent
		}
	}
	m.elems = append(m.elems, e)
	if m.cap > 0 && len(m.elems) > m.cap {
		m.exploded = true
	}
	return true
}

// Split applies one MFCS-gen step (paper §3.2): every element containing
// the newly discovered infrequent itemset s is replaced by the elements
// obtained by deleting one item of s, each kept only if not already covered.
func (m *MFCS) Split(s itemset.Itemset) {
	if m.exploded || len(s) == 0 {
		return
	}
	sb := itemset.BitsetOf(m.numItems, s)
	var hit []*element
	keep := m.elems[:0]
	for _, e := range m.elems {
		if sb.IsSubsetOf(e.bits) {
			hit = append(hit, e)
		} else {
			keep = append(keep, e)
		}
	}
	if len(hit) == 0 {
		return
	}
	m.elems = keep
	for _, e := range hit {
		for _, item := range s {
			m.add(e.set.Without(item))
			if m.exploded {
				return
			}
		}
	}
}

// Update runs MFCS-gen for a batch of newly discovered infrequent itemsets
// (the S_k of a pass). It returns false if the structure exploded past its
// cap mid-update.
func (m *MFCS) Update(infrequent []itemset.Itemset) bool {
	for _, s := range infrequent {
		m.Split(s)
		if m.exploded {
			return false
		}
	}
	return true
}

// SplitSelf replaces an infrequent element by its |X| maximal proper
// subsets — the one-level top-down step used by the tail phase to classify
// elements the bottom-up search never reached.
func (m *MFCS) SplitSelf(e *element) {
	if m.exploded {
		return
	}
	for i, x := range m.elems {
		if x == e {
			m.elems = append(m.elems[:i], m.elems[i+1:]...)
			break
		}
	}
	for i := range e.set {
		m.add(e.set.WithoutIndex(i))
		if m.exploded {
			return
		}
	}
}

// Replace substitutes the whole element list (used by the pass-2 batch
// rebuild). The caller guarantees the sets form an antichain consistent
// with the known frequent/infrequent itemsets.
func (m *MFCS) Replace(sets []itemset.Itemset) {
	m.elems = m.elems[:0]
	for _, s := range sets {
		if len(s) == 0 {
			continue
		}
		m.elems = append(m.elems, m.newElement(s))
	}
	if m.cap > 0 && len(m.elems) > m.cap {
		m.exploded = true
	}
}

// markCounted records a counted support for an element.
func (e *element) markCounted(count, minCount int64) {
	e.count = count
	if count >= minCount {
		e.state = stateFrequent
	} else {
		e.state = stateInfrequent
	}
}
