package core

import (
	"testing"

	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
	"pincer/internal/quest"
)

// seedWorkloads are small synthetic databases whose MFS a warm-started run
// must reproduce byte-identically regardless of what it was seeded with.
func seedWorkloads(t *testing.T) []*dataset.Dataset {
	t.Helper()
	return []*dataset.Dataset{
		figure2Dataset(),
		quest.Generate(quest.Params{NumTransactions: 300, AvgTxLen: 12,
			AvgPatternLen: 6, NumPatterns: 12, NumItems: 50, Seed: 7}),
		quest.Generate(quest.Params{NumTransactions: 400, AvgTxLen: 8,
			AvgPatternLen: 3, NumPatterns: 60, NumItems: 90, Seed: 8}),
	}
}

// TestSeedMFSExact pins the warm-start soundness contract: seeding a run
// with any subcollection of genuinely frequent itemsets — maximal sets,
// non-maximal subsets, or nothing relevant at all — changes neither the MFS
// nor the supports.
func TestSeedMFSExact(t *testing.T) {
	for wi, d := range seedWorkloads(t) {
		minCount := d.MinCount(0.1)
		ref := must(MineCount(dataset.NewScanner(d), minCount, DefaultOptions()))

		seedSets := [][]itemset.Itemset{
			ref.MFS,          // the exact answer
			ref.MFS[:1],      // one surviving maximal set
			{ref.MFS[0][:1]}, // a non-maximal frequent subset
		}
		if len(ref.MFS) == 0 {
			t.Fatalf("workload %d: reference MFS empty, test is vacuous", wi)
		}
		for si, seeds := range seedSets {
			opt := DefaultOptions()
			opt.SeedMFS = seeds
			opt.SeedSupports = make([]int64, len(seeds))
			for i, s := range seeds {
				opt.SeedSupports[i] = d.Support(s)
			}
			res := must(MineCount(dataset.NewScanner(d), minCount, opt))
			if err := mfi.VerifyAgainst(res.MFS, ref.MFS); err != nil {
				t.Fatalf("workload %d seeds %d: %v", wi, si, err)
			}
			for i, m := range res.MFS {
				if res.MFSSupports[i] != ref.MFSSupports[i] {
					t.Fatalf("workload %d seeds %d: support(%v) = %d, want %d",
						wi, si, m, res.MFSSupports[i], ref.MFSSupports[i])
				}
			}
		}
	}
}

// TestSeedMFSNoEarlyExit covers the pass-1 early-exit guard: seeds covering
// every frequent item must not end the run after one pass, because two
// seeds can cover all items while missing a maximal set straddling them.
func TestSeedMFSNoEarlyExit(t *testing.T) {
	// Items {0,1} and {2,3} are each always together; {1,2} is also
	// frequent, so the MFS is {01, 12, 23} — but the seeds {01, 23} already
	// cover every frequent item.
	d := dataset.Empty(4)
	for i := 0; i < 3; i++ {
		d.Append(itemset.New(0, 1))
		d.Append(itemset.New(2, 3))
		d.Append(itemset.New(1, 2))
	}
	d.Append(itemset.New(0, 1, 2, 3)) // supports: pairs 01,23,12 = 4 each
	minCount := int64(4)
	ref := must(MineCount(dataset.NewScanner(d), minCount, DefaultOptions()))
	want := []itemset.Itemset{itemset.New(0, 1), itemset.New(1, 2), itemset.New(2, 3)}
	if err := mfi.VerifyAgainst(ref.MFS, want); err != nil {
		t.Fatalf("reference: %v (got %v)", err, ref.MFS)
	}

	opt := DefaultOptions()
	opt.SeedMFS = []itemset.Itemset{itemset.New(0, 1), itemset.New(2, 3)}
	opt.SeedSupports = []int64{d.Support(opt.SeedMFS[0]), d.Support(opt.SeedMFS[1])}
	res := must(MineCount(dataset.NewScanner(d), minCount, opt))
	if err := mfi.VerifyAgainst(res.MFS, want); err != nil {
		t.Fatalf("seeded run missed a straddling maximal set: %v (got %v)", err, res.MFS)
	}
}

// TestSeedMFSScanCounter exercises the exported scan-counter constructor on
// the same seam the miner uses by default.
func TestSeedMFSScanCounter(t *testing.T) {
	d := figure2Dataset()
	opt := DefaultOptions()
	opt.Counter = NewScanCounter(dataset.NewScanner(d))
	res := must(MineCount(dataset.NewScanner(d), 2, opt))
	want := []itemset.Itemset{itemset.New(1, 2, 3, 4, 5), itemset.New(2, 4, 5, 6)}
	if err := mfi.VerifyAgainst(res.MFS, want); err != nil {
		t.Fatalf("MFS: %v", err)
	}
}
