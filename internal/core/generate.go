package core

import (
	"pincer/internal/apriori"
	"pincer/internal/itemset"
)

// mfsView is the read-side of the discovered maximal frequent itemsets the
// candidate generator needs: subset tests against MFS elements.
//
// The collection is a *lazy* antichain: harvested MFCS elements are almost
// always pairwise incomparable already (frequent MFCS elements are maximal
// and the MFCS is an antichain), so add only rejects exact duplicates in
// O(1) instead of running subset tests against every entry — with many
// thousands of maximal itemsets the eager variant turns harvesting
// quadratic. Rare comparable pairs (possible only across a pass-2 batch
// rebuild) are harmless: containsSuperset answers identically, and the
// miner's finish() runs a final MaximalOnly.
type mfsView struct {
	numItems int
	sets     []itemset.Itemset
	bits     []*itemset.Bitset
	keys     map[string]bool
}

func newMFSView(numItems int) *mfsView {
	return &mfsView{numItems: numItems, keys: make(map[string]bool)}
}

// add records a new maximal frequent itemset; exact duplicates are ignored.
func (v *mfsView) add(s itemset.Itemset) bool {
	k := s.Key()
	if v.keys[k] {
		return false
	}
	v.keys[k] = true
	v.sets = append(v.sets, s)
	v.bits = append(v.bits, itemset.BitsetOf(v.numItems, s))
	return true
}

// containsSuperset reports whether x is a subset of some MFS element —
// Observation 2: x is then known frequent and need not be examined.
func (v *mfsView) containsSuperset(x itemset.Itemset) bool {
	xb := itemset.BitsetOf(v.numItems, x)
	return v.containsSupersetBits(xb)
}

func (v *mfsView) containsSupersetBits(xb *itemset.Bitset) bool {
	for _, b := range v.bits {
		if xb.IsSubsetOf(b) {
			return true
		}
	}
	return false
}

func (v *mfsView) len() int { return len(v.sets) }

// recover implements the paper's recovery procedure (§3.4). After subsets
// of MFS elements are removed from L_k, the plain join can miss candidates;
// for each surviving Y ∈ L_k and each MFS element X longer than k whose
// items include Y's (k-1)-prefix, the k-subsets of X sharing that prefix
// are reconstructed and joined with Y, i.e. the candidates Y ∪ {x_i} for
// every item x_i of X past the prefix.
func recoverCandidates(lk []itemset.Itemset, mfs *mfsView, k int, emit func(itemset.Itemset)) {
	if k < 2 {
		// Pass 1 never needs recovery: pass 2 counts all pairs of frequent
		// items without candidate generation (§4.1.1).
		return
	}
	for _, y := range lk {
		prefix := y[:k-1]
		last := y[k-1]
		for _, x := range mfs.sets {
			if len(x) <= k {
				continue
			}
			if !prefix.IsSubsetOf(x) {
				continue
			}
			j := x.IndexOf(prefix[len(prefix)-1])
			for idx := j + 1; idx < len(x); idx++ {
				if x[idx] == last {
					continue
				}
				emit(y.With(x[idx]))
			}
		}
	}
}

// pruneState carries what the new prune procedure consults.
type pruneState struct {
	lk  *itemset.Set // surviving frequent k-itemsets
	mfs *mfsView
}

// keepCandidate applies the paper's new prune procedure (§3.4) with the
// correction described in DESIGN.md §2: a candidate is dropped if it is a
// subset of an MFS element (known frequent — Observation 2), or if one of
// its k-subsets is infrequent. Because L_k has had subsets of MFS elements
// removed, "k-subset is frequent" must be tested as "in L_k OR a subset of
// an MFS element"; the paper's literal line 6 (∉ L_k alone) would delete
// the very candidates the recovery procedure restores — including the
// paper's own §3.4 example {2,4,5,6}, whose 3-subset {2,4,5} was removed
// from L_3 as a subset of the maximal frequent itemset {1,2,3,4,5}.
func (p *pruneState) keepCandidate(c itemset.Itemset) bool {
	if p.mfs.containsSuperset(c) {
		return false
	}
	keep := true
	c.Facets(func(f itemset.Itemset) {
		if !keep {
			return
		}
		if p.lk.Contains(f) {
			return
		}
		if p.mfs.containsSuperset(f) {
			return
		}
		keep = false
	})
	return keep
}

// generateCandidates produces C_{k+1} from the surviving L_k: the
// Apriori-gen join, the recovery procedure (when anything was removed from
// L_k), and the new prune (paper §3.4's three steps).
func generateCandidates(lk []itemset.Itemset, mfs *mfsView, k int, removedAny, disableRecovery bool) []itemset.Itemset {
	itemset.SortItemsets(lk)
	seen := itemset.NewSet(0)
	var raw []itemset.Itemset
	for _, c := range apriori.Join(lk) {
		if !seen.Contains(c) {
			seen.Add(c)
			raw = append(raw, c)
		}
	}
	if removedAny && !disableRecovery {
		recoverCandidates(lk, mfs, k, func(c itemset.Itemset) {
			if !seen.Contains(c) {
				seen.Add(c)
				raw = append(raw, c)
			}
		})
	}
	ps := &pruneState{lk: itemset.SetOf(lk...), mfs: mfs}
	out := raw[:0]
	for _, c := range raw {
		if ps.keepCandidate(c) {
			out = append(out, c)
		}
	}
	itemset.SortItemsets(out)
	return out
}
