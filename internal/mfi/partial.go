package mfi

import (
	"context"
	"fmt"

	"pincer/internal/counting"
	"pincer/internal/itemset"
)

// Abort reasons, recorded on PartialResultError.Reason. They name which
// cancellation point or resource budget ended the run early.
const (
	// ReasonCancelled: the run's context was cancelled.
	ReasonCancelled = "cancelled"
	// ReasonDeadline: the context deadline (or Options.Deadline) expired.
	ReasonDeadline = "deadline"
	// ReasonMaxPasses: the total-pass budget was exhausted.
	ReasonMaxPasses = "max-passes"
	// ReasonMaxCandidates: a pass exceeded the per-pass candidate budget.
	ReasonMaxCandidates = "max-candidates"
	// ReasonMemory: the approximate heap ceiling was exceeded.
	ReasonMemory = "memory-budget"
	// ReasonCheckpoint: writing a checkpoint failed; the run stops rather
	// than silently continuing without durability.
	ReasonCheckpoint = "checkpoint-failure"
)

// PartialResultError is returned by the miners when a run is cut short by
// context cancellation or a resource budget. Pincer-Search is an anytime
// algorithm: at every pass the frequent itemsets found so far are a lower
// bound on the maximum frequent set and the MFCS is an upper bound, so
// instead of discarding the work the error carries the best-so-far result.
type PartialResultError struct {
	// Result is the anytime result at the abort point: MFS holds the
	// maximal itemsets among the frequent itemsets explicitly discovered so
	// far (a lower bound on the true MFS — every element is a subset of a
	// true maximal frequent itemset), with supports and the pass statistics
	// accumulated up to the abort.
	Result *Result
	// MFCS is the current top-down frontier, an upper bound on the MFS:
	// every frequent itemset of the database is a subset of some element.
	// It is nil when the miner maintains no frontier (Apriori) or had
	// abandoned it (the adaptive fallback), in which case no upper bound is
	// available.
	MFCS []itemset.Itemset
	// Pass is the number of completed database passes.
	Pass int
	// Reason names the cancellation point or budget (Reason* constants).
	Reason string
	// Cause is the underlying error (e.g. context.Canceled), if any.
	Cause error
}

// Error implements error.
func (e *PartialResultError) Error() string {
	msg := fmt.Sprintf("mining aborted (%s) after %d passes: partial result with %d maximal frequent itemsets",
		e.Reason, e.Pass, len(e.Result.MFS))
	if e.Cause != nil {
		msg += ": " + e.Cause.Error()
	}
	return msg
}

// Unwrap exposes the underlying cause (so errors.Is(err, context.Canceled)
// works across the mining boundary).
func (e *PartialResultError) Unwrap() error { return e.Cause }

// Abort is the panic sentinel raised at cancellation and budget points —
// inside scan loops, in counting workers, and at pass boundaries. The
// mining entry points recover it (also when wrapped in a WorkerPanic from a
// counting goroutine) and convert it into a *PartialResultError carrying
// the miner's best-so-far state.
type Abort struct {
	Reason string
	Cause  error
}

// Error implements error.
func (a *Abort) Error() string {
	if a.Cause != nil {
		return fmt.Sprintf("mining aborted (%s): %v", a.Reason, a.Cause)
	}
	return fmt.Sprintf("mining aborted (%s)", a.Reason)
}

// Unwrap exposes the cause.
func (a *Abort) Unwrap() error { return a.Cause }

// NewAbort builds the Abort for a context error, classifying deadline
// expiry separately from explicit cancellation.
func NewAbort(ctxErr error) *Abort {
	reason := ReasonCancelled
	if ctxErr == context.DeadlineExceeded {
		reason = ReasonDeadline
	}
	return &Abort{Reason: reason, Cause: ctxErr}
}

// AbortFrom extracts the Abort sentinel from a recovered panic value: the
// sentinel itself, the counting layer's Canceled sentinel (which cannot
// import this package), or either captured inside a counting worker and
// re-raised wrapped in a WorkerPanic. It returns nil for any other panic.
func AbortFrom(r interface{}) *Abort {
	switch v := r.(type) {
	case *Abort:
		return v
	case *counting.Canceled:
		return NewAbort(v.Err)
	case *WorkerPanic:
		if ab, ok := v.Value.(*Abort); ok {
			return ab
		}
		if c, ok := v.Value.(*counting.Canceled); ok {
			return NewAbort(c.Err)
		}
	}
	return nil
}

// DefaultCancelCheckEvery is the number of transactions between context
// checks inside a scan loop when the mining options don't override it.
const DefaultCancelCheckEvery = 1024

// ScanGuard checks a context every N transactions inside a scan loop and
// raises the Abort sentinel when it is cancelled, bounding cancellation
// latency to a fraction of a pass instead of a whole one. A nil guard is
// valid and free: NewScanGuard returns nil for uncancellable contexts, and
// Tick on a nil receiver is a no-op, so unbudgeted runs pay a single
// pointer test per transaction at most.
//
// A guard is not safe for concurrent use; parallel counters create one per
// worker.
type ScanGuard struct {
	ctx   context.Context
	every int
	n     int
}

// NewScanGuard builds a guard for ctx, checking every `every` transactions
// (≤ 0 means DefaultCancelCheckEvery). It returns nil when ctx is nil or
// can never be cancelled.
func NewScanGuard(ctx context.Context, every int) *ScanGuard {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	if every <= 0 {
		every = DefaultCancelCheckEvery
	}
	return &ScanGuard{ctx: ctx, every: every}
}

// Tick registers one transaction, panicking with an Abort if the context
// was cancelled and a check is due.
func (g *ScanGuard) Tick() {
	if g == nil {
		return
	}
	g.n++
	if g.n < g.every {
		return
	}
	g.n = 0
	if err := g.ctx.Err(); err != nil {
		panic(NewAbort(err))
	}
}

// CheckContext raises the Abort sentinel if ctx is non-nil and cancelled —
// the pass-boundary check.
func CheckContext(ctx context.Context) {
	if ctx == nil {
		return
	}
	if err := ctx.Err(); err != nil {
		panic(NewAbort(err))
	}
}
