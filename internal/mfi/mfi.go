// Package mfi holds the shared vocabulary of the mining algorithms: the
// Result and Stats types every miner returns, and utilities on the maximum
// frequent set (MFS) — expansion to the full frequent set, negative-border
// computation, and result verification.
package mfi

import (
	"fmt"
	"sort"
	"time"

	"pincer/internal/dataset"
	"pincer/internal/itemset"
)

// PassStats records one database pass.
type PassStats struct {
	Pass           int // 1-based pass number
	Candidates     int // bottom-up candidates whose support was counted
	MFCSCandidates int // MFCS elements whose support was counted (Pincer only)
	Frequent       int // frequent itemsets discovered among the candidates
	MFSFound       int // maximal frequent itemsets established this pass
}

// Stats aggregates a mining run. The Candidates field follows the paper's
// accounting (§4.1.1): candidates counted in passes 1 and 2 are excluded
// (both algorithms count them in flat arrays), and the MFCS candidates of
// Pincer-Search are included.
type Stats struct {
	Algorithm      string
	Passes         int           // number of database reads
	Candidates     int64         // paper metric: passes ≥3 bottom-up + all MFCS candidates
	CandidatesAll  int64         // every candidate, including passes 1-2
	MFCSCandidates int64         // MFCS elements counted (subset of Candidates)
	PassDetails    []PassStats   // one entry per pass
	FrequentCount  int64         // frequent itemsets explicitly discovered
	Duration       time.Duration // wall-clock mining time
	AdaptiveOff    bool          // Pincer only: adaptive policy abandoned the MFCS
	TailPasses     int           // Pincer only: MFCS-only passes after C_k was exhausted
}

// AddPass appends a pass record and folds it into the aggregates.
func (s *Stats) AddPass(p PassStats) {
	s.Passes++
	p.Pass = s.Passes
	s.PassDetails = append(s.PassDetails, p)
	s.CandidatesAll += int64(p.Candidates) + int64(p.MFCSCandidates)
	s.MFCSCandidates += int64(p.MFCSCandidates)
	if p.Pass > 2 {
		s.Candidates += int64(p.Candidates)
	}
	s.Candidates += int64(p.MFCSCandidates)
	s.FrequentCount += int64(p.Frequent)
}

// String gives a one-line summary.
func (s *Stats) String() string {
	return fmt.Sprintf("%s: passes=%d candidates=%d (all=%d, mfcs=%d) frequent=%d time=%v",
		s.Algorithm, s.Passes, s.Candidates, s.CandidatesAll, s.MFCSCandidates, s.FrequentCount, s.Duration)
}

// Result is the output of a mining run.
type Result struct {
	// MFS is the maximum frequent set: all maximal frequent itemsets in
	// lexicographic order. It uniquely determines the frequent set.
	MFS []itemset.Itemset
	// MFSSupports holds the support count of each MFS element, parallel to
	// MFS.
	MFSSupports []int64
	// Frequent holds every explicitly discovered frequent itemset with its
	// support count. For Apriori this is the complete frequent set; for
	// Pincer-Search it holds only the itemsets the algorithm had to examine
	// (the point of the algorithm is that this can be far smaller).
	Frequent *itemset.Set
	// MinCount is the absolute support threshold used.
	MinCount int64
	// NumTransactions is |D|.
	NumTransactions int
	// Stats describes the run.
	Stats Stats
}

// SupportOf returns the support count of x if the run determined it
// (explicitly or as an MFS element), and whether it did.
func (r *Result) SupportOf(x itemset.Itemset) (int64, bool) {
	if r.Frequent != nil {
		if c, ok := r.Frequent.Count(x); ok {
			return c, true
		}
	}
	for i, m := range r.MFS {
		if x.Equal(m) {
			return r.MFSSupports[i], true
		}
	}
	return 0, false
}

// IsFrequent reports whether x is frequent according to the run's MFS
// (x frequent ⇔ x ⊆ some maximal frequent itemset).
func (r *Result) IsFrequent(x itemset.Itemset) bool {
	for _, m := range r.MFS {
		if x.IsSubsetOf(m) {
			return true
		}
	}
	return false
}

// LongestMFS returns the length of the longest maximal frequent itemset.
func (r *Result) LongestMFS() int {
	best := 0
	for _, m := range r.MFS {
		if len(m) > best {
			best = len(m)
		}
	}
	return best
}

// Expand enumerates every non-empty frequent itemset implied by an MFS:
// the union of the non-empty subset lattices of its elements, without
// duplicates, in lexicographic order. The output is exponential in the
// length of the longest element; callers mining long maximal itemsets
// should cap it via maxLen (0 means no cap).
func Expand(mfs []itemset.Itemset, maxLen int) []itemset.Itemset {
	seen := make(map[string]bool)
	var out []itemset.Itemset
	for _, m := range mfs {
		top := len(m)
		if maxLen > 0 && maxLen < top {
			top = maxLen
		}
		for k := 1; k <= top; k++ {
			m.EachSubsetOfSize(k, func(x itemset.Itemset) {
				key := x.Key()
				if !seen[key] {
					seen[key] = true
					out = append(out, x.Clone())
				}
			})
		}
	}
	itemset.SortItemsets(out)
	return out
}

// CountFrequent returns the number of distinct frequent itemsets implied by
// an MFS without materializing them, via inclusion–exclusion over element
// intersections. It is exact but exponential in |mfs|; for |mfs| > 20 it
// falls back to Expand-based counting, which is instead exponential in the
// element lengths.
func CountFrequent(mfs []itemset.Itemset) int64 {
	mfs = itemset.MaximalOnly(mfs)
	if len(mfs) == 0 {
		return 0
	}
	if len(mfs) > 20 {
		return int64(len(Expand(mfs, 0)))
	}
	// inclusion–exclusion: |∪ 2^Mi| counting non-empty subsets
	var total int64
	n := len(mfs)
	for mask := 1; mask < 1<<n; mask++ {
		var inter itemset.Itemset
		first := true
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			if first {
				inter = mfs[i]
				first = false
			} else {
				inter = inter.Intersect(mfs[i])
			}
			if len(inter) == 0 {
				break
			}
		}
		sub := int64(1)<<len(inter) - 1 // non-empty subsets of the intersection
		if popcount(mask)%2 == 1 {
			total += sub
		} else {
			total -= sub
		}
	}
	return total
}

func popcount(v int) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}

// NegativeBorder computes the minimal infrequent itemsets relative to a
// downward-closed frequent collection: every itemset not in the collection
// all of whose facets (maximal proper subsets) are. universe is the full
// item universe; frequent must contain exactly the frequent itemsets
// (e.g. Expand of an MFS). This is the border of Mannila & Toivonen used by
// the Sampling algorithm.
func NegativeBorder(universe itemset.Itemset, frequent []itemset.Itemset) []itemset.Itemset {
	freq := itemset.NewSet(len(frequent))
	byLen := make(map[int][]itemset.Itemset)
	for _, f := range frequent {
		freq.Add(f)
		byLen[len(f)] = append(byLen[len(f)], f)
	}
	var border []itemset.Itemset
	// size-1 border: items not frequent
	for _, it := range universe {
		if !freq.Contains(itemset.Itemset{it}) {
			border = append(border, itemset.Itemset{it})
		}
	}
	// size k+1 border: joins of frequent k-itemsets, not frequent, all
	// facets frequent. Any border itemset of size ≥ 2 has all its facets
	// frequent, in particular the two sharing its (k-1)-prefix, so the
	// prefix join generates it.
	lengths := make([]int, 0, len(byLen))
	for k := range byLen {
		lengths = append(lengths, k)
	}
	sort.Ints(lengths)
	seen := itemset.NewSet(0)
	for _, k := range lengths {
		level := byLen[k]
		itemset.SortItemsets(level)
		for i := 0; i < len(level); i++ {
			for j := i + 1; j < len(level); j++ {
				if !itemset.SamePrefix(level[i], level[j], k-1) {
					break
				}
				cand := level[i].Union(level[j])
				if freq.Contains(cand) || seen.Contains(cand) {
					continue
				}
				ok := true
				cand.Facets(func(f itemset.Itemset) {
					if ok && !freq.Contains(f) {
						ok = false
					}
				})
				if ok {
					seen.Add(cand)
					border = append(border, cand.Clone())
				}
			}
		}
	}
	itemset.SortItemsets(border)
	return border
}

// Verify checks a claimed MFS against a dataset by direct counting:
// every element must be frequent, no element may be extendable by any item
// without dropping below the threshold, and the collection must be an
// antichain. It does not prove completeness (that no maximal itemset is
// missing); use VerifyAgainst with a reference result for that.
func Verify(d *dataset.Dataset, minCount int64, mfs []itemset.Itemset) error {
	if !itemset.IsAntichain(mfs) {
		return fmt.Errorf("mfi: MFS is not an antichain")
	}
	universe := d.PresentItems()
	for _, m := range mfs {
		if got := d.Support(m); got < minCount {
			return fmt.Errorf("mfi: claimed maximal itemset %v has support %d < %d", m, got, minCount)
		}
		for _, it := range universe {
			if m.Contains(it) {
				continue
			}
			ext := m.With(it)
			if got := d.Support(ext); got >= minCount {
				return fmt.Errorf("mfi: %v is not maximal: %v has support %d ≥ %d", m, ext, got, minCount)
			}
		}
	}
	return nil
}

// VerifyAgainst checks that two MFS collections are identical (order
// insensitive).
func VerifyAgainst(got, want []itemset.Itemset) error {
	g := append([]itemset.Itemset(nil), got...)
	w := append([]itemset.Itemset(nil), want...)
	itemset.SortItemsets(g)
	itemset.SortItemsets(w)
	if len(g) != len(w) {
		return fmt.Errorf("mfi: MFS size mismatch: got %d, want %d", len(g), len(w))
	}
	for i := range g {
		if !g[i].Equal(w[i]) {
			return fmt.Errorf("mfi: MFS mismatch at %d: got %v, want %v", i, g[i], w[i])
		}
	}
	return nil
}
