package mfi

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pincer/internal/dataset"
	"pincer/internal/itemset"
)

func TestStatsAddPass(t *testing.T) {
	var s Stats
	s.AddPass(PassStats{Candidates: 100, MFCSCandidates: 1, Frequent: 50})
	s.AddPass(PassStats{Candidates: 200, MFCSCandidates: 2, Frequent: 60})
	s.AddPass(PassStats{Candidates: 30, MFCSCandidates: 3, Frequent: 10, MFSFound: 2})
	if s.Passes != 3 {
		t.Errorf("Passes = %d", s.Passes)
	}
	// paper accounting: pass 3 bottom-up candidates + all MFCS candidates
	if s.Candidates != 30+1+2+3 {
		t.Errorf("Candidates = %d, want 36", s.Candidates)
	}
	if s.CandidatesAll != 100+200+30+1+2+3 {
		t.Errorf("CandidatesAll = %d", s.CandidatesAll)
	}
	if s.MFCSCandidates != 6 {
		t.Errorf("MFCSCandidates = %d", s.MFCSCandidates)
	}
	if s.FrequentCount != 120 {
		t.Errorf("FrequentCount = %d", s.FrequentCount)
	}
	if len(s.PassDetails) != 3 || s.PassDetails[2].Pass != 3 {
		t.Errorf("PassDetails = %+v", s.PassDetails)
	}
	if s.String() == "" {
		t.Error("empty String")
	}
}

func TestResultQueries(t *testing.T) {
	freq := itemset.NewSet(0)
	freq.AddWithCount(itemset.New(1), 10)
	freq.AddWithCount(itemset.New(1, 2), 5)
	r := &Result{
		MFS:         []itemset.Itemset{itemset.New(1, 2, 3), itemset.New(4, 5)},
		MFSSupports: []int64{4, 6},
		Frequent:    freq,
		MinCount:    4,
	}
	if c, ok := r.SupportOf(itemset.New(1, 2)); !ok || c != 5 {
		t.Errorf("SupportOf({1,2}) = %d, %v", c, ok)
	}
	if c, ok := r.SupportOf(itemset.New(1, 2, 3)); !ok || c != 4 {
		t.Errorf("SupportOf(MFS elem) = %d, %v", c, ok)
	}
	if _, ok := r.SupportOf(itemset.New(9)); ok {
		t.Error("SupportOf unknown itemset reported true")
	}
	if !r.IsFrequent(itemset.New(2, 3)) {
		t.Error("IsFrequent({2,3}) = false")
	}
	if r.IsFrequent(itemset.New(3, 4)) {
		t.Error("IsFrequent({3,4}) = true")
	}
	if r.LongestMFS() != 3 {
		t.Errorf("LongestMFS = %d", r.LongestMFS())
	}
	if (&Result{}).LongestMFS() != 0 {
		t.Error("LongestMFS of empty result")
	}
}

func TestExpand(t *testing.T) {
	mfs := []itemset.Itemset{itemset.New(1, 2, 3), itemset.New(3, 4)}
	got := Expand(mfs, 0)
	want := []itemset.Itemset{
		itemset.New(1), itemset.New(1, 2), itemset.New(1, 2, 3), itemset.New(1, 3),
		itemset.New(2), itemset.New(2, 3),
		itemset.New(3), itemset.New(3, 4), itemset.New(4),
	}
	if len(got) != len(want) {
		t.Fatalf("Expand = %v (%d), want %d sets", got, len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("Expand[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// maxLen caps the expansion
	capped := Expand(mfs, 1)
	if len(capped) != 4 {
		t.Fatalf("Expand maxLen=1 = %v", capped)
	}
	if len(Expand(nil, 0)) != 0 {
		t.Error("Expand(nil) not empty")
	}
}

func TestCountFrequent(t *testing.T) {
	tests := []struct {
		mfs  []itemset.Itemset
		want int64
	}{
		{nil, 0},
		{[]itemset.Itemset{itemset.New(1)}, 1},
		{[]itemset.Itemset{itemset.New(1, 2, 3)}, 7},
		{[]itemset.Itemset{itemset.New(1, 2, 3), itemset.New(3, 4)}, 9},
		{[]itemset.Itemset{itemset.New(1, 2), itemset.New(2, 3), itemset.New(1, 3)}, 6},
		// non-maximal input is filtered first
		{[]itemset.Itemset{itemset.New(1, 2), itemset.New(1, 2, 3)}, 7},
	}
	for _, tc := range tests {
		if got := CountFrequent(tc.mfs); got != tc.want {
			t.Errorf("CountFrequent(%v) = %d, want %d", tc.mfs, got, tc.want)
		}
	}
}

func TestQuickCountFrequentMatchesExpand(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(6)
		mfs := make([]itemset.Itemset, n)
		for i := range mfs {
			mfs[i] = randomItemsetOver(r, 10, 6)
			if len(mfs[i]) == 0 {
				mfs[i] = itemset.New(itemset.Item(r.Intn(10)))
			}
		}
		return CountFrequent(mfs) == int64(len(Expand(itemset.MaximalOnly(mfs), 0)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeBorder(t *testing.T) {
	universe := itemset.New(1, 2, 3, 4)
	// frequent: all subsets of {1,2,3}
	frequent := Expand([]itemset.Itemset{itemset.New(1, 2, 3)}, 0)
	border := NegativeBorder(universe, frequent)
	// minimal infrequent: {4}
	if len(border) != 1 || !border[0].Equal(itemset.New(4)) {
		t.Fatalf("border = %v, want [{4}]", border)
	}

	// frequent: {1},{2},{3},{1,2},{1,3} — border: {2,3}
	frequent = []itemset.Itemset{
		itemset.New(1), itemset.New(2), itemset.New(3),
		itemset.New(1, 2), itemset.New(1, 3),
	}
	border = NegativeBorder(itemset.New(1, 2, 3), frequent)
	if len(border) != 1 || !border[0].Equal(itemset.New(2, 3)) {
		t.Fatalf("border = %v, want [{2,3}]", border)
	}

	// all pairs frequent → border is the triple
	frequent = []itemset.Itemset{
		itemset.New(1), itemset.New(2), itemset.New(3),
		itemset.New(1, 2), itemset.New(1, 3), itemset.New(2, 3),
	}
	border = NegativeBorder(itemset.New(1, 2, 3), frequent)
	if len(border) != 1 || !border[0].Equal(itemset.New(1, 2, 3)) {
		t.Fatalf("border = %v, want [{1,2,3}]", border)
	}

	// nothing frequent → border is all singletons
	border = NegativeBorder(itemset.New(1, 2), nil)
	if len(border) != 2 {
		t.Fatalf("border = %v", border)
	}
}

func TestQuickNegativeBorderIsMinimalInfrequent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		universe := itemset.Range(0, itemset.Item(3+r.Intn(5)))
		// random downward-closed family: expand a few random "maximal" sets
		n := 1 + r.Intn(3)
		mfs := make([]itemset.Itemset, n)
		for i := range mfs {
			mfs[i] = randomSubset(r, universe)
			if len(mfs[i]) == 0 {
				mfs[i] = itemset.Itemset{universe[0]}
			}
		}
		frequent := Expand(mfs, 0)
		freqSet := itemset.SetOf(frequent...)
		border := NegativeBorder(universe, frequent)
		borderSet := itemset.SetOf(border...)
		// border members: infrequent, all facets frequent
		for _, b := range border {
			if freqSet.Contains(b) {
				return false
			}
			ok := true
			b.Facets(func(f itemset.Itemset) {
				if !freqSet.Contains(f.Clone()) {
					ok = false
				}
			})
			if !ok {
				return false
			}
		}
		// completeness: every minimal infrequent itemset of size ≤3 is in border
		complete := true
		for k := 1; k <= 3 && complete; k++ {
			universe.EachSubsetOfSize(k, func(x itemset.Itemset) {
				if !complete || freqSet.Contains(x) {
					return
				}
				allFacetsFrequent := true
				if k > 1 {
					x.Facets(func(f itemset.Itemset) {
						if !freqSet.Contains(f.Clone()) {
							allFacetsFrequent = false
						}
					})
				}
				if allFacetsFrequent && !borderSet.Contains(x) {
					complete = false
				}
			})
		}
		return complete
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestVerify(t *testing.T) {
	d := dataset.New([]dataset.Transaction{
		itemset.New(1, 2, 3),
		itemset.New(1, 2, 3),
		itemset.New(1, 2),
		itemset.New(4),
	})
	// true MFS at minCount 2: {1,2,3}
	if err := Verify(d, 2, []itemset.Itemset{itemset.New(1, 2, 3)}); err != nil {
		t.Errorf("valid MFS rejected: %v", err)
	}
	// {1,2} is frequent but not maximal
	if err := Verify(d, 2, []itemset.Itemset{itemset.New(1, 2)}); err == nil {
		t.Error("non-maximal element accepted")
	}
	// {1,4} is infrequent
	if err := Verify(d, 2, []itemset.Itemset{itemset.New(1, 4)}); err == nil {
		t.Error("infrequent element accepted")
	}
	// not an antichain
	if err := Verify(d, 2, []itemset.Itemset{itemset.New(1, 2, 3), itemset.New(1, 2)}); err == nil {
		t.Error("chain accepted")
	}
}

func TestVerifyAgainst(t *testing.T) {
	a := []itemset.Itemset{itemset.New(1, 2), itemset.New(3)}
	b := []itemset.Itemset{itemset.New(3), itemset.New(1, 2)} // order-insensitive
	if err := VerifyAgainst(a, b); err != nil {
		t.Errorf("equal MFS rejected: %v", err)
	}
	if err := VerifyAgainst(a, a[:1]); err == nil {
		t.Error("size mismatch accepted")
	}
	if err := VerifyAgainst(a, []itemset.Itemset{itemset.New(1, 2), itemset.New(4)}); err == nil {
		t.Error("content mismatch accepted")
	}
}

func randomItemsetOver(r *rand.Rand, universe, maxLen int) itemset.Itemset {
	n := r.Intn(maxLen + 1)
	items := make([]itemset.Item, n)
	for i := range items {
		items[i] = itemset.Item(r.Intn(universe))
	}
	return itemset.New(items...)
}

func randomSubset(r *rand.Rand, universe itemset.Itemset) itemset.Itemset {
	var out []itemset.Item
	for _, it := range universe {
		if r.Intn(2) == 0 {
			out = append(out, it)
		}
	}
	return itemset.New(out...)
}
