package mfi

import (
	"errors"
	"testing"

	"pincer/internal/counting"
	"pincer/internal/dataset"
)

func TestRecoverMiningErrorConvertsTypedPanics(t *testing.T) {
	cases := []struct {
		name  string
		value error
	}{
		{"file-scan", &dataset.FileScanError{Path: "db.basket", Err: errors.New("line 3: bad item")}},
		{"counter-mismatch", &counting.MismatchError{Op: "SumInto", Want: 4, Got: 7}},
		{"worker-panic", &WorkerPanic{Value: "boom"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := func() (err error) {
				defer RecoverMiningError(&err)
				panic(tc.value)
			}()
			if err != tc.value {
				t.Fatalf("err = %v (%T), want the panicked value %v", err, err, tc.value)
			}
		})
	}
}

func TestRecoverMiningErrorNoPanicLeavesErrNil(t *testing.T) {
	err := func() (err error) {
		defer RecoverMiningError(&err)
		return nil
	}()
	if err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
}

func TestRecoverMiningErrorRepanicsUnknownValues(t *testing.T) {
	defer func() {
		if r := recover(); r != "programmer error" {
			t.Fatalf("recovered %v, want the original panic value", r)
		}
	}()
	func() (err error) {
		defer RecoverMiningError(&err)
		panic("programmer error")
	}()
	t.Fatal("panic did not propagate")
}

func TestWorkerPanicUnwrap(t *testing.T) {
	inner := &dataset.FileScanError{Path: "x", Err: errors.New("io")}
	wp := &WorkerPanic{Value: inner}
	var fse *dataset.FileScanError
	if !errors.As(wp, &fse) {
		t.Fatal("WorkerPanic does not unwrap to the wrapped error")
	}
	if (&WorkerPanic{Value: 42}).Unwrap() != nil {
		t.Error("non-error panic value should unwrap to nil")
	}
	if msg := (&WorkerPanic{Value: "boom"}).Error(); msg != "mining worker panicked: boom" {
		t.Errorf("Error() = %q", msg)
	}
}
