package mfi

import (
	"fmt"

	"pincer/internal/counting"
	"pincer/internal/dataset"
)

// WorkerPanic wraps a panic captured inside a counting worker goroutine.
// The parallel pass counters recover worker panics, re-raise them on the
// mining goroutine wrapped in this type, and the mining boundary converts
// them into a returned error — so a failure inside one worker surfaces as
// an error from Mine* instead of crashing the whole process.
type WorkerPanic struct {
	// Value is the original panic value.
	Value interface{}
	// Stack is the worker goroutine's stack at the point of the panic.
	Stack []byte
}

// Error implements error.
func (w *WorkerPanic) Error() string {
	return fmt.Sprintf("mining worker panicked: %v", w.Value)
}

// Unwrap exposes the original panic value when it was itself an error.
func (w *WorkerPanic) Unwrap() error {
	if err, ok := w.Value.(error); ok {
		return err
	}
	return nil
}

// RecoverMiningError is the mining-API boundary: deferred at the top of
// every Mine* entry point, it converts the panics that legitimately arise
// mid-pass — I/O and parse failures from a re-read database file
// (*dataset.FileScanError), counter-merge mismatches at the PassCounter
// seam (*counting.MismatchError), and captured worker-goroutine panics
// (*WorkerPanic) — into the returned error. Any other panic is a programmer
// error and is re-raised unchanged.
//
// An in-memory scan cannot fail, so entry points that only ever mine
// in-memory datasets report a nil error.
func RecoverMiningError(errp *error) {
	r := recover()
	if r == nil {
		return
	}
	switch e := r.(type) {
	case *dataset.FileScanError:
		*errp = e
	case *counting.MismatchError:
		*errp = e
	case *WorkerPanic:
		*errp = e
	case *Abort:
		// Safety net: an Abort that escaped a miner's own partial-result
		// recovery (e.g. raised before any state existed) still surfaces as
		// an error instead of crashing.
		*errp = e
	default:
		panic(r)
	}
}
