package mfi_test

// Cross-miner conformance corpus: four small deterministic Quest databases
// committed under testdata/conformance/ together with golden files pinning
// the exact maximal frequent set (with supports) and the exact complete
// frequent set at two minimum supports each. Every miner in the repository —
// sequential Pincer-Search (scan-counted and tid-list-counted at 1 and 4
// workers), Apriori, the top-down miner, maximal Eclat, the FP-max
// pattern-tree miner, and
// the count-distribution parallel Pincer-Search at 1 and 4 workers, and
// Pincer-Search counting over a live two-worker HTTP cluster — must
// reproduce the goldens byte for byte; the complete-frequent-set goldens are
// additionally pinned by both Apriori and full Eclat, two algorithms with no
// shared counting code.
//
// Regenerate after an intentional change with:
//
//	go test ./internal/mfi -run TestConformance -update

import (
	"bytes"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"pincer/internal/apriori"
	"pincer/internal/cluster"
	"pincer/internal/core"
	"pincer/internal/counting"
	"pincer/internal/dataset"
	"pincer/internal/fpmax"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
	"pincer/internal/parallel"
	"pincer/internal/quest"
	"pincer/internal/topdown"
	"pincer/internal/vertical"
)

var update = flag.Bool("update", false, "regenerate the conformance corpus and golden files")

const conformanceDir = "testdata/conformance"

// corpusEntry is one committed database with the supports it is mined at.
type corpusEntry struct {
	name    string
	params  quest.Params
	minsups []float64
}

// The corpus spans the shapes that exercise different miners: dense
// concentrated data (where top-down search shines), sparse shallow data,
// high item correlation (long maximal sets), and a wide mix of short
// patterns. Databases are deliberately small — the point is exactness, not
// scale — and item universes stay ≤ 14 because the pure top-down miner must
// also terminate: its frontier descends level by level from the full set of
// frequent items, which is combinatorial in the universe size.
var corpus = []corpusEntry{
	{
		name: "dense",
		params: quest.Params{
			NumTransactions: 300, AvgTxLen: 8, AvgPatternLen: 4,
			NumPatterns: 5, NumItems: 12, Seed: 11,
		},
		minsups: []float64{0.05, 0.15},
	},
	{
		name: "sparse",
		params: quest.Params{
			NumTransactions: 400, AvgTxLen: 5, AvgPatternLen: 3,
			NumPatterns: 10, NumItems: 14, Seed: 22,
		},
		minsups: []float64{0.05, 0.15},
	},
	{
		name: "correlated",
		params: quest.Params{
			NumTransactions: 250, AvgTxLen: 9, AvgPatternLen: 5,
			NumPatterns: 4, NumItems: 12, CorrelationLevel: 0.9, Seed: 33,
		},
		minsups: []float64{0.15, 0.3},
	},
	{
		name: "wide",
		params: quest.Params{
			NumTransactions: 500, AvgTxLen: 4, AvgPatternLen: 2,
			NumPatterns: 12, NumItems: 14, Seed: 44,
		},
		minsups: []float64{0.05, 0.2},
	},
}

func basketPath(name string) string { return filepath.Join(conformanceDir, name+".basket") }

func goldenPath(name string, minsup float64, kind string) string {
	return filepath.Join(conformanceDir, fmt.Sprintf("%s.sup%g.%s.golden", name, minsup, kind))
}

// renderSets renders itemsets with their supports into the canonical golden
// form — one "item item ...\tsupport" line per set, sorted — so any two
// miners that agree on the answer produce byte-identical output.
func renderSets(sets []itemset.Itemset, supports []int64) []byte {
	lines := make([]string, len(sets))
	for i, s := range sets {
		var b bytes.Buffer
		for j, it := range s {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", it)
		}
		fmt.Fprintf(&b, "\t%d", supports[i])
		lines[i] = b.String()
	}
	sort.Strings(lines)
	var out bytes.Buffer
	for _, l := range lines {
		out.WriteString(l)
		out.WriteByte('\n')
	}
	return out.Bytes()
}

// renderResultMFS renders a run's maximal frequent set.
func renderResultMFS(res *mfi.Result) []byte {
	return renderSets(res.MFS, res.MFSSupports)
}

// renderFrequent renders a run's complete frequent set.
func renderFrequent(freq *itemset.Set) []byte {
	sets := make([]itemset.Itemset, 0, freq.Len())
	supports := make([]int64, 0, freq.Len())
	freq.Each(func(x itemset.Itemset, c int64) {
		sets = append(sets, x)
		supports = append(supports, c)
	})
	return renderSets(sets, supports)
}

// loadCorpus reads a committed database.
func loadCorpus(t *testing.T, name string) *dataset.Dataset {
	t.Helper()
	f, err := os.Open(basketPath(name))
	if err != nil {
		t.Fatalf("open corpus %s (run with -update to generate): %v", name, err)
	}
	defer f.Close()
	d, err := dataset.ReadBasket(f)
	if err != nil {
		t.Fatalf("parse corpus %s: %v", name, err)
	}
	return d
}

// updateCorpus regenerates one database and its goldens from the reference
// miner (Apriori with the complete frequent set retained).
func updateCorpus(t *testing.T, e corpusEntry) {
	t.Helper()
	if err := os.MkdirAll(conformanceDir, 0o755); err != nil {
		t.Fatal(err)
	}
	d := quest.Generate(e.params)
	var buf bytes.Buffer
	if err := dataset.WriteBasket(&buf, d); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(basketPath(e.name), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, minsup := range e.minsups {
		opt := apriori.DefaultOptions()
		opt.KeepFrequent = true
		res, err := apriori.MineCount(dataset.NewScanner(d), d.MinCount(minsup), opt)
		if err != nil {
			t.Fatalf("%s sup=%g: reference apriori: %v", e.name, minsup, err)
		}
		if err := os.WriteFile(goldenPath(e.name, minsup, "mfs"), renderResultMFS(res), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(e.name, minsup, "freq"), renderFrequent(res.Frequent), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("updated corpus %s (%d tx)", e.name, d.Len())
}

func readGolden(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to generate): %v", err)
	}
	return data
}

// mineOnCluster runs the pincer loop with counting distributed over a live
// coordinator/worker cluster (httptest workers, real HTTP/JSON wire): the
// distributed merge must reproduce the goldens byte for byte.
func mineOnCluster(t *testing.T, d *dataset.Dataset, minCount int64, workers int) (*mfi.Result, error) {
	t.Helper()
	var addrs []string
	var servers []*httptest.Server
	for i := 0; i < workers; i++ {
		srv := httptest.NewServer(cluster.NewWorker(cluster.WorkerConfig{ID: fmt.Sprintf("w%d", i)}))
		servers = append(servers, srv)
		addrs = append(addrs, srv.URL)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	pool, err := cluster.NewPool(addrs, cluster.PoolConfig{
		HeartbeatInterval: 50 * time.Millisecond,
		LivenessDeadline:  5 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	pool.Start()
	defer pool.Close()
	coord, err := cluster.NewCoordinator("conformance", d, pool, nil)
	if err != nil {
		return nil, err
	}
	opt := core.DefaultOptions()
	opt.Counter = coord
	res, err := core.MineCount(dataset.NewScanner(d), minCount, opt)
	if err != nil {
		return nil, err
	}
	doc := coord.Doc()
	if doc.Degraded {
		return nil, fmt.Errorf("healthy conformance cluster degraded: %s", doc.DegradedReason)
	}
	if doc.RPCs == 0 {
		return nil, fmt.Errorf("conformance cluster issued no RPCs — counting did not distribute")
	}
	return res, nil
}

func diffGolden(t *testing.T, label string, got, want []byte) {
	t.Helper()
	if bytes.Equal(got, want) {
		return
	}
	t.Errorf("%s: output differs from golden\n--- got ---\n%s--- want ---\n%s", label, got, want)
}

// TestConformance runs every miner against every corpus database at every
// pinned support and diffs the exact MFS + supports against the goldens.
func TestConformance(t *testing.T) {
	if *update {
		for _, e := range corpus {
			updateCorpus(t, e)
		}
	}
	for _, e := range corpus {
		e := e
		t.Run(e.name, func(t *testing.T) {
			d := loadCorpus(t, e.name)
			for _, minsup := range e.minsups {
				minsup := minsup
				t.Run(fmt.Sprintf("sup%g", minsup), func(t *testing.T) {
					want := readGolden(t, goldenPath(e.name, minsup, "mfs"))
					minCount := d.MinCount(minsup)

					miners := []struct {
						name string
						run  func() (*mfi.Result, error)
					}{
						{"pincer", func() (*mfi.Result, error) {
							return core.MineCount(dataset.NewScanner(d), minCount, core.DefaultOptions())
						}},
						{"pincer-tidlist-w1", func() (*mfi.Result, error) {
							opt := core.DefaultOptions()
							opt.Counter = counting.NewTidListCounter(d, counting.TidListOptions{Workers: 1})
							return core.MineCount(dataset.NewScanner(d), minCount, opt)
						}},
						{"pincer-tidlist-w4", func() (*mfi.Result, error) {
							opt := core.DefaultOptions()
							opt.Counter = counting.NewTidListCounter(d, counting.TidListOptions{Workers: 4})
							return core.MineCount(dataset.NewScanner(d), minCount, opt)
						}},
						{"apriori", func() (*mfi.Result, error) {
							return apriori.MineCount(dataset.NewScanner(d), minCount, apriori.DefaultOptions())
						}},
						{"topdown", func() (*mfi.Result, error) {
							res, err := topdown.MineCount(dataset.NewScanner(d), minCount, topdown.DefaultOptions())
							if err != nil {
								return nil, err
							}
							if res.Aborted {
								return nil, fmt.Errorf("topdown aborted: frontier exceeded %d", topdown.DefaultOptions().MaxElements)
							}
							return &res.Result, nil
						}},
						{"vertical", func() (*mfi.Result, error) {
							return &vertical.MineMaximal(d, minsup, vertical.DefaultOptions()).Result, nil
						}},
						{"fpmax", func() (*mfi.Result, error) {
							return &fpmax.MineMaximal(d, minsup, fpmax.DefaultOptions()).Result, nil
						}},
						{"parallel-w1", func() (*mfi.Result, error) {
							popt := parallel.DefaultOptions()
							popt.Workers = 1
							return parallel.MinePincerCount(d, minCount, core.DefaultOptions(), popt)
						}},
						{"parallel-w4", func() (*mfi.Result, error) {
							popt := parallel.DefaultOptions()
							popt.Workers = 4
							return parallel.MinePincerCount(d, minCount, core.DefaultOptions(), popt)
						}},
						{"pincer-cluster-w2", func() (*mfi.Result, error) {
							return mineOnCluster(t, d, minCount, 2)
						}},
					}
					for _, m := range miners {
						m := m
						t.Run(m.name, func(t *testing.T) {
							res, err := m.run()
							if err != nil {
								t.Fatalf("%s: %v", m.name, err)
							}
							diffGolden(t, m.name, renderResultMFS(res), want)
						})
					}

					// The complete frequent set, pinned independently by
					// Apriori and full Eclat.
					wantFreq := readGolden(t, goldenPath(e.name, minsup, "freq"))
					t.Run("frequent-apriori", func(t *testing.T) {
						opt := apriori.DefaultOptions()
						opt.KeepFrequent = true
						res, err := apriori.MineCount(dataset.NewScanner(d), minCount, opt)
						if err != nil {
							t.Fatal(err)
						}
						diffGolden(t, "apriori frequent set", renderFrequent(res.Frequent), wantFreq)
					})
					t.Run("frequent-eclat", func(t *testing.T) {
						opt := vertical.DefaultOptions()
						opt.KeepFrequent = true
						res := vertical.Eclat(d, minsup, opt)
						diffGolden(t, "eclat frequent set", renderFrequent(res.Frequent), wantFreq)
					})
				})
			}
		})
	}
}
