package fpmax_test

import (
	"fmt"
	"testing"

	"pincer/internal/apriori"
	"pincer/internal/dataset"
	"pincer/internal/fpmax"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
	"pincer/internal/quest"
)

func TestFPMaxTiny(t *testing.T) {
	// Classic example: {0,1} in 3 of 4 transactions, {2} alone infrequent
	// at minCount 2 only via {0,2}.
	d := dataset.New([]dataset.Transaction{
		itemset.New(0, 1),
		itemset.New(0, 1, 2),
		itemset.New(0, 2),
		itemset.New(0, 1),
	})
	res := fpmax.MineMaximalCount(d, 2, fpmax.DefaultOptions())
	want := []itemset.Itemset{itemset.New(0, 1), itemset.New(0, 2)}
	if err := mfi.VerifyAgainst(res.MFS, want); err != nil {
		t.Fatalf("MFS mismatch: %v (got %v)", err, res.MFS)
	}
	for i, m := range res.MFS {
		if got, exact := d.Support(m), res.MFSSupports[i]; got != exact {
			t.Errorf("support of %v = %d, dataset says %d", m, exact, got)
		}
	}
	if res.Stats.Algorithm != "fpmax" || res.Stats.Passes != 2 {
		t.Errorf("stats = %+v, want algorithm fpmax with 2 passes", res.Stats)
	}
}

func TestFPMaxEmptyAndDegenerate(t *testing.T) {
	empty := dataset.Empty(8)
	if res := fpmax.MineMaximalCount(empty, 1, fpmax.DefaultOptions()); len(res.MFS) != 0 {
		t.Fatalf("empty dataset mined %v", res.MFS)
	}
	// Threshold above |D|: nothing is frequent.
	d := dataset.New([]dataset.Transaction{itemset.New(0, 1), itemset.New(1, 2)})
	res := fpmax.MineMaximalCount(d, 5, fpmax.DefaultOptions())
	if len(res.MFS) != 0 {
		t.Fatalf("over-threshold mine returned %v", res.MFS)
	}
	if res.Stats.Passes != 2 {
		t.Fatalf("passes = %d, want the fixed two-pass protocol", res.Stats.Passes)
	}
}

func TestFPMaxSinglePathCollapse(t *testing.T) {
	// Every transaction identical: the tree is one path and the answer is
	// a single maximal set found without any conditional projection.
	var txs []dataset.Transaction
	for i := 0; i < 10; i++ {
		txs = append(txs, itemset.New(3, 1, 4, 7))
	}
	d := dataset.New(txs)
	res := fpmax.MineMaximalCount(d, 5, fpmax.DefaultOptions())
	want := []itemset.Itemset{itemset.New(1, 3, 4, 7)}
	if err := mfi.VerifyAgainst(res.MFS, want); err != nil {
		t.Fatal(err)
	}
	if res.MFSSupports[0] != 10 {
		t.Fatalf("support = %d, want 10", res.MFSSupports[0])
	}
	if res.CondTrees != 0 {
		t.Fatalf("single-path database projected %d conditional trees, want 0", res.CondTrees)
	}
}

// TestFPMaxMatchesApriori cross-checks the miner against the reference
// level-wise miner on generated workloads across the density spectrum.
func TestFPMaxMatchesApriori(t *testing.T) {
	shapes := []quest.Params{
		{NumTransactions: 300, AvgTxLen: 8, AvgPatternLen: 4, NumPatterns: 5, NumItems: 12, Seed: 11},
		{NumTransactions: 400, AvgTxLen: 5, AvgPatternLen: 3, NumPatterns: 10, NumItems: 14, Seed: 22},
		{NumTransactions: 250, AvgTxLen: 9, AvgPatternLen: 5, NumPatterns: 4, NumItems: 12, CorrelationLevel: 0.9, Seed: 33},
		{NumTransactions: 500, AvgTxLen: 4, AvgPatternLen: 2, NumPatterns: 12, NumItems: 14, Seed: 44},
		{NumTransactions: 200, AvgTxLen: 12, AvgPatternLen: 6, NumPatterns: 3, NumItems: 30, Seed: 55},
	}
	for si, p := range shapes {
		for _, minsup := range []float64{0.05, 0.15, 0.3} {
			t.Run(fmt.Sprintf("shape%d-sup%g", si, minsup), func(t *testing.T) {
				d := quest.Generate(p)
				minCount := d.MinCount(minsup)
				ref, err := apriori.MineCount(dataset.NewScanner(d), minCount, apriori.DefaultOptions())
				if err != nil {
					t.Fatal(err)
				}
				got := fpmax.MineMaximalCount(d, minCount, fpmax.DefaultOptions())
				if err := mfi.VerifyAgainst(got.MFS, ref.MFS); err != nil {
					t.Fatal(err)
				}
				for i, m := range got.MFS {
					if got.MFSSupports[i] != d.Support(m) {
						t.Errorf("support of %v = %d, want %d", m, got.MFSSupports[i], d.Support(m))
					}
				}
				if err := mfi.Verify(d, minCount, got.MFS); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func BenchmarkFPMax(b *testing.B) {
	d := quest.Generate(quest.Params{
		NumTransactions: 2000, AvgTxLen: 10, AvgPatternLen: 4,
		NumPatterns: 8, NumItems: 40, Seed: 7,
	})
	minCount := d.MinCount(0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fpmax.MineMaximalCount(d, minCount, fpmax.DefaultOptions())
	}
}
