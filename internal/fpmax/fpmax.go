// Package fpmax implements maximal frequent-itemset mining over a
// frequency-ordered prefix tree (FP-tree), in the style of Grahne & Zhu's
// FPMax refinement of Han et al.'s FP-growth. The database is read exactly
// twice — once to count items, once to build the tree — and all further
// work projects conditional trees in memory, so like the vertical miner it
// makes no level-wise database passes.
//
// The tree orders every transaction's frequent items by decreasing global
// frequency, so transactions sharing frequent prefixes collapse onto shared
// paths; on dense, skewed data the tree is far smaller than the database.
// Mining recurses bottom-up through the header table (least frequent item
// first, so the longest patterns surface early), with the two classic
// maximal-mining prunes layered on top:
//
//   - single-path collapse: when a conditional tree degenerates to one
//     path, the head joined with the whole path is the subtree's unique
//     locally-maximal set (the FP-tree analogue of the head∪tail
//     look-ahead);
//   - subset-of-known-maximal pruning: a subtree whose head joined with
//     every conditional item is covered by an already-found maximal set can
//     yield nothing new (the same Observation 2 that powers the MFCS and
//     the vertical miner's knownSubset check).
//
// Every recorded support is exact — single-path supports are the bottom
// node's count, head supports are the header totals of the parent tree —
// so the miner plugs into the conformance corpus byte-identically.
// Standard library only.
package fpmax

import (
	"sort"
	"time"

	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
)

// Options configures the miner.
type Options struct {
	// MaxDepth bounds the projection recursion (0 = unlimited); a safety
	// valve for degenerate data, mirroring the vertical miner's option. A
	// tripped bound can drop deep maximal sets, so it is off by default.
	MaxDepth int
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options { return Options{} }

// Result extends the shared result with FP-tree diagnostics.
type Result struct {
	mfi.Result
	// CondTrees counts the conditional trees projected (the work unit).
	CondTrees int64
	// Nodes counts the tree nodes allocated across all trees.
	Nodes int64
}

// node is one FP-tree node: an item rank with the count of transactions
// whose frequency-ordered prefix passes through it, linked up to its parent
// and sideways along its rank's header chain.
type node struct {
	rank     int32
	count    int64
	parent   *node
	next     *node
	children map[int32]*node
}

// tree is an FP-tree (or a conditional projection of one) with its header
// table, indexed by global item rank.
type tree struct {
	root   *node
	heads  []*node // rank → header chain (most recently inserted first)
	counts []int64 // rank → total count in this tree
}

func (m *miner) newTree() *tree {
	m.nodes++
	return &tree{
		root:   &node{children: map[int32]*node{}},
		heads:  make([]*node, m.nRanks),
		counts: make([]int64, m.nRanks),
	}
}

// insert adds one frequency-ordered transaction (ranks ascending = most
// frequent first) with multiplicity count.
func (m *miner) insert(t *tree, ranks []int32, count int64) {
	cur := t.root
	for _, r := range ranks {
		child := cur.children[r]
		if child == nil {
			child = &node{rank: r, parent: cur, children: map[int32]*node{}, next: t.heads[r]}
			t.heads[r] = child
			cur.children[r] = child
			m.nodes++
		}
		child.count += count
		t.counts[r] += count
		cur = child
	}
}

// singlePath reports whether the tree is one unbranched path, returning the
// path's ranks top-down and the bottom node's count (the support of the
// whole path); supp is -1 for the empty path.
func (t *tree) singlePath() (path []int32, supp int64, ok bool) {
	supp = -1
	cur := t.root
	for {
		switch len(cur.children) {
		case 0:
			return path, supp, true
		case 1:
			for _, c := range cur.children {
				cur = c
			}
			path = append(path, cur.rank)
			supp = cur.count
		default:
			return nil, 0, false
		}
	}
}

// presentRanks returns the ranks occurring in the tree, ascending.
func (t *tree) presentRanks() []int32 {
	var out []int32
	for r, c := range t.counts {
		if c > 0 {
			out = append(out, int32(r))
		}
	}
	return out
}

// miner holds the run state shared by every projection.
type miner struct {
	minCount int64
	numItems int            // original universe, for maximality bitsets
	nRanks   int            // number of frequent items
	rankItem []itemset.Item // rank → original item

	maximal []itemset.Itemset
	bits    []*itemset.Bitset
	counts  map[string]int64

	condTrees int64
	nodes     int64
	opt       Options
}

// knownSubset reports whether xb is covered by an already-found maximal set.
func (m *miner) knownSubset(xb *itemset.Bitset) bool {
	for _, b := range m.bits {
		if xb.IsSubsetOf(b) {
			return true
		}
	}
	return false
}

// toBitset renders head ranks (plus optional extra ranks) as an
// original-item bitset.
func (m *miner) toBitset(head, extra []int32) *itemset.Bitset {
	b := itemset.NewBitset(m.numItems)
	for _, r := range head {
		b.Add(m.rankItem[r])
	}
	for _, r := range extra {
		b.Add(m.rankItem[r])
	}
	return b
}

// record stores head∪extra as a maximal candidate unless a known maximal
// set covers it.
func (m *miner) record(head, extra []int32, supp int64) {
	b := m.toBitset(head, extra)
	if m.knownSubset(b) {
		return
	}
	items := make([]itemset.Item, 0, len(head)+len(extra))
	for _, r := range head {
		items = append(items, m.rankItem[r])
	}
	for _, r := range extra {
		items = append(items, m.rankItem[r])
	}
	x := itemset.New(items...)
	m.maximal = append(m.maximal, x)
	m.bits = append(m.bits, b)
	m.counts[x.Key()] = supp
}

// mine explores one (conditional) tree. Invariants: head is frequent with
// support headSupp; the tree holds exactly the head-conditional database
// filtered to its conditionally frequent items, so every header total is an
// exact support of head ∪ {item}.
func (m *miner) mine(t *tree, head []int32, headSupp int64, depth int) {
	if path, supp, ok := t.singlePath(); ok {
		if supp < 0 {
			supp = headSupp
		}
		m.record(head, path, supp)
		return
	}
	if m.opt.MaxDepth > 0 && depth > m.opt.MaxDepth {
		return
	}
	present := t.presentRanks()
	// Subtree prune: everything this tree can yield is a subset of
	// head ∪ present, so a known maximal superset ends the recursion.
	if m.knownSubset(m.toBitset(head, present)) {
		return
	}
	base := make([]int64, m.nRanks)
	keep := make([]bool, m.nRanks)
	for i := len(present) - 1; i >= 0; i-- {
		r := present[i]
		supp := t.counts[r]
		newHead := make([]int32, len(head)+1)
		copy(newHead, head)
		newHead[len(head)] = r

		// Conditional pattern base of r: ancestor counts over r's chain.
		for j := range base {
			base[j] = 0
		}
		for n := t.heads[r]; n != nil; n = n.next {
			for p := n.parent; p.parent != nil; p = p.parent {
				base[p.rank] += n.count
			}
		}
		var freq []int32
		for rank, c := range base {
			keep[rank] = c >= m.minCount
			if keep[rank] {
				freq = append(freq, int32(rank))
			}
		}
		if len(freq) == 0 {
			// No frequent extension: newHead is maximal in this subtree.
			m.record(newHead, nil, supp)
			continue
		}
		// Look-ahead prune: the subtree of newHead can only yield subsets
		// of newHead ∪ freq.
		if m.knownSubset(m.toBitset(newHead, freq)) {
			continue
		}
		cond := m.newTree()
		m.condTrees++
		var path []int32
		for n := t.heads[r]; n != nil; n = n.next {
			path = path[:0]
			for p := n.parent; p.parent != nil; p = p.parent {
				if keep[p.rank] {
					path = append(path, p.rank)
				}
			}
			if len(path) == 0 {
				continue
			}
			// Ancestors were collected bottom-up; insertion wants them
			// top-down (ascending rank).
			for a, b := 0, len(path)-1; a < b; a, b = a+1, b-1 {
				path[a], path[b] = path[b], path[a]
			}
			m.insert(cond, path, n.count)
		}
		m.mine(cond, newHead, supp, depth+1)
	}
}

// MineMaximal mines the maximal frequent itemsets of d at a fractional
// minimum support. Like the vertical miner it has no cancellation points:
// after the two database reads everything happens in memory.
func MineMaximal(d *dataset.Dataset, minSupport float64, opt Options) *Result {
	return MineMaximalCount(d, d.MinCount(minSupport), opt)
}

// MineMaximalCount is MineMaximal with an absolute support threshold.
func MineMaximalCount(d *dataset.Dataset, minCount int64, opt Options) *Result {
	start := time.Now()
	res := &Result{Result: mfi.Result{
		MinCount:        minCount,
		NumTransactions: d.Len(),
	}}
	res.Stats.Algorithm = "fpmax"
	defer func() { res.Stats.Duration = time.Since(start) }()

	// Pass 1: global item counts → frequency-descending rank order
	// (ties broken by ascending item id, so the order — and therefore the
	// tree and the mining result — is deterministic).
	counts := d.ItemCounts()
	var freqItems []itemset.Item
	for it, c := range counts {
		if c >= minCount {
			freqItems = append(freqItems, itemset.Item(it))
		}
	}
	sort.Slice(freqItems, func(i, j int) bool {
		a, b := freqItems[i], freqItems[j]
		if counts[a] != counts[b] {
			return counts[a] > counts[b]
		}
		return a < b
	})
	res.Stats.AddPass(mfi.PassStats{Candidates: d.NumItems(), Frequent: len(freqItems)})
	if len(freqItems) == 0 {
		res.MFS = nil
		res.MFSSupports = nil
		res.Stats.AddPass(mfi.PassStats{})
		return res
	}

	m := &miner{
		minCount: minCount,
		numItems: d.NumItems(),
		nRanks:   len(freqItems),
		rankItem: freqItems,
		counts:   make(map[string]int64),
		opt:      opt,
	}
	itemRank := make([]int32, d.NumItems())
	for i := range itemRank {
		itemRank[i] = -1
	}
	for r, it := range freqItems {
		itemRank[it] = int32(r)
	}

	// Pass 2: build the tree from the frequency-ordered transactions.
	// A transaction's frequent items sorted by ascending rank are its
	// prefix path; item order within a transaction is already sorted by
	// item id, so ranks need an explicit sort only because rank order is
	// frequency order.
	root := m.newTree()
	var ranks []int32
	for _, tx := range d.Transactions() {
		ranks = ranks[:0]
		for _, it := range tx {
			if r := itemRank[it]; r >= 0 {
				ranks = append(ranks, r)
			}
		}
		if len(ranks) == 0 {
			continue
		}
		insertionSortRanks(ranks)
		m.insert(root, ranks, 1)
	}

	m.mine(root, nil, int64(d.Len()), 1)

	res.MFS = itemset.MaximalOnly(m.maximal)
	res.MFSSupports = make([]int64, len(res.MFS))
	for i, x := range res.MFS {
		res.MFSSupports[i] = m.counts[x.Key()]
	}
	res.CondTrees = m.condTrees
	res.Nodes = m.nodes
	res.Stats.AddPass(mfi.PassStats{
		Candidates: int(m.condTrees), Frequent: len(res.MFS), MFSFound: len(res.MFS),
	})
	return res
}

// insertionSortRanks sorts a short rank slice ascending; transaction
// lengths are small, so this beats sort.Slice's interface overhead on the
// per-transaction hot path.
func insertionSortRanks(rs []int32) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j] < rs[j-1]; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}
