// Package episodes applies maximum-frequent-set mining to episode discovery
// in event sequences — the application from Mannila & Toivonen (KDD 1996)
// that the paper cites in §1 and names in §6 as the setting where maximal
// frequent itemsets "are likely to be long".
//
// A parallel episode is a set of event types that occur together within a
// time window. Sliding a window of width w along the sequence yields one
// "transaction" per window position (the set of event types visible in the
// window); an episode is frequent if it occurs in at least a fraction
// minFrequency of the windows. That reduction makes every itemset miner in
// this repository an episode miner; the natural choice is Pincer-Search,
// because episodes compound — a frequent 20-event episode implies 2^20
// frequent sub-episodes, exactly the regime where bottom-up search dies.
package episodes

import (
	"fmt"
	"math/rand"
	"sort"

	"pincer/internal/core"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
)

// EventType identifies a kind of event (alarm id, log template, ...).
type EventType = itemset.Item

// Event is one timestamped occurrence.
type Event struct {
	Time int64
	Type EventType
}

// Sequence is a time-ordered event stream.
type Sequence []Event

// Sort orders the sequence by time (stable on equal times).
func (s Sequence) Sort() {
	sort.SliceStable(s, func(i, j int) bool { return s[i].Time < s[j].Time })
}

// Span returns the first and last timestamps; ok is false when empty.
func (s Sequence) Span() (first, last int64, ok bool) {
	if len(s) == 0 {
		return 0, 0, false
	}
	return s[0].Time, s[len(s)-1].Time, true
}

// Windows converts the sequence into the window-set database: one
// transaction for every window start in [first-width+1, last], following
// Mannila & Toivonen's window definition (every window that intersects the
// sequence). The sequence must be sorted by time. numTypes declares the
// event-type universe (0 infers it from the data).
func Windows(s Sequence, width int64, numTypes int) (*dataset.Dataset, error) {
	f, err := NewWindowFeed(s, width, numTypes)
	if err != nil {
		return nil, err
	}
	d := dataset.Empty(numTypes)
	for {
		batch := f.NextBatch(1024)
		if batch == nil {
			break
		}
		for _, t := range batch {
			d.Append(t)
		}
	}
	return d, nil
}

// WindowFeed is the streaming face of the window reduction: the same
// window-per-start sweep as Windows, delivered in batches for incremental
// maintenance. Concatenating every NextBatch yields exactly
// Windows(s, width, numTypes).Transactions().
type WindowFeed struct {
	s        Sequence
	width    int64
	numTypes int

	start int64 // next window start
	last  int64 // final window start
	lo    int   // first event with Time >= start (inside the window)
	hi    int   // first event with Time >= start+width
	empty bool
}

// NewWindowFeed validates the sequence (sorted, positive width) and
// positions the sweep at the first intersecting window.
func NewWindowFeed(s Sequence, width int64, numTypes int) (*WindowFeed, error) {
	if width <= 0 {
		return nil, fmt.Errorf("episodes: window width must be positive, got %d", width)
	}
	for i := 1; i < len(s); i++ {
		if s[i-1].Time > s[i].Time {
			return nil, fmt.Errorf("episodes: sequence not sorted at index %d", i)
		}
	}
	f := &WindowFeed{s: s, width: width, numTypes: numTypes}
	first, last, ok := s.Span()
	if !ok {
		f.empty = true
		return f, nil
	}
	f.start = first - width + 1
	f.last = last
	return f, nil
}

// NumTypes returns the declared event-type universe (0 = inferred).
func (f *WindowFeed) NumTypes() int { return f.numTypes }

// Remaining returns how many window transactions the feed has yet to
// deliver.
func (f *WindowFeed) Remaining() int {
	if f.empty || f.start > f.last {
		return 0
	}
	return int(f.last - f.start + 1)
}

// NextBatch delivers the next batch of up to n window transactions; nil
// once every window start up to the last event has been emitted.
func (f *WindowFeed) NextBatch(n int) []dataset.Transaction {
	if n <= 0 || f.empty || f.start > f.last {
		return nil
	}
	var batch []dataset.Transaction
	for ; n > 0 && f.start <= f.last; f.start++ {
		for f.lo < len(f.s) && f.s[f.lo].Time < f.start {
			f.lo++
		}
		for f.hi < len(f.s) && f.s[f.hi].Time < f.start+f.width {
			f.hi++
		}
		types := make([]itemset.Item, 0, f.hi-f.lo)
		for _, e := range f.s[f.lo:f.hi] {
			types = append(types, e.Type)
		}
		batch = append(batch, itemset.New(types...))
		n--
	}
	return batch
}

// Episode is a discovered maximal frequent parallel episode.
type Episode struct {
	Types itemset.Itemset
	// Frequency is the fraction of windows containing the episode.
	Frequency float64
}

// MineMaximal finds all maximal frequent parallel episodes with
// Pincer-Search over the window database.
func MineMaximal(s Sequence, width int64, minFrequency float64, numTypes int) ([]Episode, *mfi.Result, error) {
	d, err := Windows(s, width, numTypes)
	if err != nil {
		return nil, nil, err
	}
	if d.Len() == 0 {
		return nil, nil, nil
	}
	opt := core.DefaultOptions()
	opt.KeepFrequent = false
	res, err := core.Mine(dataset.NewScanner(d), minFrequency, opt)
	if err != nil {
		return nil, nil, err
	}
	episodes := make([]Episode, len(res.MFS))
	for i, m := range res.MFS {
		episodes[i] = Episode{
			Types:     m,
			Frequency: float64(res.MFSSupports[i]) / float64(d.Len()),
		}
	}
	return episodes, res, nil
}

// GeneratorParams configures the synthetic event-sequence generator used by
// the example application and the benchmarks: background noise events plus
// planted episodes that fire periodically, each occurrence scattering its
// events over a window-sized burst.
type GeneratorParams struct {
	NumTypes   int     // event-type universe
	Length     int64   // total time span
	NoiseRate  float64 // expected background events per time unit
	Episodes   []itemset.Itemset
	Period     int64 // average gap between episode firings
	BurstWidth int64 // events of one firing land within this width
	Seed       int64
}

// Generate produces a synthetic sequence with planted episodes.
func Generate(p GeneratorParams) Sequence {
	rng := rand.New(rand.NewSource(p.Seed))
	var seq Sequence
	if p.NumTypes <= 0 {
		p.NumTypes = 100
	}
	if p.BurstWidth <= 0 {
		p.BurstWidth = 10
	}
	if p.Period <= 0 {
		p.Period = 50
	}
	for t := int64(0); t < p.Length; t++ {
		for n := poisson(rng, p.NoiseRate); n > 0; n-- {
			seq = append(seq, Event{Time: t, Type: EventType(rng.Intn(p.NumTypes))})
		}
	}
	for _, ep := range p.Episodes {
		for t := int64(rng.Int63n(p.Period + 1)); t < p.Length; t += 1 + int64(poisson(rng, float64(p.Period))) {
			for _, typ := range ep {
				off := int64(rng.Int63n(p.BurstWidth))
				if t+off < p.Length {
					seq = append(seq, Event{Time: t + off, Type: typ})
				}
			}
		}
	}
	seq.Sort()
	return seq
}

func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := -mean
	k := 0
	p := 0.0
	for {
		p += -rng.ExpFloat64() // log of uniform
		if p < l {
			return k
		}
		k++
		if k > 10_000 {
			return k
		}
	}
}
