package episodes

import (
	"testing"

	"pincer/internal/itemset"
)

func TestWindowsBasic(t *testing.T) {
	seq := Sequence{
		{Time: 0, Type: 1},
		{Time: 1, Type: 2},
		{Time: 5, Type: 3},
	}
	d, err := Windows(seq, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	// window starts: -1..5 → 7 windows
	if d.Len() != 7 {
		t.Fatalf("windows = %d, want 7", d.Len())
	}
	wants := []itemset.Itemset{
		itemset.New(1),    // [-1,0]
		itemset.New(1, 2), // [0,1]
		itemset.New(2),    // [1,2]
		nil,               // [2,3]
		nil,               // [3,4]
		itemset.New(3),    // [4,5]
		itemset.New(3),    // [5,6]
	}
	for i, w := range wants {
		if !d.Transaction(i).Equal(w) {
			t.Errorf("window %d = %v, want %v", i, d.Transaction(i), w)
		}
	}
}

func TestWindowsErrors(t *testing.T) {
	if _, err := Windows(Sequence{{Time: 1, Type: 1}}, 0, 5); err == nil {
		t.Error("zero width accepted")
	}
	unsorted := Sequence{{Time: 5, Type: 1}, {Time: 1, Type: 2}}
	if _, err := Windows(unsorted, 2, 5); err == nil {
		t.Error("unsorted sequence accepted")
	}
	d, err := Windows(nil, 3, 5)
	if err != nil || d.Len() != 0 {
		t.Errorf("empty sequence: %v, %v", d.Len(), err)
	}
}

func TestSequenceSortAndSpan(t *testing.T) {
	s := Sequence{{Time: 3, Type: 1}, {Time: 1, Type: 2}, {Time: 2, Type: 3}}
	s.Sort()
	if s[0].Time != 1 || s[2].Time != 3 {
		t.Fatalf("Sort failed: %v", s)
	}
	first, last, ok := s.Span()
	if !ok || first != 1 || last != 3 {
		t.Fatalf("Span = %d,%d,%v", first, last, ok)
	}
	if _, _, ok := Sequence(nil).Span(); ok {
		t.Error("empty Span ok=true")
	}
}

func TestMineMaximalFindsPlantedEpisode(t *testing.T) {
	planted := itemset.New(10, 11, 12, 13, 14)
	seq := Generate(GeneratorParams{
		NumTypes:   40,
		Length:     3000,
		NoiseRate:  0.05,
		Episodes:   []itemset.Itemset{planted},
		Period:     30,
		BurstWidth: 5,
		Seed:       6,
	})
	eps, res, err := MineMaximal(seq, 10, 0.05, 40)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("no result")
	}
	found := false
	for _, e := range eps {
		if planted.IsSubsetOf(e.Types) {
			found = true
			if e.Frequency < 0.05 {
				t.Errorf("reported frequency %v below threshold", e.Frequency)
			}
		}
	}
	if !found {
		t.Fatalf("planted episode not recovered; got %v", eps)
	}
}

func TestMineMaximalEmpty(t *testing.T) {
	eps, res, err := MineMaximal(nil, 5, 0.1, 10)
	if err != nil || eps != nil || res != nil {
		t.Fatalf("empty mine: %v %v %v", eps, res, err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := GeneratorParams{
		NumTypes: 20, Length: 500, NoiseRate: 0.2,
		Episodes: []itemset.Itemset{itemset.New(1, 2)}, Period: 20, BurstWidth: 3, Seed: 3,
	}
	a := Generate(p)
	b := Generate(p)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs", i)
		}
	}
	if len(a) == 0 {
		t.Fatal("empty sequence generated")
	}
	// sortedness
	for i := 1; i < len(a); i++ {
		if a[i-1].Time > a[i].Time {
			t.Fatal("generated sequence unsorted")
		}
	}
}
