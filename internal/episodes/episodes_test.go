package episodes

import (
	"testing"

	"pincer/internal/itemset"
)

func TestWindowsBasic(t *testing.T) {
	seq := Sequence{
		{Time: 0, Type: 1},
		{Time: 1, Type: 2},
		{Time: 5, Type: 3},
	}
	d, err := Windows(seq, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	// window starts: -1..5 → 7 windows
	if d.Len() != 7 {
		t.Fatalf("windows = %d, want 7", d.Len())
	}
	wants := []itemset.Itemset{
		itemset.New(1),    // [-1,0]
		itemset.New(1, 2), // [0,1]
		itemset.New(2),    // [1,2]
		nil,               // [2,3]
		nil,               // [3,4]
		itemset.New(3),    // [4,5]
		itemset.New(3),    // [5,6]
	}
	for i, w := range wants {
		if !d.Transaction(i).Equal(w) {
			t.Errorf("window %d = %v, want %v", i, d.Transaction(i), w)
		}
	}
}

func TestWindowsErrors(t *testing.T) {
	if _, err := Windows(Sequence{{Time: 1, Type: 1}}, 0, 5); err == nil {
		t.Error("zero width accepted")
	}
	unsorted := Sequence{{Time: 5, Type: 1}, {Time: 1, Type: 2}}
	if _, err := Windows(unsorted, 2, 5); err == nil {
		t.Error("unsorted sequence accepted")
	}
	d, err := Windows(nil, 3, 5)
	if err != nil || d.Len() != 0 {
		t.Errorf("empty sequence: %v, %v", d.Len(), err)
	}
}

func TestSequenceSortAndSpan(t *testing.T) {
	s := Sequence{{Time: 3, Type: 1}, {Time: 1, Type: 2}, {Time: 2, Type: 3}}
	s.Sort()
	if s[0].Time != 1 || s[2].Time != 3 {
		t.Fatalf("Sort failed: %v", s)
	}
	first, last, ok := s.Span()
	if !ok || first != 1 || last != 3 {
		t.Fatalf("Span = %d,%d,%v", first, last, ok)
	}
	if _, _, ok := Sequence(nil).Span(); ok {
		t.Error("empty Span ok=true")
	}
}

func TestMineMaximalFindsPlantedEpisode(t *testing.T) {
	planted := itemset.New(10, 11, 12, 13, 14)
	seq := Generate(GeneratorParams{
		NumTypes:   40,
		Length:     3000,
		NoiseRate:  0.05,
		Episodes:   []itemset.Itemset{planted},
		Period:     30,
		BurstWidth: 5,
		Seed:       6,
	})
	eps, res, err := MineMaximal(seq, 10, 0.05, 40)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("no result")
	}
	found := false
	for _, e := range eps {
		if planted.IsSubsetOf(e.Types) {
			found = true
			if e.Frequency < 0.05 {
				t.Errorf("reported frequency %v below threshold", e.Frequency)
			}
		}
	}
	if !found {
		t.Fatalf("planted episode not recovered; got %v", eps)
	}
}

func TestMineMaximalEmpty(t *testing.T) {
	eps, res, err := MineMaximal(nil, 5, 0.1, 10)
	if err != nil || eps != nil || res != nil {
		t.Fatalf("empty mine: %v %v %v", eps, res, err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := GeneratorParams{
		NumTypes: 20, Length: 500, NoiseRate: 0.2,
		Episodes: []itemset.Itemset{itemset.New(1, 2)}, Period: 20, BurstWidth: 3, Seed: 3,
	}
	a := Generate(p)
	b := Generate(p)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs", i)
		}
	}
	if len(a) == 0 {
		t.Fatal("empty sequence generated")
	}
	// sortedness
	for i := 1; i < len(a); i++ {
		if a[i-1].Time > a[i].Time {
			t.Fatal("generated sequence unsorted")
		}
	}
}

// TestWindowFeedConcatEqualsWindows pins the streaming contract: a window
// feed's batches concatenate to exactly the frozen window database,
// including the partial windows at both sequence boundaries.
func TestWindowFeedConcatEqualsWindows(t *testing.T) {
	seq := Generate(GeneratorParams{
		NumTypes: 20, Length: 400, NoiseRate: 0.5,
		Episodes: []itemset.Itemset{itemset.New(2, 5, 9)},
		Period:   40, BurstWidth: 5, Seed: 3,
	})
	for _, width := range []int64{1, 7, 10} {
		ref, err := Windows(seq, width, 20)
		if err != nil {
			t.Fatal(err)
		}
		for _, batchSize := range []int{1, 13, 100000} {
			f, err := NewWindowFeed(seq, width, 20)
			if err != nil {
				t.Fatal(err)
			}
			if f.Remaining() != ref.Len() {
				t.Fatalf("width %d: Remaining = %d, want %d", width, f.Remaining(), ref.Len())
			}
			got := 0
			for {
				b := f.NextBatch(batchSize)
				if b == nil {
					break
				}
				for _, tx := range b {
					if !tx.Equal(ref.Transaction(got)) {
						t.Fatalf("width %d batch %d: window %d = %v, want %v",
							width, batchSize, got, tx, ref.Transaction(got))
					}
					got++
				}
			}
			if got != ref.Len() {
				t.Fatalf("width %d batch %d: streamed %d windows, want %d", width, batchSize, got, ref.Len())
			}
			if f.Remaining() != 0 || f.NextBatch(1) != nil {
				t.Fatalf("width %d: exhausted feed still has windows", width)
			}
		}
	}
}

// TestWindowFeedBoundaries pins the exact boundary windows of the
// Mannila–Toivonen definition on a tiny handcrafted sequence: the first
// window is the one whose LAST slot holds the first event, the final
// window the one STARTING at the last event.
func TestWindowFeedBoundaries(t *testing.T) {
	seq := Sequence{{Time: 10, Type: 1}, {Time: 12, Type: 2}}
	f, err := NewWindowFeed(seq, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	batch := f.NextBatch(100)
	// starts 8..12: [8,10]={1} [9,11]={1} [10,12]={1,2} [11,13]={2} [12,14]={2}
	wants := []itemset.Itemset{
		itemset.New(1), itemset.New(1), itemset.New(1, 2), itemset.New(2), itemset.New(2),
	}
	if len(batch) != len(wants) {
		t.Fatalf("windows = %d, want %d", len(batch), len(wants))
	}
	for i, w := range wants {
		if !batch[i].Equal(w) {
			t.Fatalf("window %d = %v, want %v", i, batch[i], w)
		}
	}

	// Empty sequence: no windows, not an error.
	ef, err := NewWindowFeed(nil, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ef.Remaining() != 0 || ef.NextBatch(1) != nil {
		t.Fatal("empty sequence produced windows")
	}
}
