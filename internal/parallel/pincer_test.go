package parallel

import (
	"strconv"
	"testing"

	"pincer/internal/core"
	"pincer/internal/counting"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
	"pincer/internal/quest"
)

// comparePincerResults asserts the full observable equivalence the
// count-distribution argument promises: identical MFS (order and supports),
// identical frequent set, and identical per-pass candidate accounting.
func comparePincerResults(t *testing.T, label string, par, seq *mfi.Result) {
	t.Helper()
	if len(par.MFS) != len(seq.MFS) {
		t.Fatalf("%s: |MFS| = %d, want %d", label, len(par.MFS), len(seq.MFS))
	}
	for i := range seq.MFS {
		if !par.MFS[i].Equal(seq.MFS[i]) {
			t.Fatalf("%s: MFS[%d] = %v, want %v", label, i, par.MFS[i], seq.MFS[i])
		}
		if par.MFSSupports[i] != seq.MFSSupports[i] {
			t.Fatalf("%s: support(%v) = %d, want %d", label, seq.MFS[i], par.MFSSupports[i], seq.MFSSupports[i])
		}
	}
	if (par.Frequent == nil) != (seq.Frequent == nil) {
		t.Fatalf("%s: frequent-set presence differs", label)
	}
	if seq.Frequent != nil {
		if par.Frequent.Len() != seq.Frequent.Len() {
			t.Fatalf("%s: |frequent| = %d, want %d", label, par.Frequent.Len(), seq.Frequent.Len())
		}
		seq.Frequent.Each(func(x itemset.Itemset, c int64) {
			if got, ok := par.Frequent.Count(x); !ok || got != c {
				t.Fatalf("%s: frequent support(%v) = %d,%v want %d", label, x, got, ok, c)
			}
		})
	}
	ps, ss := par.Stats, seq.Stats
	if ps.Passes != ss.Passes || ps.Candidates != ss.Candidates ||
		ps.MFCSCandidates != ss.MFCSCandidates || ps.TailPasses != ss.TailPasses ||
		ps.FrequentCount != ss.FrequentCount || ps.AdaptiveOff != ss.AdaptiveOff {
		t.Fatalf("%s: stats differ: parallel %+v, sequential %+v", label, ps, ss)
	}
	for i, pp := range ps.PassDetails {
		sp := ss.PassDetails[i]
		if pp != sp {
			t.Fatalf("%s: pass %d stats = %+v, want %+v", label, i+1, pp, sp)
		}
	}
}

// pincerWorkload is one quest-generated property-test case.
type pincerWorkload struct {
	params  quest.Params
	support float64
}

// pincerWorkloads builds the 12-workload matrix shared by the parallel
// count-distribution property test and the tid-list counter property test.
func pincerWorkloads() []pincerWorkload {
	var workloads []pincerWorkload
	// concentrated shapes (few patterns, long maximal itemsets) — the
	// paper's Figure-4 regime where the MFCS does the work
	for seed := int64(1); seed <= 5; seed++ {
		workloads = append(workloads, pincerWorkload{quest.Params{
			NumTransactions: 300 + 40*int(seed), AvgTxLen: 14, AvgPatternLen: 7,
			NumPatterns: 15, NumItems: 60, Seed: seed,
		}, 0.10})
	}
	// scattered shapes (many patterns, short maximal itemsets) — the
	// Figure-3 regime dominated by bottom-up counting
	for seed := int64(6); seed <= 10; seed++ {
		workloads = append(workloads, pincerWorkload{quest.Params{
			NumTransactions: 300 + 40*int(seed), AvgTxLen: 8, AvgPatternLen: 3,
			NumPatterns: 80, NumItems: 100, Seed: seed,
		}, 0.03})
	}
	// small dense edge shape: high support, tiny universe
	workloads = append(workloads,
		pincerWorkload{quest.Params{NumTransactions: 120, AvgTxLen: 6, AvgPatternLen: 4,
			NumPatterns: 5, NumItems: 12, Seed: 11}, 0.25},
		pincerWorkload{quest.Params{NumTransactions: 200, AvgTxLen: 10, AvgPatternLen: 5,
			NumPatterns: 10, NumItems: 30, Seed: 12}, 0.08},
	)
	return workloads
}

// TestMinePincerMatchesSequential is the count-distribution property test:
// across quest-generated workloads of both distribution shapes and across
// worker counts, parallel Pincer-Search reports results byte-identical to
// the sequential miner.
func TestMinePincerMatchesSequential(t *testing.T) {
	for _, wl := range pincerWorkloads() {
		d := quest.Generate(wl.params)
		copt := core.DefaultOptions()
		seq := must(core.Mine(dataset.NewScanner(d), wl.support, copt))
		for _, workers := range []int{1, 2, 4, 7} {
			opt := DefaultOptions()
			opt.Workers = workers
			par := must(MinePincer(d, wl.support, opt))
			label := wl.params.Name()
			comparePincerResults(t, label+"/workers="+strconv.Itoa(workers), par, seq)
			if par.Stats.Algorithm != "pincer-parallel" {
				t.Errorf("algorithm = %q", par.Stats.Algorithm)
			}
		}
	}
}

func TestMinePincerKeepFrequentOff(t *testing.T) {
	d := quest.Generate(quest.Params{
		NumTransactions: 200, AvgTxLen: 10, AvgPatternLen: 5,
		NumPatterns: 10, NumItems: 40, Seed: 3,
	})
	opt := DefaultOptions()
	opt.Workers = 3
	opt.KeepFrequent = false
	par := must(MinePincer(d, 0.08, opt))
	if par.Frequent != nil {
		t.Error("Frequent retained with KeepFrequent=false")
	}
	copt := core.DefaultOptions()
	copt.KeepFrequent = false
	seq := must(core.Mine(dataset.NewScanner(d), 0.08, copt))
	comparePincerResults(t, "keepfrequent-off", par, seq)
}

func TestMinePincerPure(t *testing.T) {
	// The pure (non-adaptive) variant exercises unlimited MFCS maintenance
	// through the same seam.
	d := quest.Generate(quest.Params{
		NumTransactions: 250, AvgTxLen: 12, AvgPatternLen: 6,
		NumPatterns: 12, NumItems: 50, Seed: 9,
	})
	copt := core.DefaultOptions()
	copt.Pure = true
	seq := must(core.Mine(dataset.NewScanner(d), 0.10, copt))
	opt := DefaultOptions()
	opt.Workers = 4
	par := must(MinePincerOpts(d, 0.10, copt, opt))
	comparePincerResults(t, "pure", par, seq)
}

func TestMinePincerEdgeCases(t *testing.T) {
	// empty database
	res := must(MinePincer(dataset.Empty(5), 0.5, DefaultOptions()))
	if len(res.MFS) != 0 {
		t.Errorf("empty MFS = %v", res.MFS)
	}
	// fewer transactions than workers
	d := dataset.New([]dataset.Transaction{itemset.New(1, 2), itemset.New(1, 2)})
	opt := DefaultOptions()
	opt.Workers = 16
	res = must(MinePincer(d, 1.0, opt))
	if err := mfi.VerifyAgainst(res.MFS, []itemset.Itemset{itemset.New(1, 2)}); err != nil {
		t.Fatal(err)
	}
	if res.MFSSupports[0] != 2 {
		t.Errorf("support = %d", res.MFSSupports[0])
	}
	// explicit count threshold
	res = must(MinePincerCount(d, 2, core.DefaultOptions(), opt))
	if err := mfi.VerifyAgainst(res.MFS, []itemset.Itemset{itemset.New(1, 2)}); err != nil {
		t.Fatal(err)
	}
}

// TestTidListCounterMatchesScan is the representation-agreement property
// test: across the same 12-workload matrix, the pincer miner counted by
// tid-structure intersection — in every representation mode, serial and
// parallel — reports results byte-identical to the scan-counted miner,
// including per-pass candidate accounting. It also covers the injected
// Counter path of the parallel driver.
func TestTidListCounterMatchesScan(t *testing.T) {
	modes := []struct {
		name string
		opt  counting.TidListOptions
	}{
		{"auto-w1", counting.TidListOptions{Workers: 1}},
		{"auto-w4", counting.TidListOptions{Workers: 4}},
		{"bitset", counting.TidListOptions{Workers: 1, Rep: counting.RepBitset}},
		{"list", counting.TidListOptions{Workers: 1, Rep: counting.RepList}},
		{"diffset", counting.TidListOptions{Workers: 1, Rep: counting.RepDiffset}},
	}
	for _, wl := range pincerWorkloads() {
		d := quest.Generate(wl.params)
		minCount := dataset.MinCountFor(d.Len(), wl.support)
		seq := must(core.MineCount(dataset.NewScanner(d), minCount, core.DefaultOptions()))
		label := wl.params.Name()
		for _, m := range modes {
			copt := core.DefaultOptions()
			copt.Counter = counting.NewTidListCounter(d, m.opt)
			got := must(core.MineCount(dataset.NewScanner(d), minCount, copt))
			comparePincerResults(t, label+"/tidlist-"+m.name, got, seq)
		}
		// Same counter injected through the parallel driver: the counting
		// stage runs vertically, the candidate stages still shard.
		copt := core.DefaultOptions()
		copt.Counter = counting.NewTidListCounter(d, counting.TidListOptions{Workers: 2})
		popt := DefaultOptions()
		popt.Workers = 2
		par := must(MinePincerCount(d, minCount, copt, popt))
		comparePincerResults(t, label+"/tidlist-parallel-w2", par, seq)
	}
}
