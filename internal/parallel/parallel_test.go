package parallel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pincer/internal/apriori"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
	"pincer/internal/quest"
)

func TestParallelMatchesSequential(t *testing.T) {
	d := quest.Generate(quest.Params{
		NumTransactions: 1000, AvgTxLen: 10, AvgPatternLen: 4,
		NumPatterns: 40, NumItems: 80, Seed: 5,
	})
	seq := must(apriori.Mine(dataset.NewScanner(d), 0.02, apriori.DefaultOptions()))
	for _, workers := range []int{1, 2, 4, 7} {
		opt := DefaultOptions()
		opt.Workers = workers
		par := must(MineApriori(d, 0.02, opt))
		if err := mfi.VerifyAgainst(par.MFS, seq.MFS); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.Frequent.Len() != seq.Frequent.Len() {
			t.Fatalf("workers=%d: frequent %d vs %d", workers, par.Frequent.Len(), seq.Frequent.Len())
		}
		// exact supports survive the merge
		seq.Frequent.Each(func(x itemset.Itemset, c int64) {
			got, ok := par.Frequent.Count(x)
			if !ok || got != c {
				t.Errorf("workers=%d: support(%v) = %d,%v want %d", workers, x, got, ok, c)
			}
		})
		// pass structure identical to sequential level-wise mining: the
		// parallel variant skips the triangle shortcut, so compare against
		// the candidate-per-level structure rather than raw pass count.
		if par.Stats.Passes < seq.Stats.Passes {
			t.Errorf("workers=%d: fewer passes (%d) than sequential (%d)?", workers, par.Stats.Passes, seq.Stats.Passes)
		}
	}
}

func TestParallelEdgeCases(t *testing.T) {
	// empty database
	res := must(MineApriori(dataset.Empty(5), 0.5, DefaultOptions()))
	if len(res.MFS) != 0 {
		t.Errorf("empty MFS = %v", res.MFS)
	}
	// fewer transactions than workers
	d := dataset.New([]dataset.Transaction{itemset.New(1, 2), itemset.New(1, 2)})
	opt := DefaultOptions()
	opt.Workers = 16
	res = must(MineApriori(d, 1.0, opt))
	if err := mfi.VerifyAgainst(res.MFS, []itemset.Itemset{itemset.New(1, 2)}); err != nil {
		t.Fatal(err)
	}
	if res.MFSSupports[0] != 2 {
		t.Errorf("support = %d", res.MFSSupports[0])
	}
	// KeepFrequent=false
	opt.KeepFrequent = false
	res = must(MineApriori(d, 1.0, opt))
	if res.Frequent != nil {
		t.Error("Frequent retained")
	}
	if res.MFSSupports[0] != 2 {
		t.Errorf("support without KeepFrequent = %d", res.MFSSupports[0])
	}
}

func TestQuickParallelMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		universe := 4 + r.Intn(8)
		numTx := 5 + r.Intn(60)
		d := dataset.Empty(universe)
		for i := 0; i < numTx; i++ {
			n := 1 + r.Intn(universe)
			items := make([]itemset.Item, n)
			for j := range items {
				items[j] = itemset.Item(r.Intn(universe))
			}
			d.Append(itemset.New(items...))
		}
		sup := 0.05 + r.Float64()*0.4
		opt := DefaultOptions()
		opt.Workers = 1 + r.Intn(6)
		par := must(MineApriori(d, sup, opt))
		seq := must(apriori.Mine(dataset.NewScanner(d), sup, apriori.DefaultOptions()))
		return mfi.VerifyAgainst(par.MFS, seq.MFS) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// must unwraps the (result, error) mining returns; in-memory test scans
// cannot fail.
func must[R any](res R, err error) R {
	if err != nil {
		panic(err)
	}
	return res
}
