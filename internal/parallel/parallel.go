// Package parallel implements count-distribution parallel mining after
// Agrawal & Shafer ("Parallel Mining of Association Rules", 1996) — the
// parallel-algorithms direction the paper surveys in §5 and to which it
// notes its approach applies.
//
// In count distribution every worker owns a horizontal partition of the
// database and a private copy of the candidate set; each pass, workers
// count their partitions concurrently and the per-candidate counts are
// summed at the barrier. The algorithm's pass/candidate structure is
// identical to the sequential one — only wall-clock time changes — so the
// package exposes parallel variants of both Apriori-style candidate
// counting and the full Pincer-Search loop through a drop-in Counter.
package parallel

import (
	"runtime"
	"sync"

	"pincer/internal/apriori"
	"pincer/internal/counting"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
)

// Options configures parallel mining.
type Options struct {
	// Workers is the number of counting goroutines (default: GOMAXPROCS).
	Workers int
	// Engine is the per-worker counting engine.
	Engine counting.Engine
	// KeepFrequent retains the frequent set (passed through to the miner).
	KeepFrequent bool
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options {
	return Options{Engine: counting.EngineHashTree, KeepFrequent: true}
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// parallelScanner implements dataset.Scanner by fanning each Scan out to
// one goroutine per partition. The callback fn must therefore be safe for
// concurrent invocation — the miners' callbacks are not, so this type is
// unexported and used only through countingScanner below.
type countingScanner struct {
	parts    [][]itemset.Itemset
	bits     [][]*itemset.Bitset
	numItems int
	total    int
	passes   int
	opt      Options
}

// newCountingScanner splits the dataset into per-worker slices.
func newCountingScanner(d *dataset.Dataset, opt Options) *countingScanner {
	w := opt.workers()
	cs := &countingScanner{numItems: d.NumItems(), total: d.Len(), opt: opt}
	parts := d.Partitions(w)
	for _, p := range parts {
		cs.parts = append(cs.parts, p.Transactions())
		cs.bits = append(cs.bits, p.Bitsets())
	}
	return cs
}

// Scan implements dataset.Scanner. Counting work is distributed: the
// callback is invoked concurrently from one goroutine per partition, so fn
// must be internally synchronized — which the mergeable counters below are.
func (cs *countingScanner) Scan(fn func(tx itemset.Itemset, bits *itemset.Bitset)) {
	cs.passes++
	var wg sync.WaitGroup
	for i := range cs.parts {
		wg.Add(1)
		go func(txs []itemset.Itemset, bits []*itemset.Bitset) {
			defer wg.Done()
			for j, tx := range txs {
				fn(tx, bits[j])
			}
		}(cs.parts[i], cs.bits[i])
	}
	wg.Wait()
}

func (cs *countingScanner) Len() int      { return cs.total }
func (cs *countingScanner) NumItems() int { return cs.numItems }
func (cs *countingScanner) Passes() int   { return cs.passes }

// shardedCounter gives each goroutine its own engine instance keyed by a
// cheap goroutine-local: a channel-based free list. Counts merge on demand.
type shardedCounter struct {
	candidates []itemset.Itemset
	engine     counting.Engine
	pool       chan counting.Counter
	all        []counting.Counter
	mu         sync.Mutex
}

func newShardedCounter(e counting.Engine, candidates []itemset.Itemset, workers int) *shardedCounter {
	return &shardedCounter{
		candidates: candidates,
		engine:     e,
		pool:       make(chan counting.Counter, workers*2),
	}
}

// Add counts one transaction on a private engine instance drawn from the
// pool (created lazily), so concurrent Adds never contend on counter state.
func (s *shardedCounter) Add(tx itemset.Itemset) {
	var c counting.Counter
	select {
	case c = <-s.pool:
	default:
		c = counting.NewCounter(s.engine, s.candidates)
		s.mu.Lock()
		s.all = append(s.all, c)
		s.mu.Unlock()
	}
	c.Add(tx)
	s.pool <- c
}

// Counts merges the shards.
func (s *shardedCounter) Counts() []int64 {
	total := make([]int64, len(s.candidates))
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.all {
		for i, v := range c.Counts() {
			total[i] += v
		}
	}
	return total
}

// NumCandidates implements counting.Counter.
func (s *shardedCounter) NumCandidates() int { return len(s.candidates) }

// MineApriori runs count-distribution Apriori: pass structure identical to
// the sequential algorithm, counting distributed over Workers goroutines.
func MineApriori(d *dataset.Dataset, minSupport float64, opt Options) *mfi.Result {
	workers := opt.workers()
	minCount := d.MinCount(minSupport)
	sc := newCountingScanner(d, opt)

	res := &mfi.Result{MinCount: minCount, NumTransactions: d.Len(), Frequent: itemset.NewSet(0)}
	res.Stats.Algorithm = "apriori-parallel"

	// Pass 1: per-worker item arrays, merged.
	arrays := make([]*counting.ItemArray, len(sc.parts))
	var wg sync.WaitGroup
	for i := range sc.parts {
		arrays[i] = counting.NewItemArray(d.NumItems())
		wg.Add(1)
		go func(a *counting.ItemArray, txs []itemset.Itemset) {
			defer wg.Done()
			for _, tx := range txs {
				a.Add(tx)
			}
		}(arrays[i], sc.parts[i])
	}
	wg.Wait()
	itemCounts := make([]int64, d.NumItems())
	for _, a := range arrays {
		for i, v := range a.Counts() {
			itemCounts[i] += v
		}
	}
	var lk []itemset.Itemset
	counts := make(map[string]int64)
	note := func(x itemset.Itemset, c int64) {
		counts[x.Key()] = c
		if opt.KeepFrequent {
			res.Frequent.AddWithCount(x, c)
		}
	}
	var all []itemset.Itemset
	for i, c := range itemCounts {
		if c >= minCount {
			s := itemset.Itemset{itemset.Item(i)}
			lk = append(lk, s)
			all = append(all, s)
			note(s, c)
		}
	}
	res.Stats.AddPass(mfi.PassStats{Candidates: d.NumItems(), Frequent: len(lk)})

	// Passes ≥ 2: sharded counting over Apriori-gen candidates. (The
	// triangular-matrix pass-2 shortcut is omitted here: sharding the flat
	// candidate list keeps the code uniform; pass accounting is unchanged.)
	for len(lk) > 1 {
		ck := apriori.Gen(lk, itemset.SetOf(lk...))
		if len(ck) == 0 {
			break
		}
		ctr := newShardedCounter(opt.Engine, ck, workers)
		sc.Scan(func(tx itemset.Itemset, _ *itemset.Bitset) { ctr.Add(tx) })
		merged := ctr.Counts()
		var next []itemset.Itemset
		for i, c := range ck {
			if merged[i] >= minCount {
				next = append(next, c)
				all = append(all, c)
				note(c, merged[i])
			}
		}
		res.Stats.AddPass(mfi.PassStats{Candidates: len(ck), Frequent: len(next)})
		if len(next) == 0 {
			break
		}
		lk = next
	}

	res.MFS = itemset.MaximalOnly(all)
	res.MFSSupports = make([]int64, len(res.MFS))
	for i, m := range res.MFS {
		res.MFSSupports[i] = counts[m.Key()]
	}
	if !opt.KeepFrequent {
		res.Frequent = nil
	}
	return res
}
