// Package parallel implements count-distribution parallel mining after
// Agrawal & Shafer ("Parallel Mining of Association Rules", 1996) — the
// parallel-algorithms direction the paper surveys in §5 and to which it
// notes its approach applies.
//
// In count distribution every worker owns a horizontal partition of the
// database and all workers share the candidate set; each pass, workers
// count their partitions concurrently into private counters and the
// per-candidate counts are summed at the pass barrier. The algorithm's
// pass/candidate structure is identical to the sequential one — only
// wall-clock time changes — so the package exposes parallel variants of
// both Apriori-style candidate counting (MineApriori) and the full
// Pincer-Search loop (MinePincer), the latter by injecting a partitioned
// counting strategy into internal/core's PassCounter seam.
//
// Counting is contention-free: worker w touches only state indexed by w
// (its partition, its counter shard), so the hot per-transaction path takes
// no locks and sends no messages. The only synchronization is the
// WaitGroup barrier at the end of each pass, where counters merge.
package parallel

import (
	"context"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"pincer/internal/apriori"
	"pincer/internal/checkpoint"
	"pincer/internal/counting"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
	"pincer/internal/obsv"
)

// Options configures parallel mining.
type Options struct {
	// Workers is the number of counting goroutines (default: GOMAXPROCS).
	Workers int
	// Engine is the per-worker counting engine.
	Engine counting.Engine
	// KeepFrequent retains the frequent set (passed through to the miner).
	KeepFrequent bool
	// Tracer receives per-pass trace events; nil disables tracing (no
	// timestamps are taken).
	Tracer obsv.Tracer
	// Context cancels the run at pass boundaries and inside every worker's
	// scan loop (each worker checks independently every CancelCheckEvery
	// transactions); cancellation surfaces as a *mfi.PartialResultError.
	Context context.Context
	// Deadline, if positive, bounds the run's wall clock via a timeout
	// context derived from Context.
	Deadline time.Duration
	// CancelCheckEvery is the per-worker number of transactions between
	// in-scan context checks (default mfi.DefaultCancelCheckEvery).
	CancelCheckEvery int
	// Checkpointer, for the MinePincer* family, persists pass-barrier state
	// for MinePincerResume / MinePincerFileResume (ignored by MineApriori,
	// which supports cancellation but not checkpointing).
	Checkpointer checkpoint.Checkpointer
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options {
	return Options{Engine: counting.EngineHashTree, KeepFrequent: true}
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// partitions is the horizontally partitioned database: one contiguous
// transaction slice (with precomputed bitsets) per worker. It is the unit
// of count distribution — worker w scans exactly parts[w] every pass.
type partitions struct {
	parts    [][]itemset.Itemset
	bits     [][]*itemset.Bitset
	numItems int
	total    int
}

// newPartitions splits the dataset into per-worker slices. The number of
// partitions may be lower than workers when the database is smaller than
// the worker count.
func newPartitions(d *dataset.Dataset, workers int) *partitions {
	p := &partitions{numItems: d.NumItems(), total: d.Len()}
	for _, part := range d.Partitions(workers) {
		p.parts = append(p.parts, part.Transactions())
		p.bits = append(p.bits, part.Bitsets())
	}
	return p
}

// workers returns the effective worker count (= number of partitions).
func (p *partitions) workers() int { return len(p.parts) }

// each runs fn once per partition, one goroutine each, and waits for all of
// them — one distributed database pass. fn receives the worker index w; the
// contention-free discipline is that everything fn writes must be indexed
// by w (a counter shard, a private slice), never shared.
//
// A panic inside a worker is recovered on that goroutine, and the first one
// is re-raised on the calling goroutine at the barrier wrapped in
// *mfi.WorkerPanic, so the mining boundary converts it into a returned
// error instead of the panic killing the process from an anonymous
// goroutine (where no caller's recover could see it).
func (p *partitions) each(fn func(w int, txs []itemset.Itemset, bits []*itemset.Bitset)) {
	var wg sync.WaitGroup
	var once sync.Once
	var wp *mfi.WorkerPanic
	for i := range p.parts {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					once.Do(func() {
						wp = &mfi.WorkerPanic{Value: r, Stack: debug.Stack()}
					})
				}
			}()
			fn(w, p.parts[w], p.bits[w])
		}(i)
	}
	wg.Wait()
	if wp != nil {
		panic(wp)
	}
}

// MineApriori runs count-distribution Apriori: pass structure identical to
// the sequential algorithm, counting distributed over Workers goroutines
// with a private counter shard per worker. A non-nil error reports a
// captured worker panic or counter-merge mismatch (see
// mfi.RecoverMiningError).
func MineApriori(d *dataset.Dataset, minSupport float64, opt Options) (_ *mfi.Result, err error) {
	defer mfi.RecoverMiningError(&err)
	ctx := opt.Context
	var cancel context.CancelFunc
	if opt.Deadline > 0 {
		if ctx == nil {
			ctx = context.Background()
		}
		ctx, cancel = context.WithTimeout(ctx, opt.Deadline)
	}
	if cancel != nil {
		defer cancel()
	}
	if ctx != nil && ctx.Done() == nil {
		ctx = nil // uncancellable: skip every check
	}
	start := time.Now()
	minCount := d.MinCount(minSupport)
	p := newPartitions(d, opt.workers())

	res := &mfi.Result{MinCount: minCount, NumTransactions: d.Len(), Frequent: itemset.NewSet(0)}
	res.Stats.Algorithm = "apriori-parallel"

	tr := opt.Tracer
	var scanDur time.Duration
	pass := func(fn func(w int, txs []itemset.Itemset, bits []*itemset.Bitset)) {
		if tr == nil {
			p.each(fn)
			return
		}
		t0 := time.Now()
		p.each(fn)
		scanDur = time.Since(t0)
	}
	emit := func() {
		if tr == nil {
			return
		}
		ps := res.Stats.PassDetails[len(res.Stats.PassDetails)-1]
		d := scanDur
		scanDur = 0
		tr.PassDone(obsv.PassEvent{
			Algorithm:    res.Stats.Algorithm,
			Pass:         ps.Pass,
			Phase:        obsv.PhaseBottomUp,
			Candidates:   ps.Candidates,
			Frequent:     ps.Frequent,
			Infrequent:   ps.Candidates - ps.Frequent,
			MFSFound:     ps.MFSFound,
			ScanDuration: d,
			Workers:      p.workers(),
		})
	}
	if tr != nil {
		tr.RunStart(obsv.RunInfo{
			Algorithm:       res.Stats.Algorithm,
			Workers:         p.workers(),
			MinCount:        minCount,
			NumTransactions: d.Len(),
		})
	}

	var lk []itemset.Itemset
	counts := make(map[string]int64)
	note := func(x itemset.Itemset, c int64) {
		counts[x.Key()] = c
		if opt.KeepFrequent {
			res.Frequent.AddWithCount(x, c)
		}
	}
	var all []itemset.Itemset
	// finish assembles the result from the frequent sets found so far; it
	// serves both the normal return and the abort recovery below.
	finish := func() {
		res.MFS = itemset.MaximalOnly(all)
		res.MFSSupports = make([]int64, len(res.MFS))
		for i, m := range res.MFS {
			res.MFSSupports[i] = counts[m.Key()]
		}
		if !opt.KeepFrequent {
			res.Frequent = nil
		}
		res.Stats.Duration = time.Since(start)
	}
	// Cancellation raises an Abort — at a pass boundary on this goroutine,
	// or inside a worker (captured and re-raised at the barrier wrapped in
	// *mfi.WorkerPanic, which AbortFrom unwraps). Either way it becomes a
	// *mfi.PartialResultError; Apriori keeps no MFCS, so the bound is nil.
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		ab := mfi.AbortFrom(r)
		if ab == nil {
			panic(r)
		}
		finish()
		if tr != nil {
			tr.RunDone(obsv.RunSummary{
				Algorithm:  res.Stats.Algorithm,
				Passes:     res.Stats.Passes,
				Candidates: res.Stats.Candidates,
				MFSSize:    len(res.MFS),
				Duration:   res.Stats.Duration,
				Aborted:    true, AbortReason: ab.Reason,
			})
		}
		err = &mfi.PartialResultError{
			Result: res, Pass: res.Stats.Passes, Reason: ab.Reason, Cause: ab.Cause,
		}
	}()

	// Pass 1: per-worker item arrays, merged at the barrier.
	mfi.CheckContext(ctx)
	arrays := make([]*counting.ItemArray, p.workers())
	pass(func(w int, txs []itemset.Itemset, _ []*itemset.Bitset) {
		guard := mfi.NewScanGuard(ctx, opt.CancelCheckEvery)
		arrays[w] = counting.NewItemArray(d.NumItems())
		for _, tx := range txs {
			guard.Tick()
			arrays[w].Add(tx)
		}
	})
	itemCounts := make([]int64, d.NumItems())
	for _, a := range arrays {
		counting.SumInto(itemCounts, a.Counts())
	}
	for i, c := range itemCounts {
		if c >= minCount {
			s := itemset.Itemset{itemset.Item(i)}
			lk = append(lk, s)
			all = append(all, s)
			note(s, c)
		}
	}
	res.Stats.AddPass(mfi.PassStats{Candidates: d.NumItems(), Frequent: len(lk)})
	emit()

	// Passes ≥ 2: sharded counting over Apriori-gen candidates. (The
	// triangular-matrix pass-2 shortcut is omitted here: sharding the flat
	// candidate list keeps the code uniform; pass accounting is unchanged.)
	for len(lk) > 1 {
		mfi.CheckContext(ctx)
		ck := apriori.Gen(lk, itemset.SetOf(lk...))
		if len(ck) == 0 {
			break
		}
		ctr := counting.NewSharded(opt.Engine, ck, p.workers())
		pass(func(w int, txs []itemset.Itemset, _ []*itemset.Bitset) {
			guard := mfi.NewScanGuard(ctx, opt.CancelCheckEvery)
			sh := ctr.Shard(w)
			for _, tx := range txs {
				guard.Tick()
				sh.Add(tx)
			}
		})
		merged := ctr.Counts()
		var next []itemset.Itemset
		for i, c := range ck {
			if merged[i] >= minCount {
				next = append(next, c)
				all = append(all, c)
				note(c, merged[i])
			}
		}
		res.Stats.AddPass(mfi.PassStats{Candidates: len(ck), Frequent: len(next)})
		emit()
		if len(next) == 0 {
			break
		}
		lk = next
	}

	finish()
	if tr != nil {
		tr.RunDone(obsv.RunSummary{
			Algorithm:  res.Stats.Algorithm,
			Passes:     res.Stats.Passes,
			Candidates: res.Stats.Candidates,
			MFSSize:    len(res.MFS),
			Duration:   res.Stats.Duration,
		})
	}
	return res, nil
}
