package parallel

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"pincer/internal/core"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
	"pincer/internal/obsv"
	"pincer/internal/quest"
)

func streamTestDB() *dataset.Dataset {
	return quest.Generate(quest.Params{
		NumTransactions: 400, AvgTxLen: 8, AvgPatternLen: 4,
		NumPatterns: 20, NumItems: 40, Seed: 7,
	})
}

func writeBasket(t *testing.T, d *dataset.Dataset) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "db.basket")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteBasket(f, d); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMinePincerFileMatchesSequential is the correctness property of the
// streaming count-distribution strategy: identical results and pass metrics
// to the sequential miner, at every worker count.
func TestMinePincerFileMatchesSequential(t *testing.T) {
	d := streamTestDB()
	path := writeBasket(t, d)
	copt := core.DefaultOptions()
	seq := must(core.Mine(dataset.NewScanner(d), 0.05, copt))
	for _, workers := range []int{1, 2, 4} {
		fs, err := dataset.OpenFileScanner(path)
		if err != nil {
			t.Fatal(err)
		}
		opt := DefaultOptions()
		opt.Workers = workers
		par, err := MinePincerFile(fs, 0.05, copt, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := mfi.VerifyAgainst(par.MFS, seq.MFS); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range par.MFSSupports {
			if par.MFSSupports[i] != seq.MFSSupports[i] {
				t.Fatalf("workers=%d: support(%v) = %d, want %d",
					workers, par.MFS[i], par.MFSSupports[i], seq.MFSSupports[i])
			}
		}
		if par.Stats.Passes != seq.Stats.Passes || par.Stats.Candidates != seq.Stats.Candidates {
			t.Fatalf("workers=%d: passes/candidates %d/%d, want %d/%d",
				workers, par.Stats.Passes, par.Stats.Candidates, seq.Stats.Passes, seq.Stats.Candidates)
		}
	}
}

// streamCorruptScanner appends a malformed line to the underlying file
// once a given number of passes have started.
type streamCorruptScanner struct {
	fs    *dataset.FileScanner
	path  string
	after int
	scans int
}

func (c *streamCorruptScanner) Scan(fn func(tx itemset.Itemset, bits *itemset.Bitset)) {
	c.scans++
	if c.scans == c.after+1 {
		f, err := os.OpenFile(c.path, os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			panic(err)
		}
		if _, err := f.WriteString("2 bogus 9\n"); err != nil {
			panic(err)
		}
		f.Close()
	}
	c.fs.Scan(fn)
}

func (c *streamCorruptScanner) Len() int      { return c.fs.Len() }
func (c *streamCorruptScanner) NumItems() int { return c.fs.NumItems() }
func (c *streamCorruptScanner) Passes() int   { return c.fs.Passes() }

// TestMinePincerFileCorruptedMidRunReturnsError is the headline regression:
// a basket file that turns corrupt after pass 1 must surface as an error
// from the parallel mining API — not a panic — at every worker count.
func TestMinePincerFileCorruptedMidRunReturnsError(t *testing.T) {
	d := streamTestDB()
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			path := writeBasket(t, d)
			fs, err := dataset.OpenFileScanner(path)
			if err != nil {
				t.Fatal(err)
			}
			sc := &streamCorruptScanner{fs: fs, path: path, after: 1}
			opt := DefaultOptions()
			opt.Workers = workers
			res, err := MinePincerFile(sc, 0.05, core.DefaultOptions(), opt)
			if err == nil {
				t.Fatal("mining a corrupted file reported no error")
			}
			var fse *dataset.FileScanError
			if !errors.As(err, &fse) {
				t.Fatalf("err = %T (%v), want *dataset.FileScanError", err, err)
			}
			if res != nil {
				t.Errorf("result %+v returned alongside the error", res)
			}
		})
	}
}

// TestStreamWorkerPanicSurfacesAsError drives the worker-failure protocol of
// the streaming counter: a panic inside a counting goroutine is re-raised at
// the barrier as *mfi.WorkerPanic and converted to an error at the boundary.
func TestStreamWorkerPanicSurfacesAsError(t *testing.T) {
	d := streamTestDB()
	s := &streamPassCounter{sc: dataset.NewScanner(d), workers: 4}
	err := func() (err error) {
		defer mfi.RecoverMiningError(&err)
		s.distribute(func(w int, tx itemset.Itemset) { panic("worker boom") })
		return nil
	}()
	var wp *mfi.WorkerPanic
	if !errors.As(err, &wp) {
		t.Fatalf("err = %T (%v), want *mfi.WorkerPanic", err, err)
	}
	if wp.Value != "worker boom" {
		t.Errorf("Value = %v, want the original panic value", wp.Value)
	}
	if len(wp.Stack) == 0 {
		t.Error("worker stack not captured")
	}
}

// TestPartitionWorkerPanicSurfacesAsError does the same for the partitioned
// (in-memory) counting workers.
func TestPartitionWorkerPanicSurfacesAsError(t *testing.T) {
	p := newPartitions(streamTestDB(), 4)
	err := func() (err error) {
		defer mfi.RecoverMiningError(&err)
		p.each(func(w int, txs []itemset.Itemset, bits []*itemset.Bitset) { panic("boom") })
		return nil
	}()
	var wp *mfi.WorkerPanic
	if !errors.As(err, &wp) {
		t.Fatalf("err = %T (%v), want *mfi.WorkerPanic", err, err)
	}
}

// TestConcurrentScrapeDuringParallelMine hammers the metrics endpoint while
// a traced parallel mine runs; with -race it proves the tracer, registry,
// and exposition are data-race free against the mining goroutines.
func TestConcurrentScrapeDuringParallelMine(t *testing.T) {
	reg := obsv.NewRegistry()
	tracer := obsv.NewMetricsTracer(reg)
	srv, err := obsv.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, ep := range []string{"/metrics", "/debug/vars"} {
					resp, err := http.Get("http://" + srv.Addr + ep)
					if err != nil {
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}

	d := streamTestDB()
	opt := DefaultOptions()
	opt.Workers = 4
	opt.Tracer = tracer
	const runs = 3
	for i := 0; i < runs; i++ {
		if _, err := MinePincer(d, 0.05, opt); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if got := reg.Snapshot()["pincer_runs_total"]; got != runs {
		t.Errorf("pincer_runs_total = %d, want %d", got, runs)
	}
}
