package parallel

import (
	"context"

	"pincer/internal/core"
	"pincer/internal/counting"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
)

// passCounter implements core.PassCounter with count distribution: every
// pass, each worker scans its partition into private counters — a shard of
// the candidate structure, a private element-count slice — and the counts
// are summed at the barrier. Integer addition is associative and
// commutative, so the merged counts, and therefore the miner's every
// decision, are identical to a sequential scan.
type passCounter struct {
	p          *partitions
	ctx        context.Context
	checkEvery int
}

// BindContext implements core.ContextBinder: every worker gets a private
// ScanGuard per pass, so cancellation interrupts each partition scan within
// checkEvery transactions. An Abort raised inside a worker is captured and
// re-raised at the barrier like any worker panic, and the miner's recovery
// unwraps it back into a cancellation.
func (pc *passCounter) BindContext(ctx context.Context, checkEvery int) {
	pc.ctx = ctx
	pc.checkEvery = checkEvery
}

// NewPassCounter builds the count-distribution counting strategy for
// injection into core.Options.Counter. The database is partitioned once;
// every pass reuses the same partitions.
func NewPassCounter(d *dataset.Dataset, workers int) core.PassCounter {
	if workers < 1 {
		workers = 1
	}
	return &passCounter{p: newPartitions(d, workers)}
}

// Workers implements core.WorkerCounted: the number of counting goroutines
// (= partitions) per pass, reported in trace events.
func (pc *passCounter) Workers() int { return pc.p.workers() }

// CountItems implements core.PassCounter (the pass-1 shape).
func (pc *passCounter) CountItems(numItems int, elems []itemset.Itemset, elemBits []*itemset.Bitset) ([]int64, []int64) {
	w := pc.p.workers()
	arrays := make([]*counting.ItemArray, w)
	partElems := make([][]int64, w)
	pc.p.each(func(wi int, txs []itemset.Itemset, bits []*itemset.Bitset) {
		guard := mfi.NewScanGuard(pc.ctx, pc.checkEvery)
		arrays[wi] = counting.NewItemArray(numItems)
		partElems[wi] = countElemsDirect(elemBits, txs, bits, func(tx itemset.Itemset) {
			guard.Tick()
			arrays[wi].Add(tx)
		})
	})
	itemCounts := make([]int64, numItems)
	for _, a := range arrays {
		counting.SumInto(itemCounts, a.Counts())
	}
	return itemCounts, mergeElemCounts(len(elems), partElems)
}

// CountPairs implements core.PassCounter (the pass-2 shape): per-worker
// Triangle shards over a shared live-item index, merged at the barrier.
func (pc *passCounter) CountPairs(numItems int, live itemset.Itemset, elems []itemset.Itemset, elemBits []*itemset.Bitset) (*counting.Triangle, []int64) {
	w := pc.p.workers()
	base := counting.NewTriangle(numItems, live)
	shards := make([]*counting.Triangle, w)
	for i := range shards {
		if i == 0 {
			shards[i] = base
		} else {
			shards[i] = base.Shard()
		}
	}
	partElems := make([][]int64, w)
	pc.p.each(func(wi int, txs []itemset.Itemset, bits []*itemset.Bitset) {
		guard := mfi.NewScanGuard(pc.ctx, pc.checkEvery)
		tri := shards[wi]
		partElems[wi] = countElemsDirect(elemBits, txs, bits, func(tx itemset.Itemset) {
			guard.Tick()
			tri.Add(tx)
		})
	})
	for _, s := range shards[1:] {
		base.Merge(s)
	}
	return base, mergeElemCounts(len(elems), partElems)
}

// CountCandidates implements core.PassCounter (the pass ≥ 3 shape).
func (pc *passCounter) CountCandidates(engine counting.Engine, candidates []itemset.Itemset, elems []itemset.Itemset, elemBits []*itemset.Bitset) ([]int64, []int64) {
	w := pc.p.workers()
	var cands *counting.Sharded
	if len(candidates) > 0 {
		cands = counting.NewSharded(engine, candidates, w)
	}
	// Mirror the sequential element strategy: a trie over the elements when
	// there are many, direct bitset subset tests when few. The MFCS is an
	// antichain, so the mixed-length trie is safe.
	var elemTrie *counting.Sharded
	if len(elems) > 16 {
		elemTrie = counting.NewSharded(counting.EngineTrie, elems, w)
	}
	partElems := make([][]int64, w)
	pc.p.each(func(wi int, txs []itemset.Itemset, bits []*itemset.Bitset) {
		guard := mfi.NewScanGuard(pc.ctx, pc.checkEvery)
		var candShard, elemShard counting.Counter
		if cands != nil {
			candShard = cands.Shard(wi)
		}
		if elemTrie != nil {
			elemShard = elemTrie.Shard(wi)
		}
		if elemShard != nil {
			for _, tx := range txs {
				guard.Tick()
				if candShard != nil {
					candShard.Add(tx)
				}
				elemShard.Add(tx)
			}
		} else {
			add := func(itemset.Itemset) {}
			if candShard != nil {
				add = candShard.Add
			}
			partElems[wi] = countElemsDirect(elemBits, txs, bits, func(tx itemset.Itemset) {
				guard.Tick()
				add(tx)
			})
		}
	})
	var elemCounts []int64
	if elemTrie != nil {
		elemCounts = elemTrie.Counts()
	} else {
		elemCounts = mergeElemCounts(len(elems), partElems)
	}
	if cands != nil {
		return cands.Counts(), elemCounts
	}
	return nil, elemCounts
}

// countElemsDirect scans one partition, invoking extra per transaction
// (the worker's candidate counting) and testing each element bitset for
// containment. It returns the partition's element counts.
func countElemsDirect(elemBits []*itemset.Bitset, txs []itemset.Itemset, bits []*itemset.Bitset, extra func(itemset.Itemset)) []int64 {
	counts := make([]int64, len(elemBits))
	for j, tx := range txs {
		extra(tx)
		for i, eb := range elemBits {
			if eb.IsSubsetOf(bits[j]) {
				counts[i]++
			}
		}
	}
	return counts
}

// mergeElemCounts sums per-partition element counts.
func mergeElemCounts(n int, parts [][]int64) []int64 {
	total := make([]int64, n)
	for _, p := range parts {
		if p != nil {
			counting.SumInto(total, p)
		}
	}
	return total
}

// MinePincer runs count-distribution parallel Pincer-Search with the
// default core options: the full sequential algorithm of internal/core —
// bottom-up candidate counting, top-down MFCS counting, recovery, and tail
// passes — with every database pass distributed over Workers goroutines.
// The result (MFS, supports, frequent set, pass and candidate statistics)
// is identical to sequential core.Mine; only wall-clock time changes. A
// non-nil error reports a captured worker panic or counter-merge mismatch
// (see mfi.RecoverMiningError).
func MinePincer(d *dataset.Dataset, minSupport float64, opt Options) (*mfi.Result, error) {
	return MinePincerOpts(d, minSupport, core.DefaultOptions(), opt)
}

// MinePincerOpts is MinePincer with explicit Pincer-Search options. The
// parallel Options' Engine, KeepFrequent, and (when set) Tracer take
// precedence over copt's.
func MinePincerOpts(d *dataset.Dataset, minSupport float64, copt core.Options, opt Options) (*mfi.Result, error) {
	return minePincer(d, dataset.MinCountFor(d.Len(), minSupport), copt, opt)
}

// MinePincerCount is MinePincerOpts with an absolute support-count
// threshold.
func MinePincerCount(d *dataset.Dataset, minCount int64, copt core.Options, opt Options) (*mfi.Result, error) {
	return minePincer(d, minCount, copt, opt)
}

func minePincer(d *dataset.Dataset, minCount int64, copt core.Options, opt Options) (*mfi.Result, error) {
	prepareCoreOptions(&copt, opt)
	if copt.Counter == nil {
		copt.Counter = NewPassCounter(d, opt.workers())
	}
	return core.MineCount(dataset.NewScanner(d), minCount, copt)
}

// prepareCoreOptions folds the parallel Options into the core ones. The
// parallel Engine, KeepFrequent, and (when set) Tracer, Context, Deadline,
// CancelCheckEvery, and Checkpointer take precedence over copt's.
func prepareCoreOptions(copt *core.Options, opt Options) {
	copt.Engine = opt.Engine
	copt.KeepFrequent = opt.KeepFrequent
	copt.Algorithm = "pincer-parallel"
	if opt.Tracer != nil {
		copt.Tracer = opt.Tracer
	}
	if opt.Context != nil {
		copt.Context = opt.Context
	}
	if opt.Deadline > 0 {
		copt.Deadline = opt.Deadline
	}
	if opt.CancelCheckEvery > 0 {
		copt.CancelCheckEvery = opt.CancelCheckEvery
	}
	if opt.Checkpointer != nil {
		copt.Checkpointer = opt.Checkpointer
	}
}

// MinePincerResume continues a checkpointed parallel run (or mines from
// scratch when no checkpoint is on record). The checkpoint must have been
// written by a parallel Pincer run: counts are partition-independent, so
// any worker count can resume any parallel checkpoint.
func MinePincerResume(d *dataset.Dataset, minCount int64, copt core.Options, opt Options) (*mfi.Result, error) {
	prepareCoreOptions(&copt, opt)
	if copt.Counter == nil {
		copt.Counter = NewPassCounter(d, opt.workers())
	}
	return core.MineResume(dataset.NewScanner(d), minCount, copt)
}
