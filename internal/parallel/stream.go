package parallel

import (
	"context"
	"errors"
	"runtime/debug"
	"sync"

	"pincer/internal/core"
	"pincer/internal/counting"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
)

// streamBatch is the number of transactions handed to a worker at once; it
// amortizes channel synchronization without holding a large fraction of the
// database in flight.
const streamBatch = 512

// errAbortScan is the sentinel the producer panics with to abandon a Scan
// mid-pass once a worker has already failed; distribute swallows it (the
// worker's panic is the one reported).
var errAbortScan = errors.New("parallel: scan aborted by worker failure")

// streamPassCounter is the count-distribution strategy for file-backed
// databases, where the transactions cannot be partitioned up front because
// each pass re-reads the file. One producer — the mining goroutine itself —
// streams the Scanner's transactions in batches to a channel; Workers
// goroutines consume them into private counter shards merged at the pass
// barrier. Counts are identical to a sequential scan (integer addition
// commutes), so the miner's decisions, pass metrics, and results are
// unchanged; only wall-clock time differs.
//
// The Scanner's per-transaction bitset is a reused buffer and never crosses
// a goroutine boundary: workers test element containment on the transaction
// itemsets (freshly allocated per transaction) instead.
//
// Failure handling: the producer scans on the mining goroutine, so a
// mid-pass *dataset.FileScanError panic propagates naturally to the mining
// boundary. A worker panic is captured, the producer is told to abandon the
// scan, and the panic is re-raised at the barrier wrapped in
// *mfi.WorkerPanic — both surface as errors from Mine*, at any worker
// count.
type streamPassCounter struct {
	sc         dataset.Scanner
	workers    int
	ctx        context.Context
	checkEvery int
}

// BindContext implements core.ContextBinder: the producer checks the
// context every checkEvery transactions while streaming, and every consumer
// checks it while draining batches — so cancellation interrupts a pass from
// whichever side is currently doing work.
func (s *streamPassCounter) BindContext(ctx context.Context, checkEvery int) {
	s.ctx = ctx
	s.checkEvery = checkEvery
}

// NewStreamPassCounter builds the streaming count-distribution strategy for
// injection into core.Options.Counter. Unlike NewPassCounter it does not
// materialize the database: sc is re-scanned every pass, making it the
// parallel counterpart of mining straight from a dataset.FileScanner.
func NewStreamPassCounter(sc dataset.Scanner, workers int) core.PassCounter {
	if workers < 1 {
		workers = 1
	}
	return &streamPassCounter{sc: sc, workers: workers}
}

// Workers implements core.WorkerCounted.
func (s *streamPassCounter) Workers() int { return s.workers }

// distribute runs one distributed pass: the calling goroutine scans sc and
// batches transactions onto a channel, and every worker w consumes batches
// via add(w, tx). add must write only state indexed by w.
func (s *streamPassCounter) distribute(add func(w int, tx itemset.Itemset)) {
	ch := make(chan []itemset.Itemset, 2*s.workers)
	done := make(chan struct{})
	var wg sync.WaitGroup
	var once sync.Once
	var wp *mfi.WorkerPanic
	for w := 0; w < s.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					stack := debug.Stack()
					once.Do(func() {
						wp = &mfi.WorkerPanic{Value: r, Stack: stack}
						close(done)
					})
				}
			}()
			guard := mfi.NewScanGuard(s.ctx, s.checkEvery)
			for batch := range ch {
				for _, tx := range batch {
					guard.Tick()
					add(w, tx)
				}
			}
		}(w)
	}

	send := func(batch []itemset.Itemset) {
		select {
		case ch <- batch:
		case <-done:
			// A worker already failed; unwind out of sc.Scan. The sentinel
			// is swallowed below and the worker's panic reported instead.
			panic(errAbortScan)
		}
	}
	var scanPanic interface{}
	func() {
		defer close(ch)
		defer func() {
			if r := recover(); r != nil && !isAbortScan(r) {
				scanPanic = r
			}
		}()
		guard := mfi.NewScanGuard(s.ctx, s.checkEvery)
		batch := make([]itemset.Itemset, 0, streamBatch)
		s.sc.Scan(func(tx itemset.Itemset, _ *itemset.Bitset) {
			guard.Tick()
			batch = append(batch, tx)
			if len(batch) == streamBatch {
				send(batch)
				batch = make([]itemset.Itemset, 0, streamBatch)
			}
		})
		if len(batch) > 0 {
			send(batch)
		}
	}()
	wg.Wait()
	if scanPanic != nil {
		panic(scanPanic)
	}
	if wp != nil {
		panic(wp)
	}
}

func isAbortScan(r interface{}) bool {
	err, ok := r.(error)
	return ok && errors.Is(err, errAbortScan)
}

// CountItems implements core.PassCounter (the pass-1 shape).
func (s *streamPassCounter) CountItems(numItems int, elems []itemset.Itemset, elemBits []*itemset.Bitset) ([]int64, []int64) {
	arrays := make([]*counting.ItemArray, s.workers)
	partElems := make([][]int64, s.workers)
	for w := range arrays {
		arrays[w] = counting.NewItemArray(numItems)
		partElems[w] = make([]int64, len(elems))
	}
	s.distribute(func(w int, tx itemset.Itemset) {
		arrays[w].Add(tx)
		for i, e := range elems {
			if e.IsSubsetOf(tx) {
				partElems[w][i]++
			}
		}
	})
	itemCounts := make([]int64, numItems)
	for _, a := range arrays {
		counting.SumInto(itemCounts, a.Counts())
	}
	return itemCounts, mergeElemCounts(len(elems), partElems)
}

// CountPairs implements core.PassCounter (the pass-2 shape).
func (s *streamPassCounter) CountPairs(numItems int, live itemset.Itemset, elems []itemset.Itemset, elemBits []*itemset.Bitset) (*counting.Triangle, []int64) {
	base := counting.NewTriangle(numItems, live)
	shards := make([]*counting.Triangle, s.workers)
	partElems := make([][]int64, s.workers)
	for w := range shards {
		if w == 0 {
			shards[w] = base
		} else {
			shards[w] = base.Shard()
		}
		partElems[w] = make([]int64, len(elems))
	}
	s.distribute(func(w int, tx itemset.Itemset) {
		shards[w].Add(tx)
		for i, e := range elems {
			if e.IsSubsetOf(tx) {
				partElems[w][i]++
			}
		}
	})
	for _, sh := range shards[1:] {
		base.Merge(sh)
	}
	return base, mergeElemCounts(len(elems), partElems)
}

// CountCandidates implements core.PassCounter (the pass ≥ 3 shape).
func (s *streamPassCounter) CountCandidates(engine counting.Engine, candidates []itemset.Itemset, elems []itemset.Itemset, elemBits []*itemset.Bitset) ([]int64, []int64) {
	var cands *counting.Sharded
	if len(candidates) > 0 {
		cands = counting.NewSharded(engine, candidates, s.workers)
	}
	// Mirror the partitioned strategy: a sharded trie over many elements,
	// direct subset tests when few. The MFCS is an antichain, so the
	// mixed-length trie is safe.
	var elemTrie *counting.Sharded
	partElems := make([][]int64, s.workers)
	if len(elems) > 16 {
		elemTrie = counting.NewSharded(counting.EngineTrie, elems, s.workers)
	} else {
		for w := range partElems {
			partElems[w] = make([]int64, len(elems))
		}
	}
	s.distribute(func(w int, tx itemset.Itemset) {
		if cands != nil {
			cands.Shard(w).Add(tx)
		}
		if elemTrie != nil {
			elemTrie.Shard(w).Add(tx)
			return
		}
		for i, e := range elems {
			if e.IsSubsetOf(tx) {
				partElems[w][i]++
			}
		}
	})
	var elemCounts []int64
	if elemTrie != nil {
		elemCounts = elemTrie.Counts()
	} else {
		elemCounts = mergeElemCounts(len(elems), partElems)
	}
	if cands != nil {
		return cands.Counts(), elemCounts
	}
	return nil, elemCounts
}

// MinePincerFile runs parallel Pincer-Search over a Scanner that re-reads
// its database every pass (typically a dataset.FileScanner), using the
// streaming count-distribution strategy: one reader, Workers counting
// goroutines. Results and pass metrics are identical to sequential
// core.Mine over the same Scanner.
func MinePincerFile(sc dataset.Scanner, minSupport float64, copt core.Options, opt Options) (*mfi.Result, error) {
	return MinePincerFileCount(sc, dataset.MinCountFor(sc.Len(), minSupport), copt, opt)
}

// MinePincerFileCount is MinePincerFile with an absolute support-count
// threshold.
func MinePincerFileCount(sc dataset.Scanner, minCount int64, copt core.Options, opt Options) (*mfi.Result, error) {
	prepareCoreOptions(&copt, opt)
	copt.Counter = NewStreamPassCounter(sc, opt.workers())
	return core.MineCount(sc, minCount, copt)
}

// MinePincerFileResume continues a checkpointed streaming run (or mines
// from scratch when no checkpoint is on record).
func MinePincerFileResume(sc dataset.Scanner, minCount int64, copt core.Options, opt Options) (*mfi.Result, error) {
	prepareCoreOptions(&copt, opt)
	copt.Counter = NewStreamPassCounter(sc, opt.workers())
	return core.MineResume(sc, minCount, copt)
}
