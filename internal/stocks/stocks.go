// Package stocks synthesizes correlated stock-price-movement data — the
// paper's concluding motivation (§6): "prices of individual stocks are
// frequently quite correlated with each other ... the discovered patterns
// may contain many items (stocks) and the frequent itemsets are long."
//
// The generator uses a standard one-factor-per-sector model: each trading
// day has a market return, each sector a sector return, each stock an
// idiosyncratic residual. A day's "basket" is the set of stocks that rose
// by more than a threshold, so a strongly coupled sector shows up as a long
// maximal frequent itemset — the regime where Pincer-Search dominates
// bottom-up mining.
package stocks

import (
	"fmt"
	"math"
	"math/rand"

	"pincer/internal/dataset"
	"pincer/internal/itemset"
)

// Params configures the market model.
type Params struct {
	NumStocks int // total stocks (items)
	NumDays   int // trading days (transactions)
	// Sectors maps each sector to its stock count; stocks are assigned to
	// sectors in order, any remainder is unsectored (pure idiosyncratic).
	Sectors []int
	// MarketVol, SectorVol, IdioVol are the standard deviations of the
	// market, sector, and idiosyncratic return components.
	MarketVol float64
	SectorVol float64
	IdioVol   float64
	// SectorBeta scales how strongly sector members load on their sector
	// factor (default 1).
	SectorBeta float64
	// UpThreshold is the return above which a stock counts as "up" for the
	// day's basket.
	UpThreshold float64
	Seed        int64
}

// Defaults fills unset fields with a configuration that yields a few long,
// strongly correlated sectors.
func (p Params) Defaults() Params {
	if p.NumStocks <= 0 {
		p.NumStocks = 100
	}
	if p.NumDays <= 0 {
		p.NumDays = 1000
	}
	if len(p.Sectors) == 0 {
		p.Sectors = []int{15, 12, 10, 8}
	}
	if p.MarketVol <= 0 {
		p.MarketVol = 0.5
	}
	if p.SectorVol <= 0 {
		p.SectorVol = 1.0
	}
	if p.IdioVol <= 0 {
		p.IdioVol = 0.4
	}
	if p.SectorBeta <= 0 {
		p.SectorBeta = 1
	}
	if p.UpThreshold == 0 {
		p.UpThreshold = 0.8
	}
	return p
}

// Market is a generated market: daily up-baskets plus the ground-truth
// sector memberships.
type Market struct {
	// Days is the basket database: one transaction per day holding the
	// stocks that closed up more than the threshold.
	Days *dataset.Dataset
	// SectorMembers lists each sector's stocks (the planted correlation
	// structure mining should recover).
	SectorMembers []itemset.Itemset
	// Returns holds the raw daily returns, Returns[day][stock].
	Returns [][]float64
}

// buildSectors validates the sector layout and returns the per-stock sector
// assignment plus the member lists.
func buildSectors(p Params) (sectorOf []int, members []itemset.Itemset, err error) {
	total := 0
	for _, n := range p.Sectors {
		if n < 0 {
			return nil, nil, fmt.Errorf("stocks: negative sector size %d", n)
		}
		total += n
	}
	if total > p.NumStocks {
		return nil, nil, fmt.Errorf("stocks: sectors need %d stocks, only %d available", total, p.NumStocks)
	}
	sectorOf = make([]int, p.NumStocks)
	for i := range sectorOf {
		sectorOf[i] = -1
	}
	next := 0
	for s, n := range p.Sectors {
		ms := make(itemset.Itemset, 0, n)
		for j := 0; j < n; j++ {
			sectorOf[next] = s
			ms = append(ms, itemset.Item(next))
			next++
		}
		members = append(members, ms)
	}
	return sectorOf, members, nil
}

// nextDay draws one trading day under the one-factor model. It is the ONLY
// place the model consumes randomness, shared by Generate and Feed, so a
// feed's batches concatenate to exactly the frozen dataset of the same
// parameters.
func nextDay(rng *rand.Rand, p Params, sectorOf []int) (basket itemset.Itemset, rets []float64) {
	market := rng.NormFloat64() * p.MarketVol
	sector := make([]float64, len(p.Sectors))
	for s := range sector {
		sector[s] = rng.NormFloat64() * p.SectorVol
	}
	rets = make([]float64, p.NumStocks)
	var up []itemset.Item
	for i := 0; i < p.NumStocks; i++ {
		r := market + rng.NormFloat64()*p.IdioVol
		if s := sectorOf[i]; s >= 0 {
			r += p.SectorBeta * sector[s]
		}
		rets[i] = r
		if r > p.UpThreshold {
			up = append(up, itemset.Item(i))
		}
	}
	return itemset.New(up...), rets
}

// Generate builds a market under the one-factor model.
func Generate(p Params) (*Market, error) {
	p = p.Defaults()
	sectorOf, members, err := buildSectors(p)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	m := &Market{Days: dataset.Empty(p.NumStocks), SectorMembers: members}
	m.Returns = make([][]float64, p.NumDays)
	for day := 0; day < p.NumDays; day++ {
		basket, rets := nextDay(rng, p, sectorOf)
		m.Returns[day] = rets
		m.Days.Append(basket)
	}
	return m, nil
}

// Feed is the streaming face of the market model: the same day-by-day
// draws as Generate, delivered in batches for incremental maintenance.
// Concatenating every NextBatch of a feed yields exactly
// Generate(p).Days.Transactions().
type Feed struct {
	p        Params
	rng      *rand.Rand
	sectorOf []int
	members  []itemset.Itemset
	day      int
}

// NewFeed builds a feed over the market of p.
func NewFeed(p Params) (*Feed, error) {
	p = p.Defaults()
	sectorOf, members, err := buildSectors(p)
	if err != nil {
		return nil, err
	}
	return &Feed{p: p, rng: rand.New(rand.NewSource(p.Seed)), sectorOf: sectorOf, members: members}, nil
}

// NumStocks returns the item universe of the feed's baskets.
func (f *Feed) NumStocks() int { return f.p.NumStocks }

// SectorMembers lists each sector's stocks (the planted structure).
func (f *Feed) SectorMembers() []itemset.Itemset { return f.members }

// Day returns how many trading days have been delivered so far.
func (f *Feed) Day() int { return f.day }

// NextBatch delivers the next batch of up to days daily baskets; nil once
// the feed's NumDays are exhausted.
func (f *Feed) NextBatch(days int) []dataset.Transaction {
	if days <= 0 || f.day >= f.p.NumDays {
		return nil
	}
	if rest := f.p.NumDays - f.day; days > rest {
		days = rest
	}
	batch := make([]dataset.Transaction, days)
	for i := range batch {
		basket, _ := nextDay(f.rng, f.p, f.sectorOf)
		batch[i] = basket
	}
	f.day += days
	return batch
}

// Correlation computes the Pearson correlation of two stocks' return series.
func (m *Market) Correlation(a, b itemset.Item) float64 {
	n := float64(len(m.Returns))
	if n == 0 {
		return 0
	}
	var sa, sb, saa, sbb, sab float64
	for _, day := range m.Returns {
		x, y := day[a], day[b]
		sa += x
		sb += y
		saa += x * x
		sbb += y * y
		sab += x * y
	}
	cov := sab/n - (sa/n)*(sb/n)
	va := saa/n - (sa/n)*(sa/n)
	vb := sbb/n - (sb/n)*(sb/n)
	if va <= 0 || vb <= 0 {
		return 0
	}
	return cov / (math.Sqrt(va) * math.Sqrt(vb))
}
