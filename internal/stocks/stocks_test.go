package stocks

import (
	"testing"

	"pincer/internal/core"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
)

func TestGenerateShape(t *testing.T) {
	m, err := Generate(Params{NumStocks: 50, NumDays: 300, Sectors: []int{8, 6}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Days.Len() != 300 {
		t.Fatalf("days = %d", m.Days.Len())
	}
	if m.Days.NumItems() != 50 {
		t.Fatalf("stocks = %d", m.Days.NumItems())
	}
	if len(m.SectorMembers) != 2 || len(m.SectorMembers[0]) != 8 || len(m.SectorMembers[1]) != 6 {
		t.Fatalf("sectors = %v", m.SectorMembers)
	}
	if len(m.Returns) != 300 || len(m.Returns[0]) != 50 {
		t.Fatal("returns shape wrong")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Params{NumStocks: 5, Sectors: []int{10}}); err == nil {
		t.Error("oversubscribed sectors accepted")
	}
	if _, err := Generate(Params{NumStocks: 5, Sectors: []int{-1}}); err == nil {
		t.Error("negative sector accepted")
	}
}

func TestSectorMembersAreCorrelated(t *testing.T) {
	m, err := Generate(Params{NumStocks: 60, NumDays: 800, Sectors: []int{10, 10}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	within := m.Correlation(m.SectorMembers[0][0], m.SectorMembers[0][1])
	if within < 0.5 {
		t.Errorf("within-sector correlation %v, want > 0.5", within)
	}
	across := m.Correlation(m.SectorMembers[0][0], m.SectorMembers[1][0])
	if across >= within {
		t.Errorf("across-sector correlation %v not below within %v", across, within)
	}
	unsectored := itemset.Item(m.Days.NumItems() - 1)
	idio := m.Correlation(unsectored, m.SectorMembers[0][0])
	if idio >= within {
		t.Errorf("idiosyncratic correlation %v not below within %v", idio, within)
	}
}

func TestMiningRecoversSectorStructure(t *testing.T) {
	// The §6 claim end-to-end: sector co-movement shows up as long maximal
	// frequent itemsets dominated by single-sector members.
	m, err := Generate(Params{
		NumStocks: 80, NumDays: 1500, Sectors: []int{12, 10},
		SectorVol: 1.4, IdioVol: 0.3, UpThreshold: 0.9, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := must(core.Mine(dataset.NewScanner(m.Days), 0.05, core.DefaultOptions()))
	if len(res.MFS) == 0 {
		t.Fatal("no frequent itemsets at 5%")
	}
	if res.LongestMFS() < 10 {
		t.Fatalf("longest maximal itemset has %d stocks; too short for a sector story", res.LongestMFS())
	}
	// each planted sector moves together: its full member set is frequent
	for s, sec := range m.SectorMembers {
		if !res.IsFrequent(sec) {
			t.Errorf("sector %d (%v) not frequent at 5%%", s, sec)
		}
	}
	// unsectored stocks have no reason to co-move that long: no maximal
	// itemset should consist mostly of them
	for _, x := range res.MFS {
		if len(x) < 10 {
			continue
		}
		overlap := 0
		for _, sec := range m.SectorMembers {
			overlap += len(x.Intersect(sec))
		}
		if float64(overlap) < 0.8*float64(len(x)) {
			t.Errorf("long itemset %v is mostly unsectored stocks (overlap %d)", x, overlap)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Params{NumStocks: 30, NumDays: 100, Sectors: []int{5}, Seed: 3}
	a, _ := Generate(p)
	b, _ := Generate(p)
	for i := 0; i < a.Days.Len(); i++ {
		if !a.Days.Transaction(i).Equal(b.Days.Transaction(i)) {
			t.Fatalf("day %d differs", i)
		}
	}
}

// must unwraps the (result, error) mining returns; in-memory test scans
// cannot fail.
func must[R any](res R, err error) R {
	if err != nil {
		panic(err)
	}
	return res
}

// TestFeedConcatEqualsGenerate pins the streaming contract: a feed's
// batches, whatever the batch size, concatenate to exactly the frozen
// dataset of the same parameters.
func TestFeedConcatEqualsGenerate(t *testing.T) {
	p := Params{NumStocks: 40, NumDays: 157, Sectors: []int{8, 6, 5}, Seed: 42}
	m, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, batchDays := range []int{1, 7, 30, 157, 500} {
		f, err := NewFeed(p)
		if err != nil {
			t.Fatal(err)
		}
		var all []dataset.Transaction
		for {
			b := f.NextBatch(batchDays)
			if b == nil {
				break
			}
			all = append(all, b...)
		}
		if len(all) != m.Days.Len() {
			t.Fatalf("batch size %d: %d days streamed, want %d", batchDays, len(all), m.Days.Len())
		}
		for i, tx := range all {
			if !tx.Equal(m.Days.Transaction(i)) {
				t.Fatalf("batch size %d: day %d = %v, want %v", batchDays, i, tx, m.Days.Transaction(i))
			}
		}
		if f.Day() != p.NumDays {
			t.Fatalf("batch size %d: feed reports day %d, want %d", batchDays, f.Day(), p.NumDays)
		}
		if f.NextBatch(1) != nil {
			t.Fatalf("batch size %d: exhausted feed delivered another batch", batchDays)
		}
	}
}

// TestFeedShape pins the feed's universe and sector metadata against the
// generator's.
func TestFeedShape(t *testing.T) {
	p := Params{NumStocks: 30, NumDays: 10, Sectors: []int{4, 3}, Seed: 5}
	f, err := NewFeed(p)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumStocks() != 30 {
		t.Fatalf("NumStocks = %d", f.NumStocks())
	}
	m, _ := Generate(p)
	if len(f.SectorMembers()) != len(m.SectorMembers) {
		t.Fatalf("sector members diverge: %v vs %v", f.SectorMembers(), m.SectorMembers)
	}
	for i := range m.SectorMembers {
		if !f.SectorMembers()[i].Equal(m.SectorMembers[i]) {
			t.Fatalf("sector %d: %v vs %v", i, f.SectorMembers()[i], m.SectorMembers[i])
		}
	}
	if _, err := NewFeed(Params{NumStocks: 5, Sectors: []int{10}}); err == nil {
		t.Fatal("oversubscribed sectors accepted by NewFeed")
	}
}
