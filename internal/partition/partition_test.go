package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pincer/internal/apriori"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
	"pincer/internal/quest"
)

func TestPartitionSmall(t *testing.T) {
	d := dataset.New([]dataset.Transaction{
		itemset.New(1, 2, 3),
		itemset.New(1, 2, 3),
		itemset.New(1, 2),
		itemset.New(3, 4),
		itemset.New(3, 4),
		itemset.New(5),
	})
	res := Mine(d, 2.0/6.0, DefaultOptions())
	ares := must(apriori.Mine(dataset.NewScanner(d), 2.0/6.0, apriori.DefaultOptions()))
	if err := mfi.VerifyAgainst(res.MFS, ares.MFS); err != nil {
		t.Fatalf("MFS: %v (got %v want %v)", err, res.MFS, ares.MFS)
	}
	if res.Stats.Passes != 2 {
		t.Errorf("Passes = %d, want 2", res.Stats.Passes)
	}
	// supports agree with direct counting
	res.Frequent.Each(func(x itemset.Itemset, c int64) {
		if c != d.Support(x) {
			t.Errorf("support(%v) = %d, want %d", x, c, d.Support(x))
		}
	})
	for i, m := range res.MFS {
		if res.MFSSupports[i] != d.Support(m) {
			t.Errorf("MFSSupports[%v] = %d", m, res.MFSSupports[i])
		}
	}
}

func TestPartitionCountsMatchApriori(t *testing.T) {
	d := quest.Generate(quest.Params{
		NumTransactions: 900, AvgTxLen: 8, AvgPatternLen: 3,
		NumPatterns: 40, NumItems: 60, Seed: 7,
	})
	res := Mine(d, 0.02, DefaultOptions())
	ares := must(apriori.Mine(dataset.NewScanner(d), 0.02, apriori.DefaultOptions()))
	if err := mfi.VerifyAgainst(res.MFS, ares.MFS); err != nil {
		t.Fatal(err)
	}
	if res.Frequent.Len() != ares.Frequent.Len() {
		t.Fatalf("frequent sizes differ: %d vs %d", res.Frequent.Len(), ares.Frequent.Len())
	}
}

func TestPartitionEdgeCases(t *testing.T) {
	// empty database
	res := Mine(dataset.Empty(4), 0.5, DefaultOptions())
	if len(res.MFS) != 0 {
		t.Errorf("empty MFS = %v", res.MFS)
	}
	// more partitions than transactions
	d := dataset.New([]dataset.Transaction{itemset.New(1), itemset.New(1)})
	opt := DefaultOptions()
	opt.NumPartitions = 10
	res = Mine(d, 1.0, opt)
	if err := mfi.VerifyAgainst(res.MFS, []itemset.Itemset{itemset.New(1)}); err != nil {
		t.Errorf("%v", err)
	}
	// zero partitions clamps to 1
	opt.NumPartitions = 0
	res = Mine(d, 1.0, opt)
	if len(res.MFS) != 1 {
		t.Errorf("MFS = %v", res.MFS)
	}
	// KeepFrequent=false
	opt = DefaultOptions()
	opt.KeepFrequent = false
	res = Mine(d, 1.0, opt)
	if res.Frequent != nil {
		t.Error("Frequent retained")
	}
}

func TestQuickPartitionMatchesApriori(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		universe := 4 + r.Intn(8)
		numTx := 8 + r.Intn(40)
		d := dataset.Empty(universe)
		for i := 0; i < numTx; i++ {
			n := 1 + r.Intn(universe)
			items := make([]itemset.Item, n)
			for j := range items {
				items[j] = itemset.Item(r.Intn(universe))
			}
			d.Append(itemset.New(items...))
		}
		sup := 0.05 + r.Float64()*0.4
		opt := DefaultOptions()
		opt.NumPartitions = 1 + r.Intn(5)
		res := Mine(d, sup, opt)
		ares := must(apriori.Mine(dataset.NewScanner(d), sup, apriori.DefaultOptions()))
		return mfi.VerifyAgainst(res.MFS, ares.MFS) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// must unwraps the (result, error) mining returns; in-memory test scans
// cannot fail.
func must[R any](res R, err error) R {
	if err != nil {
		panic(err)
	}
	return res
}
