// Package partition implements the Partition algorithm of Savasere,
// Omiecinski & Navathe (VLDB 1995), one of the related-work baselines the
// paper discusses (§5): it reads the database exactly twice, regardless of
// how long the maximal frequent itemsets are.
//
// Phase 1 splits the database into memory-sized partitions and mines each
// with a local run of Apriori at the same fractional support; any globally
// frequent itemset is locally frequent in at least one partition, so the
// union of local frequent sets is a superset of the global frequent set.
// Phase 2 counts that candidate union in one pass over the whole database.
//
// The paper's critique (§5) is that the phase-1 local mining is still a
// bottom-up enumeration of every frequent itemset, so the algorithm
// "is still inefficient when the maximal frequent itemsets are long" —
// exactly what the benchmarks here show.
package partition

import (
	"time"

	"pincer/internal/apriori"
	"pincer/internal/counting"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
)

// Options configures Partition.
type Options struct {
	// NumPartitions is the number of database partitions (default 4).
	NumPartitions int
	// Engine selects the counting engine for the local mining and the
	// global counting pass.
	Engine counting.Engine
	// KeepFrequent retains the global frequent set in the result.
	KeepFrequent bool
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options {
	return Options{NumPartitions: 4, Engine: counting.EngineHashTree, KeepFrequent: true}
}

// Mine runs Partition over an in-memory dataset at a fractional minimum
// support. Unlike the scanner-based miners it needs the concrete dataset to
// slice it; the pass accounting is kept comparable: phase 1 reads every
// transaction once, phase 2 once more, so Stats.Passes is 2.
func Mine(d *dataset.Dataset, minSupport float64, opt Options) *mfi.Result {
	start := time.Now()
	if opt.NumPartitions <= 0 {
		opt.NumPartitions = 1
	}
	minCount := d.MinCount(minSupport)
	res := &mfi.Result{
		MinCount:        minCount,
		NumTransactions: d.Len(),
		Frequent:        itemset.NewSet(0),
	}
	res.Stats.Algorithm = "partition"
	defer func() { res.Stats.Duration = time.Since(start) }()

	// Phase 1: local mining. Local thresholds use the ceiling of the same
	// fraction on the partition size, per the original paper.
	candidates := itemset.NewSet(0)
	localCandidates := 0
	aopt := apriori.DefaultOptions()
	aopt.Engine = opt.Engine
	for _, part := range d.Partitions(opt.NumPartitions) {
		if part.Len() == 0 {
			continue
		}
		local, err := apriori.Mine(dataset.NewScanner(part), minSupport, aopt)
		if err != nil {
			// In-memory partitions cannot fail a scan.
			panic(err)
		}
		local.Frequent.Each(func(x itemset.Itemset, _ int64) {
			candidates.Add(x)
		})
		localCandidates += int(local.Stats.CandidatesAll)
	}
	res.Stats.AddPass(mfi.PassStats{Candidates: localCandidates})

	// Phase 2: one global counting pass over the candidate union.
	sets := candidates.Sorted()
	counter := counting.NewCounter(opt.Engine, sets)
	for _, tx := range d.Transactions() {
		counter.Add(tx)
	}
	counts := counter.Counts()
	frequent := 0
	var all []itemset.Itemset
	for i, s := range sets {
		if counts[i] >= minCount {
			frequent++
			all = append(all, s)
			if opt.KeepFrequent {
				res.Frequent.AddWithCount(s, counts[i])
			}
		}
	}
	res.Stats.AddPass(mfi.PassStats{Candidates: len(sets), Frequent: frequent})

	res.MFS = itemset.MaximalOnly(all)
	res.MFSSupports = make([]int64, len(res.MFS))
	for i, m := range res.MFS {
		for j, s := range sets {
			if s.Equal(m) {
				res.MFSSupports[i] = counts[j]
				break
			}
		}
	}
	if !opt.KeepFrequent {
		res.Frequent = nil
	}
	return res
}
