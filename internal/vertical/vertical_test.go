package vertical

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pincer/internal/apriori"
	"pincer/internal/core"
	"pincer/internal/counting"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
	"pincer/internal/quest"
)

func smallDB() *dataset.Dataset {
	return dataset.New([]dataset.Transaction{
		itemset.New(1, 2, 3),
		itemset.New(1, 2, 3),
		itemset.New(1, 2),
		itemset.New(3, 4),
		itemset.New(3, 4),
	})
}

func TestEclatSmall(t *testing.T) {
	d := smallDB()
	res := Eclat(d, 0.4, DefaultOptions())
	ares := must(apriori.Mine(dataset.NewScanner(d), 0.4, apriori.DefaultOptions()))
	if err := mfi.VerifyAgainst(res.MFS, ares.MFS); err != nil {
		t.Fatalf("MFS: %v", err)
	}
	if res.Frequent.Len() != ares.Frequent.Len() {
		t.Fatalf("frequent: %d vs %d", res.Frequent.Len(), ares.Frequent.Len())
	}
	res.Frequent.Each(func(x itemset.Itemset, c int64) {
		if c != d.Support(x) {
			t.Errorf("support(%v) = %d, want %d", x, c, d.Support(x))
		}
	})
	if res.Stats.Passes != 1 {
		t.Errorf("vertical mining made %d passes", res.Stats.Passes)
	}
}

func TestMineMaximalSmall(t *testing.T) {
	d := smallDB()
	res := MineMaximal(d, 0.4, DefaultOptions())
	ares := must(apriori.Mine(dataset.NewScanner(d), 0.4, apriori.DefaultOptions()))
	if err := mfi.VerifyAgainst(res.MFS, ares.MFS); err != nil {
		t.Fatalf("MFS: %v (got %v)", err, res.MFS)
	}
	for i, m := range res.MFS {
		if res.MFSSupports[i] != d.Support(m) {
			t.Errorf("support(%v) = %d, want %d", m, res.MFSSupports[i], d.Support(m))
		}
	}
	if res.Intersections == 0 {
		t.Error("no intersections recorded")
	}
}

func TestMineMaximalLookAheadCollapses(t *testing.T) {
	// A single long maximal itemset: the head∪tail look-ahead should find
	// it with a handful of intersections instead of 2^12 enumerations.
	d := dataset.Empty(16)
	for i := 0; i < 10; i++ {
		d.Append(itemset.Range(0, 12))
	}
	res := MineMaximal(d, 0.5, DefaultOptions())
	if len(res.MFS) != 1 || !res.MFS[0].Equal(itemset.Range(0, 12)) {
		t.Fatalf("MFS = %v", res.MFS)
	}
	if res.Intersections > 50 {
		t.Errorf("look-ahead failed: %d intersections", res.Intersections)
	}
}

func TestVerticalEdgeCases(t *testing.T) {
	res := Eclat(dataset.Empty(4), 0.5, DefaultOptions())
	if len(res.MFS) != 0 {
		t.Errorf("empty Eclat MFS = %v", res.MFS)
	}
	mres := MineMaximal(dataset.Empty(4), 0.5, DefaultOptions())
	if len(mres.MFS) != 0 {
		t.Errorf("empty MineMaximal MFS = %v", mres.MFS)
	}
	// nothing frequent
	d := dataset.New([]dataset.Transaction{itemset.New(1), itemset.New(2)})
	if res := MineMaximal(d, 0.9, DefaultOptions()); len(res.MFS) != 0 {
		t.Errorf("MFS = %v", res.MFS)
	}
	// KeepFrequent=false
	opt := DefaultOptions()
	opt.KeepFrequent = false
	res = Eclat(smallDB(), 0.4, opt)
	if res.Frequent != nil {
		t.Error("Frequent retained")
	}
	// MaxDepth truncates Eclat
	opt = DefaultOptions()
	opt.MaxDepth = 1
	res = Eclat(smallDB(), 0.4, opt)
	for _, m := range res.MFS {
		if len(m) > 2 {
			t.Errorf("MaxDepth=1 produced %v", m)
		}
	}
}

func TestQuickEclatMatchesApriori(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDB(r)
		minCount := int64(1 + r.Intn(d.Len()/2+1))
		sup := float64(minCount) / float64(d.Len())
		res := Eclat(d, sup, DefaultOptions())
		ares := must(apriori.MineCount(dataset.NewScanner(d), d.MinCount(sup), apriori.DefaultOptions()))
		if res.Frequent.Len() != ares.Frequent.Len() {
			return false
		}
		ok := true
		ares.Frequent.Each(func(x itemset.Itemset, c int64) {
			got, present := res.Frequent.Count(x)
			if !present || got != c {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMineMaximalMatchesPincer(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDB(r)
		minCount := int64(1 + r.Intn(d.Len()/2+1))
		sup := float64(minCount) / float64(d.Len())
		res := MineMaximal(d, sup, DefaultOptions())
		pres := must(core.MineCount(dataset.NewScanner(d), d.MinCount(sup), core.DefaultOptions()))
		return mfi.VerifyAgainst(res.MFS, pres.MFS) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestVerticalOnQuestConcentrated(t *testing.T) {
	d := quest.Generate(quest.Params{
		NumTransactions: 800, AvgTxLen: 14, AvgPatternLen: 10,
		NumPatterns: 20, NumItems: 500, Seed: 23,
	})
	res := MineMaximal(d, 0.05, DefaultOptions())
	pres := must(core.Mine(dataset.NewScanner(d), 0.05, core.DefaultOptions()))
	if err := mfi.VerifyAgainst(res.MFS, pres.MFS); err != nil {
		t.Fatalf("quest: %v", err)
	}
}

func randomDB(r *rand.Rand) *dataset.Dataset {
	universe := 4 + r.Intn(8)
	numTx := 5 + r.Intn(40)
	d := dataset.Empty(universe)
	for i := 0; i < numTx; i++ {
		n := 1 + r.Intn(universe)
		items := make([]itemset.Item, n)
		for j := range items {
			items[j] = itemset.Item(r.Intn(universe))
		}
		d.Append(itemset.New(items...))
	}
	return d
}

// must unwraps the (result, error) mining returns; in-memory test scans
// cannot fail.
func must[R any](res R, err error) R {
	if err != nil {
		panic(err)
	}
	return res
}

// TestVerticalRepModesAgree checks that every representation / diffset
// policy produces the same MFS, supports, and frequent set: the choice of
// tidset encoding is a pure performance knob.
func TestVerticalRepModesAgree(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	modes := []counting.RepMode{
		counting.RepAuto, counting.RepBitset, counting.RepList, counting.RepDiffset,
	}
	for trial := 0; trial < 25; trial++ {
		d := randomDB(r)
		minSup := 0.05 + r.Float64()*0.4
		base := Eclat(d, minSup, DefaultOptions())
		baseMax := MineMaximal(d, minSup, DefaultOptions())
		for _, mode := range modes[1:] {
			opt := DefaultOptions()
			opt.Rep = mode
			got := Eclat(d, minSup, opt)
			if err := mfi.VerifyAgainst(got.MFS, base.MFS); err != nil {
				t.Fatalf("Eclat rep=%v: %v", mode, err)
			}
			if got.Frequent.Len() != base.Frequent.Len() {
				t.Fatalf("Eclat rep=%v: %d frequent, want %d", mode, got.Frequent.Len(), base.Frequent.Len())
			}
			gotMax := MineMaximal(d, minSup, opt)
			if err := mfi.VerifyAgainst(gotMax.MFS, baseMax.MFS); err != nil {
				t.Fatalf("MineMaximal rep=%v: %v", mode, err)
			}
			for i := range gotMax.MFS {
				if gotMax.MFSSupports[i] != baseMax.MFSSupports[i] {
					t.Fatalf("MineMaximal rep=%v: support of %v = %d, want %d",
						mode, gotMax.MFS[i], gotMax.MFSSupports[i], baseMax.MFSSupports[i])
				}
			}
			if gotMax.Intersections == 0 && len(gotMax.MFS) > 0 {
				t.Fatalf("MineMaximal rep=%v: no intersections recorded", mode)
			}
		}
	}
}
