// Package vertical implements frequent-itemset mining over the vertical
// data layout: each item carries its tidset (the transactions containing
// it) and the support of a union of items is the size of the intersection
// of their tidsets — no database rescans at all. This is the Eclat family
// of Zaki et al. (1997), contemporaneous with the paper and surveyed by the
// comparison study the paper cites as [9] (Mueller 1995, which evaluates
// exactly this partition/vertical style against Apriori).
//
// Two miners are provided. Eclat enumerates the complete frequent set
// depth-first over prefix equivalence classes. MineMaximal adds the two
// classic maximal-mining prunes on top — subset-of-known-maximal pruning
// (the same Observation 2 that powers the MFCS) and the head∪tail "look
// ahead": if the current prefix joined with every remaining extension is
// frequent, that whole union is output and the subtree skipped. The pair
// gives the repository a depth-first point of comparison for Pincer-Search's
// breadth-first pincer movement: vertical miners make no database passes,
// so the comparison isolates candidate-space traversal order.
package vertical

import (
	"sort"
	"time"

	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
)

// tidset is a sorted list of transaction indices.
type tidset []int32

// intersect returns the intersection of two sorted tidsets.
func (a tidset) intersect(b tidset) tidset {
	out := make(tidset, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Options configures the vertical miners.
type Options struct {
	// KeepFrequent retains the complete frequent set (Eclat only; the
	// maximal miner never materializes it — that is its point).
	KeepFrequent bool
	// MaxDepth bounds the recursion (0 = unlimited); a safety valve for
	// degenerate data, not needed on the benchmarks.
	MaxDepth int
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options { return Options{KeepFrequent: true} }

// verticalDB is the item → tidset index plus bookkeeping shared by both
// miners.
type verticalDB struct {
	minCount int64
	opt      Options
	// frequent items in increasing order with their tidsets
	items []itemset.Item
	tids  map[itemset.Item]tidset
	// intersections counts tidset intersections performed — the vertical
	// analogue of "candidates counted".
	intersections int64
}

// buildVertical inverts the dataset and keeps only frequent items.
func buildVertical(d *dataset.Dataset, minCount int64, opt Options) *verticalDB {
	v := &verticalDB{minCount: minCount, opt: opt, tids: make(map[itemset.Item]tidset)}
	all := make(map[itemset.Item]tidset)
	for ti, tx := range d.Transactions() {
		for _, it := range tx {
			all[it] = append(all[it], int32(ti))
		}
	}
	for it, ts := range all {
		if int64(len(ts)) >= minCount {
			v.items = append(v.items, it)
			v.tids[it] = ts
		}
	}
	sort.Slice(v.items, func(i, j int) bool { return v.items[i] < v.items[j] })
	return v
}

// extension is one candidate item extending the current prefix, with the
// tidset of prefix ∪ {item}.
type extension struct {
	item itemset.Item
	tids tidset
}

// Eclat mines the complete frequent set depth-first. Stats.Passes is 1:
// the single pass that builds the vertical index.
func Eclat(d *dataset.Dataset, minSupport float64, opt Options) *mfi.Result {
	start := time.Now()
	minCount := d.MinCount(minSupport)
	res := &mfi.Result{
		MinCount:        minCount,
		NumTransactions: d.Len(),
		Frequent:        itemset.NewSet(0),
	}
	res.Stats.Algorithm = "eclat"
	defer func() { res.Stats.Duration = time.Since(start) }()

	v := buildVertical(d, minCount, opt)
	var all []itemset.Itemset
	counts := make(map[string]int64)
	note := func(x itemset.Itemset, c int64) {
		all = append(all, x)
		counts[x.Key()] = c
		if opt.KeepFrequent {
			res.Frequent.AddWithCount(x, c)
		}
	}
	var exts []extension
	for _, it := range v.items {
		note(itemset.Itemset{it}, int64(len(v.tids[it])))
		exts = append(exts, extension{item: it, tids: v.tids[it]})
	}
	v.eclat(nil, exts, 1, note)
	res.Stats.AddPass(mfi.PassStats{
		Candidates: int(v.intersections), Frequent: len(all),
	})
	res.MFS = itemset.MaximalOnly(all)
	res.MFSSupports = make([]int64, len(res.MFS))
	for i, m := range res.MFS {
		res.MFSSupports[i] = counts[m.Key()]
	}
	if !opt.KeepFrequent {
		res.Frequent = nil
	}
	return res
}

// eclat recurses over the prefix equivalence class: each extension becomes
// a new prefix, joined with every later extension.
func (v *verticalDB) eclat(prefix itemset.Itemset, exts []extension, depth int, note func(itemset.Itemset, int64)) {
	if v.opt.MaxDepth > 0 && depth >= v.opt.MaxDepth {
		return
	}
	for i, e := range exts {
		newPrefix := prefix.With(e.item)
		var next []extension
		for _, f := range exts[i+1:] {
			v.intersections++
			shared := e.tids.intersect(f.tids)
			if int64(len(shared)) >= v.minCount {
				next = append(next, extension{item: f.item, tids: shared})
				note(newPrefix.With(f.item), int64(len(shared)))
			}
		}
		if len(next) > 0 {
			v.eclat(newPrefix, next, depth+1, note)
		}
	}
}

// Result extends the shared result with vertical-mining diagnostics.
type Result struct {
	mfi.Result
	// Intersections counts tidset intersections (the work unit).
	Intersections int64
}

// MineMaximal mines only the maximal frequent itemsets depth-first with
// subset pruning and the head∪tail look-ahead.
func MineMaximal(d *dataset.Dataset, minSupport float64, opt Options) *Result {
	start := time.Now()
	minCount := d.MinCount(minSupport)
	res := &Result{Result: mfi.Result{
		MinCount:        minCount,
		NumTransactions: d.Len(),
	}}
	res.Stats.Algorithm = "maxeclat"
	defer func() { res.Stats.Duration = time.Since(start) }()

	v := buildVertical(d, minCount, opt)
	m := &maxMiner{v: v, numItems: d.NumItems(), counts: make(map[string]int64)}
	var exts []extension
	for _, it := range v.items {
		exts = append(exts, extension{item: it, tids: v.tids[it]})
	}
	if len(exts) > 0 {
		m.mine(nil, exts, 1)
	}
	res.MFS = itemset.MaximalOnly(m.maximal)
	res.MFSSupports = make([]int64, len(res.MFS))
	for i, x := range res.MFS {
		res.MFSSupports[i] = m.counts[x.Key()]
	}
	res.Intersections = v.intersections
	res.Stats.AddPass(mfi.PassStats{
		Candidates: int(v.intersections), Frequent: len(res.MFS), MFSFound: len(res.MFS),
	})
	return res
}

type maxMiner struct {
	v        *verticalDB
	numItems int
	maximal  []itemset.Itemset
	bits     []*itemset.Bitset
	counts   map[string]int64
}

// knownSubset reports whether x is covered by an already-found maximal set.
func (m *maxMiner) knownSubset(xb *itemset.Bitset) bool {
	for _, b := range m.bits {
		if xb.IsSubsetOf(b) {
			return true
		}
	}
	return false
}

func (m *maxMiner) record(x itemset.Itemset, count int64) {
	m.maximal = append(m.maximal, x)
	m.bits = append(m.bits, itemset.BitsetOf(m.numItems, x))
	m.counts[x.Key()] = count
}

// mine explores the subtree of prefix with the given live extensions.
// Invariant: prefix is frequent (or empty), every extension's tidset is the
// tidset of prefix ∪ {item}, and extensions are frequent.
func (m *maxMiner) mine(prefix itemset.Itemset, exts []extension, depth int) {
	if m.v.opt.MaxDepth > 0 && depth > m.v.opt.MaxDepth {
		return
	}
	// head ∪ tail look-ahead: intersect everything; if frequent, the whole
	// union is (locally) maximal and the subtree collapses.
	all := exts[0].tids
	for _, e := range exts[1:] {
		m.v.intersections++
		all = all.intersect(e.tids)
		if int64(len(all)) < m.v.minCount {
			break
		}
	}
	if int64(len(all)) >= m.v.minCount {
		union := prefix.Clone()
		for _, e := range exts {
			union = union.With(e.item)
		}
		ub := itemset.BitsetOf(m.numItems, union)
		if !m.knownSubset(ub) {
			m.record(union, int64(len(all)))
		}
		return
	}
	for i, e := range exts {
		newPrefix := prefix.With(e.item)
		var next []extension
		for _, f := range exts[i+1:] {
			m.v.intersections++
			shared := e.tids.intersect(f.tids)
			if int64(len(shared)) >= m.v.minCount {
				next = append(next, extension{item: f.item, tids: shared})
			}
		}
		if len(next) == 0 {
			// newPrefix cannot grow within this class; it is maximal unless
			// an earlier maximal set covers it.
			nb := itemset.BitsetOf(m.numItems, newPrefix)
			if !m.knownSubset(nb) {
				m.record(newPrefix, int64(len(e.tids)))
			}
			continue
		}
		// prune: if newPrefix ∪ all remaining items is inside a known
		// maximal set, nothing new can come from this subtree.
		probe := newPrefix.Clone()
		for _, f := range next {
			probe = probe.With(f.item)
		}
		if m.knownSubset(itemset.BitsetOf(m.numItems, probe)) {
			continue
		}
		m.mine(newPrefix, next, depth+1)
	}
}
