// Package vertical implements frequent-itemset mining over the vertical
// data layout: each item carries its tidset (the transactions containing
// it) and the support of a union of items is the size of the intersection
// of their tidsets — no database rescans at all. This is the Eclat family
// of Zaki et al. (1997), contemporaneous with the paper and surveyed by the
// comparison study the paper cites as [9] (Mueller 1995, which evaluates
// exactly this partition/vertical style against Apriori).
//
// The miners run on the shared vertical kernels of internal/counting: a
// tidset is a dense word array (one bit per transaction) or a sorted
// []int32 list depending on density, a support is a word-wide popcount of
// an AND when only the cardinality is needed, and — per Zaki's dEclat —
// an equivalence class can switch from tidsets to diffsets, after which a
// child's delta is the difference of two sibling deltas:
//
//	d(P ∪ {e,f}) = d(P∪{f}) \ d(P∪{e}),   sup(P∪{e,f}) = sup(P∪{e}) − |d|
//
// so deep classes on dense data intersect small deltas instead of long,
// slowly-shrinking tidsets. Intersection buffers are pooled (sync.Pool) and
// reused across sibling subtrees, so the hot loop allocates nothing in
// steady state.
//
// Two miners are provided. Eclat enumerates the complete frequent set
// depth-first over prefix equivalence classes. MineMaximal adds the two
// classic maximal-mining prunes on top — subset-of-known-maximal pruning
// (the same Observation 2 that powers the MFCS) and the head∪tail "look
// ahead": if the current prefix joined with every remaining extension is
// frequent, that whole union is output and the subtree skipped. The pair
// gives the repository a depth-first point of comparison for Pincer-Search's
// breadth-first pincer movement: vertical miners make no database passes,
// so the comparison isolates candidate-space traversal order.
package vertical

import (
	"sync"
	"time"

	"pincer/internal/counting"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
)

// Options configures the vertical miners.
type Options struct {
	// KeepFrequent retains the complete frequent set (Eclat only; the
	// maximal miner never materializes it — that is its point).
	KeepFrequent bool
	// MaxDepth bounds the recursion (0 = unlimited); a safety valve for
	// degenerate data, not needed on the benchmarks.
	MaxDepth int
	// Rep selects the tidset representation and diffset policy:
	// RepAuto picks density-appropriate representations and switches a
	// class to diffsets when a child's support stays above half its
	// parent's (the regime where the delta is the smaller object);
	// RepBitset / RepList force one representation and never use diffsets;
	// RepDiffset switches every class to diffsets at the first
	// opportunity. All policies produce identical results.
	Rep counting.RepMode
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options { return Options{KeepFrequent: true} }

// vext is one extension of the current prefix P: the item, the set for
// P ∪ {item} — its tidset, or its diffset against t(P) when the class has
// switched (the class-wide diff flag) — and the support of P ∪ {item}.
type vext struct {
	item itemset.Item
	set  *counting.TidSet
	supp int64
}

// verticalDB is the item → tidset index plus the kernel space and buffer
// pool shared by both miners.
type verticalDB struct {
	minCount int64
	opt      Options
	space    *counting.TidSpace
	// frequent items in increasing order with their tidsets and supports
	items []itemset.Item
	sets  []counting.TidSet
	pool  sync.Pool // *counting.TidSet intersection buffers
}

// buildVertical inverts the dataset and keeps only frequent items.
func buildVertical(d *dataset.Dataset, minCount int64, opt Options) *verticalDB {
	v := &verticalDB{
		minCount: minCount,
		opt:      opt,
		space:    counting.NewTidSpace(d.Len(), opt.Rep),
	}
	n := d.NumItems()
	counts := d.ItemCounts()
	lists := make([][]int32, n)
	for i, c := range counts {
		if c >= minCount {
			lists[i] = make([]int32, 0, c)
		}
	}
	for ti, tx := range d.Transactions() {
		for _, it := range tx {
			if lists[it] != nil {
				lists[it] = append(lists[it], int32(ti))
			}
		}
	}
	for i := 0; i < n; i++ {
		if lists[i] != nil {
			v.items = append(v.items, itemset.Item(i))
			v.sets = append(v.sets, v.space.FromList(lists[i]))
		}
	}
	return v
}

// rootExts builds the top-level equivalence class: every frequent item,
// pointing at the base index sets (which are never pooled).
func (v *verticalDB) rootExts() []vext {
	exts := make([]vext, len(v.items))
	for i := range v.items {
		exts[i] = vext{item: v.items[i], set: &v.sets[i], supp: int64(v.sets[i].Card())}
	}
	return exts
}

// getSet draws an intersection buffer from the pool.
func (v *verticalDB) getSet() *counting.TidSet {
	if s, ok := v.pool.Get().(*counting.TidSet); ok {
		return s
	}
	return &counting.TidSet{}
}

// putSet returns a buffer (its storage intact) to the pool.
func (v *verticalDB) putSet(s *counting.TidSet) { v.pool.Put(s) }

// switchToDiff decides whether the child class of a prefix with support
// childSupp (inside a class of prefix support classSupp) should hold
// diffsets: forced by RepDiffset, chosen under RepAuto when supports are
// shrinking slowly (the delta is then smaller than the intersection), never
// for the pure-representation modes.
func (v *verticalDB) switchToDiff(childSupp, classSupp int64) bool {
	switch v.opt.Rep {
	case counting.RepDiffset:
		return true
	case counting.RepAuto:
		return childSupp*2 >= classSupp
	default:
		return false
	}
}

// extend computes the extension f of the child class under prefix P∪{e}
// into dst and returns its support. Kinds: the parent class holds tidsets
// (diff=false) or diffsets (diff=true) and the child class is requested as
// childDiff; the three legal transitions are ts→ts, ts→ds, and ds→ds.
func (v *verticalDB) extend(dst *counting.TidSet, e, f *vext, diff, childDiff bool) int64 {
	switch {
	case !diff && !childDiff: // tidset ∩ tidset
		v.space.And(dst, e.set, f.set)
		return int64(dst.Card())
	case !diff: // tidset → diffset: d(Pef) = t(Pe) \ t(Pf)
		v.space.Diff(dst, e.set, f.set)
		return e.supp - int64(dst.Card())
	default: // diffset → diffset: d(Pef) = d(Pf) \ d(Pe)
		v.space.Diff(dst, f.set, e.set)
		return e.supp - int64(dst.Card())
	}
}

// Eclat mines the complete frequent set depth-first. Stats.Passes is 1:
// the single pass that builds the vertical index.
func Eclat(d *dataset.Dataset, minSupport float64, opt Options) *mfi.Result {
	start := time.Now()
	minCount := d.MinCount(minSupport)
	res := &mfi.Result{
		MinCount:        minCount,
		NumTransactions: d.Len(),
		Frequent:        itemset.NewSet(0),
	}
	res.Stats.Algorithm = "eclat"
	defer func() { res.Stats.Duration = time.Since(start) }()

	v := buildVertical(d, minCount, opt)
	var all []itemset.Itemset
	counts := make(map[string]int64)
	note := func(x itemset.Itemset, c int64) {
		all = append(all, x)
		counts[x.Key()] = c
		if opt.KeepFrequent {
			res.Frequent.AddWithCount(x, c)
		}
	}
	exts := v.rootExts()
	for i := range exts {
		note(itemset.Itemset{exts[i].item}, exts[i].supp)
	}
	v.eclat(nil, int64(d.Len()), exts, false, 1, note)
	res.Stats.AddPass(mfi.PassStats{
		Candidates: int(v.space.Stats.Total), Frequent: len(all),
	})
	res.MFS = itemset.MaximalOnly(all)
	res.MFSSupports = make([]int64, len(res.MFS))
	for i, m := range res.MFS {
		res.MFSSupports[i] = counts[m.Key()]
	}
	if !opt.KeepFrequent {
		res.Frequent = nil
	}
	return res
}

// eclat recurses over the prefix equivalence class: each extension becomes
// a new prefix, joined with every later extension. prefixSupp is sup(prefix)
// and diff says whether the extensions hold diffsets against it.
func (v *verticalDB) eclat(prefix itemset.Itemset, prefixSupp int64, exts []vext, diff bool, depth int, note func(itemset.Itemset, int64)) {
	if v.opt.MaxDepth > 0 && depth >= v.opt.MaxDepth {
		return
	}
	for i := range exts {
		e := &exts[i]
		newPrefix := prefix.With(e.item)
		childDiff := diff || v.switchToDiff(e.supp, prefixSupp)
		var next []vext
		for j := i + 1; j < len(exts); j++ {
			f := &exts[j]
			s := v.getSet()
			supp := v.extend(s, e, f, diff, childDiff)
			if supp >= v.minCount {
				next = append(next, vext{item: f.item, set: s, supp: supp})
				note(newPrefix.With(f.item), supp)
			} else {
				v.putSet(s)
			}
		}
		if len(next) > 0 {
			v.eclat(newPrefix, e.supp, next, childDiff, depth+1, note)
			for k := range next {
				v.putSet(next[k].set)
			}
		}
	}
}

// Result extends the shared result with vertical-mining diagnostics.
type Result struct {
	mfi.Result
	// Intersections counts tidset kernel operations (the work unit).
	Intersections int64
}

// MineMaximal mines only the maximal frequent itemsets depth-first with
// subset pruning and the head∪tail look-ahead.
func MineMaximal(d *dataset.Dataset, minSupport float64, opt Options) *Result {
	start := time.Now()
	minCount := d.MinCount(minSupport)
	res := &Result{Result: mfi.Result{
		MinCount:        minCount,
		NumTransactions: d.Len(),
	}}
	res.Stats.Algorithm = "maxeclat"
	defer func() { res.Stats.Duration = time.Since(start) }()

	v := buildVertical(d, minCount, opt)
	m := &maxMiner{v: v, numItems: d.NumItems(), counts: make(map[string]int64)}
	exts := v.rootExts()
	if len(exts) > 0 {
		m.mine(nil, int64(d.Len()), exts, false, 1)
	}
	res.MFS = itemset.MaximalOnly(m.maximal)
	res.MFSSupports = make([]int64, len(res.MFS))
	for i, x := range res.MFS {
		res.MFSSupports[i] = m.counts[x.Key()]
	}
	res.Intersections = v.space.Stats.Total
	res.Stats.AddPass(mfi.PassStats{
		Candidates: int(v.space.Stats.Total), Frequent: len(res.MFS), MFSFound: len(res.MFS),
	})
	return res
}

type maxMiner struct {
	v        *verticalDB
	numItems int
	maximal  []itemset.Itemset
	bits     []*itemset.Bitset
	counts   map[string]int64
}

// knownSubset reports whether x is covered by an already-found maximal set.
func (m *maxMiner) knownSubset(xb *itemset.Bitset) bool {
	for _, b := range m.bits {
		if xb.IsSubsetOf(b) {
			return true
		}
	}
	return false
}

func (m *maxMiner) record(x itemset.Itemset, count int64) {
	m.maximal = append(m.maximal, x)
	m.bits = append(m.bits, itemset.BitsetOf(m.numItems, x))
	m.counts[x.Key()] = count
}

// allSupport returns sup(prefix ∪ every extension) with one kernel
// operation per extension and an early exit once infrequency is certain.
// In tidset mode it folds intersections; in diffset mode it accumulates the
// union of the deltas, using t(P∪{e_1..e_k}) = t(P) \ (d_1 ∪ … ∪ d_k) —
// the running supports are identical in both modes at every step, so the
// early-exit point (and the operation count) does not depend on the
// representation.
func (m *maxMiner) allSupport(prefixSupp int64, exts []vext, diff bool) int64 {
	supp := exts[0].supp
	if len(exts) == 1 || supp < m.v.minCount {
		return supp
	}
	acc, acc2 := m.v.getSet(), m.v.getSet()
	defer m.v.putSet(acc)
	defer m.v.putSet(acc2)
	src := exts[0].set
	for k := 1; k < len(exts); k++ {
		dst := acc
		if src == acc {
			dst = acc2
		}
		if diff {
			m.v.space.Or(dst, src, exts[k].set)
			supp = prefixSupp - int64(dst.Card())
		} else {
			m.v.space.And(dst, src, exts[k].set)
			supp = int64(dst.Card())
		}
		src = dst
		if supp < m.v.minCount {
			break
		}
	}
	return supp
}

// mine explores the subtree of prefix with the given live extensions.
// Invariant: prefix is frequent (or empty), every extension is frequent and
// carries the set (tidset, or diffset when diff) of prefix ∪ {item}.
func (m *maxMiner) mine(prefix itemset.Itemset, prefixSupp int64, exts []vext, diff bool, depth int) {
	if m.v.opt.MaxDepth > 0 && depth > m.v.opt.MaxDepth {
		return
	}
	// head ∪ tail look-ahead: if prefix ∪ all extensions is frequent, the
	// whole union is (locally) maximal and the subtree collapses.
	if supp := m.allSupport(prefixSupp, exts, diff); supp >= m.v.minCount {
		union := prefix.Clone()
		for i := range exts {
			union = union.With(exts[i].item)
		}
		ub := itemset.BitsetOf(m.numItems, union)
		if !m.knownSubset(ub) {
			m.record(union, supp)
		}
		return
	}
	for i := range exts {
		e := &exts[i]
		newPrefix := prefix.With(e.item)
		childDiff := diff || m.v.switchToDiff(e.supp, prefixSupp)
		var next []vext
		for j := i + 1; j < len(exts); j++ {
			f := &exts[j]
			s := m.v.getSet()
			supp := m.v.extend(s, e, f, diff, childDiff)
			if supp >= m.v.minCount {
				next = append(next, vext{item: f.item, set: s, supp: supp})
			} else {
				m.v.putSet(s)
			}
		}
		if len(next) == 0 {
			// newPrefix cannot grow within this class; it is maximal unless
			// an earlier maximal set covers it.
			nb := itemset.BitsetOf(m.numItems, newPrefix)
			if !m.knownSubset(nb) {
				m.record(newPrefix, e.supp)
			}
			continue
		}
		// prune: if newPrefix ∪ all remaining items is inside a known
		// maximal set, nothing new can come from this subtree.
		probe := newPrefix.Clone()
		for k := range next {
			probe = probe.With(next[k].item)
		}
		if m.knownSubset(itemset.BitsetOf(m.numItems, probe)) {
			for k := range next {
				m.v.putSet(next[k].set)
			}
			continue
		}
		m.mine(newPrefix, e.supp, next, childDiff, depth+1)
		for k := range next {
			m.v.putSet(next[k].set)
		}
	}
}
