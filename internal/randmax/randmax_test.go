package randmax

import (
	"testing"

	"pincer/internal/apriori"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
	"pincer/internal/quest"
)

func TestRandMaxFindsObviousMaximal(t *testing.T) {
	d := dataset.Empty(10)
	for i := 0; i < 5; i++ {
		d.Append(itemset.New(1, 2, 3, 4))
		d.Append(itemset.New(6, 7))
	}
	opt := DefaultOptions()
	opt.Seed = 1
	res := Mine(d, 0.5, opt)
	want := []itemset.Itemset{itemset.New(1, 2, 3, 4), itemset.New(6, 7)}
	if err := mfi.VerifyAgainst(res.MFS, want); err != nil {
		t.Fatalf("MFS: %v (got %v)", err, res.MFS)
	}
	for i, m := range res.MFS {
		if res.MFSSupports[i] != d.Support(m) {
			t.Errorf("support(%v) = %d", m, res.MFSSupports[i])
		}
	}
	if res.Walks == 0 || res.SupportQueries == 0 {
		t.Errorf("diagnostics empty: %+v", res)
	}
}

func TestRandMaxEveryOutputIsTrulyMaximal(t *testing.T) {
	d := quest.Generate(quest.Params{
		NumTransactions: 500, AvgTxLen: 8, AvgPatternLen: 4,
		NumPatterns: 20, NumItems: 40, Seed: 4,
	})
	opt := DefaultOptions()
	opt.Seed = 7
	res := Mine(d, 0.05, opt)
	if len(res.MFS) == 0 {
		t.Fatal("nothing found")
	}
	// soundness: every reported itemset is frequent and maximal
	if err := mfi.Verify(d, res.MinCount, res.MFS); err != nil {
		t.Fatal(err)
	}
	// probabilistic completeness: the output is a subset of the true MFS
	ares := must(apriori.Mine(dataset.NewScanner(d), 0.05, apriori.DefaultOptions()))
	trueSet := itemset.SetOf(ares.MFS...)
	for _, m := range res.MFS {
		if !trueSet.Contains(m) {
			t.Errorf("%v not in the true MFS", m)
		}
	}
	missing := len(ares.MFS) - len(res.MFS)
	if missing < 0 {
		t.Errorf("found more maximal itemsets (%d) than exist (%d)?", len(res.MFS), len(ares.MFS))
	}
}

func TestRandMaxEdgeCases(t *testing.T) {
	res := Mine(dataset.Empty(4), 0.5, DefaultOptions())
	if len(res.MFS) != 0 || res.Walks != 0 {
		t.Fatalf("empty db: %+v", res)
	}
	d := dataset.New([]dataset.Transaction{itemset.New(1), itemset.New(2)})
	res = Mine(d, 0.9, DefaultOptions())
	if len(res.MFS) != 0 {
		t.Fatalf("MFS = %v, want empty", res.MFS)
	}
	// MaxWalks bounds work
	d2 := dataset.New([]dataset.Transaction{itemset.New(1, 2), itemset.New(1, 2)})
	opt := DefaultOptions()
	opt.MaxWalks = 3
	res = Mine(d2, 0.5, opt)
	if res.Walks > 3 {
		t.Errorf("walks = %d > MaxWalks", res.Walks)
	}
}

func TestRandMaxDeterministicBySeed(t *testing.T) {
	d := quest.Generate(quest.Params{
		NumTransactions: 300, AvgTxLen: 6, AvgPatternLen: 3,
		NumPatterns: 15, NumItems: 30, Seed: 2,
	})
	opt := DefaultOptions()
	opt.Seed = 99
	a := Mine(d, 0.05, opt)
	b := Mine(d, 0.05, opt)
	if err := mfi.VerifyAgainst(a.MFS, b.MFS); err != nil {
		t.Fatalf("same seed differs: %v", err)
	}
	if a.Walks != b.Walks {
		t.Errorf("walks differ: %d vs %d", a.Walks, b.Walks)
	}
}

// must unwraps the (result, error) mining returns; in-memory test scans
// cannot fail.
func must[R any](res R, err error) R {
	if err != nil {
		panic(err)
	}
	return res
}
