// Package randmax implements a randomized maximal-frequent-itemset
// discoverer in the spirit of Gunopulos, Mannila & Saluja (ICDT 1997),
// the randomized alternative the paper contrasts itself with in §5
// ("we present a deterministic algorithm for solving this problem").
//
// Each trial performs a random maximalization walk: starting from a random
// frequent item, items are added in random order, keeping the set frequent,
// until no item can be added — the result is a maximal frequent itemset.
// Trials repeat until a patience budget passes without discovering a new
// maximal itemset. The output is therefore a subset of the true MFS with
// high probability of completeness on benign distributions, but without the
// determinism of Pincer-Search — the benchmark suite uses it to show what
// the randomized alternative costs and misses.
package randmax

import (
	"math/rand"
	"time"

	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
)

// Options configures the randomized search.
type Options struct {
	// Patience is the number of consecutive fruitless walks after which the
	// search stops (default 64).
	Patience int
	// MaxWalks hard-bounds the number of walks (0 = unlimited).
	MaxWalks int
	// Seed drives the PRNG.
	Seed int64
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options {
	return Options{Patience: 64}
}

// Result extends the shared result with randomized-search diagnostics.
type Result struct {
	mfi.Result
	// Walks is the number of maximalization walks performed.
	Walks int
	// SupportQueries counts the support computations (each a full database
	// scan in this reference implementation) — the algorithm's cost unit.
	SupportQueries int64
}

// Mine runs the randomized search over an in-memory dataset. The result is
// a (probabilistically complete) subset of the maximum frequent set.
func Mine(d *dataset.Dataset, minSupport float64, opt Options) *Result {
	start := time.Now()
	if opt.Patience <= 0 {
		opt.Patience = 64
	}
	minCount := d.MinCount(minSupport)
	res := &Result{Result: mfi.Result{
		MinCount:        minCount,
		NumTransactions: d.Len(),
	}}
	res.Stats.Algorithm = "randmax"
	defer func() { res.Stats.Duration = time.Since(start) }()

	support := func(x itemset.Itemset) int64 {
		res.SupportQueries++
		return d.Support(x)
	}

	// Frequent items form the walk alphabet.
	var frequentItems []itemset.Item
	counts := d.ItemCounts()
	for i, c := range counts {
		if c >= minCount {
			frequentItems = append(frequentItems, itemset.Item(i))
		}
	}
	if len(frequentItems) == 0 {
		return res
	}

	rng := rand.New(rand.NewSource(opt.Seed))
	found := itemset.NewSet(0)
	fruitless := 0
	for fruitless < opt.Patience {
		if opt.MaxWalks > 0 && res.Walks >= opt.MaxWalks {
			break
		}
		res.Walks++
		m, sup := walk(rng, frequentItems, minCount, support)
		if found.Contains(m) {
			fruitless++
			continue
		}
		fruitless = 0
		found.AddWithCount(m, sup)
	}

	res.MFS = itemset.MaximalOnly(found.Sorted())
	res.MFSSupports = make([]int64, len(res.MFS))
	for i, m := range res.MFS {
		c, _ := found.Count(m)
		res.MFSSupports[i] = c
	}
	return res
}

// walk grows a random frequent itemset until maximal.
func walk(rng *rand.Rand, alphabet []itemset.Item, minCount int64, support func(itemset.Itemset) int64) (itemset.Itemset, int64) {
	order := rng.Perm(len(alphabet))
	current := itemset.Itemset{alphabet[order[0]]}
	sup := support(current) // frequent by construction of the alphabet
	for _, oi := range order[1:] {
		ext := current.With(alphabet[oi])
		if s := support(ext); s >= minCount {
			current = ext
			sup = s
		}
	}
	return current, sup
}
