// Package ais implements the original AIS algorithm of Agrawal, Imielinski
// & Swami ("Mining Association Rules between Sets of Items in Large
// Databases", SIGMOD 1993) — reference [1] of the paper and the ancestor of
// every level-wise miner here.
//
// AIS differs from Apriori in when candidates are born: instead of a
// generation step between passes, candidates are created on the fly while
// scanning — every frequent (k-1)-itemset found inside a transaction is
// extended by each later item of that transaction. The same candidate can
// be generated in many transactions (counted once per occurrence), and
// extensions are not pruned against other (k-1)-subsets, so AIS counts far
// more candidates than Apriori; that gap is the historical motivation for
// Apriori-gen, and this package exists to measure it.
package ais

import (
	"time"

	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
)

// Options configures an AIS run.
type Options struct {
	// KeepFrequent retains the complete frequent set in the result.
	KeepFrequent bool
	// MaxCandidatesPerPass aborts a pass that materializes more than this
	// many distinct candidates (0 = unlimited); AIS's on-the-fly generation
	// can explode on dense data, and the bound keeps benchmarks honest
	// instead of unkillable.
	MaxCandidatesPerPass int
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options {
	return Options{KeepFrequent: true, MaxCandidatesPerPass: 5_000_000}
}

// Result extends the shared result with the abort flag.
type Result struct {
	mfi.Result
	// Aborted reports the candidate bound was hit; the frequent set is
	// incomplete.
	Aborted bool
}

// Mine runs AIS at a fractional minimum support. A non-nil error reports a
// mid-pass failure re-reading a file-backed database (see
// mfi.RecoverMiningError); in-memory scans cannot fail.
func Mine(sc dataset.Scanner, minSupport float64, opt Options) (*Result, error) {
	return MineCount(sc, dataset.MinCountFor(sc.Len(), minSupport), opt)
}

// MineCount runs AIS with an absolute support threshold.
func MineCount(sc dataset.Scanner, minCount int64, opt Options) (_ *Result, err error) {
	defer mfi.RecoverMiningError(&err)
	start := time.Now()
	res := &Result{Result: mfi.Result{
		MinCount:        minCount,
		NumTransactions: sc.Len(),
		Frequent:        itemset.NewSet(0),
	}}
	res.Stats.Algorithm = "ais"
	defer func() { res.Stats.Duration = time.Since(start) }()

	counts := make(map[string]int64)
	var all []itemset.Itemset
	note := func(x itemset.Itemset, c int64) {
		all = append(all, x)
		counts[x.Key()] = c
		if opt.KeepFrequent {
			res.Frequent.AddWithCount(x, c)
		}
	}
	finish := func() *Result {
		res.MFS = itemset.MaximalOnly(all)
		res.MFSSupports = make([]int64, len(res.MFS))
		for i, m := range res.MFS {
			res.MFSSupports[i] = counts[m.Key()]
		}
		if !opt.KeepFrequent {
			res.Frequent = nil
		}
		return res
	}

	// Pass 1: plain item counting.
	itemCounts := make([]int64, sc.NumItems())
	sc.Scan(func(tx itemset.Itemset, _ *itemset.Bitset) {
		for _, it := range tx {
			itemCounts[it]++
		}
	})
	var lk []itemset.Itemset
	for i, c := range itemCounts {
		if c >= minCount {
			s := itemset.Itemset{itemset.Item(i)}
			lk = append(lk, s)
			note(s, c)
		}
	}
	res.Stats.AddPass(mfi.PassStats{Candidates: sc.NumItems(), Frequent: len(lk)})

	// Passes ≥ 2: extend frontier itemsets inside each transaction.
	for len(lk) > 0 {
		candCounts := make(map[string]int64)
		aborted := false
		sc.Scan(func(tx itemset.Itemset, _ *itemset.Bitset) {
			if aborted {
				return
			}
			for _, l := range lk {
				if !l.IsSubsetOf(tx) {
					continue
				}
				// extend l by every transaction item past l's last item
				last := l.Last()
				for _, it := range tx {
					if it <= last {
						continue
					}
					cand := l.With(it)
					candCounts[cand.Key()]++
					if opt.MaxCandidatesPerPass > 0 && len(candCounts) > opt.MaxCandidatesPerPass {
						aborted = true
						return
					}
				}
			}
		})
		if aborted {
			res.Aborted = true
			return finish(), nil
		}
		var next []itemset.Itemset
		for key, c := range candCounts {
			if c >= minCount {
				x := itemset.KeyToItemset(key)
				next = append(next, x)
				note(x, c)
			}
		}
		itemset.SortItemsets(next)
		res.Stats.AddPass(mfi.PassStats{Candidates: len(candCounts), Frequent: len(next)})
		lk = next
	}
	return finish(), nil
}
