package ais

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pincer/internal/apriori"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
	"pincer/internal/quest"
)

// must unwraps the (result, error) mining returns; in-memory scans
// cannot fail.
func must[R any](res R, err error) R {
	if err != nil {
		panic(err)
	}
	return res
}

func TestAISSmall(t *testing.T) {
	d := dataset.New([]dataset.Transaction{
		itemset.New(1, 2, 3),
		itemset.New(1, 2, 3),
		itemset.New(1, 2),
		itemset.New(3, 4),
		itemset.New(3, 4),
	})
	res := must(MineCount(dataset.NewScanner(d), 2, DefaultOptions()))
	if res.Aborted {
		t.Fatal("aborted")
	}
	ares := must(apriori.MineCount(dataset.NewScanner(d), 2, apriori.DefaultOptions()))
	if err := mfi.VerifyAgainst(res.MFS, ares.MFS); err != nil {
		t.Fatalf("MFS: %v (got %v)", err, res.MFS)
	}
	if res.Frequent.Len() != ares.Frequent.Len() {
		t.Fatalf("frequent %d vs %d", res.Frequent.Len(), ares.Frequent.Len())
	}
	res.Frequent.Each(func(x itemset.Itemset, c int64) {
		if c != d.Support(x) {
			t.Errorf("support(%v) = %d, want %d", x, c, d.Support(x))
		}
	})
}

func TestAISCountsMoreCandidatesThanApriori(t *testing.T) {
	// The historical motivation for Apriori-gen: AIS generates candidates
	// per occurrence without subset pruning.
	d := quest.Generate(quest.Params{
		NumTransactions: 600, AvgTxLen: 8, AvgPatternLen: 4,
		NumPatterns: 30, NumItems: 60, Seed: 6,
	})
	res := must(Mine(dataset.NewScanner(d), 0.02, DefaultOptions()))
	ares := must(apriori.Mine(dataset.NewScanner(d), 0.02, apriori.DefaultOptions()))
	if err := mfi.VerifyAgainst(res.MFS, ares.MFS); err != nil {
		t.Fatal(err)
	}
	if res.Stats.CandidatesAll <= ares.Stats.CandidatesAll {
		t.Errorf("AIS candidates %d not above Apriori %d", res.Stats.CandidatesAll, ares.Stats.CandidatesAll)
	}
}

func TestAISAbortsOnCandidateExplosion(t *testing.T) {
	d := quest.Generate(quest.Params{
		NumTransactions: 200, AvgTxLen: 12, AvgPatternLen: 6,
		NumPatterns: 10, NumItems: 50, Seed: 2,
	})
	opt := DefaultOptions()
	opt.MaxCandidatesPerPass = 5
	res := must(Mine(dataset.NewScanner(d), 0.05, opt))
	if !res.Aborted {
		t.Fatal("tiny bound did not abort")
	}
}

func TestAISEdgeCases(t *testing.T) {
	res := must(MineCount(dataset.NewScanner(dataset.Empty(4)), 1, DefaultOptions()))
	if len(res.MFS) != 0 {
		t.Errorf("empty MFS = %v", res.MFS)
	}
	d := dataset.New([]dataset.Transaction{itemset.New(1), itemset.New(2)})
	res = must(MineCount(dataset.NewScanner(d), 2, DefaultOptions()))
	if len(res.MFS) != 0 {
		t.Errorf("MFS = %v", res.MFS)
	}
	opt := DefaultOptions()
	opt.KeepFrequent = false
	d2 := dataset.New([]dataset.Transaction{itemset.New(1, 2), itemset.New(1, 2)})
	res = must(MineCount(dataset.NewScanner(d2), 2, opt))
	if res.Frequent != nil {
		t.Error("Frequent retained")
	}
	if len(res.MFS) != 1 || res.MFSSupports[0] != 2 {
		t.Errorf("MFS = %v supports = %v", res.MFS, res.MFSSupports)
	}
}

func TestQuickAISMatchesApriori(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		universe := 4 + r.Intn(8)
		numTx := 5 + r.Intn(40)
		d := dataset.Empty(universe)
		for i := 0; i < numTx; i++ {
			n := 1 + r.Intn(universe)
			items := make([]itemset.Item, n)
			for j := range items {
				items[j] = itemset.Item(r.Intn(universe))
			}
			d.Append(itemset.New(items...))
		}
		minCount := int64(1 + r.Intn(numTx/2+1))
		res := must(MineCount(dataset.NewScanner(d), minCount, DefaultOptions()))
		ares := must(apriori.MineCount(dataset.NewScanner(d), minCount, apriori.DefaultOptions()))
		if res.Frequent.Len() != ares.Frequent.Len() {
			return false
		}
		return mfi.VerifyAgainst(res.MFS, ares.MFS) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
