package obsv

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestMultiFansOutAndSkipsNils(t *testing.T) {
	a, b := NewCollector(), NewCollector()
	tr := Multi(nil, a, nil, b)
	feedFixedRun(tr)
	for i, c := range []*Collector{a, b} {
		if len(c.Runs()) != 1 || len(c.Passes()) != 2 || len(c.Summaries()) != 1 {
			t.Errorf("collector %d saw %d/%d/%d events, want 1/2/1",
				i, len(c.Runs()), len(c.Passes()), len(c.Summaries()))
		}
	}
}

func TestMultiUnwrapsSingleTracer(t *testing.T) {
	c := NewCollector()
	if got := Multi(nil, c, nil); got != Tracer(c) {
		t.Errorf("Multi with one non-nil tracer = %T, want the tracer itself", got)
	}
}

func TestCollectorCopiesAndResets(t *testing.T) {
	c := NewCollector()
	feedFixedRun(c)
	passes := c.Passes()
	if len(passes) != 2 || passes[0].Pass != 1 || passes[1].Phase != PhaseRecovery {
		t.Fatalf("collected passes = %+v", passes)
	}
	sum := c.Summaries()[0]
	if sum.Passes != 2 || sum.Duration != 2500*time.Nanosecond {
		t.Errorf("summary = %+v", sum)
	}
	c.Reset()
	if len(c.Runs())+len(c.Passes())+len(c.Summaries()) != 0 {
		t.Error("Reset left events behind")
	}
}

// TestJSONTracerEmitsValidJSONL checks the -trace-json stream: one typed
// JSON object per line, round-tripping the event fields.
func TestJSONTracerEmitsValidJSONL(t *testing.T) {
	var buf bytes.Buffer
	feedFixedRun(NewJSONTracer(&buf))

	var types []string
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev struct {
			Type       string           `json:"type"`
			Run        *RunInfo         `json:"run"`
			Pass       *PassEvent       `json:"pass"`
			Summary    *RunSummary      `json:"summary"`
			Checkpoint *CheckpointEvent `json:"checkpoint"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		types = append(types, ev.Type)
		switch ev.Type {
		case "run_start":
			if ev.Run == nil || ev.Run.Algorithm != "pincer" || ev.Run.Workers != 2 {
				t.Errorf("run_start = %+v", ev.Run)
			}
		case "pass":
			if ev.Pass == nil || ev.Pass.Candidates == 0 {
				t.Errorf("pass = %+v", ev.Pass)
			}
		case "run_done":
			if ev.Summary == nil || ev.Summary.MFSSize != 3 {
				t.Errorf("run_done = %+v", ev.Summary)
			}
		case "checkpoint":
			if ev.Checkpoint == nil || ev.Checkpoint.Stage == "" {
				t.Errorf("checkpoint = %+v", ev.Checkpoint)
			}
		default:
			t.Errorf("unknown event type %q", ev.Type)
		}
	}
	want := []string{"run_start", "pass", "checkpoint", "pass", "checkpoint", "run_done"}
	if len(types) != len(want) {
		t.Fatalf("event types = %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("event types = %v, want %v", types, want)
		}
	}
}
