package obsv

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	feedFixedRun(NewMetricsTracer(reg))
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	body, resp := get(t, base+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content type %q, want the Prometheus text version", ct)
	}
	if body != wantPrometheus {
		t.Errorf("/metrics body:\n%s\nwant:\n%s", body, wantPrometheus)
	}

	body, resp = get(t, base+"/debug/vars")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars status %d", resp.StatusCode)
	}
	var vars map[string]interface{}
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v", err)
	}
	// expvar's own variables and the registry's metrics coexist.
	if _, ok := vars["memstats"]; !ok {
		t.Error("/debug/vars is missing expvar's memstats")
	}
	if got, ok := vars["pincer_runs_total"].(float64); !ok || got != 1 {
		t.Errorf("/debug/vars pincer_runs_total = %v, want 1", vars["pincer_runs_total"])
	}

	if _, resp = get(t, base+"/debug/pprof/cmdline"); resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", resp.StatusCode)
	}
}

func TestStartProfilesWritesFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	prof, err := StartProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to write.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := prof.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
	if err := prof.Stop(); err != nil {
		t.Errorf("second Stop: %v", err)
	}
}

func TestStartProfilesDisabled(t *testing.T) {
	prof, err := StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := prof.Stop(); err != nil {
		t.Errorf("Stop with no profiles: %v", err)
	}
}
