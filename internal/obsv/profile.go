package obsv

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiles manages the -cpuprofile/-memprofile lifecycle shared by the CLI
// tools: start at flag-parse time, Stop on the way out.
type Profiles struct {
	cpu     *os.File
	memPath string
}

// StartProfiles begins a CPU profile to cpuPath (if non-empty) and arranges
// a heap profile to memPath (if non-empty) to be written by Stop.
func StartProfiles(cpuPath, memPath string) (*Profiles, error) {
	p := &Profiles{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("obsv: -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("obsv: -cpuprofile: %w", err)
		}
		p.cpu = f
	}
	return p, nil
}

// Stop finishes the CPU profile and writes the heap profile. It is safe to
// call on a zero Profiles and is idempotent for the CPU half.
func (p *Profiles) Stop() error {
	if p == nil {
		return nil
	}
	if p.cpu != nil {
		pprof.StopCPUProfile()
		if err := p.cpu.Close(); err != nil {
			return err
		}
		p.cpu = nil
	}
	if p.memPath != "" {
		f, err := os.Create(p.memPath)
		if err != nil {
			return fmt.Errorf("obsv: -memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC() // materialize up-to-date allocation stats
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("obsv: -memprofile: %w", err)
		}
	}
	return nil
}
