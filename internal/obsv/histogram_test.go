package obsv

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexMonotone(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0},
		{1, 0},
		{1000, 0}, // 1µs: first bucket's inclusive bound
		{1001, 1}, // just past it
		{2000, 1}, // 2µs
		{2001, 2}, // (2µs, 4µs]
		{1 << 62, histBucketCount - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Every bound lands in its own bucket, one past it in the next.
	for i := 0; i < histBucketCount-1; i++ {
		if got := bucketIndex(histBound(i)); got != i {
			t.Errorf("bucketIndex(bound %d) = %d, want %d", i, got, i)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	// 100 observations of 1ms, 10 of 1s: p50 lives in the 1ms bucket, p99+
	// in the 1s bucket; the log buckets bound the error to one octave.
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Second)
	}
	if h.Count() != 110 {
		t.Fatalf("Count = %d, want 110", h.Count())
	}
	p50 := h.Quantile(0.50)
	if p50 < 500*time.Microsecond || p50 > 2*time.Millisecond {
		t.Errorf("p50 = %v, want ~1ms (within its octave)", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 500*time.Millisecond || p99 > 2*time.Second {
		t.Errorf("p99 = %v, want ~1s (within its octave)", p99)
	}
	if h.Max() != time.Second {
		t.Errorf("Max = %v, want 1s", h.Max())
	}
	wantSum := int64(100*time.Millisecond + 10*time.Second)
	if h.SumNanos() != wantSum {
		t.Errorf("SumNanos = %d, want %d", h.SumNanos(), wantSum)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(w+1) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count = %d, want 8000", h.Count())
	}
	_, total := h.snapshot()
	if total != 8000 {
		t.Fatalf("bucket total = %d, want 8000", total)
	}
}

func TestRegistryHistogramExposition(t *testing.T) {
	reg := NewRegistry()
	h1 := reg.Histogram("pincer_http_request_seconds", `route="submit"`, "HTTP request latency.")
	h2 := reg.Histogram("pincer_http_request_seconds", `route="status"`, "HTTP request latency.")
	h1.Observe(3 * time.Millisecond)
	h1.Observe(3 * time.Millisecond)
	h2.Observe(10 * time.Microsecond)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE pincer_http_request_seconds histogram\n",
		`pincer_http_request_seconds_bucket{route="submit",le="+Inf"} 2` + "\n",
		`pincer_http_request_seconds_count{route="submit"} 2` + "\n",
		`pincer_http_request_seconds_count{route="status"} 1` + "\n",
		fmt.Sprintf(`pincer_http_request_seconds_sum{route="submit"} %g`+"\n", 0.006),
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// TYPE appears once per family, not once per series.
	if n := strings.Count(out, "# TYPE pincer_http_request_seconds histogram"); n != 1 {
		t.Errorf("TYPE emitted %d times, want 1", n)
	}
	// The 10µs observation lands in the (8µs, 16µs] bucket.
	if !strings.Contains(out, `pincer_http_request_seconds_bucket{route="status",le="1.6e-05"} 1`) {
		t.Errorf("10µs observation missing from its le=1.6e-05 bucket:\n%s", out)
	}

	snap := reg.Snapshot()
	if snap[`pincer_http_request_seconds_count{route="submit"}`] != 2 {
		t.Errorf("Snapshot histogram count = %d, want 2", snap[`pincer_http_request_seconds_count{route="submit"}`])
	}
}

func TestRegistryLabeledCounter(t *testing.T) {
	reg := NewRegistry()
	a := reg.LabeledCounter("pincer_http_responses_total", `route="submit",code="2xx"`, "Responses by route and class.")
	b := reg.LabeledCounter("pincer_http_responses_total", `route="submit",code="4xx"`, "Responses by route and class.")
	if a == b {
		t.Fatal("distinct label sets returned the same counter")
	}
	// Idempotent by (name, labels).
	if again := reg.LabeledCounter("pincer_http_responses_total", `route="submit",code="2xx"`, ""); again != a {
		t.Fatal("re-registration returned a different counter")
	}
	a.Add(3)
	b.Inc()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`pincer_http_responses_total{route="submit",code="2xx"} 3` + "\n",
		`pincer_http_responses_total{route="submit",code="4xx"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE pincer_http_responses_total counter"); n != 1 {
		t.Errorf("TYPE emitted %d times, want 1", n)
	}
	var expvarBuf bytes.Buffer
	if err := reg.WriteExpvar(&expvarBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(expvarBuf.String(), `"pincer_http_responses_total{route=\"submit\",code=\"2xx\"}": 3`) {
		t.Errorf("expvar missing labeled counter:\n%s", expvarBuf.String())
	}
}
