package obsv

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewMux builds the debug endpoint for a registry:
//
//	/metrics       Prometheus text exposition
//	/debug/vars    expvar-compatible JSON: every expvar-published variable
//	               (cmdline, memstats, ...) plus the registry's metrics
//	/debug/pprof/  the standard net/http/pprof handlers
func NewMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	RegisterDebug(mux, reg)
	return mux
}

// RegisterDebug mounts the debug endpoints (see NewMux) on an existing mux,
// so a server can serve them next to its own API routes.
func RegisterDebug(mux *http.ServeMux, reg *Registry) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprint(w, "{")
		first := true
		expvar.Do(func(kv expvar.KeyValue) {
			if !first {
				fmt.Fprint(w, ",")
			}
			first = false
			fmt.Fprintf(w, "\n%q: %s", kv.Key, kv.Value.String())
		})
		for _, m := range reg.sorted() {
			if !first {
				fmt.Fprint(w, ",")
			}
			first = false
			fmt.Fprintf(w, "\n%q: %d", m.expvarName(), m.value())
		}
		fmt.Fprint(w, "\n}\n")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Server is a running debug endpoint.
type Server struct {
	// Addr is the bound address (useful with a ":0" listen request).
	Addr string
	srv  *http.Server
}

// Serve starts the debug endpoint on addr in a background goroutine and
// returns immediately. Close it when the process is done serving.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewMux(reg)}
	go srv.Serve(ln)
	return &Server{Addr: ln.Addr().String(), srv: srv}, nil
}

// Close shuts the server down, waiting briefly for in-flight scrapes.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}
