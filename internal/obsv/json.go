package obsv

import (
	"encoding/json"
	"io"
	"sync"
)

// JSONTracer streams the event stream as JSON lines, one object per event,
// each tagged with a "type" field ("run_start", "pass", "run_done"). The
// stream is valid JSONL and is what `-trace-json` writes.
type JSONTracer struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONTracer writes events to w (one JSON object per line).
func NewJSONTracer(w io.Writer) *JSONTracer {
	return &JSONTracer{enc: json.NewEncoder(w)}
}

type jsonEvent struct {
	Type       string           `json:"type"`
	Run        *RunInfo         `json:"run,omitempty"`
	Pass       *PassEvent       `json:"pass,omitempty"`
	Summary    *RunSummary      `json:"summary,omitempty"`
	Checkpoint *CheckpointEvent `json:"checkpoint,omitempty"`
	Selection  *SelectionEvent  `json:"selection,omitempty"`
	Cluster    *ClusterEvent    `json:"cluster,omitempty"`
	Stream     *StreamEvent     `json:"stream,omitempty"`
}

// RunStart implements Tracer.
func (t *JSONTracer) RunStart(info RunInfo) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.enc.Encode(jsonEvent{Type: "run_start", Run: &info})
}

// PassDone implements Tracer.
func (t *JSONTracer) PassDone(ev PassEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.enc.Encode(jsonEvent{Type: "pass", Pass: &ev})
}

// RunDone implements Tracer.
func (t *JSONTracer) RunDone(sum RunSummary) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.enc.Encode(jsonEvent{Type: "run_done", Summary: &sum})
}

// CheckpointDone implements CheckpointTracer.
func (t *JSONTracer) CheckpointDone(ev CheckpointEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.enc.Encode(jsonEvent{Type: "checkpoint", Checkpoint: &ev})
}

// SelectionDone implements SelectionTracer.
func (t *JSONTracer) SelectionDone(ev SelectionEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.enc.Encode(jsonEvent{Type: "selection", Selection: &ev})
}

// ClusterChange implements ClusterTracer.
func (t *JSONTracer) ClusterChange(ev ClusterEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.enc.Encode(jsonEvent{Type: "cluster", Cluster: &ev})
}

// StreamDelta implements StreamTracer.
func (t *JSONTracer) StreamDelta(ev StreamEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.enc.Encode(jsonEvent{Type: "stream", Stream: &ev})
}
