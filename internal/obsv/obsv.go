// Package obsv is the miners' observability layer: per-pass trace events,
// process-level counters and gauges with expvar- and Prometheus-compatible
// exposition, and an HTTP endpoint bundling both with net/http/pprof.
//
// The paper's evaluation (§4) is organized around per-pass behavior —
// candidate counts, MFCS size, passes over the database — so the unit of
// tracing here is the database pass: every miner emits one PassEvent per
// pass, mirroring its Stats.PassDetails entry exactly, plus a RunStart /
// RunDone pair bracketing the run. A nil Tracer in the mining options
// disables everything; the miners guard each emission with a single nil
// check, so the untraced hot path pays nothing.
//
// Everything here is standard library only.
package obsv

import (
	"sync"
	"time"
)

// Phase tags what a database pass was spent on.
type Phase string

const (
	// PhaseBottomUp is a level-wise candidate-counting pass (Apriori and
	// the bottom-up half of Pincer-Search, possibly with MFCS elements
	// piggybacked).
	PhaseBottomUp Phase = "bottom-up"
	// PhaseMFCSCount is a pass counting only top-down candidates: MFCS
	// elements in Pincer-Search, the frontier in the pure top-down miner.
	PhaseMFCSCount Phase = "mfcs-count"
	// PhaseRecovery is a bottom-up pass whose candidates include itemsets
	// reconstructed by the recovery procedure (paper §3.4).
	PhaseRecovery Phase = "recovery"
	// PhaseTail is an MFCS-only pass after the bottom-up search exhausted
	// (the termination fix of DESIGN.md §2 issue 2).
	PhaseTail Phase = "tail"
)

// RunInfo describes a mining run as it starts.
type RunInfo struct {
	Algorithm       string `json:"algorithm"`
	Workers         int    `json:"workers"`
	MinCount        int64  `json:"min_count"`
	NumTransactions int    `json:"transactions"`
}

// PassEvent is the span record of one completed database pass. Pass,
// Candidates, MFCSCandidates, Frequent, and MFSFound agree exactly with the
// run's Stats.PassDetails entry of the same pass number; the remaining
// fields add what Stats does not record (phase, MFCS size, scan wall-clock,
// worker count).
type PassEvent struct {
	Algorithm string `json:"algorithm"`
	Pass      int    `json:"pass"`
	Phase     Phase  `json:"phase"`
	// Candidates is the number of bottom-up candidates counted.
	Candidates int `json:"candidates"`
	// MFCSCandidates is the number of MFCS elements counted this pass.
	MFCSCandidates int `json:"mfcs_candidates"`
	// MFCSSize is |MFCS| after the pass (0 once the adaptive policy
	// abandons the structure, and for miners without an MFCS).
	MFCSSize int `json:"mfcs_size"`
	// Frequent / Infrequent split the counted bottom-up candidates.
	Frequent   int `json:"frequent"`
	Infrequent int `json:"infrequent"`
	// MFSFound is the number of maximal frequent itemsets established.
	MFSFound int `json:"mfs_found"`
	// ScanDuration is the wall clock of the pass's database read.
	ScanDuration time.Duration `json:"scan_ns"`
	// Workers is the number of counting goroutines (1 = sequential).
	Workers int `json:"workers"`
	// Intersections is the number of tidset kernel operations the pass
	// performed when counting ran on a vertical (tid-list) counter instead
	// of a database scan; 0 — and omitted — for scan counters.
	Intersections int64 `json:"intersections,omitempty"`
	// Representation labels the tidset representation those operations used
	// ("bitset", "list", or "mixed", with a "+diffset" suffix when diffsets
	// were involved); empty for scan counters.
	Representation string `json:"representation,omitempty"`
}

// RunSummary describes a finished run.
type RunSummary struct {
	Algorithm  string        `json:"algorithm"`
	Passes     int           `json:"passes"`
	Candidates int64         `json:"candidates"`
	MFSSize    int           `json:"mfs_size"`
	Duration   time.Duration `json:"duration_ns"`
	// Aborted marks a run cut short by cancellation or a resource budget;
	// AbortReason carries the mfi.Reason* constant. The summary then
	// describes the partial anytime result.
	Aborted     bool   `json:"aborted,omitempty"`
	AbortReason string `json:"abort_reason,omitempty"`
}

// CheckpointEvent records one persisted pass-barrier checkpoint.
type CheckpointEvent struct {
	Algorithm string `json:"algorithm"`
	// Pass is the number of completed passes captured by the checkpoint.
	Pass int `json:"pass"`
	// Stage is the phase the checkpoint re-enters on resume.
	Stage string `json:"stage"`
	// Duration is the wall clock spent encoding and persisting the state.
	Duration time.Duration `json:"duration_ns"`
}

// SelectionEvent records one adaptive engine-selection decision: the plan
// the policy chose and the profile features that drove it. Emitted before
// RunStart by runs whose engine was delegated to the dataset-adaptive
// policy; fixed-engine runs never emit it.
type SelectionEvent struct {
	// Algorithm, Engine, and Counter are the selected plan (the server's
	// miner/engine/counter vocabulary).
	Algorithm string `json:"algorithm"`
	Engine    string `json:"engine,omitempty"`
	Counter   string `json:"counter,omitempty"`
	// Rationale is the policy's one-line explanation.
	Rationale string `json:"rationale,omitempty"`
	// The dataset profile features the policy keyed on.
	Transactions int     `json:"transactions"`
	Universe     int     `json:"universe"`
	Density      float64 `json:"density"`
	Skew         float64 `json:"skew"`
}

// ClusterEvent records one distributed-mining control-plane transition: a
// worker declared dead or rejoined, a shard reassigned or counted locally,
// or the coordinator degrading to single-node counting. The data plane (the
// per-pass count merges) stays in PassEvent; only state changes are traced,
// so a healthy cluster run emits no cluster events at all.
type ClusterEvent struct {
	// Event is the transition: "worker_dead", "worker_rejoin", "reassign",
	// "local_count", or "degraded".
	Event string `json:"event"`
	// Pass is the pass barrier at which the transition was observed.
	Pass int `json:"pass"`
	// Worker is the affected worker's address, when one is involved.
	Worker string `json:"worker,omitempty"`
	// Shard is the affected shard's content address (SHA-256 hex prefix).
	Shard string `json:"shard,omitempty"`
	// Reason explains the transition (an RPC error class, "quorum", ...).
	Reason string `json:"reason,omitempty"`
	// Live is the live-worker count after the transition.
	Live int `json:"live"`
}

// StreamEvent records one delta applied to an incrementally maintained
// stream: a batch absorbed on the border-unmoved fast path or a triggered
// re-mine. Re-mines additionally emit the usual run events through the same
// tracer; StreamEvent carries the delta-level decision those runs can't see.
type StreamEvent struct {
	// Stream identifies the maintained stream (the server's stream id).
	Stream string `json:"stream"`
	// Seq is the 1-based batch sequence number.
	Seq int64 `json:"seq"`
	// Appended and Evicted count the transactions entering and leaving the
	// window in this delta.
	Appended int `json:"appended"`
	Evicted  int `json:"evicted,omitempty"`
	// Transactions is the window length after the delta.
	Transactions int `json:"transactions"`
	// Checked is the number of maintained itemsets (MFS and border, both
	// delta sides) counted to decide the delta.
	Checked int `json:"checked"`
	// Remined reports whether a full mine ran; Reason explains why
	// ("initial", "mfs-infrequent", "border-frequent", "new-item-frequent")
	// and is empty on the fast path.
	Remined bool   `json:"remined"`
	Reason  string `json:"reason,omitempty"`
	// VerifyMillis is the delta-verification wall clock; MineMillis the
	// re-mine wall clock (0 on the fast path).
	VerifyMillis float64 `json:"verify_ms"`
	MineMillis   float64 `json:"mine_ms,omitempty"`
	// Cluster reports the delta counting was fanned out over a worker
	// cluster; the remaining fields summarize that batch's distribution
	// (ClusterDegraded: the batch fell below quorum and counted locally).
	Cluster          bool  `json:"cluster,omitempty"`
	ClusterWorkers   int   `json:"cluster_workers,omitempty"`
	ClusterRPCs      int64 `json:"cluster_rpcs,omitempty"`
	ClusterFailovers int64 `json:"cluster_failovers,omitempty"`
	ClusterDegraded  bool  `json:"cluster_degraded,omitempty"`
}

// StreamTracer is optionally implemented by Tracers that also want the
// incremental-maintenance delta stream, following the same
// optional-interface pattern as CheckpointTracer.
type StreamTracer interface {
	StreamDelta(ev StreamEvent)
}

// EmitStream forwards ev to tr if it implements StreamTracer; a nil or
// plain Tracer is a no-op.
func EmitStream(tr Tracer, ev StreamEvent) {
	if st, ok := tr.(StreamTracer); ok {
		st.StreamDelta(ev)
	}
}

// ClusterTracer is optionally implemented by Tracers that also want the
// distributed-mining event stream, following the same optional-interface
// pattern as CheckpointTracer.
type ClusterTracer interface {
	ClusterChange(ev ClusterEvent)
}

// EmitCluster forwards ev to tr if it implements ClusterTracer; a nil or
// plain Tracer is a no-op.
func EmitCluster(tr Tracer, ev ClusterEvent) {
	if ct, ok := tr.(ClusterTracer); ok {
		ct.ClusterChange(ev)
	}
}

// Tracer receives the event stream of a mining run. Implementations must be
// safe for concurrent use: parallel miners emit from the mining goroutine
// only, but one Tracer may be shared by several concurrent runs.
type Tracer interface {
	RunStart(info RunInfo)
	PassDone(ev PassEvent)
	RunDone(sum RunSummary)
}

// CheckpointTracer is optionally implemented by Tracers that also want the
// checkpoint event stream; the miners feed it with a type assertion, so
// plain Tracers keep working unchanged.
type CheckpointTracer interface {
	CheckpointDone(ev CheckpointEvent)
}

// EmitCheckpoint forwards ev to tr if it implements CheckpointTracer; a nil
// or plain Tracer is a no-op. Miners call this at every checkpoint.
func EmitCheckpoint(tr Tracer, ev CheckpointEvent) {
	if ct, ok := tr.(CheckpointTracer); ok {
		ct.CheckpointDone(ev)
	}
}

// SelectionTracer is optionally implemented by Tracers that also want the
// adaptive engine-selection decisions, following the same optional-
// interface pattern as CheckpointTracer.
type SelectionTracer interface {
	SelectionDone(ev SelectionEvent)
}

// EmitSelection forwards ev to tr if it implements SelectionTracer; a nil
// or plain Tracer is a no-op.
func EmitSelection(tr Tracer, ev SelectionEvent) {
	if st, ok := tr.(SelectionTracer); ok {
		st.SelectionDone(ev)
	}
}

// Multi fans every event out to each tracer in order.
func Multi(tracers ...Tracer) Tracer {
	// Flatten nils so callers can pass optional tracers unconditionally.
	var ts []Tracer
	for _, t := range tracers {
		if t != nil {
			ts = append(ts, t)
		}
	}
	if len(ts) == 1 {
		return ts[0]
	}
	return multiTracer(ts)
}

type multiTracer []Tracer

func (m multiTracer) RunStart(info RunInfo) {
	for _, t := range m {
		t.RunStart(info)
	}
}

func (m multiTracer) PassDone(ev PassEvent) {
	for _, t := range m {
		t.PassDone(ev)
	}
}

func (m multiTracer) RunDone(sum RunSummary) {
	for _, t := range m {
		t.RunDone(sum)
	}
}

// CheckpointDone implements CheckpointTracer, forwarding to the members
// that implement it.
func (m multiTracer) CheckpointDone(ev CheckpointEvent) {
	for _, t := range m {
		EmitCheckpoint(t, ev)
	}
}

// SelectionDone implements SelectionTracer, forwarding to the members that
// implement it.
func (m multiTracer) SelectionDone(ev SelectionEvent) {
	for _, t := range m {
		EmitSelection(t, ev)
	}
}

// ClusterChange implements ClusterTracer, forwarding to the members that
// implement it.
func (m multiTracer) ClusterChange(ev ClusterEvent) {
	for _, t := range m {
		EmitCluster(t, ev)
	}
}

// StreamDelta implements StreamTracer, forwarding to the members that
// implement it.
func (m multiTracer) StreamDelta(ev StreamEvent) {
	for _, t := range m {
		EmitStream(t, ev)
	}
}

// Collector is a Tracer that accumulates the event stream in memory, for
// tests and for benchrun's report folding.
type Collector struct {
	mu          sync.Mutex
	runs        []RunInfo
	passes      []PassEvent
	done        []RunSummary
	checkpoints []CheckpointEvent
	selections  []SelectionEvent
	cluster     []ClusterEvent
	stream      []StreamEvent
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector { return &Collector{} }

// RunStart implements Tracer.
func (c *Collector) RunStart(info RunInfo) {
	c.mu.Lock()
	c.runs = append(c.runs, info)
	c.mu.Unlock()
}

// PassDone implements Tracer.
func (c *Collector) PassDone(ev PassEvent) {
	c.mu.Lock()
	c.passes = append(c.passes, ev)
	c.mu.Unlock()
}

// RunDone implements Tracer.
func (c *Collector) RunDone(sum RunSummary) {
	c.mu.Lock()
	c.done = append(c.done, sum)
	c.mu.Unlock()
}

// Runs returns a copy of the collected run starts.
func (c *Collector) Runs() []RunInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]RunInfo(nil), c.runs...)
}

// Passes returns a copy of the collected pass events.
func (c *Collector) Passes() []PassEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]PassEvent(nil), c.passes...)
}

// Summaries returns a copy of the collected run summaries.
func (c *Collector) Summaries() []RunSummary {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]RunSummary(nil), c.done...)
}

// CheckpointDone implements CheckpointTracer.
func (c *Collector) CheckpointDone(ev CheckpointEvent) {
	c.mu.Lock()
	c.checkpoints = append(c.checkpoints, ev)
	c.mu.Unlock()
}

// Checkpoints returns a copy of the collected checkpoint events.
func (c *Collector) Checkpoints() []CheckpointEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]CheckpointEvent(nil), c.checkpoints...)
}

// SelectionDone implements SelectionTracer.
func (c *Collector) SelectionDone(ev SelectionEvent) {
	c.mu.Lock()
	c.selections = append(c.selections, ev)
	c.mu.Unlock()
}

// Selections returns a copy of the collected selection events.
func (c *Collector) Selections() []SelectionEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]SelectionEvent(nil), c.selections...)
}

// ClusterChange implements ClusterTracer.
func (c *Collector) ClusterChange(ev ClusterEvent) {
	c.mu.Lock()
	c.cluster = append(c.cluster, ev)
	c.mu.Unlock()
}

// ClusterEvents returns a copy of the collected cluster events.
func (c *Collector) ClusterEvents() []ClusterEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]ClusterEvent(nil), c.cluster...)
}

// StreamDelta implements StreamTracer.
func (c *Collector) StreamDelta(ev StreamEvent) {
	c.mu.Lock()
	c.stream = append(c.stream, ev)
	c.mu.Unlock()
}

// StreamEvents returns a copy of the collected stream delta events.
func (c *Collector) StreamEvents() []StreamEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]StreamEvent(nil), c.stream...)
}

// Reset discards everything collected so far.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.runs, c.passes, c.done, c.checkpoints, c.selections = nil, nil, nil, nil, nil
	c.cluster, c.stream = nil, nil
	c.mu.Unlock()
}
