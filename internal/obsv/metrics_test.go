package obsv

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// feedFixedRun drives a tracer with a deterministic two-pass run so the
// exposition output is exactly reproducible.
func feedFixedRun(tr Tracer) {
	tr.RunStart(RunInfo{Algorithm: "pincer", Workers: 2, MinCount: 3, NumTransactions: 100})
	tr.PassDone(PassEvent{
		Algorithm: "pincer", Pass: 1, Phase: PhaseBottomUp,
		Candidates: 40, MFCSCandidates: 4, MFCSSize: 3,
		Frequent: 25, Infrequent: 15, MFSFound: 1,
		ScanDuration: 1500 * time.Nanosecond, Workers: 2,
	})
	EmitCheckpoint(tr, CheckpointEvent{
		Algorithm: "pincer", Pass: 1, Stage: "levelwise",
		Duration: 100 * time.Nanosecond,
	})
	tr.PassDone(PassEvent{
		Algorithm: "pincer", Pass: 2, Phase: PhaseRecovery,
		Candidates: 60, MFCSCandidates: 2, MFCSSize: 1,
		Frequent: 30, Infrequent: 30, MFSFound: 2,
		ScanDuration: 500 * time.Nanosecond, Workers: 2,
		Intersections: 7, Representation: "bitset",
	})
	EmitCheckpoint(tr, CheckpointEvent{
		Algorithm: "pincer", Pass: 2, Stage: "tail",
		Duration: 100 * time.Nanosecond,
	})
	tr.RunDone(RunSummary{
		Algorithm: "pincer", Passes: 2, Candidates: 102, MFSSize: 3,
		Duration: 2500 * time.Nanosecond,
	})
}

const wantPrometheus = `# HELP pincer_candidates_total Bottom-up candidates counted.
# TYPE pincer_candidates_total counter
pincer_candidates_total 100
# HELP pincer_checkpoints_written_total Pass-barrier checkpoints persisted.
# TYPE pincer_checkpoints_written_total counter
pincer_checkpoints_written_total 2
# HELP pincer_frequent_total Frequent itemsets discovered.
# TYPE pincer_frequent_total counter
pincer_frequent_total 55
# HELP pincer_intersections_total Tidset kernel operations performed by vertical pass counters.
# TYPE pincer_intersections_total counter
pincer_intersections_total 7
# HELP pincer_last_checkpoint_pass Pass number of the most recently written checkpoint.
# TYPE pincer_last_checkpoint_pass gauge
pincer_last_checkpoint_pass 2
# HELP pincer_last_run_mfs_size |MFS| of the most recently finished run.
# TYPE pincer_last_run_mfs_size gauge
pincer_last_run_mfs_size 3
# HELP pincer_last_run_passes Passes of the most recently finished run.
# TYPE pincer_last_run_passes gauge
pincer_last_run_passes 2
# HELP pincer_mfcs_candidates_total MFCS elements counted.
# TYPE pincer_mfcs_candidates_total counter
pincer_mfcs_candidates_total 6
# HELP pincer_mfs_found_total Maximal frequent itemsets established.
# TYPE pincer_mfs_found_total counter
pincer_mfs_found_total 3
# HELP pincer_mine_cancellations_total Mining runs ended early by cancellation or a resource budget.
# TYPE pincer_mine_cancellations_total counter
pincer_mine_cancellations_total 0
# HELP pincer_mining_nanoseconds_total Wall clock spent in whole mining runs.
# TYPE pincer_mining_nanoseconds_total counter
pincer_mining_nanoseconds_total 2500
# HELP pincer_passes_total Database passes completed.
# TYPE pincer_passes_total counter
pincer_passes_total 2
# HELP pincer_runs_total Mining runs started.
# TYPE pincer_runs_total counter
pincer_runs_total 1
# HELP pincer_scan_nanoseconds_total Wall clock spent in database passes.
# TYPE pincer_scan_nanoseconds_total counter
pincer_scan_nanoseconds_total 2000
# HELP pincer_workers Counting goroutines of the most recent run.
# TYPE pincer_workers gauge
pincer_workers 2
`

// TestMetricsTracerPrometheusGolden pins the full /metrics exposition of a
// deterministic run: metric names, HELP/TYPE lines, sort order, and the
// folded values.
func TestMetricsTracerPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	feedFixedRun(NewMetricsTracer(reg))
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != wantPrometheus {
		t.Errorf("prometheus exposition mismatch:\n--- got ---\n%s--- want ---\n%s", buf.String(), wantPrometheus)
	}
}

// TestMetricsTracerExpvarExposition checks the /debug/vars half: valid JSON
// whose decoded values equal the registry snapshot.
func TestMetricsTracerExpvarExposition(t *testing.T) {
	reg := NewRegistry()
	feedFixedRun(NewMetricsTracer(reg))
	var buf bytes.Buffer
	if err := reg.WriteExpvar(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]int64
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("expvar output is not valid JSON: %v\n%s", err, buf.String())
	}
	snap := reg.Snapshot()
	if len(decoded) != len(snap) {
		t.Fatalf("expvar has %d vars, snapshot %d", len(decoded), len(snap))
	}
	for name, want := range snap {
		if decoded[name] != want {
			t.Errorf("%s = %d, want %d", name, decoded[name], want)
		}
	}
	if decoded["pincer_candidates_total"] != 100 {
		t.Errorf("pincer_candidates_total = %d, want 100", decoded["pincer_candidates_total"])
	}
}

// TestMetricsTracerCancellation checks the aborted-run counter: only
// summaries flagged Aborted increment pincer_mine_cancellations_total.
func TestMetricsTracerCancellation(t *testing.T) {
	reg := NewRegistry()
	tr := NewMetricsTracer(reg)
	feedFixedRun(tr)
	tr.RunStart(RunInfo{Algorithm: "pincer", Workers: 1, MinCount: 3, NumTransactions: 100})
	tr.RunDone(RunSummary{
		Algorithm: "pincer", Passes: 1, Candidates: 40, MFSSize: 1,
		Duration: 700 * time.Nanosecond, Aborted: true, AbortReason: "cancelled",
	})
	snap := reg.Snapshot()
	if got := snap["pincer_mine_cancellations_total"]; got != 1 {
		t.Errorf("pincer_mine_cancellations_total = %d, want 1", got)
	}
	if got := snap["pincer_runs_total"]; got != 2 {
		t.Errorf("pincer_runs_total = %d, want 2", got)
	}
	if got := snap["pincer_checkpoints_written_total"]; got != 2 {
		t.Errorf("pincer_checkpoints_written_total = %d, want 2", got)
	}
	if got := snap["pincer_last_checkpoint_pass"]; got != 2 {
		t.Errorf("pincer_last_checkpoint_pass = %d, want 2", got)
	}
}

func TestRegistryIdempotentByName(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "help")
	b := reg.Counter("x_total", "ignored")
	if a != b {
		t.Error("second registration returned a different counter")
	}
	a.Add(2)
	if b.Value() != 2 {
		t.Errorf("shared counter value = %d, want 2", b.Value())
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("x_total", "wrong kind")
}
