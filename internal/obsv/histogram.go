package obsv

import (
	"fmt"
	"io"
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram is log-bucketed: bucket i holds observations in
// (1µs·2^(i-1), 1µs·2^i], so 32 buckets cover 1µs to ~35 minutes with a
// worst-case quantile error of one octave — plenty for request latencies,
// and cheap enough (one atomic add per observation, no locks) to sit on
// every HTTP request and every load-generator probe.
const (
	histMinNanos    = 1000 // upper bound of the first bucket: 1µs
	histBucketCount = 32   // the last bucket is the +Inf overflow
)

// histBound returns the inclusive upper bound of bucket i in nanoseconds.
func histBound(i int) int64 { return histMinNanos << uint(i) }

// bucketIndex maps a duration in nanoseconds to its bucket.
func bucketIndex(ns int64) int {
	if ns <= histMinNanos {
		return 0
	}
	// ceil(log2(ceil(ns / histMinNanos))), clamped to the overflow bucket.
	q := (ns + histMinNanos - 1) / histMinNanos
	idx := bits.Len64(uint64(q - 1))
	if idx >= histBucketCount {
		return histBucketCount - 1
	}
	return idx
}

// Histogram is a fixed-shape log-bucketed latency histogram. The zero value
// is ready to use; all methods are safe for concurrent use.
type Histogram struct {
	counts [histBucketCount]atomic.Int64
	sum    atomic.Int64 // nanoseconds
	count  atomic.Int64
	max    atomic.Int64 // nanoseconds
}

// Observe records one duration. Negative durations count into the first
// bucket (they only arise from clock steps).
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketIndex(ns)].Add(1)
	h.sum.Add(ns)
	h.count.Add(1)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// SumNanos returns the sum of all observed durations in nanoseconds.
func (h *Histogram) SumNanos() int64 { return h.sum.Load() }

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// snapshot copies the bucket counts (observations racing with the copy land
// in either the snapshot or the next one — both are correct histograms).
func (h *Histogram) snapshot() (counts [histBucketCount]int64, total int64) {
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	return counts, total
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// inside the containing bucket. It returns 0 when nothing was observed.
func (h *Histogram) Quantile(q float64) time.Duration {
	counts, total := h.snapshot()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lower := int64(0)
			if i > 0 {
				lower = histBound(i - 1)
			}
			upper := histBound(i)
			if i == histBucketCount-1 {
				upper = 2 * lower // the overflow bucket has no real bound
			}
			frac := float64(rank-cum) / float64(c)
			est := time.Duration(float64(lower) + frac*float64(upper-lower))
			// Interpolation can overshoot the data when the top bucket is
			// sparsely filled; the true quantile never exceeds the max.
			if m := h.Max(); est > m {
				est = m
			}
			return est
		}
		cum += c
	}
	return time.Duration(histBound(histBucketCount - 1))
}

// promLabels joins a base label set with an extra label, rendering the
// {...} clause ("" when both are empty).
func promLabels(base, extra string) string {
	switch {
	case base == "" && extra == "":
		return ""
	case base == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + base + "}"
	}
	return "{" + base + "," + extra + "}"
}

// writePrometheus renders the histogram as a Prometheus histogram family
// member in seconds: _bucket{le=...} cumulative counts, _sum, and _count.
func (h *Histogram) writePrometheus(w io.Writer, name, labels string) error {
	counts, total := h.snapshot()
	var cum int64
	for i := 0; i < histBucketCount-1; i++ {
		cum += counts[i]
		le := fmt.Sprintf(`le="%g"`, float64(histBound(i))/1e9)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(labels, le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(labels, `le="+Inf"`), total); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", name, promLabels(labels, ""), float64(h.SumNanos())/1e9); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(labels, ""), total)
	return err
}
