package obsv

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be non-negative).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

type metric struct {
	name, labels, help, kind string
	value                    func() int64
	hist                     *Histogram
}

// key is the registry map key: the family name plus the label set, so one
// family ("pincer_http_request_seconds") can carry many labeled series.
func metricKey(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "\xff" + labels
}

// seriesName renders the exposition name of a counter/gauge series.
func (m *metric) seriesName() string {
	if m.labels == "" {
		return m.name
	}
	return m.name + "{" + m.labels + "}"
}

// Registry is a named collection of counters and gauges with two text
// expositions: the Prometheus format (WritePrometheus, for /metrics) and a
// flat expvar-style JSON object (WriteExpvar, merged into /debug/vars).
// Registration is idempotent by name; registering an existing name with a
// different kind panics (a programmer error caught at startup).
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
	vars    map[string]interface{} // name -> *Counter or *Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*metric{}, vars: map[string]interface{}{}}
}

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name, help string) *Counter {
	return r.LabeledCounter(name, "", help)
}

// LabeledCounter returns the counter series of a family with a constant
// Prometheus label set (e.g. `route="submit",code="2xx"`; "" means no
// labels). Series of one family share HELP and TYPE in the exposition.
func (r *Registry) LabeledCounter(name, labels, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := metricKey(name, labels)
	if m, ok := r.metrics[key]; ok {
		if m.kind != kindCounter {
			panic(fmt.Sprintf("obsv: metric %q registered as %s, requested as counter", name, m.kind))
		}
		return r.vars[key].(*Counter)
	}
	c := &Counter{}
	r.metrics[key] = &metric{name: name, labels: labels, help: help, kind: kindCounter, value: c.Value}
	r.vars[key] = c
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := metricKey(name, "")
	if m, ok := r.metrics[key]; ok {
		if m.kind != kindGauge {
			panic(fmt.Sprintf("obsv: metric %q registered as %s, requested as gauge", name, m.kind))
		}
		return r.vars[key].(*Gauge)
	}
	g := &Gauge{}
	r.metrics[key] = &metric{name: name, help: help, kind: kindGauge, value: g.Value}
	r.vars[key] = g
	return g
}

// Histogram returns the log-bucketed histogram series of a family with a
// constant label set ("" means no labels), creating it if needed. The
// Prometheus exposition renders it as a native histogram family in seconds
// (_bucket/_sum/_count); the expvar exposition and Snapshot carry only its
// observation count, under "<name>_count" (plus the label clause).
func (r *Registry) Histogram(name, labels, help string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := metricKey(name, labels)
	if m, ok := r.metrics[key]; ok {
		if m.kind != kindHistogram {
			panic(fmt.Sprintf("obsv: metric %q registered as %s, requested as histogram", name, m.kind))
		}
		return m.hist
	}
	h := &Histogram{}
	r.metrics[key] = &metric{name: name, labels: labels, help: help, kind: kindHistogram, value: h.Count, hist: h}
	return h
}

// sorted returns the metrics in (name, labels) order, keeping every family's
// series contiguous (exposition must be stable).
func (r *Registry) sorted() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return ms[i].labels < ms[j].labels
	})
	return ms
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format (version 0.0.4), names sorted; HELP and TYPE are emitted once per
// family, ahead of its first series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	lastFamily := ""
	for _, m := range r.sorted() {
		if m.name != lastFamily {
			lastFamily = m.name
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind); err != nil {
				return err
			}
		}
		if m.kind == kindHistogram {
			if err := m.hist.writePrometheus(w, m.name, m.labels); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", m.seriesName(), m.value()); err != nil {
			return err
		}
	}
	return nil
}

// expvarName renders a metric's key in the flat expvar/Snapshot views:
// counters and gauges keep their series name, histograms appear as their
// observation count under "<name>_count" (plus the label clause).
func (m *metric) expvarName() string {
	name := m.name
	if m.kind == kindHistogram {
		name += "_count"
	}
	if m.labels == "" {
		return name
	}
	return name + "{" + m.labels + "}"
}

// WriteExpvar writes every metric as one flat JSON object in the style of
// expvar's /debug/vars (names sorted; integer values).
func (r *Registry) WriteExpvar(w io.Writer) error {
	if _, err := fmt.Fprint(w, "{"); err != nil {
		return err
	}
	for i, m := range r.sorted() {
		sep := ",\n"
		if i == 0 {
			sep = "\n"
		}
		if _, err := fmt.Fprintf(w, "%s%q: %d", sep, m.expvarName(), m.value()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprint(w, "\n}\n")
	return err
}

// Snapshot returns a name → value map of every metric.
func (r *Registry) Snapshot() map[string]int64 {
	out := map[string]int64{}
	for _, m := range r.sorted() {
		out[m.expvarName()] = m.value()
	}
	return out
}

// MetricsTracer is a Tracer that folds the event stream into a Registry's
// counters and gauges — the bridge between per-run tracing and long-lived
// process metrics.
type MetricsTracer struct {
	runs, passes, candidates, mfcsCandidates *Counter
	frequent, mfsFound, intersections        *Counter
	scanNanos, miningNanos                   *Counter
	cancellations, checkpointsWritten        *Counter
	workers, lastPasses, lastMFSSize         *Gauge
	lastCheckpointPass                       *Gauge
}

// NewMetricsTracer registers the standard mining metrics on reg and returns
// the tracer feeding them.
func NewMetricsTracer(reg *Registry) *MetricsTracer {
	return &MetricsTracer{
		runs:           reg.Counter("pincer_runs_total", "Mining runs started."),
		passes:         reg.Counter("pincer_passes_total", "Database passes completed."),
		candidates:     reg.Counter("pincer_candidates_total", "Bottom-up candidates counted."),
		mfcsCandidates: reg.Counter("pincer_mfcs_candidates_total", "MFCS elements counted."),
		frequent:       reg.Counter("pincer_frequent_total", "Frequent itemsets discovered."),
		intersections:  reg.Counter("pincer_intersections_total", "Tidset kernel operations performed by vertical pass counters."),
		mfsFound:       reg.Counter("pincer_mfs_found_total", "Maximal frequent itemsets established."),
		scanNanos:      reg.Counter("pincer_scan_nanoseconds_total", "Wall clock spent in database passes."),
		miningNanos:    reg.Counter("pincer_mining_nanoseconds_total", "Wall clock spent in whole mining runs."),
		workers:        reg.Gauge("pincer_workers", "Counting goroutines of the most recent run."),
		lastPasses:     reg.Gauge("pincer_last_run_passes", "Passes of the most recently finished run."),
		lastMFSSize:    reg.Gauge("pincer_last_run_mfs_size", "|MFS| of the most recently finished run."),

		cancellations:      reg.Counter("pincer_mine_cancellations_total", "Mining runs ended early by cancellation or a resource budget."),
		checkpointsWritten: reg.Counter("pincer_checkpoints_written_total", "Pass-barrier checkpoints persisted."),
		lastCheckpointPass: reg.Gauge("pincer_last_checkpoint_pass", "Pass number of the most recently written checkpoint."),
	}
}

// RunStart implements Tracer.
func (t *MetricsTracer) RunStart(info RunInfo) {
	t.runs.Inc()
	t.workers.Set(int64(info.Workers))
}

// PassDone implements Tracer.
func (t *MetricsTracer) PassDone(ev PassEvent) {
	t.passes.Inc()
	t.candidates.Add(int64(ev.Candidates))
	t.mfcsCandidates.Add(int64(ev.MFCSCandidates))
	t.frequent.Add(int64(ev.Frequent))
	t.mfsFound.Add(int64(ev.MFSFound))
	t.intersections.Add(ev.Intersections)
	t.scanNanos.Add(ev.ScanDuration.Nanoseconds())
}

// RunDone implements Tracer.
func (t *MetricsTracer) RunDone(sum RunSummary) {
	t.miningNanos.Add(sum.Duration.Nanoseconds())
	t.lastPasses.Set(int64(sum.Passes))
	t.lastMFSSize.Set(int64(sum.MFSSize))
	if sum.Aborted {
		t.cancellations.Inc()
	}
}

// CheckpointDone implements CheckpointTracer.
func (t *MetricsTracer) CheckpointDone(ev CheckpointEvent) {
	t.checkpointsWritten.Inc()
	t.lastCheckpointPass.Set(int64(ev.Pass))
}
