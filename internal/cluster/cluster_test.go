package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pincer/internal/core"
	"pincer/internal/dataset"
	"pincer/internal/faultinject"
	"pincer/internal/mfi"
	"pincer/internal/obsv"
	"pincer/internal/quest"
)

// testPoolConfig keeps the failure-handling clocks fast enough for CI.
func testPoolConfig() PoolConfig {
	return PoolConfig{
		// The liveness deadline is deliberately generous: under the race
		// detector a process-wide stall can exceed a tight deadline and
		// spuriously kill the whole cluster. The kill tests do not depend on
		// it — RPC exhaustion marks workers dead immediately.
		HeartbeatInterval: 20 * time.Millisecond,
		LivenessDeadline:  2 * time.Second,
		RPCTimeout:        5 * time.Second,
		MaxAttempts:       3,
		BackoffBase:       time.Millisecond,
		BackoffCap:        5 * time.Millisecond,
	}
}

// swappableHandler lets a test "restart" a worker behind a stable address.
type swappableHandler struct{ h atomic.Value }

func (s *swappableHandler) Set(h http.Handler) { s.h.Store(h) }
func (s *swappableHandler) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	s.h.Load().(http.Handler).ServeHTTP(rw, r)
}

// testCluster is n workers behind httptest servers plus the pool over them.
type testCluster struct {
	workers  []*Worker
	kills    []*faultinject.NodeKill
	servers  []*httptest.Server
	handlers []*swappableHandler
	pool     *Pool
}

func startCluster(t *testing.T, n int, cfg PoolConfig) *testCluster {
	t.Helper()
	tc := &testCluster{}
	var addrs []string
	for i := 0; i < n; i++ {
		nk := &faultinject.NodeKill{}
		w := NewWorker(WorkerConfig{
			ID:              fmt.Sprintf("w%d", i),
			Down:            nk.Down,
			CountHook:       func(*CountRequest) error { return nk.CountHook() },
			StreamCountHook: func(*StreamCountRequest) error { return nk.CountHook() },
			TxHook:          nk.TxHook,
		})
		sh := &swappableHandler{}
		sh.Set(w)
		srv := httptest.NewServer(sh)
		tc.workers = append(tc.workers, w)
		tc.kills = append(tc.kills, nk)
		tc.servers = append(tc.servers, srv)
		tc.handlers = append(tc.handlers, sh)
		addrs = append(addrs, srv.URL)
	}
	pool, err := NewPool(addrs, cfg)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	pool.Start()
	t.Cleanup(func() {
		pool.Close()
		for _, s := range tc.servers {
			s.Close()
		}
	})
	tc.pool = pool
	return tc
}

func testDataset(seed int64) *dataset.Dataset {
	return quest.Generate(quest.Params{
		NumTransactions: 240,
		AvgTxLen:        8,
		AvgPatternLen:   4,
		NumPatterns:     20,
		NumItems:        40,
		Seed:            seed,
	})
}

// mfsMap renders a result as set-key → support for equality checks.
func mfsMap(res *mfi.Result) map[string]int64 {
	out := make(map[string]int64, len(res.MFS))
	for i, m := range res.MFS {
		out[m.Key()] = res.MFSSupports[i]
	}
	return out
}

func assertSameResult(t *testing.T, label string, got, want *mfi.Result) {
	t.Helper()
	gm, wm := mfsMap(got), mfsMap(want)
	if len(gm) != len(wm) {
		t.Fatalf("%s: %d maximal sets, want %d", label, len(gm), len(wm))
	}
	for k, sup := range wm {
		if gm[k] != sup {
			t.Fatalf("%s: set %q has support %d, want %d", label, k, gm[k], sup)
		}
	}
}

func mineCluster(t *testing.T, d *dataset.Dataset, minCount int64, pool *Pool, tracer obsv.Tracer) (*mfi.Result, *Coordinator, error) {
	t.Helper()
	coord, err := NewCoordinator("job-test", d, pool, tracer)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	opt := core.DefaultOptions()
	opt.Counter = coord
	opt.Tracer = tracer
	opt.Context = context.Background()
	res, mineErr := core.MineCount(dataset.NewScanner(d), minCount, opt)
	return res, coord, mineErr
}

// TestClusterMatchesSingleNode pins the tentpole contract: distributed
// counting is observationally equivalent to one sequential scan.
func TestClusterMatchesSingleNode(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		workers := workers
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			tc := startCluster(t, workers, testPoolConfig())
			for seed := int64(1); seed <= 3; seed++ {
				d := testDataset(seed)
				for _, minsup := range []float64{0.05, 0.15, 0.4} {
					minCount := d.MinCount(minsup)
					want, err := core.MineCount(dataset.NewScanner(d), minCount, core.DefaultOptions())
					if err != nil {
						t.Fatalf("reference mine: %v", err)
					}
					got, coord, err := mineCluster(t, d, minCount, tc.pool, nil)
					if err != nil {
						t.Fatalf("cluster mine: %v", err)
					}
					label := fmt.Sprintf("seed%d/sup%g", seed, minsup)
					assertSameResult(t, label, got, want)
					doc := coord.Doc()
					if doc.Degraded {
						t.Fatalf("%s: healthy cluster degraded: %+v", label, doc)
					}
					if doc.RPCs == 0 {
						t.Fatalf("%s: no RPCs issued — counting did not distribute", label)
					}
				}
			}
		})
	}
}

// TestNodeLossMatrix is the issue's fault matrix: kill 1-of-2 and 1-of-4
// workers at every pass barrier and mid-scan; every run must complete with
// the single-node reference's exact result.
func TestNodeLossMatrix(t *testing.T) {
	d := testDataset(7)
	minCount := d.MinCount(0.1)
	want, err := core.MineCount(dataset.NewScanner(d), minCount, core.DefaultOptions())
	if err != nil {
		t.Fatalf("reference mine: %v", err)
	}
	for _, workers := range []int{2, 4} {
		workers := workers
		for _, afterTx := range []int{0, 11} {
			afterTx := afterTx
			mode := "barrier"
			if afterTx > 0 {
				mode = "midscan"
			}
			t.Run(fmt.Sprintf("w%d/%s", workers, mode), func(t *testing.T) {
				for trip := 1; ; trip++ {
					tc := startCluster(t, workers, testPoolConfig())
					nk := tc.kills[0]
					nk.TripAtCount = trip
					nk.AfterTx = afterTx
					col := obsv.NewCollector()
					got, coord, mineErr := mineCluster(t, d, minCount, tc.pool, col)
					if mineErr != nil {
						t.Fatalf("trip %d: cluster mine failed: %v", trip, mineErr)
					}
					assertSameResult(t, fmt.Sprintf("trip%d", trip), got, want)
					doc := coord.Doc()
					if doc.Degraded {
						t.Fatalf("trip %d: lost 1 of %d workers but degraded: %+v", trip, workers, doc)
					}
					tripped := nk.Down()
					if tripped && doc.WorkerDeaths == 0 {
						t.Fatalf("trip %d: worker was killed but no death recorded: %+v", trip, doc)
					}
					if !tripped {
						// The tripwire ordinal ran past the run's RPC count:
						// the whole matrix is covered.
						if trip == 1 {
							t.Fatal("tripwire never fired — matrix tested nothing")
						}
						return
					}
				}
			})
		}
	}
}

// TestQuorumDegradation pins graceful degradation: dropping below quorum
// must finish the job locally with the exact result and record the
// degradation in the doc, the trace, and the metric.
func TestQuorumDegradation(t *testing.T) {
	d := testDataset(11)
	minCount := d.MinCount(0.1)
	want, err := core.MineCount(dataset.NewScanner(d), minCount, core.DefaultOptions())
	if err != nil {
		t.Fatalf("reference mine: %v", err)
	}

	reg := obsv.NewRegistry()
	cfg := testPoolConfig()
	cfg.Quorum = 2
	cfg.Registry = reg
	tc := startCluster(t, 2, cfg)

	// Kill one worker at its second count RPC: the current pass fails over
	// to the surviving worker, and the next pass barrier sees the cluster
	// below quorum and degrades.
	tc.kills[0].TripAtCount = 2

	col := obsv.NewCollector()
	got, coord, mineErr := mineCluster(t, d, minCount, tc.pool, col)
	if mineErr != nil {
		t.Fatalf("cluster mine: %v", mineErr)
	}
	assertSameResult(t, "degraded", got, want)

	doc := coord.Doc()
	if !doc.Degraded {
		t.Fatalf("expected degradation, got %+v", doc)
	}
	if doc.DegradedReason == "" || doc.DegradedPass == 0 {
		t.Fatalf("degradation not attributed: %+v", doc)
	}
	var sawDegradedEvent bool
	for _, ev := range col.ClusterEvents() {
		if ev.Event == "degraded" {
			sawDegradedEvent = true
		}
	}
	if !sawDegradedEvent {
		t.Fatalf("no 'degraded' cluster trace event; events: %+v", col.ClusterEvents())
	}
	if n := reg.Snapshot()["pincer_cluster_degraded_total"]; n != 1 {
		t.Fatalf("pincer_cluster_degraded_total = %d, want 1", n)
	}
}

// TestAllWorkersDeadStillCompletes kills every worker: with quorum 1 the
// live set (0) is below quorum, so the coordinator degrades and the job
// still completes with the exact result.
func TestAllWorkersDeadStillCompletes(t *testing.T) {
	d := testDataset(13)
	minCount := d.MinCount(0.15)
	want, err := core.MineCount(dataset.NewScanner(d), minCount, core.DefaultOptions())
	if err != nil {
		t.Fatalf("reference mine: %v", err)
	}
	tc := startCluster(t, 2, testPoolConfig())
	tc.kills[0].TripAtCount = 1
	tc.kills[1].TripAtCount = 1
	got, coord, mineErr := mineCluster(t, d, minCount, tc.pool, nil)
	if mineErr != nil {
		t.Fatalf("cluster mine: %v", mineErr)
	}
	assertSameResult(t, "all-dead", got, want)
	if doc := coord.Doc(); !doc.Degraded {
		t.Fatalf("expected degradation with zero live workers: %+v", doc)
	}
}

// TestWorkerRestartReseeds swaps a worker for a fresh (empty) instance
// mid-job: the coordinator must detect unknown_shard, re-push the
// content-addressed shard, and finish with the exact result.
func TestWorkerRestartReseeds(t *testing.T) {
	d := testDataset(17)
	minCount := d.MinCount(0.1)
	want, err := core.MineCount(dataset.NewScanner(d), minCount, core.DefaultOptions())
	if err != nil {
		t.Fatalf("reference mine: %v", err)
	}
	tc := startCluster(t, 2, testPoolConfig())

	// After the second count RPC on worker 0, replace it with an empty
	// restart (same address, no shards, no memo).
	var restarts atomic.Int32
	var counts atomic.Int32
	restarted := NewWorker(WorkerConfig{ID: "w0-restarted"})
	tc.workers[0].cfg.CountHook = nil // replaced below
	w0 := NewWorker(WorkerConfig{
		ID: "w0",
		CountHook: func(*CountRequest) error {
			if counts.Add(1) == 2 && restarts.CompareAndSwap(0, 1) {
				tc.handlers[0].Set(restarted)
			}
			return nil
		},
	})
	tc.handlers[0].Set(w0)

	got, coord, mineErr := mineCluster(t, d, minCount, tc.pool, nil)
	if mineErr != nil {
		t.Fatalf("cluster mine: %v", mineErr)
	}
	assertSameResult(t, "restart", got, want)
	if doc := coord.Doc(); doc.Degraded {
		t.Fatalf("restart should not degrade the job: %+v", doc)
	}
	if restarts.Load() != 1 {
		t.Fatal("restart hook never fired — test exercised nothing")
	}
}

// TestDuplicateReplyMemo pins the idempotent-retry contract at the wire:
// a duplicate delivery of a completed count is answered from the memo and
// flagged, not recounted.
func TestDuplicateReplyMemo(t *testing.T) {
	tc := startCluster(t, 1, testPoolConfig())
	d := testDataset(19)
	coord, err := NewCoordinator("job-dup", d, tc.pool, nil)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	w := tc.pool.Workers()[0]
	sh := coord.shards[0]
	ctx := context.Background()
	if err := tc.pool.loadShard(ctx, w, &LoadShardRequest{
		ShardID: sh.id, NumItems: sh.data.NumItems(), Baskets: string(sh.baskets),
	}); err != nil {
		t.Fatalf("loadShard: %v", err)
	}
	req := &CountRequest{JobID: "job-dup", Pass: 1, Kind: KindItems, ShardID: sh.id, NumItems: sh.data.NumItems()}
	first, err := tc.pool.count(ctx, w, req)
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	if first.Memoized {
		t.Fatal("first delivery flagged as duplicate")
	}
	second, err := tc.pool.count(ctx, w, req)
	if err != nil {
		t.Fatalf("duplicate count: %v", err)
	}
	if !second.Memoized {
		t.Fatal("duplicate delivery not served from the memo")
	}
	for i := range first.ItemCounts {
		if first.ItemCounts[i] != second.ItemCounts[i] {
			t.Fatalf("memoized reply diverges at item %d", i)
		}
	}
}

// TestHeartbeatLiveness pins the pool's death/rejoin detection.
func TestHeartbeatLiveness(t *testing.T) {
	cfg := testPoolConfig()
	reg := obsv.NewRegistry()
	cfg.Registry = reg
	tc := startCluster(t, 2, cfg)
	if n := len(tc.pool.Live()); n != 2 {
		t.Fatalf("initial live = %d, want 2", n)
	}
	tc.kills[0].Kill()
	deadline := time.Now().Add(15 * time.Second)
	for len(tc.pool.Live()) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("dead worker never left the live set")
		}
		time.Sleep(5 * time.Millisecond)
	}
	tc.kills[0].Revive()
	for len(tc.pool.Live()) != 2 {
		if time.Now().After(deadline) {
			t.Fatal("revived worker never rejoined")
		}
		time.Sleep(5 * time.Millisecond)
	}
	snap := reg.Snapshot()
	if snap["pincer_cluster_worker_deaths_total"] == 0 {
		t.Fatal("death not counted")
	}
	if snap["pincer_cluster_worker_rejoins_total"] == 0 {
		t.Fatal("rejoin not counted")
	}
}

// TestCancellationUnwinds pins that a cancelled cluster run aborts with
// the same typed partial-result error as in-process counters.
func TestCancellationUnwinds(t *testing.T) {
	tc := startCluster(t, 2, testPoolConfig())
	d := testDataset(23)
	minCount := d.MinCount(0.02)
	coord, err := NewCoordinator("job-cancel", d, tc.pool, nil)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	// Cancel from a worker hook: mid-run, while RPCs are in flight.
	tc.workers[0].cfg.CountHook = func(*CountRequest) error {
		once.Do(cancel)
		return nil
	}
	opt := core.DefaultOptions()
	opt.Counter = coord
	opt.Context = ctx
	_, mineErr := core.MineCount(dataset.NewScanner(d), minCount, opt)
	if mineErr == nil {
		t.Fatal("cancelled run completed")
	}
	var pe *mfi.PartialResultError
	if !asPartial(mineErr, &pe) {
		t.Fatalf("cancelled run returned %T (%v), want *mfi.PartialResultError", mineErr, mineErr)
	}
	if pe.Reason != mfi.ReasonCancelled {
		t.Fatalf("abort reason %q, want %q", pe.Reason, mfi.ReasonCancelled)
	}
}

func asPartial(err error, pe **mfi.PartialResultError) bool {
	p, ok := err.(*mfi.PartialResultError)
	if ok {
		*pe = p
	}
	return ok
}
